// Algorithm advisor: the paper's Figure 4 decision tree as a tool.
//
// Walks a grid of workload profiles and performance objectives and prints
// the recommended algorithm for each, then validates one recommendation by
// racing it against the alternatives on a generated workload.
//
//   build/examples/algorithm_advisor
#include <cstdio>

#include "src/datagen/micro.h"
#include "src/join/decision_tree.h"
#include "src/join/runner.h"

namespace {

const char* RateName(iawj::RateClass rate) {
  switch (rate) {
    case iawj::RateClass::kLow:
      return "low";
    case iawj::RateClass::kMedium:
      return "medium";
    case iawj::RateClass::kHigh:
      return "high";
  }
  return "?";
}

const char* ObjectiveName(iawj::Objective objective) {
  switch (objective) {
    case iawj::Objective::kThroughput:
      return "throughput";
    case iawj::Objective::kLatency:
      return "latency";
    case iawj::Objective::kProgressiveness:
      return "progress";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace iawj;

  std::printf("Figure 4 decision tree over a profile grid:\n");
  std::printf("%-8s %-8s %-6s %-12s -> %s\n", "rate", "dupe", "cores",
              "objective", "recommendation");
  for (RateClass rate :
       {RateClass::kLow, RateClass::kMedium, RateClass::kHigh}) {
    for (Level dupe : {Level::kLow, Level::kHigh}) {
      for (int cores : {4, 16}) {
        for (Objective objective :
             {Objective::kThroughput, Objective::kLatency}) {
          WorkloadProfile profile;
          profile.rate_r = profile.rate_s = rate;
          profile.key_duplication = dupe;
          profile.input_size = Level::kHigh;
          const AlgorithmId pick = RecommendAlgorithm(
              profile, objective, HardwareProfile{.num_cores = cores});
          std::printf("%-8s %-8s %-6d %-12s -> %s\n", RateName(rate),
                      dupe == Level::kHigh ? "high" : "low", cores,
                      ObjectiveName(objective),
                      std::string(AlgorithmName(pick)).c_str());
        }
      }
    }
  }

  // Validate one branch: high-duplication at-rest data should favour the
  // sort-based lazy joins for throughput.
  std::printf("\nValidation: dupe=100 at rest, throughput objective\n");
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = 200'000;
  mspec.window_ms = 1000;
  mspec.dupe = 100;
  const MicroWorkload w = GenerateMicro(mspec);

  const WorkloadProfile profile =
      ProfileFromStats(ComputeStats(w.r), ComputeStats(w.s));
  // At-rest data == infinite arrival rate == "high".
  WorkloadProfile at_rest = profile;
  at_rest.rate_r = at_rest.rate_s = RateClass::kHigh;
  const AlgorithmId pick =
      RecommendAlgorithm(at_rest, Objective::kThroughput, {.num_cores = 8});
  std::printf("recommended: %s\n", std::string(AlgorithmName(pick)).c_str());

  JoinSpec spec;
  spec.num_threads = 4;
  JoinRunner runner;
  for (AlgorithmId id :
       {pick, AlgorithmId::kNpj, AlgorithmId::kShjJm}) {
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    std::printf("  %-8s %10.1f tuples/ms%s\n", result.algorithm.c_str(),
                result.throughput_per_ms,
                id == pick ? "   <- recommended" : "");
  }
  return 0;
}
