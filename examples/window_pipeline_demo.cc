// Inter-window joining built from IaWJ blocks: segment a 5-second ad-click
// stream into 1-second tumbling windows, join each window with the
// algorithm the adaptive policy picks for it, and report per-window and
// aggregate results.
//
//   build/examples/window_pipeline_demo
#include <cstdio>

#include "src/common/rng.h"
#include "src/join/adaptive.h"
#include "src/join/window_pipeline.h"

int main() {
  using namespace iawj;

  // Build a 5-second workload whose character changes mid-stream: sparse
  // unique keys for the first half, a hot-key burst in the second half —
  // the situation where a per-window algorithm choice pays off.
  Rng rng(7);
  std::vector<Tuple> r, s;
  for (uint32_t ts = 0; ts < 5000; ++ts) {
    const bool bursty = ts >= 2500;
    const int per_ms = bursty ? 60 : 15;
    const uint32_t domain = bursty ? 2000 : 1 << 20;
    for (int i = 0; i < per_ms; ++i) {
      r.push_back({ts, static_cast<uint32_t>(rng.NextBounded(domain))});
      s.push_back({ts, static_cast<uint32_t>(rng.NextBounded(domain))});
    }
  }
  const Stream stream_r = MakeStream(std::move(r));
  const Stream stream_s = MakeStream(std::move(s));

  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;

  AdaptiveOptions options;
  options.objective = Objective::kThroughput;
  options.hardware.num_cores = spec.num_threads;
  // This demo's rates sit far below the paper's thresholds; rescale.
  options.thresholds.low_rate_per_ms = 10;
  options.thresholds.high_rate_per_ms = 50;

  // Wrap the adaptive policy so we can show which algorithm each window got.
  std::vector<AlgorithmId> picks;
  const PipelineResult result = RunTumblingWindows(
      stream_r, stream_s, spec, [&](const Stream& wr, const Stream& ws) {
        const AlgorithmId id = ChooseAlgorithm(wr, ws, options).algorithm;
        picks.push_back(id);
        return id;
      });

  std::printf("%-8s %-10s %12s %12s %14s\n", "window", "algorithm", "inputs",
              "matches", "tput(in/ms)");
  for (size_t i = 0; i < result.windows.size(); ++i) {
    const WindowRun& w = result.windows[i];
    std::printf("%-8u %-10s %12llu %12llu %14.1f\n", w.window_index,
                std::string(AlgorithmName(picks[i])).c_str(),
                static_cast<unsigned long long>(w.result.inputs),
                static_cast<unsigned long long>(w.result.matches),
                w.result.throughput_per_ms);
  }
  std::printf("\ntotal: %llu inputs -> %llu matches across %zu windows\n",
              static_cast<unsigned long long>(result.total_inputs),
              static_cast<unsigned long long>(result.total_matches),
              result.windows.size());
  std::printf(
      "Expected: the sparse early windows and the hot-key later windows get "
      "different algorithms (duplication drives the sort/hash choice).\n");
  return 0;
}
