// Stock turnover analysis (the paper's §4.2.1 Stock scenario): join the
// traded stream with the quotes stream on stock id within a one-second
// window, replayed in real time.
//
// The arrival rate is low and bursty, so the decision tree recommends the
// eager SHJ-JM; this example runs both that recommendation and a lazy
// baseline to show the latency/progressiveness gap the paper reports.
//
//   build/examples/stock_turnover
#include <cstdio>

#include "src/datagen/real_world.h"
#include "src/join/decision_tree.h"
#include "src/join/runner.h"

int main() {
  using namespace iawj;

  const Workload stock = GenerateRealWorld(
      {.which = RealWorkload::kStock, .scale = 0.2, .window_ms = 1000});
  std::printf("Stock workload: trades R %s\n",
              FormatStats(ComputeStats(stock.r)).c_str());
  std::printf("                quotes S %s\n",
              FormatStats(ComputeStats(stock.s)).c_str());

  // Ask the decision tree which algorithm fits this workload if we care
  // about delivering partial results early.
  const WorkloadProfile profile =
      ProfileFromStats(ComputeStats(stock.r), ComputeStats(stock.s));
  const AlgorithmId pick =
      RecommendAlgorithm(profile, Objective::kProgressiveness, {});
  std::printf("decision tree picks: %s\n\n",
              std::string(AlgorithmName(pick)).c_str());

  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  spec.clock_mode = Clock::Mode::kRealTime;  // replay the arrival timeline

  JoinRunner runner;
  for (AlgorithmId id : {pick, AlgorithmId::kNpj}) {
    const RunResult result = runner.Run(id, stock.r, stock.s, spec);
    std::printf("%s%s\n", result.algorithm.c_str(),
                id == pick ? " (recommended)" : " (lazy baseline)");
    std::printf("  matches %llu, throughput %.1f tuples/ms\n",
                static_cast<unsigned long long>(result.matches),
                result.throughput_per_ms);
    std::printf("  p95 latency %.2f ms\n", result.p95_latency_ms);
    std::printf("  first 50%% of matches by %.0f ms (window is 1000 ms)\n\n",
                result.progress.TimeToFractionMs(0.5));
  }
  std::printf(
      "Expected: the eager pick streams matches out during the window, the "
      "lazy baseline delivers everything only after it closes.\n");
  return 0;
}
