// Quickstart: join two small in-memory streams over a one-second window
// with a lazy (NPJ) and an eager (SHJ-JM) algorithm, and read the metrics.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/datagen/micro.h"
#include "src/join/runner.h"

int main() {
  using namespace iawj;

  // 1. Describe a workload: two streams at 100 tuples/ms over a 1 s window,
  //    each key appearing ~4 times per stream.
  MicroSpec workload_spec;
  workload_spec.rate_r = 100;
  workload_spec.rate_s = 100;
  workload_spec.window_ms = 1000;
  workload_spec.dupe = 4;
  const MicroWorkload workload = GenerateMicro(workload_spec);

  // 2. Configure the run: 4 worker threads, instant clock (treat the data
  //    as already arrived — switch to Clock::Mode::kRealTime to replay the
  //    arrival timeline instead).
  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  spec.clock_mode = Clock::Mode::kInstant;

  // 3. Run any of the eight algorithms through the same runner.
  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kNpj, AlgorithmId::kShjJm}) {
    const RunResult result = runner.Run(id, workload.r, workload.s, spec);
    std::printf("%s: %llu matches from %llu inputs\n",
                result.algorithm.c_str(),
                static_cast<unsigned long long>(result.matches),
                static_cast<unsigned long long>(result.inputs));
    std::printf("  throughput     %.1f tuples/ms\n", result.throughput_per_ms);
    std::printf("  p95 latency    %.3f ms\n", result.p95_latency_ms);
    std::printf("  50%% of matches by %.1f ms\n",
                result.progress.TimeToFractionMs(0.5));
  }
  return 0;
}
