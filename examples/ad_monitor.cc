// Ad-revenue correlation (the paper's §4.2.1 Rovio scenario): join an
// advertisement stream with a purchase stream over a window with extreme key
// duplication, at rest.
//
// High duplication is where the sort-based algorithms shine (paper §5.3.2 /
// Figure 11): this example contrasts MPass against NPJ and prints the
// execution-time breakdown that explains the gap (probe-dominated hash
// chains vs cache-friendly sorted runs).
//
//   build/examples/ad_monitor
#include <cstdio>

#include "src/datagen/real_world.h"
#include "src/join/runner.h"

int main() {
  using namespace iawj;

  const Workload rovio = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = 0.01, .window_ms = 1000});
  std::printf("Rovio-style workload: ads R %s\n",
              FormatStats(ComputeStats(rovio.r)).c_str());
  std::printf("                purchases S %s\n\n",
              FormatStats(ComputeStats(rovio.s)).c_str());

  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  spec.clock_mode = Clock::Mode::kInstant;  // analyze the closed window

  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kMpass, AlgorithmId::kNpj}) {
    const RunResult result = runner.Run(id, rovio.r, rovio.s, spec);
    std::printf("%s: %llu matches, %.1f ns of work per input tuple\n",
                result.algorithm.c_str(),
                static_cast<unsigned long long>(result.matches),
                result.WorkNsPerInput());
    for (int p = 0; p < kNumPhases; ++p) {
      const Phase phase = static_cast<Phase>(p);
      const uint64_t ns = result.phases.GetNs(phase);
      if (ns == 0) continue;
      std::printf("    %-10s %6.1f ns/input\n",
                  std::string(PhaseName(phase)).c_str(),
                  static_cast<double>(ns) / result.inputs);
    }
  }
  std::printf(
      "\nExpected: under ~thousands of duplicates per key, the sort join "
      "(MPASS) spends far less in probe than the hash join (NPJ), whose "
      "bucket chains grow with the duplication level.\n");
  return 0;
}
