// iawj_chaos — randomized fault-schedule soak for supervised execution.
//
//   iawj_chaos --schedules=200 --seed=1 [--verbose]
//
// Each schedule draws a random micro workload, algorithm, supervision
// policy, and fault spec from a seeded RNG, runs it (single supervised run
// or a supervised tumbling-window pipeline), and asserts the recovery
// invariant: the outcome is always one of
//
//   1. success   — status ok, no loss: matches and checksum equal the
//                  nested-loop reference exactly (retries and fallbacks
//                  included: recovery never duplicates or drops matches);
//   2. degraded  — status ok with bounded, consistently accounted loss:
//                  shed tuples match the harness's own deterministic
//                  re-shedding, skipped windows are counted with dropped
//                  tuples, and matches never exceed the reference;
//   3. failure   — a clean typed Status (never kOk), with a message.
//
// Never a crash, a hang, or a leak — CI runs this under ASan with a timeout.
//
// Reproducibility: schedule i under base seed B derives its RNG seed as
// SplitMix64(B + i), so any single schedule reruns exactly with
// --schedules=1 --seed=<B+i> (the harness prints that line on violation).
//
// --spill-soak narrows every schedule to the spill machinery: HHJ under a
// memory budget small enough to stage partitions on disk, with the spill
// fault sites (disk_full, spill_corrupt, io_truncate) in the draw. The
// nightly ASan job runs this mode so torn pages and mid-write ENOSPC get
// soaked, not just unit-tested.
//
// --disorder-soak narrows every schedule to the disorder-tolerant ingestion
// layer: arrivals are permuted within a random bound, a random reorder
// slack / allowed lateness / dedup policy is drawn, and the ingest fault
// sites (disorder_burst, late_tuple, dup_tuple, watermark_stall) join the
// draw. The harness mirrors ingestion deterministically (same fault
// schedule, re-armed before the real run), so the joined result must match
// the reference over the ingested streams exactly and every quarantined
// tuple must be accounted in the recovery log — disorder never silently
// loses or duplicates a match.
//
// --serve-soak turns every schedule into a live multi-tenant daemon run: an
// in-process iawj_serve instance on a throwaway Unix socket, 2–4 concurrent
// tenant clients streaming drawn micro workloads, and three invariants —
// fault-free tenants must be byte-identical (matches and checksum) to the
// same spec run through the offline tumbling-window pipeline; faulted
// tenants (window_fail under retry+fallback+skip supervision) must come
// back typed with at most the offline match count; and a random mid-stream
// SIGTERM-style drain must seal cleanly, every client receiving its
// window/bye tail. Across the whole soak the shared pool must show
// cross-tenant steals — tenants really multiplex, they don't partition.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/join/supervisor.h"
#include "src/join/window_pipeline.h"
#include "src/memory/tracker.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/stream/disorder.h"

namespace iawj {
namespace {

struct Schedule {
  AlgorithmId id = AlgorithmId::kNpj;
  JoinSpec spec;
  MicroSpec micro;
  std::string fault;       // IAWJ_FAULT-style spec; empty = no injection
  int64_t mem_budget = 0;  // tracked-byte budget for this schedule; 0 = keep
  bool pipeline = false;   // tumbling windows vs one supervised run
  bool replay = false;     // re-arm (fault::Reset) and assert determinism
  bool disorder = false;   // permute arrivals and run an ingest policy
  uint32_t disorder_shift = 0;  // permutation bound (<= the drawn slack)
};

// Pins a schedule onto the spill path: HHJ under a budget small enough that
// the partition histogram cannot keep everything resident. 64K..192K against
// a few thousand 8-byte tuples spills more than half the partitions and
// usually forces at least one recursive repartition.
void ForceSpill(Rng& rng, Schedule* sched) {
  sched->id = AlgorithmId::kHhj;
  sched->mem_budget = 64 * 1024 + static_cast<int64_t>(rng.NextBounded(128)) * 1024;
}

// Pins a schedule onto the disorder path: arrivals permuted within a random
// bound and ingested under a random slack / lateness / dedup policy. The
// permutation stays within the slack, so absent faults ingestion is
// lossless; shedding is forced off because the harness's expectation is the
// reference join over the ingested streams, not a shed subset of them.
void ForceDisorder(Rng& rng, Schedule* sched) {
  JoinSpec& spec = sched->spec;
  sched->disorder = true;
  spec.disorder_slack_ms = 4 + static_cast<double>(rng.NextBounded(29));
  spec.allowed_lateness_ms =
      rng.NextBounded(2) == 0
          ? 1 + static_cast<double>(rng.NextBounded(16))
          : -1;
  spec.ingest_dedup = rng.NextBounded(4) == 0;
  sched->disorder_shift =
      static_cast<uint32_t>(rng.NextBounded(
          static_cast<uint64_t>(spec.disorder_slack_ms) + 1));
  spec.shed_watermark_per_ms = -1;
}

Schedule DrawSchedule(uint64_t seed, bool spill_soak, bool disorder_soak) {
  Rng rng(seed);
  Schedule sched;

  sched.id = kAllAlgorithms[rng.NextBounded(std::size(kAllAlgorithms))];
  // kHhj sits outside kAllAlgorithms (it is not part of the paper's study
  // grid), so the draw above never picks it; give the spill path its own
  // slice of fault-free coverage here.
  if (rng.NextBounded(8) == 0) ForceSpill(rng, &sched);
  sched.pipeline = rng.NextBounded(3) == 0;

  // Small workloads keep one schedule in the tens of milliseconds; the soak
  // gets its coverage from schedule count, not workload size.
  const uint32_t window_ms = 4 + static_cast<uint32_t>(rng.NextBounded(7));
  sched.micro.rate_r = 200 + rng.NextBounded(600);
  sched.micro.rate_s = 200 + rng.NextBounded(600);
  sched.micro.window_ms = window_ms;
  sched.micro.dupe = 1.0 + static_cast<double>(rng.NextBounded(3));
  sched.micro.seed = rng.Next();

  JoinSpec& spec = sched.spec;
  spec.num_threads = 1 << rng.NextBounded(3);  // 1, 2, 4
  spec.jb_group_size = spec.num_threads % 2 == 0 ? 2 : 1;
  // Single runs join the whole generated window; pipelines segment it.
  spec.window_ms = sched.pipeline ? 2 : window_ms;
  spec.radix_bits = 4 + static_cast<int>(rng.NextBounded(7));
  spec.supervisor_seed = rng.Next();
  // Explicitly off (ignore environment) unless ForceDisorder turns them on:
  // a stray $IAWJ_DISORDER_SLACK must not change what a seed reproduces.
  spec.disorder_slack_ms = -1;
  spec.allowed_lateness_ms = -1;

  // Supervision policy: sometimes nothing (unsupervised control group),
  // usually retries and/or fallbacks, occasionally skipping and shedding.
  spec.retry_max_attempts = 1 + static_cast<int>(rng.NextBounded(3));
  spec.retry_backoff_ms = rng.NextBounded(4) == 0 ? 1 : 0;
  spec.fallback_enabled = rng.NextBounded(2) == 0;
  spec.skip_failed_windows = sched.pipeline && rng.NextBounded(2) == 0;
  if (rng.NextBounded(4) == 0) {
    // Watermark below the arrival rate forces real shedding.
    spec.shed_watermark_per_ms = static_cast<double>(
        std::min(sched.micro.rate_r, sched.micro.rate_s) / 4 + 1);
  } else {
    spec.shed_watermark_per_ms = -1;  // explicitly off (ignore environment)
  }

  // Fault spec. Stall sites park a thread until cancellation, so they are
  // only drawn together with a deadline; the other sites fail fast on
  // their own. The spill sites (cases 8-10) only have hits when partitions
  // actually stage to disk, so they force an HHJ + small-budget schedule,
  // and the ingest sites (cases 11-15) only have hits when an ingest policy
  // is enabled, so they force a disorder schedule.
  switch (rng.NextBounded(16)) {
    case 0:
      break;  // fault-free schedule: supervision must stay invisible
    case 1:
      sched.fault = "alloc:" + std::to_string(1 + rng.NextBounded(200));
      break;
    case 2:  // persistent allocation failure: retries cannot save this
      sched.fault =
          "alloc:" + std::to_string(1 + rng.NextBounded(50)) + ":0";
      break;
    case 3:
      sched.fault = "worker_stall:" +
                    std::to_string(1 + rng.NextBounded(spec.num_threads));
      spec.deadline_ms = 300;
      break;
    case 4:
      sched.fault = "eager_stall:" + std::to_string(1 + rng.NextBounded(4));
      spec.deadline_ms = 300;
      break;
    case 5:
      sched.fault = "window_fail:" + std::to_string(1 + rng.NextBounded(3));
      break;
    case 6:  // every window fails: only a skip policy survives this
      sched.fault = "window_fail:1:0";
      break;
    case 7:
      sched.fault = "clock_skew";
      break;
    case 8:  // mid-write ENOSPC: retry or HHJ -> NPJ fallback recovers
      sched.fault = "disk_full:" + std::to_string(1 + rng.NextBounded(8));
      ForceSpill(rng, &sched);
      break;
    case 9:  // torn page on restore: must fail clean as data_loss
      sched.fault =
          "spill_corrupt:" + std::to_string(1 + rng.NextBounded(4));
      ForceSpill(rng, &sched);
      break;
    case 10:  // truncated run file on restore: ditto
      sched.fault = "io_truncate:" + std::to_string(1 + rng.NextBounded(4));
      ForceSpill(rng, &sched);
      break;
    case 11:  // fault-free disorder: bounded permutation must be lossless
      ForceDisorder(rng, &sched);
      break;
    case 12:  // an arrival held back ~128 deliveries: may exceed the slack
      sched.fault =
          "disorder_burst:" + std::to_string(1 + rng.NextBounded(100));
      ForceDisorder(rng, &sched);
      break;
    case 13:  // an arrival held to EOS: admitted-late or quarantined
      sched.fault = "late_tuple:" + std::to_string(1 + rng.NextBounded(100));
      ForceDisorder(rng, &sched);
      break;
    case 14:  // an arrival delivered twice: dedup must quarantine it
      sched.fault = "dup_tuple:" + std::to_string(1 + rng.NextBounded(100));
      ForceDisorder(rng, &sched);
      sched.spec.ingest_dedup = true;
      break;
    case 15:  // the watermark generator freezes briefly
      sched.fault =
          "watermark_stall:" + std::to_string(1 + rng.NextBounded(20));
      ForceDisorder(rng, &sched);
      break;
  }

  if (spill_soak) {
    // Soak mode: every schedule spills. Roughly half run fault-free (pure
    // exactness under pressure), the rest split across the spill sites.
    ForceSpill(rng, &sched);
    switch (rng.NextBounded(6)) {
      case 0:
        sched.fault = "disk_full:" + std::to_string(1 + rng.NextBounded(8));
        break;
      case 1:
        sched.fault =
            "spill_corrupt:" + std::to_string(1 + rng.NextBounded(4));
        break;
      case 2:
        sched.fault = "io_truncate:" + std::to_string(1 + rng.NextBounded(4));
        break;
      default:
        sched.fault.clear();
        break;
    }
  }

  if (disorder_soak) {
    // Soak mode: every schedule ingests permuted arrivals. Roughly half run
    // fault-free (pure reorder exactness), the rest split across the
    // ingest fault sites.
    ForceDisorder(rng, &sched);
    switch (rng.NextBounded(8)) {
      case 0:
        sched.fault =
            "disorder_burst:" + std::to_string(1 + rng.NextBounded(100));
        break;
      case 1:
        sched.fault =
            "late_tuple:" + std::to_string(1 + rng.NextBounded(100));
        break;
      case 2:
        sched.fault = "dup_tuple:" + std::to_string(1 + rng.NextBounded(100));
        sched.spec.ingest_dedup = true;
        break;
      case 3:
        sched.fault =
            "watermark_stall:" + std::to_string(1 + rng.NextBounded(20));
        break;
      default:
        sched.fault.clear();
        break;
    }
  }

  sched.replay = !sched.fault.empty() && rng.NextBounded(4) == 0;
  return sched;
}

// The harness's own expectation: shed exactly as the supervisor would
// (same watermark, lag, and seeds), then nested-loop join either the whole
// window (single run) or each tumbling segment.
struct Expectation {
  uint64_t matches = 0;
  uint64_t checksum = 0;
  uint64_t tuples_shed = 0;
  bool disorder = false;  // expectation computed over ingested streams
  IngestStats ingest;     // the harness's own deterministic ingestion
};

// Window slice with rebased timestamps, exactly as the pipeline feeds each
// window (the checksum mixes timestamps, so rebasing matters).
std::vector<Tuple> Slice(const Stream& stream, uint64_t start,
                         uint64_t stop) {
  const auto lo = std::lower_bound(
      stream.tuples.begin(), stream.tuples.end(), start,
      [](const Tuple& t, uint64_t v) { return t.ts < v; });
  const auto hi = std::lower_bound(
      lo, stream.tuples.end(), stop,
      [](const Tuple& t, uint64_t v) { return t.ts < v; });
  std::vector<Tuple> slice;
  slice.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    slice.push_back(Tuple{static_cast<uint32_t>(it->ts - start), it->key});
  }
  return slice;
}

Expectation ComputeExpectation(const Schedule& sched, const Stream& r,
                               const Stream& s) {
  Expectation expect;
  const Stream* er = &r;
  const Stream* es = &s;
  ShedResult shed_r, shed_s;
  if (sched.spec.shed_watermark_per_ms > 0) {
    // Mirrors SupervisorPolicy::Resolve's defaults and the supervisor's
    // seed split (r: seed, s: seed + 1).
    shed_r = ShedToWatermark(r, sched.spec.shed_watermark_per_ms, 1.0,
                             sched.spec.supervisor_seed);
    shed_s = ShedToWatermark(s, sched.spec.shed_watermark_per_ms, 1.0,
                             sched.spec.supervisor_seed + 1);
    er = &shed_r.stream;
    es = &shed_s.stream;
    expect.tuples_shed = shed_r.tuples_shed + shed_s.tuples_shed;
  }
  if (sched.pipeline) {
    const uint64_t max_ts = std::max<uint64_t>(er->MaxTs(), es->MaxTs());
    for (uint64_t start = 0; start <= max_ts;
         start += sched.spec.window_ms) {
      const std::vector<Tuple> wr =
          Slice(*er, start, start + sched.spec.window_ms);
      const std::vector<Tuple> ws =
          Slice(*es, start, start + sched.spec.window_ms);
      const ReferenceResult ref = NestedLoopJoin(wr, ws);
      expect.matches += ref.matches;
      expect.checksum += ref.checksum;
    }
  } else {
    const std::vector<Tuple> wr = Slice(*er, 0, sched.spec.window_ms);
    const std::vector<Tuple> ws = Slice(*es, 0, sched.spec.window_ms);
    const ReferenceResult ref = NestedLoopJoin(wr, ws);
    expect.matches = ref.matches;
    expect.checksum = ref.checksum;
  }
  return expect;
}

// One schedule's observed outcome, shape-independent of how it ran.
struct Outcome {
  Status status;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  RecoveryLog recovery;
  IngestStats ingest;
};

Outcome RunSchedule(const Schedule& sched, const Stream& r, const Stream& s) {
  Outcome out;
  if (sched.pipeline) {
    const PipelineResult pipeline =
        RunTumblingWindows(sched.id, r, s, sched.spec);
    out.status = pipeline.status;
    out.matches = pipeline.total_matches;
    out.checksum = pipeline.total_checksum;
    out.recovery = pipeline.recovery;
    out.ingest = pipeline.ingest;
  } else {
    Supervisor supervisor;
    const RunResult result = supervisor.Run(sched.id, r, s, sched.spec);
    out.status = result.status;
    out.matches = result.matches;
    out.checksum = result.checksum;
    out.recovery = result.recovery;
    out.ingest = result.ingest;
  }
  return out;
}

struct Tally {
  int ok_exact = 0;
  int degraded = 0;
  int failed = 0;
  int replayed = 0;
  int violations = 0;
};

// "" normally, " --spill-soak" in soak mode: the flag changes how each seed
// draws, so the printed repro line has to carry it.
const char* g_repro_flags = "";

void Violation(Tally* tally, uint64_t repro_seed, const char* what,
               const std::string& detail) {
  ++tally->violations;
  std::fprintf(stderr,
               "VIOLATION: %s (%s)\n  reproduce: iawj_chaos --schedules=1 "
               "--seed=%llu%s\n",
               what, detail.c_str(),
               static_cast<unsigned long long>(repro_seed), g_repro_flags);
}

void CheckSchedule(const Expectation& expect, const Outcome& out,
                   uint64_t repro_seed, Tally* tally) {
  const RecoveryLog& rec = out.recovery;
  if (!out.status.ok()) {
    ++tally->failed;
    if (out.status.code() == StatusCode::kOk || out.status.message().empty()) {
      Violation(tally, repro_seed, "failure without a typed status",
                out.status.ToString());
    }
    return;
  }
  // Accounting must be self-consistent regardless of degradation.
  if ((rec.tuples_shed > 0) != (rec.shed_ratio > 0) || rec.shed_ratio > 1.0) {
    Violation(tally, repro_seed, "inconsistent shed accounting",
              "tuples_shed=" + std::to_string(rec.tuples_shed) +
                  " shed_ratio=" + std::to_string(rec.shed_ratio));
  }
  if (rec.tuples_shed != expect.tuples_shed) {
    Violation(tally, repro_seed, "shed count differs from deterministic shed",
              std::to_string(rec.tuples_shed) + " vs expected " +
                  std::to_string(expect.tuples_shed));
  }
  if (expect.disorder) {
    // Every delivered tuple must be admitted or quarantined under a typed
    // disposition, the run's own ingestion must match the harness's
    // deterministic mirror, and quarantined tuples must surface in the
    // bounded-loss accounting — never silently vanish.
    const IngestStats& in = out.ingest;
    if (in.tuples_out + in.late_dropped + in.duplicates + in.corrupt !=
        in.tuples_in) {
      Violation(tally, repro_seed, "ingest conservation violated",
                "out=" + std::to_string(in.tuples_out) +
                    " dropped=" + std::to_string(in.late_dropped) +
                    " dup=" + std::to_string(in.duplicates) +
                    " corrupt=" + std::to_string(in.corrupt) +
                    " vs in=" + std::to_string(in.tuples_in));
    }
    if (in.tuples_in != expect.ingest.tuples_in ||
        in.tuples_out != expect.ingest.tuples_out ||
        in.reordered != expect.ingest.reordered ||
        in.late_dropped != expect.ingest.late_dropped ||
        in.duplicates != expect.ingest.duplicates ||
        in.corrupt != expect.ingest.corrupt) {
      Violation(tally, repro_seed,
                "ingest differs from the deterministic mirror",
                "out " + std::to_string(in.tuples_out) + "/" +
                    std::to_string(in.tuples_in) + " vs expected " +
                    std::to_string(expect.ingest.tuples_out) + "/" +
                    std::to_string(expect.ingest.tuples_in));
    }
    if (rec.windows_skipped == 0 &&
        rec.tuples_dropped != expect.ingest.quarantined()) {
      Violation(tally, repro_seed,
                "quarantine not accounted as dropped tuples",
                std::to_string(rec.tuples_dropped) + " vs quarantined " +
                    std::to_string(expect.ingest.quarantined()));
    }
  }
  if (rec.windows_skipped > 0 && rec.tuples_dropped == 0) {
    Violation(tally, repro_seed, "skipped windows without dropped tuples",
              std::to_string(rec.windows_skipped) + " skipped");
  }
  if (rec.windows_skipped > 0) {
    // Bounded loss: whatever was skipped can only remove matches.
    ++tally->degraded;
    if (out.matches > expect.matches) {
      Violation(tally, repro_seed, "more matches than the reference",
                std::to_string(out.matches) + " > " +
                    std::to_string(expect.matches));
    }
    return;
  }
  // No windows skipped: the result must be exact over the (possibly shed)
  // inputs — retries and fallbacks never duplicate or lose matches.
  if (out.matches != expect.matches || out.checksum != expect.checksum) {
    Violation(tally, repro_seed, "result differs from reference",
              "matches " + std::to_string(out.matches) + " vs " +
                  std::to_string(expect.matches) + ", checksum " +
                  std::to_string(out.checksum) + " vs " +
                  std::to_string(expect.checksum));
  }
  if (rec.degraded()) {
    ++tally->degraded;
  } else {
    ++tally->ok_exact;
  }
}

// --- Serve soak -----------------------------------------------------------

// One drawn tenant of a serve-soak schedule.
struct ServeTenant {
  std::string name;
  AlgorithmId id = AlgorithmId::kNpj;
  JoinSpec spec;
  MicroSpec micro;
};

// Streams a tenant's workload to the daemon in timeline chunks and collects
// its results. Any typed refusal or transport error lands in `status`.
struct ServeOutcome {
  Status status;
  serve::ServeClient::Totals totals;
  size_t windows = 0;
  bool drained = false;
  bool windows_typed = true;  // every window frame carried a known status
};

ServeOutcome DriveTenant(const std::string& socket_path,
                         const ServeTenant& tenant, const Stream& r,
                         const Stream& s) {
  ServeOutcome out;
  serve::ServeClient client;
  serve::TenantSpec hello;
  hello.name = tenant.name;
  hello.algo = tenant.id;
  hello.spec = tenant.spec;
  if (out.status = client.Connect(socket_path); !out.status.ok()) return out;
  if (out.status = client.Hello(hello); !out.status.ok()) return out;
  // Four timeline chunks per stream: enough batches that eager sealing and
  // a mid-stream drain both have frame boundaries to land on.
  const uint64_t max_ts = std::max<uint64_t>(r.MaxTs(), s.MaxTs());
  const uint64_t step = max_ts / 4 + 1;
  size_t ir = 0, is = 0;
  for (uint64_t t = 0; t <= max_ts && !client.drained(); t += step) {
    const size_t ir0 = ir, is0 = is;
    while (ir < r.tuples.size() && r.tuples[ir].ts < t + step) ++ir;
    while (is < s.tuples.size() && s.tuples[is].ts < t + step) ++is;
    out.status = client.SendBatch(
        std::span<const Tuple>(r.tuples.data() + ir0, ir - ir0),
        std::span<const Tuple>(s.tuples.data() + is0, is - is0));
    if (!out.status.ok()) return out;
  }
  if (out.status = client.End(); !out.status.ok()) return out;
  out.totals = client.totals();
  out.windows = client.windows().size();
  out.drained = client.drained();
  for (const serve::WindowResult& window : client.windows()) {
    StatusCode code;
    if (!serve::ParseStatusCodeName(window.status_code, &code)) {
      out.windows_typed = false;
    }
    if (!window.ok() && window.status_message.empty()) {
      out.windows_typed = false;
    }
  }
  return out;
}

int RunServeSoak(uint64_t schedules, uint64_t base_seed, bool verbose) {
  Tally tally;
  uint64_t total_steals = 0;
  for (uint64_t i = 0; i < schedules; ++i) {
    const uint64_t repro_seed = base_seed + i;
    uint64_t x = repro_seed;
    Rng rng(Rng::SplitMix64(&x));

    const int tenants = 2 + static_cast<int>(rng.NextBounded(3));
    const bool faulted = rng.NextBounded(3) == 0;
    const bool drain_mid = !faulted && rng.NextBounded(4) == 0;

    serve::ServeOptions options;
    options.socket_path = "/tmp/iawj_chaos_serve_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(i) + ".sock";
    options.pool_threads = 2 + static_cast<int>(rng.NextBounded(3));
    options.max_tenants = tenants;
    options.max_inflight = 1 + static_cast<int>(rng.NextBounded(4));
    options.max_buffer_tuples = 1 << 22;
    options.mem_share = 1.0;

    std::vector<ServeTenant> draws(static_cast<size_t>(tenants));
    std::vector<MicroWorkload> workloads(draws.size());
    std::vector<PipelineResult> offline(draws.size());
    for (size_t t = 0; t < draws.size(); ++t) {
      ServeTenant& tenant = draws[t];
      tenant.name = "soak" + std::to_string(i) + "t" + std::to_string(t);
      tenant.id = kAllAlgorithms[rng.NextBounded(std::size(kAllAlgorithms))];
      tenant.micro.rate_r = 200 + rng.NextBounded(400);
      tenant.micro.rate_s = 200 + rng.NextBounded(400);
      tenant.micro.window_ms = 8 + static_cast<uint32_t>(rng.NextBounded(9));
      tenant.micro.dupe = 1.0 + static_cast<double>(rng.NextBounded(3));
      tenant.micro.seed = rng.Next();
      JoinSpec& spec = tenant.spec;
      spec.num_threads = 1 + static_cast<int>(rng.NextBounded(2));
      // Join window shorter than the stream: each tenant seals several
      // tumbling windows, so eager sealing and window_index math get soaked,
      // not just the end-of-stream tail.
      spec.window_ms = 2 + static_cast<uint32_t>(rng.NextBounded(4));
      // Explicitly off so an inherited IAWJ_SHED_WATERMARK / disorder env
      // cannot change what the daemon runs vs the offline mirror.
      spec.shed_watermark_per_ms = -1;
      spec.disorder_slack_ms = -1;
      spec.allowed_lateness_ms = -1;
      if (tenant.id == AlgorithmId::kShjJb || tenant.id == AlgorithmId::kPmjJb) {
        spec.jb_group_size = 1;  // must divide any drawn thread count
      }
      if (faulted) {
        spec.retry_max_attempts = 3;
        spec.fallback_enabled = true;
        spec.skip_failed_windows = true;
      }
      workloads[t] = GenerateMicro(tenant.micro);
      // The offline expectation runs before any fault is armed: this is the
      // exact pipeline the daemon must reproduce tenant by tenant.
      offline[t] = RunTumblingWindows(tenant.id, workloads[t].r,
                                      workloads[t].s, spec);
    }

    if (faulted) {
      const std::string spec_text =
          "window_fail:" + std::to_string(1 + rng.NextBounded(4)) + ":" +
          std::to_string(1 + rng.NextBounded(3));
      if (const Status st = fault::Configure(spec_text); !st.ok()) {
        Violation(&tally, repro_seed, "fault spec rejected", st.ToString());
        continue;
      }
    } else {
      fault::Clear();
    }

    serve::ServeServer server(options);
    if (const Status st = server.Start(); !st.ok()) {
      Violation(&tally, repro_seed, "daemon failed to start", st.ToString());
      fault::Clear();
      continue;
    }

    std::vector<ServeOutcome> outcomes(draws.size());
    std::vector<std::thread> clients;
    clients.reserve(draws.size());
    for (size_t t = 0; t < draws.size(); ++t) {
      clients.emplace_back([&, t] {
        outcomes[t] = DriveTenant(options.socket_path, draws[t],
                                  workloads[t].r, workloads[t].s);
      });
    }
    if (drain_mid) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      server.RequestDrain();
    }
    for (std::thread& client : clients) client.join();
    server.Shutdown();
    total_steals += server.stats().cross_tenant_steals;
    fault::Clear();

    for (size_t t = 0; t < draws.size(); ++t) {
      const ServeOutcome& out = outcomes[t];
      if (!out.status.ok()) {
        // The only legitimate refusal is a hello racing a mid-stream drain.
        if (drain_mid &&
            out.status.code() == StatusCode::kFailedPrecondition) {
          ++tally.failed;
          continue;
        }
        Violation(&tally, repro_seed,
                  "tenant refused or lost mid-conversation",
                  draws[t].name + ": " + out.status.ToString());
        continue;
      }
      if (!out.windows_typed) {
        Violation(&tally, repro_seed, "window result without a typed status",
                  draws[t].name);
        continue;
      }
      if (!faulted && !drain_mid) {
        // The core tentpole invariant: a daemon tenant is byte-identical to
        // the same spec offline — same window count, matches, checksum.
        if (out.totals.matches != offline[t].total_matches ||
            out.totals.checksum != offline[t].total_checksum ||
            out.windows != offline[t].windows.size()) {
          Violation(&tally, repro_seed, "daemon differs from offline run",
                    draws[t].name + ": " +
                        std::to_string(out.totals.matches) + "/" +
                        std::to_string(out.totals.checksum) + "/" +
                        std::to_string(out.windows) + " vs " +
                        std::to_string(offline[t].total_matches) + "/" +
                        std::to_string(offline[t].total_checksum) + "/" +
                        std::to_string(offline[t].windows.size()));
          continue;
        }
        ++tally.ok_exact;
      } else {
        // Drained or faulted: bounded loss only — never extra matches.
        if (out.totals.matches > offline[t].total_matches) {
          Violation(&tally, repro_seed, "more matches than offline",
                    draws[t].name + ": " +
                        std::to_string(out.totals.matches) + " > " +
                        std::to_string(offline[t].total_matches));
          continue;
        }
        if (out.totals.matches == offline[t].total_matches &&
            out.totals.checksum == offline[t].total_checksum) {
          ++tally.ok_exact;
        } else {
          ++tally.degraded;
        }
      }
    }

    if (verbose) {
      std::printf("  #%llu tenants=%d%s%s steals=%llu\n",
                  static_cast<unsigned long long>(i), tenants,
                  faulted ? " faulted" : "", drain_mid ? " drained" : "",
                  static_cast<unsigned long long>(
                      server.stats().cross_tenant_steals));
    }
  }

  // The whole point of one shared pool: over a soak of multi-tenant
  // schedules, work must have crossed tenant homes at least once.
  if (schedules >= 8 && total_steals == 0) {
    Violation(&tally, base_seed, "no cross-tenant steals over the soak",
              std::to_string(schedules) + " schedules");
  }
  std::printf(
      "chaos serve soak done: %d exact, %d degraded, %d refused-clean, "
      "%llu steal(s), %d violation(s)\n",
      tally.ok_exact, tally.degraded, tally.failed,
      static_cast<unsigned long long>(total_steals), tally.violations);
  return tally.violations == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  const auto schedules = static_cast<uint64_t>(flags.GetInt("schedules", 50));
  const auto base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool verbose = flags.GetBool("verbose", false);
  const bool spill_soak = flags.GetBool("spill-soak", false);
  const bool disorder_soak = flags.GetBool("disorder-soak", false);
  const bool serve_soak = flags.GetBool("serve-soak", false);
  if (static_cast<int>(spill_soak) + static_cast<int>(disorder_soak) +
          static_cast<int>(serve_soak) >
      1) {
    std::fprintf(stderr,
                 "error: --spill-soak, --disorder-soak and --serve-soak "
                 "are exclusive\n");
    return 1;
  }
  if (spill_soak) g_repro_flags = " --spill-soak";
  if (disorder_soak) g_repro_flags = " --disorder-soak";
  if (serve_soak) g_repro_flags = " --serve-soak";
  if (const auto unknown = flags.Unknown(); !unknown.empty()) {
    std::string all;
    for (const auto& u : unknown) all += " --" + u;
    std::fprintf(stderr, "error: unknown flags:%s\n", all.c_str());
    return 1;
  }

  if (serve_soak) {
    std::printf("chaos soak (serve): %llu schedule(s), base seed %llu "
                "(reproduce schedule i: --schedules=1 --seed=%llu+i)\n",
                static_cast<unsigned long long>(schedules),
                static_cast<unsigned long long>(base_seed),
                static_cast<unsigned long long>(base_seed));
    return RunServeSoak(schedules, base_seed, verbose);
  }

  std::printf("chaos soak%s: %llu schedule(s), base seed %llu "
              "(reproduce schedule i: --schedules=1 --seed=%llu+i)\n",
              spill_soak ? " (spill)" : disorder_soak ? " (disorder)" : "",
              static_cast<unsigned long long>(schedules),
              static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(base_seed));

  Tally tally;
  for (uint64_t i = 0; i < schedules; ++i) {
    const uint64_t repro_seed = base_seed + i;
    uint64_t x = repro_seed;
    const Schedule sched =
        DrawSchedule(Rng::SplitMix64(&x), spill_soak, disorder_soak);

    const MicroWorkload workload = GenerateMicro(sched.micro);

    // The fault schedule is armed before the expectation is computed:
    // disorder schedules mirror ingestion under the same injected faults
    // (then re-arm, so the real run sees an identical fault sequence). The
    // harness's shed/reference machinery itself never hits a fault site.
    if (!sched.fault.empty()) {
      if (const Status st = fault::Configure(sched.fault); !st.ok()) {
        Violation(&tally, repro_seed, "fault spec rejected", st.ToString());
        continue;
      }
    } else {
      fault::Clear();
    }

    Stream run_r = workload.r;
    Stream run_s = workload.s;
    Expectation expect;
    if (sched.disorder) {
      run_r = PermuteWithinSlack(workload.r, sched.disorder_shift,
                                 sched.micro.seed);
      run_s = PermuteWithinSlack(workload.s, sched.disorder_shift,
                                 sched.micro.seed + 1);
      // Mirror the supervisor/pipeline exactly: resolve the policy, ingest
      // R then S, merge the accounting — then re-arm the fault counters.
      const IngestPolicy policy = IngestPolicy::Resolve(
          sched.spec.disorder_slack_ms, sched.spec.allowed_lateness_ms,
          sched.spec.ingest_dedup);
      const IngestResult ir = IngestStream(run_r, policy);
      const IngestResult is = IngestStream(run_s, policy);
      expect = ComputeExpectation(sched, ir.stream, is.stream);
      expect.disorder = true;
      expect.ingest = ir.stats;
      expect.ingest.Merge(is.stats);
      fault::Reset();
    } else {
      expect = ComputeExpectation(sched, run_r, run_s);
    }

    // Spill schedules run under their own tracked-byte budget; restore the
    // process-wide one (usually unlimited) after the replay, so budgets
    // never leak across schedules.
    const int64_t saved_budget = mem::BudgetBytes();
    if (sched.mem_budget > 0) mem::SetBudgetBytes(sched.mem_budget);
    const Outcome out = RunSchedule(sched, run_r, run_s);
    CheckSchedule(expect, out, repro_seed, &tally);

    if (sched.replay) {
      // Determinism: re-arming the same fault schedule and rerunning must
      // reproduce the same status, and — for completed runs — the same
      // answer bit-for-bit. Failed runs only pin the status code: partial
      // match counts depend on how far each worker raced before the
      // cancellation landed.
      fault::Reset();
      const Outcome again = RunSchedule(sched, run_r, run_s);
      ++tally.replayed;
      const bool answers_comparable = out.status.ok() && again.status.ok();
      if (again.status.code() != out.status.code() ||
          (answers_comparable &&
           (again.matches != out.matches || again.checksum != out.checksum))) {
        Violation(&tally, repro_seed, "replay diverged",
                  std::string(StatusCodeName(out.status.code())) + "/" +
                      std::to_string(out.matches) + " vs " +
                      std::string(StatusCodeName(again.status.code())) + "/" +
                      std::to_string(again.matches));
      }
    }
    if (sched.mem_budget > 0) mem::SetBudgetBytes(saved_budget);
    fault::Clear();

    if (verbose) {
      std::printf(
          "  #%llu algo=%s %s%s fault=%s -> %s matches=%llu attempts=%d "
          "fallbacks=%d skipped=%llu shed=%llu dropped=%llu\n",
          static_cast<unsigned long long>(i),
          std::string(AlgorithmName(sched.id)).c_str(),
          sched.pipeline ? "pipeline" : "single",
          sched.disorder ? " disorder" : "",
          sched.fault.empty() ? "-" : sched.fault.c_str(),
          std::string(StatusCodeName(out.status.code())).c_str(),
          static_cast<unsigned long long>(out.matches), out.recovery.attempts,
          out.recovery.fallbacks_taken,
          static_cast<unsigned long long>(out.recovery.windows_skipped),
          static_cast<unsigned long long>(out.recovery.tuples_shed),
          static_cast<unsigned long long>(out.recovery.tuples_dropped));
    }
  }

  std::printf(
      "chaos soak done: %d exact, %d degraded, %d failed-clean, %d replayed, "
      "%d violation(s)\n",
      tally.ok_exact, tally.degraded, tally.failed, tally.replayed,
      tally.violations);
  return tally.violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) { return iawj::Run(argc, argv); }
