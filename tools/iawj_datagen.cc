// iawj_datagen — generate benchmark workloads and save them to disk.
//
// Examples:
//   iawj_datagen --workload=micro --rate=1600 --dupe=10 --out=/tmp/w
//   iawj_datagen --workload=rovio --scale=0.01 --format=csv --out=/tmp/rv
//
// Writes <out>.r.<ext> and <out>.s.<ext> (ext: bin or csv) plus prints each
// stream's Table-3-style statistics. Files feed back into
// `iawj_cli --workload=file --r=... --s=...`.
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/datagen/micro.h"
#include "src/datagen/real_world.h"
#include "src/io/workload_io.h"

namespace iawj {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }

  const std::string workload = flags.GetString("workload", "micro");
  const std::string out = flags.GetString("out", "");
  const std::string format = flags.GetString("format", "bin");
  const auto window_ms = static_cast<uint32_t>(flags.GetInt("window", 1000));
  if (out.empty()) return Fail("--out=<path-prefix> is required");
  if (format != "bin" && format != "csv") {
    return Fail("--format must be bin or csv");
  }

  Stream r, s;
  if (workload == "micro") {
    MicroSpec spec;
    spec.rate_r = static_cast<uint64_t>(flags.GetInt("rate", 1600));
    spec.rate_s = static_cast<uint64_t>(flags.GetInt("rate-s", 0));
    if (spec.rate_s == 0) spec.rate_s = spec.rate_r;
    spec.window_ms = window_ms;
    spec.dupe = flags.GetDouble("dupe", 1.0);
    spec.zipf_key = flags.GetDouble("zipf-key", 0.0);
    spec.zipf_ts = flags.GetDouble("zipf-ts", 0.0);
    spec.size_r = static_cast<uint64_t>(flags.GetInt("size-r", 0));
    spec.size_s = static_cast<uint64_t>(flags.GetInt("size-s", 0));
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    MicroWorkload w = GenerateMicro(spec);
    r = std::move(w.r);
    s = std::move(w.s);
  } else {
    RealWorldSpec spec;
    spec.scale = flags.GetDouble("scale", 0.05);
    spec.window_ms = window_ms;
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
    if (workload == "stock") {
      spec.which = RealWorkload::kStock;
    } else if (workload == "rovio") {
      spec.which = RealWorkload::kRovio;
    } else if (workload == "ysb") {
      spec.which = RealWorkload::kYsb;
    } else if (workload == "debs") {
      spec.which = RealWorkload::kDebs;
    } else {
      return Fail("unknown --workload (micro|stock|rovio|ysb|debs)");
    }
    Workload w = GenerateRealWorld(spec);
    r = std::move(w.r);
    s = std::move(w.s);
  }

  if (const auto unknown = flags.Unknown(); !unknown.empty()) {
    std::string all;
    for (const auto& u : unknown) all += " --" + u;
    return Fail("unknown flags:" + all);
  }

  const std::string ext = format == "bin" ? ".bin" : ".csv";
  const auto save = [&](const Stream& stream, const std::string& path) {
    return format == "bin" ? io::SaveStream(stream, path)
                           : io::SaveStreamCsv(stream, path);
  };
  if (const Status st = save(r, out + ".r" + ext); !st.ok()) {
    return Fail(st.ToString());
  }
  if (const Status st = save(s, out + ".s" + ext); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("R -> %s.r%s  %s\n", out.c_str(), ext.c_str(),
              FormatStats(ComputeStats(r)).c_str());
  std::printf("S -> %s.s%s  %s\n", out.c_str(), ext.c_str(),
              FormatStats(ComputeStats(s)).c_str());
  return 0;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) { return iawj::Run(argc, argv); }
