// iawj_trace_check — validate a Chrome Trace Event JSON file produced by the
// trace recorder (IAWJ_TRACE_FILE).
//
// Checks:
//   - the file parses as JSON and has a traceEvents array
//   - every event carries name/ph/pid/tid (and ts for non-metadata events)
//   - per thread, B/E events pair up, nest properly, and names match
//   - per thread, timestamps are non-decreasing
//
// Prints a summary (threads, spans, max nesting depth, duration) and exits
// non-zero on the first violation. Usage:
//   iawj_trace_check trace.json
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/json.h"

namespace iawj {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  return 1;
}

struct ThreadState {
  std::vector<std::string> open;  // names of open B spans, innermost last
  double last_ts = -1;
  std::string name;
  size_t events = 0;
  size_t spans = 0;
  size_t max_depth = 0;
};

int Run(int argc, char** argv) {
  FlagParser flags;
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }
  const bool verbose = flags.GetBool("verbose", false);
  if (const auto unknown = flags.Unknown(); !unknown.empty()) {
    return Fail("unknown flag --" + unknown.front());
  }
  if (flags.positional().size() != 1) {
    return Fail("usage: iawj_trace_check [--verbose] <trace.json>");
  }
  const std::string& path = flags.positional().front();

  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  json::Value root;
  if (const Status status = json::Parse(text, &root); !status.ok()) {
    return Fail(status.ToString());
  }
  if (!root.is_object()) return Fail("top-level value is not an object");
  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("missing traceEvents array");
  }

  std::map<std::pair<int64_t, int64_t>, ThreadState> threads;
  double min_ts = -1, max_ts = -1;
  size_t index = 0;
  for (const json::Value& event : events->array) {
    const std::string where = "event " + std::to_string(index++);
    if (!event.is_object()) return Fail(where + ": not an object");
    const json::Value* name = event.Find("name");
    const json::Value* ph = event.Find("ph");
    const json::Value* pid = event.Find("pid");
    const json::Value* tid = event.Find("tid");
    if (name == nullptr || !name->is_string()) {
      return Fail(where + ": missing string name");
    }
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      return Fail(where + ": missing one-character ph");
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      return Fail(where + ": missing numeric pid/tid");
    }
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata: no ts/ordering requirements

    const json::Value* ts = event.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return Fail(where + ": missing numeric ts");
    }
    ThreadState& thread = threads[{static_cast<int64_t>(pid->number),
                                   static_cast<int64_t>(tid->number)}];
    ++thread.events;
    if (ts->number < thread.last_ts) {
      return Fail(where + ": ts " + std::to_string(ts->number) +
                  " goes backwards on tid " + std::to_string(tid->number));
    }
    thread.last_ts = ts->number;
    if (min_ts < 0 || ts->number < min_ts) min_ts = ts->number;
    max_ts = std::max(max_ts, ts->number);

    switch (kind) {
      case 'B':
        thread.open.push_back(name->string);
        thread.max_depth = std::max(thread.max_depth, thread.open.size());
        ++thread.spans;
        break;
      case 'E':
        if (thread.open.empty()) {
          return Fail(where + ": E '" + name->string + "' without open B");
        }
        if (thread.open.back() != name->string) {
          return Fail(where + ": E '" + name->string +
                      "' closes open span '" + thread.open.back() + "'");
        }
        thread.open.pop_back();
        break;
      case 'i':
      case 'I':
      case 'C':
        break;
      default:
        return Fail(where + ": unsupported ph '" + ph->string + "'");
    }
  }

  size_t total_events = 0, total_spans = 0, max_depth = 0;
  for (const auto& [key, thread] : threads) {
    if (!thread.open.empty()) {
      return Fail("tid " + std::to_string(key.second) + ": span '" +
                  thread.open.back() + "' never closed");
    }
    total_events += thread.events;
    total_spans += thread.spans;
    max_depth = std::max(max_depth, thread.max_depth);
    if (verbose) {
      std::printf("tid %lld: %zu events, %zu spans, depth %zu\n",
                  static_cast<long long>(key.second), thread.events,
                  thread.spans, thread.max_depth);
    }
  }
  std::printf(
      "OK: %zu events on %zu threads, %zu spans, max depth %zu, "
      "%.3f ms spanned\n",
      total_events, threads.size(), total_spans, max_depth,
      max_ts < 0 ? 0.0 : (max_ts - min_ts) / 1000.0);
  return 0;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) { return iawj::Run(argc, argv); }
