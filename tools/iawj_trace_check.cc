// iawj_trace_check — validate a Chrome Trace Event JSON file produced by the
// trace recorder (IAWJ_TRACE_FILE).
//
// Checks:
//   - the file parses as JSON and has a traceEvents array
//   - every event carries name/ph/pid/tid (and ts for non-metadata events)
//   - per thread, B/E events pair up, nest properly, and names match
//   - per thread, timestamps are non-decreasing
//
// Prints a summary (threads, spans, max nesting depth, duration) and exits
// non-zero on the first violation. Usage:
//   iawj_trace_check trace.json
//
// With --records, validates structured run records (IAWJ_METRICS_DIR JSON
// files) instead: shape of the v2+ fields, for v3 records the internal
// consistency of the `recovery` block (flag/counter agreement, shed_ratio
// in [0, 1], well-formed events), for v4 records the `scheduler` block
// (morsel mode, non-negative counters, per-worker rows summing to the
// totals), for v5 records the always-present `pmu` block (measured
// counters non-negative, per-phase deltas summing to the totals, or a
// nonempty unavailability reason) and `metrics` block (enabled flag,
// non-negative counters), for v6 records the `spill` block (spilled
// runs only: non-negative counters, residency split summing within the
// partition count), and for v7 records the `ingest` block (ingested runs
// only: non-negative counts, late_admitted + late_dropped <= late_total,
// watermark <= max ts, and the conservation invariant tuples_out +
// late_dropped + duplicates + corrupt == tuples_in). Older versions are
// still accepted. Usage:
//   iawj_trace_check --records <run_record.json | metrics-dir>
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/json.h"

namespace iawj {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  return 1;
}

// --- Run-record validation (--records) ---

bool IsBool(const json::Value* v) {
  return v != nullptr && v->kind == json::Value::Kind::kBool;
}

// Validates one run-record JSON object; returns a failure description or
// empty. `where` prefixes every message with the file name.
std::string CheckRecord(const json::Value& root, const std::string& where) {
  if (!root.is_object()) return where + ": not a JSON object";
  const json::Value* version = root.Find("record_version");
  if (version == nullptr || !version->is_number() || version->number < 2) {
    return where + ": missing record_version >= 2";
  }
  const json::Value* status = root.Find("status");
  if (status == nullptr || !status->is_string() ||
      (status->string != "ok" && status->string != "failed")) {
    return where + ": status must be \"ok\" or \"failed\"";
  }
  if (status->string == "failed") {
    const json::Value* code = root.Find("status_code");
    if (code == nullptr || !code->is_string() || code->string.empty()) {
      return where + ": failed record without status_code";
    }
  }
  const json::Value* algorithm = root.Find("algorithm");
  if (algorithm == nullptr || !algorithm->is_string()) {
    return where + ": missing algorithm";
  }
  for (const char* field : {"inputs", "matches", "checksum", "elapsed_ms"}) {
    const json::Value* v = root.Find(field);
    if (v == nullptr || !v->is_number()) {
      return where + ": missing numeric " + field;
    }
  }

  // v4: scheduler block, present only for morsel-scheduled runs. Totals
  // must be non-negative and the per-worker array must sum to them.
  if (const json::Value* sched = root.Find("scheduler"); sched != nullptr) {
    if (version->number < 4) {
      return where + ": scheduler block requires record_version >= 4";
    }
    if (!sched->is_object()) return where + ": scheduler is not an object";
    const json::Value* mode = sched->Find("mode");
    if (mode == nullptr || !mode->is_string() || mode->string != "morsel") {
      return where + ": scheduler.mode must be \"morsel\"";
    }
    const char* totals[] = {"morsel_size",  "numa_nodes",   "morsels",
                            "tuples",       "steals",       "steal_misses",
                            "remote_steals"};
    for (const char* field : totals) {
      const json::Value* v = sched->Find(field);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return where + ": scheduler." + field + " missing or negative";
      }
    }
    const json::Value* workers = sched->Find("workers");
    if (workers == nullptr || !workers->is_array() || workers->array.empty()) {
      return where + ": scheduler.workers missing or empty";
    }
    double sum_morsels = 0, sum_steals = 0;
    size_t index = 0;
    for (const json::Value& wkr : workers->array) {
      const std::string at =
          where + ": scheduler.workers[" + std::to_string(index++) + "]";
      if (!wkr.is_object()) return at + " is not an object";
      for (const char* field : {"worker", "node", "morsels", "tuples",
                                "steals", "steal_misses", "remote_steals"}) {
        const json::Value* v = wkr.Find(field);
        if (v == nullptr || !v->is_number() || v->number < 0) {
          return at + " missing numeric " + field;
        }
      }
      sum_morsels += wkr.Find("morsels")->number;
      sum_steals += wkr.Find("steals")->number;
    }
    if (sum_morsels != sched->Find("morsels")->number ||
        sum_steals != sched->Find("steals")->number) {
      return where + ": scheduler totals disagree with the workers array";
    }
  }

  // v5: pmu + metrics blocks, both mandatory from v5 on. A record may
  // lack measurements, but it must SAY so ({available: false, reason} /
  // {enabled: false}) — silence is indistinguishable from a wiring bug.
  if (version->number >= 5) {
    const json::Value* pmu = root.Find("pmu");
    if (pmu == nullptr || !pmu->is_object()) {
      return where + ": v5 record without pmu object";
    }
    const json::Value* available = pmu->Find("available");
    if (!IsBool(available)) return where + ": pmu.available missing";
    if (!available->boolean) {
      const json::Value* reason = pmu->Find("reason");
      if (reason == nullptr || !reason->is_string() || reason->string.empty()) {
        return where + ": unavailable pmu without a reason";
      }
    } else {
      const json::Value* events = pmu->Find("events");
      if (events == nullptr || !events->is_array() || events->array.empty()) {
        return where + ": available pmu without events";
      }
      const json::Value* totals = pmu->Find("totals");
      const json::Value* phases = pmu->Find("phases");
      if (totals == nullptr || !totals->is_object()) {
        return where + ": pmu.totals missing";
      }
      if (phases == nullptr || !phases->is_object()) {
        return where + ": pmu.phases missing";
      }
      for (const json::Value& event : events->array) {
        if (!event.is_string() || event.string.empty()) {
          return where + ": pmu.events entry is not a name";
        }
        const json::Value* total = totals->Find(event.string);
        if (total == nullptr || !total->is_number() || total->number < 0) {
          return where + ": pmu.totals." + event.string +
                 " missing or negative";
        }
        // Phase deltas: each non-negative, and their sum must not exceed
        // the run total (equality holds by construction — totals are
        // defined as the sum over phases — but only <= is contractual).
        double phase_sum = 0;
        for (const auto& [phase_name, phase] : phases->object) {
          const json::Value* delta = phase.Find(event.string);
          if (delta == nullptr || !delta->is_number() || delta->number < 0) {
            return where + ": pmu.phases." + phase_name + "." + event.string +
                   " missing or negative";
          }
          phase_sum += delta->number;
        }
        if (phase_sum > total->number) {
          return where + ": pmu." + event.string +
                 " phase deltas exceed the run total";
        }
      }
    }
    const json::Value* metrics = root.Find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
      return where + ": v5 record without metrics object";
    }
    const json::Value* enabled = metrics->Find("enabled");
    if (!IsBool(enabled)) return where + ": metrics.enabled missing";
    if (enabled->boolean) {
      const json::Value* counters_obj = metrics->Find("counters");
      if (counters_obj == nullptr || !counters_obj->is_object()) {
        return where + ": enabled metrics without counters";
      }
      for (const auto& [name, value] : counters_obj->object) {
        if (!value.is_number() || value.number < 0) {
          return where + ": metrics.counters." + name +
                 " missing or negative";
        }
      }
    }
  }

  // v6: spill block, present only when the run staged partitions on disk.
  if (const json::Value* spill = root.Find("spill"); spill != nullptr) {
    if (version->number < 6) {
      return where + ": spill block requires record_version >= 6";
    }
    if (!spill->is_object()) return where + ": spill is not an object";
    for (const char* field :
         {"partitions", "partitions_spilled", "partitions_resident",
          "bytes_written", "bytes_read", "pages_written", "pages_read",
          "recursion_depth", "bnl_fallbacks", "spill_elapsed_ms"}) {
      const json::Value* v = spill->Find(field);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return where + ": spill." + field + " missing or negative";
      }
    }
    const double partitions = spill->Find("partitions")->number;
    const double spilled = spill->Find("partitions_spilled")->number;
    const double resident = spill->Find("partitions_resident")->number;
    // Empty partitions belong to neither list, so <= rather than ==.
    if (spilled + resident > partitions) {
      return where + ": spill residency split exceeds the partition count";
    }
    if (spilled > 0 && spill->Find("bytes_written")->number <= 0) {
      return where + ": spilled partitions but no bytes written";
    }
  }

  // v7: ingest block, present only when the run's inputs went through the
  // disorder-tolerant ingestion layer. Every tuple must be accounted for:
  // admitted, or quarantined under a typed disposition — never silent.
  if (const json::Value* ingest = root.Find("ingest"); ingest != nullptr) {
    if (version->number < 7) {
      return where + ": ingest block requires record_version >= 7";
    }
    if (!ingest->is_object()) return where + ": ingest is not an object";
    for (const char* field :
         {"tuples_in", "tuples_out", "reordered", "late_total",
          "late_admitted", "late_dropped", "duplicates", "corrupt",
          "watermark_clamps", "max_disorder_ms", "max_ts_ms",
          "final_watermark_ms"}) {
      const json::Value* v = ingest->Find(field);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return where + ": ingest." + field + " missing or negative";
      }
    }
    const double tuples_in = ingest->Find("tuples_in")->number;
    const double tuples_out = ingest->Find("tuples_out")->number;
    const double late_total = ingest->Find("late_total")->number;
    const double late_admitted = ingest->Find("late_admitted")->number;
    const double late_dropped = ingest->Find("late_dropped")->number;
    const double duplicates = ingest->Find("duplicates")->number;
    const double corrupt = ingest->Find("corrupt")->number;
    if (late_admitted + late_dropped > late_total) {
      return where + ": ingest late dispositions exceed late_total";
    }
    if (tuples_out + late_dropped + duplicates + corrupt != tuples_in) {
      return where + ": ingest conservation violated (out + quarantined "
             "!= in)";
    }
    if (ingest->Find("final_watermark_ms")->number >
        ingest->Find("max_ts_ms")->number) {
      return where + ": ingest watermark beyond the maximum timestamp";
    }
  }

  // v8: kernels block — always present from v8 on, naming the resolved
  // mode and the variant each phase executed. Values are closed enums, so
  // a typo'd or stale writer fails here rather than in a downstream A/B.
  if (const json::Value* kernels = root.Find("kernels"); kernels != nullptr) {
    if (version->number < 8) {
      return where + ": kernels block requires record_version >= 8";
    }
    if (!kernels->is_object()) return where + ": kernels is not an object";
    const auto one_of = [&](const char* field,
                            std::initializer_list<const char*> allowed)
        -> std::string {
      const json::Value* v = kernels->Find(field);
      if (v == nullptr || !v->is_string()) {
        return where + ": kernels." + field + " missing or not a string";
      }
      for (const char* a : allowed) {
        if (v->string == a) return "";
      }
      return where + ": kernels." + field + " has unknown value '" +
             v->string + "'";
    };
    if (std::string err =
            one_of("mode", {"scalar", "swwc", "simd", "lockfree"});
        !err.empty()) {
      return err;
    }
    if (std::string err = one_of("scatter", {"scalar", "swwc"});
        !err.empty()) {
      return err;
    }
    if (std::string err = one_of("build", {"scalar", "lockfree"});
        !err.empty()) {
      return err;
    }
    if (std::string err = one_of("probe", {"scalar", "batched", "simd"});
        !err.empty()) {
      return err;
    }
  } else if (version->number >= 8) {
    return where + ": record_version >= 8 but no kernels block";
  }

  // v9: serve block, present only for windows executed inside the
  // iawj_serve daemon. Carries the multi-tenant provenance (tenant,
  // tumbling slot, pool state) that ties the record back to one tenant
  // window of one daemon run.
  if (const json::Value* serve = root.Find("serve"); serve != nullptr) {
    if (version->number < 9) {
      return where + ": serve block requires record_version >= 9";
    }
    if (!serve->is_object()) return where + ": serve is not an object";
    const json::Value* tenant = serve->Find("tenant");
    if (tenant == nullptr || !tenant->is_string() || tenant->string.empty()) {
      return where + ": serve.tenant missing or empty";
    }
    for (const char* field :
         {"window_index", "window_start_ms", "tenants_active", "queue_depth",
          "cross_tenant_steals", "windows_shed", "wait_ms"}) {
      const json::Value* v = serve->Find(field);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return where + ": serve." + field + " missing or negative";
      }
    }
    const json::Value* worker = serve->Find("worker");
    if (worker == nullptr || !worker->is_number() || worker->number < -1) {
      return where + ": serve.worker missing or below -1";
    }
    const json::Value* stolen = serve->Find("stolen");
    if (stolen == nullptr ||
        stolen->kind != json::Value::Kind::kBool) {
      return where + ": serve.stolen missing or not a boolean";
    }
    if (serve->Find("tenants_active")->number < 1) {
      return where + ": serve.tenants_active < 1 on a served window";
    }
  }

  const json::Value* recovery = root.Find("recovery");
  if (recovery == nullptr) return "";  // unsupervised: no block to check
  if (version->number < 3) {
    return where + ": recovery block requires record_version >= 3";
  }
  if (!recovery->is_object()) return where + ": recovery is not an object";
  const char* counters[] = {"attempts",        "fallbacks_taken",
                            "windows_skipped", "tuples_dropped",
                            "est_matches_lost", "tuples_shed", "shed_ratio"};
  for (const char* field : counters) {
    const json::Value* v = recovery->Find(field);
    if (v == nullptr || !v->is_number() || v->number < 0) {
      return where + ": recovery." + field + " missing or negative";
    }
  }
  const double shed_ratio = recovery->Find("shed_ratio")->number;
  const double tuples_shed = recovery->Find("tuples_shed")->number;
  if (shed_ratio > 1.0) return where + ": shed_ratio > 1";
  if ((tuples_shed > 0) != (shed_ratio > 0)) {
    return where + ": tuples_shed and shed_ratio disagree";
  }
  const json::Value* recovered = recovery->Find("recovered");
  const json::Value* degraded = recovery->Find("degraded");
  if (!IsBool(recovered) || !IsBool(degraded)) {
    return where + ": recovery.recovered/degraded missing";
  }
  const bool want_recovered = recovery->Find("attempts")->number > 1 ||
                              recovery->Find("fallbacks_taken")->number > 0;
  if (recovered->boolean != want_recovered) {
    return where + ": recovered flag disagrees with attempts/fallbacks";
  }
  const bool want_degraded =
      recovery->Find("windows_skipped")->number > 0 || tuples_shed > 0 ||
      recovery->Find("tuples_dropped")->number > 0;
  if (degraded->boolean != want_degraded) {
    return where + ": degraded flag disagrees with skip/shed/drop counters";
  }
  const json::Value* events = recovery->Find("events");
  if (events == nullptr || !events->is_array()) {
    return where + ": recovery.events missing";
  }
  size_t index = 0;
  for (const json::Value& event : events->array) {
    const std::string at = where + ": recovery.events[" +
                           std::to_string(index++) + "]";
    if (!event.is_object()) return at + " is not an object";
    for (const char* field : {"action", "trigger"}) {
      const json::Value* v = event.Find(field);
      if (v == nullptr || !v->is_string() || v->string.empty()) {
        return at + " missing string " + field;
      }
    }
    const json::Value* attempt = event.Find("attempt");
    if (attempt == nullptr || !attempt->is_number() || attempt->number < 0) {
      return at + " missing attempt";
    }
  }
  return "";
}

int CheckRecords(const std::string& path, bool verbose) {
  // A directory validates every *.json inside (one level); a file validates
  // just itself.
  std::vector<std::string> files;
  if (DIR* dir = opendir(path.c_str()); dir != nullptr) {
    while (const dirent* entry = readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        files.push_back(path + "/" + name);
      }
    }
    closedir(dir);
    std::sort(files.begin(), files.end());
    if (files.empty()) return Fail("no .json records in " + path);
  } else {
    files.push_back(path);
  }

  size_t supervised = 0, pmu_measured = 0, spilled = 0, ingested = 0,
         served = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) return Fail("cannot open " + file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json::Value root;
    if (const Status status = json::Parse(buffer.str(), &root); !status.ok()) {
      return Fail(file + ": " + status.ToString());
    }
    if (const std::string err = CheckRecord(root, file); !err.empty()) {
      return Fail(err);
    }
    if (root.Find("recovery") != nullptr) ++supervised;
    if (root.Find("spill") != nullptr) ++spilled;
    if (root.Find("ingest") != nullptr) ++ingested;
    if (root.Find("serve") != nullptr) ++served;
    if (const json::Value* pmu = root.Find("pmu"); pmu != nullptr) {
      const json::Value* available = pmu->Find("available");
      if (IsBool(available) && available->boolean) ++pmu_measured;
    }
    if (verbose) std::printf("ok: %s\n", file.c_str());
  }
  std::printf(
      "OK: %zu record(s) validated, %zu with recovery blocks, "
      "%zu with measured pmu counters, %zu with spill blocks, "
      "%zu with ingest blocks, %zu with serve blocks\n",
      files.size(), supervised, pmu_measured, spilled, ingested, served);
  return 0;
}

struct ThreadState {
  std::vector<std::string> open;  // names of open B spans, innermost last
  double last_ts = -1;
  std::string name;
  size_t events = 0;
  size_t spans = 0;
  size_t max_depth = 0;
};

int Run(int argc, char** argv) {
  FlagParser flags;
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }
  const bool verbose = flags.GetBool("verbose", false);
  // Both "--records <path>" (the parser binds the path to the flag) and
  // "--records=1 <path>" work.
  const std::string records = flags.GetString("records", "");
  if (const auto unknown = flags.Unknown(); !unknown.empty()) {
    return Fail("unknown flag --" + unknown.front());
  }
  const bool records_mode = !records.empty() && records != "false" &&
                            records != "0";
  std::string path;
  if (records_mode && records != "true") {
    path = records;
  } else if (flags.positional().size() == 1) {
    path = flags.positional().front();
  } else {
    return Fail(
        "usage: iawj_trace_check [--verbose] <trace.json>\n"
        "       iawj_trace_check --records [--verbose] <record.json | dir>");
  }
  if (records_mode) return CheckRecords(path, verbose);

  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  json::Value root;
  if (const Status status = json::Parse(text, &root); !status.ok()) {
    return Fail(status.ToString());
  }
  if (!root.is_object()) return Fail("top-level value is not an object");
  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("missing traceEvents array");
  }

  std::map<std::pair<int64_t, int64_t>, ThreadState> threads;
  double min_ts = -1, max_ts = -1;
  size_t index = 0;
  for (const json::Value& event : events->array) {
    const std::string where = "event " + std::to_string(index++);
    if (!event.is_object()) return Fail(where + ": not an object");
    const json::Value* name = event.Find("name");
    const json::Value* ph = event.Find("ph");
    const json::Value* pid = event.Find("pid");
    const json::Value* tid = event.Find("tid");
    if (name == nullptr || !name->is_string()) {
      return Fail(where + ": missing string name");
    }
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      return Fail(where + ": missing one-character ph");
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      return Fail(where + ": missing numeric pid/tid");
    }
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata: no ts/ordering requirements

    const json::Value* ts = event.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return Fail(where + ": missing numeric ts");
    }
    ThreadState& thread = threads[{static_cast<int64_t>(pid->number),
                                   static_cast<int64_t>(tid->number)}];
    ++thread.events;
    if (ts->number < thread.last_ts) {
      return Fail(where + ": ts " + std::to_string(ts->number) +
                  " goes backwards on tid " + std::to_string(tid->number));
    }
    thread.last_ts = ts->number;
    if (min_ts < 0 || ts->number < min_ts) min_ts = ts->number;
    max_ts = std::max(max_ts, ts->number);

    switch (kind) {
      case 'B':
        thread.open.push_back(name->string);
        thread.max_depth = std::max(thread.max_depth, thread.open.size());
        ++thread.spans;
        break;
      case 'E':
        if (thread.open.empty()) {
          return Fail(where + ": E '" + name->string + "' without open B");
        }
        if (thread.open.back() != name->string) {
          return Fail(where + ": E '" + name->string +
                      "' closes open span '" + thread.open.back() + "'");
        }
        thread.open.pop_back();
        break;
      case 'i':
      case 'I':
      case 'C':
        break;
      default:
        return Fail(where + ": unsupported ph '" + ph->string + "'");
    }
  }

  size_t total_events = 0, total_spans = 0, max_depth = 0;
  for (const auto& [key, thread] : threads) {
    if (!thread.open.empty()) {
      return Fail("tid " + std::to_string(key.second) + ": span '" +
                  thread.open.back() + "' never closed");
    }
    total_events += thread.events;
    total_spans += thread.spans;
    max_depth = std::max(max_depth, thread.max_depth);
    if (verbose) {
      std::printf("tid %lld: %zu events, %zu spans, depth %zu\n",
                  static_cast<long long>(key.second), thread.events,
                  thread.spans, thread.max_depth);
    }
  }
  std::printf(
      "OK: %zu events on %zu threads, %zu spans, max depth %zu, "
      "%.3f ms spanned\n",
      total_events, threads.size(), total_spans, max_depth,
      max_ts < 0 ? 0.0 : (max_ts - min_ts) / 1000.0);
  return 0;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) { return iawj::Run(argc, argv); }
