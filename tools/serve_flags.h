// The iawj_serve flag table: single source of truth for every flag the
// daemon accepts, in the same shape as cli_flags.h. --help prints it,
// iawj_serve.cc consumes exactly these names, serve_test.cc asserts the two
// never drift apart, and scripts/docs_check.py cross-checks docs/MANUAL.md
// against it.
#ifndef IAWJ_TOOLS_SERVE_FLAGS_H_
#define IAWJ_TOOLS_SERVE_FLAGS_H_

#include <cstddef>
#include <string>

namespace iawj {
namespace serve_cli {

struct FlagInfo {
  const char* name;   // without the leading --
  const char* value;  // value hint, "" for booleans
  const char* help;   // one-line description with the default
};

// Every flag overrides its matching $IAWJ_SERVE_* environment variable
// (flag > env > default, the same precedence as the engine knobs).
inline constexpr FlagInfo kFlags[] = {
    {"socket", "<path>",
     "Unix socket to listen on (required; $IAWJ_SERVE_SOCKET)"},
    {"pool-threads", "<n>",
     "shared worker pool size ($IAWJ_SERVE_POOL_THREADS, default 4)"},
    {"max-tenants", "<n>",
     "admission: concurrent tenant bound ($IAWJ_SERVE_MAX_TENANTS, "
     "default 8)"},
    {"max-inflight", "<n>",
     "per-tenant in-flight window bound; submitters block at it "
     "($IAWJ_SERVE_MAX_INFLIGHT, default 4)"},
    {"max-buffer", "<tuples>",
     "per-tenant retained-arrival bound; batches past it are refused or "
     "shed ($IAWJ_SERVE_MAX_BUFFER, default 4194304)"},
    {"mem-share", "<frac>",
     "admission: fraction of $IAWJ_MEM_BUDGET one window may claim "
     "($IAWJ_SERVE_MEM_SHARE, default 1.0)"},
    {"help", "", "print this help and exit"},
};

inline constexpr size_t kNumFlags = sizeof(kFlags) / sizeof(kFlags[0]);

inline std::string HelpText() {
  std::string out =
      "usage: iawj_serve --socket=<path> [--flag=value]...\n\n"
      "Long-lived multi-tenant intra-window join daemon. Clients connect\n"
      "over the Unix socket (iawj_cli --connect), register one tenant per\n"
      "connection, stream tuple batches, and receive per-window results.\n"
      "SIGTERM/SIGINT drains: buffered windows finish, run records flush,\n"
      "clients get their result tails, then the daemon exits 0.\n"
      "Exit codes: 0 ok (including drained), 2 invalid argument, 3 failed\n"
      "precondition (bad socket path).\n\n";
  size_t width = 0;
  for (const FlagInfo& f : kFlags) {
    size_t w = 2 + std::string(f.name).size();
    if (f.value[0] != '\0') w += 1 + std::string(f.value).size();
    if (w > width) width = w;
  }
  for (const FlagInfo& f : kFlags) {
    std::string left = "--" + std::string(f.name);
    if (f.value[0] != '\0') left += "=" + std::string(f.value);
    out += "  " + left + std::string(width - left.size() + 2, ' ') +
           f.help + "\n";
  }
  return out;
}

}  // namespace serve_cli
}  // namespace iawj

#endif  // IAWJ_TOOLS_SERVE_FLAGS_H_
