// The iawj_cli flag table: the single source of truth for every flag the
// CLI accepts. --help prints it, iawj_cli.cc consumes exactly these names,
// flags_test.cc asserts the two never drift apart, and
// scripts/docs_check.py cross-checks docs/MANUAL.md against it.
#ifndef IAWJ_TOOLS_CLI_FLAGS_H_
#define IAWJ_TOOLS_CLI_FLAGS_H_

#include <cstddef>
#include <string>

namespace iawj {
namespace cli {

struct FlagInfo {
  const char* name;   // without the leading --
  const char* value;  // value hint, "" for booleans
  const char* help;   // one-line description with the default
};

// Grouped roughly by the order iawj_cli.cc consumes them.
inline constexpr FlagInfo kFlags[] = {
    // Workload selection and generation.
    {"workload", "<name>",
     "workload: micro|stock|rovio|ysb|debs|file (default micro)"},
    {"window", "<ms>", "window length in stream ms (default 1000)"},
    {"rate", "<tuples/ms>", "micro: R arrival rate (default 1600)"},
    {"rate-s", "<tuples/ms>", "micro: S arrival rate (default --rate)"},
    {"dupe", "<factor>", "micro: key duplication factor (default 1.0)"},
    {"zipf-key", "<theta>", "micro: key skew, 0 = uniform (default 0)"},
    {"zipf-ts", "<theta>",
     "micro: timestamp skew, 0 = uniform (default 0)"},
    {"size-r", "<tuples>", "micro: fixed |R|, 0 = rate*window (default 0)"},
    {"size-s", "<tuples>", "micro: fixed |S|, 0 = rate*window (default 0)"},
    {"seed", "<n>", "micro: generator seed (default 42)"},
    {"r", "<path>", "file: R input, .csv or binary (required)"},
    {"s", "<path>", "file: S input, .csv or binary (required)"},
    {"scale", "<factor>",
     "stock/rovio/ysb/debs: size scale factor (default 0.05)"},

    // Join configuration.
    {"algo", "<name>",
     "algorithm: npj|prj|mway|mpass|shj-jm|shj-jb|pmj-jm|pmj-jb|hhj|"
     "adaptive (default npj)"},
    {"threads", "<n>", "worker threads (default 4)"},
    {"realtime", "",
     "pace the virtual clock in wall time (default off: instant)"},
    {"time-scale", "<factor>", "realtime clock scale (default 1.0)"},
    {"radix-bits", "<n>",
     "PRJ/HHJ: total radix bits (default 10; HHJ caps at 7)"},
    {"radix-passes", "<1|2>", "PRJ: partitioning passes (default 1)"},
    {"pmj-delta", "<frac>", "PMJ: initial sorted-run fraction (default 0.2)"},
    {"jb-group", "<g>", "JB: core-group size, divides threads (default 2)"},
    {"physical-partition", "",
     "eager: copy owned tuples into worker-local buffers (default off)"},
    {"simd", "", "use vectorized kernels (default on; --no-simd disables)"},
    {"kernels", "<mode>",
     "hot-path kernels: auto|scalar|swwc|simd|lockfree (default auto -> "
     "$IAWJ_KERNELS)"},
    {"scheduler", "<mode>",
     "work scheduling: auto|static|morsel (default auto -> "
     "$IAWJ_SCHEDULER, then static)"},
    {"morsel-size", "<tuples>",
     "morsel scheduler grain, 0 = $IAWJ_MORSEL_SIZE or 16384 (default 0)"},

    // Execution and supervision.
    {"windows", "<n>", "tumbling windows to run (default 1)"},
    {"deadline", "<ms>",
     "per-run deadline, 0 = $IAWJ_DEADLINE_MS (default 0)"},
    {"retry", "<n>", "supervisor: max attempts, 0 = $IAWJ_RETRY (default 0)"},
    {"retry-backoff", "<ms>",
     "supervisor: backoff between attempts, -1 = keep $IAWJ_RETRY's "
     "backoff (default -1)"},
    {"fallback", "",
     "supervisor: fall back to a simpler algorithm on failure (default off)"},
    {"skip-windows", "",
     "supervisor: skip windows that fail all retries (default off)"},
    {"shed-watermark", "<tuples/ms>",
     "supervisor: shed load above this input rate, 0 = off (default 0)"},
    {"supervisor-seed", "<n>", "supervisor: shedding seed (default 42)"},
    {"disorder-slack", "<ms>",
     "ingest: reorder-buffer slack, 0 = $IAWJ_DISORDER_SLACK, -1 = off "
     "(default 0)"},
    {"allowed-lateness", "<ms>",
     "ingest: admit late tuples within this of the watermark, 0 = "
     "$IAWJ_ALLOWED_LATENESS, -1 = off (default 0)"},
    {"ingest-dedup", "",
     "ingest: quarantine exact (ts,key) re-deliveries (default off)"},
    {"disorder-shuffle", "<ms>",
     "test aid: permute arrivals within this bound before ingest; needs an "
     "enabled ingest policy (default 0)"},

    // Client mode (iawj_serve daemon).
    {"connect", "<socket>",
     "client mode: stream the workload to the iawj_serve daemon at this "
     "Unix socket instead of executing locally (default off)"},
    {"tenant", "<name>",
     "client mode: tenant name registered with the daemon (default cli)"},
    {"batch-ms", "<ms>",
     "client mode: stream-ms of arrivals per batch frame (default 100)"},

    // Output.
    {"counters", "<mode>",
     "counter source: off|sim|pmu; pmu = hardware perf events, sim = "
     "cache simulator (default off, $IAWJ_PMU=1 implies pmu)"},
    {"objective", "<name>",
     "adaptive: throughput|latency|progress (default throughput)"},
    {"csv", "<path>", "also write the metrics table as CSV"},
    {"help", "", "print this help and exit"},
};

inline constexpr size_t kNumFlags = sizeof(kFlags) / sizeof(kFlags[0]);

// The --help text: usage line plus one aligned row per table entry.
inline std::string HelpText() {
  std::string out =
      "usage: iawj_cli [--flag=value | --flag value | --flag | "
      "--no-flag]...\n\n"
      "Runs one IaWJ algorithm over one workload and prints its metrics.\n"
      "Exit codes: 0 ok, 1 generic, 2 invalid argument, 3 failed\n"
      "precondition, 4 resource exhausted, 5 deadline exceeded,\n"
      "6 cancelled, 7 data loss, 8 internal, 9 recovered, 10 degraded.\n\n";
  size_t width = 0;
  for (const FlagInfo& f : kFlags) {
    size_t w = 2 + std::string(f.name).size();  // "--name"
    if (f.value[0] != '\0') w += 1 + std::string(f.value).size();
    if (w > width) width = w;
  }
  for (const FlagInfo& f : kFlags) {
    std::string left = "--" + std::string(f.name);
    if (f.value[0] != '\0') left += "=" + std::string(f.value);
    out += "  " + left + std::string(width - left.size() + 2, ' ') +
           f.help + "\n";
  }
  return out;
}

}  // namespace cli
}  // namespace iawj

#endif  // IAWJ_TOOLS_CLI_FLAGS_H_
