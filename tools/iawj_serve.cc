// iawj_serve — the multi-tenant intra-window join daemon (ISSUE 10).
//
// Examples:
//   iawj_serve --socket=/tmp/iawj.sock
//   IAWJ_SERVE_POOL_THREADS=8 iawj_serve --socket=/tmp/iawj.sock
//   iawj_serve --socket=/tmp/iawj.sock --max-tenants=16 --mem-share=0.25
//
// One daemon multiplexes many logical queries (tenants) onto one shared
// fair-share worker pool; clients speak the newline-framed JSON protocol
// (src/serve/protocol.h), most conveniently through `iawj_cli
// --connect=<socket>`. Every tenant window executes through the same
// supervised join stack as offline runs and emits a v9 run record when
// $IAWJ_METRICS_DIR is set. SIGTERM (or SIGINT) drains: in-flight and
// buffered windows complete, clients receive their window/bye tails, run
// records flush, and the daemon exits 0. See docs/OPERATIONS.md for the
// operator runbook.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "src/common/flags.h"
#include "src/serve/server.h"
#include "tools/serve_flags.h"

namespace iawj {
namespace {

std::atomic<bool> g_terminate{false};

void OnTerminate(int) { g_terminate.store(true, std::memory_order_relaxed); }

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }
  if (flags.GetBool("help", false)) {
    std::fputs(serve_cli::HelpText().c_str(), stdout);
    return 0;
  }

  serve::ServeOptions options;
  options.socket_path = flags.GetString("socket", "");
  options.pool_threads = static_cast<int>(flags.GetInt("pool-threads", 0));
  options.max_tenants = static_cast<int>(flags.GetInt("max-tenants", 0));
  options.max_inflight = static_cast<int>(flags.GetInt("max-inflight", 0));
  options.max_buffer_tuples = flags.GetInt("max-buffer", 0);
  options.mem_share = flags.GetDouble("mem-share", 0);

  if (const auto unknown = flags.Unknown(); !unknown.empty()) {
    std::string all;
    for (const auto& u : unknown) all += " --" + u;
    return Fail("unknown flags:" + all);
  }

  serve::ServeServer server(options);
  if (const Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "error [%s]: %s\n",
                 std::string(StatusCodeName(status.code())).c_str(),
                 std::string(status.message()).c_str());
    return status.code() == StatusCode::kInvalidArgument ? 2 : 3;
  }

  // Signal-driven drain: the handler only flips a flag; the main thread
  // does the actual draining so nothing async-signal-unsafe runs in the
  // handler.
  std::signal(SIGTERM, OnTerminate);
  std::signal(SIGINT, OnTerminate);
  while (!g_terminate.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "iawj_serve: draining on signal\n");
  server.Shutdown();  // blocks until every tenant's tail is sealed
  const serve::ServeServer::ServerStats stats = server.stats();
  std::printf("drained: %llu connection(s), %llu window(s) done, %llu shed, "
              "%llu cross-tenant steal(s), %llu repartition(s)\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.windows_done),
              static_cast<unsigned long long>(stats.windows_shed),
              static_cast<unsigned long long>(stats.cross_tenant_steals),
              static_cast<unsigned long long>(stats.repartitions));
  return 0;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) { return iawj::Run(argc, argv); }
