// iawj_cli — run any IaWJ algorithm over any workload from the shell.
//
// Examples:
//   iawj_cli --algo=shj-jm --workload=micro --rate=1600 --window=1000
//   iawj_cli --algo=adaptive --objective=latency --workload=rovio --scale=0.01
//   iawj_cli --algo=mpass --workload=file --r=trades.csv --s=quotes.csv
//   iawj_cli --algo=npj --workload=micro --windows=4       # tumbling windows
//   iawj_cli --algo=prj --retry=3 --fallback --deadline=50  # supervised
//
// Prints the run's metrics; --csv=<path> additionally writes them as CSV.
// Supervised runs that needed intervention exit 9 (recovered: retries or
// fallbacks, result complete) or 10 (degraded: windows skipped or tuples
// shed, loss accounted); see README "Exit codes".
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>

#include "src/common/flags.h"
#include "src/datagen/micro.h"
#include "src/datagen/real_world.h"
#include "src/io/workload_io.h"
#include "src/join/adaptive.h"
#include "src/join/runner.h"
#include "src/join/supervisor.h"
#include "src/join/window_pipeline.h"
#include "src/profiling/cache_sim.h"
#include "src/profiling/pmu.h"
#include "src/profiling/run_record.h"
#include "src/report/report.h"
#include "src/serve/client.h"
#include "src/stream/disorder.h"
#include "tools/cli_flags.h"

namespace iawj {
namespace {

bool ParseAlgorithm(const std::string& name, AlgorithmId* id) {
  for (AlgorithmId candidate : kAllAlgorithms) {
    std::string label(AlgorithmName(candidate));
    for (auto& c : label) c = static_cast<char>(std::tolower(c));
    if (label == name) {
      *id = candidate;
      return true;
    }
  }
  // Outside kAllAlgorithms by design (not one of the paper's studied
  // designs): the spill-capable hybrid hash join, reached only explicitly.
  if (name == "hhj") {
    *id = AlgorithmId::kHhj;
    return true;
  }
  return false;
}

// Distinct exit codes per failure class so scripts and CI can assert on the
// way a run failed (documented in README "Exit codes"). 1 stays the generic
// failure so anything unmapped remains a plain error. Successful-but-
// supervised outcomes use 9 (recovered) and 10 (degraded), assigned in
// Run() below.
int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kFailedPrecondition:
      return 3;
    case StatusCode::kResourceExhausted:
      return 4;
    case StatusCode::kDeadlineExceeded:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    case StatusCode::kDataLoss:
      return 7;
    case StatusCode::kInternal:
      return 8;
  }
  return 1;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error [%s]: %s\n",
               std::string(StatusCodeName(status.code())).c_str(),
               std::string(status.message()).c_str());
  return ExitCodeFor(status.code());
}

// Client mode (--connect): stream the generated workload to an iawj_serve
// daemon as one tenant, batch by batch along the arrival timeline, and
// report the daemon's window results. Exit codes match local execution:
// the first failed window's status maps through ExitCodeFor, a recovered
// tenant exits 9, a degraded one 10. A daemon drain mid-stream (SIGTERM on
// the server) is not an error: the daemon seals what it accepted and the
// client reports those windows.
int RunConnected(const std::string& socket_path, const std::string& tenant,
                 AlgorithmId id, const JoinSpec& spec, const Stream& r,
                 const Stream& s, uint32_t batch_ms,
                 const std::string& workload_name) {
  serve::TenantSpec hello;
  hello.name = tenant;
  hello.algo = id;
  hello.spec = spec;
  serve::ServeClient client;
  if (const Status st = client.Connect(socket_path); !st.ok()) {
    return Fail(st);
  }
  if (const Status st = client.Hello(hello); !st.ok()) return Fail(st);

  // Walk both (sorted) streams in lockstep, one batch frame per batch_ms of
  // the arrival timeline, so the daemon sees a live-paced tenant and can
  // seal windows eagerly while the stream is still flowing.
  const uint64_t max_ts = std::max<uint64_t>(r.MaxTs(), s.MaxTs());
  size_t ir = 0, is = 0;
  const uint64_t step = batch_ms > 0 ? batch_ms : 100;
  for (uint64_t t = 0; t <= max_ts && !client.drained(); t += step) {
    const uint64_t end = t + step;
    const size_t ir0 = ir, is0 = is;
    while (ir < r.tuples.size() && r.tuples[ir].ts < end) ++ir;
    while (is < s.tuples.size() && s.tuples[is].ts < end) ++is;
    if (ir == ir0 && is == is0) continue;
    const Status sent = client.SendBatch(
        std::span<const Tuple>(r.tuples.data() + ir0, ir - ir0),
        std::span<const Tuple>(s.tuples.data() + is0, is - is0));
    if (!sent.ok()) return Fail(sent);
  }
  if (const Status st = client.End(); !st.ok()) return Fail(st);

  report::Table table({"tenant", "algo", "windows", "inputs", "matches",
                       "checksum", "steals"});
  uint64_t stolen = 0;
  Status first_failure = Status::Ok();
  for (const serve::WindowResult& window : client.windows()) {
    if (window.stolen) ++stolen;
    if (!window.ok() && first_failure.ok()) {
      StatusCode code = StatusCode::kInternal;
      serve::ParseStatusCodeName(window.status_code, &code);
      first_failure = Status(code, window.status_message);
    }
  }
  const serve::ServeClient::Totals& totals = client.totals();
  table.AddRow({tenant, std::string(AlgorithmName(id)),
                std::to_string(totals.windows), std::to_string(totals.inputs),
                std::to_string(totals.matches),
                std::to_string(totals.checksum), std::to_string(stolen)});
  std::printf("served: %s over %s via %s\n", tenant.c_str(),
              workload_name.c_str(), socket_path.c_str());
  std::fputs(table.ToText().c_str(), stdout);
  if (!first_failure.ok()) return Fail(first_failure);
  if (totals.degraded) {
    std::printf("degraded: daemon accounted bounded loss for this tenant\n");
    return 10;
  }
  if (totals.recovered) {
    std::printf("recovered: daemon retried or fell back for this tenant\n");
    return 9;
  }
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }
  if (flags.GetBool("help", false)) {
    std::fputs(cli::HelpText().c_str(), stdout);
    return 0;
  }

  // --- Workload ---
  const std::string workload = flags.GetString("workload", "micro");
  const auto window_ms =
      static_cast<uint32_t>(flags.GetInt("window", 1000));
  Stream r, s;
  std::string workload_name = workload;
  if (workload == "micro") {
    MicroSpec spec;
    spec.rate_r = static_cast<uint64_t>(flags.GetInt("rate", 1600));
    spec.rate_s = static_cast<uint64_t>(flags.GetInt("rate-s", 0));
    if (spec.rate_s == 0) spec.rate_s = spec.rate_r;
    spec.window_ms = window_ms;
    spec.dupe = flags.GetDouble("dupe", 1.0);
    spec.zipf_key = flags.GetDouble("zipf-key", 0.0);
    spec.zipf_ts = flags.GetDouble("zipf-ts", 0.0);
    spec.size_r = static_cast<uint64_t>(flags.GetInt("size-r", 0));
    spec.size_s = static_cast<uint64_t>(flags.GetInt("size-s", 0));
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    MicroWorkload micro;
    if (const Status st = GenerateMicro(spec, &micro); !st.ok()) {
      return Fail(st);
    }
    r = std::move(micro.r);
    s = std::move(micro.s);
  } else if (workload == "file") {
    const std::string r_path = flags.GetString("r", "");
    const std::string s_path = flags.GetString("s", "");
    if (r_path.empty() || s_path.empty()) {
      return Fail("--workload=file needs --r=<path> and --s=<path>");
    }
    const auto load = [&](const std::string& path, Stream* out) {
      return path.size() > 4 && path.substr(path.size() - 4) == ".csv"
                 ? io::LoadStreamCsv(path, out)
                 : io::LoadStream(path, out);
    };
    if (const Status st = load(r_path, &r); !st.ok()) return Fail(st);
    if (const Status st = load(s_path, &s); !st.ok()) return Fail(st);
  } else {
    RealWorldSpec spec;
    spec.scale = flags.GetDouble("scale", 0.05);
    spec.window_ms = window_ms;
    if (workload == "stock") {
      spec.which = RealWorkload::kStock;
    } else if (workload == "rovio") {
      spec.which = RealWorkload::kRovio;
    } else if (workload == "ysb") {
      spec.which = RealWorkload::kYsb;
    } else if (workload == "debs") {
      spec.which = RealWorkload::kDebs;
    } else {
      return Fail("unknown --workload (micro|stock|rovio|ysb|debs|file)");
    }
    Workload w;
    if (const Status st = GenerateRealWorld(spec, &w); !st.ok()) {
      return Fail(st);
    }
    r = std::move(w.r);
    s = std::move(w.s);
    workload_name = w.name;
  }

  // --- Join configuration ---
  JoinSpec spec;
  spec.num_threads = static_cast<int>(flags.GetInt("threads", 4));
  spec.window_ms = window_ms;
  spec.clock_mode = flags.GetBool("realtime", false)
                        ? Clock::Mode::kRealTime
                        : Clock::Mode::kInstant;
  spec.time_scale = flags.GetDouble("time-scale", 1.0);
  spec.radix_bits = static_cast<int>(flags.GetInt("radix-bits", 10));
  spec.radix_passes = static_cast<int>(flags.GetInt("radix-passes", 1));
  spec.pmj_delta = flags.GetDouble("pmj-delta", 0.2);
  spec.jb_group_size = static_cast<int>(flags.GetInt("jb-group", 2));
  spec.eager_physical_partition = flags.GetBool("physical-partition", false);
  spec.use_simd = flags.GetBool("simd", true);
  // auto defers to $IAWJ_KERNELS; scalar/swwc force one kernel set for A/B
  // runs (see common/kernels.h and README "Knobs").
  if (const std::string kernels = flags.GetString("kernels", "auto");
      !ParseKernelMode(kernels, &spec.kernels)) {
    return Fail("unknown --kernels (auto|scalar|swwc)");
  }
  // Same resolution shape for scheduling: auto defers to $IAWJ_SCHEDULER,
  // anything unresolved runs static (see join/scheduler.h).
  if (const std::string scheduler = flags.GetString("scheduler", "auto");
      !ParseSchedulerMode(scheduler, &spec.scheduler)) {
    return Fail("unknown --scheduler (auto|static|morsel)");
  }
  spec.morsel_size = static_cast<size_t>(flags.GetInt("morsel-size", 0));
  // 0 keeps the $IAWJ_DEADLINE_MS fallback (see JoinSpec::deadline_ms).
  spec.deadline_ms = static_cast<uint32_t>(flags.GetInt("deadline", 0));

  // Supervision (join/supervisor.h). Each 0/absent default defers to the
  // matching environment variable; see SupervisorPolicy::Resolve.
  spec.retry_max_attempts = static_cast<int>(flags.GetInt("retry", 0));
  spec.retry_backoff_ms = flags.GetDouble("retry-backoff", -1);
  spec.fallback_enabled = flags.GetBool("fallback", false);
  spec.skip_failed_windows = flags.GetBool("skip-windows", false);
  spec.shed_watermark_per_ms = flags.GetDouble("shed-watermark", 0);
  spec.supervisor_seed =
      static_cast<uint64_t>(flags.GetInt("supervisor-seed", 42));

  // Disorder-tolerant ingestion (stream/disorder.h). Same precedence as the
  // supervision knobs: 0 defers to the environment, negative is explicitly
  // off. --disorder-shuffle perturbs the loaded arrival order within a
  // bound before ingest — a test aid for proving the reorder buffer
  // restores it (see the jitter-sort proof in disorder.h).
  spec.disorder_slack_ms = flags.GetDouble("disorder-slack", 0);
  spec.allowed_lateness_ms = flags.GetDouble("allowed-lateness", 0);
  spec.ingest_dedup = flags.GetBool("ingest-dedup", false);
  const double disorder_shuffle = flags.GetDouble("disorder-shuffle", 0);

  const std::string algo = flags.GetString("algo", "npj");
  const auto windows = static_cast<uint32_t>(flags.GetInt("windows", 1));

  // Client mode (serve/client.h): non-empty --connect streams the workload
  // to a daemon instead of executing locally; dispatched below once every
  // flag has been consumed.
  const std::string connect = flags.GetString("connect", "");
  const std::string tenant = flags.GetString("tenant", "cli");
  const auto batch_ms = static_cast<uint32_t>(flags.GetInt("batch-ms", 100));
  const std::string csv_path = flags.GetString("csv", "");
  const std::string objective = flags.GetString("objective", "throughput");

  // Counter source: off (default), pmu (hardware counters measured inside
  // the normal run; $IAWJ_PMU=1 makes this the default), or sim (swap in
  // the cache-simulator-instrumented algorithm — single-window,
  // non-adaptive runs only). A pmu request on a host that refuses
  // perf_event_open is NOT an error: the run proceeds and its record
  // carries {available: false, reason}.
  const std::string counters =
      flags.GetString("counters", pmu::Requested() ? "pmu" : "off");
  if (counters == "pmu") {
    pmu::ForceRequested(true);
    if (const pmu::Availability& avail = pmu::Probe(); !avail.available) {
      std::fprintf(stderr, "note: %s\n", avail.reason.c_str());
    }
  } else if (counters != "off" && counters != "sim") {
    return Fail("unknown --counters (off|sim|pmu)");
  }

  if (const auto unknown = flags.Unknown(); !unknown.empty()) {
    std::string all;
    for (const auto& u : unknown) all += " --" + u;
    return Fail("unknown flags:" + all);
  }

  if (disorder_shuffle > 0) {
    // The shuffled sequence violates Stream's sorted contract, so it may
    // only flow into paths that ingest it back into order: a resolved
    // ingest policy on the supervisor or window-pipeline path.
    const IngestPolicy ingest_policy = IngestPolicy::Resolve(
        spec.disorder_slack_ms, spec.allowed_lateness_ms, spec.ingest_dedup);
    if (!ingest_policy.Enabled()) {
      return Fail("--disorder-shuffle needs an enabled ingest policy "
                  "(--disorder-slack, --allowed-lateness or --ingest-dedup)");
    }
    if (algo == "adaptive" || counters == "sim") {
      return Fail("--disorder-shuffle is not supported with --algo=adaptive "
                  "or --counters=sim (those paths bypass ingestion)");
    }
    const auto shift = static_cast<uint32_t>(disorder_shuffle);
    const auto shuffle_seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    r = PermuteWithinSlack(r, shift, shuffle_seed);
    s = PermuteWithinSlack(s, shift, shuffle_seed + 1);
  }

  if (!connect.empty()) {
    if (algo == "adaptive" || counters == "sim") {
      return Fail("--connect does not support --algo=adaptive or "
                  "--counters=sim (daemon tenants run fixed algorithms)");
    }
    AlgorithmId id;
    if (!ParseAlgorithm(algo, &id)) {
      return Fail("unknown --algo (npj|prj|mway|mpass|shj-jm|shj-jb|pmj-jm|"
                  "pmj-jb|hhj)");
    }
    if (const Status status = spec.Validate(id); !status.ok()) {
      return Fail(status.ToString());
    }
    return RunConnected(connect, tenant, id, spec, r, s, batch_ms,
                        workload_name);
  }

  // --- Execute ---
  report::Table table({"workload", "algo", "windows", "inputs", "matches",
                       "tput_per_ms", "p95_latency_ms", "t50_ms",
                       "peak_mb"});
  const auto add_row = [&](const std::string& algorithm, uint32_t nwin,
                           uint64_t inputs, uint64_t matches, double tput,
                           double p95, double t50, double peak_mb) {
    table.AddRow({workload_name, algorithm, std::to_string(nwin),
                  std::to_string(inputs), std::to_string(matches),
                  report::Table::Num(tput, 1), report::Table::Num(p95, 3),
                  report::Table::Num(t50, 1),
                  report::Table::Num(peak_mb, 2)});
  };

  // A failed run still prints its table row (partial metrics) and writes a
  // run record; the failure is reported at exit via the mapped exit code.
  // Recovery accounting decides between 0, 9 (recovered) and 10 (degraded).
  Status run_status = Status::Ok();
  RecoveryLog recovery;
  IngestStats ingest;

  if (algo == "adaptive") {
    AdaptiveOptions options;
    options.hardware.num_cores = spec.num_threads;
    options.objective = objective == "latency" ? Objective::kLatency
                        : objective == "progress"
                            ? Objective::kProgressiveness
                            : Objective::kThroughput;
    if (windows > 1) {
      const PipelineResult pipeline = RunTumblingWindows(
          r, s, spec, MakeAdaptivePolicy(options));
      run_status = pipeline.status;
      recovery = pipeline.recovery;
      ingest = pipeline.ingest;
      add_row("adaptive", static_cast<uint32_t>(pipeline.windows.size()),
              pipeline.total_inputs, pipeline.total_matches, 0, 0, 0, 0);
    } else {
      AdaptiveChoice choice;
      const RunResult result = RunAdaptive(r, s, spec, options, &choice);
      run_status = result.status;
      std::printf("adaptive pick: %s\n",
                  std::string(AlgorithmName(choice.algorithm)).c_str());
      MaybeWriteRunRecord(result, spec,
                          {.bench = "iawj_cli", .workload = workload_name});
      add_row(result.algorithm, 1, result.inputs, result.matches,
              result.throughput_per_ms, result.p95_latency_ms,
              result.progress.TimeToFractionMs(0.5),
              static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
    }
  } else {
    AlgorithmId id;
    if (!ParseAlgorithm(algo, &id)) {
      return Fail("unknown --algo (npj|prj|mway|mpass|shj-jm|shj-jb|pmj-jm|"
                  "pmj-jb|hhj|adaptive)");
    }
    if (const Status status = spec.Validate(id); !status.ok()) {
      return Fail(status.ToString());
    }
    if (windows > 1) {
      const PipelineResult pipeline = RunTumblingWindows(id, r, s, spec);
      run_status = pipeline.status;
      recovery = pipeline.recovery;
      ingest = pipeline.ingest;
      add_row(std::string(AlgorithmName(id)),
              static_cast<uint32_t>(pipeline.windows.size()),
              pipeline.total_inputs, pipeline.total_matches, 0, 0, 0, 0);
    } else if (counters == "sim") {
      // Simulated counters need the traced algorithm variant, which runs
      // outside the supervisor (deterministic replay, no retries).
      std::vector<CacheSim> sims;
      for (int t = 0; t < spec.num_threads; ++t) {
        sims.push_back(CacheSim::XeonGold6126());
      }
      std::vector<CacheSim*> ptrs;
      for (auto& sim : sims) ptrs.push_back(&sim);
      auto traced = CreateTracedAlgorithm(id);
      JoinRunner runner;
      const RunResult result =
          runner.RunWith(traced.get(), r, s, spec, ptrs.data());
      run_status = result.status;
      MaybeWriteRunRecord(result, spec,
                          {.bench = "iawj_cli", .workload = workload_name});
      add_row(result.algorithm, 1, result.inputs, result.matches,
              result.throughput_per_ms, result.p95_latency_ms,
              result.progress.TimeToFractionMs(0.5),
              static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
      CacheCounters total;
      for (const auto& sim : sims) total += sim.Total();
      const double inputs =
          result.inputs > 0 ? static_cast<double>(result.inputs) : 1;
      std::printf("counters[sim]: L1D/in=%.3f L2/in=%.3f L3/in=%.3f "
                  "TLBD/in=%.3f\n",
                  total.l1_misses / inputs, total.l2_misses / inputs,
                  total.l3_misses / inputs, total.tlb_misses / inputs);
    } else {
      // Supervisor::Run is a plain JoinRunner::Run when no policy is
      // configured (flags above or environment), so the unsupervised path
      // is unchanged.
      Supervisor supervisor;
      const RunResult result = supervisor.Run(id, r, s, spec);
      run_status = result.status;
      recovery = result.recovery;
      ingest = result.ingest;
      MaybeWriteRunRecord(result, spec,
                          {.bench = "iawj_cli", .workload = workload_name});
      add_row(result.algorithm, 1, result.inputs, result.matches,
              result.throughput_per_ms, result.p95_latency_ms,
              result.progress.TimeToFractionMs(0.5),
              static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
      if (result.spill.any()) {
        // Spilling alone never changes the exit code: the result is exact,
        // memory pressure became disk traffic (see MANUAL "Exit codes").
        std::printf(
            "spilled: %llu/%llu partition(s), %.2f MiB written, "
            "%.2f MiB read, depth %llu, bnl %llu\n",
            static_cast<unsigned long long>(result.spill.partitions_spilled),
            static_cast<unsigned long long>(result.spill.partitions),
            static_cast<double>(result.spill.bytes_written) / (1 << 20),
            static_cast<double>(result.spill.bytes_read) / (1 << 20),
            static_cast<unsigned long long>(result.spill.recursion_depth),
            static_cast<unsigned long long>(result.spill.bnl_fallbacks));
      }
      if (result.pmu.available && result.inputs > 0) {
        const double inputs = static_cast<double>(result.inputs);
        const double cycles =
            static_cast<double>(result.pmu.profile.Total(0));
        const double instructions =
            static_cast<double>(result.pmu.profile.Total(1));
        std::printf("counters[pmu]: cyc/in=%.1f IPC=%.2f L1D/in=%.3f "
                    "LLC/in=%.3f TLBD/in=%.3f BR/in=%.3f\n",
                    cycles / inputs,
                    cycles > 0 ? instructions / cycles : 0,
                    static_cast<double>(result.pmu.profile.Total(2)) / inputs,
                    static_cast<double>(result.pmu.profile.Total(3)) / inputs,
                    static_cast<double>(result.pmu.profile.Total(4)) / inputs,
                    static_cast<double>(result.pmu.profile.Total(5)) / inputs);
      }
    }
  }

  if (ingest.any()) {
    // Ingestion alone never fails a run; dropped-late/duplicate/corrupt
    // tuples surface through the degraded exit code below (bounded loss),
    // while a clean reorder stays exit 0.
    std::printf("ingest: %llu in, %llu out, %llu reordered, %llu late "
                "(%llu admitted, %llu dropped), %llu duplicate, %llu "
                "corrupt, max disorder %llu ms, watermark %llu/%llu ms\n",
                static_cast<unsigned long long>(ingest.tuples_in),
                static_cast<unsigned long long>(ingest.tuples_out),
                static_cast<unsigned long long>(ingest.reordered),
                static_cast<unsigned long long>(ingest.late_total),
                static_cast<unsigned long long>(ingest.late_admitted),
                static_cast<unsigned long long>(ingest.late_dropped),
                static_cast<unsigned long long>(ingest.duplicates),
                static_cast<unsigned long long>(ingest.corrupt),
                static_cast<unsigned long long>(ingest.max_disorder_ms),
                static_cast<unsigned long long>(ingest.final_watermark_ms),
                static_cast<unsigned long long>(ingest.max_ts_ms));
  }
  std::fputs(table.ToText().c_str(), stdout);
  if (!csv_path.empty()) {
    if (const Status status = table.WriteCsv(csv_path); !status.ok()) {
      return Fail(status);
    }
  }
  if (!run_status.ok()) return Fail(run_status);
  if (recovery.degraded()) {
    std::printf("degraded: %llu window(s) skipped, %llu tuple(s) dropped, "
                "%llu shed (est. matches lost: %.1f)\n",
                static_cast<unsigned long long>(recovery.windows_skipped),
                static_cast<unsigned long long>(recovery.tuples_dropped),
                static_cast<unsigned long long>(recovery.tuples_shed),
                recovery.est_matches_lost);
    return 10;
  }
  if (recovery.recovered()) {
    std::printf("recovered: %d attempt(s), %d fallback step(s)\n",
                recovery.attempts, recovery.fallbacks_taken);
    return 9;
  }
  return 0;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) { return iawj::Run(argc, argv); }
