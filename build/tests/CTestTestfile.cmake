# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/profiling_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/sort_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/eager_test[1]_include.cmake")
include("/root/repo/build/tests/decision_tree_test[1]_include.cmake")
include("/root/repo/build/tests/handshake_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/linear_probe_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cache_sim_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
