file(REMOVE_RECURSE
  "CMakeFiles/linear_probe_test.dir/linear_probe_test.cc.o"
  "CMakeFiles/linear_probe_test.dir/linear_probe_test.cc.o.d"
  "linear_probe_test"
  "linear_probe_test.pdb"
  "linear_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
