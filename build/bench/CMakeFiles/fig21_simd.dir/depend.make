# Empty dependencies file for fig21_simd.
# This may be replaced when dependencies are built.
