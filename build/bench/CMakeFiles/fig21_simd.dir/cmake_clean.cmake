file(REMOVE_RECURSE
  "CMakeFiles/fig21_simd.dir/fig21_simd.cc.o"
  "CMakeFiles/fig21_simd.dir/fig21_simd.cc.o.d"
  "fig21_simd"
  "fig21_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
