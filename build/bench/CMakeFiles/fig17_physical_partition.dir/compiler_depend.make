# Empty compiler generated dependencies file for fig17_physical_partition.
# This may be replaced when dependencies are built.
