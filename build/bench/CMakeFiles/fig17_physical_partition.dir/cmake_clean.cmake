file(REMOVE_RECURSE
  "CMakeFiles/fig17_physical_partition.dir/fig17_physical_partition.cc.o"
  "CMakeFiles/fig17_physical_partition.dir/fig17_physical_partition.cc.o.d"
  "fig17_physical_partition"
  "fig17_physical_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_physical_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
