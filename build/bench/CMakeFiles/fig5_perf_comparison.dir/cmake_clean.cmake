file(REMOVE_RECURSE
  "CMakeFiles/fig5_perf_comparison.dir/fig5_perf_comparison.cc.o"
  "CMakeFiles/fig5_perf_comparison.dir/fig5_perf_comparison.cc.o.d"
  "fig5_perf_comparison"
  "fig5_perf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_perf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
