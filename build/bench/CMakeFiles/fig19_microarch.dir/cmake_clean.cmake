file(REMOVE_RECURSE
  "CMakeFiles/fig19_microarch.dir/fig19_microarch.cc.o"
  "CMakeFiles/fig19_microarch.dir/fig19_microarch.cc.o.d"
  "fig19_microarch"
  "fig19_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
