# Empty dependencies file for fig19_microarch.
# This may be replaced when dependencies are built.
