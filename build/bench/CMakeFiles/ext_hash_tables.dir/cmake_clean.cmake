file(REMOVE_RECURSE
  "CMakeFiles/ext_hash_tables.dir/ext_hash_tables.cc.o"
  "CMakeFiles/ext_hash_tables.dir/ext_hash_tables.cc.o.d"
  "ext_hash_tables"
  "ext_hash_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hash_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
