# Empty compiler generated dependencies file for ext_hash_tables.
# This may be replaced when dependencies are built.
