file(REMOVE_RECURSE
  "CMakeFiles/fig11_duplication.dir/fig11_duplication.cc.o"
  "CMakeFiles/fig11_duplication.dir/fig11_duplication.cc.o.d"
  "fig11_duplication"
  "fig11_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
