# Empty dependencies file for fig11_duplication.
# This may be replaced when dependencies are built.
