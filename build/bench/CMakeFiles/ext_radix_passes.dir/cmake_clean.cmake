file(REMOVE_RECURSE
  "CMakeFiles/ext_radix_passes.dir/ext_radix_passes.cc.o"
  "CMakeFiles/ext_radix_passes.dir/ext_radix_passes.cc.o.d"
  "ext_radix_passes"
  "ext_radix_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_radix_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
