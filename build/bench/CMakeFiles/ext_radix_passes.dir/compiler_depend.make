# Empty compiler generated dependencies file for ext_radix_passes.
# This may be replaced when dependencies are built.
