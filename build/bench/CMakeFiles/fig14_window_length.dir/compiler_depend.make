# Empty compiler generated dependencies file for fig14_window_length.
# This may be replaced when dependencies are built.
