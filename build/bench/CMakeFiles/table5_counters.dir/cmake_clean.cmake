file(REMOVE_RECURSE
  "CMakeFiles/table5_counters.dir/table5_counters.cc.o"
  "CMakeFiles/table5_counters.dir/table5_counters.cc.o.d"
  "table5_counters"
  "table5_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
