# Empty dependencies file for table5_counters.
# This may be replaced when dependencies are built.
