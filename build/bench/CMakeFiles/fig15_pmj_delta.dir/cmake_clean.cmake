file(REMOVE_RECURSE
  "CMakeFiles/fig15_pmj_delta.dir/fig15_pmj_delta.cc.o"
  "CMakeFiles/fig15_pmj_delta.dir/fig15_pmj_delta.cc.o.d"
  "fig15_pmj_delta"
  "fig15_pmj_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pmj_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
