# Empty dependencies file for fig15_pmj_delta.
# This may be replaced when dependencies are built.
