file(REMOVE_RECURSE
  "CMakeFiles/fig18_radix_bits.dir/fig18_radix_bits.cc.o"
  "CMakeFiles/fig18_radix_bits.dir/fig18_radix_bits.cc.o.d"
  "fig18_radix_bits"
  "fig18_radix_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_radix_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
