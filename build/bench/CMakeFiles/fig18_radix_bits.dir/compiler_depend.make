# Empty compiler generated dependencies file for fig18_radix_bits.
# This may be replaced when dependencies are built.
