# Empty dependencies file for fig9_arrival_rate.
# This may be replaced when dependencies are built.
