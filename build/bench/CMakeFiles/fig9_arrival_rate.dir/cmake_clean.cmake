file(REMOVE_RECURSE
  "CMakeFiles/fig9_arrival_rate.dir/fig9_arrival_rate.cc.o"
  "CMakeFiles/fig9_arrival_rate.dir/fig9_arrival_rate.cc.o.d"
  "fig9_arrival_rate"
  "fig9_arrival_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_arrival_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
