# Empty compiler generated dependencies file for fig16_jb_group_size.
# This may be replaced when dependencies are built.
