file(REMOVE_RECURSE
  "CMakeFiles/fig16_jb_group_size.dir/fig16_jb_group_size.cc.o"
  "CMakeFiles/fig16_jb_group_size.dir/fig16_jb_group_size.cc.o.d"
  "fig16_jb_group_size"
  "fig16_jb_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_jb_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
