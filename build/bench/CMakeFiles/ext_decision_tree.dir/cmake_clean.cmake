file(REMOVE_RECURSE
  "CMakeFiles/ext_decision_tree.dir/ext_decision_tree.cc.o"
  "CMakeFiles/ext_decision_tree.dir/ext_decision_tree.cc.o.d"
  "ext_decision_tree"
  "ext_decision_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_decision_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
