# Empty dependencies file for ext_decision_tree.
# This may be replaced when dependencies are built.
