# Empty compiler generated dependencies file for fig12_ts_skew.
# This may be replaced when dependencies are built.
