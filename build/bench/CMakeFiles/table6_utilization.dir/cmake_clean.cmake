file(REMOVE_RECURSE
  "CMakeFiles/table6_utilization.dir/table6_utilization.cc.o"
  "CMakeFiles/table6_utilization.dir/table6_utilization.cc.o.d"
  "table6_utilization"
  "table6_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
