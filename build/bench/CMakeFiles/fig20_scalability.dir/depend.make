# Empty dependencies file for fig20_scalability.
# This may be replaced when dependencies are built.
