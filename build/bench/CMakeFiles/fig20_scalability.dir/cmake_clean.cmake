file(REMOVE_RECURSE
  "CMakeFiles/fig20_scalability.dir/fig20_scalability.cc.o"
  "CMakeFiles/fig20_scalability.dir/fig20_scalability.cc.o.d"
  "fig20_scalability"
  "fig20_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
