file(REMOVE_RECURSE
  "CMakeFiles/fig6_progressiveness.dir/fig6_progressiveness.cc.o"
  "CMakeFiles/fig6_progressiveness.dir/fig6_progressiveness.cc.o.d"
  "fig6_progressiveness"
  "fig6_progressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_progressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
