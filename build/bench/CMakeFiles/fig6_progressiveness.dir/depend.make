# Empty dependencies file for fig6_progressiveness.
# This may be replaced when dependencies are built.
