file(REMOVE_RECURSE
  "CMakeFiles/fig13_key_skew.dir/fig13_key_skew.cc.o"
  "CMakeFiles/fig13_key_skew.dir/fig13_key_skew.cc.o.d"
  "fig13_key_skew"
  "fig13_key_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_key_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
