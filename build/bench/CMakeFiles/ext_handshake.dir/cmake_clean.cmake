file(REMOVE_RECURSE
  "CMakeFiles/ext_handshake.dir/ext_handshake.cc.o"
  "CMakeFiles/ext_handshake.dir/ext_handshake.cc.o.d"
  "ext_handshake"
  "ext_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
