# Empty dependencies file for ext_handshake.
# This may be replaced when dependencies are built.
