file(REMOVE_RECURSE
  "CMakeFiles/fig8_cache_profile.dir/fig8_cache_profile.cc.o"
  "CMakeFiles/fig8_cache_profile.dir/fig8_cache_profile.cc.o.d"
  "fig8_cache_profile"
  "fig8_cache_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cache_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
