# Empty compiler generated dependencies file for fig8_cache_profile.
# This may be replaced when dependencies are built.
