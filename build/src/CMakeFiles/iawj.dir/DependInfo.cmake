
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/iawj.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/iawj.dir/common/clock.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/iawj.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/iawj.dir/common/flags.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/iawj.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/iawj.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/iawj.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/iawj.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/iawj.dir/common/status.cc.o" "gcc" "src/CMakeFiles/iawj.dir/common/status.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/iawj.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/iawj.dir/common/zipf.cc.o.d"
  "/root/repo/src/datagen/micro.cc" "src/CMakeFiles/iawj.dir/datagen/micro.cc.o" "gcc" "src/CMakeFiles/iawj.dir/datagen/micro.cc.o.d"
  "/root/repo/src/datagen/real_world.cc" "src/CMakeFiles/iawj.dir/datagen/real_world.cc.o" "gcc" "src/CMakeFiles/iawj.dir/datagen/real_world.cc.o.d"
  "/root/repo/src/hash/bucket_chain.cc" "src/CMakeFiles/iawj.dir/hash/bucket_chain.cc.o" "gcc" "src/CMakeFiles/iawj.dir/hash/bucket_chain.cc.o.d"
  "/root/repo/src/hash/concurrent_table.cc" "src/CMakeFiles/iawj.dir/hash/concurrent_table.cc.o" "gcc" "src/CMakeFiles/iawj.dir/hash/concurrent_table.cc.o.d"
  "/root/repo/src/io/workload_io.cc" "src/CMakeFiles/iawj.dir/io/workload_io.cc.o" "gcc" "src/CMakeFiles/iawj.dir/io/workload_io.cc.o.d"
  "/root/repo/src/join/adaptive.cc" "src/CMakeFiles/iawj.dir/join/adaptive.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/adaptive.cc.o.d"
  "/root/repo/src/join/context.cc" "src/CMakeFiles/iawj.dir/join/context.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/context.cc.o.d"
  "/root/repo/src/join/decision_tree.cc" "src/CMakeFiles/iawj.dir/join/decision_tree.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/decision_tree.cc.o.d"
  "/root/repo/src/join/eager_engine.cc" "src/CMakeFiles/iawj.dir/join/eager_engine.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/eager_engine.cc.o.d"
  "/root/repo/src/join/handshake.cc" "src/CMakeFiles/iawj.dir/join/handshake.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/handshake.cc.o.d"
  "/root/repo/src/join/npj.cc" "src/CMakeFiles/iawj.dir/join/npj.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/npj.cc.o.d"
  "/root/repo/src/join/pmj.cc" "src/CMakeFiles/iawj.dir/join/pmj.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/pmj.cc.o.d"
  "/root/repo/src/join/prj.cc" "src/CMakeFiles/iawj.dir/join/prj.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/prj.cc.o.d"
  "/root/repo/src/join/reference.cc" "src/CMakeFiles/iawj.dir/join/reference.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/reference.cc.o.d"
  "/root/repo/src/join/runner.cc" "src/CMakeFiles/iawj.dir/join/runner.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/runner.cc.o.d"
  "/root/repo/src/join/shj.cc" "src/CMakeFiles/iawj.dir/join/shj.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/shj.cc.o.d"
  "/root/repo/src/join/sortmerge.cc" "src/CMakeFiles/iawj.dir/join/sortmerge.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/sortmerge.cc.o.d"
  "/root/repo/src/join/window_pipeline.cc" "src/CMakeFiles/iawj.dir/join/window_pipeline.cc.o" "gcc" "src/CMakeFiles/iawj.dir/join/window_pipeline.cc.o.d"
  "/root/repo/src/memory/tracker.cc" "src/CMakeFiles/iawj.dir/memory/tracker.cc.o" "gcc" "src/CMakeFiles/iawj.dir/memory/tracker.cc.o.d"
  "/root/repo/src/partition/radix.cc" "src/CMakeFiles/iawj.dir/partition/radix.cc.o" "gcc" "src/CMakeFiles/iawj.dir/partition/radix.cc.o.d"
  "/root/repo/src/partition/range.cc" "src/CMakeFiles/iawj.dir/partition/range.cc.o" "gcc" "src/CMakeFiles/iawj.dir/partition/range.cc.o.d"
  "/root/repo/src/profiling/cache_sim.cc" "src/CMakeFiles/iawj.dir/profiling/cache_sim.cc.o" "gcc" "src/CMakeFiles/iawj.dir/profiling/cache_sim.cc.o.d"
  "/root/repo/src/profiling/phase.cc" "src/CMakeFiles/iawj.dir/profiling/phase.cc.o" "gcc" "src/CMakeFiles/iawj.dir/profiling/phase.cc.o.d"
  "/root/repo/src/profiling/progress.cc" "src/CMakeFiles/iawj.dir/profiling/progress.cc.o" "gcc" "src/CMakeFiles/iawj.dir/profiling/progress.cc.o.d"
  "/root/repo/src/profiling/resource.cc" "src/CMakeFiles/iawj.dir/profiling/resource.cc.o" "gcc" "src/CMakeFiles/iawj.dir/profiling/resource.cc.o.d"
  "/root/repo/src/report/report.cc" "src/CMakeFiles/iawj.dir/report/report.cc.o" "gcc" "src/CMakeFiles/iawj.dir/report/report.cc.o.d"
  "/root/repo/src/sort/avxsort.cc" "src/CMakeFiles/iawj.dir/sort/avxsort.cc.o" "gcc" "src/CMakeFiles/iawj.dir/sort/avxsort.cc.o.d"
  "/root/repo/src/sort/merge.cc" "src/CMakeFiles/iawj.dir/sort/merge.cc.o" "gcc" "src/CMakeFiles/iawj.dir/sort/merge.cc.o.d"
  "/root/repo/src/stream/distribution.cc" "src/CMakeFiles/iawj.dir/stream/distribution.cc.o" "gcc" "src/CMakeFiles/iawj.dir/stream/distribution.cc.o.d"
  "/root/repo/src/stream/stream.cc" "src/CMakeFiles/iawj.dir/stream/stream.cc.o" "gcc" "src/CMakeFiles/iawj.dir/stream/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
