file(REMOVE_RECURSE
  "libiawj.a"
)
