# Empty dependencies file for iawj.
# This may be replaced when dependencies are built.
