file(REMOVE_RECURSE
  "CMakeFiles/stock_turnover.dir/stock_turnover.cc.o"
  "CMakeFiles/stock_turnover.dir/stock_turnover.cc.o.d"
  "stock_turnover"
  "stock_turnover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_turnover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
