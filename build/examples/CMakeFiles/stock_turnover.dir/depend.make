# Empty dependencies file for stock_turnover.
# This may be replaced when dependencies are built.
