# Empty dependencies file for ad_monitor.
# This may be replaced when dependencies are built.
