file(REMOVE_RECURSE
  "CMakeFiles/ad_monitor.dir/ad_monitor.cc.o"
  "CMakeFiles/ad_monitor.dir/ad_monitor.cc.o.d"
  "ad_monitor"
  "ad_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
