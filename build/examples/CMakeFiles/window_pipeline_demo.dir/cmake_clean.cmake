file(REMOVE_RECURSE
  "CMakeFiles/window_pipeline_demo.dir/window_pipeline_demo.cc.o"
  "CMakeFiles/window_pipeline_demo.dir/window_pipeline_demo.cc.o.d"
  "window_pipeline_demo"
  "window_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
