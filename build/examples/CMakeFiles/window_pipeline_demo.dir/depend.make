# Empty dependencies file for window_pipeline_demo.
# This may be replaced when dependencies are built.
