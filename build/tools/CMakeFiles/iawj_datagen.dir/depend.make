# Empty dependencies file for iawj_datagen.
# This may be replaced when dependencies are built.
