file(REMOVE_RECURSE
  "CMakeFiles/iawj_datagen.dir/iawj_datagen.cc.o"
  "CMakeFiles/iawj_datagen.dir/iawj_datagen.cc.o.d"
  "iawj_datagen"
  "iawj_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iawj_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
