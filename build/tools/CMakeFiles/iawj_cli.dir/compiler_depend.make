# Empty compiler generated dependencies file for iawj_cli.
# This may be replaced when dependencies are built.
