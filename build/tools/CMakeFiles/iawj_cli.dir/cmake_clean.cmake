file(REMOVE_RECURSE
  "CMakeFiles/iawj_cli.dir/iawj_cli.cc.o"
  "CMakeFiles/iawj_cli.dir/iawj_cli.cc.o.d"
  "iawj_cli"
  "iawj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iawj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
