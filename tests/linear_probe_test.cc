// Tests for the linear-probing table and the hash_table_kind knob.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/hash/linear_probe.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

TEST(LinearProbeTable, InsertProbeWithDuplicates) {
  LinearProbeTable<> table(64);
  NullTracer tracer;
  for (uint32_t i = 0; i < 200; ++i) {
    table.Insert(Tuple{.ts = i, .key = i % 7}, tracer);
  }
  EXPECT_EQ(table.size(), 200u);
  int matches = 0;
  table.Probe(
      3,
      [&](Tuple t) {
        EXPECT_EQ(t.key, 3u);
        ++matches;
      },
      tracer);
  EXPECT_EQ(matches, 200 / 7 + ((200 % 7) > 3 ? 1 : 0));
  table.Probe(
      999, [&](Tuple) { FAIL(); }, tracer);
}

TEST(LinearProbeTable, GrowsFarBeyondEstimate) {
  LinearProbeTable<> table(16);
  NullTracer tracer;
  Rng rng(1);
  std::unordered_map<uint32_t, int> expected;
  for (int i = 0; i < 50000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(5000));
    table.Insert(Tuple{.ts = 0, .key = key}, tracer);
    ++expected[key];
  }
  for (const auto& [key, count] : expected) {
    int found = 0;
    table.Probe(
        key, [&](Tuple) { ++found; }, tracer);
    ASSERT_EQ(found, count) << "key " << key;
  }
}

TEST(LinearProbeTable, ClusterCollisionsStayCorrect) {
  // Keys engineered to hash-collide heavily: probing must still separate
  // them by exact key comparison.
  LinearProbeTable<> table(32);
  NullTracer tracer;
  for (uint32_t i = 0; i < 64; ++i) {
    table.Insert(Tuple{.ts = i, .key = 1}, tracer);
    table.Insert(Tuple{.ts = i, .key = 2}, tracer);
  }
  int ones = 0, twos = 0;
  table.Probe(
      1, [&](Tuple) { ++ones; }, tracer);
  table.Probe(
      2, [&](Tuple) { ++twos; }, tracer);
  EXPECT_EQ(ones, 64);
  EXPECT_EQ(twos, 64);
}

TEST(LinearProbeTable, TracksMemory) {
  mem::Reset();
  {
    LinearProbeTable<> table(1 << 14);
    EXPECT_GE(mem::CurrentBytes(),
              static_cast<int64_t>((1 << 15) * sizeof(Tuple)));
  }
  EXPECT_EQ(mem::CurrentBytes(), 0);
}

TEST(HashTableKind, LinearProbeBackendPreservesJoinResults) {
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = 5000;
  mspec.window_ms = 1000;
  mspec.dupe = 8;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());

  for (AlgorithmId id : {AlgorithmId::kPrj, AlgorithmId::kShjJm,
                         AlgorithmId::kShjJb}) {
    SCOPED_TRACE(AlgorithmName(id));
    for (HashTableKind kind :
         {HashTableKind::kBucketChain, HashTableKind::kLinearProbe}) {
      JoinSpec spec;
      spec.num_threads = 4;
      spec.hash_table_kind = kind;
      JoinRunner runner;
      const RunResult result = runner.Run(id, w.r, w.s, spec);
      EXPECT_EQ(result.matches, expected.matches);
      EXPECT_EQ(result.checksum, expected.checksum);
    }
  }
}

TEST(HashTableKind, LinearProbeWithTwoPassRadix) {
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = 4000;
  mspec.window_ms = 1000;
  mspec.dupe = 3;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());
  JoinSpec spec;
  spec.num_threads = 2;
  spec.hash_table_kind = HashTableKind::kLinearProbe;
  spec.radix_bits = 12;
  spec.radix_passes = 2;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kPrj, w.r, w.s, spec);
  EXPECT_EQ(result.matches, expected.matches);
  EXPECT_EQ(result.checksum, expected.checksum);
}

}  // namespace
}  // namespace iawj
