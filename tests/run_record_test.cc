// Tests for the structured run-record exporter: JSON shape, field coverage,
// env-var gating, and on-disk emission.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/datagen/micro.h"
#include "src/profiling/run_record.h"

namespace iawj {
namespace {

RunResult SmallRun(JoinSpec* spec_out) {
  MicroSpec mspec;
  mspec.rate_r = 50;
  mspec.rate_s = 50;
  mspec.window_ms = 100;
  MicroWorkload workload = GenerateMicro(mspec);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  spec.clock_mode = Clock::Mode::kInstant;
  *spec_out = spec;
  JoinRunner runner;
  return runner.Run(AlgorithmId::kNpj, workload.r, workload.s, spec);
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> entries;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return entries;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") entries.push_back(name);
  }
  closedir(d);
  return entries;
}

TEST(RunRecord, JsonCarriesEveryListedField) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);
  RunRecordContext context;
  context.bench = "run_record_test";
  context.workload = "micro";
  context.workload_scale = 0.5;
  const std::string text = RunRecordJson(result, spec, context);

  json::Value record;
  ASSERT_TRUE(json::Parse(text, &record).ok()) << text;
  ASSERT_TRUE(record.is_object());

  // Identity and provenance.
  EXPECT_EQ(record.Find("algorithm")->string, "NPJ");
  EXPECT_EQ(record.Find("bench")->string, "run_record_test");
  EXPECT_EQ(record.Find("workload")->string, "micro");
  EXPECT_DOUBLE_EQ(record.Find("workload_scale")->number, 0.5);
  EXPECT_FALSE(record.Find("git_describe")->string.empty());
  const std::string& ts = record.Find("timestamp_utc")->string;
  EXPECT_EQ(ts.size(), 20u);  // 2026-08-05T12:34:56Z
  EXPECT_EQ(ts.back(), 'Z');
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');

  // Spec snapshot.
  const json::Value* spec_obj = record.Find("spec");
  ASSERT_NE(spec_obj, nullptr);
  EXPECT_DOUBLE_EQ(spec_obj->Find("num_threads")->number, 2);
  EXPECT_DOUBLE_EQ(spec_obj->Find("window_ms")->number, 100);
  EXPECT_EQ(spec_obj->Find("clock_mode")->string, "instant");
  EXPECT_EQ(spec_obj->Find("hash_table_kind")->string, "bucket_chain");
  EXPECT_NE(spec_obj->Find("radix_bits"), nullptr);
  EXPECT_NE(spec_obj->Find("pmj_delta"), nullptr);
  EXPECT_NE(spec_obj->Find("use_simd"), nullptr);

  // Metrics.
  EXPECT_DOUBLE_EQ(record.Find("inputs")->number,
                   static_cast<double>(result.inputs));
  EXPECT_DOUBLE_EQ(record.Find("matches")->number,
                   static_cast<double>(result.matches));
  EXPECT_GT(record.Find("matches")->number, 0);
  EXPECT_NE(record.Find("checksum"), nullptr);
  EXPECT_GT(record.Find("throughput_per_ms")->number, 0);
  EXPECT_NE(record.Find("p95_latency_ms"), nullptr);
  EXPECT_NE(record.Find("mean_latency_ms"), nullptr);
  EXPECT_NE(record.Find("work_ns_per_input"), nullptr);
  EXPECT_GE(record.Find("peak_tracked_bytes")->number, 0);

  // Phase breakdown covers all seven phases.
  const json::Value* phases = record.Find("phase_ns");
  ASSERT_NE(phases, nullptr);
  EXPECT_EQ(phases->object.size(), static_cast<size_t>(kNumPhases));
  for (const char* phase :
       {"wait", "partition", "build", "sort", "merge", "probe", "others"}) {
    EXPECT_NE(phases->Find(phase), nullptr) << phase;
  }
  double phase_total = 0;
  for (const auto& [name, value] : phases->object) {
    phase_total += value.number;
  }
  EXPECT_GT(phase_total, 0);
}

TEST(RunRecord, VersionIsNineWithoutOptionalBlocksForPlainRuns) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);
  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  EXPECT_DOUBLE_EQ(record.Find("record_version")->number, 9);
  // Unsupervised static in-memory runs carry none of the optional blocks.
  EXPECT_EQ(record.Find("recovery"), nullptr);
  EXPECT_EQ(record.Find("scheduler"), nullptr);
  EXPECT_EQ(record.Find("spill"), nullptr);
  EXPECT_EQ(record.Find("ingest"), nullptr);
  EXPECT_EQ(record.Find("serve"), nullptr);
  // v8: the kernels block is always present — every run resolves a plan.
  // The default spec resolves auto -> swwc; the build is scalar regardless
  // (the batched build is retired).
  const json::Value* kernels = record.Find("kernels");
  ASSERT_NE(kernels, nullptr);
  ASSERT_TRUE(kernels->is_object());
  EXPECT_EQ(kernels->Find("mode")->string, "swwc");
  EXPECT_EQ(kernels->Find("scatter")->string, "swwc");
  EXPECT_EQ(kernels->Find("build")->string, "scalar");
  EXPECT_EQ(kernels->Find("probe")->string, "batched");
}

TEST(RunRecord, KernelsBlockNamesTheResolvedVariantPerPhase) {
  JoinSpec spec;
  RunResult result = SmallRun(&spec);
  result.kernels_resolved = KernelMode::kSimd;
  result.kernel_scatter = "swwc";
  result.kernel_build = "scalar";
  result.kernel_probe = "simd";

  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  const json::Value* kernels = record.Find("kernels");
  ASSERT_NE(kernels, nullptr);
  EXPECT_EQ(kernels->Find("mode")->string, "simd");
  EXPECT_EQ(kernels->Find("scatter")->string, "swwc");
  EXPECT_EQ(kernels->Find("build")->string, "scalar");
  EXPECT_EQ(kernels->Find("probe")->string, "simd");

  result.kernels_resolved = KernelMode::kLockfree;
  result.kernel_probe = "batched";
  result.kernel_build = "lockfree";
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  EXPECT_EQ(record.Find("kernels")->Find("mode")->string, "lockfree");
  EXPECT_EQ(record.Find("kernels")->Find("build")->string, "lockfree");
  EXPECT_EQ(record.Find("kernels")->Find("probe")->string, "batched");
}

TEST(RunRecord, IngestBlockRoundTripsWhenTheRunIngestedDisorder) {
  JoinSpec spec;
  RunResult result = SmallRun(&spec);
  spec.disorder_slack_ms = 32;
  spec.allowed_lateness_ms = 8;
  result.ingest.tuples_in = 1000;
  result.ingest.tuples_out = 996;
  result.ingest.reordered = 120;
  result.ingest.late_total = 5;
  result.ingest.late_admitted = 2;
  result.ingest.late_dropped = 3;
  result.ingest.duplicates = 1;
  result.ingest.corrupt = 0;
  result.ingest.watermark_clamps = 4;
  result.ingest.max_disorder_ms = 27;
  result.ingest.max_ts_ms = 999;
  result.ingest.final_watermark_ms = 991;

  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  EXPECT_DOUBLE_EQ(record.Find("spec")->Find("disorder_slack_ms")->number, 32);
  EXPECT_DOUBLE_EQ(record.Find("spec")->Find("allowed_lateness_ms")->number, 8);
  const json::Value* ingest = record.Find("ingest");
  ASSERT_NE(ingest, nullptr);
  ASSERT_TRUE(ingest->is_object());
  EXPECT_DOUBLE_EQ(ingest->Find("tuples_in")->number, 1000);
  EXPECT_DOUBLE_EQ(ingest->Find("tuples_out")->number, 996);
  EXPECT_DOUBLE_EQ(ingest->Find("reordered")->number, 120);
  EXPECT_DOUBLE_EQ(ingest->Find("late_total")->number, 5);
  EXPECT_DOUBLE_EQ(ingest->Find("late_admitted")->number, 2);
  EXPECT_DOUBLE_EQ(ingest->Find("late_dropped")->number, 3);
  EXPECT_DOUBLE_EQ(ingest->Find("duplicates")->number, 1);
  EXPECT_DOUBLE_EQ(ingest->Find("corrupt")->number, 0);
  EXPECT_DOUBLE_EQ(ingest->Find("watermark_clamps")->number, 4);
  EXPECT_DOUBLE_EQ(ingest->Find("max_disorder_ms")->number, 27);
  EXPECT_DOUBLE_EQ(ingest->Find("max_ts_ms")->number, 999);
  EXPECT_DOUBLE_EQ(ingest->Find("final_watermark_ms")->number, 991);
}

TEST(RunRecord, SpillBlockRoundTripsWhenTheRunStagedPartitions) {
  JoinSpec spec;
  RunResult result = SmallRun(&spec);
  result.spill.partitions = 32;
  result.spill.partitions_spilled = 20;
  result.spill.partitions_resident = 12;
  result.spill.bytes_written = 163840;
  result.spill.bytes_read = 163840;
  result.spill.pages_written = 40;
  result.spill.pages_read = 40;
  result.spill.recursion_depth = 2;
  result.spill.bnl_fallbacks = 1;
  result.spill.spill_elapsed_ms = 3.5;

  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  const json::Value* spill = record.Find("spill");
  ASSERT_NE(spill, nullptr);
  ASSERT_TRUE(spill->is_object());
  EXPECT_DOUBLE_EQ(spill->Find("partitions")->number, 32);
  EXPECT_DOUBLE_EQ(spill->Find("partitions_spilled")->number, 20);
  EXPECT_DOUBLE_EQ(spill->Find("partitions_resident")->number, 12);
  EXPECT_DOUBLE_EQ(spill->Find("bytes_written")->number, 163840);
  EXPECT_DOUBLE_EQ(spill->Find("bytes_read")->number, 163840);
  EXPECT_DOUBLE_EQ(spill->Find("pages_written")->number, 40);
  EXPECT_DOUBLE_EQ(spill->Find("pages_read")->number, 40);
  EXPECT_DOUBLE_EQ(spill->Find("recursion_depth")->number, 2);
  EXPECT_DOUBLE_EQ(spill->Find("bnl_fallbacks")->number, 1);
  EXPECT_DOUBLE_EQ(spill->Find("spill_elapsed_ms")->number, 3.5);
}

TEST(RunRecord, PmuAndMetricsBlocksAlwaysPresent) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);
  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());

  // The pmu block is present whether or not counters were measured; an
  // unmeasured run says why there is no data.
  const json::Value* pmu = record.Find("pmu");
  ASSERT_NE(pmu, nullptr);
  ASSERT_TRUE(pmu->is_object());
  const json::Value* available = pmu->Find("available");
  ASSERT_NE(available, nullptr);
  if (!available->boolean) {
    const json::Value* reason = pmu->Find("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_FALSE(reason->string.empty());
  } else {
    EXPECT_NE(pmu->Find("totals"), nullptr);
    EXPECT_NE(pmu->Find("phases"), nullptr);
  }

  const json::Value* metrics = record.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  ASSERT_NE(metrics->Find("enabled"), nullptr);
}

TEST(RunRecord, SchedulerBlockRoundTripsForMorselRuns) {
  MicroSpec mspec;
  mspec.rate_r = 50;
  mspec.rate_s = 50;
  mspec.window_ms = 100;
  MicroWorkload workload = GenerateMicro(mspec);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  spec.clock_mode = Clock::Mode::kInstant;
  spec.scheduler = SchedulerMode::kMorsel;
  spec.morsel_size = 64;
  JoinRunner runner;
  const RunResult result =
      runner.Run(AlgorithmId::kNpj, workload.r, workload.s, spec);
  ASSERT_TRUE(result.status.ok());

  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  const json::Value* spec_obj = record.Find("spec");
  ASSERT_NE(spec_obj, nullptr);
  EXPECT_EQ(spec_obj->Find("scheduler")->string, "morsel");
  EXPECT_EQ(spec_obj->Find("scheduler_resolved")->string, "morsel");
  EXPECT_DOUBLE_EQ(spec_obj->Find("morsel_size")->number, 64);

  const json::Value* sched = record.Find("scheduler");
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->Find("mode")->string, "morsel");
  EXPECT_DOUBLE_EQ(sched->Find("morsel_size")->number, 64);
  EXPECT_GE(sched->Find("numa_nodes")->number, 1);
  EXPECT_GT(sched->Find("morsels")->number, 0);
  EXPECT_GT(sched->Find("tuples")->number, 0);
  const json::Value* workers = sched->Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->array.size(), 2u);
  double morsel_sum = 0;
  for (const json::Value& w : workers->array) {
    EXPECT_GE(w.Find("node")->number, 0);
    EXPECT_GE(w.Find("steals")->number, 0);
    morsel_sum += w.Find("morsels")->number;
  }
  EXPECT_DOUBLE_EQ(morsel_sum, sched->Find("morsels")->number);

  // The static baseline keeps the spec knobs but omits the block.
  spec.scheduler = SchedulerMode::kStatic;
  const RunResult static_result =
      runner.Run(AlgorithmId::kNpj, workload.r, workload.s, spec);
  json::Value static_record;
  ASSERT_TRUE(json::Parse(RunRecordJson(static_result, spec, {}),
                          &static_record)
                  .ok());
  EXPECT_EQ(static_record.Find("scheduler"), nullptr);
  EXPECT_EQ(static_record.Find("spec")->Find("scheduler_resolved")->string,
            "static");
}

TEST(RunRecord, RecoveryBlockRoundTrips) {
  JoinSpec spec;
  RunResult result = SmallRun(&spec);
  result.recovery.attempts = 3;
  result.recovery.fallbacks_taken = 1;
  result.recovery.tuples_shed = 120;
  result.recovery.shed_ratio = 0.12;
  result.recovery.events.push_back({RecoveryAction::kRetry,
                                    StatusCode::kResourceExhausted, 1,
                                    "attempt 1 failed", 2.5});
  result.recovery.events.push_back({RecoveryAction::kFallbackAlgorithm,
                                    StatusCode::kResourceExhausted, 2,
                                    "PRJ -> NPJ", 0});

  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  const json::Value* recovery = record.Find("recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_DOUBLE_EQ(recovery->Find("attempts")->number, 3);
  EXPECT_DOUBLE_EQ(recovery->Find("fallbacks_taken")->number, 1);
  EXPECT_DOUBLE_EQ(recovery->Find("windows_skipped")->number, 0);
  EXPECT_DOUBLE_EQ(recovery->Find("tuples_shed")->number, 120);
  EXPECT_DOUBLE_EQ(recovery->Find("shed_ratio")->number, 0.12);
  EXPECT_TRUE(recovery->Find("recovered")->boolean);
  EXPECT_TRUE(recovery->Find("degraded")->boolean);

  const json::Value* events = recovery->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].Find("action")->string, "retry");
  EXPECT_EQ(events->array[0].Find("trigger")->string, "resource_exhausted");
  EXPECT_DOUBLE_EQ(events->array[0].Find("backoff_ms")->number, 2.5);
  EXPECT_EQ(events->array[1].Find("action")->string, "fallback_algorithm");
  EXPECT_EQ(events->array[1].Find("detail")->string, "PRJ -> NPJ");
}

TEST(RunRecord, SupervisedCleanRunRecordsItsSingleAttempt) {
  JoinSpec spec;
  RunResult result = SmallRun(&spec);
  result.recovery.attempts = 1;  // supervised, first attempt succeeded
  json::Value record;
  ASSERT_TRUE(json::Parse(RunRecordJson(result, spec, {}), &record).ok());
  const json::Value* recovery = record.Find("recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_DOUBLE_EQ(recovery->Find("attempts")->number, 1);
  EXPECT_FALSE(recovery->Find("recovered")->boolean);
  EXPECT_FALSE(recovery->Find("degraded")->boolean);
}

TEST(RunRecord, WriteCreatesOneValidFilePerCall) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);
  const std::string dir = testing::TempDir() + "/iawj_metrics_write_test";

  std::string path1, path2;
  ASSERT_TRUE(WriteRunRecord(result, spec, {}, dir, &path1).ok());
  ASSERT_TRUE(WriteRunRecord(result, spec, {}, dir, &path2).ok());
  EXPECT_NE(path1, path2);  // sequence number keeps names unique

  const auto entries = ListDir(dir);
  EXPECT_EQ(entries.size(), 2u);
  for (const std::string& entry : entries) {
    std::ifstream in(dir + "/" + entry);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    json::Value record;
    EXPECT_TRUE(json::Parse(text, &record).ok()) << entry;
    EXPECT_EQ(record.Find("algorithm")->string, "NPJ");
    std::remove((dir + "/" + entry).c_str());
  }
  rmdir(dir.c_str());
}

TEST(RunRecord, MaybeWriteIsGatedOnEnv) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);

  unsetenv("IAWJ_METRICS_DIR");
  EXPECT_FALSE(MaybeWriteRunRecord(result, spec));

  const std::string dir = testing::TempDir() + "/iawj_metrics_env_test";
  setenv("IAWJ_METRICS_DIR", dir.c_str(), 1);
  EXPECT_TRUE(MaybeWriteRunRecord(result, spec));
  unsetenv("IAWJ_METRICS_DIR");

  const auto entries = ListDir(dir);
  ASSERT_EQ(entries.size(), 1u);
  std::remove((dir + "/" + entries.front()).c_str());
  rmdir(dir.c_str());
}

TEST(RunRecord, WriteFailsOnUnwritableDir) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);
  EXPECT_FALSE(
      WriteRunRecord(result, spec, {}, "/proc/definitely/not/writable").ok());
}

#ifdef IAWJ_TRACE_CHECK_BIN
TEST(RunRecord, TornWriteIsRejectedByTheCheckerNotCrashed) {
  JoinSpec spec;
  const RunResult result = SmallRun(&spec);
  const std::string dir = testing::TempDir() + "/iawj_metrics_torn_test";

  // Arm the mid-write crash: the writer emits half the JSON, flushes, and
  // returns a typed DataLoss instead of pretending the record landed.
  ASSERT_TRUE(fault::Configure("record_truncate").ok());
  std::string path;
  const Status status = WriteRunRecord(result, spec, {}, dir, &path);
  fault::Clear();
  ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();

  // The partial file is on disk and is not valid JSON.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(text.empty());
  json::Value parsed;
  EXPECT_FALSE(json::Parse(text, &parsed).ok());

  // The checker rejects the torn record with a printed reason and a
  // nonzero exit — it must never crash or report the directory clean.
  const std::string cmd =
      std::string(IAWJ_TRACE_CHECK_BIN) + " --records " + path + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string out;
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int rc = pclose(pipe);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("FAIL"), std::string::npos) << out;

  std::remove(path.c_str());
  rmdir(dir.c_str());
}
#endif  // IAWJ_TRACE_CHECK_BIN

TEST(RunRecord, GitDescribeIsStableAndNonEmpty) {
  const std::string a = GitDescribeStamp();
  const std::string b = GitDescribeStamp();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace iawj
