// Tests for the spill-capable hybrid hash join (ISSUE 7 tentpole).
//
// The load-bearing property is the differential one: under a budget small
// enough to spill most partitions, HHJ produces byte-identical match counts
// and checksums to the nested-loop reference — across skew, duplication,
// and thread counts, with recursion and the block-nested-loop terminal
// exercised, and with the spill fault sites armed (recover exactly or fail
// with a typed Status, never wrong answers, never OOM).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/join/supervisor.h"
#include "src/memory/tracker.h"

namespace iawj {
namespace {

class HhjTest : public ::testing::Test {
 protected:
  void SetUp() override { Clean(); }
  void TearDown() override { Clean(); }

  static void Clean() {
    fault::Clear();
    mem::SetBudgetBytes(0);
    mem::SetBreachToken(nullptr);
  }
};

MicroWorkload Workload(double dupe, double zipf_key, uint64_t size = 4000) {
  MicroSpec spec;
  spec.size_r = size;
  spec.size_s = size;
  spec.window_ms = 100;
  spec.dupe = dupe;
  spec.zipf_key = zipf_key;
  spec.seed = 7;
  return GenerateMicro(spec);
}

JoinSpec Spec(int threads) {
  JoinSpec spec;
  spec.num_threads = threads;
  spec.window_ms = 100;
  return spec;
}

ReferenceResult Reference(const MicroWorkload& w) {
  return NestedLoopJoin(w.r.view(), w.s.view());
}

// Runs under a budget of `extra` bytes above whatever is already tracked
// (input streams and other fixtures live in the tracker too), then lifts
// the budget again.
RunResult RunBudgeted(AlgorithmId id, const MicroWorkload& w,
                      const JoinSpec& spec, int64_t extra) {
  mem::SetBudgetBytes(mem::CurrentBytes() + extra);
  JoinRunner runner;
  RunResult result = runner.Run(id, w.r, w.s, spec);
  mem::SetBudgetBytes(0);
  return result;
}

TEST_F(HhjTest, UnbudgetedRunMatchesReferenceWithoutTouchingDisk) {
  const MicroWorkload w = Workload(4.0, 0.0);
  const ReferenceResult ref = Reference(w);
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    JoinRunner runner;
    const RunResult result = runner.Run(AlgorithmId::kHhj, w.r, w.s,
                                        Spec(threads));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.matches, ref.matches);
    EXPECT_EQ(result.checksum, ref.checksum);
    // No budget -> every partition stays resident, the disk is untouched.
    EXPECT_FALSE(result.spill.any());
    EXPECT_EQ(result.spill.partitions_resident, result.spill.partitions);
    EXPECT_EQ(result.spill.bytes_written, 0u);
  }
}

TEST_F(HhjTest, BudgetedRunSpillsMajorityAndStillMatchesReference) {
  // The acceptance grid: duplication x key skew x thread counts, each under
  // a budget far below the window's footprint.
  struct Config {
    double dupe;
    double zipf;
  };
  const Config grid[] = {{1.0, 0.0}, {4.0, 0.0}, {2.0, 0.75}, {4.0, 1.0}};
  for (const Config& config : grid) {
    const MicroWorkload w = Workload(config.dupe, config.zipf);
    const ReferenceResult ref = Reference(w);
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE("dupe=" + std::to_string(config.dupe) +
                   " zipf=" + std::to_string(config.zipf) +
                   " threads=" + std::to_string(threads));
      const RunResult result =
          RunBudgeted(AlgorithmId::kHhj, w, Spec(threads), 96 * 1024);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(result.matches, ref.matches);
      EXPECT_EQ(result.checksum, ref.checksum);
      ASSERT_TRUE(result.spill.any());
      EXPECT_GT(result.spill.partitions_spilled, 0u);
      EXPECT_GT(result.spill.bytes_written, 0u);
      EXPECT_GT(result.spill.bytes_read, 0u);
      EXPECT_LE(result.spill.partitions_spilled +
                    result.spill.partitions_resident,
                result.spill.partitions);
      if (config.zipf == 0.0) {
        // Uniform keys spread weight evenly, so a small budget must push
        // the majority of partitions to disk.
        EXPECT_GE(result.spill.partitions_spilled * 2,
                  result.spill.partitions);
      }
    }
  }
}

TEST_F(HhjTest, HotKeyDrivesRecursionIntoBlockNestedLoop) {
  // One key owns (nearly) the whole window: repartitioning cannot split it,
  // so the recursion must bottom out in the block-nested-loop terminal and
  // still produce the exact cross product.
  MicroSpec mspec;
  mspec.size_r = 1500;
  mspec.size_s = 1500;
  mspec.window_ms = 100;
  mspec.dupe = 1500;  // ~one key per stream
  mspec.seed = 11;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult ref = Reference(w);

  const RunResult result =
      RunBudgeted(AlgorithmId::kHhj, w, Spec(2), 96 * 1024);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.matches, ref.matches);
  EXPECT_EQ(result.checksum, ref.checksum);
  ASSERT_TRUE(result.spill.any());
  EXPECT_GE(result.spill.recursion_depth, 1u);
  EXPECT_GE(result.spill.bnl_fallbacks, 1u);
}

TEST_F(HhjTest, DiskFullFaultIsTypedResourceExhaustion) {
  const MicroWorkload w = Workload(4.0, 0.0);
  ASSERT_TRUE(fault::Configure("disk_full").ok());
  const RunResult result =
      RunBudgeted(AlgorithmId::kHhj, w, Spec(2), 96 * 1024);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted)
      << result.status.ToString();
}

TEST_F(HhjTest, SpillCorruptionFaultsAreTypedDataLossNeverWrongAnswers) {
  const MicroWorkload w = Workload(4.0, 0.0);
  const ReferenceResult ref = Reference(w);
  for (const char* site : {"spill_corrupt", "io_truncate"}) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(fault::Configure(site).ok());
    const RunResult result =
        RunBudgeted(AlgorithmId::kHhj, w, Spec(2), 96 * 1024);
    const uint64_t hits = fault::Hits(site);
    fault::Clear();
    // Either the injected page was never restored (clean failure) or — only
    // if it never fired because nothing was read back — exact success.
    if (result.status.ok()) {
      EXPECT_EQ(hits, 0u);
      EXPECT_EQ(result.matches, ref.matches);
    } else {
      EXPECT_EQ(result.status.code(), StatusCode::kDataLoss)
          << result.status.ToString();
    }
  }
}

TEST_F(HhjTest, RetryRecoversFromTransientDiskFullExactly) {
  const MicroWorkload w = Workload(4.0, 0.0);
  const ReferenceResult ref = Reference(w);
  JoinSpec spec = Spec(2);
  spec.retry_max_attempts = 2;

  ASSERT_TRUE(fault::Configure("disk_full").ok());  // fires exactly once
  mem::SetBudgetBytes(mem::CurrentBytes() + 96 * 1024);
  Supervisor supervisor;
  const RunResult result = supervisor.Run(AlgorithmId::kHhj, w.r, w.s, spec);
  mem::SetBudgetBytes(0);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.matches, ref.matches);
  EXPECT_EQ(result.checksum, ref.checksum);
  EXPECT_TRUE(result.recovery.recovered());
  EXPECT_TRUE(result.spill.any());  // the second attempt still spilled
}

TEST_F(HhjTest, PersistentDiskFullFallsBackToNpjExactly) {
  // Asymmetric window (tiny build side) so NPJ fits the same budget that
  // forces HHJ to spill; with the disk persistently full, the supervisor
  // must land on the in-memory fallback and still be exact.
  MicroSpec mspec;
  mspec.size_r = 500;
  mspec.size_s = 40000;
  mspec.window_ms = 100;
  mspec.dupe = 4;
  mspec.seed = 5;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult ref = Reference(w);
  JoinRunner runner;
  const RunResult npj = runner.Run(AlgorithmId::kNpj, w.r, w.s, Spec(2));
  const RunResult prj = runner.Run(AlgorithmId::kPrj, w.r, w.s, Spec(2));
  ASSERT_TRUE(npj.status.ok());
  ASSERT_TRUE(prj.status.ok());

  JoinSpec spec = Spec(2);
  spec.fallback_enabled = true;
  ASSERT_TRUE(fault::Configure("disk_full:1:0").ok());  // every spill write
  mem::SetBudgetBytes((npj.peak_tracked_bytes + prj.peak_tracked_bytes) / 2);
  Supervisor supervisor;
  const RunResult result = supervisor.Run(AlgorithmId::kHhj, w.r, w.s, spec);
  mem::SetBudgetBytes(0);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.algorithm, "NPJ");
  EXPECT_EQ(result.matches, ref.matches);
  EXPECT_EQ(result.checksum, ref.checksum);
  ASSERT_FALSE(result.recovery.events.empty());
  EXPECT_EQ(result.recovery.events.back().detail, "HHJ -> NPJ");
}

TEST_F(HhjTest, WorkerStallUnderBudgetRecoversViaRetryExactly) {
  const MicroWorkload w = Workload(4.0, 0.0);
  const ReferenceResult ref = Reference(w);
  JoinSpec spec = Spec(2);
  spec.retry_max_attempts = 2;
  spec.deadline_ms = 300;

  ASSERT_TRUE(fault::Configure("worker_stall:1").ok());
  mem::SetBudgetBytes(mem::CurrentBytes() + 96 * 1024);
  Supervisor supervisor;
  const RunResult result = supervisor.Run(AlgorithmId::kHhj, w.r, w.s, spec);
  mem::SetBudgetBytes(0);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.matches, ref.matches);
  EXPECT_EQ(result.checksum, ref.checksum);
  EXPECT_TRUE(result.recovery.recovered());
}

TEST_F(HhjTest, SpecValidationCoversHhjRadixBits) {
  JoinSpec spec = Spec(2);
  spec.radix_bits = 0;
  EXPECT_EQ(spec.Validate(AlgorithmId::kHhj).code(),
            StatusCode::kInvalidArgument);
  spec.radix_bits = 10;
  EXPECT_TRUE(spec.Validate(AlgorithmId::kHhj).ok());
}

}  // namespace
}  // namespace iawj
