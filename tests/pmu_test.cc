// Tests for the perf_event_open counter subsystem (profiling/pmu.h).
//
// Hardware counters are unavailable on most CI hosts (seccomp or
// perf_event_paranoid), so the tests split into two groups: the env-parsing
// and degradation contracts, which must hold everywhere, and the
// measurement contracts, which run only when Probe() says the kernel
// cooperates and GTEST_SKIP otherwise — a skip documents the host, a
// failure means the graceful-degradation promise broke.
#include "src/profiling/pmu.h"

#include <cstdlib>

#include "gtest/gtest.h"
#include "src/datagen/micro.h"
#include "src/join/runner.h"
#include "src/profiling/phase.h"

namespace iawj::pmu {
namespace {

class PmuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("IAWJ_PMU");
    unsetenv("IAWJ_PMU_EVENTS");
    ResetForTesting();
  }
  void TearDown() override {
    unsetenv("IAWJ_PMU");
    unsetenv("IAWJ_PMU_EVENTS");
    ResetForTesting();
  }
};

TEST_F(PmuTest, FixedEventListHasTheSixPaperCounters) {
  const std::vector<EventDef> fixed = FixedEvents();
  ASSERT_EQ(fixed.size(), static_cast<size_t>(kNumFixedEvents));
  EXPECT_EQ(fixed[0].name, "cycles");
  EXPECT_EQ(fixed[1].name, "instructions");
  EXPECT_EQ(fixed[2].name, "l1d_misses");
  EXPECT_EQ(fixed[3].name, "llc_misses");
  EXPECT_EQ(fixed[4].name, "dtlb_misses");
  EXPECT_EQ(fixed[5].name, "branch_misses");
}

TEST_F(PmuTest, ParseExtraEventsAcceptsTheDocumentedGrammar) {
  std::vector<EventDef> extras;
  ASSERT_TRUE(ParseExtraEvents("offcore=r01b7,uops=r010e", &extras).ok());
  ASSERT_EQ(extras.size(), 2u);
  EXPECT_EQ(extras[0].name, "offcore");
  EXPECT_EQ(extras[0].config, 0x01b7u);
  EXPECT_EQ(extras[1].name, "uops");
  EXPECT_EQ(extras[1].config, 0x010eu);
}

TEST_F(PmuTest, ParseExtraEventsRejectsMalformedInput) {
  // Every malformed input must come back invalid_argument and leave the
  // output alone.
  for (const char* bad :
       {"noequals", "=r01", "name=", "name=01b7", "name=rzz",
        "UPPER=r01", "cycles=r01", "dup=r01,dup=r02", "a=r01,,b=r02"}) {
    std::vector<EventDef> extras;
    const Status status = ParseExtraEvents(bad, &extras);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "input: " << bad << " -> " << status.ToString();
    EXPECT_TRUE(extras.empty()) << "input: " << bad;
  }
}

TEST_F(PmuTest, ParseExtraEventsCapsTheExtraCount) {
  std::string many;
  for (int i = 0; i < kMaxEvents; ++i) {
    if (!many.empty()) many += ",";
    many += "e";
    many += std::to_string(i);
    many += "=r";
    many += std::to_string(i + 1);
  }
  std::vector<EventDef> extras;
  EXPECT_EQ(ParseExtraEvents(many, &extras).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PmuTest, NotRequestedWithoutEnvOrForce) {
  EXPECT_FALSE(Requested());
  ForceRequested(true);
  EXPECT_TRUE(Requested());
  ForceRequested(false);
  EXPECT_FALSE(Requested());
}

TEST_F(PmuTest, ProbeNeverFailsAndGivesAReasonWhenUnavailable) {
  const Availability& avail = Probe();
  if (!avail.available) {
    // The degradation contract: a refusal names itself.
    EXPECT_NE(avail.reason.find("pmu unavailable:"), std::string::npos)
        << avail.reason;
  } else {
    EXPECT_TRUE(avail.reason.empty());
  }
}

TEST_F(PmuTest, MalformedExtrasSurfaceThroughProbeAsUnavailable) {
  setenv("IAWJ_PMU_EVENTS", "not a grammar", 1);
  ResetForTesting();
  const Availability& avail = Probe();
  EXPECT_FALSE(avail.available);
  EXPECT_NE(avail.reason.find("IAWJ_PMU_EVENTS"), std::string::npos)
      << avail.reason;
}

TEST_F(PmuTest, ScopedThreadPmuIsInertWhenNotRequested) {
  ForceRequested(false);
  PmuProfile profile;
  ScopedThreadPmu scoped(&profile);
  EXPECT_FALSE(scoped.installed());
  EXPECT_EQ(t_pmu, nullptr);
  // SwitchPhase with no installed state is a no-op returning its input.
  EXPECT_EQ(SwitchPhase(Phase::kProbe), Phase::kProbe);
  EXPECT_TRUE(profile.empty());
}

TEST_F(PmuTest, ProfileMergeAndTotalSumOverPhases) {
  PmuProfile a, b;
  const uint64_t delta_a[2] = {10, 20};
  const uint64_t delta_b[2] = {1, 2};
  a.Add(static_cast<int>(Phase::kBuild), delta_a, 2);
  b.Add(static_cast<int>(Phase::kProbe), delta_b, 2);
  a.Merge(b);
  EXPECT_EQ(a.Get(static_cast<int>(Phase::kBuild), 0), 10u);
  EXPECT_EQ(a.Get(static_cast<int>(Phase::kProbe), 0), 1u);
  EXPECT_EQ(a.Total(0), 11u);
  EXPECT_EQ(a.Total(1), 22u);
  EXPECT_FALSE(a.empty());
}

// --- Hardware-dependent group tests (skip when the kernel refuses) --------

TEST_F(PmuTest, GroupOpenSnapshotClose) {
  ForceRequested(true);
  if (!Probe().available) GTEST_SKIP() << Probe().reason;
  PmuGroup group;
  ASSERT_TRUE(group.Open().ok());
  EXPECT_TRUE(group.ok());
  EXPECT_GE(group.num_events(), 1);

  // Burn some cycles so the counters move between snapshots.
  uint64_t before[kMaxEvents], after[kMaxEvents];
  ASSERT_TRUE(group.ReadCounters(before).ok());
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + static_cast<uint64_t>(i) * 31;
  }
  ASSERT_TRUE(group.ReadCounters(after).ok());
  EXPECT_GT(after[0], before[0]) << "cycles did not advance";
  EXPECT_GT(after[1], before[1]) << "instructions did not advance";

  group.Close();
  EXPECT_FALSE(group.ok());
  EXPECT_EQ(group.ReadCounters(before).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PmuTest, RunnerAttributesCountersToPhases) {
  ForceRequested(true);
  if (!Probe().available) GTEST_SKIP() << Probe().reason;

  MicroSpec mspec;
  mspec.size_r = 20000;
  mspec.size_s = 20000;
  mspec.window_ms = 100;
  const MicroWorkload w = GenerateMicro(mspec);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.pmu.requested);
  EXPECT_TRUE(result.pmu.available);
  ASSERT_GE(result.pmu.events.size(),
            static_cast<size_t>(kNumFixedEvents));
  EXPECT_GT(result.pmu.profile.Total(0), 0u) << "no cycles measured";
  // Totals are sums over phases by construction; spot-check the invariant
  // the record validator relies on.
  for (int e = 0; e < kNumFixedEvents; ++e) {
    uint64_t phase_sum = 0;
    for (int p = 0; p < kMaxPhases; ++p) {
      phase_sum += result.pmu.profile.Get(p, e);
    }
    EXPECT_EQ(phase_sum, result.pmu.profile.Total(e));
  }
}

TEST_F(PmuTest, RunnerReportsUnavailableWithReasonWhenBlocked) {
  // Regardless of host capability, an unrequested run must say why there
  // is no PMU data. Force-off: Requested() caches its env resolution, and
  // earlier tests force it on.
  ForceRequested(false);
  MicroSpec mspec;
  mspec.size_r = 100;
  mspec.size_s = 100;
  mspec.window_ms = 10;
  const MicroWorkload w = GenerateMicro(mspec);
  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 10;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.pmu.requested);
  EXPECT_FALSE(result.pmu.available);
  EXPECT_FALSE(result.pmu.reason.empty());
}

}  // namespace
}  // namespace iawj::pmu
