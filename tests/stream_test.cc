// Unit and property tests for streams, statistics, and the JM/JB
// distribution schemes.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/stream/disorder.h"
#include "src/stream/distribution.h"
#include "src/stream/stream.h"

namespace iawj {
namespace {

TEST(Stream, MakeStreamSortsByTimestamp) {
  Stream s = MakeStream({{.ts = 50, .key = 1},
                         {.ts = 10, .key = 2},
                         {.ts = 30, .key = 3}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.tuples[0].ts, 10u);
  EXPECT_EQ(s.tuples[1].ts, 30u);
  EXPECT_EQ(s.tuples[2].ts, 50u);
  EXPECT_EQ(s.MaxTs(), 50u);
}

TEST(Stream, StatsComputeRateAndDuplication) {
  std::vector<Tuple> tuples;
  for (uint32_t i = 0; i < 1000; ++i) {
    tuples.push_back({.ts = i % 100, .key = i % 50});
  }
  const Stream s = MakeStream(std::move(tuples));
  const StreamStats stats = ComputeStats(s);
  EXPECT_EQ(stats.num_tuples, 1000u);
  EXPECT_EQ(stats.unique_keys, 50u);
  EXPECT_DOUBLE_EQ(stats.avg_duplicates_per_key, 20.0);
  EXPECT_NEAR(stats.arrival_rate_per_ms, 10.0, 0.2);  // 1000 tuples / 100ms
  EXPECT_FALSE(FormatStats(stats).empty());
}

// --- Load shedding (ISSUE 3) ------------------------------------------------

Stream BurstyStream(uint32_t buckets, uint32_t per_bucket) {
  std::vector<Tuple> tuples;
  for (uint32_t ts = 0; ts < buckets; ++ts) {
    for (uint32_t i = 0; i < per_bucket; ++i) {
      tuples.push_back({.ts = ts, .key = ts * per_bucket + i});
    }
  }
  return MakeStream(std::move(tuples));
}

TEST(Shed, DisabledWatermarkPassesThrough) {
  const Stream s = BurstyStream(10, 100);
  const ShedResult shed = ShedToWatermark(s, 0, 1.0, 7);
  EXPECT_EQ(shed.tuples_shed, 0u);
  EXPECT_DOUBLE_EQ(shed.shed_ratio, 0);
  EXPECT_EQ(shed.stream.size(), s.size());
}

TEST(Shed, SustainableRateShedsNothing) {
  const Stream s = BurstyStream(10, 100);
  // Consumer drains 100/ms, arrivals are 100/ms: no backlog, no loss.
  const ShedResult shed = ShedToWatermark(s, 100, 1.0, 7);
  EXPECT_EQ(shed.tuples_shed, 0u);
  EXPECT_EQ(shed.stream.size(), s.size());
}

TEST(Shed, OverloadShedsDownTowardsTheWatermark) {
  const Stream s = BurstyStream(10, 100);
  // Consumer drains 20/ms against 100/ms arrivals: most tuples must go.
  const ShedResult shed = ShedToWatermark(s, 20, 1.0, 7);
  EXPECT_GT(shed.tuples_shed, 0u);
  EXPECT_EQ(shed.tuples_in, 1000u);
  EXPECT_EQ(shed.stream.size() + shed.tuples_shed, s.size());
  EXPECT_GT(shed.shed_ratio, 0.5);
  EXPECT_LT(shed.shed_ratio, 1.0);
  // Survivors keep arrival order and are a subset of the input per bucket.
  for (size_t i = 1; i < shed.stream.size(); ++i) {
    EXPECT_LE(shed.stream.tuples[i - 1].ts, shed.stream.tuples[i].ts);
  }
}

TEST(Shed, DeterministicInSeedAndSensitiveToIt) {
  const Stream s = BurstyStream(10, 100);
  const ShedResult a = ShedToWatermark(s, 20, 1.0, 7);
  const ShedResult b = ShedToWatermark(s, 20, 1.0, 7);
  ASSERT_EQ(a.stream.size(), b.stream.size());
  for (size_t i = 0; i < a.stream.size(); ++i) {
    EXPECT_EQ(a.stream.tuples[i].key, b.stream.tuples[i].key);
    EXPECT_EQ(a.stream.tuples[i].ts, b.stream.tuples[i].ts);
  }
  // A different seed rotates the stride sampling: same loss, different
  // survivors.
  const ShedResult c = ShedToWatermark(s, 20, 1.0, 8);
  EXPECT_EQ(a.tuples_shed, c.tuples_shed);
  bool any_difference = false;
  for (size_t i = 0; i < a.stream.size() && !any_difference; ++i) {
    any_difference = a.stream.tuples[i].key != c.stream.tuples[i].key;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Shed, LagBoundToleratesShortBursts) {
  // One 50-tuple burst at ts=0, then silence: a 10/ms consumer with a 5 ms
  // lag tolerance should keep the burst (backlog 50 == bound 50).
  Stream s = BurstyStream(1, 50);
  const ShedResult shed = ShedToWatermark(s, 10, 5.0, 7);
  EXPECT_EQ(shed.tuples_shed, 0u);
}

TEST(Shed, EmptyStreamIsANoOp) {
  const Stream empty;
  const ShedResult shed = ShedToWatermark(empty, 10, 1.0, 7);
  EXPECT_EQ(shed.tuples_in, 0u);
  EXPECT_EQ(shed.tuples_shed, 0u);
  EXPECT_DOUBLE_EQ(shed.shed_ratio, 0);
}

TEST(Shed, ZeroLagToleranceShedsEveryBucket) {
  // lag_bound = watermark * 0 = 0: the backlog drains only across silent
  // gaps, so every bucket's own arrivals exceed the bound the instant they
  // land — zero tolerance sheds everything, even at a sustainable rate.
  const Stream s = BurstyStream(10, 10);
  const ShedResult shed = ShedToWatermark(s, 10, 0.0, 7);
  EXPECT_EQ(shed.tuples_shed, shed.tuples_in);
  EXPECT_EQ(shed.stream.size(), 0u);
  EXPECT_DOUBLE_EQ(shed.shed_ratio, 1.0);
}

TEST(Shed, SingleTimestampBurstThinsToTheLagBound) {
  // All 500 tuples share one timestamp: one bucket, no gaps to drain
  // across, so exactly lag_bound = 10/ms * 5ms = 50 tuples survive.
  const Stream s = BurstyStream(1, 500);
  const ShedResult shed = ShedToWatermark(s, 10, 5.0, 7);
  EXPECT_EQ(shed.stream.size(), 50u);
  EXPECT_EQ(shed.tuples_shed, 450u);
  for (const Tuple& t : shed.stream.tuples) EXPECT_EQ(t.ts, 0u);
  // Deterministic in the seed even in the single-bucket degenerate case.
  const ShedResult again = ShedToWatermark(s, 10, 5.0, 7);
  ASSERT_EQ(again.stream.size(), shed.stream.size());
  for (size_t i = 0; i < shed.stream.size(); ++i) {
    EXPECT_EQ(again.stream.tuples[i].key, shed.stream.tuples[i].key);
  }
}

TEST(Shed, AfterReorderBufferShedMatchesTheOrderedReference) {
  // Shedding consumes the reorder buffer's output: since ingestion with
  // slack >= the disorder bound restores the exact ordered stream, shed
  // decisions downstream of ingest must be byte-identical to shedding the
  // ordered stream directly — and the two accounting stages must chain
  // without losing a tuple.
  const Stream ordered = BurstyStream(20, 50);
  const Stream shuffled = PermuteWithinSlack(ordered, 8, 99);
  IngestPolicy policy;
  policy.slack_ms = 8;
  const IngestResult in = IngestStream(shuffled, policy);
  ASSERT_EQ(in.stats.late_dropped, 0u);
  ASSERT_EQ(in.stats.tuples_out, ordered.size());

  const ShedResult via_ingest = ShedToWatermark(in.stream, 20, 1.0, 7);
  const ShedResult reference = ShedToWatermark(ordered, 20, 1.0, 7);
  EXPECT_GT(via_ingest.tuples_shed, 0u);
  ASSERT_EQ(via_ingest.stream.size(), reference.stream.size());
  for (size_t i = 0; i < reference.stream.size(); ++i) {
    EXPECT_EQ(via_ingest.stream.tuples[i].ts, reference.stream.tuples[i].ts);
    EXPECT_EQ(via_ingest.stream.tuples[i].key,
              reference.stream.tuples[i].key);
  }
  // Chained conservation: every input tuple is admitted, quarantined, or
  // shed — never silently lost between the two stages.
  EXPECT_EQ(via_ingest.stream.size() + via_ingest.tuples_shed +
                in.stats.quarantined(),
            shuffled.size());
}

TEST(Stream, ZipfEstimateSeparatesSkewedFromUniform) {
  Rng rng(1);
  std::vector<Tuple> uniform, skewed;
  for (int i = 0; i < 20000; ++i) {
    uniform.push_back(
        {.ts = 0, .key = static_cast<uint32_t>(rng.NextBounded(1000))});
    // Crude zipf-ish skew: key k with probability ~ 1/(k+1).
    uint32_t k = 0;
    while (k < 999 && rng.NextDouble() > 1.0 / (k + 2)) ++k;
    skewed.push_back({.ts = 0, .key = k});
  }
  const StreamStats u = ComputeStats(MakeStream(std::move(uniform)));
  const StreamStats z = ComputeStats(MakeStream(std::move(skewed)));
  EXPECT_LT(u.key_zipf_estimate, 0.3);
  EXPECT_GT(z.key_zipf_estimate, u.key_zipf_estimate);
}

TEST(Stream, EmptyStreamStats) {
  const StreamStats stats = ComputeStats(Stream{});
  EXPECT_EQ(stats.num_tuples, 0u);
  EXPECT_EQ(stats.unique_keys, 0u);
}

// The load-bearing invariant of eager parallelization: for every pair
// (r, s), exactly one worker processes both tuples — so every match is
// found exactly once regardless of scheme, thread count, or group size.
TEST(Distribution, ExactlyOneWorkerOwnsEveryPair) {
  Rng rng(2);
  std::vector<Tuple> r_tuples(200), s_tuples(300);
  for (auto& t : r_tuples) {
    t = {.ts = 0, .key = static_cast<uint32_t>(rng.NextBounded(50))};
  }
  for (auto& t : s_tuples) {
    t = {.ts = 0, .key = static_cast<uint32_t>(rng.NextBounded(50))};
  }

  struct Config {
    DistributionScheme scheme;
    int threads;
    int group;
  };
  std::vector<Config> configs = {
      {DistributionScheme::kJoinMatrix, 1, 1},
      {DistributionScheme::kJoinMatrix, 4, 1},
      {DistributionScheme::kJoinMatrix, 7, 1},
      {DistributionScheme::kJoinBiclique, 4, 1},
      {DistributionScheme::kJoinBiclique, 4, 2},
      {DistributionScheme::kJoinBiclique, 4, 4},
      {DistributionScheme::kJoinBiclique, 8, 2},
      {DistributionScheme::kJoinBiclique, 6, 3},
  };
  for (const Config& cfg : configs) {
    SCOPED_TRACE(testing::Message()
                 << "scheme=" << static_cast<int>(cfg.scheme)
                 << " T=" << cfg.threads << " g=" << cfg.group);
    Distribution dist(cfg.scheme, cfg.threads, cfg.group);
    for (size_t i = 0; i < r_tuples.size(); i += 17) {
      for (size_t j = 0; j < s_tuples.size(); j += 13) {
        if (r_tuples[i].key != s_tuples[j].key) continue;
        int owners = 0;
        for (int t = 0; t < cfg.threads; ++t) {
          if (dist.OwnsR(t, r_tuples[i], i) && dist.OwnsS(t, s_tuples[j], j)) {
            ++owners;
          }
        }
        EXPECT_EQ(owners, 1);
      }
    }
  }
}

TEST(Distribution, JmReplicatesRAndPartitionsS) {
  Distribution dist(DistributionScheme::kJoinMatrix, 4, 1);
  const Tuple t{.ts = 0, .key = 5};
  for (int w = 0; w < 4; ++w) EXPECT_TRUE(dist.OwnsR(w, t, 0));
  int s_owners = 0;
  for (int w = 0; w < 4; ++w) s_owners += dist.OwnsS(w, t, 11);
  EXPECT_EQ(s_owners, 1);
}

TEST(Distribution, JbGroupOneIsStrictHashPartitioning) {
  Distribution dist(DistributionScheme::kJoinBiclique, 4, 1);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Tuple t{.ts = 0, .key = static_cast<uint32_t>(rng.Next())};
    int r_owners = 0, s_owners = 0;
    int r_owner = -1, s_owner = -1;
    for (int w = 0; w < 4; ++w) {
      if (dist.OwnsR(w, t, i)) {
        ++r_owners;
        r_owner = w;
      }
      if (dist.OwnsS(w, t, i)) {
        ++s_owners;
        s_owner = w;
      }
    }
    // With g=1, both sides of a key hash to the same single worker.
    EXPECT_EQ(r_owners, 1);
    EXPECT_EQ(s_owners, 1);
    EXPECT_EQ(r_owner, s_owner);
  }
}

TEST(Distribution, JbGroupTMatchesJmShape) {
  // g == T: one group; R replicated everywhere, S partitioned.
  Distribution dist(DistributionScheme::kJoinBiclique, 4, 4);
  const Tuple t{.ts = 0, .key = 123};
  for (int w = 0; w < 4; ++w) EXPECT_TRUE(dist.OwnsR(w, t, 0));
  int s_owners = 0;
  for (int w = 0; w < 4; ++w) s_owners += dist.OwnsS(w, t, 5);
  EXPECT_EQ(s_owners, 1);
}

TEST(Distribution, ValidateRejectsBadConfigs) {
  EXPECT_FALSE(
      Distribution::Validate(DistributionScheme::kJoinBiclique, 4, 3).ok());
  EXPECT_FALSE(
      Distribution::Validate(DistributionScheme::kJoinBiclique, 4, 0).ok());
  EXPECT_FALSE(
      Distribution::Validate(DistributionScheme::kJoinMatrix, 0, 1).ok());
  EXPECT_TRUE(
      Distribution::Validate(DistributionScheme::kJoinBiclique, 8, 4).ok());
}

}  // namespace
}  // namespace iawj
