// TSan-targeted stress suite for the lock-free CAS hash table
// (hash/lockfree_table.h), the build substrate behind kernels=lockfree.
//
// The headline risk of a latch-free build is silent corruption: a lost CAS
// retry drops a tuple, a misordered publish exposes an uninitialized node.
// These tests hammer exactly those windows — N threads CAS-pushing into
// deliberately hot shared buckets (tiny key domains), with worker_stall and
// alloc fault injection widening the race windows — and then assert the
// three invariants the ISSUE names: tuple conservation (node count in ==
// tuples out), no lost inserts (per-key multisets match the input exactly),
// and probe results identical to a single-threaded build of the same
// input. The whole file runs under the CI TSan job, where the
// acquire/release pairing of Insert/Probe is checked mechanically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/hash/lockfree_table.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

std::vector<Tuple> MakeTuples(uint64_t seed, size_t n, uint32_t domain) {
  Rng rng(seed);
  std::vector<Tuple> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Tuple{static_cast<uint32_t>(i + 1),
                   static_cast<uint32_t>(rng.NextBounded(domain))};
  }
  return out;
}

// Per-key sorted timestamp lists — the canonical "what the table holds"
// view, independent of chain order (CAS chains are interleaving-dependent).
std::map<uint32_t, std::vector<uint32_t>> Contents(
    const LockFreeChainTable<>& table, uint32_t domain) {
  std::map<uint32_t, std::vector<uint32_t>> out;
  NullTracer tracer;
  for (uint32_t key = 0; key < domain; ++key) {
    std::vector<uint32_t> ts;
    table.Probe(key, [&](const Tuple& t) { ts.push_back(t.ts); }, tracer);
    std::sort(ts.begin(), ts.end());
    if (!ts.empty()) out.emplace(key, std::move(ts));
  }
  return out;
}

void BuildConcurrently(LockFreeChainTable<>& table,
                       const std::vector<Tuple>& tuples, int threads,
                       bool stall_on_fault) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      NullTracer tracer;
      const size_t begin = tuples.size() * t / threads;
      const size_t end = tuples.size() * (t + 1) / threads;
      for (size_t i = begin; i < end; ++i) {
        if (stall_on_fault && fault::Enabled() &&
            fault::Inject("worker_stall")) {
          // Park mid-build: every other thread keeps CAS-ing into the same
          // buckets, so the stalled thread's next publish races a maximally
          // changed head.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        table.Insert(tuples[i], tracer);
      }
    });
  }
  for (auto& w : workers) w.join();
}

void ExpectIdenticalToSingleThreadedBuild(const std::vector<Tuple>& tuples,
                                          uint32_t domain, int threads,
                                          bool stall_on_fault) {
  SCOPED_TRACE("threads=" + std::to_string(threads) +
               " tuples=" + std::to_string(tuples.size()) +
               " domain=" + std::to_string(domain));
  LockFreeChainTable<> concurrent(tuples.size());
  BuildConcurrently(concurrent, tuples, threads, stall_on_fault);

  // Tuple conservation: every claimed node was published, none lost.
  EXPECT_EQ(concurrent.size(), tuples.size());

  LockFreeChainTable<> sequential(tuples.size());
  NullTracer tracer;
  for (const Tuple& t : tuples) sequential.Insert(t, tracer);

  // No lost inserts + probe equivalence: the concurrent table holds exactly
  // the multiset the single-threaded build holds, for every key.
  EXPECT_EQ(Contents(concurrent, domain), Contents(sequential, domain));
}

TEST(LockFreeTableStress, ConcurrentBuildMatchesSingleThreaded) {
  for (const int threads : {2, 4, 8}) {
    // domain 97 over 20k tuples: ~200 tuples per bucket chain, so nearly
    // every insert contends with another thread's CAS.
    ExpectIdenticalToSingleThreadedBuild(MakeTuples(11, 20000, 97), 97,
                                         threads, /*stall_on_fault=*/false);
  }
}

TEST(LockFreeTableStress, TwoKeyMaximalContention) {
  // Two buckets, eight threads: the CAS retry loop is the common path, not
  // the rare one. A single lost retry shows up as a missing timestamp.
  ExpectIdenticalToSingleThreadedBuild(MakeTuples(13, 30000, 2), 2, 8,
                                       /*stall_on_fault=*/false);
}

TEST(LockFreeTableStress, UnderWorkerStallAndAllocFaults) {
  // worker_stall: every 256th hit parks a builder ~2ms mid-chunk, widening
  // publish windows. alloc: every 64th tracked allocation from the 128th on
  // fires the injected-breach path inside mem::Add — the overflow chunks
  // this build forces (expected size 1024 < 12k inserts) must survive it.
  // No breach token is installed, so injected breaches are recorded but
  // non-fatal, exactly like an unbudgeted standalone build.
  ASSERT_TRUE(fault::Configure("worker_stall:4:0,alloc:128:0").ok());
  LockFreeChainTable<> table(1024);
  const std::vector<Tuple> tuples = MakeTuples(17, 12000, 37);
  BuildConcurrently(table, tuples, /*threads=*/6, /*stall_on_fault=*/true);
  fault::Clear();

  EXPECT_EQ(table.size(), tuples.size());
  LockFreeChainTable<> sequential(tuples.size());
  NullTracer tracer;
  for (const Tuple& t : tuples) sequential.Insert(t, tracer);
  EXPECT_EQ(Contents(table, 37), Contents(sequential, 37));
}

TEST(LockFreeTableStress, ConcurrentReadersSeeOnlyPublishedTuples) {
  // Probes racing the build: every tuple a reader observes must be one of
  // the input tuples (fully initialized — the release/acquire pairing under
  // test), and a probe after the build joins must see everything.
  const uint32_t domain = 61;
  const std::vector<Tuple> tuples = MakeTuples(19, 16000, domain);
  LockFreeChainTable<> table(tuples.size());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> observed{0};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      NullTracer tracer;
      Rng rng(23 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const uint32_t key = static_cast<uint32_t>(rng.NextBounded(domain));
        table.Probe(
            key,
            [&](const Tuple& match) {
              observed.fetch_add(1, std::memory_order_relaxed);
              // ts is 1-based input position; key must round-trip. A torn
              // (pre-publication) node would show ts==0 or a foreign key.
              if (match.key != key || match.ts == 0 ||
                  match.ts > tuples.size()) {
                torn.fetch_add(1, std::memory_order_relaxed);
              }
            },
            tracer);
      }
    });
  }

  BuildConcurrently(table, tuples, /*threads=*/4, /*stall_on_fault=*/false);
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(observed.load(), 0u);  // the race actually happened
  LockFreeChainTable<> sequential(tuples.size());
  NullTracer tracer;
  for (const Tuple& t : tuples) sequential.Insert(t, tracer);
  EXPECT_EQ(Contents(table, domain), Contents(sequential, domain));
}

TEST(LockFreeTable, MemoryAccounting) {
  const int64_t before = mem::CurrentBytes();
  {
    LockFreeChainTable<> table(4096);
    EXPECT_EQ(table.memory_bytes(),
              LockFreeChainTable<>::TrackedBytesFor(4096));
    EXPECT_GE(mem::CurrentBytes() - before, table.memory_bytes());
    // Past-expectation inserts charge overflow chunks as they spill.
    NullTracer tracer;
    const int64_t preflighted = table.memory_bytes();
    for (uint32_t i = 0; i < 5000; ++i) {
      table.Insert(Tuple{i + 1, i % 11}, tracer);
    }
    EXPECT_GT(table.memory_bytes(), preflighted);
  }
  EXPECT_EQ(mem::CurrentBytes(), before);
}

// End-to-end: NPJ under kernels=lockfree is byte-exact vs the nested-loop
// reference on both schedulers — the run-record kernels block names the
// build variant that executed.
TEST(LockFreeNpj, ByteExactVsReference) {
  // Timestamps stay inside the single 1000ms window so the nested-loop
  // reference over the full streams is the exact expected answer.
  const auto windowed = [](uint64_t seed, size_t n, uint32_t domain) {
    Rng rng(seed);
    std::vector<Tuple> out(n);
    for (auto& t : out) {
      t = Tuple{static_cast<uint32_t>(rng.NextBounded(1000)),
                static_cast<uint32_t>(rng.NextBounded(domain))};
    }
    return out;
  };
  const std::vector<Tuple> r_tuples = windowed(29, 4000, 150);
  const std::vector<Tuple> s_tuples = windowed(31, 4500, 150);
  const Stream r = MakeStream(r_tuples);
  const Stream s = MakeStream(s_tuples);
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());

  for (const SchedulerMode sched :
       {SchedulerMode::kStatic, SchedulerMode::kMorsel}) {
    SCOPED_TRACE("scheduler=" + std::string(SchedulerModeName(sched)));
    JoinSpec spec;
    spec.num_threads = 4;
    spec.window_ms = 1000;
    spec.clock_mode = Clock::Mode::kInstant;
    spec.kernels = KernelMode::kLockfree;
    spec.scheduler = sched;
    spec.morsel_size = 256;
    JoinRunner runner;
    const RunResult result = runner.Run(AlgorithmId::kNpj, r, s, spec);
    EXPECT_TRUE(result.status.ok()) << result.status.message();
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
    EXPECT_EQ(result.kernels_resolved, KernelMode::kLockfree);
    EXPECT_EQ(result.kernel_build, "lockfree");
  }
}

}  // namespace
}  // namespace iawj
