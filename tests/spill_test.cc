// Tests for the partition spill layer (ISSUE 7): page round-trips, checksum
// verification against real on-disk corruption, the three injected fault
// sites, tracker accounting of write buffers, and run-dir lifecycle.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/io/spill.h"

namespace iawj {
namespace {

std::vector<Tuple> MakeTuples(size_t n) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(Tuple{static_cast<uint32_t>(i * 3 + 1),
                           static_cast<uint32_t>((i * 2654435761u) & 0x7fffffff)});
  }
  return tuples;
}

class SpillTest : public testing::Test {
 protected:
  void SetUp() override {
    fault::Clear();
    ASSERT_TRUE(spill::CreateRunDir(&dir_).ok());
  }
  void TearDown() override {
    fault::Clear();
    spill::RemoveRunDir(dir_);
  }

  std::string Path(const char* name) const { return dir_ + "/" + name; }

  // Writes `tuples` through a writer with the given page payload size.
  void WriteRun(const std::string& path, const std::vector<Tuple>& tuples,
                size_t page_bytes, uint64_t* pages_out = nullptr) {
    spill::SpillWriter writer;
    ASSERT_TRUE(writer.Open(path, page_bytes).ok());
    for (const Tuple& t : tuples) ASSERT_TRUE(writer.Append(t).ok());
    ASSERT_TRUE(writer.Close().ok());
    EXPECT_EQ(writer.tuples(), tuples.size());
    if (pages_out != nullptr) *pages_out = writer.pages_written();
  }

  std::string dir_;
};

TEST_F(SpillTest, RoundTripsOnePageExactly) {
  const std::vector<Tuple> tuples = MakeTuples(100);
  WriteRun(Path("one.spl"), tuples, spill::PageBytes());

  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("one.spl")).ok());
  mem::TrackedBuffer<Tuple> got;
  ASSERT_TRUE(reader.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(got[i], tuples[i]) << "tuple " << i;
  }
  EXPECT_EQ(reader.pages_read(), 1u);
}

TEST_F(SpillTest, RoundTripsManySmallPagesInOrder) {
  const std::vector<Tuple> tuples = MakeTuples(1000);
  uint64_t pages_written = 0;
  // 64-byte payload = 8 tuples per page -> 125 pages.
  WriteRun(Path("many.spl"), tuples, 64, &pages_written);
  EXPECT_EQ(pages_written, 125u);

  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("many.spl")).ok());
  mem::TrackedBuffer<Tuple> page;
  bool eof = false;
  size_t i = 0;
  while (true) {
    ASSERT_TRUE(reader.ReadPage(&page, &eof).ok());
    if (eof) break;
    for (const Tuple& t : page) {
      ASSERT_LT(i, tuples.size());
      EXPECT_EQ(t, tuples[i++]);
    }
  }
  EXPECT_EQ(i, tuples.size());
  EXPECT_EQ(reader.pages_read(), pages_written);
}

TEST_F(SpillTest, RewindRestreamsTheSameTuples) {
  const std::vector<Tuple> tuples = MakeTuples(300);
  WriteRun(Path("rewind.spl"), tuples, 128);

  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("rewind.spl")).ok());
  mem::TrackedBuffer<Tuple> first, second;
  ASSERT_TRUE(reader.ReadAll(&first).ok());
  ASSERT_TRUE(reader.Rewind().ok());
  ASSERT_TRUE(reader.ReadAll(&second).ok());
  ASSERT_EQ(first.size(), tuples.size());
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
}

TEST_F(SpillTest, ChecksumCatchesRealOnDiskCorruption) {
  const std::vector<Tuple> tuples = MakeTuples(64);
  WriteRun(Path("corrupt.spl"), tuples, spill::PageBytes());

  // Flip one payload byte on disk: file magic (8) + page header (16) + a
  // few tuples in, well inside the checksummed region.
  std::FILE* f = std::fopen(Path("corrupt.spl").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 8 + 16 + 21, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("corrupt.spl")).ok());
  mem::TrackedBuffer<Tuple> got;
  const Status status = reader.ReadAll(&got);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST_F(SpillTest, TruncatedFileIsDataLossNotWrongAnswers) {
  const std::vector<Tuple> tuples = MakeTuples(200);
  WriteRun(Path("trunc.spl"), tuples, 256);

  struct stat st;
  ASSERT_EQ(stat(Path("trunc.spl").c_str(), &st), 0);
  ASSERT_EQ(truncate(Path("trunc.spl").c_str(), st.st_size - 5), 0);

  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("trunc.spl")).ok());
  mem::TrackedBuffer<Tuple> got;
  EXPECT_EQ(reader.ReadAll(&got).code(), StatusCode::kDataLoss);
}

TEST_F(SpillTest, GarbageFileIsRejectedAtOpen) {
  std::FILE* f = std::fopen(Path("garbage.spl").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a spill file at all", f);
  std::fclose(f);

  spill::SpillReader reader;
  EXPECT_EQ(reader.Open(Path("garbage.spl")).code(), StatusCode::kDataLoss);
}

TEST_F(SpillTest, OversizedPageCountIsRejectedWithoutAllocating) {
  // Hand-craft a file whose header promises more tuples than any page can
  // hold; the reader must refuse rather than trust a corrupt count.
  std::FILE* f = std::fopen(Path("bigcount.spl").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char magic[8] = {'I', 'A', 'W', 'J', 'S', 'P', 'L', '1'};
  ASSERT_EQ(std::fwrite(magic, 1, 8, f), 8u);
  struct {
    uint32_t magic;
    uint32_t tuple_count;
    uint64_t checksum;
  } header{0x53504731, 0xffffffffu, 0};
  ASSERT_EQ(std::fwrite(&header, 1, sizeof(header), f), sizeof(header));
  std::fclose(f);

  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("bigcount.spl")).ok());
  mem::TrackedBuffer<Tuple> got;
  bool eof = false;
  EXPECT_EQ(reader.ReadPage(&got, &eof).code(), StatusCode::kDataLoss);
}

TEST_F(SpillTest, DiskFullFaultIsStickyResourceExhausted) {
  ASSERT_TRUE(fault::Configure("disk_full").ok());
  spill::SpillWriter writer;
  // One-tuple pages: the very first append flushes and hits the fault.
  ASSERT_TRUE(writer.Open(Path("full.spl"), sizeof(Tuple)).ok());
  const Status first = writer.Append(Tuple{1, 2});
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted) << first.ToString();
  // The failure sticks: later appends and Close keep reporting it.
  EXPECT_EQ(writer.Append(Tuple{3, 4}).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(writer.Close().code(), StatusCode::kResourceExhausted);
}

TEST_F(SpillTest, IoTruncateFaultIsDataLossOnRead) {
  const std::vector<Tuple> tuples = MakeTuples(50);
  WriteRun(Path("iotrunc.spl"), tuples, spill::PageBytes());

  ASSERT_TRUE(fault::Configure("io_truncate").ok());
  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("iotrunc.spl")).ok());
  mem::TrackedBuffer<Tuple> got;
  EXPECT_EQ(reader.ReadAll(&got).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(got.empty());  // never hand corrupt tuples to the join
}

TEST_F(SpillTest, SpillCorruptFaultIsDataLossOnRead) {
  const std::vector<Tuple> tuples = MakeTuples(50);
  WriteRun(Path("spcorrupt.spl"), tuples, spill::PageBytes());

  ASSERT_TRUE(fault::Configure("spill_corrupt").ok());
  spill::SpillReader reader;
  ASSERT_TRUE(reader.Open(Path("spcorrupt.spl")).ok());
  mem::TrackedBuffer<Tuple> got;
  const Status status = reader.ReadAll(&got);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST_F(SpillTest, WriterPageBufferIsTrackerAccounted) {
  const int64_t before = mem::CurrentBytes();
  {
    spill::SpillWriter writer;
    ASSERT_TRUE(writer.Open(Path("tracked.spl"), 4096).ok());
    EXPECT_GE(mem::CurrentBytes(), before + 4096);
    ASSERT_TRUE(writer.Append(Tuple{1, 2}).ok());
    ASSERT_TRUE(writer.Close().ok());
    // Close releases the page buffer, not just the destructor.
    EXPECT_EQ(mem::CurrentBytes(), before);
  }
  EXPECT_EQ(mem::CurrentBytes(), before);
}

TEST_F(SpillTest, RunDirsAreUniqueAndRemovable) {
  std::string a, b;
  ASSERT_TRUE(spill::CreateRunDir(&a).ok());
  ASSERT_TRUE(spill::CreateRunDir(&b).ok());
  EXPECT_NE(a, b);
  struct stat st;
  EXPECT_EQ(stat(a.c_str(), &st), 0);
  EXPECT_EQ(stat(b.c_str(), &st), 0);

  // Removal takes the run files with it.
  std::FILE* f = std::fopen((a + "/p0_r.spl").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  spill::RemoveRunDir(a);
  spill::RemoveRunDir(b);
  EXPECT_NE(stat(a.c_str(), &st), 0);
  EXPECT_NE(stat(b.c_str(), &st), 0);
}

TEST_F(SpillTest, PageChecksumIsOrderSensitive) {
  const std::vector<Tuple> tuples = MakeTuples(8);
  std::vector<Tuple> swapped = tuples;
  std::swap(swapped[0], swapped[7]);
  EXPECT_NE(spill::PageChecksum(tuples.data(), tuples.size()),
            spill::PageChecksum(swapped.data(), swapped.size()));
  EXPECT_EQ(spill::PageChecksum(tuples.data(), tuples.size()),
            spill::PageChecksum(tuples.data(), tuples.size()));
}

}  // namespace
}  // namespace iawj
