// Tests for the Figure 4 decision tree: every leaf of the paper's tree must
// be reachable and agree with §5.1's written guidance.
#include <gtest/gtest.h>

#include "src/datagen/real_world.h"
#include "src/join/decision_tree.h"

namespace iawj {
namespace {

WorkloadProfile BothRates(RateClass rate) {
  WorkloadProfile p;
  p.rate_r = rate;
  p.rate_s = rate;
  return p;
}

TEST(Classification, RateBands) {
  EXPECT_EQ(ClassifyRate(61), RateClass::kLow);       // Stock
  EXPECT_EQ(ClassifyRate(1600), RateClass::kMedium);  // Micro low end
  EXPECT_EQ(ClassifyRate(12800), RateClass::kMedium);
  EXPECT_EQ(ClassifyRate(25600), RateClass::kHigh);   // Micro high end
}

TEST(Classification, DuplicationCrossoverAtTen) {
  EXPECT_EQ(ClassifyDuplication(1), Level::kLow);
  EXPECT_EQ(ClassifyDuplication(10), Level::kLow);
  EXPECT_EQ(ClassifyDuplication(11), Level::kHigh);     // Figure 11
  EXPECT_EQ(ClassifyDuplication(17960), Level::kHigh);  // Rovio
}

TEST(DecisionTree, LowRateOnEitherStreamPicksShjJm) {
  // "We recommend SHJ-JM whenever one input stream has low arrival rate."
  WorkloadProfile p = BothRates(RateClass::kHigh);
  p.rate_r = RateClass::kLow;
  for (Objective obj : {Objective::kThroughput, Objective::kLatency,
                        Objective::kProgressiveness}) {
    EXPECT_EQ(RecommendAlgorithm(p, obj, {}), AlgorithmId::kShjJm);
  }
  p = BothRates(RateClass::kLow);
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kThroughput, {}),
            AlgorithmId::kShjJm);
}

TEST(DecisionTree, HighRateHighDupePicksSortJoins) {
  WorkloadProfile p = BothRates(RateClass::kHigh);
  p.key_duplication = Level::kHigh;
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kThroughput, {.num_cores = 16}),
            AlgorithmId::kMpass);  // "MPass scales better with large cores"
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kThroughput, {.num_cores = 4}),
            AlgorithmId::kMway);
}

TEST(DecisionTree, HighRateLowDupePicksHashJoins) {
  WorkloadProfile p = BothRates(RateClass::kHigh);
  p.key_duplication = Level::kLow;
  p.key_skew = Level::kLow;
  p.input_size = Level::kHigh;
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kThroughput, {}),
            AlgorithmId::kPrj);  // "PRJ ... skew low and input large"
  p.key_skew = Level::kHigh;
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kThroughput, {}),
            AlgorithmId::kNpj);
  p.key_skew = Level::kLow;
  p.input_size = Level::kLow;
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kThroughput, {}),
            AlgorithmId::kNpj);
}

TEST(DecisionTree, MediumRateLatencyObjective) {
  WorkloadProfile p = BothRates(RateClass::kMedium);
  p.key_duplication = Level::kHigh;
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kLatency, {}),
            AlgorithmId::kPmjJb);
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kProgressiveness, {}),
            AlgorithmId::kPmjJb);
  p.key_duplication = Level::kLow;
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kLatency, {}),
            AlgorithmId::kShjJm);
}

TEST(DecisionTree, MediumRateThroughputGoesLazy) {
  WorkloadProfile p = BothRates(RateClass::kMedium);
  p.key_duplication = Level::kLow;
  const AlgorithmId pick = RecommendAlgorithm(p, Objective::kThroughput, {});
  EXPECT_TRUE(IsLazy(pick));
  p.key_duplication = Level::kHigh;
  EXPECT_TRUE(IsLazy(RecommendAlgorithm(p, Objective::kThroughput, {})));
}

TEST(DecisionTree, ProfilesDerivedFromRealWorkloads) {
  // Stock: low arrival rates on both streams -> SHJ-JM regardless of metric.
  const Workload stock =
      GenerateRealWorld({.which = RealWorkload::kStock, .scale = 1.0});
  const WorkloadProfile p =
      ProfileFromStats(ComputeStats(stock.r), ComputeStats(stock.s));
  EXPECT_EQ(p.rate_r, RateClass::kLow);
  EXPECT_EQ(RecommendAlgorithm(p, Objective::kLatency, {}),
            AlgorithmId::kShjJm);

  // Rovio (scaled): enormous key duplication classifies high.
  const Workload rovio =
      GenerateRealWorld({.which = RealWorkload::kRovio, .scale = 0.05});
  const WorkloadProfile pr =
      ProfileFromStats(ComputeStats(rovio.r), ComputeStats(rovio.s));
  EXPECT_EQ(pr.key_duplication, Level::kHigh);
}

TEST(DecisionTree, HelpersExposeAlgorithmTaxonomy) {
  EXPECT_TRUE(IsLazy(AlgorithmId::kNpj));
  EXPECT_FALSE(IsLazy(AlgorithmId::kShjJm));
  EXPECT_TRUE(IsSortBased(AlgorithmId::kMpass));
  EXPECT_TRUE(IsSortBased(AlgorithmId::kPmjJb));
  EXPECT_FALSE(IsSortBased(AlgorithmId::kPrj));
  for (AlgorithmId id : kAllAlgorithms) {
    EXPECT_FALSE(AlgorithmName(id).empty());
  }
}

}  // namespace
}  // namespace iawj
