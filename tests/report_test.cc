// Tests for the report module: tables, CSV emission, gnuplot scripts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/report/report.h"

namespace iawj {
namespace {

report::Table SampleTable() {
  report::Table table({"rate", "algo", "tput"});
  table.AddRow({"1600", "NPJ", "158.7"});
  table.AddRow({"1600", "SHJ-JM", "160.4"});
  table.AddRow({"3200", "NPJ", "306.8"});
  table.AddRow({"3200", "SHJ-JM", "320.6"});
  return table;
}

TEST(ReportTable, TextAlignsColumns) {
  const std::string text = SampleTable().ToText();
  // Header plus 4 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  EXPECT_NE(text.find("rate"), std::string::npos);
  EXPECT_NE(text.find("SHJ-JM"), std::string::npos);
}

TEST(ReportTable, CsvRoundTripStructure) {
  const std::string csv = SampleTable().ToCsv();
  EXPECT_EQ(csv.rfind("rate,algo,tput\n", 0), 0u);
  EXPECT_NE(csv.find("3200,SHJ-JM,320.6\n"), std::string::npos);
}

TEST(ReportTable, CsvEscapesSpecialCells) {
  report::Table table({"a", "b"});
  table.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(ReportTable, CsvEscapesNewlinesAndMixedCells) {
  report::Table table({"a", "b", "c"});
  table.AddRow({"line1\nline2", "quote\"and,comma", "plain"});
  const std::string csv = table.ToCsv();
  // The embedded newline stays inside one quoted cell (RFC 4180).
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"and,comma\""), std::string::npos);
  // Plain cells stay unquoted.
  EXPECT_NE(csv.find(",plain\n"), std::string::npos);
  // Exactly header + one (logical) row: 3 line breaks total, one of which
  // is the embedded one.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ReportTable, CsvEscapesQuoteOnlyAndEmptyCells) {
  report::Table table({"a", "b"});
  table.AddRow({"\"", ""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"\"\"\","), std::string::npos);  // lone quote doubled
  EXPECT_NE(csv.find(",\n"), std::string::npos);        // empty cell stays bare
}

TEST(ReportTable, CsvEscapesCarriageReturn) {
  report::Table table({"a"});
  table.AddRow({"pre\r\npost"});
  const std::string csv = table.ToCsv();
  // \r\n-containing cells must be quoted (the \n triggers quoting).
  EXPECT_NE(csv.find("\"pre\r\npost\""), std::string::npos);
}

TEST(ReportTable, NumFormatsPrecision) {
  EXPECT_EQ(report::Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(report::Table::Num(1000, 0), "1000");
}

TEST(ReportTable, WriteCsvCreatesFile) {
  const std::string path = testing::TempDir() + "/iawj_report_test.csv";
  ASSERT_TRUE(SampleTable().WriteCsv(path).ok());
  std::ifstream in(path);
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_EQ(first_line, "rate,algo,tput");
  std::remove(path.c_str());
}

TEST(ReportTable, WriteCsvFailsOnBadPath) {
  EXPECT_FALSE(SampleTable().WriteCsv("/nonexistent-dir/x.csv").ok());
}

TEST(Gnuplot, EmitsOneSeriesPerDistinctValue) {
  const report::Table table = SampleTable();
  const std::string script =
      report::GnuplotScript("fig9", table, "rate", "algo", "tput");
  EXPECT_NE(script.find("title 'NPJ'"), std::string::npos);
  EXPECT_NE(script.find("title 'SHJ-JM'"), std::string::npos);
  EXPECT_NE(script.find("'fig9.csv'"), std::string::npos);
  EXPECT_NE(script.find("set xlabel 'rate'"), std::string::npos);
}

TEST(Gnuplot, UsesOneBasedColumnIndices) {
  const report::Table table = SampleTable();  // rate=1, algo=2, tput=3
  const std::string script =
      report::GnuplotScript("fig9", table, "rate", "algo", "tput");
  EXPECT_NE(script.find("using 1:"), std::string::npos);
  EXPECT_NE(script.find("stringcolumn(2)"), std::string::npos);
  EXPECT_NE(script.find("column(3)"), std::string::npos);
  EXPECT_NE(script.find("set datafile separator ','"), std::string::npos);
  EXPECT_NE(script.find("set ylabel 'tput'"), std::string::npos);
}

TEST(Gnuplot, ExactlyOnePlotLinePerSeries) {
  const report::Table table = SampleTable();  // two distinct algos
  const std::string script =
      report::GnuplotScript("fig9", table, "rate", "algo", "tput");
  size_t plots = 0;
  for (size_t pos = script.find("with linespoints");
       pos != std::string::npos;
       pos = script.find("with linespoints", pos + 1)) {
    ++plots;
  }
  EXPECT_EQ(plots, 2u);
}

}  // namespace
}  // namespace iawj
