// Tests for the report module: tables, CSV emission, gnuplot scripts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/report/report.h"

namespace iawj {
namespace {

report::Table SampleTable() {
  report::Table table({"rate", "algo", "tput"});
  table.AddRow({"1600", "NPJ", "158.7"});
  table.AddRow({"1600", "SHJ-JM", "160.4"});
  table.AddRow({"3200", "NPJ", "306.8"});
  table.AddRow({"3200", "SHJ-JM", "320.6"});
  return table;
}

TEST(ReportTable, TextAlignsColumns) {
  const std::string text = SampleTable().ToText();
  // Header plus 4 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  EXPECT_NE(text.find("rate"), std::string::npos);
  EXPECT_NE(text.find("SHJ-JM"), std::string::npos);
}

TEST(ReportTable, CsvRoundTripStructure) {
  const std::string csv = SampleTable().ToCsv();
  EXPECT_EQ(csv.rfind("rate,algo,tput\n", 0), 0u);
  EXPECT_NE(csv.find("3200,SHJ-JM,320.6\n"), std::string::npos);
}

TEST(ReportTable, CsvEscapesSpecialCells) {
  report::Table table({"a", "b"});
  table.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(ReportTable, NumFormatsPrecision) {
  EXPECT_EQ(report::Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(report::Table::Num(1000, 0), "1000");
}

TEST(ReportTable, WriteCsvCreatesFile) {
  const std::string path = testing::TempDir() + "/iawj_report_test.csv";
  ASSERT_TRUE(SampleTable().WriteCsv(path).ok());
  std::ifstream in(path);
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_EQ(first_line, "rate,algo,tput");
  std::remove(path.c_str());
}

TEST(ReportTable, WriteCsvFailsOnBadPath) {
  EXPECT_FALSE(SampleTable().WriteCsv("/nonexistent-dir/x.csv").ok());
}

TEST(Gnuplot, EmitsOneSeriesPerDistinctValue) {
  const report::Table table = SampleTable();
  const std::string script =
      report::GnuplotScript("fig9", table, "rate", "algo", "tput");
  EXPECT_NE(script.find("title 'NPJ'"), std::string::npos);
  EXPECT_NE(script.find("title 'SHJ-JM'"), std::string::npos);
  EXPECT_NE(script.find("'fig9.csv'"), std::string::npos);
  EXPECT_NE(script.find("set xlabel 'rate'"), std::string::npos);
}

}  // namespace
}  // namespace iawj
