// Tests for the Chrome-trace span recorder: event capture, span
// nesting/coalescing, multi-thread serialization, env gating, and the
// runner integration that names worker threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/datagen/micro.h"
#include "src/join/runner.h"
#include "src/profiling/trace.h"

namespace iawj {
namespace {

class TraceTest : public testing::Test {
 protected:
  void SetUp() override {
    trace::ResetForTesting();
    trace::ForceEnableForTesting(true);
    saved_min_span_ns_ = trace::g_min_span_ns.load();
    trace::g_min_span_ns.store(0);
  }
  void TearDown() override {
    trace::g_min_span_ns.store(saved_min_span_ns_);
    trace::ResetForTesting();
  }

  uint64_t saved_min_span_ns_ = 0;
};

// Parses a serialized trace and returns its traceEvents array.
json::Value ParseTrace(const std::string& text) {
  json::Value root;
  const Status status = json::Parse(text, &root);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(root.is_object());
  const json::Value* events = root.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  return *events;
}

// Validates B/E pairing and name matching per thread; returns span count.
size_t CheckPairing(const json::Value& events) {
  std::map<int64_t, std::vector<std::string>> open;
  size_t spans = 0;
  for (const json::Value& e : events.array) {
    const std::string& ph = e.Find("ph")->string;
    const int64_t tid = static_cast<int64_t>(e.Find("tid")->number);
    const std::string& name = e.Find("name")->string;
    if (ph == "B") {
      open[tid].push_back(name);
      ++spans;
    } else if (ph == "E") {
      EXPECT_FALSE(open[tid].empty()) << "E without B: " << name;
      if (!open[tid].empty()) {
        EXPECT_EQ(open[tid].back(), name);
        open[tid].pop_back();
      }
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  return spans;
}

std::vector<std::string> EventNames(const json::Value& events,
                                    const std::string& ph) {
  std::vector<std::string> names;
  for (const json::Value& e : events.array) {
    if (e.Find("ph")->string == ph) names.push_back(e.Find("name")->string);
  }
  return names;
}

TEST_F(TraceTest, DisabledByDefaultWithoutEnv) {
  trace::ResetForTesting();  // back to env-driven
  unsetenv("IAWJ_TRACE_FILE");
  EXPECT_FALSE(trace::Enabled());
  trace::ScopedThreadTrace tt("t");
  EXPECT_FALSE(tt.installed());
  EXPECT_FALSE(trace::Active());
  // Emission is a no-op, not a crash.
  trace::BeginSpan("x");
  trace::EndSpan();
  trace::Instant("y");
  trace::Counter("z", 1);
  EXPECT_EQ(trace::TotalEventCount(), 0u);
  trace::ForceEnableForTesting(true);  // restore fixture expectation
}

TEST_F(TraceTest, EnvVarEnables) {
  trace::ResetForTesting();  // back to env-driven
  setenv("IAWJ_TRACE_FILE", "/tmp/iawj_test_trace.json", 1);
  EXPECT_TRUE(trace::Enabled());
  unsetenv("IAWJ_TRACE_FILE");
  EXPECT_FALSE(trace::Enabled());
  trace::ForceEnableForTesting(true);
}

TEST_F(TraceTest, ForceDisableWins) {
  setenv("IAWJ_TRACE_FILE", "/tmp/iawj_test_trace.json", 1);
  trace::ForceEnableForTesting(false);
  EXPECT_FALSE(trace::Enabled());
  unsetenv("IAWJ_TRACE_FILE");
}

TEST_F(TraceTest, SpansNestAndSerialize) {
  {
    trace::ScopedThreadTrace tt("main");
    ASSERT_TRUE(tt.installed());
    trace::BeginSpan("outer");
    trace::BeginSpan("inner");
    trace::Instant("tick", 7);
    trace::EndSpan();
    trace::Counter("bytes", 42);
    trace::EndSpan();
  }
  const json::Value events = ParseTrace(trace::SerializeChromeTrace());
  CheckPairing(events);
  const auto begins = EventNames(events, "B");
  ASSERT_EQ(begins.size(), 2u);
  EXPECT_EQ(begins[0], "outer");
  EXPECT_EQ(begins[1], "inner");
  const auto ends = EventNames(events, "E");
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], "inner");  // inner closes first
  EXPECT_EQ(ends[1], "outer");
  EXPECT_EQ(EventNames(events, "i"), std::vector<std::string>{"tick"});
  EXPECT_EQ(EventNames(events, "C"), std::vector<std::string>{"bytes"});
  // Thread metadata names the thread.
  bool named = false;
  for (const json::Value& e : events.array) {
    if (e.Find("name")->string == "thread_name" &&
        e.Find("args")->Find("name")->string == "main") {
      named = true;
    }
  }
  EXPECT_TRUE(named);
}

TEST_F(TraceTest, ShortLeafSpansAreCoalescedAway) {
  trace::g_min_span_ns.store(uint64_t{60} * 1000 * 1000 * 1000);
  {
    trace::ScopedThreadTrace tt("main");
    trace::BeginSpan("tiny");
    trace::EndSpan();  // leaf far below threshold: dropped entirely
    trace::BeginSpan("parent");
    trace::Instant("child");  // parent is not a leaf: kept despite duration
    trace::EndSpan();
  }
  const json::Value events = ParseTrace(trace::SerializeChromeTrace());
  CheckPairing(events);
  EXPECT_EQ(EventNames(events, "B"), std::vector<std::string>{"parent"});
}

TEST_F(TraceTest, NestedScopedThreadTraceIsNoop) {
  trace::ScopedThreadTrace outer("outer");
  ASSERT_TRUE(outer.installed());
  {
    trace::ScopedThreadTrace inner("inner");
    EXPECT_FALSE(inner.installed());
    EXPECT_TRUE(trace::Active());  // outer recorder still in place
  }
  EXPECT_TRUE(trace::Active());
}

TEST_F(TraceTest, DestructorClosesOpenSpans) {
  {
    trace::ScopedThreadTrace tt("main");
    trace::BeginSpan("left-open");
    trace::BeginSpan("also-open");
  }
  const json::Value events = ParseTrace(trace::SerializeChromeTrace());
  CheckPairing(events);  // would fail if spans stayed open
}

TEST_F(TraceTest, MultiThreadFlush) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::ScopedThreadTrace tt("worker " + std::to_string(t), t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::BeginSpan("work");
        trace::Counter("i", i);
        trace::EndSpan();
      }
    });
  }
  for (auto& th : threads) th.join();
  const json::Value events = ParseTrace(trace::SerializeChromeTrace());
  EXPECT_EQ(CheckPairing(events), size_t{kThreads * kSpansPerThread});
  // All four workers named, each with pinned-core metadata attached.
  int named = 0, cores = 0;
  for (const json::Value& e : events.array) {
    const std::string& name = e.Find("name")->string;
    if (name == "thread_name" &&
        e.Find("args")->Find("name")->string.rfind("worker ", 0) == 0) {
      ++named;
    }
    if (name == "iawj_pinned_core") ++cores;
  }
  EXPECT_EQ(named, kThreads);
  EXPECT_EQ(cores, kThreads);
}

TEST_F(TraceTest, InternedNamesAreStable) {
  const char* a = trace::Intern("run 1 NPJ");
  const char* b = trace::Intern("run 1 NPJ");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "run 1 NPJ");
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  {
    trace::ScopedThreadTrace tt("main");
    trace::BeginSpan("span");
    trace::EndSpan();
  }
  const std::string path = testing::TempDir() + "/iawj_trace_test.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  const json::Value events = ParseTrace(text);
  CheckPairing(events);
  json::Value root;
  ASSERT_TRUE(json::Parse(text, &root).ok());
  EXPECT_EQ(root.Find("displayTimeUnit")->string, "ms");
}

// End-to-end: one lazy and one eager algorithm through the runner must leave
// named per-worker phase spans (the ISSUE 1 acceptance criterion).
TEST_F(TraceTest, RunnerEmitsNamedWorkerPhaseSpans) {
  MicroSpec mspec;
  mspec.rate_r = 50;
  mspec.rate_s = 50;
  mspec.window_ms = 200;
  MicroWorkload workload = GenerateMicro(mspec);

  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 200;
  spec.clock_mode = Clock::Mode::kInstant;

  JoinRunner runner;
  const RunResult lazy = runner.Run(AlgorithmId::kNpj, workload.r,
                                    workload.s, spec);
  const RunResult eager = runner.Run(AlgorithmId::kShjJm, workload.r,
                                     workload.s, spec);
  EXPECT_GT(lazy.matches, 0u);
  EXPECT_EQ(lazy.matches, eager.matches);

  const json::Value events = ParseTrace(trace::SerializeChromeTrace());
  CheckPairing(events);

  // Worker threads are named per algorithm and worker index.
  std::vector<std::string> thread_names;
  for (const json::Value& e : events.array) {
    if (e.Find("name")->string == "thread_name") {
      thread_names.push_back(e.Find("args")->Find("name")->string);
    }
  }
  const auto has_thread = [&](const std::string& name) {
    for (const auto& t : thread_names) {
      if (t == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_thread("NPJ w0"));
  EXPECT_TRUE(has_thread("NPJ w1"));
  EXPECT_TRUE(has_thread("SHJ-JM w0"));
  EXPECT_TRUE(has_thread("orchestrator"));

  // Phase spans from both the lazy ScopedPhase path and the eager
  // PhaseStopwatch path.
  const auto begins = EventNames(events, "B");
  const auto count = [&](const std::string& name) {
    size_t n = 0;
    for (const auto& b : begins) {
      if (b == name) ++n;
    }
    return n;
  };
  EXPECT_GE(count("build"), 1u);      // NPJ build phase
  EXPECT_GE(count("probe"), 1u);      // NPJ probe phase
  EXPECT_GE(count("partition"), 1u);  // eager pull loop
  EXPECT_GE(count("NPJ run 1"), 1u);  // per-run span on workers+orchestrator
}

// When no recorder is installed, instrumented code paths must not record
// anything (the "zero overhead when disabled" contract).
TEST_F(TraceTest, NoEventsWithoutInstalledRecorder) {
  trace::ForceEnableForTesting(false);
  MicroSpec mspec;
  mspec.rate_r = 20;
  mspec.rate_s = 20;
  mspec.window_ms = 100;
  MicroWorkload workload = GenerateMicro(mspec);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  JoinRunner runner;
  runner.Run(AlgorithmId::kNpj, workload.r, workload.s, spec);
  runner.Run(AlgorithmId::kShjJm, workload.r, workload.s, spec);
  EXPECT_EQ(trace::TotalEventCount(), 0u);
}

}  // namespace
}  // namespace iawj
