// Unit tests for the profiling substrate: phase timers, progressiveness
// recorder, cache simulator, resource sampler.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"
#include "src/profiling/phase.h"
#include "src/profiling/progress.h"
#include "src/profiling/resource.h"

namespace iawj {
namespace {

TEST(PhaseProfile, AccumulatesAndMerges) {
  PhaseProfile a, b;
  a.AddNs(Phase::kBuild, 100);
  a.AddNs(Phase::kProbe, 50);
  b.AddNs(Phase::kBuild, 10);
  a.Merge(b);
  EXPECT_EQ(a.GetNs(Phase::kBuild), 110u);
  EXPECT_EQ(a.GetNs(Phase::kProbe), 50u);
  EXPECT_EQ(a.TotalNs(), 160u);
}

TEST(PhaseProfile, ScopedPhaseMeasuresWallTime) {
  PhaseProfile profile;
  {
    ScopedPhase scope(&profile, Phase::kSort);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_GE(profile.GetNs(Phase::kSort), 2'000'000u);
  EXPECT_EQ(profile.GetNs(Phase::kMerge), 0u);
}

TEST(PhaseStopwatch, SwitchAttributesToCurrentPhase) {
  PhaseProfile profile;
  PhaseStopwatch sw(&profile);
  sw.Switch(Phase::kPartition);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sw.Switch(Phase::kProbe);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sw.Stop();
  EXPECT_GE(profile.GetNs(Phase::kPartition), 1'000'000u);
  EXPECT_GE(profile.GetNs(Phase::kProbe), 1'000'000u);
  // Stop is idempotent.
  sw.Stop();
}

TEST(PhaseNames, AllDistinct) {
  EXPECT_EQ(PhaseName(Phase::kWait), "wait");
  EXPECT_EQ(PhaseName(Phase::kPartition), "partition");
  EXPECT_EQ(PhaseName(Phase::kProbe), "probe");
}

TEST(ProgressRecorder, CurveIsMonotoneCdf) {
  ProgressRecorder rec;
  for (int i = 1; i <= 1000; ++i) rec.Record(static_cast<double>(i));
  const auto curve = rec.Curve();
  ASSERT_FALSE(curve.empty());
  double prev_t = 0, prev_f = 0;
  for (const auto& [t, f] : curve) {
    EXPECT_GE(t, prev_t);
    EXPECT_GE(f, prev_f);
    prev_t = t;
    prev_f = f;
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(ProgressRecorder, TimeToFraction) {
  ProgressRecorder rec;
  for (int i = 1; i <= 1000; ++i) rec.Record(static_cast<double>(i));
  const double t50 = rec.TimeToFractionMs(0.5);
  EXPECT_NEAR(t50, 500, 100);
  EXPECT_LE(rec.TimeToFractionMs(0.1), t50);
  EXPECT_LE(t50, rec.TimeToFractionMs(0.9));
}

TEST(ProgressRecorder, MergeSumsTotals) {
  ProgressRecorder a, b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.total(), 2u);
}

TEST(CacheSim, SmallWorkingSetHitsL1) {
  CacheSim sim = CacheSim::XeonGold6126();
  std::vector<char> data(8 * 1024);  // fits in 32 KiB L1
  for (int pass = 0; pass < 4; ++pass) {
    for (size_t i = 0; i < data.size(); i += 64) sim.Access(&data[i], 1);
  }
  const CacheCounters total = sim.Total();
  // First pass cold-misses; later passes hit.
  EXPECT_LE(total.l1_misses, data.size() / 64 + 8);
  EXPECT_EQ(total.l3_misses, total.l3_misses);  // well-formed
}

TEST(CacheSim, LargeWorkingSetMissesEverywhere) {
  CacheSim sim = CacheSim::XeonGold6126();
  const size_t big = 64ull * 1024 * 1024;  // 4x L3
  std::vector<char> data(big);
  // Two sequential sweeps: the second still misses L3 (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < big; i += 64) sim.Access(&data[i], 1);
  }
  const CacheCounters total = sim.Total();
  EXPECT_GT(total.l1_misses, big / 64);
  EXPECT_GT(total.l3_misses, big / 64 / 2);
  EXPECT_GT(total.tlb_misses, 0u);
}

TEST(CacheSim, PhaseAttribution) {
  CacheSim sim = CacheSim::XeonGold6126();
  std::vector<char> data(1024 * 1024);
  sim.SetPhase(Phase::kBuild);
  sim.Access(data.data(), 1);
  sim.SetPhase(Phase::kProbe);
  sim.Access(data.data() + 512 * 1024, 1);
  EXPECT_EQ(sim.counters(Phase::kBuild).accesses, 1u);
  EXPECT_EQ(sim.counters(Phase::kProbe).accesses, 1u);
  EXPECT_EQ(sim.counters(Phase::kSort).accesses, 0u);
}

TEST(CacheSim, MultiLineAccessTouchesEveryLine) {
  CacheSim sim = CacheSim::XeonGold6126();
  alignas(64) char block[256];
  sim.Access(block, 256);
  EXPECT_EQ(sim.Total().accesses, 4u);
}

TEST(ResourceSampler, CollectsSamples) {
  mem::Reset();
  ResourceSampler sampler(/*period_ms=*/1.0);
  sampler.Start();
  mem::Add(1 << 20);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  mem::Add(-(1 << 20));
  ASSERT_GE(sampler.samples().size(), 2u);
  EXPECT_GE(sampler.samples().back().elapsed_ms,
            sampler.samples().front().elapsed_ms);
  bool saw_memory = false;
  for (const auto& s : sampler.samples()) {
    if (s.tracked_bytes >= (1 << 20)) saw_memory = true;
  }
  EXPECT_TRUE(saw_memory);
  EXPECT_GE(sampler.CpuUtilization(1), 0.0);
}

}  // namespace
}  // namespace iawj
