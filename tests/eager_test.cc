// Focused tests for the eager engine internals: PMJ run mechanics, SHJ
// states, stalling behaviour, and the traced (cache-sim) variants.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/join/pmj.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/join/shj.h"

namespace iawj {
namespace {

// Drives an EagerState directly with a synthetic clock and sink.
struct StateHarness {
  StateHarness() : clock(Clock::Mode::kInstant), sw(&profile) {
    clock.Start();
    sink.Bind(&clock);
  }

  Clock clock;
  MatchSink sink;
  PhaseProfile profile;
  PhaseStopwatch sw;
};

TEST(PmjStateTest, SealsRunsAtDeltaAndFindsCrossRunMatches) {
  StateHarness h;
  EagerStateConfig config;
  config.expected_r = 100;
  config.expected_s = 100;
  config.pmj_delta = 0.5;  // threshold = 100 tuples per run
  PmjState<NullTracer> state(config, NullTracer{});

  // 1st run: key 1 on R side only. 2nd run: key 1 on S side only.
  // The match can only be found by the cross-run merge in Finish().
  for (int i = 0; i < 100; ++i) {
    state.OnR(Tuple{.ts = 0, .key = 1}, h.sink, h.sw);
  }
  EXPECT_EQ(state.num_runs(), 1u);
  EXPECT_EQ(h.sink.count(), 0u);  // no S tuples yet

  for (int i = 0; i < 100; ++i) {
    state.OnS(Tuple{.ts = 0, .key = 1}, h.sink, h.sw);
  }
  EXPECT_EQ(state.num_runs(), 2u);
  EXPECT_EQ(h.sink.count(), 0u);  // still: runs never met

  state.Finish(h.sink, h.sw);
  EXPECT_EQ(h.sink.count(), 100u * 100u);
}

TEST(PmjStateTest, IntraRunMatchesEmittedEagerly) {
  StateHarness h;
  EagerStateConfig config;
  config.expected_r = 50;
  config.expected_s = 50;
  config.pmj_delta = 1.0;  // threshold = 100: everything is one run
  PmjState<NullTracer> state(config, NullTracer{});
  for (int i = 0; i < 50; ++i) {
    state.OnR(Tuple{.ts = 0, .key = 9}, h.sink, h.sw);
    state.OnS(Tuple{.ts = 0, .key = 9}, h.sink, h.sw);
  }
  // The 100th tuple triggers the seal, which merge-joins the run.
  EXPECT_EQ(h.sink.count(), 50u * 50u);
  state.Finish(h.sink, h.sw);
  EXPECT_EQ(h.sink.count(), 50u * 50u);  // nothing double counted
}

TEST(PmjStateTest, TinyDeltaProducesManyRuns) {
  StateHarness h;
  EagerStateConfig config;
  config.expected_r = 10000;
  config.expected_s = 10000;
  config.pmj_delta = 0.01;  // threshold = 200
  PmjState<NullTracer> state(config, NullTracer{});
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Tuple t{.ts = 0, .key = static_cast<uint32_t>(rng.NextBounded(50))};
    if (i % 2 == 0) {
      state.OnR(t, h.sink, h.sw);
    } else {
      state.OnS(t, h.sink, h.sw);
    }
  }
  state.Finish(h.sink, h.sw);
  EXPECT_GE(state.num_runs(), 9u);
}

TEST(ShjStateTest, ValueAndPointerStatesAgree) {
  Rng rng(2);
  std::vector<Tuple> r(500), s(500);
  for (auto& t : r) {
    t = {.ts = static_cast<uint32_t>(rng.NextBounded(100)),
         .key = static_cast<uint32_t>(rng.NextBounded(30))};
  }
  for (auto& t : s) {
    t = {.ts = static_cast<uint32_t>(rng.NextBounded(100)),
         .key = static_cast<uint32_t>(rng.NextBounded(30))};
  }
  const ReferenceResult expected = NestedLoopJoin(r, s);

  EagerStateConfig config;
  config.expected_r = r.size();
  config.expected_s = s.size();

  StateHarness hv;
  ShjValueState<NullTracer> value_state(config, NullTracer{});
  for (size_t i = 0; i < r.size(); ++i) {
    value_state.OnR(r[i], hv.sink, hv.sw);
    value_state.OnS(s[i], hv.sink, hv.sw);
  }
  EXPECT_EQ(hv.sink.count(), expected.matches);
  EXPECT_EQ(hv.sink.checksum(), expected.checksum);

  StateHarness hp;
  ShjPointerState<NullTracer> pointer_state(config, NullTracer{});
  for (size_t i = 0; i < r.size(); ++i) {
    pointer_state.OnR(r[i], hp.sink, hp.sw);
    pointer_state.OnS(s[i], hp.sink, hp.sw);
  }
  EXPECT_EQ(hp.sink.count(), expected.matches);
  EXPECT_EQ(hp.sink.checksum(), expected.checksum);
}

TEST(EagerEngine, StallsWhenConsumingFasterThanArrival) {
  // Slow trickle: the engine must accumulate wait time (paper §4.2.2: "the
  // eager algorithms may still stall if they consume tuples faster than
  // tuple arrival").
  MicroSpec mspec;
  mspec.rate_r = 2;
  mspec.rate_s = 2;
  mspec.window_ms = 60;
  const MicroWorkload w = GenerateMicro(mspec);

  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 60;
  spec.clock_mode = Clock::Mode::kRealTime;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kShjJm, w.r, w.s, spec);
  EXPECT_GT(result.phases.GetNs(Phase::kWait), 10'000'000u);
}

TEST(TracedAlgorithms, ProduceSameResultsAndCountAccesses) {
  MicroSpec mspec;
  mspec.size_r = 2000;
  mspec.size_s = 2000;
  mspec.dupe = 5;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());

  JoinSpec spec;
  spec.num_threads = 2;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    std::vector<CacheSim> sims;
    sims.reserve(spec.num_threads);
    for (int t = 0; t < spec.num_threads; ++t) {
      sims.push_back(CacheSim::XeonGold6126());
    }
    std::vector<CacheSim*> sim_ptrs;
    for (auto& sim : sims) sim_ptrs.push_back(&sim);

    auto traced = CreateTracedAlgorithm(id);
    const RunResult result =
        runner.RunWith(traced.get(), w.r, w.s, spec, sim_ptrs.data());
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);

    uint64_t accesses = 0;
    for (const auto& sim : sims) accesses += sim.Total().accesses;
    EXPECT_GT(accesses, w.r.size() + w.s.size());
  }
}

}  // namespace
}  // namespace iawj
