// Disorder-tolerant ingestion tests (ISSUE 8): reorder-buffer restoration,
// watermark monotonicity (including under injected clock skew and stalls),
// quarantine dispositions with their conservation invariant, the
// per-algorithm differential proof that bounded-disorder permutations join
// byte-exact, and the zero-overhead contract for unconfigured runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/join/runner.h"
#include "src/join/supervisor.h"
#include "src/join/window_pipeline.h"
#include "src/stream/disorder.h"
#include "src/stream/stream.h"

namespace iawj {
namespace {

// The ingest env knobs leak across tests if a prior test (or the invoking
// shell) set them; every fixtureless test goes through this.
void ClearIngestEnv() {
  unsetenv("IAWJ_DISORDER_SLACK");
  unsetenv("IAWJ_ALLOWED_LATENESS");
  unsetenv("IAWJ_INGEST_DEDUP");
}

Stream RandomStream(uint32_t n, uint32_t max_ts, uint32_t keys,
                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    tuples.push_back({.ts = static_cast<uint32_t>(rng.NextBounded(max_ts)),
                      .key = static_cast<uint32_t>(rng.NextBounded(keys))});
  }
  return MakeStream(std::move(tuples));
}

void ExpectConservation(const IngestStats& st) {
  EXPECT_EQ(st.tuples_out + st.late_dropped + st.duplicates + st.corrupt,
            st.tuples_in);
  EXPECT_LE(st.late_admitted + st.late_dropped, st.late_total);
  EXPECT_LE(st.final_watermark_ms, st.max_ts_ms);
}

void ExpectSorted(const Stream& s) {
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s.tuples[i - 1].ts, s.tuples[i].ts) << "at index " << i;
  }
}

// --- Policy resolution ------------------------------------------------------

TEST(IngestPolicy, DefaultsAreOff) {
  ClearIngestEnv();
  const IngestPolicy policy = IngestPolicy::Resolve(0, 0, false);
  EXPECT_FALSE(policy.Enabled());
  EXPECT_DOUBLE_EQ(policy.slack_ms, 0);
  EXPECT_DOUBLE_EQ(policy.allowed_lateness_ms, 0);
  EXPECT_FALSE(policy.dedup);
}

TEST(IngestPolicy, SpecWinsOverEnvAndNegativeDisables) {
  setenv("IAWJ_DISORDER_SLACK", "64", 1);
  setenv("IAWJ_ALLOWED_LATENESS", "128", 1);
  setenv("IAWJ_INGEST_DEDUP", "1", 1);
  IngestPolicy policy = IngestPolicy::Resolve(8, 16, false);
  EXPECT_DOUBLE_EQ(policy.slack_ms, 8);
  EXPECT_DOUBLE_EQ(policy.allowed_lateness_ms, 16);
  EXPECT_TRUE(policy.dedup);  // OR'd with the env
  // 0 defers to the environment.
  policy = IngestPolicy::Resolve(0, 0, false);
  EXPECT_DOUBLE_EQ(policy.slack_ms, 64);
  EXPECT_DOUBLE_EQ(policy.allowed_lateness_ms, 128);
  // Negative is explicitly off regardless of the environment.
  policy = IngestPolicy::Resolve(-1, -1, false);
  EXPECT_DOUBLE_EQ(policy.slack_ms, 0);
  EXPECT_DOUBLE_EQ(policy.allowed_lateness_ms, 0);
  ClearIngestEnv();
}

TEST(IngestPolicy, MalformedEnvIsIgnored) {
  setenv("IAWJ_DISORDER_SLACK", "not-a-number", 1);
  setenv("IAWJ_ALLOWED_LATENESS", "-5", 1);
  const IngestPolicy policy = IngestPolicy::Resolve(0, 0, false);
  EXPECT_FALSE(policy.Enabled());
  ClearIngestEnv();
}

// --- Watermark generator ----------------------------------------------------

TEST(Watermark, TracksMaxMinusLatenessMonotone) {
  WatermarkGenerator wm(10);
  EXPECT_EQ(wm.Observe(100), 90u);
  // A regressing observation never moves the watermark backwards.
  EXPECT_EQ(wm.Observe(50), 90u);
  EXPECT_EQ(wm.clamps(), 1u);
  EXPECT_EQ(wm.Observe(200), 190u);
  // Below-lateness timestamps clamp at zero, not underflow.
  WatermarkGenerator small(1000);
  EXPECT_EQ(small.Observe(5), 0u);
}

TEST(Watermark, MonotoneUnderInjectedClockSkew) {
  // Satellite 1: clock_skew now also fires inside the generator — hits 5-7
  // arrive stamped ~10 s in the past, the shape of an NTP step on the
  // producer. The emitted watermark must stay non-decreasing throughout,
  // absorbing each regression as a counted clamp.
  ASSERT_TRUE(fault::Configure("clock_skew:5:3").ok());
  WatermarkGenerator wm(5);
  uint32_t prev = 0;
  for (uint32_t ts = 0; ts < 30000; ts += 500) {
    const uint32_t cur = wm.Observe(ts);
    EXPECT_GE(cur, prev) << "watermark regressed at ts " << ts;
    prev = cur;
  }
  EXPECT_EQ(wm.clamps(), 3u);
  EXPECT_EQ(wm.Current(), 29500u - 5u);
  fault::Clear();
}

TEST(Watermark, StallFreezesThenRecovers) {
  ASSERT_TRUE(fault::Configure("watermark_stall:2").ok());
  WatermarkGenerator wm(0);
  EXPECT_EQ(wm.Observe(100), 100u);
  // The second observation trips the stall: the watermark freezes for the
  // next 256 observations even as timestamps advance...
  uint32_t ts = 100;
  for (int i = 0; i < 256; ++i) {
    ts += 10;
    EXPECT_EQ(wm.Observe(ts), 100u);
  }
  // ...then resumes tracking.
  EXPECT_GT(wm.Observe(ts + 10), 100u);
  fault::Clear();
}

// --- Reorder buffer + quarantine -------------------------------------------

TEST(Ingest, OrderedInputPassesThroughUnchanged) {
  ClearIngestEnv();
  const Stream s = RandomStream(2000, 500, 100, 1);
  IngestPolicy policy;
  policy.slack_ms = 32;
  const IngestResult result = IngestStream(s, policy);
  ASSERT_EQ(result.stream.size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(result.stream.tuples[i].ts, s.tuples[i].ts);
  }
  EXPECT_EQ(result.stats.tuples_in, s.size());
  EXPECT_EQ(result.stats.late_total, 0u);
  ExpectConservation(result.stats);
}

TEST(Ingest, BoundedDisorderIsRestoredExactlyWithZeroLoss) {
  ClearIngestEnv();
  const Stream s = RandomStream(4000, 1000, 200, 2);
  const Stream permuted = PermuteWithinSlack(s, 32, 99);
  IngestPolicy policy;
  policy.slack_ms = 32;
  const IngestResult result = IngestStream(permuted, policy);
  ASSERT_EQ(result.stream.size(), s.size());
  EXPECT_EQ(result.stats.late_total, 0u);
  EXPECT_GT(result.stats.reordered, 0u);
  EXPECT_LE(result.stats.max_disorder_ms, 32u);
  ExpectSorted(result.stream);
  // Exact multiset restoration: same (ts, key) sequence after sorting the
  // original the same way the buffer orders ties.
  std::vector<Tuple> want = s.tuples;
  std::stable_sort(want.begin(), want.end(), [](Tuple a, Tuple b) {
    return a.ts != b.ts ? a.ts < b.ts : a.key < b.key;
  });
  std::vector<Tuple> got = result.stream.tuples;
  std::stable_sort(got.begin(), got.end(), [](Tuple a, Tuple b) {
    return a.ts != b.ts ? a.ts < b.ts : a.key < b.key;
  });
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].ts, want[i].ts);
    EXPECT_EQ(got[i].key, want[i].key);
  }
  ExpectConservation(result.stats);
}

TEST(Ingest, LateTupleWithinLatenessIsAdmitted) {
  ClearIngestEnv();
  Stream arrivals;  // built in arrival order on purpose
  for (uint32_t ts = 0; ts < 100; ++ts) {
    arrivals.tuples.push_back({.ts = ts, .key = ts});
  }
  arrivals.tuples.push_back({.ts = 50, .key = 777});  // 49 ms late
  IngestPolicy policy;
  policy.slack_ms = 1;
  policy.allowed_lateness_ms = 200;  // watermark 0: everything admissible
  const IngestResult result = IngestStream(arrivals, policy);
  EXPECT_EQ(result.stats.late_total, 1u);
  EXPECT_EQ(result.stats.late_admitted, 1u);
  EXPECT_EQ(result.stats.late_dropped, 0u);
  EXPECT_EQ(result.stream.size(), arrivals.size());
  ExpectSorted(result.stream);
  // The admitted tuple sits merged at its timestamp, not appended.
  const auto it = std::find_if(
      result.stream.tuples.begin(), result.stream.tuples.end(),
      [](Tuple t) { return t.key == 777; });
  ASSERT_NE(it, result.stream.tuples.end());
  EXPECT_EQ(it->ts, 50u);
  ExpectConservation(result.stats);
}

TEST(Ingest, LateTupleBeyondLatenessIsQuarantinedNotSilentlyLost) {
  ClearIngestEnv();
  Stream arrivals;
  for (uint32_t ts = 0; ts < 100; ++ts) {
    arrivals.tuples.push_back({.ts = ts, .key = ts});
  }
  arrivals.tuples.push_back({.ts = 5, .key = 777});  // far beyond lateness
  IngestPolicy policy;
  policy.slack_ms = 1;
  policy.allowed_lateness_ms = 10;  // watermark 89 when the straggler lands
  const IngestResult result = IngestStream(arrivals, policy);
  EXPECT_EQ(result.stats.late_total, 1u);
  EXPECT_EQ(result.stats.late_admitted, 0u);
  EXPECT_EQ(result.stats.late_dropped, 1u);
  EXPECT_EQ(result.stats.quarantined(), 1u);
  EXPECT_EQ(result.stream.size(), arrivals.size() - 1);
  ExpectConservation(result.stats);
}

TEST(Ingest, DedupQuarantinesExactRedeliveryOnlyWhenEnabled) {
  ClearIngestEnv();
  Stream arrivals;
  arrivals.tuples = {{.ts = 1, .key = 7},
                     {.ts = 1, .key = 7},   // exact re-delivery
                     {.ts = 1, .key = 8},   // same ts, different key: kept
                     {.ts = 2, .key = 7}};  // same key, different ts: kept
  IngestPolicy policy;
  policy.slack_ms = 16;
  const IngestResult off = IngestStream(arrivals, policy);
  EXPECT_EQ(off.stats.duplicates, 0u);
  EXPECT_EQ(off.stream.size(), 4u);
  policy.dedup = true;
  const IngestResult on = IngestStream(arrivals, policy);
  EXPECT_EQ(on.stats.duplicates, 1u);
  EXPECT_EQ(on.stream.size(), 3u);
  ExpectConservation(on.stats);
}

TEST(Ingest, CorruptKeyIsQuarantined) {
  ClearIngestEnv();
  Stream arrivals;
  arrivals.tuples = {{.ts = 1, .key = 7},
                     {.ts = 2, .key = 0xFFFFFFFFu},  // outside the key domain
                     {.ts = 3, .key = 9}};
  IngestPolicy policy;
  policy.slack_ms = 4;
  const IngestResult result = IngestStream(arrivals, policy);
  EXPECT_EQ(result.stats.corrupt, 1u);
  EXPECT_EQ(result.stream.size(), 2u);
  ExpectConservation(result.stats);
}

TEST(Ingest, EmptyStreamIsANoOp) {
  ClearIngestEnv();
  IngestPolicy policy;
  policy.slack_ms = 8;
  const IngestResult result = IngestStream(Stream{}, policy);
  EXPECT_FALSE(result.stats.any());
  EXPECT_EQ(result.stream.size(), 0u);
}

// --- PermuteWithinSlack -----------------------------------------------------

TEST(Permute, DeterministicAndBoundedDisorder) {
  const Stream s = RandomStream(3000, 800, 100, 3);
  const Stream a = PermuteWithinSlack(s, 20, 5);
  const Stream b = PermuteWithinSlack(s, 20, 5);
  ASSERT_EQ(a.size(), b.size());
  bool identical = true;
  for (size_t i = 0; i < a.size(); ++i) {
    identical = identical && a.tuples[i].ts == b.tuples[i].ts &&
                a.tuples[i].key == b.tuples[i].key;
  }
  EXPECT_TRUE(identical);
  // Disorder bound: no tuple arrives more than max_shift behind the running
  // maximum (the jitter-sort proof in disorder.h).
  uint32_t max_seen = 0;
  for (const Tuple& t : a.tuples) {
    if (t.ts > max_seen) max_seen = t.ts;
    EXPECT_LE(max_seen - t.ts, 20u + 20u);
  }
  // A different seed produces a different arrival order.
  const Stream c = PermuteWithinSlack(s, 20, 6);
  bool any_difference = false;
  for (size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a.tuples[i].ts != c.tuples[i].ts ||
                     a.tuples[i].key != c.tuples[i].key;
  }
  EXPECT_TRUE(any_difference);
}

// --- Fault sites ------------------------------------------------------------

TEST(IngestFault, DisorderBurstIsAbsorbedBySufficientSlack) {
  ClearIngestEnv();
  Stream arrivals;
  for (uint32_t ts = 0; ts < 1000; ++ts) {
    arrivals.tuples.push_back({.ts = ts, .key = ts});
  }
  IngestPolicy policy;
  policy.slack_ms = 200;  // > the burst's 128-arrival hold
  ASSERT_TRUE(fault::Configure("disorder_burst:100").ok());
  const IngestResult result = IngestStream(arrivals, policy);
  fault::Clear();
  EXPECT_GT(result.stats.reordered, 0u);
  EXPECT_EQ(result.stats.late_dropped, 0u);
  EXPECT_EQ(result.stream.size(), arrivals.size());
  ExpectSorted(result.stream);
  ExpectConservation(result.stats);
}

TEST(IngestFault, LateTupleHeldToEndOfStreamIsAccounted) {
  ClearIngestEnv();
  Stream arrivals;
  for (uint32_t ts = 0; ts < 1000; ++ts) {
    arrivals.tuples.push_back({.ts = ts, .key = ts});
  }
  IngestPolicy policy;
  policy.slack_ms = 4;
  policy.allowed_lateness_ms = 10;
  ASSERT_TRUE(fault::Configure("late_tuple:100").ok());
  const IngestResult result = IngestStream(arrivals, policy);
  fault::Clear();
  EXPECT_EQ(result.stats.late_total, 1u);
  EXPECT_EQ(result.stats.late_dropped, 1u);  // ~900 ms late, lateness 10
  ExpectConservation(result.stats);
}

TEST(IngestFault, DupTupleQuarantinedUnderDedup) {
  ClearIngestEnv();
  Stream arrivals;
  for (uint32_t ts = 0; ts < 100; ++ts) {
    arrivals.tuples.push_back({.ts = ts, .key = ts});
  }
  IngestPolicy policy;
  policy.slack_ms = 8;
  policy.dedup = true;
  ASSERT_TRUE(fault::Configure("dup_tuple:50").ok());
  const IngestResult result = IngestStream(arrivals, policy);
  fault::Clear();
  EXPECT_EQ(result.stats.duplicates, 1u);
  EXPECT_EQ(result.stream.size(), arrivals.size());
  ExpectConservation(result.stats);
}

TEST(IngestFault, ReplayIsDeterministic) {
  ClearIngestEnv();
  const Stream s = RandomStream(2000, 400, 80, 4);
  const Stream permuted = PermuteWithinSlack(s, 16, 11);
  IngestPolicy policy;
  policy.slack_ms = 16;
  policy.allowed_lateness_ms = 8;
  ASSERT_TRUE(
      fault::Configure("disorder_burst:10,late_tuple:20,watermark_stall:3")
          .ok());
  const IngestResult first = IngestStream(permuted, policy);
  fault::Reset();  // re-arm the same schedule
  const IngestResult second = IngestStream(permuted, policy);
  fault::Clear();
  EXPECT_EQ(first.stats.tuples_out, second.stats.tuples_out);
  EXPECT_EQ(first.stats.reordered, second.stats.reordered);
  EXPECT_EQ(first.stats.late_dropped, second.stats.late_dropped);
  EXPECT_EQ(first.stats.final_watermark_ms, second.stats.final_watermark_ms);
  ASSERT_EQ(first.stream.size(), second.stream.size());
  for (size_t i = 0; i < first.stream.size(); ++i) {
    EXPECT_EQ(first.stream.tuples[i].key, second.stream.tuples[i].key);
  }
  ExpectConservation(first.stats);
}

// --- End-to-end: supervisor + pipeline + differential proof -----------------

TEST(IngestEndToEnd, DifferentialProofAcrossAllAlgorithms) {
  ClearIngestEnv();
  const Stream r = RandomStream(1500, 500, 120, 20);
  const Stream s = RandomStream(1500, 500, 120, 21);
  const Stream pr = PermuteWithinSlack(r, 24, 31);
  const Stream ps = PermuteWithinSlack(s, 24, 32);
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    JoinSpec spec;
    spec.num_threads = 4;
    spec.window_ms = 600;
    JoinRunner runner;
    const RunResult ref = runner.Run(id, r, s, spec);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();

    JoinSpec dspec = spec;
    dspec.disorder_slack_ms = 24;
    Supervisor supervisor;
    const RunResult got = supervisor.Run(id, pr, ps, dspec);
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    // Byte-exact: same match count and order-insensitive checksum.
    EXPECT_EQ(got.matches, ref.matches);
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_TRUE(got.ingest.any());
    EXPECT_EQ(got.ingest.late_dropped, 0u);
    EXPECT_EQ(got.ingest.tuples_out, got.ingest.tuples_in);
    ExpectConservation(got.ingest);
  }
}

TEST(IngestEndToEnd, UnconfiguredRunHasZeroIngestFootprint) {
  ClearIngestEnv();
  const Stream r = RandomStream(1000, 300, 80, 22);
  const Stream s = RandomStream(1000, 300, 80, 23);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 400;
  JoinRunner runner;
  const RunResult ref = runner.Run(AlgorithmId::kNpj, r, s, spec);
  Supervisor supervisor;
  const RunResult got = supervisor.Run(AlgorithmId::kNpj, r, s, spec);
  ASSERT_TRUE(got.status.ok());
  EXPECT_FALSE(got.ingest.any());
  EXPECT_TRUE(got.recovery.empty());
  EXPECT_EQ(got.matches, ref.matches);
  EXPECT_EQ(got.checksum, ref.checksum);
}

TEST(IngestEndToEnd, QuarantineFeedsBoundedLossAccounting) {
  ClearIngestEnv();
  Stream r, s;
  for (uint32_t ts = 0; ts < 200; ++ts) {
    r.tuples.push_back({.ts = ts, .key = ts % 40});
    s.tuples.push_back({.ts = ts, .key = ts % 40});
  }
  // One straggler on each side, far beyond the allowed lateness.
  r.tuples.push_back({.ts = 3, .key = 3});
  s.tuples.push_back({.ts = 4, .key = 4});
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 256;
  spec.disorder_slack_ms = 2;
  spec.allowed_lateness_ms = 10;
  Supervisor supervisor;
  const RunResult got = supervisor.Run(AlgorithmId::kNpj, r, s, spec);
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(got.ingest.late_dropped, 2u);
  EXPECT_EQ(got.recovery.tuples_dropped, 2u);
  EXPECT_GT(got.recovery.est_matches_lost, 0);
  EXPECT_TRUE(got.recovery.degraded());
  bool quarantine_event = false;
  for (const RecoveryEvent& e : got.recovery.events) {
    quarantine_event =
        quarantine_event || e.action == RecoveryAction::kQuarantine;
  }
  EXPECT_TRUE(quarantine_event);
}

TEST(IngestEndToEnd, PipelineIngestsBeforeSegmentation) {
  ClearIngestEnv();
  const Stream r = RandomStream(2000, 900, 100, 24);
  const Stream s = RandomStream(2000, 900, 100, 25);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 250;  // 4 windows
  const PipelineResult ref =
      RunTumblingWindows(AlgorithmId::kNpj, r, s, spec);
  ASSERT_TRUE(ref.status.ok());

  JoinSpec dspec = spec;
  dspec.disorder_slack_ms = 16;
  const Stream pr = PermuteWithinSlack(r, 16, 41);
  const Stream ps = PermuteWithinSlack(s, 16, 42);
  const PipelineResult got =
      RunTumblingWindows(AlgorithmId::kNpj, pr, ps, dspec);
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(got.total_matches, ref.total_matches);
  EXPECT_EQ(got.total_checksum, ref.total_checksum);
  EXPECT_TRUE(got.ingest.any());
  EXPECT_EQ(got.ingest.late_dropped, 0u);
  ExpectConservation(got.ingest);
}

}  // namespace
}  // namespace iawj
