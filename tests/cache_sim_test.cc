// Focused tests for the cache simulator's mechanics: set mapping,
// associativity, LRU replacement, and hierarchy interaction. These pin the
// behaviour the Figure 8 / Table 5 substitutions depend on.
#include <gtest/gtest.h>

#include <vector>

#include "src/profiling/cache_sim.h"

namespace iawj {
namespace {

// A tiny single level: 4 sets x 2 ways x 64B lines = 512 B.
CacheLevelConfig TinyConfig() { return {512, 2, 64}; }

TEST(CacheLevel, HitsAfterInstall) {
  CacheLevel level(TinyConfig());
  EXPECT_FALSE(level.Access(0));  // cold
  EXPECT_TRUE(level.Access(0));   // hit
  EXPECT_TRUE(level.Access(32));  // same line
  EXPECT_EQ(level.misses(), 1u);
  EXPECT_EQ(level.accesses(), 3u);
}

TEST(CacheLevel, DistinctSetsDoNotConflict) {
  CacheLevel level(TinyConfig());
  // Lines 0..3 map to sets 0..3: all fit simultaneously.
  for (uint64_t line = 0; line < 4; ++line) level.Access(line * 64);
  for (uint64_t line = 0; line < 4; ++line) {
    EXPECT_TRUE(level.Access(line * 64)) << line;
  }
}

TEST(CacheLevel, AssociativityBoundsConflictSet) {
  CacheLevel level(TinyConfig());
  // Three lines mapping to set 0 (stride = 4 lines): only 2 ways.
  const uint64_t a = 0, b = 4 * 64, c = 8 * 64;
  level.Access(a);
  level.Access(b);
  EXPECT_TRUE(level.Access(a));
  EXPECT_TRUE(level.Access(b));
  level.Access(c);                 // evicts LRU = a
  EXPECT_FALSE(level.Access(a));   // a was evicted
  EXPECT_TRUE(level.Access(c));    // c resident
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsed) {
  CacheLevel level(TinyConfig());
  const uint64_t a = 0, b = 4 * 64, c = 8 * 64;
  level.Access(a);
  level.Access(b);
  level.Access(a);  // a is now MRU
  level.Access(c);  // must evict b, not a
  EXPECT_TRUE(level.Access(a));
  EXPECT_FALSE(level.Access(b));
}

TEST(CacheSimHierarchy, L2AbsorbsL1Evictions) {
  CacheSim sim = CacheSim::XeonGold6126();
  // 256 KiB working set: larger than L1 (32 KiB), far smaller than L2.
  std::vector<char> data(256 * 1024);
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t i = 0; i < data.size(); i += 64) sim.Access(&data[i], 1);
  }
  const CacheCounters total = sim.Total();
  const uint64_t lines = data.size() / 64;
  EXPECT_GT(total.l1_misses, 2 * lines);     // L1 thrashes every pass
  EXPECT_LE(total.l2_misses, lines + 16);    // only compulsory L2 misses
  EXPECT_LE(total.l3_misses, lines + 16);
}

TEST(CacheSimHierarchy, TlbCountsPages) {
  CacheSim sim = CacheSim::XeonGold6126();
  // Touch 256 distinct pages: exceeds the 64-entry TLB.
  std::vector<char> data(256 * 4096);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t p = 0; p < 256; ++p) sim.Access(&data[p * 4096], 1);
  }
  EXPECT_GT(sim.Total().tlb_misses, 256u);  // misses on both passes
}

TEST(CacheSimHierarchy, SequentialScanMissesOncePerLine) {
  CacheSim sim = CacheSim::XeonGold6126();
  std::vector<char> data(1024 * 1024);
  for (size_t i = 0; i < data.size(); ++i) sim.Access(&data[i], 1);
  const CacheCounters total = sim.Total();
  EXPECT_EQ(total.accesses, data.size());
  const uint64_t lines = data.size() / 64;
  // One miss per line (+1 when the heap buffer straddles a line boundary).
  EXPECT_GE(total.l1_misses, lines);
  EXPECT_LE(total.l1_misses, lines + 1);
}

TEST(CacheSimHierarchy, CountersSeparateByPhase) {
  CacheSim sim = CacheSim::XeonGold6126();
  std::vector<char> data(64 * 64);
  sim.SetPhase(Phase::kPartition);
  for (int i = 0; i < 64; ++i) sim.Access(&data[i * 64], 1);
  sim.SetPhase(Phase::kProbe);
  for (int i = 0; i < 64; ++i) sim.Access(&data[i * 64], 1);  // all hits
  EXPECT_EQ(sim.counters(Phase::kPartition).l1_misses, 64u);
  EXPECT_EQ(sim.counters(Phase::kProbe).l1_misses, 0u);
  EXPECT_EQ(sim.counters(Phase::kProbe).accesses, 64u);
}

}  // namespace
}  // namespace iawj
