// Unit and regression tests for the software write-combining scatter kernel
// (partition/swwc.h) and its dispatch (RadixScatterKernel).
//
// The load-bearing invariant: the SWWC kernel is a drop-in replacement for
// the scalar scatter — byte-identical output, identical order within every
// partition, identical cursor end-state — so the partition substrate can
// pick a kernel per build/run without changing any observable result.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/partition/radix.h"
#include "src/partition/range.h"
#include "src/partition/swwc.h"

namespace iawj {
namespace {

std::vector<Tuple> RandomTuples(size_t n, uint32_t key_domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> v(n);
  for (auto& t : v) {
    t.key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(1000));
  }
  return v;
}

// Runs both kernels from identical cursor states and requires identical
// output bytes and cursor end-states. `out` is sized with slack so we can
// also verify neither kernel writes outside the cursor ranges.
void ExpectScatterEquivalence(const std::vector<Tuple>& input, int bits) {
  const size_t parts = size_t{1} << bits;
  std::vector<uint64_t> hist(parts, 0);
  RadixHistogram(input.data(), input.size(), bits, hist.data());
  std::vector<uint64_t> offsets(parts + 1, 0);
  for (size_t p = 0; p < parts; ++p) offsets[p + 1] = offsets[p] + hist[p];

  const Tuple sentinel{.ts = 0xdeadbeef, .key = 0xfeedface};
  std::vector<Tuple> out_scalar(input.size() + 16, sentinel);
  std::vector<Tuple> out_swwc(input.size() + 16, sentinel);
  std::vector<uint64_t> cur_scalar(offsets.begin(), offsets.end() - 1);
  std::vector<uint64_t> cur_swwc = cur_scalar;

  NullTracer tracer;
  RadixScatter(input.data(), input.size(), bits, cur_scalar.data(),
               out_scalar.data(), tracer);
  RadixScatterSwwc(input.data(), input.size(), bits, cur_swwc.data(),
                   out_swwc.data());

  ASSERT_EQ(cur_swwc, cur_scalar);
  for (size_t i = 0; i < out_scalar.size(); ++i) {
    ASSERT_EQ(PackTuple(out_swwc[i]), PackTuple(out_scalar[i])) << "i=" << i;
  }
  // The slack region past the last partition must still be sentinel bytes.
  for (size_t i = input.size(); i < out_swwc.size(); ++i) {
    ASSERT_EQ(out_swwc[i].key, sentinel.key);
  }
}

TEST(SwwcScatter, EquivalentToScalarForAllRadixBits) {
  const auto input = RandomTuples(20000, 1u << 20, 42);
  for (int bits = 0; bits <= 14; ++bits) {
    SCOPED_TRACE(bits);
    ExpectScatterEquivalence(input, bits);
  }
}

TEST(SwwcScatter, EquivalentAcrossSizesIncludingRaggedTails) {
  // Sizes around the staging-line width (8), including sizes where every
  // partition drains via the ramp-up or tail path only.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{9}, size_t{63}, size_t{64}, size_t{65},
                         size_t{1000}, size_t{4097}}) {
    for (int bits : {0, 1, 3, 5, 8}) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " bits=" << bits);
      ExpectScatterEquivalence(RandomTuples(n, 1u << 16, n * 31 + bits), bits);
    }
  }
}

TEST(SwwcScatter, EmptyInputTouchesNothing) {
  std::vector<uint64_t> cursors = {5, 9};
  std::vector<Tuple> out(16, Tuple{.ts = 1, .key = 2});
  RadixScatterSwwc(nullptr, 0, 1, cursors.data(), out.data());
  EXPECT_EQ(cursors[0], 5u);
  EXPECT_EQ(cursors[1], 9u);
  for (const Tuple& t : out) EXPECT_EQ(t.key, 2u);
}

TEST(SwwcScatter, SinglePartitionIsAStableCopy) {
  // bits=0: one partition; the scatter degenerates to a copy that must
  // preserve input order exactly.
  const auto input = RandomTuples(777, 1u << 10, 7);
  std::vector<Tuple> out(input.size());
  std::vector<uint64_t> cursors = {0};
  RadixScatterSwwc(input.data(), input.size(), 0, cursors.data(), out.data());
  EXPECT_EQ(cursors[0], input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(PackTuple(out[i]), PackTuple(input[i])) << "i=" << i;
  }
}

TEST(SwwcScatter, AllTuplesInOnePartitionOfMany) {
  // Every key lands in partition 5 of 2^6: one hot staging line, all other
  // partitions idle, cursor math exercised on a mid-range partition.
  std::vector<Tuple> input(3000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = {static_cast<uint32_t>(i), (7u << 6) | 5u};
  }
  ExpectScatterEquivalence(input, 6);
}

TEST(SwwcScatter, ShiftedSecondPassEquivalence) {
  // PRJ's second pass scatters on bits [shift, shift+bits). The SWWC kernel
  // must honor the shift, not just the low bits.
  const auto input = RandomTuples(5000, 1u << 20, 12);
  const int bits = 5, shift = 7;
  const size_t parts = size_t{1} << bits;
  std::vector<uint64_t> hist(parts, 0);
  for (const Tuple& t : input) ++hist[(t.key >> shift) & (parts - 1)];
  std::vector<uint64_t> cur_a(parts, 0), cur_b(parts, 0);
  for (size_t p = 1; p < parts; ++p) {
    cur_a[p] = cur_a[p - 1] + hist[p - 1];
    cur_b[p] = cur_a[p];
  }
  std::vector<Tuple> out_a(input.size()), out_b(input.size());
  NullTracer tracer;
  RadixScatterKernel(input.data(), input.size(), bits, cur_a.data(),
                     out_a.data(), tracer, /*use_swwc=*/false, shift);
  RadixScatterSwwc(input.data(), input.size(), bits, cur_b.data(),
                   out_b.data(), shift);
  EXPECT_EQ(cur_a, cur_b);
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(PackTuple(out_a[i]), PackTuple(out_b[i])) << "i=" << i;
  }
}

TEST(SwwcScatter, PartitionSingleWithAndWithoutSwwcAgree) {
  const auto input = RandomTuples(30000, 1u << 18, 9);
  NullTracer tracer;
  for (int bits : {0, 2, 6, 11, 14}) {
    SCOPED_TRACE(bits);
    std::vector<Tuple> out_a(input.size()), out_b(input.size());
    std::vector<uint64_t> off_a, off_b;
    RadixPartitionSingle(input.data(), input.size(), bits, out_a.data(),
                         &off_a, tracer, /*use_swwc=*/false);
    RadixPartitionSingle(input.data(), input.size(), bits, out_b.data(),
                         &off_b, tracer, /*use_swwc=*/true);
    EXPECT_EQ(off_a, off_b);
    for (size_t i = 0; i < input.size(); ++i) {
      ASSERT_EQ(PackTuple(out_a[i]), PackTuple(out_b[i])) << "i=" << i;
    }
  }
}

TEST(SwwcScatter, UnalignedOutputBaseStillEquivalent) {
  // Offset the output base off the tuple grid-of-8 (and off the cache-line
  // grid) — the kernel must still produce scalar-identical bytes.
  const auto input = RandomTuples(9000, 1u << 16, 21);
  const int bits = 7;
  const size_t parts = size_t{1} << bits;
  std::vector<uint64_t> hist(parts, 0);
  RadixHistogram(input.data(), input.size(), bits, hist.data());

  std::vector<Tuple> backing(input.size() + 8);
  for (size_t skew = 0; skew < 8; ++skew) {
    SCOPED_TRACE(skew);
    Tuple* out = backing.data() + skew;
    std::vector<Tuple> out_ref(input.size());
    std::vector<uint64_t> cur_a(parts, 0), cur_b(parts, 0);
    for (size_t p = 1; p < parts; ++p) {
      cur_a[p] = cur_a[p - 1] + hist[p - 1];
      cur_b[p] = cur_a[p];
    }
    NullTracer tracer;
    RadixScatter(input.data(), input.size(), bits, cur_a.data(),
                 out_ref.data(), tracer);
    RadixScatterSwwc(input.data(), input.size(), bits, cur_b.data(), out);
    EXPECT_EQ(cur_a, cur_b);
    for (size_t i = 0; i < input.size(); ++i) {
      ASSERT_EQ(PackTuple(out[i]), PackTuple(out_ref[i]))
          << "i=" << i << " skew=" << skew;
    }
  }
}

// --- Dispatch and tracing ---

// Records the exact (address-offset, size) access stream so we can pin the
// traced path's behavior. kEnabled=true forces RadixScatterKernel onto its
// scalar branch exactly like SimTracer does in the cache-sim benches.
struct RecordingTracer {
  static constexpr bool kEnabled = true;
  std::vector<std::pair<const void*, uint64_t>>* log;
  void Access(const void* addr, uint64_t bytes) {
    log->push_back({addr, bytes});
  }
  void SetPhase(Phase) {}
};

TEST(KernelDispatch, TracedBuildsIgnoreSwwcAndRecordScalarTrace) {
  const auto input = RandomTuples(500, 1u << 8, 33);
  const int bits = 4;
  const size_t parts = size_t{1} << bits;
  std::vector<uint64_t> hist(parts, 0);
  RadixHistogram(input.data(), input.size(), bits, hist.data());

  // Both runs share one output buffer so the recorded addresses are
  // comparable verbatim; the scalar run's output is snapshotted in between.
  std::vector<Tuple> out(input.size());
  auto run = [&](bool use_swwc,
                 std::vector<std::pair<const void*, uint64_t>>* log) {
    std::vector<uint64_t> cursors(parts, 0);
    for (size_t p = 1; p < parts; ++p) {
      cursors[p] = cursors[p - 1] + hist[p - 1];
    }
    std::fill(out.begin(), out.end(), Tuple{});
    RecordingTracer tracer{log};
    RadixScatterKernel(input.data(), input.size(), bits, cursors.data(),
                       out.data(), tracer, use_swwc);
  };

  std::vector<std::pair<const void*, uint64_t>> log_scalar, log_swwc;
  run(false, &log_scalar);
  const std::vector<Tuple> out_scalar = out;
  run(true, &log_swwc);
  const std::vector<Tuple>& out_swwc = out;

  // Identical output AND identical access trace: under a tracer the swwc
  // request is ignored, so the cache simulation (Fig. 8) keeps measuring the
  // scalar algorithm it claims to measure.
  EXPECT_EQ(log_scalar.size(), 2 * input.size());
  EXPECT_EQ(log_swwc, log_scalar);
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(PackTuple(out_swwc[i]), PackTuple(out_scalar[i]));
  }
}

// Regression pin: the scalar scatter's exact output order, cursor end-state,
// and trace. Each traced output access must be the slot the tuple was
// written to — i.e. the cursor value BEFORE the increment. A refactor that
// reads cursors[p] after ++ would shift every output access by one tuple and
// silently skew the cache simulation.
TEST(KernelDispatch, ScalarScatterPinnedOrderCursorsAndTrace) {
  // Keys chosen so partition 0 gets {10,30}, partition 1 gets {21}, in
  // arrival order.
  const std::vector<Tuple> input = {
      {.ts = 10, .key = 4}, {.ts = 21, .key = 5}, {.ts = 30, .key = 2}};
  const int bits = 1;  // partition = key & 1
  std::vector<uint64_t> cursors = {0, 2};
  std::vector<Tuple> out(3, Tuple{});
  std::vector<std::pair<const void*, uint64_t>> log;
  RecordingTracer tracer{&log};
  RadixScatter(input.data(), input.size(), bits, cursors.data(), out.data(),
               tracer);

  EXPECT_EQ(cursors[0], 2u);
  EXPECT_EQ(cursors[1], 3u);
  EXPECT_EQ(out[0].ts, 10u);
  EXPECT_EQ(out[1].ts, 30u);
  EXPECT_EQ(out[2].ts, 21u);

  // Trace alternates input-read / output-write; the write address is the
  // pre-increment cursor slot.
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0].first, &input[0]);
  EXPECT_EQ(log[1].first, &out[0]);
  EXPECT_EQ(log[2].first, &input[1]);
  EXPECT_EQ(log[3].first, &out[2]);
  EXPECT_EQ(log[4].first, &input[2]);
  EXPECT_EQ(log[5].first, &out[1]);
  for (const auto& [addr, bytes] : log) EXPECT_EQ(bytes, sizeof(Tuple));
}

// --- ChunkForThread edge coverage ---

TEST(ChunkForThreadEdges, FewerTuplesThanThreads) {
  // n < num_threads: chunks must still tile [0, n) exactly, with most
  // threads getting empty ranges and no range exceeding one tuple.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    const int threads = 8;
    SCOPED_TRACE(n);
    size_t covered = 0;
    size_t prev_end = 0;
    for (int t = 0; t < threads; ++t) {
      const ChunkRange c = ChunkForThread(n, t, threads);
      EXPECT_EQ(c.begin, prev_end);
      EXPECT_LE(c.size(), 1u);
      covered += c.size();
      prev_end = c.end;
    }
    EXPECT_EQ(covered, n);
    EXPECT_EQ(prev_end, n);
  }
}

TEST(ChunkForThreadEdges, SingleThreadTakesEverything) {
  const ChunkRange c = ChunkForThread(12345, 0, 1);
  EXPECT_EQ(c.begin, 0u);
  EXPECT_EQ(c.end, 12345u);
}

}  // namespace
}  // namespace iawj
