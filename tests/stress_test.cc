// Randomized stress sweeps: many seeds x shapes through the full stack,
// oversubscribed thread counts, and repeated runs on one algorithm instance
// boundary (fresh instances, shared process state like the memory tracker).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/memory/tracker.h"

namespace iawj {
namespace {

// Each instance draws a random workload shape from its seed and checks all
// eight algorithms against the oracle.
class RandomWorkloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkloadSweep, AllAlgorithmsAgreeWithOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  MicroSpec mspec;
  mspec.size_r = 500 + rng.NextBounded(4000);
  mspec.size_s = 500 + rng.NextBounded(4000);
  mspec.window_ms = 1000;
  mspec.dupe = 1.0 + static_cast<double>(rng.NextBounded(40));
  mspec.zipf_key = rng.NextBounded(2) == 0 ? 0.0 : rng.NextDouble() * 1.2;
  mspec.zipf_ts = rng.NextBounded(2) == 0 ? 0.0 : rng.NextDouble();
  mspec.seed = rng.Next();
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());

  JoinSpec spec;
  spec.num_threads = 1 + static_cast<int>(rng.NextBounded(8));
  spec.jb_group_size = 1;  // divides every thread count
  spec.radix_bits = 2 + static_cast<int>(rng.NextBounded(12));
  spec.radix_passes = 1 + static_cast<int>(rng.NextBounded(2));
  spec.pmj_delta = 0.05 + rng.NextDouble() * 0.9;
  spec.use_simd = rng.NextBounded(2) == 0;
  spec.eager_physical_partition = rng.NextBounded(2) == 0;
  spec.hash_table_kind = rng.NextBounded(2) == 0
                             ? HashTableKind::kBucketChain
                             : HashTableKind::kLinearProbe;

  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(testing::Message()
                 << AlgorithmName(id) << " threads=" << spec.num_threads
                 << " nr=" << mspec.size_r << " ns=" << mspec.size_s
                 << " dupe=" << mspec.dupe);
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    ASSERT_EQ(result.matches, expected.matches);
    ASSERT_EQ(result.checksum, expected.checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep, ::testing::Range(0, 12));

TEST(Stress, RepeatedRunsLeaveNoTrackedMemoryBehind) {
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = 2000;
  mspec.window_ms = 500;
  mspec.dupe = 5;
  const MicroWorkload w = GenerateMicro(mspec);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 500;
  JoinRunner runner;
  for (int round = 0; round < 3; ++round) {
    for (AlgorithmId id : kAllAlgorithms) {
      (void)runner.Run(id, w.r, w.s, spec);
      // All per-run structures must have been released.
      EXPECT_EQ(mem::CurrentBytes(), 0)
          << AlgorithmName(id) << " round " << round;
    }
  }
}

TEST(Stress, ManyThreadsOnTinyInputs) {
  // More workers than tuples: chunking, barriers, and the distribution
  // schemes must all tolerate empty shares.
  const Stream r = MakeStream({{.ts = 1, .key = 5}, {.ts = 2, .key = 6}});
  const Stream s = MakeStream({{.ts = 3, .key = 5}, {.ts = 4, .key = 6}});
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  JoinSpec spec;
  spec.num_threads = 16;
  spec.jb_group_size = 4;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, r, s, spec);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
  }
}

TEST(Stress, WindowBoundaryTimestamps) {
  // Tuples exactly at the window boundary are excluded; ts==window-1 is in.
  const uint32_t w = 100;
  const Stream r = MakeStream(
      {{.ts = 0, .key = 1}, {.ts = w - 1, .key = 1}, {.ts = w, .key = 1}});
  const Stream s = MakeStream({{.ts = 50, .key = 1}});
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = w;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, r, s, spec);
    EXPECT_EQ(result.matches, 2u);  // ts=0 and ts=99 join; ts=100 excluded
  }
}

}  // namespace
}  // namespace iawj
