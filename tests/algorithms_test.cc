// Cross-algorithm correctness: every one of the eight parallel IaWJ
// algorithms must produce the exact multiset of matches the sequential
// nested-loop reference produces — same count, same order-insensitive
// checksum — across workload shapes, thread counts, and algorithm knobs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

struct WorkloadCase {
  std::string name;
  std::vector<Tuple> r;
  std::vector<Tuple> s;
};

std::vector<Tuple> RandomTuples(size_t n, uint32_t key_domain,
                                uint32_t window_ms, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples(n);
  for (auto& t : tuples) {
    t.key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(window_ms));
  }
  return tuples;
}

std::vector<WorkloadCase> MakeWorkloads() {
  std::vector<WorkloadCase> cases;
  cases.push_back({"empty_r", {}, RandomTuples(500, 100, 1000, 1)});
  cases.push_back({"empty_s", RandomTuples(500, 100, 1000, 2), {}});
  cases.push_back({"both_empty", {}, {}});
  cases.push_back({"single_pair",
                   {Tuple{.ts = 5, .key = 7}},
                   {Tuple{.ts = 9, .key = 7}}});
  cases.push_back({"single_no_match",
                   {Tuple{.ts = 5, .key = 7}},
                   {Tuple{.ts = 9, .key = 8}}});
  cases.push_back(
      {"uniform", RandomTuples(4000, 1000, 1000, 3),
       RandomTuples(5000, 1000, 1000, 4)});
  cases.push_back(
      {"heavy_dup", RandomTuples(2000, 13, 1000, 5),
       RandomTuples(3000, 13, 1000, 6)});
  {
    // Every tuple shares one key: the worst case for hash chains, radix
    // partitioning, and key-aligned splits.
    std::vector<Tuple> r(300), s(200);
    for (size_t i = 0; i < r.size(); ++i) {
      r[i] = {static_cast<uint32_t>(i % 1000), 42};
    }
    for (size_t i = 0; i < s.size(); ++i) {
      s[i] = {static_cast<uint32_t>(i % 1000), 42};
    }
    cases.push_back({"all_same_key", std::move(r), std::move(s)});
  }
  cases.push_back(
      {"asymmetric_sizes", RandomTuples(50, 64, 1000, 7),
       RandomTuples(8000, 64, 1000, 8)});
  {
    MicroSpec spec;
    spec.size_r = 3000;
    spec.size_s = 3000;
    spec.window_ms = 1000;
    spec.dupe = 20;
    spec.zipf_key = 1.2;
    spec.seed = 99;
    MicroWorkload micro = GenerateMicro(spec);
    cases.push_back({"zipf_skew", std::move(micro.r.tuples),
                     std::move(micro.s.tuples)});
  }
  return cases;
}

class AlgorithmCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, int>> {};

TEST_P(AlgorithmCorrectnessTest, MatchesNestedLoopReference) {
  const auto [id, threads] = GetParam();
  for (const WorkloadCase& wc : MakeWorkloads()) {
    SCOPED_TRACE(wc.name);
    const Stream r = MakeStream(wc.r);
    const Stream s = MakeStream(wc.s);
    const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());

    JoinSpec spec;
    spec.num_threads = threads;
    spec.window_ms = 1000;
    spec.clock_mode = Clock::Mode::kInstant;
    spec.jb_group_size = threads % 2 == 0 ? 2 : 1;

    JoinRunner runner;
    const RunResult result = runner.Run(id, r, s, spec);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
    EXPECT_EQ(result.inputs, r.size() + s.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllThreadCounts, AlgorithmCorrectnessTest,
    ::testing::Combine(::testing::ValuesIn(kAllAlgorithms),
                       ::testing::Values(1, 2, 3, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<AlgorithmId, int>>& info) {
      std::string name(AlgorithmName(std::get<0>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_t" + std::to_string(std::get<1>(info.param));
    });

// --- Knob sweeps: every §5.5 tuning parameter must preserve correctness ---

struct KnobCase {
  std::string name;
  AlgorithmId id;
  JoinSpec spec;
};

class KnobTest : public ::testing::TestWithParam<int> {};

TEST(AlgorithmKnobs, RadixBitsSweepPreservesResults) {
  const Stream r = MakeStream(RandomTuples(4000, 300, 1000, 11));
  const Stream s = MakeStream(RandomTuples(4000, 300, 1000, 12));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  for (int bits : {1, 4, 8, 12, 14}) {
    SCOPED_TRACE(bits);
    JoinSpec spec;
    spec.num_threads = 4;
    spec.radix_bits = bits;
    JoinRunner runner;
    const RunResult result = runner.Run(AlgorithmId::kPrj, r, s, spec);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
  }
}

TEST(AlgorithmKnobs, TwoPassRadixMatchesSinglePass) {
  const Stream r = MakeStream(RandomTuples(6000, 500, 1000, 31));
  const Stream s = MakeStream(RandomTuples(6000, 500, 1000, 32));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  for (int bits : {4, 10, 16}) {
    for (int passes : {1, 2}) {
      SCOPED_TRACE(testing::Message() << "bits=" << bits
                                      << " passes=" << passes);
      JoinSpec spec;
      spec.num_threads = 4;
      spec.radix_bits = bits;
      spec.radix_passes = passes;
      JoinRunner runner;
      const RunResult result = runner.Run(AlgorithmId::kPrj, r, s, spec);
      EXPECT_EQ(result.matches, expected.matches);
      EXPECT_EQ(result.checksum, expected.checksum);
    }
  }
}

TEST(AlgorithmKnobs, PmjDeltaSweepPreservesResults) {
  const Stream r = MakeStream(RandomTuples(3000, 200, 1000, 13));
  const Stream s = MakeStream(RandomTuples(3000, 200, 1000, 14));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  for (double delta : {0.01, 0.1, 0.2, 0.5, 1.0}) {
    SCOPED_TRACE(delta);
    JoinSpec spec;
    spec.num_threads = 2;
    spec.pmj_delta = delta;
    JoinRunner runner;
    for (AlgorithmId id : {AlgorithmId::kPmjJm, AlgorithmId::kPmjJb}) {
      const RunResult result = runner.Run(id, r, s, spec);
      EXPECT_EQ(result.matches, expected.matches);
      EXPECT_EQ(result.checksum, expected.checksum);
    }
  }
}

TEST(AlgorithmKnobs, JbGroupSizeSweepPreservesResults) {
  const Stream r = MakeStream(RandomTuples(2000, 150, 1000, 15));
  const Stream s = MakeStream(RandomTuples(2500, 150, 1000, 16));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  for (int g : {1, 2, 4, 8}) {
    SCOPED_TRACE(g);
    JoinSpec spec;
    spec.num_threads = 8;
    spec.jb_group_size = g;
    JoinRunner runner;
    for (AlgorithmId id : {AlgorithmId::kShjJb, AlgorithmId::kPmjJb}) {
      const RunResult result = runner.Run(id, r, s, spec);
      EXPECT_EQ(result.matches, expected.matches);
      EXPECT_EQ(result.checksum, expected.checksum);
    }
  }
}

TEST(AlgorithmKnobs, PhysicalPartitioningPreservesResults) {
  const Stream r = MakeStream(RandomTuples(2000, 100, 1000, 17));
  const Stream s = MakeStream(RandomTuples(2000, 100, 1000, 18));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  for (bool physical : {false, true}) {
    SCOPED_TRACE(physical);
    JoinSpec spec;
    spec.num_threads = 4;
    spec.eager_physical_partition = physical;
    JoinRunner runner;
    for (AlgorithmId id : {AlgorithmId::kShjJm, AlgorithmId::kShjJb,
                           AlgorithmId::kPmjJm}) {
      const RunResult result = runner.Run(id, r, s, spec);
      EXPECT_EQ(result.matches, expected.matches);
      EXPECT_EQ(result.checksum, expected.checksum);
    }
  }
}

TEST(AlgorithmKnobs, ScalarSortPathPreservesResults) {
  const Stream r = MakeStream(RandomTuples(5000, 400, 1000, 19));
  const Stream s = MakeStream(RandomTuples(5000, 400, 1000, 20));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  JoinSpec spec;
  spec.num_threads = 4;
  spec.use_simd = false;
  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kMway, AlgorithmId::kMpass,
                         AlgorithmId::kPmjJm, AlgorithmId::kPmjJb}) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, r, s, spec);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
  }
}

// Windowing: tuples outside [0, window_ms) must not participate.
TEST(Windowing, OnlyWindowTuplesJoin) {
  std::vector<Tuple> r = RandomTuples(2000, 100, 2000, 21);
  std::vector<Tuple> s = RandomTuples(2000, 100, 2000, 22);
  const Stream rs = MakeStream(r);
  const Stream ss = MakeStream(s);

  // Reference restricted to the window.
  std::vector<Tuple> rw, sw;
  for (const Tuple& t : rs.tuples) {
    if (t.ts < 700) rw.push_back(t);
  }
  for (const Tuple& t : ss.tuples) {
    if (t.ts < 700) sw.push_back(t);
  }
  const ReferenceResult expected = NestedLoopJoin(rw, sw);

  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 700;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, rs, ss, spec);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
    EXPECT_EQ(result.inputs, rw.size() + sw.size());
  }
}

}  // namespace
}  // namespace iawj
