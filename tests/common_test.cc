// Unit tests for the common substrate: tuples, bits, RNG, Zipf, clock,
// histogram, status.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/common/bits.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/common/zipf.h"

namespace iawj {
namespace {

TEST(Tuple, PackOrdersByKeyThenTs) {
  const Tuple a{.ts = 50, .key = 1};
  const Tuple b{.ts = 2, .key = 2};
  const Tuple c{.ts = 70, .key = 2};
  EXPECT_LT(PackTuple(a), PackTuple(b));
  EXPECT_LT(PackTuple(b), PackTuple(c));
}

TEST(Tuple, PackRoundTrips) {
  const Tuple t{.ts = 123456, .key = 0x7fffffff};
  const Tuple back = UnpackTuple(PackTuple(t));
  EXPECT_EQ(back, t);
  EXPECT_EQ(PackedKey(PackTuple(t)), t.key);
  EXPECT_EQ(PackedTs(PackTuple(t)), t.ts);
}

TEST(Tuple, MemoryImageMatchesPackedOrder) {
  // The sort substrate reinterprets Tuple arrays as uint64; verify the
  // little-endian layout yields (key, ts) order.
  const Tuple t{.ts = 7, .key = 9};
  uint64_t raw;
  std::memcpy(&raw, &t, sizeof(raw));
  EXPECT_EQ(raw, PackTuple(t));
}

TEST(Bits, PowersAndLogs) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(9), 3);
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(9), 4);
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(65));
  EXPECT_FALSE(IsPow2(0));
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.NextBounded(17), 17u);
    const double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 1);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next()];
  for (int count : counts) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.2);
  }
}

TEST(Zipf, HighThetaConcentratesOnSmallValues) {
  ZipfGenerator zipf(1000, 1.5, 2);
  int zero_count = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    if (v == 0) ++zero_count;
  }
  // For theta=1.5, rank 0 holds the majority of the mass.
  EXPECT_GT(zero_count, n / 3);
}

TEST(Zipf, SkewIncreasesWithTheta) {
  const int n = 50000;
  double prev_top = 0;
  for (double theta : {0.0, 0.5, 1.0, 1.5}) {
    ZipfGenerator zipf(100, theta, 3);
    int zero_count = 0;
    for (int i = 0; i < n; ++i) {
      if (zipf.Next() == 0) ++zero_count;
    }
    EXPECT_GE(zero_count + 200, prev_top) << "theta=" << theta;
    prev_top = zero_count;
  }
}

TEST(Clock, InstantModeMakesEverythingAvailable) {
  Clock clock(Clock::Mode::kInstant);
  clock.Start();
  EXPECT_TRUE(clock.HasArrived(0));
  EXPECT_TRUE(clock.HasArrived(1u << 30));
  clock.SleepUntilMs(1e9);  // must not block
}

TEST(Clock, RealTimeAdvancesAndGates) {
  Clock clock(Clock::Mode::kRealTime, /*time_scale=*/1000.0);
  clock.Start();
  EXPECT_TRUE(clock.HasArrived(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double now = clock.NowMs();
  EXPECT_GE(now, 1000.0);  // >= 1ms wall * 1000x scale
  EXPECT_FALSE(clock.HasArrived(1u << 30));
  clock.SleepUntilMs(now + 1000.0);
  EXPECT_GE(clock.NowMs(), now + 1000.0 - 1e-6);
}

TEST(LatencyHistogram, QuantilesOrderedAndApproximate) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.RecordMs(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.QuantileMs(0.5);
  const double p95 = h.QuantileMs(0.95);
  const double p99 = h.QuantileMs(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 500, 50);
  EXPECT_NEAR(p95, 950, 95);
  EXPECT_NEAR(h.MeanMs(), 500.5, 5);
}

TEST(LatencyHistogram, MergeAggregates) {
  LatencyHistogram a, b;
  a.RecordMs(1.0);
  b.RecordMs(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GT(a.QuantileMs(0.99), 50);
  EXPECT_LT(a.QuantileMs(0.01), 5);
}

TEST(LatencyHistogram, EmptyAndNegative) {
  LatencyHistogram h;
  EXPECT_EQ(h.QuantileMs(0.95), 0);
  h.RecordMs(-5.0);  // clamped to zero
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LT(h.QuantileMs(1.0), 0.01);
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status bad = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "bad knob");
  EXPECT_NE(bad.ToString().find("bad knob"), std::string::npos);
}

}  // namespace
}  // namespace iawj
