// Tests for the tumbling-window pipeline and the adaptive algorithm.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/join/adaptive.h"
#include "src/join/reference.h"
#include "src/join/window_pipeline.h"

namespace iawj {
namespace {

// A stream spanning several windows with matching keys.
Stream MultiWindowStream(size_t n, uint32_t horizon_ms, uint32_t key_domain,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples(n);
  for (auto& t : tuples) {
    t.key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(horizon_ms));
  }
  return MakeStream(std::move(tuples));
}

// Oracle: per-window nested-loop joins (tuples only match within a window).
uint64_t WindowedReferenceMatches(const Stream& r, const Stream& s,
                                  uint32_t window_ms) {
  uint64_t total = 0;
  const uint32_t horizon = std::max(r.MaxTs(), s.MaxTs()) + 1;
  for (uint32_t start = 0; start < horizon; start += window_ms) {
    std::vector<Tuple> wr, ws;
    for (const Tuple& t : r.tuples) {
      if (t.ts >= start && t.ts < start + window_ms) wr.push_back(t);
    }
    for (const Tuple& t : s.tuples) {
      if (t.ts >= start && t.ts < start + window_ms) ws.push_back(t);
    }
    total += NestedLoopJoin(wr, ws).matches;
  }
  return total;
}

TEST(WindowPipeline, MatchesPerWindowReference) {
  const Stream r = MultiWindowStream(4000, 500, 80, 1);
  const Stream s = MultiWindowStream(4000, 500, 80, 2);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;  // five windows

  const uint64_t expected = WindowedReferenceMatches(r, s, 100);
  for (AlgorithmId id : {AlgorithmId::kNpj, AlgorithmId::kMpass,
                         AlgorithmId::kShjJm, AlgorithmId::kPmjJb}) {
    SCOPED_TRACE(AlgorithmName(id));
    const PipelineResult result = RunTumblingWindows(id, r, s, spec);
    EXPECT_EQ(result.total_matches, expected);
    EXPECT_EQ(result.windows.size(), 5u);
    EXPECT_EQ(result.total_inputs, r.size() + s.size());
  }
}

TEST(WindowPipeline, TuplesNeverJoinAcrossWindows) {
  // Same key in different windows: zero matches.
  Stream r = MakeStream({{.ts = 10, .key = 1}, {.ts = 210, .key = 2}});
  Stream s = MakeStream({{.ts = 110, .key = 1}, {.ts = 310, .key = 2}});
  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 100;
  const PipelineResult result =
      RunTumblingWindows(AlgorithmId::kNpj, r, s, spec);
  EXPECT_EQ(result.total_matches, 0u);
}

TEST(WindowPipeline, SkipsEmptyWindows) {
  Stream r = MakeStream({{.ts = 10, .key = 1}, {.ts = 910, .key = 1}});
  Stream s = MakeStream({{.ts = 20, .key = 1}, {.ts = 920, .key = 1}});
  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 100;
  const PipelineResult result =
      RunTumblingWindows(AlgorithmId::kNpj, r, s, spec);
  EXPECT_EQ(result.total_matches, 2u);
  ASSERT_EQ(result.windows.size(), 2u);  // windows 0 and 9 only
  EXPECT_EQ(result.windows[0].window_index, 0u);
  EXPECT_EQ(result.windows[1].window_index, 9u);
}

TEST(WindowPipeline, PolicyIsConsultedPerWindow) {
  const Stream r = MultiWindowStream(2000, 300, 50, 3);
  const Stream s = MultiWindowStream(2000, 300, 50, 4);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  int calls = 0;
  const PipelineResult result = RunTumblingWindows(
      r, s, spec, [&calls](const Stream&, const Stream&) {
        ++calls;
        return calls % 2 == 0 ? AlgorithmId::kMway : AlgorithmId::kNpj;
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.total_matches, WindowedReferenceMatches(r, s, 100));
}

TEST(WindowPipeline, SlidingWindowsReportOverlapMatches) {
  // One matching pair at ts 10/20; window 100, hop 50: the pair is inside
  // windows starting at 0 (and only that one, since window [50,150) misses
  // ts=10 and window start times align at hops).
  Stream r = MakeStream({{.ts = 10, .key = 1}});
  Stream s = MakeStream({{.ts = 20, .key = 1}});
  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 100;
  PipelineResult result =
      RunSlidingWindows(AlgorithmId::kNpj, r, s, spec, /*hop_ms=*/50);
  EXPECT_EQ(result.total_matches, 1u);

  // Pair at ts 60/70 falls into both window [0,100) and window [50,150).
  r = MakeStream({{.ts = 60, .key = 2}});
  s = MakeStream({{.ts = 70, .key = 2}});
  result = RunSlidingWindows(AlgorithmId::kNpj, r, s, spec, /*hop_ms=*/50);
  EXPECT_EQ(result.total_matches, 2u);
}

TEST(WindowPipeline, SlidingWithHopEqualWindowIsTumbling) {
  const Stream r = MultiWindowStream(2000, 400, 60, 7);
  const Stream s = MultiWindowStream(2000, 400, 60, 8);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  const PipelineResult sliding =
      RunSlidingWindows(AlgorithmId::kMpass, r, s, spec, 100);
  const PipelineResult tumbling =
      RunTumblingWindows(AlgorithmId::kMpass, r, s, spec);
  EXPECT_EQ(sliding.total_matches, tumbling.total_matches);
  EXPECT_EQ(sliding.total_checksum, tumbling.total_checksum);
}

TEST(WindowPipeline, SessionWindowsSplitAtSilence) {
  // Two bursts separated by 500ms of silence; a key appearing in both
  // bursts must not match across the gap.
  std::vector<Tuple> r, s;
  for (uint32_t ts = 0; ts < 50; ++ts) {
    r.push_back({ts, 1});
    s.push_back({ts + 1, 1});
  }
  for (uint32_t ts = 600; ts < 650; ++ts) {
    r.push_back({ts, 1});
    s.push_back({ts + 1, 1});
  }
  const Stream rs = MakeStream(std::move(r));
  const Stream ss = MakeStream(std::move(s));

  JoinSpec spec;
  spec.num_threads = 2;
  const PipelineResult result =
      RunSessionWindows(AlgorithmId::kShjJm, rs, ss, spec, /*gap_ms=*/200);
  ASSERT_EQ(result.windows.size(), 2u);
  // Within each burst every pair matches: 50 x 50 per session.
  EXPECT_EQ(result.total_matches, 2u * 50 * 50);
}

TEST(WindowPipeline, SessionWithoutGapsIsOneWindow) {
  const Stream r = MultiWindowStream(1000, 200, 30, 9);
  const Stream s = MultiWindowStream(1000, 200, 30, 10);
  JoinSpec spec;
  spec.num_threads = 2;
  const PipelineResult result =
      RunSessionWindows(AlgorithmId::kNpj, r, s, spec, /*gap_ms=*/1000);
  EXPECT_EQ(result.windows.size(), 1u);
  EXPECT_EQ(result.total_matches,
            NestedLoopJoin(r.view(), s.view()).matches);
}

TEST(Adaptive, PicksEagerForSlowStreamsAndSortForHeavyDup) {
  AdaptiveOptions options;
  options.objective = Objective::kLatency;

  // Slow trickle: low arrival rate -> SHJ-JM.
  MicroSpec slow;
  slow.rate_r = slow.rate_s = 50;
  slow.window_ms = 1000;
  const MicroWorkload ws = GenerateMicro(slow);
  EXPECT_EQ(ChooseAlgorithm(ws.r, ws.s, options).algorithm,
            AlgorithmId::kShjJm);

  // Heavy duplication at a high rate -> lazy sort join for throughput.
  MicroSpec dup;
  dup.rate_r = dup.rate_s = 30000;
  dup.window_ms = 200;
  dup.dupe = 100;
  const MicroWorkload wd = GenerateMicro(dup);
  AdaptiveOptions tput;
  tput.objective = Objective::kThroughput;
  tput.hardware.num_cores = 4;
  const AlgorithmId pick = ChooseAlgorithm(wd.r, wd.s, tput).algorithm;
  EXPECT_TRUE(pick == AlgorithmId::kMway || pick == AlgorithmId::kMpass);
}

TEST(Adaptive, RunAdaptiveProducesCorrectJoin) {
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = 3000;
  mspec.window_ms = 500;
  mspec.dupe = 5;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());

  JoinSpec spec;
  spec.num_threads = 3;  // jb_group_size 2 does not divide 3: fallback path
  AdaptiveOptions options;
  options.objective = Objective::kProgressiveness;
  AdaptiveChoice choice;
  const RunResult result = RunAdaptive(w.r, w.s, spec, options, &choice);
  EXPECT_EQ(result.matches, expected.matches);
  EXPECT_EQ(result.checksum, expected.checksum);
}

TEST(Adaptive, SamplingCapKeepsDecisionCheap) {
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = 200000;
  mspec.window_ms = 100;
  mspec.dupe = 50;
  const MicroWorkload w = GenerateMicro(mspec);
  AdaptiveOptions options;
  options.sample_limit = 1000;  // far below the stream size
  const AdaptiveChoice choice = ChooseAlgorithm(w.r, w.s, options);
  // Duplication is a density property; the sample must still detect it.
  EXPECT_EQ(choice.profile.key_duplication, Level::kHigh);
}

TEST(Adaptive, PipelinePolicyAdaptsAcrossWindows) {
  const Stream r = MultiWindowStream(3000, 300, 40, 5);
  const Stream s = MultiWindowStream(3000, 300, 40, 6);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  AdaptiveOptions options;
  const PipelineResult result =
      RunTumblingWindows(r, s, spec, MakeAdaptivePolicy(options));
  EXPECT_EQ(result.total_matches, WindowedReferenceMatches(r, s, 100));
}

}  // namespace
}  // namespace iawj
