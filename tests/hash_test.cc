// Unit tests for the hash substrate: hash functions, single-writer and
// concurrent bucket-chain tables, pointer tables.
#include <gtest/gtest.h>

#include <bit>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/hash/bucket_chain.h"
#include "src/hash/concurrent_table.h"
#include "src/join/shj.h"
#include "src/memory/tracker.h"

namespace iawj {
namespace {

TEST(HashFn, BucketWithinRange) {
  for (int bits : {1, 4, 10, 20}) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
      const uint32_t b =
          HashToBucket(static_cast<uint32_t>(rng.Next()), bits);
      EXPECT_LT(b, 1u << bits);
    }
  }
  EXPECT_EQ(HashToBucket(12345, 0), 0u);
}

TEST(HashFn, Mix64Avalanches) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(1), 1u);
  // Single-bit input flips change roughly half the output bits.
  const int flipped = std::popcount(Mix64(0x1000) ^ Mix64(0x1001));
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(BucketBits, TargetsTwoTuplesPerBucket) {
  EXPECT_GE(BucketBitsForTuples(1024), 9);   // >= 512 buckets
  EXPECT_LE(BucketBitsForTuples(1024), 10);
}

template <typename Table>
std::unordered_map<uint32_t, int> ProbeAll(const Table& table,
                                           const std::vector<uint32_t>& keys) {
  NullTracer tracer;
  std::unordered_map<uint32_t, int> found;
  for (uint32_t key : keys) {
    table.Probe(
        key, [&](const Tuple& t) { found[t.key]++; }, tracer);
  }
  return found;
}

TEST(BucketChainTable, InsertAndProbeWithDuplicates) {
  mem::Reset();
  {
    BucketChainTable<> table(64);
    NullTracer tracer;
    for (uint32_t i = 0; i < 100; ++i) {
      table.Insert(Tuple{.ts = i, .key = i % 10}, tracer);
    }
    EXPECT_EQ(table.size(), 100u);
    int matches = 0;
    uint64_t ts_sum = 0;
    table.Probe(
        3,
        [&](Tuple t) {
          ++matches;
          EXPECT_EQ(t.key, 3u);
          ts_sum += t.ts;
        },
        tracer);
    EXPECT_EQ(matches, 10);  // keys 3, 13, ..., 93
    EXPECT_EQ(ts_sum, 3u + 13 + 23 + 33 + 43 + 53 + 63 + 73 + 83 + 93);
    // Missing key probes find nothing.
    table.Probe(
        999, [&](Tuple) { FAIL() << "unexpected match"; }, tracer);
    EXPECT_GT(mem::CurrentBytes(), 0);
  }
  EXPECT_EQ(mem::CurrentBytes(), 0);
}

TEST(BucketChainTable, GrowsBeyondEstimate) {
  // All tuples share one key: one chain holding 100x the sizing estimate.
  BucketChainTable<> table(16);
  NullTracer tracer;
  for (uint32_t i = 0; i < 50000; ++i) {
    table.Insert(Tuple{.ts = i, .key = 7}, tracer);
  }
  int matches = 0;
  table.Probe(
      7, [&](Tuple) { ++matches; }, tracer);
  EXPECT_EQ(matches, 50000);
}

TEST(ConcurrentTable, ParallelBuildFindsEverything) {
  constexpr int kThreads = 8;
  constexpr uint32_t kPerThread = 20000;
  ConcurrentBucketChainTable<> table(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      NullTracer tracer;
      for (uint32_t i = 0; i < kPerThread; ++i) {
        const uint32_t key = (static_cast<uint32_t>(t) * kPerThread + i) % 997;
        table.Insert(Tuple{.ts = i, .key = key}, tracer);
      }
    });
  }
  for (auto& th : threads) th.join();

  NullTracer tracer;
  uint64_t total = 0;
  for (uint32_t key = 0; key < 997; ++key) {
    table.Probe(
        key, [&](Tuple) { ++total; }, tracer);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ConcurrentTable, ContendedSingleKey) {
  // Every thread hammers the same bucket: exercises latch + shared overflow.
  constexpr int kThreads = 4;
  constexpr uint32_t kPerThread = 10000;
  ConcurrentBucketChainTable<> table(1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      NullTracer tracer;
      for (uint32_t i = 0; i < kPerThread; ++i) {
        table.Insert(Tuple{.ts = i, .key = 42}, tracer);
      }
    });
  }
  for (auto& th : threads) th.join();
  NullTracer tracer;
  uint64_t count = 0;
  table.Probe(
      42, [&](Tuple) { ++count; }, tracer);
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(PointerTable, StoresReferencesNotCopies) {
  std::vector<Tuple> storage(100);
  for (uint32_t i = 0; i < 100; ++i) storage[i] = {.ts = i, .key = i % 5};
  PointerBucketChainTable<> table(100);
  NullTracer tracer;
  for (const Tuple& t : storage) table.Insert(&t, tracer);
  int matches = 0;
  table.Probe(
      2,
      [&](const Tuple& t) {
        ++matches;
        // The matched object must be the original storage element.
        EXPECT_GE(&t, storage.data());
        EXPECT_LT(&t, storage.data() + storage.size());
      },
      tracer);
  EXPECT_EQ(matches, 20);
}

TEST(Tables, MemoryAccountingScalesWithSize) {
  mem::Reset();
  const int64_t before = mem::CurrentBytes();
  BucketChainTable<> small(1 << 8);
  const int64_t small_bytes = mem::CurrentBytes() - before;
  BucketChainTable<> large(1 << 16);
  const int64_t large_bytes = mem::CurrentBytes() - before - small_bytes;
  EXPECT_GT(large_bytes, 100 * small_bytes);
}

}  // namespace
}  // namespace iawj
