// End-to-end integration: every algorithm against every (scaled-down)
// real-world workload must match the nested-loop oracle exactly and show
// the metric characteristics the paper attributes to that workload.
#include <gtest/gtest.h>

#include "src/datagen/real_world.h"
#include "src/join/adaptive.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

Workload ScaledWorkload(RealWorkload which, double scale) {
  return GenerateRealWorld(
      {.which = which, .scale = scale, .window_ms = 1000, .seed = 11});
}

class RealWorkloadTest : public ::testing::TestWithParam<RealWorkload> {};

TEST_P(RealWorkloadTest, AllAlgorithmsMatchOracle) {
  // Small scale keeps the oracle itself fast.
  const Workload w = ScaledWorkload(GetParam(), 0.004);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());
  ASSERT_GT(expected.matches, 0u);

  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
  }
}

TEST_P(RealWorkloadTest, AdaptiveMatchesOracleToo) {
  const Workload w = ScaledWorkload(GetParam(), 0.004);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 1000;
  for (Objective objective : {Objective::kThroughput, Objective::kLatency,
                              Objective::kProgressiveness}) {
    AdaptiveOptions options;
    options.objective = objective;
    const RunResult result = RunAdaptive(w.r, w.s, spec, options);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, RealWorkloadTest,
    ::testing::ValuesIn(kAllRealWorkloads),
    [](const ::testing::TestParamInfo<RealWorkload>& info) {
      return RealWorkloadName(info.param);
    });

TEST(Integration, StockEagerLatencyBeatsLazyInRealTime) {
  // The paper's headline Stock observation: the eager approach delivers
  // far lower processing latency when arrival rates are low.
  const Workload stock =
      GenerateRealWorld({.which = RealWorkload::kStock,
                         .scale = 0.05,
                         .window_ms = 200,
                         .seed = 3});
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 200;
  spec.clock_mode = Clock::Mode::kRealTime;
  JoinRunner runner;
  const RunResult lazy = runner.Run(AlgorithmId::kNpj, stock.r, stock.s, spec);
  const RunResult eager =
      runner.Run(AlgorithmId::kShjJm, stock.r, stock.s, spec);
  EXPECT_EQ(lazy.matches, eager.matches);
  EXPECT_LT(eager.p95_latency_ms * 2, lazy.p95_latency_ms);
}

TEST(Integration, RovioSortJoinBeatsSharedHashTable) {
  // High key duplication: the sort-based lazy join outperforms NPJ
  // (§5.3.2). Needs enough duplication for the chain-walk cost to dominate,
  // hence the larger scale than the oracle tests use.
  const Workload rovio = ScaledWorkload(RealWorkload::kRovio, 0.02);
  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  JoinRunner runner;
  const RunResult npj = runner.Run(AlgorithmId::kNpj, rovio.r, rovio.s, spec);
  const RunResult mpass =
      runner.Run(AlgorithmId::kMpass, rovio.r, rovio.s, spec);
  EXPECT_EQ(npj.matches, mpass.matches);
  // At unit-test scale the shared match-recording cost compresses the gap,
  // so this is a regression guard (sort join must at least keep pace); the
  // decisive Figure 5 gap is measured at bench scale.
  EXPECT_GE(mpass.throughput_per_ms, 0.85 * npj.throughput_per_ms);
}

TEST(Integration, EagerUsesMoreTrackedMemoryOnRovio) {
  // Figure 19b's ordering at any scale: SHJ's dual tables exceed the lazy
  // algorithms' footprints.
  const Workload rovio = ScaledWorkload(RealWorkload::kRovio, 0.005);
  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  JoinRunner runner;
  const RunResult prj = runner.Run(AlgorithmId::kPrj, rovio.r, rovio.s, spec);
  const RunResult shj =
      runner.Run(AlgorithmId::kShjJm, rovio.r, rovio.s, spec);
  EXPECT_GT(shj.peak_tracked_bytes, prj.peak_tracked_bytes);
}

TEST(Integration, DebsCompletesInstantlyGatedWorkloads) {
  // DEBS is data at rest: no wait phase for anyone under the instant clock.
  const Workload debs = ScaledWorkload(RealWorkload::kDebs, 0.01);
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 1u << 20;
  spec.clock_mode = debs.suggested_clock;
  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kMway, AlgorithmId::kPmjJb}) {
    const RunResult result = runner.Run(id, debs.r, debs.s, spec);
    EXPECT_LT(result.phases.GetNs(Phase::kWait), 10'000'000u);
    EXPECT_GT(result.matches, 0u);
  }
}

}  // namespace
}  // namespace iawj
