// Unit and property tests for the sort substrate, parameterized over the
// SIMD/scalar toggle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/common/tuple.h"
#include "src/sort/avxsort.h"
#include "src/sort/merge.h"

namespace iawj {
namespace {

std::vector<uint64_t> RandomPacked(size_t n, uint64_t seed,
                                   uint32_t key_domain = 1 << 20) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) {
    x = PackTuple(Tuple{.ts = static_cast<uint32_t>(rng.NextBounded(1000)),
                        .key = static_cast<uint32_t>(
                            rng.NextBounded(key_domain))});
  }
  return v;
}

class SortPathTest : public ::testing::TestWithParam<bool> {
 protected:
  sort::Options options() const { return sort::Options{GetParam()}; }
};

TEST_P(SortPathTest, SortsAtEverySizeBoundary) {
  // Sizes straddle the base-block size (64) and merge-tree levels.
  for (size_t n : {0, 1, 2, 3, 63, 64, 65, 127, 128, 129, 1000, 4096, 10000}) {
    auto data = RandomPacked(n, n + 1);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    sort::SortPacked(data.data(), n, options());
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(SortPathTest, SortsHeavyDuplicates) {
  auto data = RandomPacked(5000, 77, /*key_domain=*/7);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  sort::SortPacked(data.data(), data.size(), options());
  EXPECT_EQ(data, expected);
}

TEST_P(SortPathTest, SortsPresortedAndReversed) {
  auto data = RandomPacked(2048, 5);
  std::sort(data.begin(), data.end());
  auto expected = data;
  sort::SortPacked(data.data(), data.size(), options());
  EXPECT_EQ(data, expected);
  std::reverse(data.begin(), data.end());
  sort::SortPacked(data.data(), data.size(), options());
  EXPECT_EQ(data, expected);
}

TEST_P(SortPathTest, SortTuplesOrdersByKeyThenTs) {
  std::vector<Tuple> tuples = {{.ts = 9, .key = 2}, {.ts = 1, .key = 2},
                               {.ts = 5, .key = 1}, {.ts = 0, .key = 3}};
  sort::SortTuples(tuples.data(), tuples.size(), options());
  EXPECT_EQ(tuples[0].key, 1u);
  EXPECT_EQ(tuples[1].key, 2u);
  EXPECT_EQ(tuples[1].ts, 1u);
  EXPECT_EQ(tuples[2].ts, 9u);
  EXPECT_EQ(tuples[3].key, 3u);
}

TEST_P(SortPathTest, MergePreservesMultiset) {
  for (auto [na, nb] : std::vector<std::pair<size_t, size_t>>{
           {0, 10}, {10, 0}, {1, 1}, {100, 1000}, {777, 778}}) {
    auto a = RandomPacked(na, 11);
    auto b = RandomPacked(nb, 13);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<uint64_t> out(na + nb);
    sort::MergePacked(a.data(), na, b.data(), nb, out.data(), options());
    std::vector<uint64_t> expected;
    expected.insert(expected.end(), a.begin(), a.end());
    expected.insert(expected.end(), b.begin(), b.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(out, expected) << na << "+" << nb;
  }
}

TEST_P(SortPathTest, MergeAdversarialPatterns) {
  const auto check = [&](std::vector<uint64_t> a, std::vector<uint64_t> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<uint64_t> out(a.size() + b.size());
    sort::MergePacked(a.data(), a.size(), b.data(), b.size(), out.data(),
                      options());
    std::vector<uint64_t> expected(out.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    ASSERT_EQ(out, expected);
  };

  // All of A below all of B, and vice versa (one-sided drains).
  std::vector<uint64_t> low(100), high(100);
  for (size_t i = 0; i < 100; ++i) {
    low[i] = i;
    high[i] = 1000 + i;
  }
  check(low, high);
  check(high, low);

  // Strict interleave (maximum refill alternation).
  std::vector<uint64_t> even(64), odd(64);
  for (size_t i = 0; i < 64; ++i) {
    even[i] = 2 * i;
    odd[i] = 2 * i + 1;
  }
  check(even, odd);

  // Block pattern: runs of 5 from each (exercises the hi-register buffer).
  std::vector<uint64_t> blk_a, blk_b;
  for (uint64_t block = 0; block < 40; ++block) {
    for (uint64_t i = 0; i < 5; ++i) {
      (block % 2 == 0 ? blk_a : blk_b).push_back(block * 100 + i);
    }
  }
  check(blk_a, blk_b);

  // One huge straggler in an otherwise-small run.
  std::vector<uint64_t> small = {1, 2, 3, 4, 5, 6, 7, 1u << 30};
  check(small, RandomPacked(200, 42));

  // Everything equal (ties must not drop or duplicate elements).
  check(std::vector<uint64_t>(50, 7), std::vector<uint64_t>(60, 7));
}

TEST_P(SortPathTest, MergeFuzzAgainstStdMerge) {
  Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    const size_t na = rng.NextBounded(300);
    const size_t nb = rng.NextBounded(300);
    auto a = RandomPacked(na, rng.Next(), /*key_domain=*/1 << 8);
    auto b = RandomPacked(nb, rng.Next(), /*key_domain=*/1 << 8);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<uint64_t> out(na + nb);
    sort::MergePacked(a.data(), na, b.data(), nb, out.data(), options());
    std::vector<uint64_t> expected(na + nb);
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    ASSERT_EQ(out, expected) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(SimdAndScalar, SortPathTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "simd" : "scalar";
                         });

TEST(MultiwayMerge, MergesKRunsOfUnequalLength) {
  std::vector<std::vector<uint64_t>> runs_data;
  std::vector<uint64_t> expected;
  for (size_t k = 0; k < 7; ++k) {
    auto run = RandomPacked(100 * k + 1, 100 + k);
    std::sort(run.begin(), run.end());
    expected.insert(expected.end(), run.begin(), run.end());
    runs_data.push_back(std::move(run));
  }
  std::sort(expected.begin(), expected.end());
  std::vector<sort::Run> runs;
  for (const auto& r : runs_data) runs.push_back({r.data(), r.size()});
  std::vector<uint64_t> out(expected.size());
  sort::MultiwayMerge(runs, out.data());
  EXPECT_EQ(out, expected);
}

TEST(MultiwayMerge, SingleAndEmptyRuns) {
  auto run = RandomPacked(100, 1);
  std::sort(run.begin(), run.end());
  std::vector<sort::Run> runs = {{run.data(), run.size()},
                                 {nullptr, 0},
                                 {run.data(), 0}};
  std::vector<uint64_t> out(run.size());
  sort::MultiwayMerge(runs, out.data());
  EXPECT_EQ(out, run);
}

TEST(MultiwayMergeTagged, TagsIdentifySourceRun) {
  std::vector<uint64_t> a = {PackTuple({.ts = 0, .key = 1}),
                             PackTuple({.ts = 0, .key = 5})};
  std::vector<uint64_t> b = {PackTuple({.ts = 0, .key = 3})};
  std::vector<sort::Run> runs = {{a.data(), a.size()}, {b.data(), b.size()}};
  std::vector<uint64_t> values(3);
  std::vector<uint32_t> tags(3);
  sort::MultiwayMergeTagged(runs, values.data(), tags.data());
  EXPECT_EQ(PackedKey(values[0]), 1u);
  EXPECT_EQ(tags[0], 0u);
  EXPECT_EQ(PackedKey(values[1]), 3u);
  EXPECT_EQ(tags[1], 1u);
  EXPECT_EQ(PackedKey(values[2]), 5u);
  EXPECT_EQ(tags[2], 0u);
}

TEST(MultiPassMerge, MatchesMultiwayResult) {
  for (size_t num_runs : {1, 2, 3, 4, 5, 8}) {
    std::vector<std::vector<uint64_t>> runs_data;
    size_t total = 0;
    for (size_t k = 0; k < num_runs; ++k) {
      auto run = RandomPacked(50 + 37 * k, 200 + k);
      std::sort(run.begin(), run.end());
      total += run.size();
      runs_data.push_back(std::move(run));
    }
    std::vector<sort::Run> runs;
    for (const auto& r : runs_data) runs.push_back({r.data(), r.size()});
    std::vector<uint64_t> via_multiway(total), via_multipass(total);
    sort::MultiwayMerge(runs, via_multiway.data());
    sort::MultiPassMerge(runs, via_multipass.data(), sort::Options{true});
    EXPECT_EQ(via_multipass, via_multiway) << num_runs << " runs";
  }
}

}  // namespace
}  // namespace iawj
