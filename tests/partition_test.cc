// Unit and property tests for the partition substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/partition/radix.h"
#include "src/partition/range.h"
#include "src/sort/avxsort.h"

namespace iawj {
namespace {

std::vector<Tuple> RandomTuples(size_t n, uint32_t key_domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> v(n);
  for (auto& t : v) {
    t.key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(1000));
  }
  return v;
}

TEST(RadixHistogram, CountsEveryTuple) {
  const auto input = RandomTuples(10000, 1 << 16, 1);
  const int bits = 6;
  std::vector<uint64_t> hist(1 << bits, 0);
  RadixHistogram(input.data(), input.size(), bits, hist.data());
  uint64_t total = 0;
  for (auto h : hist) total += h;
  EXPECT_EQ(total, input.size());
}

TEST(RadixPartition, OutputIsPermutationAndPartitionPure) {
  const auto input = RandomTuples(20000, 1 << 16, 2);
  const int bits = 8;
  std::vector<Tuple> out(input.size());
  std::vector<uint64_t> offsets;
  NullTracer tracer;
  RadixPartitionSingle(input.data(), input.size(), bits, out.data(), &offsets,
                       tracer);

  ASSERT_EQ(offsets.size(), (1u << bits) + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), input.size());

  // Partition purity: every tuple in partition p has radix p.
  for (size_t p = 0; p < (1u << bits); ++p) {
    for (uint64_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      EXPECT_EQ(RadixOf(out[i].key, bits), p);
    }
  }

  // Permutation: multisets of (key, ts) match.
  auto canon = [](std::vector<Tuple> v) {
    std::vector<uint64_t> packed(v.size());
    for (size_t i = 0; i < v.size(); ++i) packed[i] = PackTuple(v[i]);
    std::sort(packed.begin(), packed.end());
    return packed;
  };
  EXPECT_EQ(canon(out), canon(input));
}

TEST(RadixPartition, SkewedKeysCollapseIntoFewPartitions) {
  // All keys equal: exactly one non-empty partition (PRJ's skew hazard).
  std::vector<Tuple> input(1000, Tuple{.ts = 0, .key = 12345});
  const int bits = 10;
  std::vector<Tuple> out(input.size());
  std::vector<uint64_t> offsets;
  NullTracer tracer;
  RadixPartitionSingle(input.data(), input.size(), bits, out.data(), &offsets,
                       tracer);
  int non_empty = 0;
  for (size_t p = 0; p < (1u << bits); ++p) {
    if (offsets[p + 1] > offsets[p]) ++non_empty;
  }
  EXPECT_EQ(non_empty, 1);
}

TEST(ChunkForThread, CoversWithoutOverlap) {
  for (size_t n : {0, 1, 7, 100, 101}) {
    for (int threads : {1, 2, 3, 8}) {
      size_t covered = 0;
      size_t prev_end = 0;
      for (int t = 0; t < threads; ++t) {
        const ChunkRange c = ChunkForThread(n, t, threads);
        EXPECT_EQ(c.begin, prev_end);
        covered += c.size();
        prev_end = c.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(LowerBoundKeyFn, FindsFirstOfKey) {
  std::vector<uint64_t> sorted = {
      PackTuple({.ts = 0, .key = 1}), PackTuple({.ts = 1, .key = 1}),
      PackTuple({.ts = 0, .key = 5}), PackTuple({.ts = 0, .key = 9})};
  EXPECT_EQ(LowerBoundKey(sorted.data(), sorted.size(), 0), 0u);
  EXPECT_EQ(LowerBoundKey(sorted.data(), sorted.size(), 1), 0u);
  EXPECT_EQ(LowerBoundKey(sorted.data(), sorted.size(), 2), 2u);
  EXPECT_EQ(LowerBoundKey(sorted.data(), sorted.size(), 5), 2u);
  EXPECT_EQ(LowerBoundKey(sorted.data(), sorted.size(), 9), 3u);
  EXPECT_EQ(LowerBoundKey(sorted.data(), sorted.size(), 10), 4u);
}

TEST(KeyAlignedSplitsFn, NeverSplitsDuplicateRuns) {
  auto tuples = RandomTuples(5000, 40, 3);  // heavy duplication
  std::vector<uint64_t> packed(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) packed[i] = PackTuple(tuples[i]);
  std::sort(packed.begin(), packed.end());

  for (int parts : {1, 2, 3, 7, 16}) {
    const auto splits = KeyAlignedSplits(packed.data(), packed.size(), parts);
    ASSERT_EQ(splits.size(), static_cast<size_t>(parts) + 1);
    EXPECT_EQ(splits.front(), 0u);
    EXPECT_EQ(splits.back(), packed.size());
    for (int p = 1; p < parts; ++p) {
      EXPECT_LE(splits[p - 1], splits[p]);
      const size_t pos = splits[p];
      if (pos > 0 && pos < packed.size()) {
        EXPECT_NE(PackedKey(packed[pos]), PackedKey(packed[pos - 1]))
            << "split lands inside a duplicate-key run";
      }
    }
  }
}

TEST(KeyAlignedSplitsFn, AllSameKeyDegeneratesToOnePart) {
  std::vector<uint64_t> packed(100, PackTuple({.ts = 0, .key = 7}));
  const auto splits = KeyAlignedSplits(packed.data(), packed.size(), 4);
  // All middle boundaries collapse to n.
  for (int p = 1; p <= 4; ++p) EXPECT_EQ(splits[p], packed.size());
}

}  // namespace
}  // namespace iawj
