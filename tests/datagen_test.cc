// Tests for the Micro generator and the real-world workload synthesizers:
// generated data must exhibit the paper's Table 3 / Table 1 characteristics.
#include <gtest/gtest.h>

#include "src/datagen/micro.h"
#include "src/datagen/real_world.h"

namespace iawj {
namespace {

TEST(Micro, RespectsRateAndWindow) {
  MicroSpec spec;
  spec.rate_r = 100;
  spec.rate_s = 200;
  spec.window_ms = 500;
  const MicroWorkload w = GenerateMicro(spec);
  EXPECT_EQ(w.r.size(), 100u * 500);
  EXPECT_EQ(w.s.size(), 200u * 500);
  for (const Tuple& t : w.r.tuples) EXPECT_LT(t.ts, 500u);
  const StreamStats stats = ComputeStats(w.r);
  EXPECT_NEAR(stats.arrival_rate_per_ms, 100, 5);
}

TEST(Micro, UniqueKeysWhenDupeOne) {
  MicroSpec spec;
  spec.size_r = 10000;
  spec.size_s = 10000;
  spec.dupe = 1.0;
  const MicroWorkload w = GenerateMicro(spec);
  const StreamStats stats = ComputeStats(w.r);
  EXPECT_EQ(stats.unique_keys, 10000u);
}

TEST(Micro, DuplicationMatchesSpec) {
  for (double dupe : {2.0, 10.0, 100.0}) {
    MicroSpec spec;
    spec.size_r = 20000;
    spec.size_s = 20000;
    spec.dupe = dupe;
    const MicroWorkload w = GenerateMicro(spec);
    const StreamStats stats = ComputeStats(w.s);
    EXPECT_NEAR(stats.avg_duplicates_per_key, dupe, dupe * 0.05);
  }
}

TEST(Micro, MatchesScaleWithDuplication) {
  // Fig. 11's premise: with |R|,|S| fixed, total matches grow ~dupe-fold.
  auto matches_at = [](double dupe) {
    MicroSpec spec;
    spec.size_r = 5000;
    spec.size_s = 5000;
    spec.dupe = dupe;
    const MicroWorkload w = GenerateMicro(spec);
    uint64_t m = 0;
    std::unordered_map<uint32_t, uint64_t> freq;
    for (const Tuple& t : w.r.tuples) ++freq[t.key];
    for (const Tuple& t : w.s.tuples) {
      auto it = freq.find(t.key);
      if (it != freq.end()) m += it->second;
    }
    return m;
  };
  const uint64_t m1 = matches_at(1);
  const uint64_t m10 = matches_at(10);
  EXPECT_NEAR(static_cast<double>(m10) / static_cast<double>(m1), 10.0, 2.0);
}

TEST(Micro, ZipfKeySkewConcentratesKeys) {
  MicroSpec spec;
  spec.size_r = 20000;
  spec.size_s = 20000;
  spec.dupe = 10;
  spec.zipf_key = 1.6;
  const MicroWorkload w = GenerateMicro(spec);
  const StreamStats stats = ComputeStats(w.r);
  // Under heavy skew the effective duplication of hot keys far exceeds the
  // nominal dupe.
  EXPECT_GT(stats.key_zipf_estimate, 0.5);
}

TEST(Micro, TimestampSkewFrontLoadsArrivals) {
  MicroSpec uniform_spec, skewed_spec;
  uniform_spec.size_r = uniform_spec.size_s = 10000;
  skewed_spec.size_r = skewed_spec.size_s = 10000;
  skewed_spec.zipf_ts = 1.6;
  const MicroWorkload uniform = GenerateMicro(uniform_spec);
  const MicroWorkload skewed = GenerateMicro(skewed_spec);
  auto early_fraction = [](const Stream& s) {
    size_t early = 0;
    for (const Tuple& t : s.tuples) {
      if (t.ts < 100) ++early;
    }
    return static_cast<double>(early) / s.size();
  };
  EXPECT_NEAR(early_fraction(uniform.r), 0.1, 0.05);
  EXPECT_GT(early_fraction(skewed.r), 0.5);
}

TEST(RealWorld, StockHasLowRateAndSpikes) {
  const Workload w =
      GenerateRealWorld({.which = RealWorkload::kStock, .scale = 0.2});
  const StreamStats r = ComputeStats(w.r);
  const StreamStats s = ComputeStats(w.s);
  EXPECT_NEAR(r.arrival_rate_per_ms, 61 * 0.2, 61 * 0.2 * 0.3);
  EXPECT_NEAR(s.arrival_rate_per_ms, 77 * 0.2, 77 * 0.2 * 0.3);
  // Spikes: some timestamp holds far more than the uniform share.
  std::unordered_map<uint32_t, size_t> per_ts;
  for (const Tuple& t : w.r.tuples) ++per_ts[t.ts];
  size_t max_slot = 0;
  for (const auto& [ts, n] : per_ts) max_slot = std::max(max_slot, n);
  EXPECT_GT(max_slot, w.r.size() / 1000 * 10);
}

TEST(RealWorld, RovioHasVeryHighDuplication) {
  const Workload w =
      GenerateRealWorld({.which = RealWorkload::kRovio, .scale = 0.02});
  const StreamStats r = ComputeStats(w.r);
  EXPECT_LE(r.unique_keys, 167u);
  EXPECT_GT(r.avg_duplicates_per_key, 100);
}

TEST(RealWorld, YsbHasUniqueStaticCampaignsAndStreamingAds) {
  const Workload w =
      GenerateRealWorld({.which = RealWorkload::kYsb, .scale = 0.05});
  const StreamStats r = ComputeStats(w.r);
  EXPECT_DOUBLE_EQ(r.avg_duplicates_per_key, 1.0);  // dupe(R) = 1
  for (const Tuple& t : w.r.tuples) EXPECT_EQ(t.ts, 0u);  // table at rest
  EXPECT_GT(ComputeStats(w.s).avg_duplicates_per_key, 50);
}

TEST(RealWorld, DebsIsFullyAtRest) {
  const Workload w =
      GenerateRealWorld({.which = RealWorkload::kDebs, .scale = 0.05});
  EXPECT_EQ(w.suggested_clock, Clock::Mode::kInstant);
  for (const Tuple& t : w.r.tuples) EXPECT_EQ(t.ts, 0u);
  for (const Tuple& t : w.s.tuples) EXPECT_EQ(t.ts, 0u);
  EXPECT_NEAR(static_cast<double>(w.s.size()) / w.r.size(), 10.0, 1.0);
}

TEST(Micro, DeterministicPerSeed) {
  MicroSpec spec;
  spec.size_r = spec.size_s = 5000;
  spec.dupe = 7;
  spec.zipf_key = 0.8;
  const MicroWorkload a = GenerateMicro(spec);
  const MicroWorkload b = GenerateMicro(spec);
  EXPECT_EQ(a.r.tuples, b.r.tuples);
  EXPECT_EQ(a.s.tuples, b.s.tuples);

  spec.seed = 43;
  const MicroWorkload c = GenerateMicro(spec);
  EXPECT_NE(a.r.tuples, c.r.tuples);
}

TEST(Micro, SidesDrawIndependentKeys) {
  // Same spec must not give R and S identical tuple sequences.
  MicroSpec spec;
  spec.size_r = spec.size_s = 1000;
  spec.dupe = 5;
  spec.zipf_key = 0.5;
  const MicroWorkload w = GenerateMicro(spec);
  EXPECT_NE(w.r.tuples, w.s.tuples);
}

TEST(Micro, PerSideKeySkewOverride) {
  MicroSpec spec;
  spec.size_r = spec.size_s = 20000;
  spec.dupe = 10;
  spec.zipf_key = 1.6;   // R heavily skewed
  spec.zipf_key_s = 0.0; // S uniform
  const MicroWorkload w = GenerateMicro(spec);
  const StreamStats r = ComputeStats(w.r);
  const StreamStats s = ComputeStats(w.s);
  EXPECT_GT(r.key_zipf_estimate, s.key_zipf_estimate + 0.3);
}

TEST(RealWorld, DeterministicPerSeed) {
  const RealWorldSpec spec{.which = RealWorkload::kStock, .scale = 0.05};
  const Workload a = GenerateRealWorld(spec);
  const Workload b = GenerateRealWorld(spec);
  EXPECT_EQ(a.r.tuples, b.r.tuples);
  EXPECT_EQ(a.s.tuples, b.s.tuples);
}

TEST(RealWorld, NamesAreStable) {
  EXPECT_EQ(RealWorkloadName(RealWorkload::kStock), "Stock");
  EXPECT_EQ(RealWorkloadName(RealWorkload::kRovio), "Rovio");
  EXPECT_EQ(RealWorkloadName(RealWorkload::kYsb), "YSB");
  EXPECT_EQ(RealWorkloadName(RealWorkload::kDebs), "DEBS");
}

}  // namespace
}  // namespace iawj
