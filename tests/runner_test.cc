// Tests for the runner and its metric collection: throughput/latency/
// progressiveness semantics, phase breakdowns, real-time clock behaviour,
// spec validation.
#include <gtest/gtest.h>

#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

MicroWorkload SmallWorkload() {
  MicroSpec spec;
  spec.size_r = 4000;
  spec.size_s = 4000;
  spec.window_ms = 100;
  spec.dupe = 4;
  spec.seed = 5;
  return GenerateMicro(spec);
}

TEST(Runner, MetricsAreInternallyConsistent) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    EXPECT_EQ(result.algorithm, AlgorithmName(id));
    EXPECT_GT(result.matches, 0u);
    EXPECT_EQ(result.progress.total(), result.matches);
    EXPECT_EQ(result.latency.count(), result.matches);
    EXPECT_GT(result.throughput_per_ms, 0);
    EXPECT_GT(result.elapsed_ms, 0);
    EXPECT_GE(result.elapsed_ms, result.last_match_ms);
    EXPECT_LE(result.p95_latency_ms,
              result.latency.QuantileMs(1.0) + 1e-9);
    EXPECT_GE(result.p95_latency_ms, result.latency.QuantileMs(0.5) - 1e-9);
    EXPECT_GT(result.phases.TotalNs(), 0u);
    EXPECT_GT(result.peak_tracked_bytes, 0);
  }
}

TEST(Runner, ThroughputDefinitionInputsOverLastMatch) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 100;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  EXPECT_NEAR(result.throughput_per_ms,
              static_cast<double>(result.inputs) / result.last_match_ms,
              1e-6);
}

TEST(Runner, LazyAlgorithmsWaitForWindowInRealTime) {
  MicroSpec mspec;
  mspec.rate_r = 20;
  mspec.rate_s = 20;
  mspec.window_ms = 50;
  const MicroWorkload w = GenerateMicro(mspec);

  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 50;
  spec.clock_mode = Clock::Mode::kRealTime;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  // The lazy join cannot finish before the window closes...
  EXPECT_GE(result.last_match_ms, 48.0);
  // ...and its workers spend that time in the wait phase.
  EXPECT_GT(result.phases.GetNs(Phase::kWait), 40'000'000u);
}

TEST(Runner, EagerDeliversMatchesBeforeWindowCloses) {
  MicroSpec mspec;
  mspec.rate_r = 50;
  mspec.rate_s = 50;
  mspec.window_ms = 60;
  mspec.dupe = 5;
  const MicroWorkload w = GenerateMicro(mspec);

  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 60;
  spec.clock_mode = Clock::Mode::kRealTime;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kShjJm, w.r, w.s, spec);
  ASSERT_GT(result.matches, 0u);
  // SHJ produces its first matches long before the window closes.
  EXPECT_LT(result.progress.TimeToFractionMs(0.05), 55.0);
}

TEST(Runner, RealTimeAndInstantProduceSameMatches) {
  MicroSpec mspec;
  mspec.rate_r = 100;
  mspec.rate_s = 100;
  mspec.window_ms = 40;
  mspec.dupe = 3;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult expected = NestedLoopJoin(w.r.view(), w.s.view());

  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kNpj, AlgorithmId::kShjJm,
                         AlgorithmId::kPmjJb, AlgorithmId::kMpass}) {
    SCOPED_TRACE(AlgorithmName(id));
    for (Clock::Mode mode :
         {Clock::Mode::kInstant, Clock::Mode::kRealTime}) {
      JoinSpec spec;
      spec.num_threads = 2;
      spec.window_ms = 40;
      spec.clock_mode = mode;
      const RunResult result = runner.Run(id, w.r, w.s, spec);
      EXPECT_EQ(result.matches, expected.matches);
      EXPECT_EQ(result.checksum, expected.checksum);
    }
  }
}

TEST(Runner, TimeScaleAcceleratesStreams) {
  MicroSpec mspec;
  mspec.rate_r = 20;
  mspec.rate_s = 20;
  mspec.window_ms = 200;
  const MicroWorkload w = GenerateMicro(mspec);

  JoinSpec spec;
  spec.num_threads = 1;
  spec.window_ms = 200;
  spec.clock_mode = Clock::Mode::kRealTime;
  spec.time_scale = 10.0;  // 200 stream-ms in ~20 wall-ms
  JoinRunner runner;
  const auto wall_start = std::chrono::steady_clock::now();
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  EXPECT_GE(result.last_match_ms, 190.0);  // stream time still ~window
  EXPECT_LT(wall_ms, 150.0);               // but wall time compressed
}

TEST(Runner, ValidateRejectsBadSpecs) {
  JoinSpec spec;
  spec.num_threads = 0;
  EXPECT_FALSE(spec.Validate(AlgorithmId::kNpj).ok());
  spec = JoinSpec{};
  spec.radix_bits = 0;
  EXPECT_FALSE(spec.Validate(AlgorithmId::kPrj).ok());
  EXPECT_TRUE(spec.Validate(AlgorithmId::kNpj).ok());
  spec = JoinSpec{};
  spec.pmj_delta = 0;
  EXPECT_FALSE(spec.Validate(AlgorithmId::kPmjJm).ok());
  spec = JoinSpec{};
  spec.num_threads = 4;
  spec.jb_group_size = 3;
  EXPECT_FALSE(spec.Validate(AlgorithmId::kShjJb).ok());
  EXPECT_TRUE(spec.Validate(AlgorithmId::kShjJm).ok());
}

TEST(Runner, PhaseBreakdownReflectsAlgorithmStructure) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  JoinRunner runner;

  const RunResult npj = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  EXPECT_GT(npj.phases.GetNs(Phase::kBuild), 0u);
  EXPECT_GT(npj.phases.GetNs(Phase::kProbe), 0u);
  EXPECT_EQ(npj.phases.GetNs(Phase::kSort), 0u);

  const RunResult mway = runner.Run(AlgorithmId::kMway, w.r, w.s, spec);
  EXPECT_GT(mway.phases.GetNs(Phase::kSort), 0u);
  EXPECT_GT(mway.phases.GetNs(Phase::kMerge), 0u);

  const RunResult prj = runner.Run(AlgorithmId::kPrj, w.r, w.s, spec);
  EXPECT_GT(prj.phases.GetNs(Phase::kPartition), 0u);

  const RunResult shj = runner.Run(AlgorithmId::kShjJm, w.r, w.s, spec);
  EXPECT_GT(shj.phases.GetNs(Phase::kPartition), 0u);
  EXPECT_GT(shj.phases.GetNs(Phase::kBuild), 0u);
  EXPECT_GT(shj.phases.GetNs(Phase::kProbe), 0u);
}

TEST(Runner, WorkPerInputExcludesWait) {
  RunResult r;
  r.inputs = 100;
  r.phases.AddNs(Phase::kWait, 10000);
  r.phases.AddNs(Phase::kProbe, 500);
  EXPECT_DOUBLE_EQ(r.WorkNsPerInput(), 5.0);
}

}  // namespace
}  // namespace iawj
