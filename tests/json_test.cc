// Tests for the minimal JSON writer/parser backing the observability layer.
#include <gtest/gtest.h>

#include "src/common/json.h"

namespace iawj {
namespace {

TEST(JsonQuote, EscapesSpecials) {
  EXPECT_EQ(json::Quote("plain"), "\"plain\"");
  EXPECT_EQ(json::Quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json::Quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json::Quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json::Quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriter, BuildsNestedStructure) {
  json::Writer w;
  w.BeginObject();
  w.Field("name", "iawj");
  w.Field("count", int64_t{3});
  w.Field("ratio", 0.5);
  w.Field("ok", true);
  w.Key("items").BeginArray().Int(1).Int(2).String("x").EndArray();
  w.Key("nested").BeginObject().Field("deep", int64_t{-1}).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"iawj\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"items\":[1,2,\"x\"],\"nested\":{\"deep\":-1}}");
}

TEST(JsonWriter, DoublesRoundTrip) {
  json::Writer w;
  w.BeginArray().Double(0.1).Double(123456789.25).Double(-3).EndArray();
  json::Value parsed;
  ASSERT_TRUE(json::Parse(w.str(), &parsed).ok());
  ASSERT_EQ(parsed.array.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.array[0].number, 0.1);
  EXPECT_DOUBLE_EQ(parsed.array[1].number, 123456789.25);
  EXPECT_DOUBLE_EQ(parsed.array[2].number, -3);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  json::Writer w;
  w.BeginArray().Double(1.0 / 0.0).EndArray();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonParse, ObjectArrayScalars) {
  json::Value v;
  ASSERT_TRUE(json::Parse(
                  " { \"a\" : [1, 2.5, true, false, null, \"s\"] } ", &v)
                  .ok());
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 6u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_TRUE(a->array[2].boolean);
  EXPECT_FALSE(a->array[3].boolean);
  EXPECT_TRUE(a->array[4].is_null());
  EXPECT_EQ(a->array[5].string, "s");
}

TEST(JsonParse, StringEscapes) {
  json::Value v;
  ASSERT_TRUE(json::Parse("\"a\\n\\t\\\\\\\"\\u0041\"", &v).ok());
  EXPECT_EQ(v.string, "a\n\t\\\"A");
}

TEST(JsonParse, RoundTripsWriterEscapes) {
  json::Writer w;
  w.BeginObject().Field("s", "quote\" slash\\ nl\n").EndObject();
  json::Value v;
  ASSERT_TRUE(json::Parse(w.str(), &v).ok());
  EXPECT_EQ(v.Find("s")->string, "quote\" slash\\ nl\n");
}

TEST(JsonParse, RejectsMalformed) {
  json::Value v;
  EXPECT_FALSE(json::Parse("", &v).ok());
  EXPECT_FALSE(json::Parse("{", &v).ok());
  EXPECT_FALSE(json::Parse("[1,]", &v).ok());
  EXPECT_FALSE(json::Parse("{\"a\":}", &v).ok());
  EXPECT_FALSE(json::Parse("tru", &v).ok());
  EXPECT_FALSE(json::Parse("1 2", &v).ok());
  EXPECT_FALSE(json::Parse("\"unterminated", &v).ok());
  EXPECT_FALSE(json::Parse("{\"a\":1,}", &v).ok());
}

TEST(JsonParse, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  json::Value v;
  EXPECT_FALSE(json::Parse(deep, &v).ok());
}

}  // namespace
}  // namespace iawj
