// Tests for the handshake join extension (paper §6's scope-validation
// algorithm): exact-once correctness across thread counts and workloads,
// plus streaming behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/join/handshake.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

std::vector<Tuple> RandomTuples(size_t n, uint32_t key_domain,
                                uint32_t window_ms, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples(n);
  for (auto& t : tuples) {
    t.key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(window_ms));
  }
  return tuples;
}

RunResult RunHandshake(const Stream& r, const Stream& s, int threads,
                       Clock::Mode mode = Clock::Mode::kInstant,
                       uint32_t window_ms = 1000) {
  JoinSpec spec;
  spec.num_threads = threads;
  spec.window_ms = window_ms;
  spec.clock_mode = mode;
  auto algorithm = MakeHandshake();
  JoinRunner runner;
  return runner.RunWith(algorithm.get(), r, s, spec);
}

class HandshakeThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(HandshakeThreadsTest, MatchesReferenceExactlyOnce) {
  const int threads = GetParam();
  struct Case {
    size_t nr, ns;
    uint32_t domain;
    uint64_t seed;
  };
  for (const Case& c : std::vector<Case>{{400, 500, 60, 1},
                                         {1000, 1000, 200, 2},
                                         {50, 900, 10, 3},
                                         {300, 300, 1, 4}}) {
    SCOPED_TRACE(testing::Message() << c.nr << "x" << c.ns << " domain="
                                    << c.domain);
    const Stream r = MakeStream(RandomTuples(c.nr, c.domain, 1000, c.seed));
    const Stream s =
        MakeStream(RandomTuples(c.ns, c.domain, 1000, c.seed ^ 0xff));
    const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
    const RunResult result = RunHandshake(r, s, threads);
    EXPECT_EQ(result.matches, expected.matches);
    EXPECT_EQ(result.checksum, expected.checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, HandshakeThreadsTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Handshake, EmptyInputs) {
  const Stream empty;
  const Stream r = MakeStream(RandomTuples(100, 10, 1000, 7));
  EXPECT_EQ(RunHandshake(empty, empty, 2).matches, 0u);
  EXPECT_EQ(RunHandshake(r, empty, 2).matches, 0u);
  EXPECT_EQ(RunHandshake(empty, r, 2).matches, 0u);
}

TEST(Handshake, StreamingClockProducesSameMatches) {
  const Stream r = MakeStream(RandomTuples(500, 40, 50, 8));
  const Stream s = MakeStream(RandomTuples(500, 40, 50, 9));
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());
  const RunResult result =
      RunHandshake(r, s, 2, Clock::Mode::kRealTime, /*window_ms=*/50);
  EXPECT_EQ(result.matches, expected.matches);
  EXPECT_EQ(result.checksum, expected.checksum);
}

TEST(Handshake, IsDramaticallySlowerThanIaWJAlgorithms) {
  // The §6 claim this extension exists to validate: per-hop state movement
  // plus scan-based probing makes handshake orders of magnitude slower.
  const Stream r = MakeStream(RandomTuples(4000, 4000, 1000, 10));
  const Stream s = MakeStream(RandomTuples(4000, 4000, 1000, 11));
  JoinSpec spec;
  spec.num_threads = 2;
  JoinRunner runner;
  const RunResult npj = runner.Run(AlgorithmId::kNpj, r, s, spec);
  const RunResult hs = RunHandshake(r, s, 2);
  EXPECT_EQ(hs.matches, npj.matches);
  EXPECT_GT(npj.throughput_per_ms, 10 * hs.throughput_per_ms);
}

}  // namespace
}  // namespace iawj
