// Tests for the live metrics registry (profiling/metrics.h): the sharded
// counters must lose no increments under contention, the disabled path
// must be a no-op, and the JSON snapshot must parse back into the shape
// the run record embeds.
#include "src/profiling/metrics.h"

#include <cstdlib>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/json.h"

namespace iawj::metrics {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("IAWJ_METRICS_DIR");
    ResetForTesting();
  }
  void TearDown() override {
    unsetenv("IAWJ_METRICS_DIR");
    ResetForTesting();
  }
};

TEST_F(MetricsTest, DisabledByDefaultWithoutMetricsDir) {
  EXPECT_FALSE(Enabled());
  Counter* counter = GetCounter("test.disabled");
  ASSERT_NE(counter, nullptr);
  counter->Add(42);
  EXPECT_EQ(counter->Value(), 0u);  // Add is a no-op while disabled
  Gauge* gauge = GetGauge("test.disabled_gauge");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(7);
  EXPECT_EQ(gauge->Value(), 0);
}

TEST_F(MetricsTest, EnabledViaMetricsDirEnv) {
  setenv("IAWJ_METRICS_DIR", "/tmp/does-not-need-to-exist", 1);
  ResetForTesting();
  EXPECT_TRUE(Enabled());
}

TEST_F(MetricsTest, CounterLosesNoIncrementsUnderEightThreads) {
  ForceEnable(true);
  Counter* counter = GetCounter("test.concurrent");
  ASSERT_NE(counter, nullptr);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterAddWithDeltaAndGaugeLastWriterWins) {
  ForceEnable(true);
  Counter* counter = GetCounter("test.delta");
  counter->Add(3);
  counter->Add(4);
  EXPECT_EQ(counter->Value(), 7u);
  Gauge* gauge = GetGauge("test.gauge");
  gauge->Set(10);
  gauge->Set(-2);
  EXPECT_EQ(gauge->Value(), -2);
}

TEST_F(MetricsTest, HistogramMergesShardsAcrossThreads) {
  ForceEnable(true);
  Histogram* histogram = GetHistogram("test.latency");
  ASSERT_NE(histogram, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 1; i <= 100; ++i) histogram->Record(i);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const LatencyHistogram merged = histogram->Merged();
  EXPECT_EQ(merged.count(), 400u);
  EXPECT_GT(merged.QuantileMs(0.95), merged.QuantileMs(0.5));
}

TEST_F(MetricsTest, NameBoundToOneKind) {
  ForceEnable(true);
  ASSERT_NE(GetCounter("test.kind"), nullptr);
  EXPECT_EQ(GetGauge("test.kind"), nullptr);
  EXPECT_EQ(GetHistogram("test.kind"), nullptr);
  // The original registration keeps working.
  EXPECT_NE(GetCounter("test.kind"), nullptr);
}

TEST_F(MetricsTest, HandlesAreStableAcrossLookups) {
  ForceEnable(true);
  Counter* first = GetCounter("test.stable");
  Counter* second = GetCounter("test.stable");
  EXPECT_EQ(first, second);
}

TEST_F(MetricsTest, SnapshotIsNameSorted) {
  ForceEnable(true);
  GetCounter("zz.last")->Add(1);
  GetCounter("aa.first")->Add(2);
  GetGauge("mm.middle")->Set(3);
  const std::vector<Sample> samples = Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "aa.first");
  EXPECT_EQ(samples[1].name, "mm.middle");
  EXPECT_EQ(samples[2].name, "zz.last");
  EXPECT_EQ(samples[0].kind, Sample::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 2.0);
  EXPECT_EQ(samples[1].kind, Sample::Kind::kGauge);
  EXPECT_EQ(samples[1].value, 3.0);
}

TEST_F(MetricsTest, JsonSnapshotParsesBackWithAllSections) {
  ForceEnable(true);
  GetCounter("runs.total")->Add(5);
  GetGauge("threads")->Set(4);
  GetHistogram("elapsed")->Record(1.5);
  const std::string text = SnapshotJson();
  json::Value doc;
  ASSERT_TRUE(json::Parse(text, &doc).ok()) << text;
  ASSERT_TRUE(doc.is_object()) << text;
  const json::Value* enabled = doc.Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->boolean);
  const json::Value* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const json::Value* total = counters->Find("runs.total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->number, 5.0);
  const json::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("threads"), nullptr);
  const json::Value* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* elapsed = histograms->Find("elapsed");
  ASSERT_NE(elapsed, nullptr);
  ASSERT_TRUE(elapsed->is_object());
  const json::Value* count = elapsed->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 1.0);
}

TEST_F(MetricsTest, JsonSnapshotWhenDisabledIsJustTheFlag) {
  ForceEnable(false);
  const std::string text = SnapshotJson();
  json::Value doc;
  ASSERT_TRUE(json::Parse(text, &doc).ok()) << text;
  ASSERT_TRUE(doc.is_object()) << text;
  const json::Value* enabled = doc.Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_FALSE(enabled->boolean);
  EXPECT_EQ(doc.Find("counters"), nullptr);
}

TEST_F(MetricsTest, ResetDropsInstrumentsButKeepsOldHandlesSafe) {
  ForceEnable(true);
  Counter* old_handle = GetCounter("test.reset");
  old_handle->Add(9);
  ResetForTesting();
  ForceEnable(true);
  // A fresh lookup starts from zero; the old handle stays dereferenceable
  // (the registry leaks deliberately so cached pointers never dangle).
  Counter* fresh = GetCounter("test.reset");
  EXPECT_EQ(fresh->Value(), 0u);
  EXPECT_EQ(old_handle->Value(), 9u);
}

}  // namespace
}  // namespace iawj::metrics
