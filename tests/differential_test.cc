// Differential property test for the kernel layer and the morsel
// scheduler: every algorithm must produce the exact multiset of matches
// (count + order-insensitive checksum vs the sequential nested-loop
// reference) under ALL kernel modes — forced-scalar, SWWC/batched, AVX2
// SIMD probe, and lock-free CAS build — under both hash-table substrates
// for the modes that exercise the open-addressing table, and BOTH
// scheduler modes — static chunking and morsel-driven
// work stealing with a deliberately tiny morsel size — across seeded
// randomized workloads. The workloads deliberately include sizes whose
// tails are not divisible by the SWWC line width (8) or the probe batch
// width (16), heavy duplication, skew, and thread counts including 1, odd,
// and more threads than tuples (so workers start with empty morsel ranges).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/kernels.h"
#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/hash/prefetch.h"
#include "src/hash/simd_probe.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/partition/swwc.h"

namespace iawj {
namespace {

struct RandomWorkload {
  std::string name;
  std::vector<Tuple> r;
  std::vector<Tuple> s;
  int threads;
  int radix_bits;
};

std::vector<Tuple> RandomTuples(Rng& rng, size_t n, uint32_t key_domain,
                                uint32_t window_ms) {
  std::vector<Tuple> tuples(n);
  for (auto& t : tuples) {
    t.key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(window_ms));
  }
  return tuples;
}

// Derives one workload from a seed. Sizes get a [0, 17) jitter so tails are
// rarely divisible by the kernel widths; thread counts cycle through 1, odd,
// and even; key domains range from two keys (maximal duplication) to larger
// than the inputs (mostly unique).
RandomWorkload MakeRandomWorkload(uint64_t seed) {
  Rng rng(seed * 7919 + 1);
  RandomWorkload w;
  w.name = "seed" + std::to_string(seed);
  const size_t base_r = 200 + rng.NextBounded(3000);
  const size_t base_s = 200 + rng.NextBounded(3000);
  const size_t n_r = base_r + rng.NextBounded(17);
  const size_t n_s = base_s + rng.NextBounded(17);
  const uint32_t domains[] = {2, 13, 100, 1000, 1u << 20};
  const uint32_t domain = domains[rng.NextBounded(5)];
  w.r = RandomTuples(rng, n_r, domain, 1000);
  w.s = RandomTuples(rng, n_s, domain, 1000);
  const int thread_choices[] = {1, 2, 3, 5, 8};
  w.threads = thread_choices[rng.NextBounded(5)];
  const int bits_choices[] = {1, 3, 7, 10, 13};
  w.radix_bits = bits_choices[rng.NextBounded(5)];
  return w;
}

void ExpectAllAlgorithmsMatchReference(const RandomWorkload& w) {
  const Stream r = MakeStream(w.r);
  const Stream s = MakeStream(w.s);
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());

  for (const KernelMode mode :
       {KernelMode::kScalar, KernelMode::kSwwc, KernelMode::kSimd,
        KernelMode::kLockfree}) {
    for (const SchedulerMode sched :
         {SchedulerMode::kStatic, SchedulerMode::kMorsel}) {
      for (AlgorithmId id : kAllAlgorithms) {
        // The simd plan's main consumers are the open-addressing tables:
        // exercise the vertical probe through SHJ/PRJ too, not just HHJ.
        // Scalar gets the same treatment so the linear-probe grid has its
        // own reference axis. One table kind per (mode, sched) otherwise.
        const bool also_linear =
            (mode == KernelMode::kSimd || mode == KernelMode::kScalar) &&
            sched == SchedulerMode::kStatic;
        for (const HashTableKind table_kind :
             also_linear ? std::vector<HashTableKind>{
                               HashTableKind::kBucketChain,
                               HashTableKind::kLinearProbe}
                         : std::vector<HashTableKind>{
                               HashTableKind::kBucketChain}) {
          SCOPED_TRACE(testing::Message()
                       << w.name << " algo=" << AlgorithmName(id)
                       << " kernels=" << KernelModeName(mode)
                       << " scheduler=" << SchedulerModeName(sched)
                       << " table="
                       << (table_kind == HashTableKind::kLinearProbe
                               ? "linear_probe"
                               : "bucket_chain")
                       << " threads=" << w.threads
                       << " bits=" << w.radix_bits << " r=" << w.r.size()
                       << " s=" << w.s.size());
          JoinSpec spec;
          spec.num_threads = w.threads;
          spec.window_ms = 1000;
          spec.clock_mode = Clock::Mode::kInstant;
          spec.kernels = mode;
          spec.scheduler = sched;
          spec.hash_table_kind = table_kind;
          // Small enough that these few-thousand-tuple inputs split into
          // many morsels per worker, so the steal paths actually execute.
          spec.morsel_size = 128;
          spec.radix_bits = w.radix_bits;
          spec.jb_group_size = w.threads % 2 == 0 ? 2 : 1;
          JoinRunner runner;
          const RunResult result = runner.Run(id, r, s, spec);
          EXPECT_EQ(result.matches, expected.matches);
          EXPECT_EQ(result.checksum, expected.checksum);
          EXPECT_EQ(result.scheduler_resolved, sched);
          EXPECT_EQ(result.kernels_resolved, mode);
        }
      }
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllKernelModesMatchNestedLoop) {
  ExpectAllAlgorithmsMatchReference(MakeRandomWorkload(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(SeededWorkloads, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Deliberate edge shapes the random sweep may under-sample.

TEST(DifferentialEdges, TailsJustBelowAndAboveKernelWidths) {
  // Sizes straddling the SWWC line width (8) and probe batch width (16):
  // the batched loops must hand exact remainders to their tail paths.
  Rng rng(4242);
  for (const size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                         size_t{15}, size_t{16}, size_t{17}, size_t{31},
                         size_t{33}, size_t{127}}) {
    RandomWorkload w;
    w.name = "tail" + std::to_string(n);
    w.r = RandomTuples(rng, n, 8, 1000);
    w.s = RandomTuples(rng, n + rng.NextBounded(3), 8, 1000);
    w.threads = 1 + static_cast<int>(rng.NextBounded(4));
    w.radix_bits = 4;
    ExpectAllAlgorithmsMatchReference(w);
  }
}

TEST(DifferentialEdges, ZipfSkewBothKernelModes) {
  MicroSpec spec;
  spec.size_r = 4000;
  spec.size_s = 4000;
  spec.window_ms = 1000;
  spec.dupe = 25;
  spec.zipf_key = 1.4;
  spec.seed = 77;
  MicroWorkload micro = GenerateMicro(spec);
  RandomWorkload w;
  w.name = "zipf";
  w.r = std::move(micro.r.tuples);
  w.s = std::move(micro.s.tuples);
  w.threads = 3;
  w.radix_bits = 10;
  ExpectAllAlgorithmsMatchReference(w);
}

TEST(DifferentialEdges, MoreThreadsThanTuples) {
  Rng rng(99);
  RandomWorkload w;
  w.name = "tiny_wide";
  w.r = RandomTuples(rng, 5, 3, 1000);
  w.s = RandomTuples(rng, 3, 3, 1000);
  w.threads = 8;
  w.radix_bits = 6;
  ExpectAllAlgorithmsMatchReference(w);
}

// The knob plumbing itself: auto defers to the environment, spec wins over
// everything, and tracing always forces scalar kernels.
TEST(KernelModeResolution, SpecEnvAndTracerPrecedence) {
  EXPECT_TRUE(UseCacheKernels(KernelMode::kSwwc, /*tracer_enabled=*/false));
  EXPECT_FALSE(UseCacheKernels(KernelMode::kScalar, /*tracer_enabled=*/false));
  EXPECT_FALSE(UseCacheKernels(KernelMode::kSwwc, /*tracer_enabled=*/true));
  EXPECT_FALSE(UseCacheKernels(KernelMode::kAuto, /*tracer_enabled=*/true));

  ASSERT_EQ(setenv("IAWJ_KERNELS", "scalar", 1), 0);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAuto), KernelMode::kScalar);
  EXPECT_FALSE(UseCacheKernels(KernelMode::kAuto, false));
  EXPECT_TRUE(UseCacheKernels(KernelMode::kSwwc, false));  // spec wins
  ASSERT_EQ(setenv("IAWJ_KERNELS", "swwc", 1), 0);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAuto), KernelMode::kSwwc);
  ASSERT_EQ(unsetenv("IAWJ_KERNELS"), 0);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAuto), KernelMode::kAuto);

  KernelMode parsed;
  EXPECT_TRUE(ParseKernelMode("auto", &parsed));
  EXPECT_EQ(parsed, KernelMode::kAuto);
  EXPECT_TRUE(ParseKernelMode("swwc", &parsed));
  EXPECT_EQ(parsed, KernelMode::kSwwc);
  EXPECT_TRUE(ParseKernelMode("simd", &parsed));
  EXPECT_EQ(parsed, KernelMode::kSimd);
  EXPECT_TRUE(ParseKernelMode("lockfree", &parsed));
  EXPECT_EQ(parsed, KernelMode::kLockfree);
  EXPECT_FALSE(ParseKernelMode("vectorized", &parsed));
}

// The per-site plan: what each mode resolves to, per phase — including the
// batched-build retirement (builds are scalar in every plan) and the
// tracer/AVX2 forcing rules.
TEST(KernelModeResolution, PlanPerPhaseVariants) {
  const KernelPlan scalar =
      ResolveKernelPlan(KernelMode::kScalar, /*tracer_enabled=*/false);
  EXPECT_EQ(scalar.mode, KernelMode::kScalar);
  EXPECT_FALSE(scalar.swwc_scatter);
  EXPECT_FALSE(scalar.batched_probe);
  EXPECT_FALSE(scalar.simd_probe);
  EXPECT_FALSE(scalar.lockfree_build);
  EXPECT_EQ(KernelScatterVariant(scalar), "scalar");
  EXPECT_EQ(KernelBuildVariant(scalar), "scalar");
  EXPECT_EQ(KernelProbeVariant(scalar), "scalar");

  const KernelPlan swwc =
      ResolveKernelPlan(KernelMode::kSwwc, /*tracer_enabled=*/false);
  EXPECT_TRUE(swwc.swwc_scatter);
  EXPECT_TRUE(swwc.batched_probe);
  // Satellite of the PR-4 regression fix: no plan batches builds anymore.
  EXPECT_EQ(KernelBuildVariant(swwc), "scalar");
  EXPECT_EQ(KernelProbeVariant(swwc), "batched");
  EXPECT_EQ(KernelScatterVariant(swwc), "swwc");

  const KernelPlan lockfree =
      ResolveKernelPlan(KernelMode::kLockfree, /*tracer_enabled=*/false);
  EXPECT_TRUE(lockfree.lockfree_build);
  EXPECT_TRUE(lockfree.swwc_scatter);
  EXPECT_EQ(KernelBuildVariant(lockfree), "lockfree");

  const KernelPlan simd =
      ResolveKernelPlan(KernelMode::kSimd, /*tracer_enabled=*/false);
  EXPECT_EQ(simd.simd_probe, kernels::SimdProbeSupported());
  if (simd.simd_probe) {
    EXPECT_EQ(KernelProbeVariant(simd), "simd");
  } else {
    // Non-AVX2 host: the plan degrades to the batched probe.
    EXPECT_EQ(KernelProbeVariant(simd), "batched");
  }

  // SimTracer runs force the all-scalar plan regardless of the knob.
  for (const KernelMode mode : kAllKernelModes) {
    const KernelPlan traced = ResolveKernelPlan(mode, /*tracer_enabled=*/true);
    EXPECT_EQ(traced.mode, KernelMode::kScalar);
    EXPECT_FALSE(traced.swwc_scatter);
    EXPECT_FALSE(traced.simd_probe);
    EXPECT_FALSE(traced.lockfree_build);
  }

  // The $IAWJ_SIMD_PROBE kill switch forces the runtime fallback.
  ASSERT_EQ(setenv("IAWJ_SIMD_PROBE", "0", 1), 0);
  const KernelPlan killed =
      ResolveKernelPlan(KernelMode::kSimd, /*tracer_enabled=*/false);
  EXPECT_FALSE(killed.simd_probe);
  EXPECT_EQ(KernelProbeVariant(killed), "batched");
  ASSERT_EQ(unsetenv("IAWJ_SIMD_PROBE"), 0);
}

}  // namespace
}  // namespace iawj
