// Tests for supervised execution (ISSUE 3): retry policy semantics, the
// fallback chain, bounded-loss window skipping, load shedding, differential
// recovery against the nested-loop reference, and the deadline-watchdog /
// run-record race regression.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/join/supervisor.h"
#include "src/join/window_pipeline.h"
#include "src/memory/tracker.h"

namespace iawj {
namespace {

// Faults and the supervision environment are process-global; every test
// starts and ends with both clean.
class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { Clean(); }
  void TearDown() override { Clean(); }

  static void Clean() {
    fault::Clear();
    mem::SetBudgetBytes(0);
    mem::SetBreachToken(nullptr);
    for (const char* var : {"IAWJ_RETRY", "IAWJ_FALLBACK", "IAWJ_SKIP_WINDOWS",
                            "IAWJ_SHED_WATERMARK", "IAWJ_DEADLINE_MS"}) {
      unsetenv(var);
    }
  }
};

MicroWorkload SmallWorkload() {
  MicroSpec spec;
  spec.size_r = 4000;
  spec.size_s = 4000;
  spec.window_ms = 100;
  spec.dupe = 4;
  spec.seed = 5;
  return GenerateMicro(spec);
}

JoinSpec SmallSpec() {
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  return spec;
}

ReferenceResult Reference(const MicroWorkload& w) {
  return NestedLoopJoin(w.r.view(), w.s.view());
}

// --- Retry policy -----------------------------------------------------------

TEST_F(SupervisorTest, RetryableCodeTable) {
  EXPECT_TRUE(IsRetryableCode(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kCancelled));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kDataLoss));
}

TEST_F(SupervisorTest, UnconfiguredPolicyIsDisabled) {
  const SupervisorPolicy policy = SupervisorPolicy::Resolve(JoinSpec{});
  EXPECT_FALSE(policy.Enabled());
  EXPECT_EQ(policy.retry.max_attempts, 1);
}

TEST_F(SupervisorTest, ResolvePrefersSpecOverEnvironment) {
  ASSERT_EQ(setenv("IAWJ_RETRY", "5:20:4", 1), 0);
  ASSERT_EQ(setenv("IAWJ_SHED_WATERMARK", "100:2", 1), 0);
  ASSERT_EQ(setenv("IAWJ_FALLBACK", "1", 1), 0);

  JoinSpec spec;
  const SupervisorPolicy from_env = SupervisorPolicy::Resolve(spec);
  EXPECT_EQ(from_env.retry.max_attempts, 5);
  EXPECT_DOUBLE_EQ(from_env.retry.backoff_base_ms, 20);
  EXPECT_DOUBLE_EQ(from_env.retry.backoff_multiplier, 4);
  EXPECT_TRUE(from_env.fallback);
  EXPECT_DOUBLE_EQ(from_env.shed_watermark_per_ms, 100);
  EXPECT_DOUBLE_EQ(from_env.shed_max_lag_ms, 2);

  spec.retry_max_attempts = 2;
  spec.retry_backoff_ms = 0;
  spec.shed_watermark_per_ms = -1;  // explicitly off, beats the environment
  const SupervisorPolicy from_spec = SupervisorPolicy::Resolve(spec);
  EXPECT_EQ(from_spec.retry.max_attempts, 2);
  EXPECT_DOUBLE_EQ(from_spec.retry.backoff_base_ms, 0);
  EXPECT_LE(from_spec.shed_watermark_per_ms, 0);  // env's 100/ms did not win
}

TEST_F(SupervisorTest, MalformedEnvironmentIsIgnored) {
  ASSERT_EQ(setenv("IAWJ_RETRY", "banana", 1), 0);
  ASSERT_EQ(setenv("IAWJ_SHED_WATERMARK", "x:y", 1), 0);
  const SupervisorPolicy policy = SupervisorPolicy::Resolve(JoinSpec{});
  EXPECT_EQ(policy.retry.max_attempts, 1);
  EXPECT_DOUBLE_EQ(policy.shed_watermark_per_ms, 0);
  EXPECT_FALSE(policy.Enabled());
}

TEST_F(SupervisorTest, NonRetryableCodeFailsWithoutRetry) {
  SupervisorPolicy policy;
  policy.retry.max_attempts = 5;
  int calls = 0;
  const RunResult result = SuperviseAttempts(
      AlgorithmId::kNpj, SmallSpec(), policy,
      [&](AlgorithmId, const JoinSpec&) {
        ++calls;
        RunResult r;
        r.status = Status::InvalidArgument("bad spec");
        return r;
      });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(result.recovery.attempts, 1);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SupervisorTest, RetryStopsAtMaxAttempts) {
  SupervisorPolicy policy;
  policy.retry.max_attempts = 3;
  int calls = 0;
  const RunResult result = SuperviseAttempts(
      AlgorithmId::kNpj, SmallSpec(), policy,
      [&](AlgorithmId, const JoinSpec&) {
        ++calls;
        RunResult r;
        r.status = Status::DeadlineExceeded("too slow");
        return r;
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.recovery.attempts, 3);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  int retries = 0;
  for (const RecoveryEvent& e : result.recovery.events) {
    if (e.action == RecoveryAction::kRetry) ++retries;
  }
  EXPECT_EQ(retries, 2);  // a retry event between consecutive attempts
}

TEST_F(SupervisorTest, TransientFailureRecovers) {
  SupervisorPolicy policy;
  policy.retry.max_attempts = 3;
  int calls = 0;
  const RunResult result = SuperviseAttempts(
      AlgorithmId::kNpj, SmallSpec(), policy,
      [&](AlgorithmId, const JoinSpec&) {
        RunResult r;
        if (++calls < 3) {
          r.status = Status::ResourceExhausted("transient");
        } else {
          r.matches = 42;
        }
        return r;
      });
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.matches, 42u);
  EXPECT_EQ(result.recovery.attempts, 3);
  EXPECT_TRUE(result.recovery.recovered());
  EXPECT_FALSE(result.recovery.degraded());
}

TEST_F(SupervisorTest, BackoffScheduleIsDeterministicInSeed) {
  SupervisorPolicy policy;
  policy.retry.max_attempts = 4;
  policy.retry.backoff_base_ms = 0.5;
  policy.seed = 77;
  const auto failing = [](AlgorithmId, const JoinSpec&) {
    RunResult r;
    r.status = Status::DeadlineExceeded("never");
    return r;
  };
  const auto backoffs = [](const RunResult& result) {
    std::vector<double> out;
    for (const RecoveryEvent& e : result.recovery.events) {
      if (e.action == RecoveryAction::kRetry) out.push_back(e.backoff_ms);
    }
    return out;
  };
  const std::vector<double> a =
      backoffs(SuperviseAttempts(AlgorithmId::kNpj, SmallSpec(), policy,
                                 failing));
  const std::vector<double> b =
      backoffs(SuperviseAttempts(AlgorithmId::kNpj, SmallSpec(), policy,
                                 failing));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);  // same seed, same jittered schedule
  // Exponential growth must survive the +/-50% jitter at these ratios.
  EXPECT_GT(a[1], a[0]);
  EXPECT_GT(a[2], a[1]);

  policy.seed = 78;
  const std::vector<double> c =
      backoffs(SuperviseAttempts(AlgorithmId::kNpj, SmallSpec(), policy,
                                 failing));
  EXPECT_NE(a, c);  // different seed, different jitter
}

// --- Fallback chain ---------------------------------------------------------

TEST_F(SupervisorTest, ResourceExhaustionFallsBackThroughHhjToNpj) {
  // Memory pressure first degrades to the spill-capable hybrid hash join
  // (same budget, disk-staged partitions); only when HHJ itself is starved
  // does the chain land on the smallest in-memory algorithm.
  SupervisorPolicy policy;
  policy.fallback = true;
  std::vector<AlgorithmId> tried;
  const RunResult result = SuperviseAttempts(
      AlgorithmId::kPrj, SmallSpec(), policy,
      [&](AlgorithmId id, const JoinSpec&) {
        tried.push_back(id);
        RunResult r;
        if (id != AlgorithmId::kNpj) {
          r.status = Status::ResourceExhausted("table too big");
        } else {
          r.matches = 7;
        }
        return r;
      });
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(tried.size(), 3u);
  EXPECT_EQ(tried[0], AlgorithmId::kPrj);
  EXPECT_EQ(tried[1], AlgorithmId::kHhj);
  EXPECT_EQ(tried[2], AlgorithmId::kNpj);
  EXPECT_EQ(result.recovery.fallbacks_taken, 2);
  EXPECT_TRUE(result.recovery.recovered());
  ASSERT_EQ(result.recovery.events.size(), 2u);
  EXPECT_EQ(result.recovery.events[0].action,
            RecoveryAction::kFallbackAlgorithm);
  EXPECT_EQ(result.recovery.events[0].detail, "PRJ -> HHJ (spill)");
  EXPECT_EQ(result.recovery.events[1].detail, "HHJ -> NPJ");
}

TEST_F(SupervisorTest, DeadlinePressureHalvesRadixBitsThenThreads) {
  SupervisorPolicy policy;
  policy.fallback = true;
  policy.max_fallback_steps = 8;
  JoinSpec spec = SmallSpec();
  spec.num_threads = 4;
  spec.radix_bits = 8;
  std::vector<std::pair<int, int>> configs;  // (radix_bits, num_threads)
  const RunResult result = SuperviseAttempts(
      AlgorithmId::kPrj, spec, policy,
      [&](AlgorithmId, const JoinSpec& s) {
        configs.emplace_back(s.radix_bits, s.num_threads);
        RunResult r;
        r.status = Status::DeadlineExceeded("always late");
        return r;
      });
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  // 8 bits/4 threads -> 4 bits/4 threads -> 4/2 -> 4/1, then out of moves.
  const std::vector<std::pair<int, int>> want = {
      {8, 4}, {4, 4}, {4, 2}, {4, 1}};
  EXPECT_EQ(configs, want);
  EXPECT_EQ(result.recovery.fallbacks_taken, 3);
}

TEST_F(SupervisorTest, ThreadHalvingKeepsJbGroupingValid) {
  SupervisorPolicy policy;
  policy.fallback = true;
  JoinSpec spec = SmallSpec();
  spec.num_threads = 2;
  spec.jb_group_size = 2;
  const RunResult result = SuperviseAttempts(
      AlgorithmId::kShjJb, spec, policy,
      [&](AlgorithmId id, const JoinSpec& s) {
        // Every attempted configuration must itself be valid.
        EXPECT_TRUE(s.Validate(id).ok()) << s.num_threads;
        RunResult r;
        r.status = Status::DeadlineExceeded("always late");
        return r;
      });
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.recovery.fallbacks_taken, 1);  // threads 2 -> 1
}

// --- Differential recovery (every algorithm x retryable fault site) --------

TEST_F(SupervisorTest, AllocFaultRecoversToReferenceForAllAlgorithms) {
  const MicroWorkload w = SmallWorkload();
  const ReferenceResult ref = Reference(w);
  JoinSpec spec = SmallSpec();
  spec.retry_max_attempts = 2;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    ASSERT_TRUE(fault::Configure("alloc:1").ok());
    Supervisor supervisor;
    const RunResult result = supervisor.Run(id, w.r, w.s, spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    // Recovered exactly: the retry neither duplicates nor drops matches.
    EXPECT_EQ(result.matches, ref.matches);
    EXPECT_EQ(result.checksum, ref.checksum);
    EXPECT_EQ(result.recovery.attempts, 2);
    EXPECT_TRUE(result.recovery.recovered());
    fault::Clear();
  }
}

TEST_F(SupervisorTest, WorkerStallRecoversToReferenceForAllAlgorithms) {
  const MicroWorkload w = SmallWorkload();
  const ReferenceResult ref = Reference(w);
  JoinSpec spec = SmallSpec();
  spec.retry_max_attempts = 2;
  spec.deadline_ms = 200;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    ASSERT_TRUE(fault::Configure("worker_stall:1").ok());
    Supervisor supervisor;
    const RunResult result = supervisor.Run(id, w.r, w.s, spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.matches, ref.matches);
    EXPECT_EQ(result.checksum, ref.checksum);
    EXPECT_TRUE(result.recovery.recovered());
    fault::Clear();
  }
}

TEST_F(SupervisorTest, EagerStallRecoversToReferenceForEagerAlgorithms) {
  const MicroWorkload w = SmallWorkload();
  const ReferenceResult ref = Reference(w);
  JoinSpec spec = SmallSpec();
  spec.retry_max_attempts = 2;
  spec.deadline_ms = 200;
  for (AlgorithmId id : {AlgorithmId::kShjJm, AlgorithmId::kShjJb,
                         AlgorithmId::kPmjJm, AlgorithmId::kPmjJb}) {
    SCOPED_TRACE(AlgorithmName(id));
    ASSERT_TRUE(fault::Configure("eager_stall:1").ok());
    Supervisor supervisor;
    const RunResult result = supervisor.Run(id, w.r, w.s, spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.matches, ref.matches);
    EXPECT_EQ(result.checksum, ref.checksum);
    EXPECT_TRUE(result.recovery.recovered());
    fault::Clear();
  }
}

TEST_F(SupervisorTest, PersistentExhaustionFallsBackToHhjAndMatches) {
  // Asymmetric workload: NPJ only builds a table over the small R side,
  // while PRJ scatters copies of both relations — so a budget can sit
  // between the two footprints. Under that budget the first fallback step,
  // HHJ, completes the window exactly by staging cold partitions on disk,
  // so the chain never needs to reach NPJ.
  MicroSpec mspec;
  mspec.size_r = 500;
  mspec.size_s = 40000;
  mspec.window_ms = 100;
  mspec.dupe = 4;
  mspec.seed = 5;
  const MicroWorkload w = GenerateMicro(mspec);
  const ReferenceResult ref = Reference(w);
  JoinRunner runner;
  // Measure both footprints, then set the budget between them: PRJ is
  // persistently starved, NPJ fits, so the fallback produces the exact
  // answer with the smaller algorithm.
  const RunResult npj = runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  const RunResult prj = runner.Run(AlgorithmId::kPrj, w.r, w.s, SmallSpec());
  ASSERT_TRUE(npj.status.ok());
  ASSERT_TRUE(prj.status.ok());
  ASSERT_GT(prj.peak_tracked_bytes, npj.peak_tracked_bytes);

  JoinSpec spec = SmallSpec();
  spec.fallback_enabled = true;
  mem::SetBudgetBytes(
      (npj.peak_tracked_bytes + prj.peak_tracked_bytes) / 2);
  Supervisor supervisor;
  const RunResult result = supervisor.Run(AlgorithmId::kPrj, w.r, w.s, spec);
  mem::SetBudgetBytes(0);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.recovery.fallbacks_taken, 1);
  EXPECT_EQ(result.algorithm, "HHJ");
  EXPECT_EQ(result.matches, ref.matches);
  EXPECT_EQ(result.checksum, ref.checksum);
  ASSERT_FALSE(result.recovery.events.empty());
  EXPECT_EQ(result.recovery.events.back().action,
            RecoveryAction::kFallbackAlgorithm);
  EXPECT_EQ(result.recovery.events.back().detail, "PRJ -> HHJ (spill)");
  // Spilling is the whole point of the step: the result must say so.
  EXPECT_TRUE(result.spill.any());
}

// --- Window-level supervision ----------------------------------------------

MicroWorkload PipelineWorkload() {
  MicroSpec spec;
  spec.size_r = 4000;
  spec.size_s = 4000;
  spec.window_ms = 100;
  spec.dupe = 4;
  spec.seed = 5;
  return GenerateMicro(spec);
}

TEST_F(SupervisorTest, SkipPolicyBoundsTheLossOfOnePoisonedWindow) {
  const MicroWorkload w = PipelineWorkload();
  JoinSpec spec = SmallSpec();
  spec.window_ms = 25;  // four tumbling windows

  const PipelineResult clean =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(clean.status.ok());
  ASSERT_EQ(clean.windows.size(), 4u);

  ASSERT_TRUE(fault::Configure("window_fail:2").ok());
  spec.skip_failed_windows = true;
  const PipelineResult skipped =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(skipped.status.ok()) << skipped.status.ToString();
  ASSERT_EQ(skipped.windows.size(), 4u);
  EXPECT_EQ(skipped.recovery.windows_skipped, 1u);
  EXPECT_GT(skipped.recovery.tuples_dropped, 0u);
  EXPECT_GT(skipped.recovery.est_matches_lost, 0.0);
  EXPECT_TRUE(skipped.recovery.degraded());
  // The loss is exactly the skipped window's contribution.
  EXPECT_EQ(skipped.total_matches,
            clean.total_matches - clean.windows[1].result.matches);
  EXPECT_EQ(skipped.recovery.tuples_dropped, clean.windows[1].result.inputs);
}

TEST_F(SupervisorTest, RetryClearsTransientWindowFaultWithoutSkipping) {
  const MicroWorkload w = PipelineWorkload();
  JoinSpec spec = SmallSpec();
  spec.window_ms = 25;
  const PipelineResult clean =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);

  ASSERT_TRUE(fault::Configure("window_fail:2").ok());
  spec.retry_max_attempts = 2;
  spec.skip_failed_windows = true;
  const PipelineResult retried =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  // The one-shot fault cleared on retry: nothing skipped, totals exact.
  EXPECT_EQ(retried.recovery.windows_skipped, 0u);
  EXPECT_EQ(retried.total_matches, clean.total_matches);
  EXPECT_EQ(retried.total_checksum, clean.total_checksum);
  EXPECT_TRUE(retried.recovery.recovered());
}

TEST_F(SupervisorTest, PersistentWindowFaultSkipsEveryWindow) {
  const MicroWorkload w = PipelineWorkload();
  ASSERT_TRUE(fault::Configure("window_fail:1:0").ok());
  JoinSpec spec = SmallSpec();
  spec.window_ms = 25;
  spec.skip_failed_windows = true;
  const PipelineResult pipeline =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(pipeline.status.ok());
  EXPECT_EQ(pipeline.recovery.windows_skipped, pipeline.windows.size());
  EXPECT_EQ(pipeline.total_matches, 0u);
  EXPECT_EQ(pipeline.recovery.tuples_dropped, uint64_t{8000});
}

TEST_F(SupervisorTest, WithoutSkipPolicyPipelineStillFailsStop) {
  const MicroWorkload w = PipelineWorkload();
  ASSERT_TRUE(fault::Configure("window_fail:2").ok());
  JoinSpec spec = SmallSpec();
  spec.window_ms = 25;
  const PipelineResult pipeline =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);
  EXPECT_EQ(pipeline.status.code(), StatusCode::kInternal);
  ASSERT_EQ(pipeline.windows.size(), 2u);
  EXPECT_EQ(pipeline.recovery.windows_skipped, 0u);
}

// --- Load shedding ----------------------------------------------------------

TEST_F(SupervisorTest, ShedRunMatchesReferenceOverShedStreams) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec = SmallSpec();
  spec.shed_watermark_per_ms = 10;  // well below the ~40/ms arrival rate
  Supervisor supervisor;
  const RunResult result =
      supervisor.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.recovery.tuples_shed, 0u);
  EXPECT_GT(result.recovery.shed_ratio, 0.0);
  EXPECT_LE(result.recovery.shed_ratio, 1.0);
  EXPECT_TRUE(result.recovery.degraded());

  // The shed inputs are deterministic: recomputing them yields the exact
  // result the supervised run produced.
  const ShedResult shed_r =
      ShedToWatermark(w.r, 10, 1.0, spec.supervisor_seed);
  const ShedResult shed_s =
      ShedToWatermark(w.s, 10, 1.0, spec.supervisor_seed + 1);
  EXPECT_EQ(result.recovery.tuples_shed,
            shed_r.tuples_shed + shed_s.tuples_shed);
  const ReferenceResult ref =
      NestedLoopJoin(shed_r.stream.view(), shed_s.stream.view());
  EXPECT_EQ(result.matches, ref.matches);
  EXPECT_EQ(result.checksum, ref.checksum);
}

// --- Zero-overhead contract -------------------------------------------------

TEST_F(SupervisorTest, UnsupervisedRunIsUntouchedByTheSupervisor) {
  const MicroWorkload w = SmallWorkload();
  JoinRunner runner;
  const RunResult plain =
      runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  Supervisor supervisor;
  const RunResult supervised =
      supervisor.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(supervised.status.ok());
  EXPECT_EQ(supervised.matches, plain.matches);
  EXPECT_EQ(supervised.checksum, plain.checksum);
  // No policy: nothing was counted and nothing allocated.
  EXPECT_EQ(supervised.recovery.attempts, 0);
  EXPECT_TRUE(supervised.recovery.events.empty());
  EXPECT_TRUE(supervised.recovery.empty());
}

// --- Watchdog / run-record race (ISSUE 3 satellite) -------------------------

TEST_F(SupervisorTest, DeadlineNearRuntimeNeverFailsACompletedRun) {
  const MicroWorkload w = SmallWorkload();
  JoinRunner runner;
  const RunResult baseline =
      runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  ASSERT_TRUE(baseline.status.ok());

  // A 1 ms deadline races the actual runtime. Whichever side wins, the
  // result must be coherent: a completed run keeps its full answer and OK
  // status (the watchdog must not cancel retroactively), a cancelled run
  // carries deadline_exceeded naming at least one unfinished worker,
  // exactly once.
  JoinSpec spec = SmallSpec();
  spec.deadline_ms = 1;
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
    if (result.status.ok()) {
      ++completed;
      EXPECT_EQ(result.matches, baseline.matches);
      EXPECT_EQ(result.checksum, baseline.checksum);
    } else {
      ASSERT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
      const std::string message(result.status.message());
      const size_t first = message.find("unfinished workers: w");
      ASSERT_NE(first, std::string::npos) << message;
      EXPECT_EQ(message.find("unfinished", first + 1), std::string::npos)
          << message;
    }
  }
  // Not asserted, but useful when debugging flaky timing:
  SCOPED_TRACE("completed " + std::to_string(completed) + "/40");
}

}  // namespace
}  // namespace iawj
