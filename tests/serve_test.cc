// Tests for the iawj_serve daemon stack (ISSUE 10): wire protocol
// round-trips, the multi-tenant differential proof (a daemon tenant is
// byte-identical to the same spec run through the offline tumbling-window
// pipeline), typed admission refusals, drain completeness, fair-share
// non-starvation, v9 run-record serve blocks, and the iawj_serve help-table
// drift check.
#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/datagen/micro.h"
#include "src/join/context.h"
#include "src/join/window_pipeline.h"
#include "src/serve/client.h"
#include "src/serve/pool.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "tools/serve_flags.h"

namespace iawj {
namespace {

// Each test gets its own socket so parallel ctest shards never collide.
std::string TestSocketPath(const std::string& tag) {
  return testing::TempDir() + "/iawj_serve_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

MicroWorkload TestWorkload(uint64_t seed, uint64_t rate = 300,
                           uint32_t duration_ms = 12) {
  MicroSpec micro;
  micro.rate_r = rate;
  micro.rate_s = rate;
  micro.window_ms = duration_ms;  // stream duration, not the join window
  micro.dupe = 2.0;
  micro.seed = seed;
  return GenerateMicro(micro);
}

JoinSpec TestSpec(uint32_t window_ms = 4) {
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = window_ms;
  // Pin the policies off so ambient IAWJ_* env cannot skew expectations.
  spec.shed_watermark_per_ms = -1;
  spec.disorder_slack_ms = -1;
  spec.allowed_lateness_ms = -1;
  return spec;
}

// Streams the workload in `chunks` timeline slices, ends, and returns the
// first non-ok status (or Ok).
Status DriveTenant(const std::string& socket, const std::string& name,
                   AlgorithmId id, const JoinSpec& spec,
                   const MicroWorkload& w, serve::ServeClient* client,
                   int chunks = 3) {
  serve::TenantSpec tenant;
  tenant.name = name;
  tenant.algo = id;
  tenant.spec = spec;
  if (Status s = client->Connect(socket); !s.ok()) return s;
  if (Status s = client->Hello(tenant); !s.ok()) return s;
  const uint64_t max_ts = std::max<uint64_t>(w.r.MaxTs(), w.s.MaxTs());
  const uint64_t step = max_ts / static_cast<uint64_t>(chunks) + 1;
  size_t ir = 0, is = 0;
  for (uint64_t t = 0; t <= max_ts && !client->drained(); t += step) {
    const size_t ir0 = ir, is0 = is;
    while (ir < w.r.tuples.size() && w.r.tuples[ir].ts < t + step) ++ir;
    while (is < w.s.tuples.size() && w.s.tuples[is].ts < t + step) ++is;
    if (Status s = client->SendBatch(
            std::span<const Tuple>(w.r.tuples.data() + ir0, ir - ir0),
            std::span<const Tuple>(w.s.tuples.data() + is0, is - is0));
        !s.ok()) {
      return s;
    }
  }
  return client->End();
}

// --- Protocol round-trips -------------------------------------------------

TEST(ServeProtocol, OversizedNewlineFreeFrameIsRefusedTyped) {
  // A peer streaming bytes with no newline must hit the framing limit and
  // get a typed refusal, not grow the reader's buffer without bound.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  serve::FrameReader reader(fds[0], /*max_frame_bytes=*/1024);
  const std::string blob(2048, 'x');  // no newline anywhere
  ASSERT_EQ(::write(fds[1], blob.data(), blob.size()),
            static_cast<ssize_t>(blob.size()));
  std::string frame;
  bool eof = false;
  const Status status = reader.ReadFrame(&frame, &eof);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, WindowChecksumSurvivesFullUint64) {
  // Mix64 checksums use all 64 bits; a JSON number would truncate past
  // 2^53, so the wire carries checksums as decimal strings.
  serve::WindowResult window;
  window.window_index = 3;
  window.window_start_ms = 12;
  window.algorithm = "PRJ";
  window.inputs = 1000;
  window.matches = 17;
  window.checksum = 0xFFFFFFFFFFFFFFF0ull;  // far beyond 2^53
  window.wait_ms = 0.25;
  window.worker = 2;
  window.stolen = true;

  json::Value parsed;
  ASSERT_TRUE(json::Parse(serve::WindowJson(window), &parsed).ok());
  serve::WindowResult back;
  ASSERT_TRUE(serve::ParseWindow(parsed, &back).ok());
  EXPECT_EQ(back.checksum, 0xFFFFFFFFFFFFFFF0ull);
  EXPECT_EQ(back.window_index, 3u);
  EXPECT_EQ(back.matches, 17u);
  EXPECT_EQ(back.algorithm, "PRJ");
  EXPECT_TRUE(back.stolen);
  EXPECT_EQ(back.worker, 2);
}

TEST(ServeProtocol, HelloRoundTripsEveryAnswerAffectingKnob) {
  serve::TenantSpec tenant;
  tenant.name = "rt";
  tenant.algo = AlgorithmId::kPmjJb;
  tenant.spec = TestSpec(7);
  tenant.spec.num_threads = 4;
  tenant.spec.jb_group_size = 2;
  tenant.spec.radix_bits = 9;
  tenant.spec.retry_max_attempts = 3;
  tenant.spec.fallback_enabled = true;

  json::Value parsed;
  ASSERT_TRUE(json::Parse(tenant.ToHelloJson(), &parsed).ok());
  serve::TenantSpec back;
  ASSERT_TRUE(serve::TenantSpec::FromHello(parsed, &back).ok());
  EXPECT_EQ(back.name, "rt");
  EXPECT_EQ(back.algo, AlgorithmId::kPmjJb);
  EXPECT_EQ(back.spec.num_threads, 4);
  EXPECT_EQ(back.spec.window_ms, 7u);
  EXPECT_EQ(back.spec.jb_group_size, 2);
  EXPECT_EQ(back.spec.radix_bits, 9);
  EXPECT_EQ(back.spec.retry_max_attempts, 3);
  EXPECT_TRUE(back.spec.fallback_enabled);
}

// --- The differential proof ----------------------------------------------

// N tenants running concurrently through one daemon must each be
// byte-identical — window for window — to the same spec run sequentially
// through the offline pipeline. This is the tentpole invariant.
TEST(ServeDifferential, ConcurrentTenantsMatchOfflineByteExact) {
  const struct {
    const char* name;
    AlgorithmId id;
    uint64_t seed;
    uint32_t window_ms;
  } kTenants[] = {
      {"alpha", AlgorithmId::kNpj, 11, 3},
      {"bravo", AlgorithmId::kPrj, 22, 4},
      {"charlie", AlgorithmId::kShjJm, 33, 5},
  };

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("diff");
  options.pool_threads = 2;
  options.max_tenants = 3;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<MicroWorkload> workloads;
  std::vector<PipelineResult> offline;
  std::vector<JoinSpec> specs;
  for (const auto& t : kTenants) {
    workloads.push_back(TestWorkload(t.seed));
    specs.push_back(TestSpec(t.window_ms));
    offline.push_back(RunTumblingWindows(t.id, workloads.back().r,
                                         workloads.back().s, specs.back()));
    ASSERT_TRUE(offline.back().status.ok());
    ASSERT_GT(offline.back().windows.size(), 1u);
  }

  std::vector<serve::ServeClient> clients(3);
  std::vector<Status> statuses(3);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      statuses[i] = DriveTenant(options.socket_path, kTenants[i].name,
                                kTenants[i].id, specs[i], workloads[i],
                                &clients[i]);
    });
  }
  for (auto& t : threads) t.join();
  server.Shutdown();

  for (size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(kTenants[i].name);
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    const auto& windows = clients[i].windows();
    ASSERT_EQ(windows.size(), offline[i].windows.size());
    for (size_t wi = 0; wi < windows.size(); ++wi) {
      SCOPED_TRACE("window " + std::to_string(wi));
      const WindowRun& expect = offline[i].windows[wi];
      EXPECT_EQ(windows[wi].window_index, expect.window_index);
      EXPECT_EQ(windows[wi].window_start_ms, expect.window_start_ms);
      EXPECT_EQ(windows[wi].inputs, expect.result.inputs);
      EXPECT_EQ(windows[wi].matches, expect.result.matches);
      EXPECT_EQ(windows[wi].checksum, expect.result.checksum);
      EXPECT_TRUE(windows[wi].ok()) << windows[wi].status_code;
    }
    EXPECT_EQ(clients[i].totals().matches, offline[i].total_matches);
    EXPECT_EQ(clients[i].totals().checksum, offline[i].total_checksum);
    EXPECT_EQ(clients[i].totals().inputs, offline[i].total_inputs);
  }
  EXPECT_EQ(server.stats().tenants_admitted, 3u);
  EXPECT_EQ(server.stats().windows_done,
            offline[0].windows.size() + offline[1].windows.size() +
                offline[2].windows.size());
}

// --- Typed admission refusals --------------------------------------------

TEST(ServeAdmission, TenantLimitRefusalIsResourceExhausted) {
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("limit");
  options.pool_threads = 1;
  options.max_tenants = 1;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  serve::TenantSpec first;
  first.name = "first";
  first.spec = TestSpec();
  serve::ServeClient a;
  ASSERT_TRUE(a.Connect(options.socket_path).ok());
  ASSERT_TRUE(a.Hello(first).ok());

  serve::TenantSpec second = first;
  second.name = "second";
  serve::ServeClient b;
  ASSERT_TRUE(b.Connect(options.socket_path).ok());
  const Status refused = b.Hello(second);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted)
      << refused.ToString();

  // The slot frees when the first tenant leaves; admission is a gauge, not
  // a ratchet.
  ASSERT_TRUE(a.End().ok());
  a.Close();
  serve::ServeClient c;
  ASSERT_TRUE(c.Connect(options.socket_path).ok());
  EXPECT_TRUE(c.Hello(second).ok());
  EXPECT_TRUE(c.End().ok());
  server.Shutdown();
  EXPECT_EQ(server.stats().tenants_rejected, 1u);
}

TEST(ServeAdmission, OutOfOrderBatchWithoutIngestPolicyIsInvalidArgument) {
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("order");
  options.pool_threads = 1;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  serve::TenantSpec tenant;
  tenant.name = "strict";
  tenant.spec = TestSpec();
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  ASSERT_TRUE(client.Hello(tenant).ok());

  const Tuple ahead[] = {{10, 1}};
  const Tuple behind[] = {{5, 2}};  // regression: 5 after 10
  ASSERT_TRUE(client
                  .SendBatch(std::span<const Tuple>(ahead, 1),
                             std::span<const Tuple>())
                  .ok());
  const Status refused = client.SendBatch(std::span<const Tuple>(behind, 1),
                                          std::span<const Tuple>());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument)
      << refused.ToString();

  // The refusal is per-batch: the connection stays usable and the accepted
  // tuple still seals.
  ASSERT_TRUE(client.End().ok());
  EXPECT_EQ(client.totals().inputs, 1u);
  server.Shutdown();
  EXPECT_EQ(server.stats().batches_rejected, 1u);
}

TEST(ServeAdmission, HelloWhileDrainingIsFailedPrecondition) {
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("drainhello");
  options.pool_threads = 1;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.RequestDrain();

  serve::TenantSpec tenant;
  tenant.name = "late";
  tenant.spec = TestSpec();
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  const Status refused = client.Hello(tenant);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
  server.Shutdown();
}

// --- Drain completeness ---------------------------------------------------

// A drain must seal everything the daemon acked: the client that streamed
// half its workload gets exactly the offline answer over that half, via a
// spontaneous window/bye tail instead of a batch ack.
TEST(ServeDrain, MidStreamDrainSealsEveryAckedTuple) {
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("drain");
  options.pool_threads = 2;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const MicroWorkload w = TestWorkload(77);
  const JoinSpec spec = TestSpec(3);

  serve::TenantSpec tenant;
  tenant.name = "half";
  tenant.algo = AlgorithmId::kNpj;
  tenant.spec = spec;
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  ASSERT_TRUE(client.Hello(tenant).ok());

  // First half of the timeline, acked before the drain starts.
  const uint64_t mid = std::max<uint64_t>(w.r.MaxTs(), w.s.MaxTs()) / 2;
  size_t ir = 0, is = 0;
  while (ir < w.r.tuples.size() && w.r.tuples[ir].ts < mid) ++ir;
  while (is < w.s.tuples.size() && w.s.tuples[is].ts < mid) ++is;
  ASSERT_TRUE(client
                  .SendBatch(std::span<const Tuple>(w.r.tuples.data(), ir),
                             std::span<const Tuple>(w.s.tuples.data(), is))
                  .ok());

  server.RequestDrain();

  // The next batch meets the drain: the daemon answers with the sealed tail
  // for what it acked, never an error.
  ASSERT_TRUE(client
                  .SendBatch(std::span<const Tuple>(w.r.tuples.data() + ir,
                                                    w.r.tuples.size() - ir),
                             std::span<const Tuple>(w.s.tuples.data() + is,
                                                    w.s.tuples.size() - is))
                  .ok());
  EXPECT_TRUE(client.drained());
  ASSERT_TRUE(client.End().ok());  // no-op after a drain
  server.Shutdown();

  Stream half_r, half_s;
  half_r.tuples.assign(w.r.tuples.begin(), w.r.tuples.begin() + ir);
  half_s.tuples.assign(w.s.tuples.begin(), w.s.tuples.begin() + is);
  const PipelineResult offline =
      RunTumblingWindows(AlgorithmId::kNpj, half_r, half_s, spec);
  ASSERT_TRUE(offline.status.ok());
  EXPECT_EQ(client.windows().size(), offline.windows.size());
  EXPECT_EQ(client.totals().matches, offline.total_matches);
  EXPECT_EQ(client.totals().checksum, offline.total_checksum);
}

// --- Fair share -----------------------------------------------------------

// A hot tenant saturating the pool must not starve a quiet one: both finish
// byte-exact, and the pool's service accounting shows work crossing tenant
// homes (the tenants really share workers).
TEST(ServeFairShare, HotTenantDoesNotStarveQuietTenant) {
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("fair");
  options.pool_threads = 2;
  options.max_inflight = 2;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const MicroWorkload hot_w = TestWorkload(101, /*rate=*/600,
                                           /*duration_ms=*/24);
  const MicroWorkload quiet_w = TestWorkload(202, /*rate=*/100,
                                             /*duration_ms=*/12);
  const JoinSpec hot_spec = TestSpec(2);    // many small windows
  const JoinSpec quiet_spec = TestSpec(6);  // a few windows
  const PipelineResult hot_offline =
      RunTumblingWindows(AlgorithmId::kNpj, hot_w.r, hot_w.s, hot_spec);
  const PipelineResult quiet_offline = RunTumblingWindows(
      AlgorithmId::kNpj, quiet_w.r, quiet_w.s, quiet_spec);
  ASSERT_GT(hot_offline.windows.size(), quiet_offline.windows.size());

  serve::ServeClient hot, quiet;
  Status hot_status, quiet_status;
  std::thread hot_thread([&] {
    hot_status = DriveTenant(options.socket_path, "hot", AlgorithmId::kNpj,
                             hot_spec, hot_w, &hot, /*chunks=*/6);
  });
  std::thread quiet_thread([&] {
    quiet_status = DriveTenant(options.socket_path, "quiet",
                               AlgorithmId::kNpj, quiet_spec, quiet_w,
                               &quiet, /*chunks=*/3);
  });
  hot_thread.join();
  quiet_thread.join();
  server.Shutdown();

  ASSERT_TRUE(hot_status.ok()) << hot_status.ToString();
  ASSERT_TRUE(quiet_status.ok()) << quiet_status.ToString();
  EXPECT_EQ(hot.totals().matches, hot_offline.total_matches);
  EXPECT_EQ(hot.totals().checksum, hot_offline.total_checksum);
  EXPECT_EQ(quiet.totals().matches, quiet_offline.total_matches);
  EXPECT_EQ(quiet.totals().checksum, quiet_offline.total_checksum);
  EXPECT_EQ(quiet.windows().size(), quiet_offline.windows.size());
}

// Regression: tenant queues must stay address-stable while jobs run. The
// pool once kept tenants in a std::vector, so a concurrent AddTenant (any
// new client hello) could reallocate it under a worker's feet — dangling
// the queue reference its post-job accounting wrote through. This churn
// (every thread registering tenants while every other thread's jobs are in
// flight) trips that as a use-after-free under TSan/ASan.
TEST(ServePool, TenantChurnWhileJobsRunIsSafe) {
  serve::FairSharePool pool;
  pool.Start(/*threads=*/4, /*max_inflight=*/2);
  constexpr int kTenantThreads = 8, kRounds = 25, kJobsPerRound = 3;
  std::atomic<uint64_t> executed{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kTenantThreads);
  for (int t = 0; t < kTenantThreads; ++t) {
    tenants.emplace_back([&pool, &executed, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int slot = pool.AddTenant("churn-" + std::to_string(t));
        for (int j = 0; j < kJobsPerRound; ++j) {
          ASSERT_TRUE(pool.Submit(slot, [&executed](int, bool, double) {
            executed.fetch_add(1, std::memory_order_relaxed);
          }));
        }
        pool.WaitIdle(slot);
        pool.RemoveTenant(slot);
        // The drained slot is reclaimed: stale ids read as gone, not as
        // some later tenant's account.
        EXPECT_EQ(pool.TenantServiceNs(slot), 0u);
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  const uint64_t expected =
      static_cast<uint64_t>(kTenantThreads) * kRounds * kJobsPerRound;
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(pool.stats().jobs_done, expected);
  pool.Stop();
}

// --- v9 run records -------------------------------------------------------

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> entries;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return entries;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") entries.push_back(dir + "/" + name);
  }
  closedir(d);
  return entries;
}

TEST(ServeRecords, EveryTenantWindowWritesAV9ServeBlock) {
  const std::string dir = testing::TempDir() + "/iawj_serve_records_" +
                          std::to_string(::getpid());
  setenv("IAWJ_METRICS_DIR", dir.c_str(), 1);

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("records");
  options.pool_threads = 1;
  serve::ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const MicroWorkload w = TestWorkload(55);
  serve::ServeClient client;
  const Status status = DriveTenant(options.socket_path, "recorded",
                                    AlgorithmId::kNpj, TestSpec(4), w,
                                    &client);
  server.Shutdown();
  unsetenv("IAWJ_METRICS_DIR");
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_GT(client.windows().size(), 1u);

  const std::vector<std::string> files = ListDir(dir);
  ASSERT_EQ(files.size(), client.windows().size())
      << "one v9 record per tenant window";
  std::set<uint64_t> indices;
  for (const std::string& path : files) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json::Value record;
    ASSERT_TRUE(json::Parse(buffer.str(), &record).ok()) << path;
    EXPECT_GE(record.Find("record_version")->number, 9);
    EXPECT_EQ(record.Find("bench")->string, "iawj_serve");
    EXPECT_EQ(record.Find("workload")->string, "recorded");
    const json::Value* serve = record.Find("serve");
    ASSERT_NE(serve, nullptr) << path << " missing the serve block";
    EXPECT_EQ(serve->Find("tenant")->string, "recorded");
    EXPECT_GE(serve->Find("tenants_active")->number, 1);
    EXPECT_GE(serve->Find("worker")->number, 0);
    EXPECT_GE(serve->Find("wait_ms")->number, 0);
    indices.insert(
        static_cast<uint64_t>(serve->Find("window_index")->number));
  }
  EXPECT_EQ(indices.size(), client.windows().size())
      << "serve blocks must cover every distinct window";
}

// --- Options resolution ---------------------------------------------------

TEST(ServeOptions, FlagBeatsEnvBeatsDefault) {
  unsetenv("IAWJ_SERVE_POOL_THREADS");
  EXPECT_EQ(serve::ServeOptions::Resolve({}).pool_threads, 4);  // default

  setenv("IAWJ_SERVE_POOL_THREADS", "7", 1);
  EXPECT_EQ(serve::ServeOptions::Resolve({}).pool_threads, 7);  // env

  serve::ServeOptions flags;
  flags.pool_threads = 2;
  EXPECT_EQ(serve::ServeOptions::Resolve(flags).pool_threads, 2);  // flag
  unsetenv("IAWJ_SERVE_POOL_THREADS");

  setenv("IAWJ_SERVE_MEM_SHARE", "2.5", 1);  // clamped to 1.0
  EXPECT_DOUBLE_EQ(serve::ServeOptions::Resolve({}).mem_share, 1.0);
  unsetenv("IAWJ_SERVE_MEM_SHARE");
}

// --- Help-table drift (tools/serve_flags.h vs tools/iawj_serve.cc) -------

TEST(ServeFlags, HelpTextListsEveryTableEntryOnce) {
  const std::string help = serve_cli::HelpText();
  for (const serve_cli::FlagInfo& f : serve_cli::kFlags) {
    EXPECT_NE(help.find("--" + std::string(f.name)), std::string::npos)
        << "--" << f.name << " missing from HelpText()";
  }
  EXPECT_NE(help.find("usage:"), std::string::npos);
  EXPECT_NE(help.find("Exit codes"), std::string::npos);
}

// Same two-way drift check flags_test runs for iawj_cli: the set of flags
// iawj_serve.cc consumes must equal its help table exactly.
TEST(ServeFlags, HelpTableMatchesFlagsConsumedByDaemon) {
  const std::string path =
      std::string(IAWJ_SOURCE_DIR) + "/tools/iawj_serve.cc";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  std::set<std::string> consumed;
  const std::regex get_call(
      R"(flags\.Get(?:String|Int|Double|Bool)\(\s*\"([a-z0-9-]+)\")");
  for (auto it = std::sregex_iterator(source.begin(), source.end(), get_call);
       it != std::sregex_iterator(); ++it) {
    consumed.insert((*it)[1].str());
  }
  ASSERT_FALSE(consumed.empty()) << "no flags.Get* calls found in " << path;

  std::set<std::string> documented;
  for (const serve_cli::FlagInfo& f : serve_cli::kFlags) {
    EXPECT_TRUE(documented.insert(f.name).second)
        << "duplicate help-table entry --" << f.name;
  }
  for (const std::string& name : consumed) {
    EXPECT_TRUE(documented.count(name))
        << "--" << name << " consumed by iawj_serve.cc but missing from "
        << "tools/serve_flags.h";
  }
  for (const std::string& name : documented) {
    EXPECT_TRUE(consumed.count(name))
        << "--" << name << " documented in tools/serve_flags.h but never "
        << "consumed by iawj_serve.cc";
  }
}

}  // namespace
}  // namespace iawj
