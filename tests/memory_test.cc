// Unit tests for the memory tracker and tracked buffer.
#include <gtest/gtest.h>

#include <utility>

#include "src/memory/tracker.h"

namespace iawj {
namespace {

TEST(Tracker, AddPeakReset) {
  mem::Reset();
  EXPECT_EQ(mem::CurrentBytes(), 0);
  mem::Add(100);
  mem::Add(50);
  EXPECT_EQ(mem::CurrentBytes(), 150);
  EXPECT_EQ(mem::PeakBytes(), 150);
  mem::Add(-120);
  EXPECT_EQ(mem::CurrentBytes(), 30);
  EXPECT_EQ(mem::PeakBytes(), 150);
  mem::Reset();
  EXPECT_EQ(mem::CurrentBytes(), 0);
  EXPECT_EQ(mem::PeakBytes(), 0);
}

TEST(Tracker, ScopedBytesBalances) {
  mem::Reset();
  {
    mem::ScopedBytes bytes(4096);
    EXPECT_EQ(mem::CurrentBytes(), 4096);
  }
  EXPECT_EQ(mem::CurrentBytes(), 0);
  EXPECT_EQ(mem::PeakBytes(), 4096);
}

TEST(TrackedBuffer, TracksCapacityAndPreservesData) {
  mem::Reset();
  {
    mem::TrackedBuffer<int> buf;
    for (int i = 0; i < 10000; ++i) buf.PushBack(i);
    EXPECT_EQ(buf.size(), 10000u);
    for (int i = 0; i < 10000; ++i) ASSERT_EQ(buf[i], i);
    EXPECT_GE(mem::CurrentBytes(),
              static_cast<int64_t>(10000 * sizeof(int)));
  }
  EXPECT_EQ(mem::CurrentBytes(), 0);
}

TEST(TrackedBuffer, MoveTransfersOwnership) {
  mem::Reset();
  mem::TrackedBuffer<int> a(128);
  a[0] = 7;
  const int64_t tracked = mem::CurrentBytes();
  EXPECT_GT(tracked, 0);
  mem::TrackedBuffer<int> b(std::move(a));
  EXPECT_EQ(mem::CurrentBytes(), tracked);  // no double count
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(b.size(), 128u);
  b = mem::TrackedBuffer<int>();
  EXPECT_EQ(mem::CurrentBytes(), 0);
}

TEST(TrackedBuffer, ResizeAndClear) {
  mem::Reset();
  mem::TrackedBuffer<double> buf;
  buf.Resize(64);
  EXPECT_EQ(buf.size(), 64u);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
  // Clearing keeps capacity (and its accounting).
  EXPECT_GT(mem::CurrentBytes(), 0);
}

}  // namespace
}  // namespace iawj
