// Tests for the fault-injection harness and the graceful-failure execution
// layer (ISSUE 2): registry semantics, memory budgets, deadlines, per-site
// degradation, and the failure surface of IO/datagen/pipelines/records.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/common/cancel.h"
#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/datagen/micro.h"
#include "src/datagen/real_world.h"
#include "src/io/workload_io.h"
#include "src/join/runner.h"
#include "src/join/window_pipeline.h"
#include "src/memory/tracker.h"
#include "src/profiling/run_record.h"

namespace iawj {
namespace {

// Faults and budgets are process-global; every test starts and ends clean so
// ordering never leaks a fault spec into an unrelated test.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Clear();
    mem::SetBudgetBytes(0);
    mem::SetBreachToken(nullptr);
  }
  void TearDown() override {
    fault::Clear();
    mem::SetBudgetBytes(0);
    mem::SetBreachToken(nullptr);
  }
};

MicroWorkload SmallWorkload() {
  MicroSpec spec;
  spec.size_r = 4000;
  spec.size_s = 4000;
  spec.window_ms = 100;
  spec.dupe = 4;
  spec.seed = 5;
  return GenerateMicro(spec);
}

JoinSpec SmallSpec() {
  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 100;
  return spec;
}

// --- Registry semantics -----------------------------------------------------

TEST_F(FaultTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_EQ(fault::Configure("alloc:0").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::Configure("alloc:x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::Configure("alloc:1:x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::Configure(":").code(), StatusCode::kInvalidArgument);
  // A failed Configure leaves injection disabled.
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::Inject("alloc"));
}

TEST_F(FaultTest, EmptySpecDisables) {
  ASSERT_TRUE(fault::Configure("alloc").ok());
  EXPECT_TRUE(fault::Enabled());
  ASSERT_TRUE(fault::Configure("").ok());
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(FaultTest, DisorderSitesAreRegistered) {
  // The ingestion faults added for disorder hardening parse, fire, and
  // count like any other site, including nth/count schedules.
  for (const char* site :
       {"disorder_burst", "late_tuple", "dup_tuple", "watermark_stall"}) {
    ASSERT_TRUE(fault::Configure(site).ok()) << site;
    EXPECT_TRUE(fault::Inject(site)) << site;
    EXPECT_EQ(fault::Hits(site), 1u) << site;
  }
  ASSERT_TRUE(fault::Configure("dup_tuple:2:1,watermark_stall").ok());
  EXPECT_FALSE(fault::Inject("dup_tuple"));  // hit 1: before nth
  EXPECT_TRUE(fault::Inject("dup_tuple"));   // hit 2: fires
  EXPECT_FALSE(fault::Inject("dup_tuple"));  // hit 3: schedule spent
  EXPECT_TRUE(fault::Inject("watermark_stall"));
}

TEST_F(FaultTest, FiresOnHitsNthThroughNthPlusCount) {
  ASSERT_TRUE(fault::Configure("alloc:2:2").ok());
  EXPECT_FALSE(fault::Inject("alloc"));  // hit 1
  EXPECT_TRUE(fault::Inject("alloc"));   // hit 2: first firing hit
  EXPECT_TRUE(fault::Inject("alloc"));   // hit 3: last firing hit
  EXPECT_FALSE(fault::Inject("alloc"));  // hit 4
  EXPECT_EQ(fault::Hits("alloc"), 4u);
}

TEST_F(FaultTest, CountZeroFiresForever) {
  ASSERT_TRUE(fault::Configure("alloc:3:0").ok());
  EXPECT_FALSE(fault::Inject("alloc"));
  EXPECT_FALSE(fault::Inject("alloc"));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(fault::Inject("alloc"));
}

TEST_F(FaultTest, UnconfiguredSitesAreNotCounted) {
  ASSERT_TRUE(fault::Configure("alloc,io_truncate:2").ok());
  EXPECT_FALSE(fault::Inject("clock_skew"));
  EXPECT_EQ(fault::Hits("clock_skew"), 0u);
  EXPECT_TRUE(fault::Inject("alloc"));
  EXPECT_FALSE(fault::Inject("io_truncate"));  // fires on its 2nd hit
  EXPECT_TRUE(fault::Inject("io_truncate"));
}

TEST_F(FaultTest, ClearResetsEverything) {
  ASSERT_TRUE(fault::Configure("alloc:1:0").ok());
  EXPECT_TRUE(fault::Inject("alloc"));
  fault::Clear();
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::Inject("alloc"));
  EXPECT_EQ(fault::Hits("alloc"), 0u);
}

TEST_F(FaultTest, ResetReArmsTheSameScheduleWithoutReparsing) {
  ASSERT_TRUE(fault::Configure("alloc:2").ok());
  EXPECT_FALSE(fault::Inject("alloc"));  // hit 1
  EXPECT_TRUE(fault::Inject("alloc"));   // hit 2 fires
  EXPECT_FALSE(fault::Inject("alloc"));  // hit 3: window passed
  fault::Reset();
  EXPECT_TRUE(fault::Enabled());  // sites survive, counters do not
  EXPECT_EQ(fault::Hits("alloc"), 0u);
  EXPECT_FALSE(fault::Inject("alloc"));  // hit 1 again
  EXPECT_TRUE(fault::Inject("alloc"));   // hit 2 fires again
}

TEST_F(FaultTest, ResetWithNothingConfiguredIsANoOp) {
  fault::Reset();
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::Inject("alloc"));
}

TEST_F(FaultTest, ReloadFromEnvInstallsClearsAndRejects) {
  ASSERT_EQ(setenv("IAWJ_FAULT", "alloc:1", 1), 0);
  ASSERT_TRUE(fault::ReloadFromEnv().ok());
  EXPECT_TRUE(fault::Enabled());
  EXPECT_TRUE(fault::Inject("alloc"));

  // Unlike the startup parse, a malformed value comes back as a Status and
  // leaves injection disabled — the process survives.
  ASSERT_EQ(setenv("IAWJ_FAULT", "alloc:0", 1), 0);
  EXPECT_EQ(fault::ReloadFromEnv().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(fault::Enabled());

  ASSERT_EQ(unsetenv("IAWJ_FAULT"), 0);
  ASSERT_TRUE(fault::ReloadFromEnv().ok());
  EXPECT_FALSE(fault::Enabled());
}

// --- Memory budget ----------------------------------------------------------

TEST_F(FaultTest, PreflightHonoursBudget) {
  mem::SetBudgetBytes(int64_t{1} << 20);
  EXPECT_TRUE(mem::Preflight(int64_t{1} << 10, "small block").ok());
  const Status st = mem::Preflight(int64_t{8} << 20, "big block");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("memory budget exceeded"), std::string::npos);
  EXPECT_NE(st.message().find("big block"), std::string::npos);
}

TEST_F(FaultTest, AllocFaultTripsPreflight) {
  ASSERT_TRUE(fault::Configure("alloc").ok());
  const Status st = mem::Preflight(16, "tiny block");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("injected allocation failure"),
            std::string::npos);
}

TEST_F(FaultTest, OverBudgetAddCancelsInstalledToken) {
  CancelToken token;
  mem::SetBreachToken(&token);
  mem::SetBudgetBytes(1024);
  mem::Add(4096);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason().code(), StatusCode::kResourceExhausted);
  mem::Add(-4096);
  // Without a token, a breach is recorded nowhere but must not crash.
  mem::SetBreachToken(nullptr);
  mem::Add(4096);
  mem::Add(-4096);
}

// --- Runner graceful failure ------------------------------------------------

TEST_F(FaultTest, InvalidSpecComesBackAsStatusNotAbort) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec = SmallSpec();
  spec.num_threads = 0;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.matches, 0u);

  JoinSpec bad_radix = SmallSpec();
  bad_radix.radix_bits = 0;
  EXPECT_EQ(runner.Run(AlgorithmId::kPrj, w.r, w.s, bad_radix).status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FaultTest, EmptyAndOneSidedStreamsRunCleanly) {
  const MicroWorkload w = SmallWorkload();
  const Stream empty;
  JoinRunner runner;
  for (AlgorithmId id : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult both = runner.Run(id, empty, empty, SmallSpec());
    EXPECT_TRUE(both.status.ok()) << both.status.ToString();
    EXPECT_EQ(both.matches, 0u);
    const RunResult one = runner.Run(id, w.r, empty, SmallSpec());
    EXPECT_TRUE(one.status.ok()) << one.status.ToString();
    EXPECT_EQ(one.matches, 0u);
  }
}

TEST_F(FaultTest, MemoryBudgetFailsRunWithResourceExhausted) {
  const MicroWorkload w = SmallWorkload();
  mem::SetBudgetBytes(1024);  // far below any table/run allocation
  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kNpj, AlgorithmId::kPrj,
                         AlgorithmId::kMway, AlgorithmId::kShjJm}) {
    SCOPED_TRACE(AlgorithmName(id));
    const RunResult result = runner.Run(id, w.r, w.s, SmallSpec());
    EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  }
  mem::SetBudgetBytes(0);
  const RunResult ok = runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GT(ok.matches, 0u);
}

TEST_F(FaultTest, AllocFaultFailsRunWithResourceExhausted) {
  const MicroWorkload w = SmallWorkload();
  ASSERT_TRUE(fault::Configure("alloc").ok());
  JoinRunner runner;
  const RunResult result =
      runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(fault::Hits("alloc"), 1u);
}

TEST_F(FaultTest, WorkerStallIsCancelledByDeadline) {
  const MicroWorkload w = SmallWorkload();
  ASSERT_TRUE(fault::Configure("worker_stall").ok());
  JoinSpec spec = SmallSpec();
  spec.deadline_ms = 200;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status.message().find("unfinished"), std::string::npos);
  EXPECT_NE(result.status.message().find("w0"), std::string::npos);
}

TEST_F(FaultTest, SecondWorkerStallNamesThatWorker) {
  const MicroWorkload w = SmallWorkload();
  ASSERT_TRUE(fault::Configure("worker_stall:2").ok());
  JoinSpec spec = SmallSpec();
  spec.deadline_ms = 200;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kMpass, w.r, w.s, spec);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status.message().find("w1"), std::string::npos);
}

TEST_F(FaultTest, EagerStallIsCancelledByDeadline) {
  const MicroWorkload w = SmallWorkload();
  ASSERT_TRUE(fault::Configure("eager_stall").ok());
  JoinSpec spec = SmallSpec();
  spec.deadline_ms = 200;
  JoinRunner runner;
  for (AlgorithmId id : {AlgorithmId::kShjJm, AlgorithmId::kPmjJb}) {
    SCOPED_TRACE(AlgorithmName(id));
    fault::Reset();  // re-arm the schedule for the next algorithm
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(FaultTest, GenerousDeadlineLeavesHealthyRunUntouched) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec = SmallSpec();
  JoinRunner runner;
  const RunResult baseline =
      runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  spec.deadline_ms = 60000;
  const RunResult guarded = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(guarded.status.ok()) << guarded.status.ToString();
  EXPECT_EQ(guarded.matches, baseline.matches);
  EXPECT_EQ(guarded.checksum, baseline.checksum);
}

TEST_F(FaultTest, ClockSkewKeepsResultsFiniteAndCorrect) {
  const MicroWorkload w = SmallWorkload();
  JoinRunner runner;
  const RunResult baseline =
      runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());

  ASSERT_TRUE(fault::Configure("clock_skew").ok());
  JoinSpec skewed = SmallSpec();
  skewed.clock_mode = Clock::Mode::kRealTime;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, skewed);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // A backwards clock step must not change what matches, only when the
  // engine thinks they happened.
  EXPECT_EQ(result.matches, baseline.matches);
  EXPECT_EQ(result.checksum, baseline.checksum);
  EXPECT_TRUE(std::isfinite(result.throughput_per_ms));
  EXPECT_TRUE(std::isfinite(result.p95_latency_ms));
  EXPECT_TRUE(std::isfinite(result.elapsed_ms));
}

TEST_F(FaultTest, FaultsDisabledMatchesBaselineChecksum) {
  // The harness itself must be inert when no spec is configured.
  const MicroWorkload w = SmallWorkload();
  JoinRunner runner;
  const RunResult a = runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  const RunResult b = runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(fault::Hits("alloc"), 0u);
}

// --- Window pipeline --------------------------------------------------------

TEST_F(FaultTest, WindowFailStopsPipelineAtFailedWindow) {
  MicroSpec mspec;
  mspec.size_r = 4000;
  mspec.size_s = 4000;
  mspec.window_ms = 100;  // tuples span [0, 100)
  mspec.seed = 5;
  const MicroWorkload w = GenerateMicro(mspec);

  ASSERT_TRUE(fault::Configure("window_fail:2").ok());
  JoinSpec spec = SmallSpec();
  spec.window_ms = 25;  // four tumbling windows
  const PipelineResult pipeline =
      RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec);
  EXPECT_EQ(pipeline.status.code(), StatusCode::kInternal);
  ASSERT_EQ(pipeline.windows.size(), 2u);
  EXPECT_TRUE(pipeline.windows[0].result.status.ok());
  EXPECT_EQ(pipeline.windows[1].result.status.code(), StatusCode::kInternal);
  EXPECT_NE(pipeline.windows[1].result.status.message().find(
                "injected window failure"),
            std::string::npos);
  // Aggregates cover the completed window(s) only.
  EXPECT_GT(pipeline.total_matches, 0u);
}

TEST_F(FaultTest, PipelinesRejectDegenerateSegmentation) {
  const MicroWorkload w = SmallWorkload();
  JoinSpec spec = SmallSpec();
  spec.window_ms = 0;
  EXPECT_EQ(RunTumblingWindows(AlgorithmId::kNpj, w.r, w.s, spec)
                .status.code(),
            StatusCode::kInvalidArgument);
  spec.window_ms = 25;
  EXPECT_EQ(RunSlidingWindows(AlgorithmId::kNpj, w.r, w.s, spec, 0)
                .status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunSessionWindows(AlgorithmId::kNpj, w.r, w.s, spec, 0)
                .status.code(),
            StatusCode::kInvalidArgument);
}

// --- Workload IO ------------------------------------------------------------

Stream TinyStream(size_t n) {
  std::vector<Tuple> tuples(n);
  for (size_t i = 0; i < n; ++i) {
    tuples[i].key = static_cast<uint32_t>(i * 7);
    tuples[i].ts = static_cast<uint32_t>(i % 100);
  }
  return MakeStream(std::move(tuples));
}

TEST_F(FaultTest, IoTruncateFaultSurfacesAsDataLoss) {
  const std::string path = testing::TempDir() + "/iawj_fault_io.bin";
  ASSERT_TRUE(io::SaveStream(TinyStream(500), path).ok());
  ASSERT_TRUE(fault::Configure("io_truncate").ok());
  Stream loaded;
  const Status st = io::LoadStream(path, &loaded);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("injected truncation"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FaultTest, PhysicallyTruncatedFileSurfacesAsDataLoss) {
  const std::string path = testing::TempDir() + "/iawj_fault_trunc.bin";
  ASSERT_TRUE(io::SaveStream(TinyStream(1000), path).ok());
  // Keep the header plus half the tuples.
  const off_t keep =
      static_cast<off_t>(8 + sizeof(uint64_t) + 500 * sizeof(Tuple));
  ASSERT_EQ(truncate(path.c_str(), keep), 0);
  Stream loaded;
  const Status st = io::LoadStream(path, &loaded);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("promises"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FaultTest, CorruptHeaderCountRejectedWithoutAllocating) {
  const std::string path = testing::TempDir() + "/iawj_fault_header.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("IAWJSTR1", 8);
    const uint64_t absurd = uint64_t{1} << 40;  // 8 TiB of tuples
    out.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  }
  Stream loaded;
  const Status st = io::LoadStream(path, &loaded);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("promises"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FaultTest, CsvRejectsNonNumericFields) {
  const std::string path = testing::TempDir() + "/iawj_fault_bad.csv";
  {
    std::ofstream out(path);
    out << "ts,key\n1,2\n3,oops\n";
  }
  Stream loaded;
  EXPECT_EQ(io::LoadStreamCsv(path, &loaded).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Datagen validation -----------------------------------------------------

TEST_F(FaultTest, MicroSpecValidationRejectsDegenerateInputs) {
  MicroWorkload w;
  MicroSpec spec;
  spec.dupe = 0.25;
  EXPECT_EQ(GenerateMicro(spec, &w).code(), StatusCode::kInvalidArgument);
  spec = MicroSpec{};
  spec.dupe = std::nan("");
  EXPECT_EQ(GenerateMicro(spec, &w).code(), StatusCode::kInvalidArgument);
  spec = MicroSpec{};
  spec.window_ms = 0;
  EXPECT_EQ(GenerateMicro(spec, &w).code(), StatusCode::kInvalidArgument);
  spec = MicroSpec{};
  spec.zipf_key = -0.5;
  EXPECT_EQ(GenerateMicro(spec, &w).code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultTest, RealWorldSpecValidationRejectsBadScale) {
  Workload w;
  RealWorldSpec spec;
  spec.scale = 0.0;
  EXPECT_EQ(GenerateRealWorld(spec, &w).code(),
            StatusCode::kInvalidArgument);
  spec.scale = std::numeric_limits<double>::infinity();
  EXPECT_EQ(GenerateRealWorld(spec, &w).code(),
            StatusCode::kInvalidArgument);
}

// --- Run records ------------------------------------------------------------

TEST_F(FaultTest, FailedRunEmitsFailedRecordWithCode) {
  RunResult result;
  result.algorithm = "NPJ";
  result.status = Status::DeadlineExceeded("run exceeded deadline of 10 ms");
  const std::string text = RunRecordJson(result, JoinSpec{}, {});
  json::Value record;
  ASSERT_TRUE(json::Parse(text, &record).ok()) << text;
  EXPECT_EQ(record.Find("status")->string, "failed");
  EXPECT_EQ(record.Find("status_code")->string, "deadline_exceeded");
  EXPECT_NE(record.Find("status_message")->string.find("deadline"),
            std::string::npos);
}

TEST_F(FaultTest, FailedRealRunRoundTripsThroughRecord) {
  const MicroWorkload w = SmallWorkload();
  mem::SetBudgetBytes(1024);
  JoinRunner runner;
  const RunResult result =
      runner.Run(AlgorithmId::kNpj, w.r, w.s, SmallSpec());
  ASSERT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  mem::SetBudgetBytes(0);
  const std::string text = RunRecordJson(result, SmallSpec(), {});
  json::Value record;
  ASSERT_TRUE(json::Parse(text, &record).ok()) << text;
  EXPECT_EQ(record.Find("status")->string, "failed");
  EXPECT_EQ(record.Find("status_code")->string, "resource_exhausted");
  EXPECT_NE(record.Find("peak_tracked_bytes"), nullptr);
}

}  // namespace
}  // namespace iawj
