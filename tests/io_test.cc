// Tests for workload persistence (binary and CSV round trips).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/rng.h"
#include "src/io/workload_io.h"

namespace iawj {
namespace {

Stream RandomStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples(n);
  for (auto& t : tuples) {
    t.key = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    t.ts = static_cast<uint32_t>(rng.NextBounded(1000));
  }
  return MakeStream(std::move(tuples));
}

TEST(WorkloadIo, BinaryRoundTrip) {
  const std::string path = testing::TempDir() + "/iawj_io_test.bin";
  const Stream original = RandomStream(5000, 1);
  ASSERT_TRUE(io::SaveStream(original, path).ok());
  Stream loaded;
  ASSERT_TRUE(io::LoadStream(path, &loaded).ok());
  EXPECT_EQ(loaded.tuples, original.tuples);
  std::remove(path.c_str());
}

TEST(WorkloadIo, CsvRoundTrip) {
  const std::string path = testing::TempDir() + "/iawj_io_test.csv";
  const Stream original = RandomStream(1000, 2);
  ASSERT_TRUE(io::SaveStreamCsv(original, path).ok());
  Stream loaded;
  ASSERT_TRUE(io::LoadStreamCsv(path, &loaded).ok());
  EXPECT_EQ(loaded.tuples, original.tuples);
  std::remove(path.c_str());
}

TEST(WorkloadIo, EmptyStreamRoundTrips) {
  const std::string path = testing::TempDir() + "/iawj_io_empty.bin";
  ASSERT_TRUE(io::SaveStream(Stream{}, path).ok());
  Stream loaded = RandomStream(3, 3);  // pre-populated: must be replaced
  ASSERT_TRUE(io::LoadStream(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(WorkloadIo, RejectsMissingFile) {
  Stream s;
  EXPECT_FALSE(io::LoadStream("/nonexistent/iawj.bin", &s).ok());
  EXPECT_FALSE(io::LoadStreamCsv("/nonexistent/iawj.csv", &s).ok());
}

TEST(WorkloadIo, RejectsWrongMagic) {
  const std::string path = testing::TempDir() + "/iawj_io_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a stream file at all";
  }
  Stream s;
  const Status status = io::LoadStream(path, &s);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(WorkloadIo, RejectsMalformedCsv) {
  const std::string path = testing::TempDir() + "/iawj_io_bad.csv";
  {
    std::ofstream out(path);
    out << "ts,key\n10,5\nnot-a-row-without-comma\n";
  }
  Stream s;
  EXPECT_FALSE(io::LoadStreamCsv(path, &s).ok());
  std::remove(path.c_str());
}

TEST(WorkloadIo, LoaderSortsExternallyProducedFiles) {
  const std::string path = testing::TempDir() + "/iawj_io_unsorted.csv";
  {
    std::ofstream out(path);
    out << "ts,key\n50,1\n10,2\n30,3\n";
  }
  Stream s;
  ASSERT_TRUE(io::LoadStreamCsv(path, &s).ok());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.tuples[0].ts, 10u);
  EXPECT_EQ(s.tuples[2].ts, 50u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iawj
