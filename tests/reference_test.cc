// Tests for the nested-loop oracle itself (verified against a literal
// quadratic loop) and for checksum properties the cross-algorithm tests
// depend on.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/hash/hash_fn.h"
#include "src/join/reference.h"

namespace iawj {
namespace {

ReferenceResult BruteForce(const std::vector<Tuple>& r,
                           const std::vector<Tuple>& s) {
  ReferenceResult result;
  for (const Tuple& a : r) {
    for (const Tuple& b : s) {
      if (a.key != b.key) continue;
      ++result.matches;
      result.checksum +=
          Mix64((static_cast<uint64_t>(a.key) << 32) ^
                Mix64((static_cast<uint64_t>(a.ts) << 32) | b.ts));
    }
  }
  return result;
}

TEST(Reference, MatchesBruteForce) {
  Rng rng(1);
  std::vector<Tuple> r(200), s(300);
  for (auto& t : r) {
    t = {.ts = static_cast<uint32_t>(rng.NextBounded(100)),
         .key = static_cast<uint32_t>(rng.NextBounded(40))};
  }
  for (auto& t : s) {
    t = {.ts = static_cast<uint32_t>(rng.NextBounded(100)),
         .key = static_cast<uint32_t>(rng.NextBounded(40))};
  }
  const ReferenceResult expected = BruteForce(r, s);
  const ReferenceResult actual = NestedLoopJoin(r, s);
  EXPECT_EQ(actual.matches, expected.matches);
  EXPECT_EQ(actual.checksum, expected.checksum);
  EXPECT_GT(actual.matches, 0u);
}

TEST(Reference, EmptyInputs) {
  EXPECT_EQ(NestedLoopJoin({}, {}).matches, 0u);
  std::vector<Tuple> r = {{.ts = 0, .key = 1}};
  EXPECT_EQ(NestedLoopJoin(r, {}).matches, 0u);
  EXPECT_EQ(NestedLoopJoin({}, r).matches, 0u);
}

TEST(Reference, ChecksumIsOrderInsensitive) {
  std::vector<Tuple> r = {{.ts = 1, .key = 7}, {.ts = 2, .key = 7}};
  std::vector<Tuple> s = {{.ts = 3, .key = 7}};
  std::vector<Tuple> r_rev(r.rbegin(), r.rend());
  EXPECT_EQ(NestedLoopJoin(r, s).checksum, NestedLoopJoin(r_rev, s).checksum);
}

TEST(Reference, ChecksumDistinguishesTsRoles) {
  // (r_ts=1, s_ts=2) must differ from (r_ts=2, s_ts=1).
  std::vector<Tuple> r1 = {{.ts = 1, .key = 7}};
  std::vector<Tuple> s1 = {{.ts = 2, .key = 7}};
  std::vector<Tuple> r2 = {{.ts = 2, .key = 7}};
  std::vector<Tuple> s2 = {{.ts = 1, .key = 7}};
  EXPECT_NE(NestedLoopJoin(r1, s1).checksum, NestedLoopJoin(r2, s2).checksum);
}

TEST(Reference, CountsCrossProductPerKey) {
  std::vector<Tuple> r(5, Tuple{.ts = 0, .key = 3});
  std::vector<Tuple> s(7, Tuple{.ts = 0, .key = 3});
  EXPECT_EQ(NestedLoopJoin(r, s).matches, 35u);
}

}  // namespace
}  // namespace iawj
