// Tests for the morsel-driven work-stealing scheduler (join/scheduler.h)
// and the NUMA topology discovery feeding it (common/affinity.h): knob
// resolution, cpulist parsing, synthetic-node override, exactly-once morsel
// coverage under concurrent draining (including more workers than morsels),
// first-claimant semantics of the eager ClaimGrid, steal counters under
// forced skew, and termination with a stalled worker.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "src/common/affinity.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/datagen/micro.h"
#include "src/join/reference.h"
#include "src/join/runner.h"
#include "src/join/scheduler.h"

namespace iawj {
namespace {

// Every test that touches the scheduler environment restores it, so tests
// stay order-independent.
class SchedulerEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("IAWJ_SCHEDULER");
    unsetenv("IAWJ_MORSEL_SIZE");
    unsetenv("IAWJ_NUMA_NODES");
    fault::Clear();
  }
};

TEST(SchedulerMode, ParseRoundTrips) {
  SchedulerMode mode;
  EXPECT_TRUE(ParseSchedulerMode("auto", &mode));
  EXPECT_EQ(mode, SchedulerMode::kAuto);
  EXPECT_TRUE(ParseSchedulerMode("static", &mode));
  EXPECT_EQ(mode, SchedulerMode::kStatic);
  EXPECT_TRUE(ParseSchedulerMode("morsel", &mode));
  EXPECT_EQ(mode, SchedulerMode::kMorsel);
  EXPECT_FALSE(ParseSchedulerMode("hyper", &mode));
  EXPECT_FALSE(ParseSchedulerMode("", &mode));
  for (SchedulerMode m : kAllSchedulerModes) {
    SchedulerMode back;
    EXPECT_TRUE(ParseSchedulerMode(SchedulerModeName(m), &back));
    EXPECT_EQ(back, m);
  }
}

TEST_F(SchedulerEnvTest, SpecWinsOverEnvironmentAndAutoDefers) {
  ASSERT_EQ(setenv("IAWJ_SCHEDULER", "morsel", 1), 0);
  EXPECT_EQ(ResolveSchedulerMode(SchedulerMode::kAuto),
            SchedulerMode::kMorsel);
  EXPECT_EQ(ResolveSchedulerMode(SchedulerMode::kStatic),
            SchedulerMode::kStatic);  // spec wins
  ASSERT_EQ(setenv("IAWJ_SCHEDULER", "static", 1), 0);
  EXPECT_EQ(ResolveSchedulerMode(SchedulerMode::kMorsel),
            SchedulerMode::kMorsel);  // spec wins
  EXPECT_EQ(ResolveSchedulerMode(SchedulerMode::kAuto),
            SchedulerMode::kStatic);
  ASSERT_EQ(unsetenv("IAWJ_SCHEDULER"), 0);
  // Fully unresolved: static is the paper-faithful default.
  EXPECT_EQ(ResolveSchedulerMode(SchedulerMode::kAuto),
            SchedulerMode::kStatic);
}

TEST_F(SchedulerEnvTest, MorselSizeSpecThenEnvThenDefault) {
  EXPECT_EQ(ResolveMorselSize(4096), 4096u);
  ASSERT_EQ(setenv("IAWJ_MORSEL_SIZE", "512", 1), 0);
  EXPECT_EQ(ResolveMorselSize(0), 512u);
  EXPECT_EQ(ResolveMorselSize(64), 64u);  // spec wins
  ASSERT_EQ(unsetenv("IAWJ_MORSEL_SIZE"), 0);
  EXPECT_EQ(ResolveMorselSize(0), kDefaultMorselSize);
}

TEST(Affinity, ParseCpuListVariants) {
  EXPECT_EQ(ParseCpuList("0-3,8,10-11", 16),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(ParseCpuList("5", 16), (std::vector<int>{5}));
  EXPECT_EQ(ParseCpuList("0-63", 4), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(ParseCpuList("", 16).empty());
  EXPECT_TRUE(ParseCpuList("abc", 16).empty());
  EXPECT_TRUE(ParseCpuList("5-2", 16).empty());
  EXPECT_TRUE(ParseCpuList(nullptr, 16).empty());
}

TEST_F(SchedulerEnvTest, SyntheticNumaOverrideMakesContiguousNodes) {
  ASSERT_EQ(setenv("IAWJ_NUMA_NODES", "2", 1), 0);
  const CpuTopology topo = DetectTopology();
  ASSERT_GE(topo.num_cores, 1);
  // Capped at the core count, so single-core hosts still get one node.
  EXPECT_EQ(topo.num_nodes, topo.num_cores >= 2 ? 2 : 1);
  ASSERT_EQ(static_cast<int>(topo.node_of_core.size()), topo.num_cores);
  // Contiguous blocks: node ids are non-decreasing over core index and
  // every node in [0, num_nodes) is populated.
  std::set<int> seen;
  for (int c = 0; c < topo.num_cores; ++c) {
    EXPECT_GE(topo.node_of_core[c], 0);
    EXPECT_LT(topo.node_of_core[c], topo.num_nodes);
    if (c > 0) {
      EXPECT_GE(topo.node_of_core[c], topo.node_of_core[c - 1]);
    }
    seen.insert(topo.node_of_core[c]);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.num_nodes);

  ASSERT_EQ(unsetenv("IAWJ_NUMA_NODES"), 0);
  const CpuTopology host = DetectTopology();
  EXPECT_GE(host.num_nodes, 1);
  for (int c = 0; c < host.num_cores; ++c) {
    EXPECT_GE(host.NodeOfCore(c), 0);
    EXPECT_LT(host.NodeOfCore(c), host.num_nodes);
  }
  EXPECT_EQ(host.NodeOfCore(-1), 0);     // out of range folds to node 0
  EXPECT_EQ(host.NodeOfCore(1 << 20), 0);
}

TEST_F(SchedulerEnvTest, VictimOrderIsAPermutationWithLocalVictimsFirst) {
  ASSERT_EQ(setenv("IAWJ_NUMA_NODES", "2", 1), 0);
  MorselScheduler sched(8, SchedulerMode::kMorsel, 64);
  EXPECT_TRUE(sched.enabled());
  for (int w = 0; w < 8; ++w) {
    const std::vector<int>& order = sched.victim_order(w);
    ASSERT_EQ(order.size(), 7u);
    std::set<int> victims(order.begin(), order.end());
    EXPECT_EQ(victims.size(), 7u);           // every other worker once
    EXPECT_EQ(victims.count(w), 0u);         // never itself
    // Same-node victims strictly precede remote ones.
    bool saw_remote = false;
    for (int victim : order) {
      const bool remote = sched.node_of(victim) != sched.node_of(w);
      if (remote) saw_remote = true;
      if (saw_remote) {
        EXPECT_TRUE(remote) << "local victim after a remote one in worker "
                            << w << "'s steal order";
      }
    }
  }
}

// Drains one phase from `workers` concurrent threads and checks the morsel
// ranges partition [0, total) exactly.
void DrainAndCheckCoverage(int workers, size_t total, size_t morsel_size) {
  SCOPED_TRACE(testing::Message() << "workers=" << workers
                                  << " total=" << total
                                  << " morsel=" << morsel_size);
  MorselScheduler sched(workers, SchedulerMode::kMorsel, morsel_size);
  MorselPhase phase;
  phase.Reset(sched, total);

  std::vector<std::vector<ChunkRange>> got(workers);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ChunkRange m;
      while (phase.Next(sched, w, &m)) got[w].push_back(m);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<bool> covered(total, false);
  size_t claimed = 0;
  for (const auto& ranges : got) {
    for (const ChunkRange& m : ranges) {
      ++claimed;
      ASSERT_LE(m.end, total);
      ASSERT_LT(m.begin, m.end);
      for (size_t i = m.begin; i < m.end; ++i) {
        EXPECT_FALSE(covered[i]) << "unit " << i << " claimed twice";
        covered[i] = true;
      }
    }
  }
  EXPECT_EQ(claimed, phase.num_morsels());
  for (size_t i = 0; i < total; ++i) {
    EXPECT_TRUE(covered[i]) << "unit " << i << " never claimed";
  }
  const MorselStats totals = sched.Totals();
  EXPECT_EQ(totals.morsels, phase.num_morsels());
  EXPECT_EQ(totals.tuples, total);
}

TEST(MorselPhase, ConcurrentDrainCoversEveryUnitExactlyOnce) {
  DrainAndCheckCoverage(4, 10000, 64);
  DrainAndCheckCoverage(8, 1001, 37);   // ragged tail morsel
  DrainAndCheckCoverage(3, 100, 1);     // task-queue mode
  DrainAndCheckCoverage(1, 500, 100);   // no one to steal from
}

TEST(MorselPhase, MoreWorkersThanMorselsLeavesIdleWorkersEmptyHanded) {
  // 8 workers, 3 morsels: five workers start with empty ranges and must
  // return false after a full (unsuccessful or successful) steal sweep.
  DrainAndCheckCoverage(8, 3, 1);
  DrainAndCheckCoverage(16, 1, 1 << 20);  // single morsel, massive grain
  DrainAndCheckCoverage(5, 0, 64);        // empty phase: everyone drains
}

TEST(MorselPhase, SingleThreadedStealSweepDrainsAPeersRange) {
  // Worker 1 never shows up; worker 0 must finish its own deal, then steal
  // everything worker 1 was dealt — the stalled-peer shape, minus threads.
  MorselScheduler sched(2, SchedulerMode::kMorsel, 10);
  MorselPhase phase;
  phase.Reset(sched, 100);  // 10 morsels: 5 dealt to each worker
  size_t units = 0;
  ChunkRange m;
  while (phase.Next(sched, 0, &m)) units += m.size();
  EXPECT_EQ(units, 100u);
  EXPECT_EQ(sched.stats(0).morsels, 10u);
  EXPECT_EQ(sched.stats(0).steals, 5u);  // worker 1's entire deal
  EXPECT_FALSE(phase.Next(sched, 1, &m));  // latecomer finds it drained
}

TEST(ClaimGrid, FirstClaimantWinsAndLaterCallersObserveIt) {
  ClaimGrid grid;
  grid.Reset(100, 10, 2);
  EXPECT_EQ(grid.num_morsels(), 10u);
  EXPECT_EQ(grid.morsel_of(0), 0u);
  EXPECT_EQ(grid.morsel_of(99), 9u);
  EXPECT_EQ(grid.Claim(0, 0, 3), 3);
  EXPECT_EQ(grid.Claim(0, 0, 1), 3);  // already owned
  EXPECT_EQ(grid.Claim(1, 0, 1), 1);  // other lane is independent
  EXPECT_EQ(grid.Claim(0, 9, 7), 7);
}

TEST(ClaimGrid, ConcurrentClaimsAgreeOnOneWinner) {
  ClaimGrid grid;
  grid.Reset(64, 8, 1);
  constexpr int kThreads = 8;
  std::vector<std::vector<int>> winners(kThreads,
                                        std::vector<int>(8, -1));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t m = 0; m < 8; ++m) {
        winners[t][m] = grid.Claim(0, m, t);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t m = 0; m < 8; ++m) {
    const int winner = winners[0][m];
    ASSERT_GE(winner, 0);
    ASSERT_LT(winner, kThreads);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(winners[t][m], winner)
          << "threads disagree on the owner of morsel " << m;
    }
  }
}

// --- End-to-end runs ---

struct SkewedWorkload {
  Stream r;
  Stream s;
  ReferenceResult expected;
};

SkewedWorkload MakeSkewedWorkload(size_t size = 30000) {
  MicroSpec spec;
  spec.size_r = size;
  spec.size_s = size;
  spec.window_ms = 1000;
  spec.dupe = 20;
  spec.zipf_key = 1.0;
  spec.seed = 1234;
  MicroWorkload micro = GenerateMicro(spec);
  SkewedWorkload w;
  w.expected = NestedLoopJoin(micro.r.view(), micro.s.view());
  w.r = std::move(micro.r);
  w.s = std::move(micro.s);
  return w;
}

TEST_F(SchedulerEnvTest, SkewedRunStealsAndStillMatchesReference) {
  // Two synthetic NUMA nodes so the remote-steal accounting runs too (on a
  // single-core host every worker lands on node 0 and remote stays 0).
  ASSERT_EQ(setenv("IAWJ_NUMA_NODES", "2", 1), 0);
  const SkewedWorkload w = MakeSkewedWorkload();
  for (const AlgorithmId id : {AlgorithmId::kNpj, AlgorithmId::kPrj,
                               AlgorithmId::kMway, AlgorithmId::kShjJm}) {
    SCOPED_TRACE(AlgorithmName(id));
    JoinSpec spec;
    spec.num_threads = 8;
    spec.window_ms = 1000;
    spec.scheduler = SchedulerMode::kMorsel;
    spec.morsel_size = 256;
    JoinRunner runner;
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.matches, w.expected.matches);
    EXPECT_EQ(result.checksum, w.expected.checksum);
    EXPECT_EQ(result.scheduler_resolved, SchedulerMode::kMorsel);
    EXPECT_EQ(result.morsel_size, 256u);
    ASSERT_EQ(result.worker_morsels.size(), 8u);
    ASSERT_EQ(result.worker_nodes.size(), 8u);
    const MorselStats totals = result.MorselTotals();
    EXPECT_GT(totals.morsels, 0u);
    EXPECT_GT(totals.tuples, 0u);
    // Under this much key skew some worker always finishes early and raids
    // a peer; the run-record acceptance check relies on this too. MWay's
    // merge/probe phases deal only one task per worker, so on a machine
    // with >= threads real cores a perfectly synchronized run can finish
    // them steal-free — don't assert steals for it.
    if (id != AlgorithmId::kMway) {
      EXPECT_GT(totals.steals, 0u);
    }
    EXPECT_LE(totals.remote_steals, totals.steals);
  }
}

TEST_F(SchedulerEnvTest, StaticRunCarriesNoMorselCounters) {
  const SkewedWorkload w = MakeSkewedWorkload();
  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  spec.scheduler = SchedulerMode::kStatic;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.matches, w.expected.matches);
  EXPECT_EQ(result.scheduler_resolved, SchedulerMode::kStatic);
  EXPECT_TRUE(result.worker_morsels.empty());
}

// A worker that parks forever must not wedge the steal loop: its dealt
// morsels are drained by thieves, the barrier unwinds via the deadline
// watchdog, and the steal counters show the routed-around work.
TEST_F(SchedulerEnvTest, WorkerStallDoesNotDeadlockTheStealLoop) {
  ASSERT_TRUE(fault::Configure("worker_stall").ok());
  const SkewedWorkload w = MakeSkewedWorkload();
  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  spec.scheduler = SchedulerMode::kMorsel;
  spec.morsel_size = 256;
  spec.deadline_ms = 2000;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kNpj, w.r, w.s, spec);
  // The stalled worker never reaches the build/probe barrier, so the run
  // fails by deadline — but it terminates, and the stalled worker's entire
  // dealt range was stolen by its peers.
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(result.MorselTotals().steals, 0u);
}

// Eager algorithms have no barrier: with first-claimant S ownership the
// live workers absorb the stalled worker's stream share and the join is
// COMPLETE despite the dead thread — only the exit status records it.
TEST_F(SchedulerEnvTest, EagerRunSurvivesAStalledWorkerWithFullResults) {
  ASSERT_TRUE(fault::Configure("worker_stall").ok());
  // Eager workers have no barrier, so with morsel-claimed S ownership the
  // live workers absorb the stalled worker's share and finish the streams;
  // only the exit status records the deadline. Kept small so the live
  // workers drain well before the watchdog fires (the stalled worker parks
  // until cancellation, so the run itself always lasts ~deadline_ms).
  const SkewedWorkload w = MakeSkewedWorkload(2000);
  JoinSpec spec;
  spec.num_threads = 4;
  spec.window_ms = 1000;
  spec.scheduler = SchedulerMode::kMorsel;
  spec.morsel_size = 64;
  spec.deadline_ms = 4000;
  JoinRunner runner;
  const RunResult result = runner.Run(AlgorithmId::kShjJm, w.r, w.s, spec);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.matches, w.expected.matches);
  EXPECT_EQ(result.checksum, w.expected.checksum);
  EXPECT_GT(result.MorselTotals().steals, 0u);
}

}  // namespace
}  // namespace iawj
