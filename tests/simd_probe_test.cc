// Property/fuzz suite for the AVX2 vertical probe (hash/simd_probe.h).
//
// The kernel's contract is sequence equality with the scalar
// LinearProbeTable::Probe: same matches, same order, for every key — across
// dupe-heavy, zipf-skewed, all-miss, and all-hit distributions, and for
// table sizes hugging the 8-lane boundary (0..17 tuples, where a cluster
// scan is all tail). A dedicated dispatch test flips the $IAWJ_SIMD_PROBE
// kill switch and asserts the runtime fallback is engaged and the run
// output is identical either way.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/kernels.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/hash/linear_probe.h"
#include "src/hash/simd_probe.h"
#include "src/join/reference.h"
#include "src/join/runner.h"

namespace iawj {
namespace {

struct Match {
  uint32_t ts;
  uint32_t key;
  bool operator==(const Match& o) const { return ts == o.ts && key == o.key; }
};

std::vector<Match> ScalarMatches(const LinearProbeTable<>& table,
                                 const std::vector<uint32_t>& probes) {
  std::vector<Match> out;
  NullTracer tracer;
  for (const uint32_t key : probes) {
    table.Probe(
        key, [&](Tuple t) { out.push_back({t.ts, t.key}); }, tracer);
  }
  return out;
}

std::vector<Match> SimdMatches(const LinearProbeTable<>& table,
                               const std::vector<uint32_t>& probes) {
  std::vector<Match> out;
  for (const uint32_t key : probes) {
    kernels::SimdProbeKey(table, key,
                          [&](const Tuple& t) { out.push_back({t.ts, t.key}); });
  }
  return out;
}

// Batched entry point (what the join algorithms call): compare against the
// scalar per-key walk including probe-tuple pairing.
std::vector<std::pair<Match, Match>> BatchMatches(
    const LinearProbeTable<>& table, const std::vector<Tuple>& probes) {
  std::vector<std::pair<Match, Match>> out;
  NullTracer tracer;
  kernels::ProbeSimdBatch(
      table, probes.data(), probes.size(),
      [&](const Tuple& s, const Tuple& r) {
        out.push_back({{s.ts, s.key}, {r.ts, r.key}});
      },
      tracer);
  return out;
}

void ExpectSimdEqualsScalar(const std::vector<Tuple>& build,
                            const std::vector<uint32_t>& probes,
                            const std::string& label) {
  SCOPED_TRACE(label + " build=" + std::to_string(build.size()) +
               " probes=" + std::to_string(probes.size()));
  LinearProbeTable<> table(build.size());
  NullTracer tracer;
  for (const Tuple& t : build) table.Insert(t, tracer);

  const std::vector<Match> scalar = ScalarMatches(table, probes);
  const std::vector<Match> simd = SimdMatches(table, probes);
  ASSERT_EQ(simd.size(), scalar.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(simd[i], scalar[i]) << "divergence at match " << i;
  }

  // And through the batch driver, which adds the group prefetch + the
  // 8-probe stripes with a scalar tail.
  std::vector<Tuple> probe_tuples(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    probe_tuples[i] = Tuple{static_cast<uint32_t>(i), probes[i]};
  }
  const auto batched = BatchMatches(table, probe_tuples);
  ASSERT_EQ(batched.size(), scalar.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(batched[i].second, scalar[i]) << "batch divergence at " << i;
  }
}

std::vector<Tuple> TuplesFromKeys(const std::vector<uint32_t>& keys) {
  std::vector<Tuple> out(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = Tuple{static_cast<uint32_t>(i + 1), keys[i]};
  }
  return out;
}

// Table sizes around the 8-lane tail boundary: 0..17 build tuples. With a
// minimum capacity of 32 slots every cluster fits one vector step, so this
// exercises the first-empty-lane masking specifically.
TEST(SimdProbeProperty, TailBoundarySizes) {
  Rng rng(101);
  for (size_t n = 0; n <= 17; ++n) {
    std::vector<uint32_t> keys(n);
    for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(7));
    std::vector<uint32_t> probes;
    for (uint32_t k = 0; k < 8; ++k) probes.push_back(k);  // hits and misses
    ExpectSimdEqualsScalar(TuplesFromKeys(keys), probes,
                           "tail_n" + std::to_string(n));
  }
}

TEST(SimdProbeProperty, DupeHeavy) {
  // Two-key domain: clusters span multiple vector steps once duplicates
  // exceed 8, forcing the idx += 8 continuation path.
  Rng rng(202);
  for (const size_t n : {size_t{24}, size_t{100}, size_t{1000}}) {
    std::vector<uint32_t> keys(n);
    for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(2));
    const std::vector<uint32_t> probes = {0, 1, 2};
    ExpectSimdEqualsScalar(TuplesFromKeys(keys), probes,
                           "dupe_n" + std::to_string(n));
  }
}

TEST(SimdProbeProperty, ZipfSkew) {
  ZipfGenerator zipf(/*n=*/1000, /*theta=*/1.2, /*seed=*/303);
  std::vector<uint32_t> keys(4096);
  for (auto& k : keys) k = static_cast<uint32_t>(zipf.Next());
  Rng rng(404);
  std::vector<uint32_t> probes(512);
  for (auto& p : probes) p = static_cast<uint32_t>(rng.NextBounded(2000));
  ExpectSimdEqualsScalar(TuplesFromKeys(keys), probes, "zipf");
}

TEST(SimdProbeProperty, AllMissAndAllHit) {
  Rng rng(505);
  std::vector<uint32_t> keys(777);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(1u << 20));
  const std::vector<Tuple> build = TuplesFromKeys(keys);

  // All-miss: probe keys from a disjoint range.
  std::vector<uint32_t> misses(256);
  for (auto& p : misses) {
    p = (1u << 22) + static_cast<uint32_t>(rng.NextBounded(1u << 20));
  }
  ExpectSimdEqualsScalar(build, misses, "all_miss");

  // All-hit: probe exactly the built keys, in a shuffled order.
  std::vector<uint32_t> hits = keys;
  for (size_t i = hits.size(); i > 1; --i) {
    std::swap(hits[i - 1], hits[rng.NextBounded(i)]);
  }
  ExpectSimdEqualsScalar(build, hits, "all_hit");
}

TEST(SimdProbeProperty, RandomizedFuzz) {
  // Seeded sweep over mixed shapes: random sizes (tails rarely divisible by
  // 8), random domains from maximal duplication to mostly unique.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 6151 + 3);
    const size_t n = 1 + rng.NextBounded(3000);
    const uint32_t domains[] = {2, 5, 31, 500, 1u << 18};
    const uint32_t domain = domains[rng.NextBounded(5)];
    std::vector<uint32_t> keys(n);
    for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(domain));
    std::vector<uint32_t> probes(1 + rng.NextBounded(900));
    for (auto& p : probes) {
      p = static_cast<uint32_t>(rng.NextBounded(domain + 3));
    }
    ExpectSimdEqualsScalar(TuplesFromKeys(keys), probes,
                           "fuzz_seed" + std::to_string(seed));
  }
}

// Runtime dispatch: $IAWJ_SIMD_PROBE=0 must force the plan's scalar
// fallback (probe variant "batched"), and a run in that state must produce
// byte-identical output to the vector path.
TEST(SimdProbeDispatch, KillSwitchForcesFallbackWithIdenticalOutput) {
  Rng rng(606);
  std::vector<Tuple> r_tuples(1500), s_tuples(1700);
  for (auto& t : r_tuples) {
    t = Tuple{static_cast<uint32_t>(rng.NextBounded(1000)),
              static_cast<uint32_t>(rng.NextBounded(300))};
  }
  for (auto& t : s_tuples) {
    t = Tuple{static_cast<uint32_t>(rng.NextBounded(1000)),
              static_cast<uint32_t>(rng.NextBounded(300))};
  }
  const Stream r = MakeStream(r_tuples);
  const Stream s = MakeStream(s_tuples);
  const ReferenceResult expected = NestedLoopJoin(r.view(), s.view());

  JoinSpec spec;
  spec.num_threads = 2;
  spec.window_ms = 1000;
  spec.clock_mode = Clock::Mode::kInstant;
  spec.kernels = KernelMode::kSimd;
  spec.hash_table_kind = HashTableKind::kLinearProbe;

  const auto run_all = [&](const char* label) {
    SCOPED_TRACE(label);
    std::vector<RunResult> results;
    for (const AlgorithmId id :
         {AlgorithmId::kShjJm, AlgorithmId::kPrj, AlgorithmId::kHhj}) {
      JoinRunner runner;
      results.push_back(runner.Run(id, r, s, spec));
      EXPECT_TRUE(results.back().status.ok())
          << results.back().status.message();
      EXPECT_EQ(results.back().matches, expected.matches);
      EXPECT_EQ(results.back().checksum, expected.checksum);
    }
    return results;
  };

  // Vector path (on AVX2 hosts; on others this is already the fallback).
  ASSERT_EQ(unsetenv("IAWJ_SIMD_PROBE"), 0);
  const std::vector<RunResult> with_simd = run_all("simd_enabled");

  // Forced fallback: the resolved probe variant must say so, and the
  // output must be identical.
  ASSERT_EQ(setenv("IAWJ_SIMD_PROBE", "0", 1), 0);
  EXPECT_FALSE(kernels::SimdProbeSupported());
  EXPECT_STREQ(kernels::SimdProbeUnsupportedReason(),
               "disabled via IAWJ_SIMD_PROBE");
  const std::vector<RunResult> fallback = run_all("simd_killed");
  ASSERT_EQ(unsetenv("IAWJ_SIMD_PROBE"), 0);

  ASSERT_EQ(with_simd.size(), fallback.size());
  for (size_t i = 0; i < with_simd.size(); ++i) {
    EXPECT_EQ(with_simd[i].matches, fallback[i].matches);
    EXPECT_EQ(with_simd[i].checksum, fallback[i].checksum);
    EXPECT_EQ(fallback[i].kernel_probe, "batched");
    if (kernels::SimdProbeSupported()) {
      EXPECT_EQ(with_simd[i].kernel_probe, "simd");
    }
  }
}

}  // namespace
}  // namespace iawj
