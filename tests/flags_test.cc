// Tests for the command-line flag parser and the iawj_cli help table.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "src/common/flags.h"
#include "tools/cli_flags.h"

namespace iawj {
namespace {

FlagParser ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  return parser;
}

TEST(Flags, EqualsForm) {
  FlagParser p = ParseOk({"--algo=npj", "--threads=8", "--delta=0.25"});
  EXPECT_EQ(p.GetString("algo", ""), "npj");
  EXPECT_EQ(p.GetInt("threads", 0), 8);
  EXPECT_DOUBLE_EQ(p.GetDouble("delta", 0), 0.25);
}

TEST(Flags, SpaceForm) {
  FlagParser p = ParseOk({"--algo", "mpass", "--threads", "2"});
  EXPECT_EQ(p.GetString("algo", ""), "mpass");
  EXPECT_EQ(p.GetInt("threads", 0), 2);
}

TEST(Flags, Booleans) {
  FlagParser p = ParseOk({"--simd", "--no-realtime", "--verbose=false"});
  EXPECT_TRUE(p.GetBool("simd", false));
  EXPECT_FALSE(p.GetBool("realtime", true));
  EXPECT_FALSE(p.GetBool("verbose", true));
  EXPECT_TRUE(p.GetBool("absent", true));
  EXPECT_FALSE(p.GetBool("absent2", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  FlagParser p = ParseOk({});
  EXPECT_EQ(p.GetString("x", "fallback"), "fallback");
  EXPECT_EQ(p.GetInt("y", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("z", 1.5), 1.5);
}

TEST(Flags, PositionalArguments) {
  FlagParser p = ParseOk({"first", "--k=v", "second"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "first");
  EXPECT_EQ(p.positional()[1], "second");
}

TEST(Flags, UnknownFlagsAreReported) {
  FlagParser p = ParseOk({"--known=1", "--typo=2"});
  (void)p.GetInt("known", 0);
  const auto unknown = p.Unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, BareDashDashIsError) {
  const char* argv[] = {"prog", "--"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

// --- Help-table drift (tools/cli_flags.h vs tools/iawj_cli.cc) ---

std::set<std::string> TableFlagNames() {
  std::set<std::string> names;
  for (const cli::FlagInfo& f : cli::kFlags) {
    EXPECT_TRUE(names.insert(f.name).second)
        << "duplicate help-table entry --" << f.name;
  }
  return names;
}

TEST(CliFlags, HelpTextListsEveryTableEntryOnce) {
  const std::string help = cli::HelpText();
  for (const cli::FlagInfo& f : cli::kFlags) {
    const std::string needle = "--" + std::string(f.name);
    EXPECT_NE(help.find("  " + needle), std::string::npos)
        << "--" << f.name << " missing from HelpText()";
  }
  EXPECT_NE(help.find("usage:"), std::string::npos);
  EXPECT_NE(help.find("10 degraded"), std::string::npos)
      << "help must summarize the exit codes";
}

// The real drift check: the set of flags iawj_cli.cc consumes (every
// flags.Get*("name") call) must equal the help table exactly — a flag added
// to the parser without a help line fails, as does a documented flag the
// parser no longer reads.
TEST(CliFlags, HelpTableMatchesFlagsConsumedByCli) {
  const std::string path =
      std::string(IAWJ_SOURCE_DIR) + "/tools/iawj_cli.cc";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  std::set<std::string> consumed;
  const std::regex get_call(
      R"(flags\.Get(?:String|Int|Double|Bool)\(\s*\"([a-z0-9-]+)\")");
  for (auto it = std::sregex_iterator(source.begin(), source.end(), get_call);
       it != std::sregex_iterator(); ++it) {
    consumed.insert((*it)[1].str());
  }
  ASSERT_FALSE(consumed.empty()) << "no flags.Get* calls found in " << path;

  const std::set<std::string> documented = TableFlagNames();
  for (const std::string& name : consumed) {
    EXPECT_TRUE(documented.count(name))
        << "iawj_cli.cc consumes --" << name
        << " but tools/cli_flags.h does not document it";
  }
  for (const std::string& name : documented) {
    EXPECT_TRUE(consumed.count(name))
        << "tools/cli_flags.h documents --" << name
        << " but iawj_cli.cc never consumes it";
  }
}

TEST(CliFlags, SchedulerKnobsAreDocumented) {
  const std::set<std::string> documented = TableFlagNames();
  EXPECT_TRUE(documented.count("scheduler"));
  EXPECT_TRUE(documented.count("morsel-size"));
  EXPECT_TRUE(documented.count("help"));
}

}  // namespace
}  // namespace iawj
