// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace iawj {
namespace {

FlagParser ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  return parser;
}

TEST(Flags, EqualsForm) {
  FlagParser p = ParseOk({"--algo=npj", "--threads=8", "--delta=0.25"});
  EXPECT_EQ(p.GetString("algo", ""), "npj");
  EXPECT_EQ(p.GetInt("threads", 0), 8);
  EXPECT_DOUBLE_EQ(p.GetDouble("delta", 0), 0.25);
}

TEST(Flags, SpaceForm) {
  FlagParser p = ParseOk({"--algo", "mpass", "--threads", "2"});
  EXPECT_EQ(p.GetString("algo", ""), "mpass");
  EXPECT_EQ(p.GetInt("threads", 0), 2);
}

TEST(Flags, Booleans) {
  FlagParser p = ParseOk({"--simd", "--no-realtime", "--verbose=false"});
  EXPECT_TRUE(p.GetBool("simd", false));
  EXPECT_FALSE(p.GetBool("realtime", true));
  EXPECT_FALSE(p.GetBool("verbose", true));
  EXPECT_TRUE(p.GetBool("absent", true));
  EXPECT_FALSE(p.GetBool("absent2", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  FlagParser p = ParseOk({});
  EXPECT_EQ(p.GetString("x", "fallback"), "fallback");
  EXPECT_EQ(p.GetInt("y", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("z", 1.5), 1.5);
}

TEST(Flags, PositionalArguments) {
  FlagParser p = ParseOk({"first", "--k=v", "second"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "first");
  EXPECT_EQ(p.positional()[1], "second");
}

TEST(Flags, UnknownFlagsAreReported) {
  FlagParser p = ParseOk({"--known=1", "--typo=2"});
  (void)p.GetInt("known", 0);
  const auto unknown = p.Unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, BareDashDashIsError) {
  const char* argv[] = {"prog", "--"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

}  // namespace
}  // namespace iawj
