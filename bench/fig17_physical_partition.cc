// Figure 17: impact of physical partitioning in SHJ-JM — copying each owned
// tuple into worker-local storage (w/ partitioning) vs passing pointers into
// the shared input arrays (w/o partitioning), data at rest.
//
// Paper shape: a cost shuffle, not a win — w/ partitioning pays more in the
// partition phase but probes with better locality; overall costs end up
// similar, which is why the pointer mode is the default.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 17: physical partitioning of SHJ-JM", scale);
  const uint64_t size = scale.paper ? 2'000'000 : 128'000;

  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 4;
  const MicroWorkload w = GenerateMicro(mspec);

  std::printf("%-16s %12s %12s %12s %12s\n", "config", "partition/in",
              "build/in", "probe/in", "overall/in");
  for (bool physical : {true, false}) {
    JoinSpec spec = bench::AtRestSpec(scale);
    spec.eager_physical_partition = physical;
    const RunResult result =
        bench::RunJoin(AlgorithmId::kShjJm, w.r, w.s, spec);
    const double inputs = static_cast<double>(result.inputs);
    std::printf("%-16s %12.1f %12.1f %12.1f %12.1f\n",
                physical ? "w/_partition" : "w/o_partition",
                result.phases.GetNs(Phase::kPartition) / inputs,
                result.phases.GetNs(Phase::kBuild) / inputs,
                result.phases.GetNs(Phase::kProbe) / inputs,
                result.WorkNsPerInput());
  }
  std::printf(
      "# paper shape: w/ partitioning costs more to partition, less to "
      "build/probe; overall similar (pointer mode is the default)\n");
  return 0;
}
