// Figure 8: cache-efficiency profiling on YSB — simulated L1/L2/L3 misses
// per input tuple during the partition and probe phases.
//
// Substitution: the paper reads Intel PCM counters; this bench replays the
// algorithms' memory accesses through the trace-driven cache simulator
// (profiling/cache_sim.h) sized like the paper's Xeon Gold 6126.
//
// Paper shape: SHJ-JB / PMJ-JB show elevated L1/L2 misses in partitioning
// (content-sensitive routing); all eager algorithms show heavy L1 misses in
// probing (interleaved stream access).
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  // Large enough that the eager hash tables overflow L2; tracing through
  // the simulator costs ~50ns per access, so stay below paper scale.
  bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle(
      "Figure 8: simulated cache misses per input tuple, YSB, by phase",
      scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kYsb, .scale = scale.workload});

  std::printf("%-8s %-10s %10s %10s %10s %10s\n", "algo", "phase", "L1/in",
              "L2/in", "L3/in", "TLB/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    JoinSpec spec = bench::AtRestSpec(scale);  // at rest: pure access pattern
    std::vector<CacheSim> sims;
    sims.reserve(spec.num_threads);
    for (int t = 0; t < spec.num_threads; ++t) {
      sims.push_back(CacheSim::XeonGold6126());
    }
    std::vector<CacheSim*> ptrs;
    for (auto& sim : sims) ptrs.push_back(&sim);

    auto traced = CreateTracedAlgorithm(id);
    JoinRunner runner;
    const RunResult result = runner.RunWith(traced.get(), w.r, w.s, spec,
                                            ptrs.data());
    const double inputs = static_cast<double>(result.inputs);
    for (Phase phase : {Phase::kPartition, Phase::kBuild, Phase::kProbe}) {
      CacheCounters counters;
      for (const auto& sim : sims) counters += sim.counters(phase);
      std::printf("%-8s %-10s %10.3f %10.3f %10.3f %10.3f\n",
                  result.algorithm.c_str(),
                  std::string(PhaseName(phase)).c_str(),
                  counters.l1_misses / inputs, counters.l2_misses / inputs,
                  counters.l3_misses / inputs, counters.tlb_misses / inputs);
    }
  }
  std::printf(
      "# paper shape: JB variants show high partition-phase L1/L2 misses; "
      "all eager algorithms show high probe-phase L1 misses\n");
  return 0;
}
