// Figure 8: cache-efficiency profiling on YSB — misses per input tuple
// during the partition/build/probe phases, by counter source
// (--counters=pmu|sim, default sim):
//   sim  replays the algorithms' memory accesses through the trace-driven
//        cache simulator (profiling/cache_sim.h) sized like the paper's
//        Xeon Gold 6126 — deterministic L1/L2/L3/TLB per phase.
//   pmu  real perf_event counters attributed to phases by the
//        profiling/phase.h hooks (the paper reads Intel PCM). Falls back
//        to sim with a note when the kernel refuses perf_event_open.
//
// Paper shape: SHJ-JB / PMJ-JB show elevated L1/L2 misses in partitioning
// (content-sensitive routing); all eager algorithms show heavy L1 misses in
// probing (interleaved stream access).
#include "bench/bench_util.h"

namespace {

using namespace iawj;

void RunSim(const Workload& w, const bench::Scale& scale) {
  std::printf("%-8s %-10s %10s %10s %10s %10s\n", "algo", "phase",
              "sim_L1/in", "sim_L2/in", "sim_L3/in", "sim_TLB/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    JoinSpec spec = bench::AtRestSpec(scale);  // at rest: pure access pattern
    std::vector<CacheSim> sims;
    sims.reserve(spec.num_threads);
    for (int t = 0; t < spec.num_threads; ++t) {
      sims.push_back(CacheSim::XeonGold6126());
    }
    std::vector<CacheSim*> ptrs;
    for (auto& sim : sims) ptrs.push_back(&sim);

    auto traced = CreateTracedAlgorithm(id);
    JoinRunner runner;
    const RunResult result = runner.RunWith(traced.get(), w.r, w.s, spec,
                                            ptrs.data());
    RunRecordContext context;
    context.bench = bench::BenchBinaryName();
    context.workload = "ysb";
    context.workload_scale = scale.workload;
    MaybeWriteRunRecord(result, spec, context);
    const double inputs = static_cast<double>(result.inputs);
    for (Phase phase : {Phase::kPartition, Phase::kBuild, Phase::kProbe}) {
      CacheCounters counters;
      for (const auto& sim : sims) counters += sim.counters(phase);
      std::printf("%-8s %-10s %10.3f %10.3f %10.3f %10.3f\n",
                  result.algorithm.c_str(),
                  std::string(PhaseName(phase)).c_str(),
                  counters.l1_misses / inputs, counters.l2_misses / inputs,
                  counters.l3_misses / inputs, counters.tlb_misses / inputs);
    }
  }
}

// Per-input delta of a named PMU event within one phase.
double PhasePerInput(const pmu::PmuReport& pmu, uint64_t inputs, Phase phase,
                     const std::string& event) {
  if (inputs == 0) return 0;
  for (size_t e = 0; e < pmu.events.size(); ++e) {
    if (pmu.events[e] == event) {
      return static_cast<double>(pmu.profile.Get(static_cast<int>(phase),
                                                 static_cast<int>(e))) /
             static_cast<double>(inputs);
    }
  }
  return 0;
}

void RunPmu(const Workload& w, const bench::Scale& scale) {
  std::printf("%-8s %-10s %12s %12s %12s %12s\n", "algo", "phase",
              "pmu_cyc/in", "pmu_L1D/in", "pmu_LLC/in", "pmu_TLBD/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    JoinSpec spec = bench::AtRestSpec(scale);
    const RunResult result = bench::RunJoin(id, w.r, w.s, spec, "ysb");
    for (Phase phase : {Phase::kPartition, Phase::kBuild, Phase::kProbe}) {
      std::printf(
          "%-8s %-10s %12.1f %12.3f %12.3f %12.3f\n",
          result.algorithm.c_str(), std::string(PhaseName(phase)).c_str(),
          PhasePerInput(result.pmu, result.inputs, phase, "cycles"),
          PhasePerInput(result.pmu, result.inputs, phase, "l1d_misses"),
          PhasePerInput(result.pmu, result.inputs, phase, "llc_misses"),
          PhasePerInput(result.pmu, result.inputs, phase, "dtlb_misses"));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iawj;
  // Large enough that the eager hash tables overflow L2; tracing through
  // the simulator costs ~50ns per access, so stay below paper scale.
  bench::Scale scale = bench::GetScale(0.05);
  const bench::CounterSource source =
      bench::GetCounterSource(argc, argv, bench::CounterSource::kSim);
  bench::PrintTitle(std::string("Figure 8: ") +
                        bench::CounterSourceName(source) +
                        " cache misses per input tuple, YSB, by phase",
                    scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kYsb, .scale = scale.workload});

  if (source == bench::CounterSource::kPmu) {
    RunPmu(w, scale);
  } else {
    RunSim(w, scale);
  }
  std::printf(
      "# paper shape: JB variants show high partition-phase L1/L2 misses; "
      "all eager algorithms show high probe-phase L1 misses\n");
  return 0;
}
