// Figure 14: impact of window length (v = 12800 tuples/ms, w = 500..2500ms).
//
// Paper shape: throughput stays roughly flat for every algorithm (amortized
// per-tuple cost is window-independent), while processing latency rises with
// the window as more tuples queue up — with a slight throughput dip for the
// eager algorithms from the growing inter-visit footprint.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 14: varying window length (v = 12800)", scale);
  bench::PrintMetricsHeader("fig14_window_length");
  const auto rate =
      static_cast<uint64_t>(std::max(1.0, 12800 * scale.workload));
  for (uint32_t paper_window : {500, 1000, 1500, 2000, 2500}) {
    const uint32_t window =
        scale.paper ? paper_window : paper_window / 5;  // 100..500ms
    MicroSpec mspec;
    mspec.rate_r = mspec.rate_s = rate;
    mspec.window_ms = window;
    mspec.dupe = 2.0;
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::StreamingSpec(scale, window);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      bench::PrintMetricsRow("w=" + std::to_string(paper_window), result);
    }
  }
  std::printf(
      "# paper shape: throughput ~flat in w for all algorithms; p95 latency "
      "grows with w (queueing), eager slightly more than lazy\n");
  return 0;
}
