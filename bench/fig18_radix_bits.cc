// Figure 18: impact of PRJ's number of radix bits (#r), data at rest.
//
// Paper shape: the classic partition/probe tradeoff — more bits raise the
// partitioning cost (more open write streams, TLB pressure) while shrinking
// per-partition probe cost, with the sweet spot near 10 bits on the
// evaluation machine.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 18: PRJ number of radix bits (#r)", scale);
  const uint64_t size = scale.paper ? 4'000'000 : 256'000;

  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 2;
  const MicroWorkload w = GenerateMicro(mspec);

  std::printf("%-6s %14s %14s %14s\n", "#r", "partition/in", "build+probe/in",
              "work_ns/in");
  for (int bits : {8, 10, 12, 14, 16, 18}) {
    JoinSpec spec = bench::AtRestSpec(scale);
    spec.radix_bits = bits;
    const RunResult result = bench::RunJoin(AlgorithmId::kPrj, w.r, w.s, spec);
    const double inputs = static_cast<double>(result.inputs);
    std::printf("%-6d %14.1f %14.1f %14.1f\n", bits,
                result.phases.GetNs(Phase::kPartition) / inputs,
                (result.phases.GetNs(Phase::kBuild) +
                 result.phases.GetNs(Phase::kProbe)) /
                    inputs,
                result.WorkNsPerInput());
  }
  std::printf(
      "# paper shape: partition cost rises with #r, probe cost falls; "
      "total is U-shaped (paper's optimum: #r = 10)\n");
  return 0;
}
