// Figure 7: execution-time breakdown (wait / partition / build-sort / merge /
// probe / others) per input tuple on the four real-world workloads.
//
// Paper shape: Stock is dominated by wait for every algorithm; excluding
// wait, the eager algorithms pay more per tuple, mostly in partitioning
// (ownership + JB status maintenance) and probing.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 7: execution time breakdown (ns per input tuple)",
                    scale);
  std::printf("%-10s %-8s", "workload", "algo");
  for (int p = 0; p < kNumPhases; ++p) {
    std::printf(" %10s", std::string(PhaseName(static_cast<Phase>(p))).c_str());
  }
  std::printf(" %12s\n", "work_total");
  for (const Workload& w : bench::RealWorkloads(scale)) {
    for (AlgorithmId id : bench::AllAlgorithms()) {
      JoinSpec spec = bench::StreamingSpec(scale, 1000);
      spec.clock_mode = w.suggested_clock;
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      std::printf("%-10s %-8s", w.name.c_str(), result.algorithm.c_str());
      for (int p = 0; p < kNumPhases; ++p) {
        const double per_input =
            static_cast<double>(result.phases.GetNs(static_cast<Phase>(p))) /
            static_cast<double>(result.inputs);
        std::printf(" %10.1f", per_input);
      }
      std::printf(" %12.1f\n", result.WorkNsPerInput());
    }
  }
  std::printf(
      "# paper shape: Stock ~all wait; eager algorithms spend most non-wait "
      "time in partition+probe and cost more per tuple than lazy\n");
  return 0;
}
