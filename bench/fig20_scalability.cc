// Figure 20: multicore scalability of MPass (lazy) and SHJ-JM (eager) on
// the four real-world workloads, 1..8 threads.
//
// Substitution note: the validation host exposes a single CPU, so threads
// timeslice and wall-clock speedup cannot appear (wall-based phase timers
// also absorb descheduled time). In addition to measured throughput, this
// bench reports the process CPU time consumed per input tuple and a
// projected speedup  N * cpu_1 / cpu_N  — constant CPU per tuple across
// worker counts projects to linear scaling, i.e. the paper's "no major
// synchronization barriers" finding; inflated CPU per tuple exposes
// contention.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 20: multicore scalability (MPass, SHJ-JM)",
                    scale);
  std::printf("%-10s %-8s %8s %14s %14s %14s\n", "workload", "algo",
              "threads", "tput(in/ms)", "cpu_ns/in", "proj_speedup");
  for (const Workload& w : bench::RealWorkloads(scale)) {
    for (AlgorithmId id : {AlgorithmId::kMpass, AlgorithmId::kShjJm}) {
      double cpu1 = 0;
      for (int threads : {1, 2, 4, 8}) {
        JoinSpec spec = bench::StreamingSpec(scale, 1000);
        spec.clock_mode = w.suggested_clock;
        spec.num_threads = threads;
        const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
        const double cpu_per_input =
            result.inputs > 0
                ? result.cpu_time_ms * 1e6 / static_cast<double>(result.inputs)
                : 0;
        if (threads == 1) cpu1 = cpu_per_input;
        const double projected =
            cpu_per_input > 0 ? threads * cpu1 / cpu_per_input : 0;
        std::printf("%-10s %-8s %8d %14.1f %14.1f %14.2f\n", w.name.c_str(),
                    result.algorithm.c_str(), threads,
                    result.throughput_per_ms, cpu_per_input, projected);
      }
    }
  }
  std::printf(
      "# paper shape: flat for underutilized Stock/YSB; near-linear for "
      "Rovio/DEBS, with SHJ-JM scaling slightly better than MPass\n"
      "# host note: single-CPU machine -> wall throughput cannot rise with "
      "threads; proj_speedup carries the scalability signal\n");
  return 0;
}
