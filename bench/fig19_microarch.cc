// Figure 19: micro-architectural analysis on Rovio.
//
// (a) The paper's top-down breakdown (retiring / core bound / memory bound)
//     comes from hardware PMU counters; this bench reports the portable
//     proxies the simulator and phase profiles provide: per-phase time
//     shares plus simulated miss intensity (L1/L3 misses per input), which
//     separate the same populations — sort-based lazy (high retiring, low
//     misses), NPJ (memory bound), eager (core+memory bound).
// (b) Memory consumption over time from the allocation tracker.
#include "bench/bench_util.h"
#include "src/profiling/resource.h"

int main() {
  using namespace iawj;
  bench::Scale scale = bench::GetScale(0.01);
  bench::PrintTitle("Figure 19: micro-architectural analysis (Rovio)", scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = scale.workload});

  std::printf("--- (a) execution profile proxies ---\n");
  std::printf("%-8s %10s %10s %10s %12s %12s\n", "algo", "cpu%/phase:",
              "partition", "probe", "L1miss/in", "L3miss/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    std::vector<CacheSim> sims;
    for (int t = 0; t < spec.num_threads; ++t) {
      sims.push_back(CacheSim::XeonGold6126());
    }
    std::vector<CacheSim*> ptrs;
    for (auto& sim : sims) ptrs.push_back(&sim);
    auto traced = CreateTracedAlgorithm(id);
    JoinRunner runner;
    const RunResult result =
        runner.RunWith(traced.get(), w.r, w.s, spec, ptrs.data());
    CacheCounters total;
    for (const auto& sim : sims) total += sim.Total();
    const double inputs = static_cast<double>(result.inputs);
    const double work = static_cast<double>(result.phases.TotalNs() -
                                            result.phases.GetNs(Phase::kWait));
    std::printf("%-8s %10s %9.1f%% %9.1f%% %12.2f %12.4f\n",
                result.algorithm.c_str(), "",
                100.0 * result.phases.GetNs(Phase::kPartition) /
                    std::max(work, 1.0),
                100.0 * result.phases.GetNs(Phase::kProbe) /
                    std::max(work, 1.0),
                total.l1_misses / inputs, total.l3_misses / inputs);
  }

  std::printf("\n--- (b) memory consumption over time ---\n");
  std::printf("%-8s %14s   %s\n", "algo", "peak_MB",
              "samples (ms:MB, tracked allocations)");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    ResourceSampler sampler(1.0);
    sampler.Start();
    JoinRunner runner;
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    sampler.Stop();
    std::printf("%-8s %14.2f   ", result.algorithm.c_str(),
                static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
    const auto& samples = sampler.samples();
    const size_t step = std::max<size_t>(1, samples.size() / 8);
    for (size_t i = 0; i < samples.size(); i += step) {
      std::printf("%.0f:%.1f ", samples[i].elapsed_ms,
                  static_cast<double>(samples[i].tracked_bytes) / (1 << 20));
    }
    std::printf("\n");
  }
  std::printf(
      "# paper shape: eager algorithms consume more memory than lazy; "
      "PMJ-JM > PMJ-JB; NPJ > PRJ; MWAY/MPASS carry merge scratch space\n");
  return 0;
}
