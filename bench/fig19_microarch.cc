// Figure 19: micro-architectural analysis on Rovio.
//
// (a) The paper's top-down breakdown (retiring / core bound / memory bound)
//     comes from hardware PMU counters. With --counters=pmu (profiling/
//     pmu.h, kernel permitting) this bench reports the measured proxies:
//     per-phase time shares plus real IPC and LLC misses per input. With
//     --counters=sim (default) it reports the simulator's miss intensity
//     (L1/L3 misses per input). Both separate the same populations —
//     sort-based lazy (high retiring, low misses), NPJ (memory bound),
//     eager (core+memory bound).
// (b) Memory consumption over time from the allocation tracker.
#include "bench/bench_util.h"
#include "src/profiling/resource.h"

namespace {

using namespace iawj;

// Per-input run total of a named PMU event, 0 when not measured.
double PmuPerInput(const pmu::PmuReport& pmu, uint64_t inputs,
                   const std::string& event) {
  if (inputs == 0) return 0;
  for (size_t e = 0; e < pmu.events.size(); ++e) {
    if (pmu.events[e] == event) {
      return static_cast<double>(pmu.profile.Total(static_cast<int>(e))) /
             static_cast<double>(inputs);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iawj;
  bench::Scale scale = bench::GetScale(0.01);
  const bench::CounterSource source =
      bench::GetCounterSource(argc, argv, bench::CounterSource::kSim);
  bench::PrintTitle(std::string("Figure 19: micro-architectural analysis, ") +
                        bench::CounterSourceName(source) +
                        " counters (Rovio)",
                    scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = scale.workload});

  std::printf("--- (a) execution profile proxies ---\n");
  if (source == bench::CounterSource::kPmu) {
    std::printf("%-8s %10s %10s %10s %10s %12s\n", "algo", "cpu%/phase:",
                "partition", "probe", "pmu_IPC", "pmu_LLC/in");
  } else {
    std::printf("%-8s %10s %10s %10s %12s %12s\n", "algo", "cpu%/phase:",
                "partition", "probe", "sim_L1/in", "sim_L3/in");
  }
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    RunResult result;
    CacheCounters total;
    if (source == bench::CounterSource::kPmu) {
      result = bench::RunJoin(id, w.r, w.s, spec, "rovio");
    } else {
      std::vector<CacheSim> sims;
      for (int t = 0; t < spec.num_threads; ++t) {
        sims.push_back(CacheSim::XeonGold6126());
      }
      std::vector<CacheSim*> ptrs;
      for (auto& sim : sims) ptrs.push_back(&sim);
      auto traced = CreateTracedAlgorithm(id);
      JoinRunner runner;
      result = runner.RunWith(traced.get(), w.r, w.s, spec, ptrs.data());
      RunRecordContext context;
      context.bench = bench::BenchBinaryName();
      context.workload = "rovio";
      context.workload_scale = scale.workload;
      MaybeWriteRunRecord(result, spec, context);
      for (const auto& sim : sims) total += sim.Total();
    }
    const double inputs = static_cast<double>(result.inputs);
    const double work = static_cast<double>(result.phases.TotalNs() -
                                            result.phases.GetNs(Phase::kWait));
    const double part_share = 100.0 *
                              result.phases.GetNs(Phase::kPartition) /
                              std::max(work, 1.0);
    const double probe_share = 100.0 * result.phases.GetNs(Phase::kProbe) /
                               std::max(work, 1.0);
    if (source == bench::CounterSource::kPmu) {
      const double cycles = PmuPerInput(result.pmu, result.inputs, "cycles");
      const double instructions =
          PmuPerInput(result.pmu, result.inputs, "instructions");
      std::printf("%-8s %10s %9.1f%% %9.1f%% %10.2f %12.4f\n",
                  result.algorithm.c_str(), "", part_share, probe_share,
                  cycles > 0 ? instructions / cycles : 0,
                  PmuPerInput(result.pmu, result.inputs, "llc_misses"));
    } else {
      std::printf("%-8s %10s %9.1f%% %9.1f%% %12.2f %12.4f\n",
                  result.algorithm.c_str(), "", part_share, probe_share,
                  total.l1_misses / inputs, total.l3_misses / inputs);
    }
  }

  std::printf("\n--- (b) memory consumption over time ---\n");
  std::printf("%-8s %14s   %s\n", "algo", "peak_MB",
              "samples (ms:MB, tracked allocations)");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    ResourceSampler sampler(1.0);
    sampler.Start();
    JoinRunner runner;
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    sampler.Stop();
    std::printf("%-8s %14.2f   ", result.algorithm.c_str(),
                static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
    const auto& samples = sampler.samples();
    const size_t step = std::max<size_t>(1, samples.size() / 8);
    for (size_t i = 0; i < samples.size(); i += step) {
      std::printf("%.0f:%.1f ", samples[i].elapsed_ms,
                  static_cast<double>(samples[i].tracked_bytes) / (1 << 20));
    }
    std::printf("\n");
  }
  std::printf(
      "# paper shape: eager algorithms consume more memory than lazy; "
      "PMJ-JM > PMJ-JB; NPJ > PRJ; MWAY/MPASS carry merge scratch space\n");
  return 0;
}
