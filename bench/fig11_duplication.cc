// Figure 11: impact of key duplication (dupe 1..100, v = 6400 tuples/ms).
//
// Paper shape: beyond dupe ~10 the sort-based algorithms overtake the
// hash-based ones on all three metrics (sequential, cache-aligned duplicate
// runs vs long bucket chains); PMJ-JB leads everything at dupe >= 100.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  const uint32_t window = scale.paper ? 1000 : 300;
  bench::PrintTitle("Figure 11: varying key duplication (v = 6400)", scale);
  bench::PrintMetricsHeader("fig11_duplication");
  const auto rate = static_cast<uint64_t>(std::max(1.0, 6400 * scale.workload));
  for (double dupe : {1.0, 10.0, 50.0, 100.0}) {
    MicroSpec mspec;
    mspec.rate_r = mspec.rate_s = rate;
    mspec.window_ms = window;
    mspec.dupe = dupe;
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::StreamingSpec(scale, window);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      bench::PrintMetricsRow("dupe=" + std::to_string((int)dupe), result);
    }
  }
  std::printf(
      "# paper shape: sort-based (MWAY/MPASS/PMJ) overtake hash-based beyond "
      "dupe~10; PMJ-JB best overall at dupe>=100\n");
  return 0;
}
