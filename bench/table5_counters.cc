// Table 5: hardware counters per input tuple on Rovio.
//
// Counter source is an explicit axis (--counters=pmu|sim, default sim):
//   sim  trace-driven data-side cache simulator (L1D / L2 / L3 / dTLB per
//        input). Deterministic; cannot see instruction-side events.
//   pmu  real perf_event counters (profiling/pmu.h): cycles, IPC, L1D /
//        LLC / dTLB / branch misses per input, as the paper measured via
//        Intel PCM. Requires kernel cooperation; when perf_event_open is
//        refused the bench announces why and falls back to sim.
//
// The analysis in §5.6 rests on the data-side ordering, which both sources
// reproduce: NPJ and the SHJ variants miss catastrophically (shared/huge
// hash tables), PRJ and the sort joins stay cache-friendly.
#include "bench/bench_util.h"

namespace {

using namespace iawj;

void RunSim(const Workload& w, const bench::Scale& scale) {
  std::printf("%-8s %12s %12s %12s %12s\n", "algo", "sim_L1D/in", "sim_L2/in",
              "sim_L3/in", "sim_TLBD/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    std::vector<CacheSim> sims;
    for (int t = 0; t < spec.num_threads; ++t) {
      sims.push_back(CacheSim::XeonGold6126());
    }
    std::vector<CacheSim*> ptrs;
    for (auto& sim : sims) ptrs.push_back(&sim);
    auto traced = CreateTracedAlgorithm(id);
    JoinRunner runner;
    const RunResult result =
        runner.RunWith(traced.get(), w.r, w.s, spec, ptrs.data());
    RunRecordContext context;
    context.bench = bench::BenchBinaryName();
    context.workload = "rovio";
    context.workload_scale = scale.workload;
    MaybeWriteRunRecord(result, spec, context);
    CacheCounters total;
    for (const auto& sim : sims) total += sim.Total();
    const double inputs = static_cast<double>(result.inputs);
    std::printf("%-8s %12.3f %12.3f %12.3f %12.3f\n",
                result.algorithm.c_str(), total.l1_misses / inputs,
                total.l2_misses / inputs, total.l3_misses / inputs,
                total.tlb_misses / inputs);
  }
}

// Per-input value of a named PMU event, 0 when the event was not measured.
double PerInput(const pmu::PmuReport& pmu, uint64_t inputs,
                const std::string& event) {
  if (inputs == 0) return 0;
  for (size_t e = 0; e < pmu.events.size(); ++e) {
    if (pmu.events[e] == event) {
      return static_cast<double>(pmu.profile.Total(static_cast<int>(e))) /
             static_cast<double>(inputs);
    }
  }
  return 0;
}

void RunPmu(const Workload& w, const bench::Scale& scale) {
  std::printf("%-8s %10s %8s %12s %12s %12s %12s\n", "algo", "pmu_cyc/in",
              "pmu_IPC", "pmu_L1D/in", "pmu_LLC/in", "pmu_TLBD/in",
              "pmu_BR/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    const RunResult result = bench::RunJoin(id, w.r, w.s, spec, "rovio");
    const double cycles = PerInput(result.pmu, result.inputs, "cycles");
    const double instructions =
        PerInput(result.pmu, result.inputs, "instructions");
    std::printf("%-8s %10.1f %8.2f %12.3f %12.3f %12.3f %12.3f\n",
                result.algorithm.c_str(), cycles,
                cycles > 0 ? instructions / cycles : 0,
                PerInput(result.pmu, result.inputs, "l1d_misses"),
                PerInput(result.pmu, result.inputs, "llc_misses"),
                PerInput(result.pmu, result.inputs, "dtlb_misses"),
                PerInput(result.pmu, result.inputs, "branch_misses"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iawj;
  bench::Scale scale = bench::GetScale(0.01);
  const bench::CounterSource source =
      bench::GetCounterSource(argc, argv, bench::CounterSource::kSim);
  bench::PrintTitle(std::string("Table 5: ") +
                        bench::CounterSourceName(source) +
                        " counters per input tuple (Rovio)",
                    scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = scale.workload});

  if (source == bench::CounterSource::kPmu) {
    RunPmu(w, scale);
  } else if (source == bench::CounterSource::kSim) {
    RunSim(w, scale);
  } else {
    // --counters=off: wall-clock metrics only.
    bench::PrintMetricsHeader();
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::AtRestSpec(scale);
      bench::PrintMetricsRow("rovio",
                             bench::RunJoin(id, w.r, w.s, spec, "rovio"));
    }
  }
  std::printf(
      "# paper shape: NPJ and SHJ-JM/JB dominate L2/L3 misses (shared or "
      "oversized tables); PRJ/MWAY/MPASS near zero beyond L1; PMJ between\n");
  return 0;
}
