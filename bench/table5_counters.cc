// Table 5: hardware counters per input tuple on Rovio — here, the
// simulated data-side counters (L1D / L2 / L3 / data-TLB misses per input).
//
// Substitution: the paper reads PMU counters (including instruction-side
// TLBI/L1I and branch mispredictions, which a data-access simulator cannot
// see); the analysis in §5.6 rests on the *data*-side ordering, which the
// simulator reproduces: NPJ and the SHJ variants miss catastrophically
// (shared/huge hash tables), PRJ and the sort joins stay cache-friendly.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  bench::Scale scale = bench::GetScale(0.01);
  bench::PrintTitle("Table 5: simulated counters per input tuple (Rovio)",
                    scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = scale.workload});

  std::printf("%-8s %12s %12s %12s %12s\n", "algo", "L1D/in", "L2/in",
              "L3/in", "TLBD/in");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    std::vector<CacheSim> sims;
    for (int t = 0; t < spec.num_threads; ++t) {
      sims.push_back(CacheSim::XeonGold6126());
    }
    std::vector<CacheSim*> ptrs;
    for (auto& sim : sims) ptrs.push_back(&sim);
    auto traced = CreateTracedAlgorithm(id);
    JoinRunner runner;
    const RunResult result =
        runner.RunWith(traced.get(), w.r, w.s, spec, ptrs.data());
    CacheCounters total;
    for (const auto& sim : sims) total += sim.Total();
    const double inputs = static_cast<double>(result.inputs);
    std::printf("%-8s %12.3f %12.3f %12.3f %12.3f\n",
                result.algorithm.c_str(), total.l1_misses / inputs,
                total.l2_misses / inputs, total.l3_misses / inputs,
                total.tlb_misses / inputs);
  }
  std::printf(
      "# paper shape: NPJ and SHJ-JM/JB dominate L2/L3 misses (shared or "
      "oversized tables); PRJ/MWAY/MPASS near zero beyond L1; PMJ between\n");
  return 0;
}
