// google-benchmark microbenchmarks for the substrates: sort kernels
// (vectorized vs scalar), bucket-chain hash build/probe, radix partitioning,
// and merge strategies. These are the kernel-level numbers behind the
// figure-level benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/hash/bucket_chain.h"
#include "src/partition/radix.h"
#include "src/sort/avxsort.h"
#include "src/sort/merge.h"

namespace iawj {
namespace {

std::vector<uint64_t> RandomPacked(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.Next() & 0x7fffffff'ffffffffull;
  return v;
}

std::vector<Tuple> RandomTuples(size_t n, uint32_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> v(n);
  for (auto& t : v) {
    t.key = static_cast<uint32_t>(rng.NextBounded(domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(1000));
  }
  return v;
}

void BM_SortPacked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const sort::Options options{state.range(1) != 0};
  const auto input = RandomPacked(n, 1);
  std::vector<uint64_t> work(n);
  for (auto _ : state) {
    work = input;
    sort::SortPacked(work.data(), n, options);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(options.use_simd ? "simd" : "scalar");
}
BENCHMARK(BM_SortPacked)
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_MergePacked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const sort::Options options{state.range(1) != 0};
  auto a = RandomPacked(n, 2);
  auto b = RandomPacked(n, 3);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> out(2 * n);
  for (auto _ : state) {
    sort::MergePacked(a.data(), n, b.data(), n, out.data(), options);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n);
  state.SetLabel(options.use_simd ? "branchless" : "branchy");
}
BENCHMARK(BM_MergePacked)->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_HashBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t domain = static_cast<uint32_t>(state.range(1));
  const auto input = RandomTuples(n, domain, 4);
  for (auto _ : state) {
    BucketChainTable<> table(n);
    NullTracer tracer;
    for (const Tuple& t : input) table.Insert(t, tracer);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(domain < n ? "duplicated" : "unique-ish");
}
BENCHMARK(BM_HashBuild)
    ->Args({1 << 16, 1 << 30})
    ->Args({1 << 16, 1 << 6});  // heavy duplication: long chains

void BM_HashProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t domain = static_cast<uint32_t>(state.range(1));
  const auto build = RandomTuples(n, domain, 5);
  const auto probe = RandomTuples(n, domain, 6);
  BucketChainTable<> table(n);
  NullTracer tracer;
  for (const Tuple& t : build) table.Insert(t, tracer);
  for (auto _ : state) {
    uint64_t matches = 0;
    for (const Tuple& t : probe) {
      table.Probe(
          t.key, [&](Tuple) { ++matches; }, tracer);
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_HashProbe)->Args({1 << 16, 1 << 30})->Args({1 << 16, 1 << 8});

void BM_RadixPartition(benchmark::State& state) {
  const size_t n = 1 << 18;
  const int bits = static_cast<int>(state.range(0));
  const auto input = RandomTuples(n, 1 << 30, 7);
  std::vector<Tuple> out(n);
  std::vector<uint64_t> offsets;
  NullTracer tracer;
  for (auto _ : state) {
    RadixPartitionSingle(input.data(), n, bits, out.data(), &offsets, tracer);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RadixPartition)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

void BM_MultiwayMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t per_run = 1 << 14;
  std::vector<std::vector<uint64_t>> data(k);
  std::vector<sort::Run> runs;
  for (int i = 0; i < k; ++i) {
    data[i] = RandomPacked(per_run, 10 + i);
    std::sort(data[i].begin(), data[i].end());
    runs.push_back({data[i].data(), data[i].size()});
  }
  std::vector<uint64_t> out(per_run * k);
  for (auto _ : state) {
    sort::MultiwayMerge(runs, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(per_run) * k);
}
BENCHMARK(BM_MultiwayMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace iawj

BENCHMARK_MAIN();
