// google-benchmark microbenchmarks for the substrates: sort kernels
// (vectorized vs scalar), bucket-chain hash build/probe (scalar vs
// prefetch-batched), the AVX2 vertical probe over the linear-probe table
// (scalar vs simd), the shared-table build (latched vs lock-free CAS),
// radix partitioning (scalar vs SWWC scatter), and merge strategies. These
// are the kernel-level numbers behind the figure-level benches.
//
// Two modes:
//   kernels_microbench [gbench flags]   — the usual google-benchmark run.
//   kernels_microbench --json [--out=F] — pinned-scale kernel A/B pass that
//     emits machine-readable JSON (schema iawj-kernels-bench-v2) with
//     per-kernel throughput and scalar-vs-optimized speedups, for
//     scripts/bench_gate.py and the checked-in BENCH_baseline.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/hash/bucket_chain.h"
#include "src/hash/concurrent_table.h"
#include "src/hash/linear_probe.h"
#include "src/hash/lockfree_table.h"
#include "src/hash/prefetch.h"
#include "src/hash/simd_probe.h"
#include "src/partition/radix.h"
#include "src/partition/swwc.h"
#include "src/sort/avxsort.h"
#include "src/sort/merge.h"

namespace iawj {
namespace {

std::vector<uint64_t> RandomPacked(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.Next() & 0x7fffffff'ffffffffull;
  return v;
}

std::vector<Tuple> RandomTuples(size_t n, uint32_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> v(n);
  for (auto& t : v) {
    t.key = static_cast<uint32_t>(rng.NextBounded(domain));
    t.ts = static_cast<uint32_t>(rng.NextBounded(1000));
  }
  return v;
}

void BM_SortPacked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const sort::Options options{state.range(1) != 0};
  const auto input = RandomPacked(n, 1);
  std::vector<uint64_t> work(n);
  for (auto _ : state) {
    work = input;
    sort::SortPacked(work.data(), n, options);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(options.use_simd ? "simd" : "scalar");
}
BENCHMARK(BM_SortPacked)
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_MergePacked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const sort::Options options{state.range(1) != 0};
  auto a = RandomPacked(n, 2);
  auto b = RandomPacked(n, 3);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> out(2 * n);
  for (auto _ : state) {
    sort::MergePacked(a.data(), n, b.data(), n, out.data(), options);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n);
  state.SetLabel(options.use_simd ? "branchless" : "branchy");
}
BENCHMARK(BM_MergePacked)->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_HashBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t domain = static_cast<uint32_t>(state.range(1));
  const bool batched = state.range(2) != 0;
  const auto input = RandomTuples(n, domain, 4);
  for (auto _ : state) {
    BucketChainTable<> table(n);
    NullTracer tracer;
    if (batched) {
      kernels::InsertBatched(table, input.data(), n, tracer);
    } else {
      for (const Tuple& t : input) table.Insert(t, tracer);
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(std::string(domain < n ? "duplicated" : "unique-ish") +
                 (batched ? "/batched" : "/scalar"));
}
BENCHMARK(BM_HashBuild)
    ->Args({1 << 16, 1 << 30, 0})
    ->Args({1 << 16, 1 << 30, 1})
    ->Args({1 << 16, 1 << 6, 0})   // heavy duplication: long chains
    ->Args({1 << 16, 1 << 6, 1});

void BM_HashProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t domain = static_cast<uint32_t>(state.range(1));
  const bool batched = state.range(2) != 0;
  const auto build = RandomTuples(n, domain, 5);
  const auto probe = RandomTuples(n, domain, 6);
  BucketChainTable<> table(n);
  NullTracer tracer;
  for (const Tuple& t : build) table.Insert(t, tracer);
  for (auto _ : state) {
    uint64_t matches = 0;
    if (batched) {
      kernels::ProbeBatched(
          table, probe.data(), n,
          [&](const Tuple&, const Tuple&) { ++matches; }, tracer);
    } else {
      for (const Tuple& t : probe) {
        table.Probe(
            t.key, [&](Tuple) { ++matches; }, tracer);
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(batched ? "batched" : "scalar");
}
BENCHMARK(BM_HashProbe)
    ->Args({1 << 16, 1 << 30, 0})
    ->Args({1 << 16, 1 << 30, 1})
    ->Args({1 << 20, 1 << 30, 0})  // table ~4x L2: misses dominate
    ->Args({1 << 20, 1 << 30, 1})
    ->Args({1 << 16, 1 << 8, 0})
    ->Args({1 << 16, 1 << 8, 1});

void BM_LinearProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t domain = static_cast<uint32_t>(state.range(1));
  const bool simd = state.range(2) != 0;
  const auto build = RandomTuples(n, domain, 5);
  const auto probe = RandomTuples(n, domain, 6);
  LinearProbeTable<> table(n);
  NullTracer tracer;
  for (const Tuple& t : build) table.Insert(t, tracer);
  for (auto _ : state) {
    uint64_t matches = 0;
    if (simd) {
      kernels::ProbeSimdBatch(
          table, probe.data(), n,
          [&](const Tuple&, const Tuple&) { ++matches; }, tracer);
    } else {
      for (const Tuple& t : probe) {
        table.Probe(
            t.key, [&](Tuple) { ++matches; }, tracer);
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_LinearProbe)
    ->Args({1 << 16, 1 << 30, 0})
    ->Args({1 << 16, 1 << 30, 1})
    ->Args({1 << 20, 1 << 30, 0})  // table ~4x L2: misses dominate
    ->Args({1 << 20, 1 << 30, 1})
    ->Args({1 << 16, 1 << 8, 0})   // long clusters: multi-step scans
    ->Args({1 << 16, 1 << 8, 1});

void BM_SharedBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool lockfree = state.range(2) != 0;
  const auto input = RandomTuples(n, 1u << 30, 4);
  const auto build_with = [&](auto& table) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        NullTracer tracer;
        const size_t begin = n * t / threads;
        const size_t end = n * (t + 1) / threads;
        for (size_t i = begin; i < end; ++i) table.Insert(input[i], tracer);
      });
    }
    for (auto& w : workers) w.join();
  };
  for (auto _ : state) {
    if (lockfree) {
      LockFreeChainTable<> table(n);
      build_with(table);
      benchmark::DoNotOptimize(table.size());
    } else {
      ConcurrentBucketChainTable<> table(n);
      build_with(table);
      benchmark::DoNotOptimize(table.memory_bytes());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(lockfree ? "lockfree" : "latched");
}
BENCHMARK(BM_SharedBuild)
    ->Args({1 << 16, 1, 0})
    ->Args({1 << 16, 1, 1})
    ->Args({1 << 16, 4, 0})
    ->Args({1 << 16, 4, 1});

void BM_RadixPartition(benchmark::State& state) {
  const size_t n = 1 << 18;
  const int bits = static_cast<int>(state.range(0));
  const bool use_swwc = state.range(1) != 0;
  const auto input = RandomTuples(n, 1 << 30, 7);
  std::vector<Tuple> out(n);
  std::vector<uint64_t> offsets;
  NullTracer tracer;
  for (auto _ : state) {
    RadixPartitionSingle(input.data(), n, bits, out.data(), &offsets, tracer,
                         use_swwc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(use_swwc ? "swwc" : "scalar");
}
BENCHMARK(BM_RadixPartition)
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({14, 0})
    ->Args({14, 1})
    ->Args({18, 0})
    ->Args({18, 1});  // past swwc::kMaxBits: swwc falls back to scalar

void BM_MultiwayMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t per_run = 1 << 14;
  std::vector<std::vector<uint64_t>> data(k);
  std::vector<sort::Run> runs;
  for (int i = 0; i < k; ++i) {
    data[i] = RandomPacked(per_run, 10 + i);
    std::sort(data[i].begin(), data[i].end());
    runs.push_back({data[i].data(), data[i].size()});
  }
  std::vector<uint64_t> out(per_run * k);
  for (auto _ : state) {
    sort::MultiwayMerge(runs, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(per_run) * k);
}
BENCHMARK(BM_MultiwayMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// --- --json mode: pinned-scale kernel A/B for the bench-regression gate ---
//
// Deliberately not google-benchmark: the gate needs a stable schema, a fixed
// workload, and best-of-N timing (min wall time over repetitions damps
// scheduler noise on shared CI runners).

constexpr size_t kJsonScatterTuples = 1 << 23;
constexpr size_t kJsonHashTuples = 1 << 16;
constexpr size_t kJsonBigHashTuples = 1 << 20;
constexpr int kJsonReps = 7;

// Best-of-reps items/sec for fn() processing `items` tuples per call.
template <typename Fn>
double MeasureItemsPerSec(size_t items, int reps, Fn&& fn) {
  double best_sec = 1e100;
  fn();  // warmup (also faults in buffers)
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best_sec = std::min(best_sec, elapsed.count());
  }
  return static_cast<double>(items) / best_sec;
}

struct JsonResult {
  std::string name;
  double items_per_sec;
};

void RunScatterJson(std::vector<JsonResult>* results) {
  const size_t n = kJsonScatterTuples;
  const auto input = RandomTuples(n, 1 << 30, 7);
  std::vector<Tuple> out(n);
  NullTracer tracer;
  for (int bits : {6, 10, 14}) {
    const size_t parts = size_t{1} << bits;
    std::vector<uint64_t> hist(parts, 0);
    RadixHistogram(input.data(), n, bits, hist.data());
    std::vector<uint64_t> offsets(parts + 1, 0);
    for (size_t p = 0; p < parts; ++p) offsets[p + 1] = offsets[p] + hist[p];
    std::vector<uint64_t> cursors(parts);
    for (const bool swwc : {false, true}) {
      const double rate = MeasureItemsPerSec(n, kJsonReps, [&] {
        std::copy(offsets.begin(), offsets.end() - 1, cursors.begin());
        RadixScatterKernel(input.data(), n, bits, cursors.data(), out.data(),
                           tracer, swwc);
      });
      results->push_back({"scatter/bits=" + std::to_string(bits) +
                              (swwc ? "/swwc" : "/scalar"),
                          rate});
    }
  }
}

void RunHashJson(std::vector<JsonResult>* results) {
  NullTracer tracer;
  const auto bench_probe = [&](const std::string& label, size_t n,
                               uint32_t domain) {
    const auto build = RandomTuples(n, domain, 5);
    const auto probe = RandomTuples(n, domain, 6);
    BucketChainTable<> table(n);
    for (const Tuple& t : build) table.Insert(t, tracer);
    uint64_t matches = 0;
    const double scalar = MeasureItemsPerSec(n, kJsonReps, [&] {
      for (const Tuple& t : probe) {
        table.Probe(
            t.key, [&](Tuple) { ++matches; }, tracer);
      }
    });
    const double batched = MeasureItemsPerSec(n, kJsonReps, [&] {
      kernels::ProbeBatched(
          table, probe.data(), n,
          [&](const Tuple&, const Tuple&) { ++matches; }, tracer);
    });
    // `matches` anchors the probe loops against dead-code elimination.
    if (matches == 0xffffffffffffffffull) std::puts("");
    results->push_back({"probe/" + label + "/scalar", scalar});
    results->push_back({"probe/" + label + "/batched", batched});
  };
  bench_probe("n=64k", kJsonHashTuples, 1u << 30);
  bench_probe("n=1m", kJsonBigHashTuples, 1u << 30);

  const size_t n = kJsonHashTuples;
  const auto input = RandomTuples(n, 1u << 30, 4);
  for (const bool batched : {false, true}) {
    const double rate = MeasureItemsPerSec(n, kJsonReps, [&] {
      BucketChainTable<> table(n);
      if (batched) {
        kernels::InsertBatched(table, input.data(), n, tracer);
      } else {
        for (const Tuple& t : input) table.Insert(t, tracer);
      }
    });
    results->push_back(
        {std::string("build/n=64k/") + (batched ? "batched" : "scalar"),
         rate});
  }
}

// Linear-probe table: scalar per-key probe vs the AVX2 vertical probe. On
// hosts without AVX2 (or with $IAWJ_SIMD_PROBE=0) the "simd" side runs the
// scalar fallback; the emitted simd_probe_supported flag lets the gate skip
// the vector floor there instead of failing it.
void RunSimdProbeJson(std::vector<JsonResult>* results) {
  NullTracer tracer;
  const auto bench = [&](const std::string& label, size_t n,
                         uint32_t domain) {
    const auto build = RandomTuples(n, domain, 5);
    const auto probe = RandomTuples(n, domain, 6);
    LinearProbeTable<> table(n);
    for (const Tuple& t : build) table.Insert(t, tracer);
    uint64_t matches = 0;
    const double scalar = MeasureItemsPerSec(n, kJsonReps, [&] {
      for (const Tuple& t : probe) {
        table.Probe(
            t.key, [&](Tuple) { ++matches; }, tracer);
      }
    });
    const double simd = MeasureItemsPerSec(n, kJsonReps, [&] {
      kernels::ProbeSimdBatch(
          table, probe.data(), n,
          [&](const Tuple&, const Tuple&) { ++matches; }, tracer);
    });
    if (matches == 0xffffffffffffffffull) std::puts("");
    results->push_back({"probe/linear/" + label + "/scalar", scalar});
    results->push_back({"probe/linear/" + label + "/simd", simd});
  };
  bench("n=64k", kJsonHashTuples, 1u << 30);
  bench("n=1m", kJsonBigHashTuples, 1u << 30);
}

// Shared-table build, 4 threads over one table: per-bucket-latched
// ConcurrentBucketChainTable vs the CAS head-push LockFreeChainTable.
void RunSharedBuildJson(std::vector<JsonResult>* results) {
  const size_t n = kJsonHashTuples;
  const int threads = 4;
  const auto input = RandomTuples(n, 1u << 30, 4);
  const auto build_with = [&](auto& table) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        NullTracer tracer;
        const size_t begin = n * t / threads;
        const size_t end = n * (t + 1) / threads;
        for (size_t i = begin; i < end; ++i) table.Insert(input[i], tracer);
      });
    }
    for (auto& w : workers) w.join();
  };
  const double latched = MeasureItemsPerSec(n, kJsonReps, [&] {
    ConcurrentBucketChainTable<> table(n);
    build_with(table);
  });
  const double lockfree = MeasureItemsPerSec(n, kJsonReps, [&] {
    LockFreeChainTable<> table(n);
    build_with(table);
  });
  results->push_back({"build/shared/n=64k/latched", latched});
  results->push_back({"build/shared/n=64k/lockfree", lockfree});
}

double FindRate(const std::vector<JsonResult>& results,
                const std::string& name) {
  for (const auto& r : results) {
    if (r.name == name) return r.items_per_sec;
  }
  return 0;
}

int RunJsonMode(const std::string& out_path) {
  std::vector<JsonResult> results;
  RunScatterJson(&results);
  RunHashJson(&results);
  RunSimdProbeJson(&results);
  RunSharedBuildJson(&results);

  json::Writer w;
  w.BeginObject();
  w.Field("schema", "iawj-kernels-bench-v2");
  w.Field("simd_probe_supported", kernels::SimdProbeSupported());
  w.Key("scale").BeginObject();
  w.Field("scatter_tuples", uint64_t{kJsonScatterTuples});
  w.Field("hash_tuples", uint64_t{kJsonHashTuples});
  w.Field("big_hash_tuples", uint64_t{kJsonBigHashTuples});
  w.Field("reps", int64_t{kJsonReps});
  w.EndObject();
  w.Key("results").BeginArray();
  for (const auto& r : results) {
    w.BeginObject();
    w.Field("name", r.name);
    w.Field("items_per_sec", r.items_per_sec);
    w.EndObject();
  }
  w.EndArray();
  // Optimized-vs-baseline speedups of the same run: the
  // hardware-normalized numbers the gate's ratio mode compares.
  //
  // "build/n=64k" (batched vs scalar bucket-chain build) is deliberately
  // absent: it measured 0.95x of scalar, so the batched build is retired —
  // its raw rates stay in `results` for reference, but a gate must not
  // bless a regression as a floor. See notes.batched_build below.
  w.Key("speedups").BeginObject();
  for (const auto& pair : std::vector<std::pair<std::string, std::string>>{
           {"scatter/bits=6", "swwc"},
           {"scatter/bits=10", "swwc"},
           {"scatter/bits=14", "swwc"},
           {"probe/n=64k", "batched"},
           {"probe/n=1m", "batched"},
           {"probe/linear/n=64k", "simd"},
           {"probe/linear/n=1m", "simd"}}) {
    const double scalar = FindRate(results, pair.first + "/scalar");
    const double fast = FindRate(results, pair.first + "/" + pair.second);
    if (scalar > 0) w.Field(pair.first, fast / scalar);
  }
  {
    const double latched = FindRate(results, "build/shared/n=64k/latched");
    const double lockfree = FindRate(results, "build/shared/n=64k/lockfree");
    if (latched > 0) w.Field("build/shared/n=64k", lockfree / latched);
  }
  w.EndObject();
  w.Key("notes").BeginObject();
  w.Field("batched_build",
          "retired: batched bucket-chain build measured 0.95x of scalar "
          "(build/n=64k); builds resolve to scalar, raw rates kept for "
          "reference and excluded from gated speedups");
  w.EndObject();
  w.EndObject();

  if (out_path.empty()) {
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);
  return 0;
}

}  // namespace
}  // namespace iawj

int main(int argc, char** argv) {
  std::string out_path;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_mode = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (json_mode) return iawj::RunJsonMode(out_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
