// Extension: decision-tree validation (Figure 4 end-to-end).
//
// For a grid of Micro workloads spanning the tree's branches, measures all
// eight algorithms, then checks where the tree's recommendation lands
// relative to the best measured algorithm for the declared objective. The
// paper offers the tree as guidance ("qualitative remarks are relative");
// this bench quantifies how well it holds on this machine.
#include <cmath>

#include "bench/bench_util.h"
#include "src/join/decision_tree.h"

namespace {

struct GridCase {
  const char* name;
  iawj::MicroSpec spec;
  iawj::Objective objective;
};

double MetricOf(const iawj::RunResult& result, iawj::Objective objective) {
  switch (objective) {
    case iawj::Objective::kThroughput:
      return result.throughput_per_ms;  // higher is better
    case iawj::Objective::kLatency:
      return -result.p95_latency_ms;  // lower is better
    case iawj::Objective::kProgressiveness:
      return -result.progress.TimeToFractionMs(0.5);
  }
  return 0;
}

}  // namespace

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Extension: decision tree validation on a Micro grid",
                    scale);

  const auto rate = [&](uint64_t paper_rate) {
    return static_cast<uint64_t>(std::max(1.0, paper_rate * scale.workload));
  };

  std::vector<GridCase> grid;
  {
    MicroSpec low;
    low.rate_r = low.rate_s = rate(200);
    low.window_ms = 200;
    low.dupe = 2;
    grid.push_back({"low_rate/latency", low, Objective::kLatency});

    MicroSpec high_dup;
    high_dup.rate_r = high_dup.rate_s = rate(25600);
    high_dup.window_ms = 200;
    high_dup.dupe = 100;
    grid.push_back({"high_rate_dupe/tput", high_dup, Objective::kThroughput});

    MicroSpec high_uniq;
    high_uniq.rate_r = high_uniq.rate_s = rate(25600);
    high_uniq.window_ms = 200;
    high_uniq.dupe = 1;
    grid.push_back({"high_rate_uniq/tput", high_uniq,
                    Objective::kThroughput});

    MicroSpec med;
    med.rate_r = med.rate_s = rate(6400);
    med.window_ms = 200;
    med.dupe = 100;
    grid.push_back({"med_rate_dupe/prog", med, Objective::kProgressiveness});
  }

  // The tree's qualitative levels are relative to the machine/workload
  // regime (paper §5.1); scale the rate/size thresholds with the workloads.
  DecisionThresholds thresholds;
  thresholds.low_rate_per_ms *= scale.workload;
  thresholds.high_rate_per_ms *= scale.workload;
  thresholds.large_input = static_cast<uint64_t>(
      static_cast<double>(thresholds.large_input) * scale.workload);

  std::printf("%-22s %-10s %-10s %8s\n", "case", "picked", "best",
              "pick_gap");
  int agree = 0;
  for (const GridCase& gc : grid) {
    const MicroWorkload w = GenerateMicro(gc.spec);
    const WorkloadProfile profile =
        ProfileFromStats(ComputeStats(w.r), ComputeStats(w.s), thresholds);
    const AlgorithmId pick = RecommendAlgorithm(
        profile, gc.objective, {.num_cores = scale.threads}, thresholds);

    double best_metric = -1e300, pick_metric = 0;
    AlgorithmId best = AlgorithmId::kNpj;
    for (AlgorithmId id : bench::AllAlgorithms()) {
      JoinSpec spec = bench::StreamingSpec(scale, gc.spec.window_ms);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      const double metric = MetricOf(result, gc.objective);
      if (metric > best_metric) {
        best_metric = metric;
        best = id;
      }
      if (id == pick) pick_metric = metric;
    }
    const double gap =
        best_metric != 0 ? std::abs((best_metric - pick_metric) /
                                    best_metric)
                         : 0;
    if (pick == best || gap < 0.25) ++agree;
    std::printf("%-22s %-10s %-10s %7.1f%%\n", gc.name,
                std::string(AlgorithmName(pick)).c_str(),
                std::string(AlgorithmName(best)).c_str(), 100 * gap);
  }
  std::printf("# %d/%zu recommendations optimal or within 25%% of optimal\n",
              agree, grid.size());
  return 0;
}
