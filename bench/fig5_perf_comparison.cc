// Figure 5: throughput and 95th-percentile latency of all eight algorithms
// on the four real-world workloads.
//
// Paper shape to look for: lazy algorithms reach better-or-comparable
// throughput everywhere (up to ~5x on DEBS); eager algorithms win on latency
// for the low-rate Stock workload; sort-based algorithms lead on the
// high-duplication Rovio and DEBS, hash-based on Stock and YSB.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle(
      "Figure 5: throughput & 95th latency, 8 algorithms x 4 workloads",
      scale);
  bench::PrintMetricsHeader("fig5_perf_comparison");
  for (const Workload& w : bench::RealWorkloads(scale)) {
    for (AlgorithmId id : bench::AllAlgorithms()) {
      JoinSpec spec = bench::StreamingSpec(scale, 1000);
      spec.clock_mode = w.suggested_clock;
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      bench::PrintMetricsRow(w.name, result);
    }
  }
  std::printf(
      "# paper shape: lazy >= eager throughput on all workloads (up to 5x on "
      "DEBS); eager lower latency on Stock/YSB; sort-based best on "
      "Rovio/DEBS (high dupe), hash-based on Stock/YSB\n");
  return 0;
}
