// Figure 6: progressiveness (cumulative fraction of matches over elapsed
// time) of all algorithms on the four real-world workloads.
//
// Paper shape: the eager approach delivers the first matches far earlier
// (e.g. SHJ-JM reaches 50% of Stock ~1.5x sooner than the best lazy
// algorithm), but a fast lazy algorithm can finish outright before an eager
// one reaches the same fraction (MPass vs PMJ-JM on Rovio).
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 6: progressiveness on real-world workloads",
                    scale);
  std::printf("%-10s %-8s %10s %10s %10s %10s   %s\n", "workload", "algo",
              "t10%(ms)", "t50%(ms)", "t90%(ms)", "t100%(ms)",
              "curve (t:cum%)");
  for (const Workload& w : bench::RealWorkloads(scale)) {
    for (AlgorithmId id : bench::AllAlgorithms()) {
      JoinSpec spec = bench::StreamingSpec(scale, 1000);
      spec.clock_mode = w.suggested_clock;
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      std::printf("%-10s %-8s %10.1f %10.1f %10.1f %10.1f   ",
                  w.name.c_str(), result.algorithm.c_str(),
                  result.progress.TimeToFractionMs(0.10),
                  result.progress.TimeToFractionMs(0.50),
                  result.progress.TimeToFractionMs(0.90),
                  result.progress.TimeToFractionMs(1.0));
      // A compact sampling of the CDF for plotting.
      const auto curve = result.progress.Curve();
      const size_t step = curve.empty() ? 1 : std::max<size_t>(1, curve.size() / 6);
      for (size_t i = 0; i < curve.size(); i += step) {
        std::printf("%.0f:%.0f%% ", curve[i].first, curve[i].second * 100);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "# paper shape: eager (SHJ/PMJ) reach low fractions earliest; lazy can "
      "surpass them at high fractions on heavy workloads (Rovio/DEBS)\n");
  return 0;
}
