// Shared helpers for the per-table/figure benchmark binaries.
//
// Every bench defaults to scaled-down inputs so the full suite completes on
// a small machine; environment variables restore or tune the scale:
//   IAWJ_PAPER_SCALE=1  run paper-sized workloads (Table 3 / §5.4 values)
//   IAWJ_SCALE=<f>      explicit workload scale factor (overrides default)
//   IAWJ_THREADS=<n>    worker threads (default 4; paper uses up to 8)
#ifndef IAWJ_BENCH_BENCH_UTIL_H_
#define IAWJ_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/datagen/micro.h"
#include "src/datagen/real_world.h"
#include "src/join/runner.h"
#include "src/profiling/pmu.h"
#include "src/profiling/run_record.h"
#include "src/report/report.h"

namespace iawj::bench {

struct Scale {
  double workload = 0.05;  // multiplies stream sizes/rates
  int threads = 4;
  bool paper = false;
};

// Strictly-parsed env integer: the whole value must be a number, and values
// below `min_value` clamp with a warning (IAWJ_THREADS=0 or =abc previously
// produced a 0-thread runner via atoi and aborted deep in the runner).
inline int GetEnvInt(const char* name, int fallback, int min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    std::fprintf(stderr, "warning: %s=%s is not a number; using %d\n", name,
                 env, fallback);
    return fallback;
  }
  if (value < min_value) {
    std::fprintf(stderr, "warning: %s=%s clamped to %d\n", name, env,
                 min_value);
    return min_value;
  }
  return static_cast<int>(value);
}

// Strictly-parsed env double; non-positive or unparsable values fall back.
inline double GetEnvPositiveDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(value > 0)) {
    std::fprintf(stderr, "warning: %s=%s is not a positive number; using %g\n",
                 name, env, fallback);
    return fallback;
  }
  return value;
}

// Last GetScale result, for emitters that need provenance (run records).
inline Scale& CurrentScale() {
  static Scale scale;
  return scale;
}

inline Scale GetScale(double default_workload_scale = 0.05) {
  Scale scale;
  scale.workload = default_workload_scale;
  if (const char* env = std::getenv("IAWJ_PAPER_SCALE");
      env != nullptr && std::string(env) == "1") {
    scale.paper = true;
    scale.workload = 1.0;
    scale.threads = 8;
  }
  scale.workload = GetEnvPositiveDouble("IAWJ_SCALE", scale.workload);
  scale.threads = GetEnvInt("IAWJ_THREADS", scale.threads, /*min_value=*/1);
  CurrentScale() = scale;
  return scale;
}

// Short name of the running bench binary, for run-record provenance.
inline std::string BenchBinaryName() {
#ifdef __GLIBC__
  if (::program_invocation_short_name != nullptr) {
    return ::program_invocation_short_name;
  }
#endif
  return "bench";
}

inline std::vector<AlgorithmId> AllAlgorithms() {
  return {kAllAlgorithms, kAllAlgorithms + 8};
}

inline void PrintTitle(const std::string& title, const Scale& scale) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("# scale=%.3g threads=%d%s\n", scale.workload, scale.threads,
              scale.paper ? " (paper scale)" : "");
}

// Runs one experiment with the given spec and prints nothing; convenience
// wrapper keeping bench mains compact. When IAWJ_METRICS_DIR is set, every
// run additionally leaves one JSON run record behind, so all bench binaries
// feed the repo's perf trajectory without per-bench code.
inline RunResult RunJoin(AlgorithmId id, const Stream& r, const Stream& s,
                         const JoinSpec& spec,
                         const std::string& workload_label = "") {
  JoinRunner runner;
  const RunResult result = runner.Run(id, r, s, spec);
  RunRecordContext context;
  context.bench = BenchBinaryName();
  context.workload = workload_label;
  context.workload_scale = CurrentScale().workload;
  MaybeWriteRunRecord(result, spec, context);
  return result;
}

// Collects the standard metric rows of a bench run; when IAWJ_CSV_DIR is
// set, FlushCsv writes them as <dir>/<name>.csv and a companion gnuplot
// script for the throughput series.
class MetricsCollector {
 public:
  explicit MetricsCollector(std::string name)
      : name_(std::move(name)),
        table_({"workload", "algo", "tput_per_ms", "p95_latency_ms",
                "t50_ms", "matches", "peak_mb"}) {}

  void Add(const std::string& workload, const RunResult& result) {
    table_.AddRow(
        {workload, result.algorithm,
         report::Table::Num(result.throughput_per_ms, 1),
         report::Table::Num(result.p95_latency_ms, 3),
         report::Table::Num(result.progress.TimeToFractionMs(0.5), 1),
         std::to_string(result.matches),
         report::Table::Num(
             static_cast<double>(result.peak_tracked_bytes) / (1 << 20),
             2)});
  }

  ~MetricsCollector() {
    report::MaybeWriteCsv(table_, name_);
    const std::string dir = report::CsvDir();
    if (!dir.empty() && table_.num_rows() > 0) {
      const std::string script = report::GnuplotScript(
          name_, table_, "workload", "algo", "tput_per_ms");
      std::FILE* f = std::fopen((dir + "/" + name_ + ".gp").c_str(), "w");
      if (f != nullptr) {
        std::fputs(script.c_str(), f);
        std::fclose(f);
      }
    }
  }

 private:
  std::string name_;
  report::Table table_;
};

// Per-bench singleton used by PrintMetricsRow; set by PrintMetricsHeader.
inline std::unique_ptr<MetricsCollector>& Collector() {
  static std::unique_ptr<MetricsCollector> collector;
  return collector;
}

// Standard per-algorithm metric row used by several figures.
inline void PrintMetricsHeader(const std::string& csv_name = "") {
  if (!csv_name.empty()) {
    Collector() = std::make_unique<MetricsCollector>(csv_name);
  }
  std::printf("%-10s %-8s %14s %14s %12s %12s %12s\n", "workload", "algo",
              "tput(in/ms)", "p95_lat(ms)", "t50%(ms)", "matches",
              "peak_MB");
}

inline void PrintMetricsRow(const std::string& workload,
                            const RunResult& result) {
  if (Collector() != nullptr) Collector()->Add(workload, result);
  std::printf("%-10s %-8s %14.1f %14.3f %12.1f %12llu %12.2f\n",
              workload.c_str(), result.algorithm.c_str(),
              result.throughput_per_ms, result.p95_latency_ms,
              result.progress.TimeToFractionMs(0.5),
              static_cast<unsigned long long>(result.matches),
              static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
}

// The four real-world workloads at the given scale.
inline std::vector<Workload> RealWorkloads(const Scale& scale,
                                           uint32_t window_ms = 1000) {
  std::vector<Workload> workloads;
  for (RealWorkload which : kAllRealWorkloads) {
    workloads.push_back(GenerateRealWorld(
        {.which = which, .scale = scale.workload, .window_ms = window_ms}));
  }
  return workloads;
}

// JB requires the group size to divide the thread count; env-chosen odd
// thread counts (IAWJ_THREADS=1, 3, ...) would otherwise crash every bench
// that runs a JB algorithm.
inline void FixJbGroup(JoinSpec* spec) {
  if (spec->jb_group_size <= 0 ||
      spec->num_threads % spec->jb_group_size != 0) {
    spec->jb_group_size = 1;
  }
}

// Spec preset for streaming (real-time gated) runs. On scaled-down runs the
// window is also shortened so wall time stays small.
inline JoinSpec StreamingSpec(const Scale& scale, uint32_t window_ms) {
  JoinSpec spec;
  spec.num_threads = scale.threads;
  spec.window_ms = window_ms;
  spec.clock_mode = Clock::Mode::kRealTime;
  FixJbGroup(&spec);
  return spec;
}

// Spec preset for at-rest (instant clock) runs.
inline JoinSpec AtRestSpec(const Scale& scale) {
  JoinSpec spec;
  spec.num_threads = scale.threads;
  spec.window_ms = 1u << 30;
  spec.clock_mode = Clock::Mode::kInstant;
  FixJbGroup(&spec);
  return spec;
}

// --- Counter-source axis (--counters=pmu|sim|off) --------------------------
//
// The microarchitecture benches (table5_counters, fig8_cache_profile,
// fig19_microarch, table6_utilization) can report either the trace-driven
// cache simulator or real hardware counters (profiling/pmu.h). The axis is
// explicit so printed tables always name the source they measured — the old
// headers hardcoded "simulated" even though nothing else existed.

enum class CounterSource {
  kOff,  // wall-clock metrics only
  kSim,  // cache-simulator instrumented algorithm (deterministic, slow)
  kPmu,  // perf_event hardware counters (needs kernel cooperation)
};

inline const char* CounterSourceName(CounterSource source) {
  switch (source) {
    case CounterSource::kOff:
      return "off";
    case CounterSource::kSim:
      return "sim";
    case CounterSource::kPmu:
      return "pmu";
  }
  return "?";
}

// Parses --counters from argv (default per bench; $IAWJ_PMU=1 upgrades the
// default to pmu so the acceptance flow `IAWJ_PMU=1 bench/...` needs no
// flag). An unknown value warns and keeps the default — a bench must never
// die over a spelling, it is often deep inside a driver script. When pmu is
// selected, PMU measurement is force-requested for this process.
inline CounterSource GetCounterSource(int argc, const char* const* argv,
                                      CounterSource fallback) {
  CounterSource source = fallback;
  if (const char* env = std::getenv("IAWJ_PMU");
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    source = CounterSource::kPmu;
  }
  FlagParser parser;
  if (parser.Parse(argc, argv).ok()) {
    const std::string value =
        parser.GetString("counters", CounterSourceName(source));
    if (value == "off") {
      source = CounterSource::kOff;
    } else if (value == "sim") {
      source = CounterSource::kSim;
    } else if (value == "pmu") {
      source = CounterSource::kPmu;
    } else {
      std::fprintf(stderr,
                   "warning: --counters=%s not in {off,sim,pmu}; using %s\n",
                   value.c_str(), CounterSourceName(source));
    }
  }
  if (source == CounterSource::kPmu) {
    pmu::ForceRequested(true);
    const pmu::Availability& avail = pmu::Probe();
    if (!avail.available) {
      // Graceful degradation per the acceptance criteria: announce, fall
      // back to the bench's default source, keep exit status 0. The run
      // records still carry {available:false, reason} for the CI smoke.
      const CounterSource downgraded =
          fallback == CounterSource::kPmu ? CounterSource::kSim : fallback;
      std::fprintf(stderr, "note: %s; falling back to --counters=%s\n",
                   avail.reason.c_str(), CounterSourceName(downgraded));
      source = downgraded;
    }
  }
  return source;
}

}  // namespace iawj::bench

#endif  // IAWJ_BENCH_BENCH_UTIL_H_
