// Shared helpers for the per-table/figure benchmark binaries.
//
// Every bench defaults to scaled-down inputs so the full suite completes on
// a small machine; environment variables restore or tune the scale:
//   IAWJ_PAPER_SCALE=1  run paper-sized workloads (Table 3 / §5.4 values)
//   IAWJ_SCALE=<f>      explicit workload scale factor (overrides default)
//   IAWJ_THREADS=<n>    worker threads (default 4; paper uses up to 8)
#ifndef IAWJ_BENCH_BENCH_UTIL_H_
#define IAWJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/datagen/micro.h"
#include "src/datagen/real_world.h"
#include "src/join/runner.h"
#include "src/report/report.h"

namespace iawj::bench {

struct Scale {
  double workload = 0.05;  // multiplies stream sizes/rates
  int threads = 4;
  bool paper = false;
};

inline Scale GetScale(double default_workload_scale = 0.05) {
  Scale scale;
  scale.workload = default_workload_scale;
  if (const char* env = std::getenv("IAWJ_PAPER_SCALE");
      env != nullptr && std::string(env) == "1") {
    scale.paper = true;
    scale.workload = 1.0;
    scale.threads = 8;
  }
  if (const char* env = std::getenv("IAWJ_SCALE"); env != nullptr) {
    scale.workload = std::atof(env);
  }
  if (const char* env = std::getenv("IAWJ_THREADS"); env != nullptr) {
    scale.threads = std::atoi(env);
  }
  return scale;
}

inline std::vector<AlgorithmId> AllAlgorithms() {
  return {kAllAlgorithms, kAllAlgorithms + 8};
}

inline void PrintTitle(const std::string& title, const Scale& scale) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("# scale=%.3g threads=%d%s\n", scale.workload, scale.threads,
              scale.paper ? " (paper scale)" : "");
}

// Runs one experiment with the given spec and prints nothing; convenience
// wrapper keeping bench mains compact.
inline RunResult RunJoin(AlgorithmId id, const Stream& r, const Stream& s,
                         const JoinSpec& spec) {
  JoinRunner runner;
  return runner.Run(id, r, s, spec);
}

// Collects the standard metric rows of a bench run; when IAWJ_CSV_DIR is
// set, FlushCsv writes them as <dir>/<name>.csv and a companion gnuplot
// script for the throughput series.
class MetricsCollector {
 public:
  explicit MetricsCollector(std::string name)
      : name_(std::move(name)),
        table_({"workload", "algo", "tput_per_ms", "p95_latency_ms",
                "t50_ms", "matches", "peak_mb"}) {}

  void Add(const std::string& workload, const RunResult& result) {
    table_.AddRow(
        {workload, result.algorithm,
         report::Table::Num(result.throughput_per_ms, 1),
         report::Table::Num(result.p95_latency_ms, 3),
         report::Table::Num(result.progress.TimeToFractionMs(0.5), 1),
         std::to_string(result.matches),
         report::Table::Num(
             static_cast<double>(result.peak_tracked_bytes) / (1 << 20),
             2)});
  }

  ~MetricsCollector() {
    report::MaybeWriteCsv(table_, name_);
    const std::string dir = report::CsvDir();
    if (!dir.empty() && table_.num_rows() > 0) {
      const std::string script = report::GnuplotScript(
          name_, table_, "workload", "algo", "tput_per_ms");
      std::FILE* f = std::fopen((dir + "/" + name_ + ".gp").c_str(), "w");
      if (f != nullptr) {
        std::fputs(script.c_str(), f);
        std::fclose(f);
      }
    }
  }

 private:
  std::string name_;
  report::Table table_;
};

// Per-bench singleton used by PrintMetricsRow; set by PrintMetricsHeader.
inline std::unique_ptr<MetricsCollector>& Collector() {
  static std::unique_ptr<MetricsCollector> collector;
  return collector;
}

// Standard per-algorithm metric row used by several figures.
inline void PrintMetricsHeader(const std::string& csv_name = "") {
  if (!csv_name.empty()) {
    Collector() = std::make_unique<MetricsCollector>(csv_name);
  }
  std::printf("%-10s %-8s %14s %14s %12s %12s %12s\n", "workload", "algo",
              "tput(in/ms)", "p95_lat(ms)", "t50%(ms)", "matches",
              "peak_MB");
}

inline void PrintMetricsRow(const std::string& workload,
                            const RunResult& result) {
  if (Collector() != nullptr) Collector()->Add(workload, result);
  std::printf("%-10s %-8s %14.1f %14.3f %12.1f %12llu %12.2f\n",
              workload.c_str(), result.algorithm.c_str(),
              result.throughput_per_ms, result.p95_latency_ms,
              result.progress.TimeToFractionMs(0.5),
              static_cast<unsigned long long>(result.matches),
              static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
}

// The four real-world workloads at the given scale.
inline std::vector<Workload> RealWorkloads(const Scale& scale,
                                           uint32_t window_ms = 1000) {
  std::vector<Workload> workloads;
  for (RealWorkload which : kAllRealWorkloads) {
    workloads.push_back(GenerateRealWorld(
        {.which = which, .scale = scale.workload, .window_ms = window_ms}));
  }
  return workloads;
}

// Spec preset for streaming (real-time gated) runs. On scaled-down runs the
// window is also shortened so wall time stays small.
inline JoinSpec StreamingSpec(const Scale& scale, uint32_t window_ms) {
  JoinSpec spec;
  spec.num_threads = scale.threads;
  spec.window_ms = window_ms;
  spec.clock_mode = Clock::Mode::kRealTime;
  return spec;
}

// Spec preset for at-rest (instant clock) runs.
inline JoinSpec AtRestSpec(const Scale& scale) {
  JoinSpec spec;
  spec.num_threads = scale.threads;
  spec.window_ms = 1u << 30;
  spec.clock_mode = Clock::Mode::kInstant;
  return spec;
}

}  // namespace iawj::bench

#endif  // IAWJ_BENCH_BENCH_UTIL_H_
