// Table 3: statistics of the four real-world workloads.
//
// Prints the measured arrival rate, key duplication, fitted key skew, and
// tuple counts of each synthesized stream, to be compared against the
// published Table 3 values (scaled by the workload scale factor).
#include <cinttypes>

#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Table 3: statistics of the four real-world workloads",
                    scale);
  std::printf("%-8s %-6s %12s %14s %12s %12s %12s\n", "workload", "stream",
              "tuples", "rate(/ms)", "unique", "dupe", "zipf_est");
  for (const Workload& w : bench::RealWorkloads(scale)) {
    for (const auto& [label, stream] :
         {std::pair<const char*, const Stream*>{"R", &w.r}, {"S", &w.s}}) {
      const StreamStats stats = ComputeStats(*stream);
      std::printf("%-8s %-6s %12" PRIu64 " %14.1f %12" PRIu64 " %12.1f %12.3f\n",
                  w.name.c_str(), label, stats.num_tuples,
                  stats.arrival_rate_per_ms, stats.unique_keys,
                  stats.avg_duplicates_per_key, stats.key_zipf_estimate);
    }
  }
  std::printf(
      "# paper (scale=1): Stock vR=61 vS=77 dupe 67.7/78.5 | Rovio v=3000 "
      "dupe~1.8e4 | YSB dupe(R)=1 dupe(S)~1e3 | DEBS at rest dupe 172.6/1115\n");
  return 0;
}
