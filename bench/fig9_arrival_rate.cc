// Figure 9: impact of the input arrival rate (both streams), unique keys,
// uniform arrivals.
//
// Paper shape: at low rates every algorithm has similar throughput but
// SHJ-JM the lowest latency and earliest progress; as rate grows the lazy
// algorithms keep improving throughput while the eager ones flatten and
// eventually lose on all three metrics.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  const uint32_t window = scale.paper ? 1000 : 300;
  bench::PrintTitle("Figure 9: varying arrival rate v_R = v_S", scale);
  bench::PrintMetricsHeader("fig9_arrival_rate");
  for (uint64_t paper_rate : {1600, 3200, 6400, 12800, 25600}) {
    const auto rate = static_cast<uint64_t>(
        std::max(1.0, paper_rate * scale.workload));
    MicroSpec mspec;
    mspec.rate_r = mspec.rate_s = rate;
    mspec.window_ms = window;
    mspec.dupe = 1.0;
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::StreamingSpec(scale, window);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      bench::PrintMetricsRow("v=" + std::to_string(paper_rate), result);
    }
  }
  std::printf(
      "# paper shape: low rate -> similar throughput, SHJ-JM lowest latency; "
      "high rate -> lazy wins throughput, latency, and progressiveness\n");
  return 0;
}
