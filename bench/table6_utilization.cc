// Table 6: resource utilization on Rovio — CPU utilization (consumed CPU
// time over wall time, normalized by worker count) and a memory-bandwidth
// proxy (tracked bytes touched per unit wall time).
//
// Paper shape: the lazy algorithms except NPJ idle while waiting (low CPU
// utilization); NPJ burns cycles on cache misses; the eager algorithms run
// hot on both CPU and memory bandwidth.
//
// With --counters=pmu (kernel permitting) two measured columns are added:
// IPC and cycles per input, distinguishing "busy retiring" from "busy
// missing" the way the paper's PCM columns do.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.02);
  const bench::CounterSource source =
      bench::GetCounterSource(argc, argv, bench::CounterSource::kOff);
  bench::PrintTitle(std::string("Table 6: resource utilization, counters=") +
                        bench::CounterSourceName(source) + " (Rovio)",
                    scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = scale.workload,
       .window_ms = 200});

  const bool pmu_cols = source == bench::CounterSource::kPmu;
  if (pmu_cols) {
    std::printf("%-8s %12s %14s %10s %12s\n", "algo", "cpu_util(%)",
                "peak_mem(MB)", "pmu_IPC", "pmu_cyc/in");
  } else {
    std::printf("%-8s %12s %14s\n", "algo", "cpu_util(%)", "peak_mem(MB)");
  }
  for (AlgorithmId id : bench::AllAlgorithms()) {
    JoinSpec spec = bench::StreamingSpec(scale, 200);
    const RunResult result = bench::RunJoin(id, w.r, w.s, spec, "rovio");
    const double wall_ms = result.elapsed_ms;
    const double util =
        wall_ms > 0
            ? 100.0 * result.cpu_time_ms / (wall_ms * spec.num_threads)
            : 0;
    const double peak_mb =
        static_cast<double>(result.peak_tracked_bytes) / (1 << 20);
    if (pmu_cols) {
      // Fixed-event order (pmu::FixedEvents): cycles first, instructions
      // second.
      const double cycles = static_cast<double>(result.pmu.profile.Total(0));
      const double instructions =
          static_cast<double>(result.pmu.profile.Total(1));
      std::printf("%-8s %12.1f %14.2f %10.2f %12.1f\n",
                  result.algorithm.c_str(), util, peak_mb,
                  cycles > 0 ? instructions / cycles : 0,
                  result.inputs > 0
                      ? cycles / static_cast<double>(result.inputs)
                      : 0);
    } else {
      std::printf("%-8s %12.1f %14.2f\n", result.algorithm.c_str(), util,
                  peak_mb);
    }
  }
  std::printf(
      "# paper shape: PRJ/MWAY/MPASS low CPU utilization (waiting); NPJ and "
      "the eager algorithms near saturation\n"
      "# host note: single-CPU machine caps process CPU at 100%% / threads\n");
  return 0;
}
