// Table 6: resource utilization on Rovio — CPU utilization (consumed CPU
// time over wall time, normalized by worker count) and a memory-bandwidth
// proxy (tracked bytes touched per unit wall time).
//
// Paper shape: the lazy algorithms except NPJ idle while waiting (low CPU
// utilization); NPJ burns cycles on cache misses; the eager algorithms run
// hot on both CPU and memory bandwidth.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.02);
  bench::PrintTitle("Table 6: resource utilization (Rovio)", scale);
  const Workload w = GenerateRealWorld(
      {.which = RealWorkload::kRovio, .scale = scale.workload,
       .window_ms = 200});

  std::printf("%-8s %12s %14s\n", "algo", "cpu_util(%)", "peak_mem(MB)");
  for (AlgorithmId id : bench::AllAlgorithms()) {
    JoinSpec spec = bench::StreamingSpec(scale, 200);
    JoinRunner runner;
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    const double wall_ms = result.elapsed_ms;
    const double util =
        wall_ms > 0
            ? 100.0 * result.cpu_time_ms / (wall_ms * spec.num_threads)
            : 0;
    std::printf("%-8s %12.1f %14.2f\n", result.algorithm.c_str(), util,
                static_cast<double>(result.peak_tracked_bytes) / (1 << 20));
  }
  std::printf(
      "# paper shape: PRJ/MWAY/MPASS low CPU utilization (waiting); NPJ and "
      "the eager algorithms near saturation\n"
      "# host note: single-CPU machine caps process CPU at 100%% / threads\n");
  return 0;
}
