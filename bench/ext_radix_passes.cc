// Extension ablation: one-pass vs two-pass radix partitioning in PRJ.
//
// Balkesen et al. use multi-pass partitioning so the number of concurrently
// open write streams per pass stays within TLB reach; the paper's §5.5 only
// sweeps #r with the default pass structure. This ablation quantifies the
// tradeoff in this implementation: pass 2 costs an extra copy of both
// relations but each pass scatters into at most 2^(#r/2) destinations.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Extension: PRJ one-pass vs two-pass radix partitioning",
                    scale);
  const uint64_t size = scale.paper ? 8'000'000 : 512'000;

  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 2;
  const MicroWorkload w = GenerateMicro(mspec);

  std::printf("%-6s %-8s %14s %14s %14s\n", "#r", "passes", "partition/in",
              "build+probe/in", "work_ns/in");
  for (int bits : {10, 14, 18}) {
    for (int passes : {1, 2}) {
      JoinSpec spec = bench::AtRestSpec(scale);
      spec.radix_bits = bits;
      spec.radix_passes = passes;
      const RunResult result =
          bench::RunJoin(AlgorithmId::kPrj, w.r, w.s, spec);
      const double inputs = static_cast<double>(result.inputs);
      std::printf("%-6d %-8d %14.1f %14.1f %14.1f\n", bits, passes,
                  result.phases.GetNs(Phase::kPartition) / inputs,
                  (result.phases.GetNs(Phase::kBuild) +
                   result.phases.GetNs(Phase::kProbe)) /
                      inputs,
                  result.WorkNsPerInput());
    }
  }
  std::printf(
      "# expectation: two passes pay an extra copy at small #r but win once "
      "2^#r write streams overwhelm the TLB (large #r)\n");
  return 0;
}
