// Extension (paper §6): handshake-join validation.
//
// The paper states: "we have implemented and evaluated the handshake join
// and observed that it leads to orders of magnitude lower throughput than
// any of the eight algorithms that we have evaluated. This is due to the
// additional overhead for maintaining window updates." This bench
// reproduces that comparison on a Micro workload.
#include "bench/bench_util.h"
#include "src/join/handshake.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Extension: handshake join vs the IaWJ algorithms",
                    scale);
  // Handshake's per-pair scan cost is quadratic; keep inputs modest.
  const uint64_t size = scale.paper ? 64'000 : 16'000;
  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 4;
  const MicroWorkload w = GenerateMicro(mspec);

  bench::PrintMetricsHeader("ext_handshake");
  JoinRunner runner;
  for (AlgorithmId id : bench::AllAlgorithms()) {
    const JoinSpec spec = bench::AtRestSpec(scale);
    const RunResult result = runner.Run(id, w.r, w.s, spec);
    bench::PrintMetricsRow("micro", result);
  }
  {
    const JoinSpec spec = bench::AtRestSpec(scale);
    auto handshake = MakeHandshake();
    const RunResult result = runner.RunWith(handshake.get(), w.r, w.s, spec);
    bench::PrintMetricsRow("micro", result);
  }
  std::printf(
      "# paper claim (S6): handshake join is orders of magnitude slower "
      "than all eight IaWJ algorithms (per-hop state movement + scans)\n");
  return 0;
}
