// Figure 12: impact of arrival (timestamp) skewness — Zipf-distributed
// arrival times cluster tuples toward the start of the window (v = 1600).
//
// Paper shape: only SHJ-JM reacts: its throughput climbs once skew_ts
// exceeds ~1.2 because it can use the hardware as soon as the (early) burst
// arrives; latency is flat for everyone at this low rate.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  const uint32_t window = scale.paper ? 1000 : 300;
  bench::PrintTitle("Figure 12: varying arrival skewness (v = 1600)", scale);
  bench::PrintMetricsHeader("fig12_ts_skew");
  const auto rate = static_cast<uint64_t>(std::max(1.0, 1600 * scale.workload));
  for (double skew : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    MicroSpec mspec;
    mspec.rate_r = mspec.rate_s = rate;
    mspec.window_ms = window;
    mspec.dupe = 4.0;  // some matches so progressiveness is visible
    mspec.zipf_ts = skew;
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::StreamingSpec(scale, window);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      char label[32];
      std::snprintf(label, sizeof(label), "ts_skew=%.1f", skew);
      bench::PrintMetricsRow(label, result);
    }
  }
  std::printf(
      "# paper shape: only SHJ-JM's throughput and early progress improve "
      "with rising skew_ts (hardware used as soon as tuples arrive)\n");
  return 0;
}
