// Extension ablation: bucket-chain vs linear-probing hash tables.
//
// The paper's hash algorithms use the Balkesen bucket-chain table
// throughout; related work (Barber et al., memory-efficient hash joins)
// argues for compact open-addressing schemes. This ablation swaps the table
// behind PRJ and SHJ-JM and measures both duplication regimes: under unique
// keys linear probing's flat array is very cache-friendly, under heavy
// duplication its clusters degrade the same way bucket chains do.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Extension: bucket-chain vs linear-probing tables",
                    scale);
  const uint64_t size = scale.paper ? 4'000'000 : 256'000;

  std::printf("%-8s %-8s %-14s %12s %12s %12s\n", "algo", "dupe", "table",
              "build/in", "probe/in", "work_ns/in");
  for (double dupe : {1.0, 100.0}) {
    MicroSpec mspec;
    mspec.size_r = mspec.size_s = size;
    mspec.window_ms = 1000;
    mspec.dupe = dupe;
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : {AlgorithmId::kPrj, AlgorithmId::kShjJm}) {
      for (HashTableKind kind :
           {HashTableKind::kBucketChain, HashTableKind::kLinearProbe}) {
        JoinSpec spec = bench::AtRestSpec(scale);
        spec.hash_table_kind = kind;
        const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
        const double inputs = static_cast<double>(result.inputs);
        std::printf("%-8s %-8.0f %-14s %12.1f %12.1f %12.1f\n",
                    result.algorithm.c_str(), dupe,
                    kind == HashTableKind::kBucketChain ? "bucket-chain"
                                                        : "linear-probe",
                    result.phases.GetNs(Phase::kBuild) / inputs,
                    result.phases.GetNs(Phase::kProbe) / inputs,
                    result.WorkNsPerInput());
      }
    }
  }
  std::printf(
      "# expectation: linear probing competitive (often ahead) at dupe=1; "
      "both structures degrade under dupe=100 (clusters vs chains)\n");
  return 0;
}
