// Figure 10: impact of the relative arrival rate — v_R fixed at 1600
// tuples/ms, v_S swept up to 25600 tuples/ms.
//
// Paper shape: SHJ-JM leads all three metrics at every ratio (one slow
// stream lets it drain the fast one without interleaving); JB variants'
// latency degrades once they cannot keep up with the aggregate rate.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  const uint32_t window = scale.paper ? 1000 : 300;
  bench::PrintTitle("Figure 10: varying relative rate (v_R = 1600)", scale);
  bench::PrintMetricsHeader("fig10_relative_rate");
  const auto scaled = [&](uint64_t paper_rate) {
    return static_cast<uint64_t>(std::max(1.0, paper_rate * scale.workload));
  };
  for (uint64_t paper_vs : {1600, 3200, 6400, 12800, 25600}) {
    MicroSpec mspec;
    mspec.rate_r = scaled(1600);
    mspec.rate_s = scaled(paper_vs);
    mspec.window_ms = window;
    mspec.dupe = 1.0;
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::StreamingSpec(scale, window);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      bench::PrintMetricsRow("vs=" + std::to_string(paper_vs), result);
    }
  }
  std::printf(
      "# paper shape: SHJ-JM best across metrics at all ratios; SHJ-JB and "
      "PMJ-JB latency rises sharply at the highest aggregate rates\n");
  return 0;
}
