// Figure 21: impact of SIMD on the sort-based algorithms — vectorized
// (branchless sorting networks + branchless merges) vs scalar kernels,
// data at rest (Micro).
//
// Paper shape: SIMD cuts the sort cost markedly and the merge cost slightly
// for MWay/MPass (overall 1.2x-2.5x); the improvement on PMJ is marginal
// (~1.2x) because PMJ is memory bound.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 21: impact of SIMD on sort-based algorithms",
                    scale);
  const uint64_t size = scale.paper ? 4'000'000 : 512'000;

  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 4;
  const MicroWorkload w = GenerateMicro(mspec);

  std::printf("%-8s %-8s %10s %10s %10s %12s\n", "algo", "kernels", "sort/in",
              "merge/in", "probe/in", "work_ns/in");
  for (AlgorithmId id : {AlgorithmId::kMway, AlgorithmId::kMpass,
                         AlgorithmId::kPmjJm, AlgorithmId::kPmjJb}) {
    double scalar_work = 0;
    for (bool simd : {false, true}) {
      JoinSpec spec = bench::AtRestSpec(scale);
      spec.use_simd = simd;
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      const double inputs = static_cast<double>(result.inputs);
      const double work = result.WorkNsPerInput();
      if (!simd) scalar_work = work;
      std::printf("%-8s %-8s %10.1f %10.1f %10.1f %12.1f",
                  result.algorithm.c_str(), simd ? "simd" : "scalar",
                  (result.phases.GetNs(Phase::kSort) +
                   result.phases.GetNs(Phase::kBuild)) /
                      inputs,
                  result.phases.GetNs(Phase::kMerge) / inputs,
                  result.phases.GetNs(Phase::kProbe) / inputs, work);
      if (simd && work > 0) {
        std::printf("   speedup=%.2fx", scalar_work / work);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "# paper shape: vectorized kernels cut sort cost most for MWAY/MPASS "
      "(1.2-2.5x overall); PMJ gains only ~1.2x (memory bound)\n");
  return 0;
}
