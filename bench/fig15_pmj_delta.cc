// Figure 15: impact of PMJ's sorting step size δ (fraction of the input
// accumulated before each sort+join step), data at rest.
//
// Paper shape: a nontrivial U-curve — small δ piles up run-management and
// merge overhead (many runs), large δ defeats eagerness; ~20% minimizes the
// overall per-tuple cost, and most of the δ-sensitivity shows in the
// merge/join phases.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  bench::PrintTitle("Figure 15: PMJ sorting step size (delta)", scale);
  const uint64_t size = scale.paper ? 2'000'000 : 128'000;

  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 8;
  const MicroWorkload w = GenerateMicro(mspec);

  std::printf("%-8s %10s %10s %10s %10s %12s\n", "delta", "build/in",
              "sort/in", "merge/in", "probe/in", "work_ns/in");
  for (double delta : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    JoinSpec spec = bench::AtRestSpec(scale);
    spec.pmj_delta = delta;
    const RunResult result =
        bench::RunJoin(AlgorithmId::kPmjJm, w.r, w.s, spec);
    const double inputs = static_cast<double>(result.inputs);
    std::printf("%-8.2f %10.1f %10.1f %10.1f %10.1f %12.1f\n", delta,
                result.phases.GetNs(Phase::kBuild) / inputs,
                result.phases.GetNs(Phase::kSort) / inputs,
                result.phases.GetNs(Phase::kMerge) / inputs,
                result.phases.GetNs(Phase::kProbe) / inputs,
                result.WorkNsPerInput());
  }
  std::printf(
      "# paper shape: overall cost is U-shaped in delta with the minimum "
      "near 20%%; small delta inflates merge (many runs)\n");
  return 0;
}
