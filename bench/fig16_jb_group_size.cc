// Figure 16: impact of the JB scheme's group size g (PMJ-JB and SHJ-JB),
// data at rest, with the JM scheme as the reference line.
//
// Paper shape: per-tuple cost grows with g (more replication per worker),
// and JM beats every JB configuration because of JB's router status
// maintenance overhead.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  bench::Scale scale = bench::GetScale(0.05);
  if (scale.threads < 8) scale.threads = 8;  // g sweeps need 8 workers
  bench::PrintTitle("Figure 16: JB group size (g), 8 workers", scale);
  const uint64_t size = scale.paper ? 1'000'000 : 96'000;

  MicroSpec mspec;
  mspec.size_r = mspec.size_s = size;
  mspec.window_ms = 1000;
  mspec.dupe = 8;
  const MicroWorkload w = GenerateMicro(mspec);

  std::printf("%-8s %-10s %12s %12s %12s\n", "algo", "config", "work_ns/in",
              "partition/in", "tput(in/ms)");
  for (auto [jb, jm] :
       {std::pair{AlgorithmId::kShjJb, AlgorithmId::kShjJm},
        std::pair{AlgorithmId::kPmjJb, AlgorithmId::kPmjJm}}) {
    for (int g : {1, 2, 4, 8}) {
      JoinSpec spec = bench::AtRestSpec(scale);
      spec.jb_group_size = g;
      const RunResult result = bench::RunJoin(jb, w.r, w.s, spec);
      std::printf("%-8s g=%-8d %12.1f %12.1f %12.1f\n",
                  result.algorithm.c_str(), g, result.WorkNsPerInput(),
                  result.phases.GetNs(Phase::kPartition) /
                      static_cast<double>(result.inputs),
                  result.throughput_per_ms);
    }
    const JoinSpec spec = bench::AtRestSpec(scale);
    const RunResult result = bench::RunJoin(jm, w.r, w.s, spec);
    std::printf("%-8s %-10s %12.1f %12.1f %12.1f\n", result.algorithm.c_str(),
                "JM-line", result.WorkNsPerInput(),
                result.phases.GetNs(Phase::kPartition) /
                    static_cast<double>(result.inputs),
                result.throughput_per_ms);
  }
  std::printf(
      "# paper shape: per-tuple cost rises with g; JB's partition cost stays "
      "above JM's (router status maintenance), and JM beats JB outright at "
      "large g. At small g our shared-memory router is cheaper than the "
      "paper's, so strict hash partitioning stays competitive — see "
      "EXPERIMENTS.md\n");
  return 0;
}
