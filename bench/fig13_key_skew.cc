// Figure 13: impact of key skewness (v = 12800 tuples/ms, Zipf keys on R).
//
// Note: R carries the skew while S stays uniform so the output cardinality
// remains linear in the input (see EXPERIMENTS.md); the figure's headline —
// PRJ's radix partitions collapsing under skew while everyone else stays
// flat, SHJ-JM slightly improving — depends only on the skewed build side.
#include "bench/bench_util.h"

int main() {
  using namespace iawj;
  const bench::Scale scale = bench::GetScale(0.05);
  const uint32_t window = scale.paper ? 1000 : 300;
  bench::PrintTitle("Figure 13: varying key skewness (v = 12800)", scale);
  bench::PrintMetricsHeader("fig13_key_skew");
  const auto rate =
      static_cast<uint64_t>(std::max(1.0, 12800 * scale.workload));
  for (double skew : {0.0, 0.4, 0.8, 1.2, 1.6, 2.0}) {
    MicroSpec mspec;
    mspec.rate_r = mspec.rate_s = rate;
    mspec.window_ms = window;
    mspec.dupe = 4.0;
    mspec.zipf_key = skew;
    mspec.zipf_key_s = 0.0;  // keep S uniform: output stays linear
    const MicroWorkload w = GenerateMicro(mspec);
    for (AlgorithmId id : bench::AllAlgorithms()) {
      const JoinSpec spec = bench::StreamingSpec(scale, window);
      const RunResult result = bench::RunJoin(id, w.r, w.s, spec);
      char label[32];
      std::snprintf(label, sizeof(label), "skew=%.1f", skew);
      bench::PrintMetricsRow(label, result);
    }
  }
  std::printf(
      "# paper shape: only PRJ degrades with skew (few radix partitions -> "
      "idle threads); SHJ-JM improves slightly (hot-key cache reuse)\n"
      "# host note: PRJ's penalty is thread under-utilization and cannot "
      "appear on a single-CPU host; its footprint growth (ballooning hot "
      "partition) is the visible signature here\n");
  return 0;
}
