#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/join/runner.h"
#include "src/join/supervisor.h"
#include "src/memory/tracker.h"
#include "src/profiling/metrics.h"
#include "src/profiling/run_record.h"
#include "src/stream/disorder.h"

namespace iawj::serve {

namespace {

// Rough per-tuple footprint of one in-flight window: the sliced input copy
// plus hash-table / partition-buffer overhead across the algorithms. Used
// only for admission preflight, never charged.
constexpr int64_t kBytesPerTuplePreflight = 48;

// Radix bound the skew detector will not push past (2^14 partitions is
// already past the sweet spot of every PRJ sweep in the paper's Figure 18).
constexpr int kMaxSkewRadixBits = 14;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) {
    IAWJ_LOG(Warning) << "ignoring malformed $" << name << "='" << value
                      << "'";
    return fallback;
  }
  return parsed;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || parsed <= 0) {
    IAWJ_LOG(Warning) << "ignoring malformed $" << name << "='" << value
                      << "'";
    return fallback;
  }
  return parsed;
}

// Same slice as window_pipeline.cc's: tuples with ts in [start, start +
// length), timestamps rebased to the window-local origin. The rebase is
// load-bearing for the differential tests — the checksum mixes timestamps,
// so serving and offline must present identical window-local values.
Stream SliceWindow(const std::vector<Tuple>& tuples, uint64_t start,
                   uint32_t length) {
  const auto lo = std::lower_bound(
      tuples.begin(), tuples.end(), start,
      [](const Tuple& t, uint64_t v) { return t.ts < v; });
  const auto hi = std::lower_bound(
      lo, tuples.end(), start + length,
      [](const Tuple& t, uint64_t v) { return t.ts < v; });
  Stream window;
  window.tuples.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    window.tuples.push_back(
        Tuple{static_cast<uint32_t>(it->ts - start), it->key});
  }
  return window;
}

// One window attempt with the same "window_fail" fault site the offline
// pipeline hosts, so chaos schedules exercise daemon windows identically.
RunResult RunWindowOnce(JoinRunner& runner, AlgorithmId id, const Stream& wr,
                        const Stream& ws, const JoinSpec& window_spec,
                        uint64_t window_index) {
  if (fault::Enabled() && fault::Inject("window_fail")) {
    RunResult result;
    result.algorithm = std::string(AlgorithmName(id));
    result.inputs = wr.size() + ws.size();
    result.status = Status::Internal("injected window failure (window " +
                                     std::to_string(window_index) + ")");
    return result;
  }
  return runner.Run(id, wr, ws, window_spec);
}

void BumpCounter(const char* name, uint64_t n = 1) {
  if (!metrics::Enabled()) return;
  if (auto* counter = metrics::GetCounter(name)) counter->Add(n);
}

}  // namespace

ServeOptions ServeOptions::Resolve(ServeOptions o) {
  if (o.socket_path.empty()) {
    const char* path = std::getenv("IAWJ_SERVE_SOCKET");
    if (path != nullptr) o.socket_path = path;
  }
  if (o.pool_threads <= 0) {
    o.pool_threads = static_cast<int>(EnvInt("IAWJ_SERVE_POOL_THREADS", 4));
  }
  if (o.max_tenants <= 0) {
    o.max_tenants = static_cast<int>(EnvInt("IAWJ_SERVE_MAX_TENANTS", 8));
  }
  if (o.max_inflight <= 0) {
    o.max_inflight = static_cast<int>(EnvInt("IAWJ_SERVE_MAX_INFLIGHT", 4));
  }
  if (o.max_buffer_tuples <= 0) {
    o.max_buffer_tuples = EnvInt("IAWJ_SERVE_MAX_BUFFER", 4194304);
  }
  if (o.mem_share <= 0) o.mem_share = EnvDouble("IAWJ_SERVE_MEM_SHARE", 1.0);
  o.mem_share = std::min(o.mem_share, 1.0);
  return o;
}

// Per-connection tenant state. Lives on the HandleConnection stack: window
// jobs referencing it always complete before SealFinal's WaitIdle returns,
// and SealFinal always runs before the frame loop exits.
struct ServeServer::TenantSession {
  TenantSpec tenant;
  int slot = -1;
  SupervisorPolicy supervision;
  IngestPolicy ingest_policy;
  // Sealing is deferred to end-of-stream when ingestion or shedding is
  // configured: both transforms are whole-timeline operations and must see
  // the same sequence the offline pipeline would.
  bool defer_sealing = false;

  std::vector<Tuple> r, s;     // retained arrivals, per stream
  uint64_t next_seal_start = 0;  // first unsealed tumbling slot (eager path)

  // Skew detector state: the radix bits subsequent windows run with.
  std::atomic<int> radix_bits{0};
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};

  // Bounded-loss accounting outside individual windows.
  uint64_t tuples_shed = 0;       // end-of-stream + backlog shedding
  uint64_t backlog_shed_events = 0;
  IngestStats ingest_stats;

  std::mutex results_mu;
  std::vector<WindowResult> results;
};

ServeServer::ServeServer(ServeOptions options)
    : options_(ServeOptions::Resolve(std::move(options))) {}

ServeServer::~ServeServer() { Shutdown(); }

Status ServeServer::Start() {
  if (started_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument(
        "no socket path (set --socket or $IAWJ_SERVE_SOCKET)");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition(std::string("socket(): ") +
                                      std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale file from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::FailedPrecondition("bind(" + options_.socket_path +
                                      "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::FailedPrecondition(std::string("listen(): ") +
                                      std::strerror(err));
  }

  pool_.Start(options_.pool_threads, options_.max_inflight);
  started_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  IAWJ_LOG(Info) << "iawj_serve listening on " << options_.socket_path << " ("
                 << options_.pool_threads << " pool threads, max "
                 << options_.max_tenants << " tenants)";
  return Status::Ok();
}

void ServeServer::RequestDrain() {
  draining_.store(true, std::memory_order_relaxed);
}

void ServeServer::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (shut_down_.exchange(true)) return;
  RequestDrain();
  accept_stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads notice draining_ within one poll interval, seal
  // their tails, and finish; join them all before stopping the pool.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) connection->thread.join();
  pool_.Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.cross_tenant_steals = pool_.stats().cross_tenant_steals;
  }
  IAWJ_LOG(Info) << "iawj_serve drained: " << stats().windows_done
                 << " windows done, " << stats().cross_tenant_steals
                 << " cross-tenant steals";
}

ServeServer::ServerStats ServeServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats snapshot = stats_;
  snapshot.cross_tenant_steals = pool_.stats().cross_tenant_steals;
  return snapshot;
}

void ServeServer::AcceptLoop() {
  // Keeps accepting while draining: a latecomer's hello gets the typed
  // failed_precondition refusal instead of hanging unanswered in the
  // listen backlog. Only Shutdown stops the loop.
  while (!accept_stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    // A long-lived daemon sees many short-lived clients; reaping here keeps
    // connections_ bounded by the concurrent connection count rather than
    // growing one joinable zombie thread per client ever served.
    ReapConnectionsLocked();
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    connection->thread = std::thread([this, fd, raw] {
      HandleConnection(fd);
      ::close(fd);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(connection));
  }
}

void ServeServer::ReapConnectionsLocked() {
  auto finished = [](const std::unique_ptr<Connection>& connection) {
    return connection->done.load(std::memory_order_acquire);
  };
  for (const auto& connection : connections_) {
    if (finished(connection)) connection->thread.join();
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(), finished),
      connections_.end());
}

void ServeServer::HandleConnection(int fd) {
  // Frame cap: the largest legitimate frame is a batch of max_buffer_tuples
  // tuples (the shed path must still parse an over-budget batch to thin
  // it), at most ~24 JSON bytes per tuple plus envelope. Anything larger is
  // hostile or corrupt and tears down the connection before it can balloon
  // daemon memory.
  const size_t max_frame_bytes =
      static_cast<size_t>(options_.max_buffer_tuples) * 32 + 4096;
  FrameReader reader(fd, max_frame_bytes);

  // Hello + admission. The poll timeout keeps a silent connection from
  // pinning the drain.
  TenantSession session;
  for (;;) {
    std::string frame;
    bool eof = false, timed_out = false;
    const Status status = reader.ReadFrame(&frame, &eof, 100, &timed_out);
    if (!status.ok() || eof) return;
    if (timed_out) {
      if (draining_.load(std::memory_order_relaxed)) return;
      continue;
    }
    json::Value message;
    Status parsed = json::Parse(frame, &message);
    if (parsed.ok()) {
      const json::Value* op = message.Find("op");
      if (op == nullptr || op->string != "hello") {
        parsed = Status::InvalidArgument("expected a hello frame first");
      } else {
        parsed = TenantSpec::FromHello(message, &session.tenant);
      }
    }
    if (!parsed.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.tenants_rejected;
      }
      WriteFrame(fd, ErrorJson(parsed));
      return;
    }
    break;
  }

  // Tenant-count admission: CAS so concurrent hellos cannot oversubscribe.
  for (;;) {
    if (draining_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.tenants_rejected;
      WriteFrame(fd, ErrorJson(Status::FailedPrecondition(
                         "daemon is draining; not accepting tenants")));
      return;
    }
    int active = tenants_active_.load(std::memory_order_relaxed);
    if (active >= options_.max_tenants) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.tenants_rejected;
      WriteFrame(fd, ErrorJson(Status::ResourceExhausted(
                         "tenant limit reached (" +
                         std::to_string(options_.max_tenants) + ")")));
      return;
    }
    if (tenants_active_.compare_exchange_weak(active, active + 1,
                                              std::memory_order_relaxed)) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tenants_admitted;
  }
  if (metrics::Enabled()) {
    if (auto* gauge = metrics::GetGauge("serve.tenants_active")) {
      gauge->Set(tenants_active_.load(std::memory_order_relaxed));
    }
  }

  session.slot = pool_.AddTenant(session.tenant.name);
  session.supervision = SupervisorPolicy::Resolve(session.tenant.spec);
  session.ingest_policy = IngestPolicy::Resolve(
      session.tenant.spec.disorder_slack_ms,
      session.tenant.spec.allowed_lateness_ms,
      session.tenant.spec.ingest_dedup);
  session.defer_sealing = session.ingest_policy.Enabled() ||
                          session.supervision.shed_watermark_per_ms > 0;
  session.radix_bits.store(session.tenant.spec.radix_bits,
                           std::memory_order_relaxed);
  WriteFrame(fd, OkJson());

  bool sealed = false;
  for (;;) {
    std::string frame;
    bool eof = false, timed_out = false;
    const Status status = reader.ReadFrame(&frame, &eof, 100, &timed_out);
    if (!status.ok() || eof) {
      // The client vanished without end: its timeline is incomplete, so the
      // unsealed tail is discarded — but windows already on the pool finish
      // and their records flush before the tenant departs.
      pool_.WaitIdle(session.slot);
      sealed = true;
      break;
    }
    if (timed_out) {
      if (!draining_.load(std::memory_order_relaxed)) continue;
      // Server-initiated drain: seal as if the client had sent end.
      SealFinal(&session, fd, /*send=*/true);
      sealed = true;
      break;
    }

    json::Value message;
    Status parsed = json::Parse(frame, &message);
    if (!parsed.ok()) {
      WriteFrame(fd, ErrorJson(Status::InvalidArgument("bad frame: " +
                                                       parsed.ToString())));
      continue;
    }
    const json::Value* op = message.Find("op");
    const std::string op_name = op != nullptr ? op->string : "";

    if (op_name == "end") {
      SealFinal(&session, fd, /*send=*/true);
      sealed = true;
      break;
    }
    if (op_name != "batch") {
      WriteFrame(fd,
                 ErrorJson(Status::InvalidArgument("unknown op: " + op_name)));
      continue;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      // The drain wins over a batch already in flight: instead of the ack
      // the client gets the sealed window/bye tail covering everything the
      // daemon acked before the drain. The unacked batch is the client's to
      // replay elsewhere — acking it here would promise a seal the
      // draining daemon may not deliver.
      SealFinal(&session, fd, /*send=*/true);
      sealed = true;
      break;
    }

    std::vector<Tuple> batch_r, batch_s;
    Status admitted = ParseBatch(message, &batch_r, &batch_s);
    // Without an ingest policy the engine's sorted-stream contract is the
    // client's to honor; a regressing timestamp would silently corrupt
    // window slicing, so it is refused typed instead.
    if (admitted.ok() && !session.ingest_policy.Enabled()) {
      const auto regresses = [](const std::vector<Tuple>& buffered,
                                const std::vector<Tuple>& batch) {
        uint32_t last = buffered.empty() ? 0 : buffered.back().ts;
        for (const Tuple& t : batch) {
          if (t.ts < last) return true;
          last = t.ts;
        }
        return false;
      };
      if (regresses(session.r, batch_r) || regresses(session.s, batch_s)) {
        admitted = Status::InvalidArgument(
            "timestamps regress within the stream; configure "
            "disorder_slack_ms/allowed_lateness_ms to accept out-of-order "
            "arrivals");
      }
    }
    if (admitted.ok()) {
      const uint64_t retained = session.r.size() + session.s.size();
      const uint64_t incoming = batch_r.size() + batch_s.size();
      if (retained + incoming >
          static_cast<uint64_t>(options_.max_buffer_tuples)) {
        if (session.supervision.shed_watermark_per_ms > 0) {
          // Backlog shedding: thin the incoming batch with the tenant's
          // configured watermark instead of refusing it. Deterministic in
          // (batch, policy, how many backlog sheds preceded this one).
          const uint64_t shed_seed = session.supervision.seed + 2 +
                                     session.backlog_shed_events++;
          uint64_t shed = 0;
          for (auto* batch : {&batch_r, &batch_s}) {
            ShedResult result = ShedToWatermark(
                MakeStream(std::move(*batch)),
                session.supervision.shed_watermark_per_ms,
                session.supervision.shed_max_lag_ms, shed_seed);
            shed += result.tuples_shed;
            *batch = std::move(result.stream.tuples);
          }
          session.tuples_shed += shed;
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            stats_.tuples_shed += shed;
          }
          BumpCounter("serve.tuples_shed", shed);
        } else {
          admitted = Status::ResourceExhausted(
              "tenant buffer full (" +
              std::to_string(options_.max_buffer_tuples) +
              " tuples); drain with end or configure shed_watermark_per_ms");
        }
      }
    }
    if (!admitted.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.batches_rejected;
      }
      BumpCounter("serve.batches_rejected");
      WriteFrame(fd, ErrorJson(admitted));
      continue;
    }

    const uint64_t incoming = batch_r.size() + batch_s.size();
    session.r.insert(session.r.end(), batch_r.begin(), batch_r.end());
    session.s.insert(session.s.end(), batch_s.begin(), batch_s.end());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.tuples_in += incoming;
    }
    BumpCounter("serve.tuples_in", incoming);
    if (!session.defer_sealing) SealReadyWindows(&session);
    WriteFrame(fd, OkJson());
  }

  if (!sealed) pool_.WaitIdle(session.slot);
  pool_.RemoveTenant(session.slot);
  tenants_active_.fetch_sub(1, std::memory_order_relaxed);
  if (metrics::Enabled()) {
    if (auto* gauge = metrics::GetGauge("serve.tenants_active")) {
      gauge->Set(tenants_active_.load(std::memory_order_relaxed));
    }
  }
}

void ServeServer::SealReadyWindows(TenantSession* session) {
  // A tumbling slot [start, start + w) is sealed once BOTH streams have
  // advanced to its end: per-stream timestamps are non-decreasing (enforced
  // at batch admission on this path), so every future arrival lands at or
  // past min(frontier_r, frontier_s) — eager windows see exactly the tuples
  // the offline pipeline would.
  if (session->r.empty() || session->s.empty()) return;
  const uint32_t w = session->tenant.spec.window_ms;
  const uint64_t frontier =
      std::min<uint64_t>(session->r.back().ts, session->s.back().ts);
  while (session->next_seal_start + w <= frontier) {
    const uint64_t start = session->next_seal_start;
    session->next_seal_start += w;
    Stream wr = SliceWindow(session->r, start, w);
    Stream ws = SliceWindow(session->s, start, w);
    if (wr.size() == 0 && ws.size() == 0) continue;  // like the pipeline
    SubmitWindow(session, start, std::move(wr), std::move(ws));
  }
}

void ServeServer::SealFinal(TenantSession* session, int fd, bool send) {
  const JoinSpec& spec = session->tenant.spec;
  const uint32_t w = spec.window_ms;

  if (session->defer_sealing) {
    // Mirror of window_pipeline.cc's ApplyIngest + RunSegments preamble:
    // restore order over the whole arrival sequence, shed the whole
    // timeline, then segment — identical transforms, identical windows.
    Stream stream_r, stream_s;
    stream_r.tuples = std::move(session->r);
    stream_s.tuples = std::move(session->s);
    if (session->ingest_policy.Enabled()) {
      IngestResult ingested_r = IngestStream(stream_r, session->ingest_policy);
      IngestResult ingested_s = IngestStream(stream_s, session->ingest_policy);
      session->ingest_stats = ingested_r.stats;
      session->ingest_stats.Merge(ingested_s.stats);
      stream_r = std::move(ingested_r.stream);
      stream_s = std::move(ingested_s.stream);
      PublishIngestMetrics(session->ingest_stats);
    }
    if (session->supervision.shed_watermark_per_ms > 0) {
      ShedResult shed_r = ShedToWatermark(
          stream_r, session->supervision.shed_watermark_per_ms,
          session->supervision.shed_max_lag_ms, session->supervision.seed);
      ShedResult shed_s = ShedToWatermark(
          stream_s, session->supervision.shed_watermark_per_ms,
          session->supervision.shed_max_lag_ms, session->supervision.seed + 1);
      session->tuples_shed += shed_r.tuples_shed + shed_s.tuples_shed;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.tuples_shed += shed_r.tuples_shed + shed_s.tuples_shed;
      }
      BumpCounter("serve.tuples_shed",
                  shed_r.tuples_shed + shed_s.tuples_shed);
      stream_r = std::move(shed_r.stream);
      stream_s = std::move(shed_s.stream);
    }
    const uint64_t max_ts =
        std::max<uint64_t>(stream_r.MaxTs(), stream_s.MaxTs());
    if (stream_r.size() + stream_s.size() > 0) {
      for (uint64_t start = 0; start <= max_ts; start += w) {
        Stream wr = SliceWindow(stream_r.tuples, start, w);
        Stream ws = SliceWindow(stream_s.tuples, start, w);
        if (wr.size() == 0 && ws.size() == 0) continue;
        SubmitWindow(session, start, std::move(wr), std::move(ws));
      }
    }
  } else {
    // Eager path: everything below next_seal_start already ran; the tail up
    // to the overall max timestamp seals now, matching the offline
    // enumeration 0..max_ts inclusive.
    const uint64_t max_ts = std::max<uint64_t>(
        session->r.empty() ? 0 : session->r.back().ts,
        session->s.empty() ? 0 : session->s.back().ts);
    if (session->r.size() + session->s.size() > 0) {
      for (uint64_t start = session->next_seal_start; start <= max_ts;
           start += w) {
        Stream wr = SliceWindow(session->r, start, w);
        Stream ws = SliceWindow(session->s, start, w);
        if (wr.size() == 0 && ws.size() == 0) continue;
        SubmitWindow(session, start, std::move(wr), std::move(ws));
      }
      session->next_seal_start = max_ts + 1;
    }
  }

  pool_.WaitIdle(session->slot);
  if (!send) return;

  std::vector<WindowResult> results;
  {
    std::lock_guard<std::mutex> lock(session->results_mu);
    results = session->results;
  }
  // Jobs complete in pool order, not window order; the client sees windows
  // in timeline order like the offline pipeline reports them.
  std::sort(results.begin(), results.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.window_index < b.window_index;
            });
  uint64_t inputs = 0, matches = 0, checksum = 0;
  bool recovered = false;
  bool degraded = session->tuples_shed > 0 ||
                  session->ingest_stats.quarantined() > 0;
  for (const WindowResult& window : results) {
    WriteFrame(fd, WindowJson(window));
    recovered = recovered || window.recovered;
    degraded = degraded || window.degraded || !window.ok();
    if (window.ok()) {
      inputs += window.inputs;
      matches += window.matches;
      checksum += window.checksum;
    }
  }
  WriteFrame(fd, ByeJson(session->tenant.name, results.size(), inputs,
                         matches, checksum, recovered, degraded));
}

void ServeServer::SubmitWindow(TenantSession* session, uint64_t start,
                               Stream wr, Stream ws) {
  const JoinSpec& spec = session->tenant.spec;
  const uint64_t window_index = start / spec.window_ms;

  WindowResult shell;
  shell.window_index = window_index;
  shell.window_start_ms = start;
  shell.algorithm = std::string(AlgorithmName(session->tenant.algo));

  // Memory admission: the estimated footprint must fit both this tenant's
  // share of the budget and the budget's remaining headroom (Preflight).
  // Refused windows never reach the pool; the client gets a typed result.
  const int64_t estimate =
      static_cast<int64_t>(wr.size() + ws.size()) * kBytesPerTuplePreflight;
  Status admission = Status::Ok();
  const int64_t budget = mem::BudgetBytes();
  if (budget > 0 &&
      static_cast<double>(estimate) >
          static_cast<double>(budget) * options_.mem_share) {
    admission = Status::ResourceExhausted(
        "window " + std::to_string(window_index) + " estimate (" +
        std::to_string(estimate) + " bytes) exceeds the tenant share of the "
        "memory budget");
  } else {
    admission = mem::Preflight(estimate, "serve window admission");
  }
  if (!admission.ok()) {
    shell.status_code = std::string(StatusCodeName(admission.code()));
    shell.status_message = admission.message();
    shell.inputs = wr.size() + ws.size();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.windows_shed;
    }
    BumpCounter("serve.windows_shed");
    std::lock_guard<std::mutex> lock(session->results_mu);
    session->results.push_back(std::move(shell));
    return;
  }

  JoinSpec window_spec = spec;
  window_spec.radix_bits = session->radix_bits.load(std::memory_order_relaxed);
  const uint64_t queue_depth =
      session->submitted.load(std::memory_order_relaxed) -
      session->completed.load(std::memory_order_relaxed);
  session->submitted.fetch_add(1, std::memory_order_relaxed);

  // WindowJob is a std::function (copyable), so the sliced inputs ride in a
  // shared_ptr instead of being copied per std::function copy.
  auto inputs = std::make_shared<std::pair<Stream, Stream>>(std::move(wr),
                                                            std::move(ws));
  const bool submitted = pool_.Submit(
      session->slot,
      [this, session, inputs, window_spec, window_index, start, shell,
       queue_depth](int worker, bool stolen, double wait_ms) {
        JoinRunner runner;
        const AttemptFn attempt = [&](AlgorithmId id,
                                      const JoinSpec& attempt_spec) {
          return RunWindowOnce(runner, id, inputs->first, inputs->second,
                               attempt_spec, window_index);
        };
        RunResult result =
            session->supervision.Enabled()
                ? SuperviseAttempts(session->tenant.algo, window_spec,
                                    session->supervision, attempt)
                : attempt(session->tenant.algo, window_spec);

        WindowResult window = shell;
        if (!result.algorithm.empty()) window.algorithm = result.algorithm;
        window.status_code = std::string(StatusCodeName(result.status.code()));
        window.status_message = result.status.message();
        window.inputs = result.inputs;
        window.matches = result.matches;
        window.checksum = result.checksum;
        window.recovered = result.recovery.recovered();
        window.degraded = result.recovery.degraded();
        window.wait_ms = wait_ms;
        window.worker = worker;
        window.stolen = stolen;

        RunRecordContext context;
        context.bench = "iawj_serve";
        context.workload = session->tenant.name;
        context.serve.active = true;
        context.serve.tenant = session->tenant.name;
        context.serve.window_index = window_index;
        context.serve.window_start_ms = start;
        context.serve.tenants_active = tenants_active();
        context.serve.queue_depth = queue_depth;
        context.serve.cross_tenant_steals =
            pool_.stats().cross_tenant_steals;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          context.serve.windows_shed = stats_.windows_shed;
          if (result.status.ok()) ++stats_.windows_done;
        }
        context.serve.wait_ms = wait_ms;
        context.serve.worker = worker;
        context.serve.stolen = stolen;
        MaybeWriteRunRecord(result, window_spec, context);
        // Failed windows must not count: OPERATIONS.md keys troubleshooting
        // on serve.windows_done agreeing with ServerStats::windows_done.
        if (result.status.ok()) BumpCounter("serve.windows_done");

        session->completed.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(session->results_mu);
          session->results.push_back(std::move(window));
        }
        MaybeRepartition(session);
      });
  if (!submitted) {
    // Pool stopping underneath us (hard shutdown): report the window
    // cancelled rather than silently losing it.
    session->submitted.fetch_sub(1, std::memory_order_relaxed);
    shell.status_code = std::string(StatusCodeName(StatusCode::kCancelled));
    shell.status_message = "daemon shut down before the window ran";
    std::lock_guard<std::mutex> lock(session->results_mu);
    session->results.push_back(std::move(shell));
  }
}

void ServeServer::MaybeRepartition(TenantSession* session) {
  // PanJoin-style skew response: a radix-partitioned tenant consuming more
  // than twice its fair share of pool service gets finer partitions, which
  // shrinks its longest indivisible work unit and lets the fair-share
  // dispatcher interleave other tenants more often. Answer-preserving: the
  // match multiset is invariant in radix_bits.
  const AlgorithmId algo = session->tenant.algo;
  if (algo != AlgorithmId::kPrj && algo != AlgorithmId::kHhj) return;
  if (session->completed.load(std::memory_order_relaxed) < 4) return;
  const int active = tenants_active();
  if (active < 2) return;
  const uint64_t mine = pool_.TenantServiceNs(session->slot);
  const uint64_t total = pool_.stats().total_service_ns;
  if (total == 0) return;
  const double fair_share = static_cast<double>(total) / active;
  if (static_cast<double>(mine) <= 2.0 * fair_share) return;
  int bits = session->radix_bits.load(std::memory_order_relaxed);
  if (bits >= kMaxSkewRadixBits) return;
  if (!session->radix_bits.compare_exchange_strong(
          bits, bits + 1, std::memory_order_relaxed)) {
    return;  // another worker just bumped it
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.repartitions;
  }
  BumpCounter("serve.repartitions");
  IAWJ_LOG(Info) << "skew detector: tenant '" << session->tenant.name
                 << "' at " << mine << " ns of " << total
                 << " ns pool service; radix_bits " << bits << " -> "
                 << bits + 1;
}

}  // namespace iawj::serve
