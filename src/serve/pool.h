// Fair-share window-job pool for the iawj_serve daemon (ISSUE 10).
//
// One pool of worker threads executes every tenant's window jobs; the
// multiplexing problem is keeping a hot tenant (many queued windows, heavy
// per-window work) from starving a quiet one. The pool keeps one FIFO queue
// per tenant plus a per-tenant service-time account (wall nanoseconds its
// jobs have consumed), and each free worker serves the *least-serviced*
// tenant with work pending — deficit-style fair sharing: a quiet tenant's
// first window always preempts the hot tenant's hundredth in the dispatch
// order, so its queue wait is bounded by one in-flight job per worker
// rather than by the hot backlog.
//
// Every tenant also has a home worker (tenant slot modulo pool size, the
// same hashing the morsel scheduler uses for NUMA homes). A worker
// executing a job whose tenant homes elsewhere counts one cross-tenant
// steal — the run-record evidence that tenants really share one pool
// instead of partitioning it.
//
// Submission is backpressured, not rejected: Submit blocks while the
// tenant already has max_inflight jobs pending or running, bounding both
// memory (sliced window copies live inside the queued jobs) and the damage
// one flooding connection can do. Rejection-style admission (tenant count,
// buffer caps, memory preflight) lives in server.cc — by the time a job
// reaches the pool it has been admitted.
#ifndef IAWJ_SERVE_POOL_H_
#define IAWJ_SERVE_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace iawj::serve {

// A window job: executed on a pool worker. `worker` is the executing
// thread's index, `stolen` whether that worker is not the tenant's home,
// `wait_ms` the queue wait between Submit and execution start.
using WindowJob = std::function<void(int worker, bool stolen, double wait_ms)>;

class FairSharePool {
 public:
  struct Stats {
    uint64_t jobs_done = 0;
    uint64_t cross_tenant_steals = 0;
    uint64_t total_service_ns = 0;
  };

  FairSharePool() = default;
  ~FairSharePool();

  FairSharePool(const FairSharePool&) = delete;
  FairSharePool& operator=(const FairSharePool&) = delete;

  // Starts `threads` workers (>= 1; clamped). max_inflight bounds each
  // tenant's pending + running jobs (>= 1; clamped).
  void Start(int threads, int max_inflight);

  // Finishes every queued job, then joins the workers. Idempotent.
  void Stop();

  // Registers a tenant queue; the returned slot id names it in Submit.
  // Slot ids are monotonic and never reused within one pool lifetime, so a
  // stale id from a departed tenant cannot alias a new one.
  int AddTenant(const std::string& name);

  // Marks the tenant's queue closed. Pending jobs still run; Submit on the
  // slot becomes a no-op returning false. The queue itself is reclaimed
  // once its last job finishes, so dead tenants cost nothing at dispatch.
  void RemoveTenant(int tenant);

  // Enqueues a job, blocking while the tenant is at its in-flight bound.
  // Returns false (job dropped) when the slot is closed or the pool is
  // stopping.
  bool Submit(int tenant, WindowJob job);

  // Blocks until the tenant has no pending or running jobs.
  void WaitIdle(int tenant);

  Stats stats() const;
  // Wall nanoseconds of job execution charged to the tenant so far.
  uint64_t TenantServiceNs(int tenant) const;
  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct PendingJob {
    WindowJob run;
    std::chrono::steady_clock::time_point submitted;
  };

  struct TenantQueue {
    std::string name;
    std::deque<PendingJob> pending;
    int running = 0;
    uint64_t service_ns = 0;
    bool closed = false;
  };

  void WorkerLoop(int worker);
  // Looks up a tenant queue by slot id; nullptr for unknown or reclaimed
  // slots. Pointer stability: unordered_map elements never move, and an
  // entry is only erased (ReapLocked) once closed with no pending or
  // running jobs — but NEVER cache the pointer across an unlock; re-fetch
  // after every lock reacquisition and inside every wait predicate, because
  // the queue may be reclaimed while the lock is dropped.
  TenantQueue* FindLocked(int tenant);
  const TenantQueue* FindLocked(int tenant) const;
  // Erases the slot if it is closed and fully drained.
  void ReapLocked(int tenant);
  // Picks the least-serviced queue with pending work; -1 when none.
  int PickTenantLocked() const;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: work available / stopping
  std::condition_variable idle_cv_;   // submitters: slot freed / tenant idle
  std::unordered_map<int, TenantQueue> tenants_;
  int next_slot_ = 0;
  std::vector<std::thread> workers_;
  int max_inflight_ = 4;
  bool stopping_ = false;
  bool started_ = false;
  Stats stats_;
};

}  // namespace iawj::serve

#endif  // IAWJ_SERVE_POOL_H_
