#include "src/serve/protocol.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace iawj::serve {

namespace {

// Spec keys carried by the hello frame. Kept in one place so ToHelloJson
// and FromHello cannot drift: a knob serialized but not parsed (or vice
// versa) would silently break the serve-vs-offline differential.
constexpr char kKeyTenant[] = "tenant";
constexpr char kKeyAlgo[] = "algo";

double NumberOr(const json::Value& msg, const char* key, double fallback) {
  const json::Value* v = msg.Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

bool BoolOr(const json::Value& msg, const char* key, bool fallback) {
  const json::Value* v = msg.Find(key);
  return v != nullptr && v->kind == json::Value::Kind::kBool ? v->boolean
                                                             : fallback;
}

std::string StringOr(const json::Value& msg, const char* key,
                     const std::string& fallback) {
  const json::Value* v = msg.Find(key);
  return v != nullptr && v->is_string() ? v->string : fallback;
}

// Checksums are full 64-bit Mix64 values; a JSON number round-trips through
// a double and silently loses everything past 2^53, so the wire carries
// them as decimal strings. Accepts a number too (older/looser senders).
uint64_t U64Or(const json::Value& msg, const char* key, uint64_t fallback) {
  const json::Value* v = msg.Find(key);
  if (v == nullptr) return fallback;
  if (v->is_number()) return static_cast<uint64_t>(v->number);
  if (!v->is_string() || v->string.empty()) return fallback;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(v->string.c_str(), &end, 10);
  return end != nullptr && *end == '\0' ? parsed : fallback;
}

}  // namespace

bool ParseAlgorithmName(const std::string& name, AlgorithmId* id) {
  for (AlgorithmId candidate : kAllAlgorithms) {
    std::string label(AlgorithmName(candidate));
    for (auto& c : label) c = static_cast<char>(std::tolower(c));
    if (label == name) {
      *id = candidate;
      return true;
    }
  }
  if (name == "hhj") {
    *id = AlgorithmId::kHhj;
    return true;
  }
  return false;
}

bool ParseStatusCodeName(const std::string& name, StatusCode* code) {
  for (StatusCode candidate :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kDataLoss, StatusCode::kInternal}) {
    if (StatusCodeName(candidate) == name) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

Status TenantSpec::Validate() const {
  if (name.empty() || name.size() > 64) {
    return Status::InvalidArgument(
        "tenant name must be 1..64 characters, got '" + name + "'");
  }
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '-' || c == '_' || c == '.';
    if (!ok) {
      return Status::InvalidArgument("tenant name '" + name +
                                     "' has characters outside [a-zA-Z0-9._-]");
    }
  }
  return spec.Validate(algo);
}

std::string TenantSpec::ToHelloJson() const {
  std::string algo_name(AlgorithmName(algo));
  for (auto& c : algo_name) c = static_cast<char>(std::tolower(c));
  json::Writer w;
  w.BeginObject();
  w.Field("op", "hello");
  w.Field(kKeyTenant, name);
  w.Field(kKeyAlgo, algo_name);
  w.Field("window_ms", uint64_t{spec.window_ms});
  w.Field("threads", int64_t{spec.num_threads});
  w.Field("radix_bits", int64_t{spec.radix_bits});
  w.Field("radix_passes", int64_t{spec.radix_passes});
  w.Field("pmj_delta", spec.pmj_delta);
  w.Field("jb_group_size", int64_t{spec.jb_group_size});
  w.Field("kernels", KernelModeName(spec.kernels));
  w.Field("scheduler", std::string(SchedulerModeName(spec.scheduler)));
  w.Field("morsel_size", uint64_t{spec.morsel_size});
  w.Field("deadline_ms", uint64_t{spec.deadline_ms});
  w.Field("retry", int64_t{spec.retry_max_attempts});
  w.Field("retry_backoff_ms", spec.retry_backoff_ms);
  w.Field("fallback", spec.fallback_enabled);
  w.Field("skip_windows", spec.skip_failed_windows);
  w.Field("shed_watermark_per_ms", spec.shed_watermark_per_ms);
  w.Field("supervisor_seed", uint64_t{spec.supervisor_seed});
  w.Field("disorder_slack_ms", spec.disorder_slack_ms);
  w.Field("allowed_lateness_ms", spec.allowed_lateness_ms);
  w.Field("ingest_dedup", spec.ingest_dedup);
  w.EndObject();
  return w.str();
}

Status TenantSpec::FromHello(const json::Value& message, TenantSpec* out) {
  TenantSpec tenant;
  tenant.name = StringOr(message, kKeyTenant, "");
  const std::string algo = StringOr(message, kKeyAlgo, "npj");
  if (!ParseAlgorithmName(algo, &tenant.algo)) {
    return Status::InvalidArgument("hello names unknown algorithm '" + algo +
                                   "'");
  }
  JoinSpec& spec = tenant.spec;
  spec.window_ms =
      static_cast<uint32_t>(NumberOr(message, "window_ms", spec.window_ms));
  spec.num_threads =
      static_cast<int>(NumberOr(message, "threads", spec.num_threads));
  spec.radix_bits =
      static_cast<int>(NumberOr(message, "radix_bits", spec.radix_bits));
  spec.radix_passes =
      static_cast<int>(NumberOr(message, "radix_passes", spec.radix_passes));
  spec.pmj_delta = NumberOr(message, "pmj_delta", spec.pmj_delta);
  spec.jb_group_size =
      static_cast<int>(NumberOr(message, "jb_group_size", spec.jb_group_size));
  if (const std::string kernels = StringOr(message, "kernels", "auto");
      !ParseKernelMode(kernels, &spec.kernels)) {
    return Status::InvalidArgument("hello names unknown kernels mode '" +
                                   kernels + "'");
  }
  if (const std::string scheduler = StringOr(message, "scheduler", "auto");
      !ParseSchedulerMode(scheduler, &spec.scheduler)) {
    return Status::InvalidArgument("hello names unknown scheduler mode '" +
                                   scheduler + "'");
  }
  spec.morsel_size =
      static_cast<size_t>(NumberOr(message, "morsel_size", 0));
  spec.deadline_ms =
      static_cast<uint32_t>(NumberOr(message, "deadline_ms", 0));
  spec.retry_max_attempts =
      static_cast<int>(NumberOr(message, "retry", spec.retry_max_attempts));
  spec.retry_backoff_ms =
      NumberOr(message, "retry_backoff_ms", spec.retry_backoff_ms);
  spec.fallback_enabled =
      BoolOr(message, "fallback", spec.fallback_enabled);
  spec.skip_failed_windows =
      BoolOr(message, "skip_windows", spec.skip_failed_windows);
  spec.shed_watermark_per_ms =
      NumberOr(message, "shed_watermark_per_ms", spec.shed_watermark_per_ms);
  spec.supervisor_seed = static_cast<uint64_t>(
      NumberOr(message, "supervisor_seed", 42));
  spec.disorder_slack_ms =
      NumberOr(message, "disorder_slack_ms", spec.disorder_slack_ms);
  spec.allowed_lateness_ms =
      NumberOr(message, "allowed_lateness_ms", spec.allowed_lateness_ms);
  spec.ingest_dedup = BoolOr(message, "ingest_dedup", spec.ingest_dedup);
  if (const Status status = tenant.Validate(); !status.ok()) return status;
  *out = std::move(tenant);
  return Status::Ok();
}

std::string OkJson() {
  json::Writer w;
  w.BeginObject().Field("op", "ok").EndObject();
  return w.str();
}

std::string ErrorJson(const Status& status) {
  json::Writer w;
  w.BeginObject();
  w.Field("op", "error");
  w.Field("code", std::string(StatusCodeName(status.code())));
  w.Field("message", std::string(status.message()));
  w.EndObject();
  return w.str();
}

std::string BatchJson(std::span<const Tuple> r, std::span<const Tuple> s) {
  json::Writer w;
  w.BeginObject();
  w.Field("op", "batch");
  const auto write_stream = [&w](const char* key,
                                 std::span<const Tuple> tuples) {
    w.Key(key).BeginArray();
    for (const Tuple& t : tuples) {
      w.BeginArray().Uint(t.ts).Uint(t.key).EndArray();
    }
    w.EndArray();
  };
  write_stream("r", r);
  write_stream("s", s);
  w.EndObject();
  return w.str();
}

std::string EndJson() {
  json::Writer w;
  w.BeginObject().Field("op", "end").EndObject();
  return w.str();
}

std::string WindowJson(const WindowResult& window) {
  json::Writer w;
  w.BeginObject();
  w.Field("op", "window");
  w.Field("window_index", uint64_t{window.window_index});
  w.Field("window_start_ms", uint64_t{window.window_start_ms});
  w.Field("algorithm", window.algorithm);
  w.Field("status", window.status_code);
  if (!window.status_message.empty()) {
    w.Field("message", window.status_message);
  }
  w.Field("inputs", uint64_t{window.inputs});
  w.Field("matches", uint64_t{window.matches});
  w.Field("checksum", std::to_string(window.checksum));
  w.Field("recovered", window.recovered);
  w.Field("degraded", window.degraded);
  w.Field("wait_ms", window.wait_ms);
  w.Field("worker", int64_t{window.worker});
  w.Field("stolen", window.stolen);
  w.EndObject();
  return w.str();
}

std::string ByeJson(const std::string& tenant, uint64_t windows,
                    uint64_t inputs, uint64_t matches, uint64_t checksum,
                    bool recovered, bool degraded) {
  json::Writer w;
  w.BeginObject();
  w.Field("op", "bye");
  w.Field("tenant", tenant);
  w.Field("windows", uint64_t{windows});
  w.Field("inputs", uint64_t{inputs});
  w.Field("matches", uint64_t{matches});
  w.Field("checksum", std::to_string(checksum));
  w.Field("recovered", recovered);
  w.Field("degraded", degraded);
  w.EndObject();
  return w.str();
}

Status ParseBatch(const json::Value& message, std::vector<Tuple>* r,
                  std::vector<Tuple>* s) {
  const auto parse_stream = [&message](const char* key,
                                       std::vector<Tuple>* out) -> Status {
    const json::Value* tuples = message.Find(key);
    if (tuples == nullptr) return Status::Ok();  // one-sided batches are fine
    if (!tuples->is_array()) {
      return Status::InvalidArgument(std::string("batch '") + key +
                                     "' is not an array");
    }
    out->reserve(out->size() + tuples->array.size());
    for (const json::Value& entry : tuples->array) {
      if (!entry.is_array() || entry.array.size() != 2 ||
          !entry.array[0].is_number() || !entry.array[1].is_number() ||
          entry.array[0].number < 0 || entry.array[1].number < 0) {
        return Status::InvalidArgument(
            std::string("batch '") + key +
            "' tuples must be [ts, key] pairs of non-negative numbers");
      }
      out->push_back(Tuple{static_cast<uint32_t>(entry.array[0].number),
                           static_cast<uint32_t>(entry.array[1].number)});
    }
    return Status::Ok();
  };
  if (const Status status = parse_stream("r", r); !status.ok()) return status;
  return parse_stream("s", s);
}

Status ParseWindow(const json::Value& message, WindowResult* out) {
  WindowResult window;
  window.window_index =
      static_cast<uint64_t>(NumberOr(message, "window_index", 0));
  window.window_start_ms =
      static_cast<uint64_t>(NumberOr(message, "window_start_ms", 0));
  window.algorithm = StringOr(message, "algorithm", "");
  window.status_code = StringOr(message, "status", "");
  window.status_message = StringOr(message, "message", "");
  window.inputs = static_cast<uint64_t>(NumberOr(message, "inputs", 0));
  window.matches = static_cast<uint64_t>(NumberOr(message, "matches", 0));
  window.checksum = U64Or(message, "checksum", 0);
  window.recovered = BoolOr(message, "recovered", false);
  window.degraded = BoolOr(message, "degraded", false);
  window.wait_ms = NumberOr(message, "wait_ms", 0);
  window.worker = static_cast<int>(NumberOr(message, "worker", -1));
  window.stolen = BoolOr(message, "stolen", false);
  if (window.status_code.empty()) {
    return Status::InvalidArgument("window frame without a status");
  }
  *out = std::move(window);
  return Status::Ok();
}

Status ParseError(const json::Value& message) {
  const std::string code_name = StringOr(message, "code", "internal");
  StatusCode code = StatusCode::kInternal;
  if (!ParseStatusCodeName(code_name, &code) || code == StatusCode::kOk) {
    code = StatusCode::kInternal;
  }
  return Status(code, StringOr(message, "message", "server error"));
}

Status WriteFrame(int fd, const std::string& json) {
  std::string framed = json;
  framed.push_back('\n');
  size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(std::string("socket write failed: ") +
                                        std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FrameReader::ReadFrame(std::string* frame, bool* eof,
                              int poll_timeout_ms, bool* timed_out) {
  *eof = false;
  if (timed_out != nullptr) *timed_out = false;
  for (;;) {
    if (const size_t nl = buffer_.find('\n'); nl != std::string::npos) {
      frame->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::Ok();
    }
    if (buffer_.size() > max_frame_bytes_) {
      return Status::InvalidArgument(
          "frame exceeds the " + std::to_string(max_frame_bytes_) +
          "-byte framing limit without a newline");
    }
    if (poll_timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, poll_timeout_ms);
      if (ready < 0 && errno != EINTR) {
        return Status::FailedPrecondition(std::string("poll failed: ") +
                                          std::strerror(errno));
      }
      if (ready <= 0) {
        if (timed_out != nullptr) *timed_out = true;
        return Status::Ok();
      }
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(std::string("socket read failed: ") +
                                        std::strerror(errno));
    }
    if (n == 0) {
      // A half frame at EOF is a torn peer, not an orderly close.
      if (!buffer_.empty()) {
        return Status::DataLoss("connection closed mid-frame");
      }
      *eof = true;
      return Status::Ok();
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status FrameReader::ReadMessage(json::Value* message, bool* eof) {
  std::string frame;
  if (const Status status = ReadFrame(&frame, eof); !status.ok()) {
    return status;
  }
  if (*eof) return Status::Ok();
  return json::Parse(frame, message);
}

}  // namespace iawj::serve
