#include "src/serve/pool.h"

#include <algorithm>
#include <utility>

#include "src/profiling/metrics.h"

namespace iawj::serve {

namespace {

void PublishSteal() {
  if (!metrics::Enabled()) return;
  static metrics::Counter* steals =
      metrics::GetCounter("serve.cross_tenant_steals");
  if (steals != nullptr) steals->Add();
}

}  // namespace

FairSharePool::~FairSharePool() { Stop(); }

void FairSharePool::Start(int threads, int max_inflight) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  max_inflight_ = std::max(1, max_inflight);
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void FairSharePool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  std::lock_guard<std::mutex> lock(mu_);
  workers_.clear();
  started_ = false;
}

int FairSharePool::AddTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue queue;
  queue.name = name;
  // A newcomer starts at the current service minimum: it gets the next free
  // worker (nothing has been spent on it this epoch) without banking an
  // unbounded credit against long-lived tenants.
  uint64_t min_service = 0;
  bool first = true;
  for (const auto& [slot, t] : tenants_) {
    if (t.closed) continue;
    if (first || t.service_ns < min_service) min_service = t.service_ns;
    first = false;
  }
  queue.service_ns = first ? 0 : min_service;
  const int slot = next_slot_++;
  tenants_.emplace(slot, std::move(queue));
  return slot;
}

void FairSharePool::RemoveTenant(int tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantQueue* queue = FindLocked(tenant);
    if (queue == nullptr) return;
    queue->closed = true;
    ReapLocked(tenant);
  }
  // Submitters blocked on this slot must observe the close and give up.
  idle_cv_.notify_all();
}

bool FairSharePool::Submit(int tenant, WindowJob job) {
  std::unique_lock<std::mutex> lock(mu_);
  // The predicate re-fetches the queue on every evaluation: the slot may be
  // closed and reclaimed while the wait has the lock dropped.
  idle_cv_.wait(lock, [this, tenant] {
    const TenantQueue* queue = FindLocked(tenant);
    return stopping_ || queue == nullptr || queue->closed ||
           static_cast<int>(queue->pending.size()) + queue->running <
               max_inflight_;
  });
  TenantQueue* queue = FindLocked(tenant);
  if (stopping_ || queue == nullptr || queue->closed) return false;
  queue->pending.push_back(
      PendingJob{std::move(job), std::chrono::steady_clock::now()});
  lock.unlock();
  work_cv_.notify_one();
  return true;
}

void FairSharePool::WaitIdle(int tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this, tenant] {
    const TenantQueue* queue = FindLocked(tenant);
    return queue == nullptr ||
           (queue->pending.empty() && queue->running == 0);
  });
}

FairSharePool::Stats FairSharePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t FairSharePool::TenantServiceNs(int tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantQueue* queue = FindLocked(tenant);
  return queue == nullptr ? 0 : queue->service_ns;
}

FairSharePool::TenantQueue* FairSharePool::FindLocked(int tenant) {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

const FairSharePool::TenantQueue* FairSharePool::FindLocked(
    int tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

void FairSharePool::ReapLocked(int tenant) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  const TenantQueue& queue = it->second;
  if (queue.closed && queue.pending.empty() && queue.running == 0) {
    tenants_.erase(it);
  }
}

int FairSharePool::PickTenantLocked() const {
  int best = -1;
  const TenantQueue* best_queue = nullptr;
  for (const auto& [slot, queue] : tenants_) {
    if (queue.pending.empty()) continue;
    if (best < 0 || queue.service_ns < best_queue->service_ns ||
        (queue.service_ns == best_queue->service_ns && slot < best)) {
      best = slot;
      best_queue = &queue;
    }
  }
  return best;
}

void FairSharePool::WorkerLoop(int worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stopping_ || PickTenantLocked() >= 0; });
    const int tenant = PickTenantLocked();
    if (tenant < 0) {
      if (stopping_) return;  // stopping with nothing left: drain complete
      continue;
    }
    PendingJob job;
    {
      TenantQueue* queue = FindLocked(tenant);
      job = std::move(queue->pending.front());
      queue->pending.pop_front();
      ++queue->running;
    }
    const bool stolen =
        !workers_.empty() &&
        tenant % static_cast<int>(workers_.size()) != worker;
    if (stolen) ++stats_.cross_tenant_steals;
    lock.unlock();

    if (stolen) PublishSteal();
    const auto started = std::chrono::steady_clock::now();
    const double wait_ms =
        std::chrono::duration<double, std::milli>(started - job.submitted)
            .count();
    job.run(worker, stolen, wait_ms);
    const uint64_t service_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started)
            .count());

    lock.lock();
    // Re-fetch: the map may have rehashed while the lock was dropped. The
    // entry itself is still present — running > 0 blocks ReapLocked.
    if (TenantQueue* queue = FindLocked(tenant)) {
      --queue->running;
      queue->service_ns += service_ns;
      ReapLocked(tenant);
    }
    stats_.total_service_ns += service_ns;
    ++stats_.jobs_done;
    idle_cv_.notify_all();
  }
}

}  // namespace iawj::serve
