#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace iawj::serve {

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::Connect(const std::string& socket_path) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::FailedPrecondition(std::string("socket(): ") +
                                      std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::FailedPrecondition("connect(" + socket_path +
                                      "): " + std::strerror(err));
  }
  fd_ = fd;
  reader_ = FrameReader(fd_);
  drained_ = false;
  windows_.clear();
  totals_ = Totals{};
  return Status::Ok();
}

Status ServeClient::Hello(const TenantSpec& tenant) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (Status sent = WriteFrame(fd_, tenant.ToHelloJson()); !sent.ok()) {
    return sent;
  }
  json::Value reply;
  bool eof = false;
  if (Status read = reader_.ReadMessage(&reply, &eof); !read.ok()) {
    return read;
  }
  if (eof) return Status::DataLoss("server closed during hello");
  const json::Value* op = reply.Find("op");
  if (op != nullptr && op->string == "ok") return Status::Ok();
  if (op != nullptr && op->string == "error") return ParseError(reply);
  return Status::InvalidArgument("unexpected hello reply");
}

Status ServeClient::SendBatch(std::span<const Tuple> r,
                              std::span<const Tuple> s) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (drained_) return Status::Ok();  // daemon already sealed the stream
  if (Status sent = WriteFrame(fd_, BatchJson(r, s)); !sent.ok()) {
    return sent;
  }
  json::Value reply;
  bool eof = false;
  if (Status read = reader_.ReadMessage(&reply, &eof); !read.ok()) {
    return read;
  }
  if (eof) return Status::DataLoss("server closed during batch");
  const json::Value* op = reply.Find("op");
  const std::string op_name = op != nullptr ? op->string : "";
  if (op_name == "ok") return Status::Ok();
  if (op_name == "error") return ParseError(reply);
  if (op_name == "window" || op_name == "bye") {
    // Drain: the daemon sealed the stream and is sending results in place
    // of the batch ack. The batch just sent was never admitted.
    return ReadTail(op_name == "window", reply);
  }
  return Status::InvalidArgument("unexpected batch reply op '" + op_name +
                                 "'");
}

Status ServeClient::End() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (drained_) return Status::Ok();
  if (Status sent = WriteFrame(fd_, EndJson()); !sent.ok()) return sent;
  json::Value first;
  bool eof = false;
  if (Status read = reader_.ReadMessage(&first, &eof); !read.ok()) {
    return read;
  }
  if (eof) return Status::DataLoss("server closed before the result tail");
  const json::Value* op = first.Find("op");
  const std::string op_name = op != nullptr ? op->string : "";
  if (op_name == "error") return ParseError(first);
  if (op_name != "window" && op_name != "bye") {
    return Status::InvalidArgument("unexpected end reply op '" + op_name +
                                   "'");
  }
  return ReadTail(op_name == "window", first);
}

Status ServeClient::ReadTail(bool first_is_window, const json::Value& first) {
  windows_.clear();
  const json::Value* frame = &first;
  json::Value next;
  if (first_is_window) {
    for (;;) {
      WindowResult window;
      if (Status parsed = ParseWindow(*frame, &window); !parsed.ok()) {
        return parsed;
      }
      windows_.push_back(std::move(window));
      bool eof = false;
      if (Status read = reader_.ReadMessage(&next, &eof); !read.ok()) {
        return read;
      }
      if (eof) return Status::DataLoss("server closed before bye");
      const json::Value* op = next.Find("op");
      const std::string op_name = op != nullptr ? op->string : "";
      if (op_name == "window") {
        frame = &next;
        continue;
      }
      if (op_name == "bye") {
        frame = &next;
        break;
      }
      return Status::InvalidArgument("unexpected tail op '" + op_name + "'");
    }
  }
  // `frame` is the bye.
  const auto number = [frame](const char* key) -> uint64_t {
    const json::Value* v = frame->Find(key);
    return v != nullptr && v->is_number() ? static_cast<uint64_t>(v->number)
                                          : 0;
  };
  totals_.windows = number("windows");
  totals_.inputs = number("inputs");
  totals_.matches = number("matches");
  const json::Value* checksum = frame->Find("checksum");
  totals_.checksum = 0;
  if (checksum != nullptr && checksum->is_string()) {
    totals_.checksum = std::strtoull(checksum->string.c_str(), nullptr, 10);
  } else if (checksum != nullptr && checksum->is_number()) {
    totals_.checksum = static_cast<uint64_t>(checksum->number);
  }
  const json::Value* recovered = frame->Find("recovered");
  const json::Value* degraded = frame->Find("degraded");
  totals_.recovered = recovered != nullptr && recovered->boolean;
  totals_.degraded = degraded != nullptr && degraded->boolean;
  drained_ = true;
  return Status::Ok();
}

}  // namespace iawj::serve
