// Client side of the iawj_serve protocol (serve/protocol.h), used by
// iawj_cli --connect, the serve tests, and the chaos serve soak.
//
// Usage is the lockstep conversation: Connect, Hello (registers the tenant
// and its JoinSpec), SendBatch per arrival chunk, End to seal; after End
// the per-window results and tenant totals are available. The client is
// drain-aware: a daemon hit by SIGTERM seals streams server-side and emits
// the window/bye tail in place of a batch ack, and SendBatch surfaces that
// as drained() rather than a protocol error — callers stop sending and
// read their results, exactly as if they had sent end themselves.
#ifndef IAWJ_SERVE_CLIENT_H_
#define IAWJ_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/serve/protocol.h"

namespace iawj::serve {

class ServeClient {
 public:
  // Tenant totals from the bye frame (ok windows only, like the offline
  // pipeline's totals).
  struct Totals {
    uint64_t windows = 0;
    uint64_t inputs = 0;
    uint64_t matches = 0;
    uint64_t checksum = 0;
    bool recovered = false;
    bool degraded = false;
  };

  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  Status Connect(const std::string& socket_path);

  // Registers the tenant. A typed error (admission refusal, bad spec) comes
  // back as the Status the server sent.
  Status Hello(const TenantSpec& tenant);

  // Sends one batch of arrivals (either side may be empty). A typed batch
  // rejection (out-of-order stream, buffer overflow) is returned as its
  // Status; the connection stays usable. When the daemon drained instead of
  // acking, returns Ok with drained() true and the results populated.
  Status SendBatch(std::span<const Tuple> r, std::span<const Tuple> s);

  // Seals the stream and collects the window results and totals. A no-op
  // (Ok) when the daemon already drained.
  Status End();

  void Close();

  // True once the daemon sealed this stream on its own (SIGTERM drain).
  bool drained() const { return drained_; }
  const std::vector<WindowResult>& windows() const { return windows_; }
  const Totals& totals() const { return totals_; }

 private:
  // Reads the window/bye tail into windows_/totals_.
  Status ReadTail(bool first_is_window, const json::Value& first);

  int fd_ = -1;
  FrameReader reader_{-1};
  bool drained_ = false;
  std::vector<WindowResult> windows_;
  Totals totals_;
};

}  // namespace iawj::serve

#endif  // IAWJ_SERVE_CLIENT_H_
