// The iawj_serve daemon core: a long-lived multi-tenant join service
// (ISSUE 10 tentpole, ROADMAP "millions of users" front door).
//
// One ServeServer owns a Unix-domain listening socket, one connection
// thread per client, and one FairSharePool shared by every tenant. A
// connection speaks the newline-framed JSON protocol (serve/protocol.h):
// hello registers a tenant (admission-controlled), batches append to the
// tenant's arrival buffers, and windows seal onto the pool as tumbling
// slots complete — eagerly while the stream flows when no ingest/shed
// policy defers sealing, and at end-of-stream otherwise, because the
// disorder-ingest and shed-to-watermark transforms are whole-timeline
// operations (stream/disorder.h, stream.h) and splitting them would
// diverge from the offline pipeline the differential tests compare against.
//
// Execution reuses the existing stack unchanged: each sealed window runs
// through supervisor.h's SuperviseAttempts under the tenant's resolved
// policy (retries, fallback chains, bounded-loss skip accounting), exactly
// as join/window_pipeline.cc drives offline pipelines — which is what makes
// a daemon-executed window byte-identical (matches, checksum) to the same
// spec run through iawj_cli.
//
// Admission control, per tenant:
//   - tenant count:    hello is refused (resource_exhausted) at the
//                      max_tenants bound, or while draining
//                      (failed_precondition);
//   - arrival buffer:  a batch that would push the tenant's retained
//                      tuples past max_buffer_tuples is refused
//                      (resource_exhausted) — unless the tenant configured
//                      a shed watermark, in which case the incoming batch
//                      is thinned by ShedToWatermark and admitted with the
//                      loss accounted (degraded, serve.tuples_shed);
//   - memory share:    each sealed window preflights its estimated
//                      footprint against mem_share of the process budget
//                      (mem::Preflight) before touching the pool; refused
//                      windows are reported to the client with a typed
//                      resource_exhausted result (serve.windows_shed);
//   - in-flight bound: the pool backpressures Submit at max_inflight jobs
//                      per tenant, so a flooding connection blocks instead
//                      of ballooning the queue.
//
// A PanJoin-style skew detector watches per-tenant service share: a tenant
// of a radix-partitioned algorithm (PRJ/HHJ) consuming more than twice its
// fair share of pool time gets its radix bits bumped for subsequent
// windows — finer partitions, better steal granularity, identical answer
// (the match multiset is algorithm- and radix-invariant).
//
// Drain (SIGTERM): RequestDrain stops admitting tenants (late hellos are
// still accepted and refused typed), and every connection seals its
// buffered tail as if the client had sent end — in-flight and buffered
// windows complete, their v9 run records flush, clients receive the full
// window/bye tail — then Shutdown stops the accept loop and joins
// everything.
#ifndef IAWJ_SERVE_SERVER_H_
#define IAWJ_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/serve/pool.h"
#include "src/serve/protocol.h"
#include "src/stream/stream.h"

namespace iawj::serve {

// Daemon configuration. Resolution order per knob: explicit field (> 0)
// wins, then the environment variable, then the default — the same
// precedence convention as JoinSpec's supervision knobs.
struct ServeOptions {
  std::string socket_path;        // required; $IAWJ_SERVE_SOCKET when empty
  int pool_threads = 0;           // $IAWJ_SERVE_POOL_THREADS, default 4
  int max_tenants = 0;            // $IAWJ_SERVE_MAX_TENANTS, default 8
  int max_inflight = 0;           // $IAWJ_SERVE_MAX_INFLIGHT, default 4
  int64_t max_buffer_tuples = 0;  // $IAWJ_SERVE_MAX_BUFFER, default 4194304
  double mem_share = 0;           // $IAWJ_SERVE_MEM_SHARE, default 1.0

  // Applies environment fallbacks and defaults to every unset field.
  static ServeOptions Resolve(ServeOptions overrides);
};

class ServeServer {
 public:
  // Counters over the daemon lifetime; mirrored into serve.* metrics.
  struct ServerStats {
    uint64_t connections = 0;
    uint64_t tenants_admitted = 0;
    uint64_t tenants_rejected = 0;
    uint64_t batches_rejected = 0;
    uint64_t tuples_in = 0;
    uint64_t tuples_shed = 0;      // backlog shedding (ShedToWatermark)
    uint64_t windows_done = 0;
    uint64_t windows_shed = 0;     // admission-refused windows
    uint64_t repartitions = 0;     // skew-detector radix bumps
    uint64_t cross_tenant_steals = 0;
  };

  explicit ServeServer(ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Binds the socket (unlinking a stale file), starts the pool and the
  // accept loop. FailedPrecondition when the path cannot be bound.
  Status Start();

  // Begins draining: no new tenants (connections are still accepted so a
  // latecomer's hello gets a typed failed_precondition refusal rather than
  // hanging in the listen backlog); existing connections seal and finish
  // as if their client had sent end. Returns immediately.
  void RequestDrain();

  // RequestDrain + joins every connection and the pool + removes the
  // socket file. Blocks until the daemon is fully quiesced. Idempotent.
  void Shutdown();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  const ServeOptions& options() const { return options_; }

  ServerStats stats() const;
  int tenants_active() const {
    return tenants_active_.load(std::memory_order_relaxed);
  }

 private:
  struct TenantSession;

  // One client connection: its handler thread plus a completion flag the
  // thread raises as its last act, so the accept loop can join and discard
  // finished connections instead of accumulating joinable zombies for the
  // daemon's lifetime.
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  // Joins and erases every connection whose handler has finished.
  void ReapConnectionsLocked();
  void HandleConnection(int fd);
  // Seals windows, waits for the tenant's jobs, and (when `send` is true)
  // writes the window/bye tail to the client.
  void SealFinal(TenantSession* session, int fd, bool send);
  void SealReadyWindows(TenantSession* session);
  void SubmitWindow(TenantSession* session, uint64_t start, Stream wr,
                    Stream ws);
  void MaybeRepartition(TenantSession* session);

  ServeOptions options_;
  FairSharePool pool_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> accept_stop_{false};  // set by Shutdown only
  std::atomic<bool> started_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<int> tenants_active_{0};

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace iawj::serve

#endif  // IAWJ_SERVE_SERVER_H_
