// Wire protocol for the iawj_serve daemon (ISSUE 10 tentpole).
//
// Transport is a Unix domain stream socket carrying newline-framed JSON:
// every message is one JSON object terminated by '\n', no other framing.
// The conversation is lockstep per connection, one logical tenant each:
//
//   client                             server
//   ------                             ------
//   {"op":"hello","tenant":...}   ->
//                                 <-   {"op":"ok"} | {"op":"error",...}
//   {"op":"batch","r":[[ts,key],...],"s":[...]}  ->        (repeated)
//                                 <-   {"op":"ok"} | {"op":"error",...}
//   {"op":"end"}                  ->
//                                 <-   {"op":"window",...}  (one per window)
//                                 <-   {"op":"bye",...}
//
// A draining server (SIGTERM) may emit the window/bye tail spontaneously —
// clients must treat a window/bye frame arriving in place of a batch ack as
// "the daemon sealed my stream for me" and stop sending.
//
// The hello carries the tenant spec: the algorithm plus every JoinSpec knob
// that affects the answer or its execution, so a tenant window run inside
// the daemon is byte-identical (matches and checksum) to the same spec run
// offline through iawj_cli. Errors carry the engine's stable status-code
// names ("resource_exhausted", ...), so clients recover typed Statuses and
// the CLI maps them onto its usual exit codes.
#ifndef IAWJ_SERVE_PROTOCOL_H_
#define IAWJ_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/join/context.h"

namespace iawj::serve {

// Parses the lower-case wire name of an algorithm ("npj", "shj-jm", "hhj",
// ...) — the same names iawj_cli's --algo accepts.
bool ParseAlgorithmName(const std::string& name, AlgorithmId* id);

// Maps a wire status-code name back to the enum; false for unknown names.
bool ParseStatusCodeName(const std::string& name, StatusCode* code);

// One logical query: a tenant name plus the algorithm and JoinSpec knobs
// its windows execute under.
struct TenantSpec {
  std::string name;
  AlgorithmId algo = AlgorithmId::kNpj;
  JoinSpec spec;

  // Rejects unusable specs (empty/oversized name, JoinSpec::Validate).
  Status Validate() const;

  // The {"op":"hello",...} frame (no trailing newline).
  std::string ToHelloJson() const;

  // Parses a hello frame. Unknown keys are ignored (forward compatibility);
  // missing keys keep their defaults.
  static Status FromHello(const json::Value& message, TenantSpec* out);
};

// One sealed window's outcome, as reported to the client and mirrored into
// the v9 run record's `serve` block.
struct WindowResult {
  uint64_t window_index = 0;     // tumbling slot: window_start / window_ms
  uint64_t window_start_ms = 0;
  std::string algorithm;         // what finally produced the result
  std::string status_code = "ok";
  std::string status_message;
  uint64_t inputs = 0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  bool recovered = false;        // supervisor retried / fell back
  bool degraded = false;         // bounded loss (skip/shed/quarantine)
  double wait_ms = 0;            // queue wait: submit -> execution start
  int worker = -1;               // pool worker that executed it
  bool stolen = false;           // executed off the tenant's home worker

  bool ok() const { return status_code == "ok"; }
};

// Frame builders. All return one JSON object without the trailing newline;
// WriteFrame appends it.
std::string OkJson();
std::string ErrorJson(const Status& status);
std::string BatchJson(std::span<const Tuple> r, std::span<const Tuple> s);
std::string EndJson();
std::string WindowJson(const WindowResult& window);
std::string ByeJson(const std::string& tenant, uint64_t windows,
                    uint64_t inputs, uint64_t matches, uint64_t checksum,
                    bool recovered, bool degraded);

// Frame parsers (the "op" key has already been dispatched on).
Status ParseBatch(const json::Value& message, std::vector<Tuple>* r,
                  std::vector<Tuple>* s);
Status ParseWindow(const json::Value& message, WindowResult* out);
// Reconstructs the typed Status carried by an {"op":"error"} frame.
Status ParseError(const json::Value& message);

// --- Framing over a file descriptor ---

// Writes `json` plus the terminating newline, retrying short writes.
Status WriteFrame(int fd, const std::string& json);

// Buffered newline-framed reader. Not thread-safe.
class FrameReader {
 public:
  // The largest frame accepted before a newline arrives. A peer streaming
  // an enormous (or newline-free) frame would otherwise grow the buffer
  // without bound before any admission check sees the message; past the
  // cap ReadFrame fails with InvalidArgument and the caller is expected to
  // drop the connection. The server sizes the cap from its tuple-buffer
  // admission bound (see ServeServer); this default covers every
  // control-plane frame with room to spare.
  static constexpr size_t kDefaultMaxFrameBytes = 64u << 20;  // 64 MiB

  explicit FrameReader(int fd, size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  // Reads one frame into *frame (newline stripped). Outcomes:
  //   ok + *eof=false              — one frame delivered
  //   ok + *eof=true               — orderly close, no frame
  //   ok + *timed_out=true         — poll_timeout_ms elapsed, no frame yet
  //   !ok                          — transport error or oversized frame
  // poll_timeout_ms < 0 blocks indefinitely.
  Status ReadFrame(std::string* frame, bool* eof, int poll_timeout_ms = -1,
                   bool* timed_out = nullptr);

  // ReadFrame + json::Parse in one step (blocking form).
  Status ReadMessage(json::Value* message, bool* eof);

 private:
  int fd_;
  size_t max_frame_bytes_;
  std::string buffer_;
};

}  // namespace iawj::serve

#endif  // IAWJ_SERVE_PROTOCOL_H_
