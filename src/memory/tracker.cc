#include "src/memory/tracker.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/fault.h"

namespace iawj::mem {

namespace {
std::atomic<int64_t> g_current{0};
std::atomic<int64_t> g_peak{0};
std::atomic<CancelToken*> g_breach_token{nullptr};

int64_t ParseEnvBudget() {
  const char* text = std::getenv("IAWJ_MEM_BUDGET");
  if (text == nullptr || text[0] == '\0') return 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || value <= 0) {
    // A garbled budget must not silently leave the process unprotected.
    std::fprintf(stderr,
                 "warning: unparsable IAWJ_MEM_BUDGET '%s' ignored "
                 "(want <int>[k|m|g])\n",
                 text);
    return 0;
  }
  int64_t bytes = value;
  switch (*end) {
    case 'k':
    case 'K':
      bytes <<= 10;
      break;
    case 'm':
    case 'M':
      bytes <<= 20;
      break;
    case 'g':
    case 'G':
      bytes <<= 30;
      break;
    default:
      break;
  }
  return bytes;
}

std::atomic<int64_t> g_budget{ParseEnvBudget()};

std::string BreachMessage(int64_t requested, int64_t would_be,
                          int64_t budget, const char* what, bool injected) {
  std::string msg = injected
                        ? std::string("injected allocation failure")
                        : std::string("memory budget exceeded");
  msg += " (" + std::to_string(requested) + " bytes for ";
  msg += what;
  msg += ", " + std::to_string(would_be) + " tracked";
  if (budget > 0) msg += " vs budget " + std::to_string(budget);
  msg += ")";
  return msg;
}

// Reports a breach to the installed token, if any. Allocation still
// proceeds — the run unwinds at its next cancellation checkpoint.
void ReportBreach(int64_t requested, int64_t now, bool injected) {
  CancelToken* token = g_breach_token.load(std::memory_order_acquire);
  if (token == nullptr) return;
  token->Cancel(Status::ResourceExhausted(BreachMessage(
      requested, now, g_budget.load(std::memory_order_relaxed),
      "tracked allocation", injected)));
}

}  // namespace

void Add(int64_t bytes) {
  const int64_t now = g_current.fetch_add(bytes) + bytes;
  if (bytes > 0) {
    int64_t peak = g_peak.load(std::memory_order_relaxed);
    while (now > peak &&
           !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    if (fault::Enabled() && fault::Inject("alloc")) {
      ReportBreach(bytes, now, /*injected=*/true);
      return;
    }
    const int64_t budget = g_budget.load(std::memory_order_relaxed);
    if (budget > 0 && now > budget) {
      ReportBreach(bytes, now, /*injected=*/false);
    }
  }
}

int64_t CurrentBytes() { return g_current.load(); }
int64_t PeakBytes() { return g_peak.load(); }

void Reset() {
  g_current.store(0);
  g_peak.store(0);
}

void SetBudgetBytes(int64_t bytes) {
  g_budget.store(bytes > 0 ? bytes : 0, std::memory_order_relaxed);
}

int64_t BudgetBytes() { return g_budget.load(std::memory_order_relaxed); }

void SetBreachToken(CancelToken* token) {
  g_breach_token.store(token, std::memory_order_release);
}

Status Preflight(int64_t bytes, const char* what) {
  if (fault::Enabled() && fault::Inject("alloc")) {
    return Status::ResourceExhausted(BreachMessage(
        bytes, CurrentBytes() + bytes, BudgetBytes(), what,
        /*injected=*/true));
  }
  const int64_t budget = BudgetBytes();
  if (budget > 0 && CurrentBytes() + bytes > budget) {
    return Status::ResourceExhausted(BreachMessage(
        bytes, CurrentBytes() + bytes, budget, what, /*injected=*/false));
  }
  return Status::Ok();
}

}  // namespace iawj::mem
