#include "src/memory/tracker.h"

namespace iawj::mem {

namespace {
std::atomic<int64_t> g_current{0};
std::atomic<int64_t> g_peak{0};
}  // namespace

void Add(int64_t bytes) {
  const int64_t now = g_current.fetch_add(bytes) + bytes;
  if (bytes > 0) {
    int64_t peak = g_peak.load(std::memory_order_relaxed);
    while (now > peak &&
           !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
}

int64_t CurrentBytes() { return g_current.load(); }
int64_t PeakBytes() { return g_peak.load(); }

void Reset() {
  g_current.store(0);
  g_peak.store(0);
}

}  // namespace iawj::mem
