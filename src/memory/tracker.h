// Global byte accounting for the library's major data structures.
//
// The paper's Figure 19b plots resident memory of each algorithm over time.
// Hardware-level RSS sampling is too coarse (and polluted by the benchmark
// harness itself), so every substrate that owns bulk memory — hash tables,
// partition buffers, sorted runs, router state — reports its allocations
// here. A sampler thread (see profiling/resource.h) turns the counter into a
// time series.
//
// The tracker also enforces an optional byte budget (ISSUE 2): when
// IAWJ_MEM_BUDGET (or SetBudgetBytes) is set and a breach token is
// installed, any tracked allocation that pushes the total over budget — or
// that the "alloc" fault selects — cancels the current run with
// ResourceExhausted instead of crashing the process; bulk Setup-phase
// allocations can additionally Preflight so the failure surfaces as a
// Status before the memory is committed.
#ifndef IAWJ_MEMORY_TRACKER_H_
#define IAWJ_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/cancel.h"
#include "src/common/status.h"

namespace iawj::mem {

// Adds (or, negative, releases) tracked bytes.
void Add(int64_t bytes);

// Currently tracked bytes.
int64_t CurrentBytes();

// High-water mark since the last Reset().
int64_t PeakBytes();

// Zeroes both counters. Call between experiment runs. The budget and breach
// token are left untouched.
void Reset();

// Byte budget for tracked allocations; <= 0 means unlimited. Initialized
// from $IAWJ_MEM_BUDGET (integer bytes with an optional k/m/g suffix,
// powers of 1024) at process start.
void SetBudgetBytes(int64_t bytes);
int64_t BudgetBytes();

// Installs the cancellation token breaches report to (one run at a time;
// nullptr uninstalls). While installed, an over-budget Add — or one the
// "alloc" fault selects — cancels the token with ResourceExhausted; the
// allocation itself still happens, and the run unwinds at its next
// cancellation checkpoint. This keeps Add infallible on hot paths while
// every allocation site stays budget-enforced.
void SetBreachToken(CancelToken* token);

// Fallible pre-check for bulk allocations of known size (Setup paths):
// returns ResourceExhausted when charging `bytes` more would exceed the
// budget, or when the "alloc" fault fires. Does not charge.
Status Preflight(int64_t bytes, const char* what);

// RAII registration for a block of bytes whose lifetime matches a scope.
class ScopedBytes {
 public:
  explicit ScopedBytes(int64_t bytes) : bytes_(bytes) { Add(bytes_); }
  ~ScopedBytes() { Add(-bytes_); }

  ScopedBytes(const ScopedBytes&) = delete;
  ScopedBytes& operator=(const ScopedBytes&) = delete;

 private:
  int64_t bytes_;
};

// A vector-like growable buffer whose capacity is reported to the tracker.
// Only the operations the join kernels need are provided.
template <typename T>
class TrackedBuffer {
 public:
  TrackedBuffer() = default;
  explicit TrackedBuffer(size_t n) { Resize(n); }
  ~TrackedBuffer() { Free(); }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;
  TrackedBuffer(TrackedBuffer&& other) noexcept { *this = std::move(other); }
  TrackedBuffer& operator=(TrackedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = other.capacity_ = 0;
    }
    return *this;
  }

  void Reserve(size_t n) {
    if (n <= capacity_) return;
    T* fresh = new T[n];
    for (size_t i = 0; i < size_; ++i) fresh[i] = data_[i];
    Add(static_cast<int64_t>((n - capacity_) * sizeof(T)));
    delete[] data_;
    data_ = fresh;
    capacity_ = n;
  }

  void Resize(size_t n) {
    Reserve(n);
    size_ = n;
  }

  void PushBack(const T& value) {
    if (size_ == capacity_) Reserve(capacity_ == 0 ? 1024 : capacity_ * 2);
    data_[size_++] = value;
  }

  void Clear() { size_ = 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Free() {
    if (data_ != nullptr) {
      Add(-static_cast<int64_t>(capacity_ * sizeof(T)));
      delete[] data_;
      data_ = nullptr;
    }
    size_ = capacity_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace iawj::mem

#endif  // IAWJ_MEMORY_TRACKER_H_
