#include "src/stream/stream.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace iawj {

uint32_t Stream::MaxTs() const {
  return tuples.empty() ? 0 : tuples.back().ts;
}

Stream MakeStream(std::vector<Tuple> tuples) {
  std::stable_sort(tuples.begin(), tuples.end(),
                   [](Tuple a, Tuple b) { return a.ts < b.ts; });
  return Stream{std::move(tuples)};
}

StreamStats ComputeStats(const Stream& stream) {
  StreamStats stats;
  stats.num_tuples = stream.size();
  if (stream.size() == 0) return stats;
  stats.arrival_rate_per_ms =
      static_cast<double>(stream.size()) / (stream.MaxTs() + 1);

  std::unordered_map<uint32_t, uint64_t> freq;
  freq.reserve(stream.size());
  for (const Tuple& t : stream.tuples) ++freq[t.key];
  stats.unique_keys = freq.size();
  stats.avg_duplicates_per_key =
      static_cast<double>(stream.size()) / static_cast<double>(freq.size());

  // Fit a Zipf exponent by least squares on log(rank) vs log(frequency) over
  // the most frequent keys — the slope's negation estimates theta. A uniform
  // distribution yields ~0, matching how Table 3 reports key skewness.
  std::vector<uint64_t> counts;
  counts.reserve(freq.size());
  for (const auto& [key, count] : freq) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  const size_t top = std::min<size_t>(counts.size(), 1000);
  if (top >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t rank = 0; rank < top; ++rank) {
      const double x = std::log(static_cast<double>(rank + 1));
      const double y = std::log(static_cast<double>(counts[rank]));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double n = static_cast<double>(top);
    const double denom = n * sxx - sx * sx;
    if (denom > 1e-12) {
      stats.key_zipf_estimate = std::max(0.0, -(n * sxy - sx * sy) / denom);
    }
  }
  return stats;
}

std::string FormatStats(const StreamStats& stats) {
  std::ostringstream os;
  os << "n=" << stats.num_tuples << " rate=" << stats.arrival_rate_per_ms
     << "/ms unique=" << stats.unique_keys
     << " dupe=" << stats.avg_duplicates_per_key
     << " zipf~" << stats.key_zipf_estimate;
  return os.str();
}

}  // namespace iawj
