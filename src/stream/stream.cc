#include "src/stream/stream.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "src/common/rng.h"

namespace iawj {

uint32_t Stream::MaxTs() const {
  return tuples.empty() ? 0 : tuples.back().ts;
}

Stream MakeStream(std::vector<Tuple> tuples) {
  std::stable_sort(tuples.begin(), tuples.end(),
                   [](Tuple a, Tuple b) { return a.ts < b.ts; });
  return Stream{std::move(tuples)};
}

StreamStats ComputeStats(const Stream& stream) {
  StreamStats stats;
  stats.num_tuples = stream.size();
  if (stream.size() == 0) return stats;
  stats.arrival_rate_per_ms =
      static_cast<double>(stream.size()) / (stream.MaxTs() + 1);

  std::unordered_map<uint32_t, uint64_t> freq;
  freq.reserve(stream.size());
  for (const Tuple& t : stream.tuples) ++freq[t.key];
  stats.unique_keys = freq.size();
  stats.avg_duplicates_per_key =
      static_cast<double>(stream.size()) / static_cast<double>(freq.size());

  // Fit a Zipf exponent by least squares on log(rank) vs log(frequency) over
  // the most frequent keys — the slope's negation estimates theta. A uniform
  // distribution yields ~0, matching how Table 3 reports key skewness.
  std::vector<uint64_t> counts;
  counts.reserve(freq.size());
  for (const auto& [key, count] : freq) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  const size_t top = std::min<size_t>(counts.size(), 1000);
  if (top >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t rank = 0; rank < top; ++rank) {
      const double x = std::log(static_cast<double>(rank + 1));
      const double y = std::log(static_cast<double>(counts[rank]));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double n = static_cast<double>(top);
    const double denom = n * sxx - sx * sx;
    if (denom > 1e-12) {
      stats.key_zipf_estimate = std::max(0.0, -(n * sxy - sx * sy) / denom);
    }
  }
  return stats;
}

ShedResult ShedToWatermark(const Stream& stream, double watermark_per_ms,
                           double max_lag_ms, uint64_t seed) {
  ShedResult result;
  result.tuples_in = stream.size();
  if (watermark_per_ms <= 0 || stream.size() == 0) {
    result.stream = stream;
    return result;
  }
  const double lag_bound = watermark_per_ms * std::max(0.0, max_lag_ms);
  Rng rng(seed);
  result.stream.tuples.reserve(stream.size());

  double backlog = 0;
  uint32_t last_ts = stream.tuples.front().ts;
  size_t i = 0;
  const size_t n = stream.size();
  while (i < n) {
    const uint32_t ts = stream.tuples[i].ts;
    size_t end = i;
    while (end < n && stream.tuples[end].ts == ts) ++end;
    const size_t arrivals = end - i;

    // Drain the backlog across the silent gap since the previous bucket.
    backlog = std::max(0.0, backlog - watermark_per_ms *
                                          static_cast<double>(ts - last_ts));
    backlog += static_cast<double>(arrivals);
    last_ts = ts;

    size_t shed = 0;
    if (backlog > lag_bound) {
      // Lagging beyond the bound: thin this bucket back to it, but never
      // touch tuples already admitted in earlier buckets.
      shed = std::min(arrivals,
                      static_cast<size_t>(std::ceil(backlog - lag_bound)));
    }
    const size_t keep = arrivals - shed;
    if (shed == 0) {
      for (size_t j = i; j < end; ++j) {
        result.stream.tuples.push_back(stream.tuples[j]);
      }
    } else if (keep > 0) {
      // Stride sampling with a seeded rotation: survivor positions are
      // spread evenly across the bucket, and the rotation keeps repeated
      // overloads from always dropping the same arrival offsets.
      const size_t offset = rng.NextBounded(arrivals);
      size_t taken = 0;
      for (size_t j = 0; j < arrivals && taken < keep; ++j) {
        const size_t pos = (j + offset) % arrivals;
        // Keep position j of the rotated bucket iff it opens a new stride.
        if (j * keep / arrivals != (j + 1) * keep / arrivals) {
          result.stream.tuples.push_back(stream.tuples[i + pos]);
          ++taken;
        }
      }
    }
    backlog -= static_cast<double>(shed);
    result.tuples_shed += shed;
    i = end;
  }
  // Stride sampling within a bucket can reorder survivors; arrival order
  // within one timestamp is not semantically meaningful, but keep the
  // non-decreasing-ts invariant callers rely on.
  std::stable_sort(
      result.stream.tuples.begin(), result.stream.tuples.end(),
      [](Tuple a, Tuple b) { return a.ts < b.ts; });
  result.shed_ratio = static_cast<double>(result.tuples_shed) /
                      static_cast<double>(result.tuples_in);
  return result;
}

std::string FormatStats(const StreamStats& stats) {
  std::ostringstream os;
  os << "n=" << stats.num_tuples << " rate=" << stats.arrival_rate_per_ms
     << "/ms unique=" << stats.unique_keys
     << " dupe=" << stats.avg_duplicates_per_key
     << " zipf~" << stats.key_zipf_estimate;
  return os.str();
}

}  // namespace iawj
