// In-memory input streams and workload statistics.
//
// Following the paper's methodology (§4.2.2), datasets are fully populated in
// memory with per-tuple arrival timestamps; the virtual clock (common/clock.h)
// decides when each tuple becomes visible to the algorithms.
#ifndef IAWJ_STREAM_STREAM_H_
#define IAWJ_STREAM_STREAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/tuple.h"

namespace iawj {

struct Stream {
  std::vector<Tuple> tuples;  // non-decreasing ts

  size_t size() const { return tuples.size(); }
  std::span<const Tuple> view() const { return tuples; }

  // Largest arrival timestamp (0 for an empty stream).
  uint32_t MaxTs() const;
};

// Sorts tuples by arrival timestamp and wraps them in a Stream.
Stream MakeStream(std::vector<Tuple> tuples);

// Workload statistics as reported in the paper's Table 3.
struct StreamStats {
  uint64_t num_tuples = 0;
  double arrival_rate_per_ms = 0;  // num_tuples / (max_ts + 1)
  uint64_t unique_keys = 0;
  double avg_duplicates_per_key = 0;
  double key_zipf_estimate = 0;  // theta fitted on the key-frequency ranks
};

StreamStats ComputeStats(const Stream& stream);

std::string FormatStats(const StreamStats& stats);

// Overload load shedding (ISSUE 3). Models a consumer that drains
// `watermark_per_ms` tuples per stream-millisecond: walking the arrival
// timeline, a backlog accumulates whenever a 1 ms bucket delivers more than
// the consumer absorbs. Once the backlog exceeds `max_lag_ms` milliseconds'
// worth of tuples (watermark * max_lag_ms), the overflowing bucket is
// thinned back to the lag bound by stride sampling — every k-th survivor,
// with a seeded rotation so the same key positions are not always favoured.
// Output is deterministic in (stream, watermark_per_ms, max_lag_ms, seed).
struct ShedResult {
  Stream stream;            // surviving tuples, arrival order preserved
  uint64_t tuples_in = 0;   // input size
  uint64_t tuples_shed = 0;
  double shed_ratio = 0;    // tuples_shed / tuples_in (0 for empty input)
};

// watermark_per_ms <= 0 disables shedding (the stream is passed through).
ShedResult ShedToWatermark(const Stream& stream, double watermark_per_ms,
                           double max_lag_ms, uint64_t seed);

}  // namespace iawj

#endif  // IAWJ_STREAM_STREAM_H_
