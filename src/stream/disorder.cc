#include "src/stream/disorder.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/profiling/metrics.h"

namespace iawj {

namespace {

// Generators keep keys below 2^31 (datagen/micro.h); anything above is a
// corrupted delivery, not a joinable tuple.
constexpr uint32_t kKeyDomainLimit = 1u << 31;

// How far the disorder_burst fault holds a delivery back, and how long the
// watermark_stall fault freezes the generator. Both deliberately exceed any
// plausible test slack so the faults produce observable disorder.
constexpr size_t kBurstDelayArrivals = 128;
constexpr uint32_t kStallObservations = 256;

// The clock_skew fault's step, matching common/clock.cc's 10 s regression.
constexpr uint32_t kSkewMs = 10000;

// Orders the reorder buffer by (ts, key): a single uint64 comparison, and
// deterministic for equal timestamps.
inline uint64_t HeapKey(Tuple t) {
  return (static_cast<uint64_t>(t.ts) << 32) | t.key;
}

double EnvPositiveDouble(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v >= 0) || !std::isfinite(v)) {
    IAWJ_LOG(Warning) << "ignoring malformed " << name << "='" << text
                      << "' (want a non-negative stream-ms value)";
    return 0;
  }
  return v;
}

bool EnvBool(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Stream-ms knobs round up: a slack of 0.5 ms must still hold one tick.
uint32_t CeilTicks(double ms) {
  if (ms <= 0) return 0;
  return static_cast<uint32_t>(std::ceil(ms));
}

}  // namespace

IngestPolicy IngestPolicy::Resolve(double spec_slack_ms,
                                   double spec_allowed_lateness_ms,
                                   bool spec_dedup) {
  IngestPolicy policy;
  if (spec_slack_ms > 0) {
    policy.slack_ms = spec_slack_ms;
  } else if (spec_slack_ms == 0) {
    policy.slack_ms = EnvPositiveDouble("IAWJ_DISORDER_SLACK");
  }
  if (spec_allowed_lateness_ms > 0) {
    policy.allowed_lateness_ms = spec_allowed_lateness_ms;
  } else if (spec_allowed_lateness_ms == 0) {
    policy.allowed_lateness_ms = EnvPositiveDouble("IAWJ_ALLOWED_LATENESS");
  }
  policy.dedup = spec_dedup || EnvBool("IAWJ_INGEST_DEDUP");
  return policy;
}

void IngestStats::Merge(const IngestStats& other) {
  tuples_in += other.tuples_in;
  tuples_out += other.tuples_out;
  reordered += other.reordered;
  late_total += other.late_total;
  late_admitted += other.late_admitted;
  late_dropped += other.late_dropped;
  duplicates += other.duplicates;
  corrupt += other.corrupt;
  watermark_clamps += other.watermark_clamps;
  max_disorder_ms = std::max(max_disorder_ms, other.max_disorder_ms);
  max_ts_ms = std::max(max_ts_ms, other.max_ts_ms);
  final_watermark_ms = std::max(final_watermark_ms, other.final_watermark_ms);
}

WatermarkGenerator::WatermarkGenerator(double allowed_lateness_ms)
    : lateness_ms_(CeilTicks(allowed_lateness_ms)) {}

uint32_t WatermarkGenerator::Observe(uint32_t ts) {
  uint32_t observed = ts;
  if (fault::Enabled()) {
    // Fault "clock_skew": this observation arrives stamped ~10 s in the
    // past, the producer-side shape of the NTP step Clock::Start models.
    // The candidate below regresses; the clamp must absorb it.
    if (fault::Inject("clock_skew")) {
      observed = ts >= kSkewMs ? ts - kSkewMs : 0;
    }
    // Fault "watermark_stall": the generator freezes — observations still
    // count (lateness classification keeps working off the stale mark) but
    // the watermark stops advancing for a burst.
    if (fault::Inject("watermark_stall")) {
      stall_remaining_ = kStallObservations;
    }
  }
  const uint32_t candidate =
      observed > lateness_ms_ ? observed - lateness_ms_ : 0;
  if (stall_remaining_ > 0) {
    --stall_remaining_;
  } else if (candidate > watermark_) {
    watermark_ = candidate;
  } else if (candidate < watermark_) {
    ++clamps_;
  }
  return watermark_;
}

IngestResult IngestStream(const Stream& arrivals, const IngestPolicy& policy) {
  IngestResult result;
  IngestStats& st = result.stats;
  const uint32_t slack = CeilTicks(policy.slack_ms);
  WatermarkGenerator watermark(policy.allowed_lateness_ms);

  // Min-heap by (ts, key): the bounded reorder buffer.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> buffer;
  // dedup: multiplicity of each exact (ts, key) currently held in the
  // buffer; a re-delivery while the original is still pending quarantines.
  std::unordered_map<uint64_t, uint32_t> pending;

  std::vector<Tuple>& out = result.stream.tuples;
  out.reserve(arrivals.size());
  std::vector<Tuple> admitted_late;

  uint32_t max_seen = 0;
  bool any_seen = false;
  uint32_t frontier = 0;  // largest released ts
  bool emitted_any = false;

  const auto drain = [&](bool flush) {
    while (!buffer.empty()) {
      const uint64_t top = buffer.top();
      const uint32_t ts = static_cast<uint32_t>(top >> 32);
      if (!flush && static_cast<uint64_t>(ts) + slack > max_seen) break;
      buffer.pop();
      if (policy.dedup) {
        const auto it = pending.find(top);
        if (it != pending.end() && --it->second == 0) pending.erase(it);
      }
      out.push_back(Tuple{ts, static_cast<uint32_t>(top)});
      frontier = ts;
      emitted_any = true;
    }
  };

  const auto deliver = [&](Tuple t) {
    ++st.tuples_in;
    if (t.key >= kKeyDomainLimit) {
      ++st.corrupt;
      return;
    }
    const uint32_t wm = watermark.Observe(t.ts);
    if (any_seen && t.ts < max_seen) {
      ++st.reordered;
      st.max_disorder_ms = std::max(st.max_disorder_ms, max_seen - t.ts);
    }
    if (!any_seen || t.ts > max_seen) {
      max_seen = t.ts;
      any_seen = true;
    }
    if (emitted_any && t.ts < frontier) {
      // Behind the emit frontier: this tuple can no longer be placed in
      // order. Admit it (merged at the end) while it is still inside the
      // allowed lateness, quarantine it once the watermark has passed.
      ++st.late_total;
      if (t.ts >= wm) {
        ++st.late_admitted;
        admitted_late.push_back(t);
      } else {
        ++st.late_dropped;
      }
      return;
    }
    const uint64_t packed = HeapKey(t);
    if (policy.dedup) {
      const auto [it, inserted] = pending.try_emplace(packed, 1u);
      if (!inserted) {
        ++st.duplicates;
        return;
      }
    }
    buffer.push(packed);
    drain(/*flush=*/false);
  };

  // Delivery loop. The fault sites perturb the arrival sequence itself:
  // disorder_burst holds a delivery back ~128 arrivals, late_tuple holds
  // one to end of stream, dup_tuple delivers one twice.
  const bool faults = fault::Enabled();
  std::deque<std::pair<size_t, Tuple>> burst_held;  // (release index, tuple)
  std::vector<Tuple> eos_held;
  size_t arrival_index = 0;
  for (const Tuple& t : arrivals.tuples) {
    if (faults) {
      if (fault::Inject("late_tuple")) {
        eos_held.push_back(t);
        continue;
      }
      if (fault::Inject("disorder_burst")) {
        burst_held.emplace_back(arrival_index + kBurstDelayArrivals, t);
        continue;
      }
      if (fault::Inject("dup_tuple")) deliver(t);
    }
    deliver(t);
    ++arrival_index;
    while (!burst_held.empty() && burst_held.front().first <= arrival_index) {
      deliver(burst_held.front().second);
      burst_held.pop_front();
    }
  }
  for (const auto& [release_at, held] : burst_held) deliver(held);
  for (const Tuple& held : eos_held) deliver(held);

  // End of stream: flush the buffer — this is what seals the final windows
  // even when the watermark stalled or never reached them.
  drain(/*flush=*/true);

  if (!admitted_late.empty()) {
    std::sort(admitted_late.begin(), admitted_late.end(),
              [](Tuple a, Tuple b) { return HeapKey(a) < HeapKey(b); });
    const auto mid = out.insert(out.end(), admitted_late.begin(),
                                admitted_late.end()) -
                     out.begin();
    std::inplace_merge(out.begin(), out.begin() + mid, out.end(),
                       [](Tuple a, Tuple b) { return a.ts < b.ts; });
  }

  st.tuples_out = out.size();
  st.max_ts_ms = any_seen ? max_seen : 0;
  st.final_watermark_ms = watermark.Current();
  st.watermark_clamps = watermark.clamps();
  return result;
}

Stream PermuteWithinSlack(const Stream& stream, uint32_t max_shift_ms,
                          uint64_t seed) {
  std::vector<std::pair<uint64_t, Tuple>> keyed;
  keyed.reserve(stream.size());
  Rng rng(seed);
  for (const Tuple& t : stream.tuples) {
    const uint64_t jitter =
        max_shift_ms > 0 ? rng.NextBounded(uint64_t{max_shift_ms} + 1) : 0;
    keyed.emplace_back(static_cast<uint64_t>(t.ts) + jitter, t);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  Stream permuted;
  permuted.tuples.reserve(keyed.size());
  for (const auto& [jittered_ts, t] : keyed) permuted.tuples.push_back(t);
  return permuted;
}

void PublishIngestMetrics(const IngestStats& stats) {
  if (!metrics::Enabled()) return;
  static metrics::Counter* reordered =
      metrics::GetCounter("ingest.reordered");
  static metrics::Counter* late_admitted =
      metrics::GetCounter("ingest.late_admitted");
  static metrics::Counter* late_dropped =
      metrics::GetCounter("ingest.late_dropped");
  static metrics::Counter* duplicates =
      metrics::GetCounter("ingest.duplicates");
  static metrics::Counter* corrupt = metrics::GetCounter("ingest.corrupt");
  static metrics::Counter* clamps =
      metrics::GetCounter("ingest.watermark_clamps");
  if (reordered != nullptr && stats.reordered > 0) {
    reordered->Add(stats.reordered);
  }
  if (late_admitted != nullptr && stats.late_admitted > 0) {
    late_admitted->Add(stats.late_admitted);
  }
  if (late_dropped != nullptr && stats.late_dropped > 0) {
    late_dropped->Add(stats.late_dropped);
  }
  if (duplicates != nullptr && stats.duplicates > 0) {
    duplicates->Add(stats.duplicates);
  }
  if (corrupt != nullptr && stats.corrupt > 0) corrupt->Add(stats.corrupt);
  if (clamps != nullptr && stats.watermark_clamps > 0) {
    clamps->Add(stats.watermark_clamps);
  }
}

}  // namespace iawj
