#include "src/stream/distribution.h"

#include "src/common/logging.h"
#include "src/hash/hash_fn.h"

namespace iawj {

Status Distribution::Validate(DistributionScheme scheme, int num_threads,
                              int jb_group_size) {
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (scheme == DistributionScheme::kJoinBiclique) {
    if (jb_group_size < 1 || num_threads % jb_group_size != 0) {
      return Status::InvalidArgument(
          "JB group size must be >= 1 and divide the thread count");
    }
  }
  return Status::Ok();
}

Distribution::Distribution(DistributionScheme scheme, int num_threads,
                           int jb_group_size)
    : scheme_(scheme), num_threads_(num_threads) {
  IAWJ_CHECK(Validate(scheme, num_threads, jb_group_size).ok());
  if (scheme_ == DistributionScheme::kJoinBiclique) {
    group_size_ = jb_group_size;
  } else {
    group_size_ = num_threads;  // JM == one group spanning all workers
  }
  num_groups_ = num_threads_ / group_size_;
}

int Distribution::GroupOf(uint32_t key) const {
  return static_cast<int>(MultHash32(key) %
                          static_cast<uint32_t>(num_groups_));
}

bool Distribution::OwnsR(int t, Tuple r, uint64_t seq) const {
  (void)seq;
  if (scheme_ == DistributionScheme::kJoinMatrix) return true;
  return GroupOf(r.key) == t / group_size_;
}

bool Distribution::OwnsS(int t, Tuple s, uint64_t seq) const {
  if (scheme_ == DistributionScheme::kJoinMatrix) {
    return seq % static_cast<uint64_t>(num_threads_) ==
           static_cast<uint64_t>(t);
  }
  if (GroupOf(s.key) != t / group_size_) return false;
  return seq % static_cast<uint64_t>(group_size_) ==
         static_cast<uint64_t>(t % group_size_);
}

}  // namespace iawj
