// Stream distribution schemes for the eager algorithms (paper §3.2.2).
//
// Each eager worker scans both input streams in arrival order; the
// distribution scheme decides which tuples the worker *processes* (inserts
// into its local join state and probes with). Correctness requires that for
// every matching pair (r, s) exactly one worker processes both tuples:
//
//  - Join-Matrix (JM, content-insensitive): the join is an |R| x |S| matrix
//    partitioned across workers. The default 1 x T layout replicates R to
//    every worker and partitions S round-robin — exactly the configuration
//    the paper assumes in §5.5 ("R is replicated while it still partitions
//    S"). A general r x c layout is supported too.
//  - Join-Biclique (JB, content-sensitive): workers form T/g core groups of
//    size g; a key is routed to one group by hash. Within the group, R
//    tuples replicate to all g members and S tuples go to one member.
//    g == 1 degenerates to strict hash partitioning, g == T to JM, matching
//    §5.5's description of the group-size knob.
#ifndef IAWJ_STREAM_DISTRIBUTION_H_
#define IAWJ_STREAM_DISTRIBUTION_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/tuple.h"

namespace iawj {

enum class DistributionScheme { kJoinMatrix, kJoinBiclique };

class Distribution {
 public:
  // For kJoinMatrix, jb_group_size is ignored; for kJoinBiclique,
  // jb_group_size must divide num_threads.
  Distribution(DistributionScheme scheme, int num_threads, int jb_group_size);

  static Status Validate(DistributionScheme scheme, int num_threads,
                         int jb_group_size);

  // Whether worker `t` processes the seq-th R-side tuple.
  bool OwnsR(int t, Tuple r, uint64_t seq) const;
  // Whether worker `t` processes the seq-th S-side tuple.
  bool OwnsS(int t, Tuple s, uint64_t seq) const;

  DistributionScheme scheme() const { return scheme_; }
  int num_groups() const { return num_groups_; }
  int group_size() const { return group_size_; }

  // Content routing: the core group a key hashes to (JM has one group).
  // Public so the morsel-mode eager engine can route an S morsel's tuples
  // by group while assigning within-group ownership dynamically.
  int GroupOf(uint32_t key) const;

 private:

  DistributionScheme scheme_;
  int num_threads_;
  int group_size_;
  int num_groups_;
};

}  // namespace iawj

#endif  // IAWJ_STREAM_DISTRIBUTION_H_
