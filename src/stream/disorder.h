// Disorder-tolerant ingestion (ISSUE 8 tentpole).
//
// Every consumer downstream of Stream assumes "non-decreasing ts", but real
// arrival sequences are not sorted: network reordering, skewed producer
// clocks, replayed segments and duplicated deliveries all land tuples out of
// order. This layer sits between an arrival-order sequence and the join
// pipelines and restores the sorted-stream contract honestly:
//
//   1. A bounded reorder buffer holds arrivals until the maximum timestamp
//      seen has advanced `slack_ms` past them, then releases them in ts
//      order. Any arrival sequence whose disorder is bounded by slack_ms
//      (each tuple arrives before any tuple more than slack_ms newer) is
//      restored to exact ts order with zero loss.
//   2. A watermark generator tracks `watermark = max_ts_seen -
//      allowed_lateness_ms`, clamped monotone: observations that would
//      regress it (out-of-order arrivals, the injected `clock_skew` fault)
//      are absorbed and counted, never emitted. The `watermark_stall` fault
//      freezes the generator for a burst of observations; end-of-stream
//      still seals every window because the flush drains the buffer.
//   3. A quarantine with typed dispositions: a tuple that arrives behind the
//      emit frontier is *late* — admitted (merged into the output) while its
//      ts is still at or above the watermark, dropped once beyond the
//      allowed lateness; exact (ts, key) re-deliveries inside the reorder
//      window are *duplicates* when dedup is on; tuples whose key falls
//      outside the generators' documented key domain (< 2^31) are *corrupt*.
//      Nothing is silently lost: tuples_out + late_dropped + duplicates +
//      corrupt == tuples_in, and the supervisor folds the dropped counts
//      into its bounded-loss accounting (recovery.tuples_dropped /
//      est_matches_lost).
//
// Zero-overhead contract: with no policy configured (spec knobs 0 and the
// environment unset) callers bypass this layer entirely — no copy, no
// atomics, byte-identical behavior to a build without it.
#ifndef IAWJ_STREAM_DISORDER_H_
#define IAWJ_STREAM_DISORDER_H_

#include <cstdint>

#include "src/stream/stream.h"

namespace iawj {

// Effective ingestion policy. Resolution mirrors the supervision knobs
// (join/supervisor.h): the spec field wins, 0 defers to the environment
// ($IAWJ_DISORDER_SLACK / $IAWJ_ALLOWED_LATENESS, stream-ms doubles),
// negative is explicitly off regardless of environment; dedup is OR'd with
// $IAWJ_INGEST_DEDUP. Malformed env values are ignored with a warning —
// ingestion must never be the thing that fails a run.
struct IngestPolicy {
  double slack_ms = 0;             // reorder-buffer hold horizon
  double allowed_lateness_ms = 0;  // watermark = max_ts_seen - this
  bool dedup = false;              // quarantine exact (ts, key) re-deliveries

  // Anything configured? False means callers skip IngestStream entirely.
  bool Enabled() const {
    return slack_ms > 0 || allowed_lateness_ms > 0 || dedup;
  }

  static IngestPolicy Resolve(double spec_slack_ms,
                              double spec_allowed_lateness_ms,
                              bool spec_dedup);
};

// Ingestion accounting; serialized as the run record's v7 "ingest" block
// and mirrored into the ingest.* metrics counters.
struct IngestStats {
  uint64_t tuples_in = 0;       // arrivals delivered (faults included)
  uint64_t tuples_out = 0;      // tuples in the restored, ordered output
  uint64_t reordered = 0;       // arrivals with ts below the max seen so far
  uint64_t late_total = 0;      // arrivals behind the emit frontier
  uint64_t late_admitted = 0;   // late but >= watermark: merged into output
  uint64_t late_dropped = 0;    // late and < watermark: quarantined
  uint64_t duplicates = 0;      // exact re-deliveries (dedup on only)
  uint64_t corrupt = 0;         // key outside the documented domain
  uint64_t watermark_clamps = 0;  // regressions the monotone clamp absorbed
  uint32_t max_disorder_ms = 0;   // largest (max_ts_seen - arrival ts)
  uint32_t max_ts_ms = 0;         // true maximum arrival timestamp
  uint32_t final_watermark_ms = 0;  // generator state at end of stream

  uint64_t quarantined() const { return late_dropped + duplicates + corrupt; }

  // True once the ingest layer processed anything — gates the record block.
  bool any() const { return tuples_in > 0; }

  // Folds `other` in (the two input streams of one run ingest separately).
  void Merge(const IngestStats& other);
};

struct IngestResult {
  Stream stream;  // admitted tuples, non-decreasing ts
  IngestStats stats;
};

// Watermark generator: watermark = max(observed ts) - allowed_lateness,
// clamped monotone. Observations feed through the `clock_skew` fault (the
// observed timestamp regresses ~10 s, the shape of an NTP step on the
// producer) and the `watermark_stall` fault (the generator freezes for a
// burst of observations); in both cases the emitted watermark never
// regresses — Current() is non-decreasing across any Observe sequence.
class WatermarkGenerator {
 public:
  explicit WatermarkGenerator(double allowed_lateness_ms);

  // Feeds one arrival timestamp; returns the (possibly clamped) watermark.
  uint32_t Observe(uint32_t ts);

  uint32_t Current() const { return watermark_; }
  // Observations whose candidate watermark sat below Current(): disorder
  // and injected skew the clamp absorbed.
  uint64_t clamps() const { return clamps_; }

 private:
  uint32_t lateness_ms_;
  uint32_t watermark_ = 0;
  uint64_t clamps_ = 0;
  uint32_t stall_remaining_ = 0;  // observations the stall fault freezes
};

// Feeds an arrival-order sequence (`arrivals.tuples` in delivery order, NOT
// required to be sorted) through the reorder buffer + watermark + quarantine
// and returns the restored ordered stream with its accounting. Deterministic
// in (arrivals, policy, active fault spec). The fault sites
// `disorder_burst` (an arrival is held back ~128 deliveries), `late_tuple`
// (an arrival is held to end of stream) and `dup_tuple` (an arrival is
// delivered twice) perturb the delivery sequence here.
IngestResult IngestStream(const Stream& arrivals, const IngestPolicy& policy);

// Deterministically perturbs a sorted stream into an arrival-order sequence
// whose disorder is bounded by max_shift_ms: each tuple is sorted by
// ts + uniform(0, max_shift_ms] jitter. A reorder buffer with slack_ms >=
// max_shift_ms restores the exact original order with no late tuples (proof:
// when the buffer releases a tuple t, some arrived tuple m has
// ts_m >= ts_t + slack; any unarrived u was delivered after m, so
// ts_u + jitter_u >= ts_m >= ts_t + slack, hence ts_u >= ts_t). The result
// violates Stream's sorted contract on purpose — feed it only to
// IngestStream (tests, chaos schedules, the --disorder-shuffle smoke).
Stream PermuteWithinSlack(const Stream& stream, uint32_t max_shift_ms,
                          uint64_t seed);

// Publishes one ingest episode into the live metrics registry (ingest.*
// counters). One relaxed load when metrics are off.
void PublishIngestMetrics(const IngestStats& stats);

}  // namespace iawj

#endif  // IAWJ_STREAM_DISORDER_H_
