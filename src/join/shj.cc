// SHJ states are header-only templates; this translation unit type-checks
// the header standalone and pins the two tracer instantiations.
#include "src/join/shj.h"

namespace iawj {

template class ShjValueState<NullTracer>;
template class ShjValueState<SimTracer>;
template class ShjPointerState<NullTracer>;
template class ShjPointerState<SimTracer>;

}  // namespace iawj
