// The paper's decision tree for picking an IaWJ algorithm (Figure 4).
//
// Encodes §5.1's guidance: the lazy approach for high arrival rates (sort
// joins under heavy key duplication, hash joins otherwise, with PRJ when the
// keys are unskewed and the input is large), SHJ-JM whenever one stream is
// slow, and at medium rates a metric-dependent choice between the lazy
// algorithms (throughput) and PMJ-JB / SHJ-JM (latency/progressiveness).
//
// The qualitative levels are relative (the paper: "the quantitative value
// depends on actual hardware and workloads"); Classify* helpers provide
// defaults calibrated to the paper's sweeps and are parameterizable.
#ifndef IAWJ_JOIN_DECISION_TREE_H_
#define IAWJ_JOIN_DECISION_TREE_H_

#include "src/join/context.h"
#include "src/stream/stream.h"

namespace iawj {

enum class RateClass { kLow, kMedium, kHigh };
enum class Level { kLow, kHigh };
enum class Objective { kThroughput, kLatency, kProgressiveness };

struct WorkloadProfile {
  RateClass rate_r = RateClass::kMedium;
  RateClass rate_s = RateClass::kMedium;
  Level key_duplication = Level::kLow;
  Level key_skew = Level::kLow;
  Level input_size = Level::kLow;  // "number of tuples to join is large"
};

struct HardwareProfile {
  int num_cores = 8;
};

// Classification thresholds (tuples/ms, duplicates/key, Zipf theta, tuples,
// cores). Defaults follow the paper's experiment ranges.
struct DecisionThresholds {
  double low_rate_per_ms = 500;      // Stock-like rates are "low"
  double high_rate_per_ms = 20000;   // the v=25600 regime is "high"
  double high_duplication = 10;      // Figure 11 crossover
  double high_key_skew = 1.0;        // Figure 13: PRJ degrades beyond ~1.2
  uint64_t large_input = 4'000'000;  // tuples across both streams
  int large_core_count = 8;          // "MPass scales better with large cores"
};

RateClass ClassifyRate(double tuples_per_ms,
                       const DecisionThresholds& thresholds = {});
Level ClassifyDuplication(double dupe,
                          const DecisionThresholds& thresholds = {});

// Derives a profile from measured workload statistics.
WorkloadProfile ProfileFromStats(const StreamStats& r, const StreamStats& s,
                                 const DecisionThresholds& thresholds = {});

// Walks the Figure 4 tree.
AlgorithmId RecommendAlgorithm(const WorkloadProfile& profile,
                               Objective objective,
                               const HardwareProfile& hardware,
                               const DecisionThresholds& thresholds = {});

}  // namespace iawj

#endif  // IAWJ_JOIN_DECISION_TREE_H_
