// Adaptive IaWJ: pick the algorithm per window from measured workload
// characteristics (the paper's future-work item (i): "an adaptive IaWJ
// algorithm that considers all the factors including workload, metrics and
// hardware").
//
// The policy samples the window's streams (statistics are computed on a
// bounded prefix so the decision cost stays negligible), classifies them
// through the Figure 4 thresholds, and asks the decision tree for the
// algorithm matching the caller's objective.
#ifndef IAWJ_JOIN_ADAPTIVE_H_
#define IAWJ_JOIN_ADAPTIVE_H_

#include "src/join/decision_tree.h"
#include "src/join/runner.h"
#include "src/join/window_pipeline.h"

namespace iawj {

struct AdaptiveOptions {
  Objective objective = Objective::kThroughput;
  HardwareProfile hardware;
  DecisionThresholds thresholds;
  // Cap on tuples sampled per stream when profiling a window.
  size_t sample_limit = 65536;
};

struct AdaptiveChoice {
  AlgorithmId algorithm = AlgorithmId::kNpj;
  WorkloadProfile profile;
};

// Profiles the window inputs and returns the decision-tree pick.
AdaptiveChoice ChooseAlgorithm(const Stream& r, const Stream& s,
                               const AdaptiveOptions& options);

// Runs one window adaptively. If `choice` is non-null it receives the
// decision that was made.
RunResult RunAdaptive(const Stream& r, const Stream& s, const JoinSpec& spec,
                      const AdaptiveOptions& options,
                      AdaptiveChoice* choice = nullptr);

// An AlgorithmPolicy for the tumbling-window pipeline that re-decides on
// every window.
AlgorithmPolicy MakeAdaptivePolicy(const AdaptiveOptions& options);

}  // namespace iawj

#endif  // IAWJ_JOIN_ADAPTIVE_H_
