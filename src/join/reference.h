// Sequential nested-loop join: the correctness oracle for every algorithm.
//
// Produces the match count and the same order-insensitive checksum the
// MatchSink accumulates, so tests can require bit-identical multisets of
// matches from all eight parallel algorithms.
#ifndef IAWJ_JOIN_REFERENCE_H_
#define IAWJ_JOIN_REFERENCE_H_

#include <cstdint>
#include <span>

#include "src/common/tuple.h"

namespace iawj {

struct ReferenceResult {
  uint64_t matches = 0;
  uint64_t checksum = 0;
};

ReferenceResult NestedLoopJoin(std::span<const Tuple> r,
                               std::span<const Tuple> s);

}  // namespace iawj

#endif  // IAWJ_JOIN_REFERENCE_H_
