// Handshake join (Teubner & Mueller), adapted to the intra-window setting.
//
// The paper's §6 validates its scope by implementing the handshake join —
// an inter-window algorithm in which tuples flow through a linear pipeline
// of cores, R left-to-right and S right-to-left, joining against the
// opposite stream's resident segment at every hop — and observing orders of
// magnitude lower throughput than any of the eight IaWJ algorithms, due to
// the constant per-hop state movement. This implementation reproduces that
// validation experiment (bench/ext_handshake).
//
// Mechanics: workers advance in barrier-synchronized steps with two phases
// per step. In the R phase each core takes the R batch from its left
// neighbour (core 0 injects from the input, gated by the clock), probes it
// against its resident S segment, and adopts it as its resident R batch; the
// S phase mirrors right-to-left. Because R positions strictly increase and S
// positions strictly decrease, every (r, s) pair is co-located exactly once,
// so each match is emitted exactly once. Tuples accumulate at their far end
// (full-history semantics: nothing expires inside the window).
#ifndef IAWJ_JOIN_HANDSHAKE_H_
#define IAWJ_JOIN_HANDSHAKE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/join/context.h"

namespace iawj {

class HandshakeJoin : public JoinAlgorithm {
 public:
  std::string_view name() const override { return "HSHAKE"; }

  Status Setup(const JoinContext& ctx) override;
  void RunWorker(const JoinContext& ctx, int worker) override;
  void Teardown() override;

 private:
  using Segment = std::vector<Tuple>;

  // Double-buffered per-core segments; [step parity][core].
  std::vector<Segment> r_seg_[2];
  std::vector<Segment> s_seg_[2];

  size_t r_batch_ = 1;
  size_t s_batch_ = 1;
  std::atomic<size_t> r_injected_{0};
  std::atomic<size_t> s_injected_{0};
  // Steps completed after both streams finished injecting (worker 0 owns).
  std::atomic<int> flush_steps_{0};
};

std::unique_ptr<JoinAlgorithm> MakeHandshake();

}  // namespace iawj

#endif  // IAWJ_JOIN_HANDSHAKE_H_
