// Sort-merge joins: MWay (Chhugani et al.) and MPass (Balkesen et al.) —
// lazy, sort-based, equisized range partitioning (paper §3.1).
//
// Both algorithms share the structure: per-thread chunks are locally sorted
// with the vectorized sort substrate, combined into globally sorted copies
// of R and S, and finally merge-joined in parallel over key-aligned ranges.
// They differ only in the combine step, exactly as the paper describes:
// MWay multiway-merges all runs at once (each worker merging one key range
// of every run), while MPass applies successive two-way merge passes with a
// barrier per pass.
#ifndef IAWJ_JOIN_SORTMERGE_H_
#define IAWJ_JOIN_SORTMERGE_H_

#include <memory>
#include <vector>

#include "src/join/context.h"
#include "src/memory/tracker.h"

namespace iawj {

enum class MergeStrategy { kMultiway, kMultiPass };

template <typename Tracer = NullTracer>
class SortMergeJoin : public JoinAlgorithm {
 public:
  explicit SortMergeJoin(MergeStrategy strategy) : strategy_(strategy) {}

  std::string_view name() const override {
    return strategy_ == MergeStrategy::kMultiway ? "MWAY" : "MPASS";
  }

  Status Setup(const JoinContext& ctx) override;
  void RunWorker(const JoinContext& ctx, int worker) override;
  void Teardown() override;

 private:
  // Both return true when the run was cancelled mid-merge; the barrier has
  // already been dropped and the caller must return from RunWorker without
  // touching it again (see JoinContext::AbortRequested).
  bool RunMultiwayMergePhase(const JoinContext& ctx, int worker,
                             PhaseProfile& prof);
  bool RunMultiPassMergePhase(const JoinContext& ctx, int worker,
                              PhaseProfile& prof);

  MergeStrategy strategy_;

  // Resolved once in Setup: morsel-driven scheduling (join/scheduler.h).
  // The run layout (one sorted run per thread chunk) feeds the merge
  // phases, so the division of tuples into runs stays fixed; what becomes
  // dynamic is who executes each task: 2T sort tasks (one per side per
  // run), T multiway-merge tasks (one per splitter range), the per-pass
  // two-way merge jobs of MPass, and T key-aligned probe tasks.
  bool morsel_ = false;
  MorselPhase sort_phase_;    // 2T tasks: t < T sorts R run t, else S run t-T
  MorselPhase merge_phase_;   // MWay: T splitter-range tasks
  MorselPhase probe_phase_;   // T key-aligned merge-join tasks
  // MPass: one phase per two-way merge pass and side; job counts are
  // deterministic from (T), so phases are sized in Setup. Task j < jobs is
  // merge job j; task jobs (present on odd passes) copies the leftover run.
  std::vector<MorselPhase> mpass_phases_r_;
  std::vector<MorselPhase> mpass_phases_s_;

  // Packed (key<<32|ts) copies: locally sorted runs, then merged output.
  mem::TrackedBuffer<uint64_t> r_buf_;
  mem::TrackedBuffer<uint64_t> s_buf_;
  mem::TrackedBuffer<uint64_t> r_merged_;
  mem::TrackedBuffer<uint64_t> s_merged_;

  // MWay: splitter keys (size T+1) and per-worker merge output ranges.
  std::vector<uint32_t> splitter_keys_;
  std::vector<size_t> merge_off_r_;
  std::vector<size_t> merge_off_s_;

  // Final probe ranges (size T+1), key-aligned between R and S.
  std::vector<size_t> probe_split_r_;
  std::vector<size_t> probe_split_s_;

  // Where the globally sorted data ended up (MPass ping-pongs buffers).
  const uint64_t* final_r_ = nullptr;
  const uint64_t* final_s_ = nullptr;
};

std::unique_ptr<JoinAlgorithm> MakeMway();
std::unique_ptr<JoinAlgorithm> MakeMpass();
std::unique_ptr<JoinAlgorithm> MakeMwayTraced();
std::unique_ptr<JoinAlgorithm> MakeMpassTraced();

}  // namespace iawj

#endif  // IAWJ_JOIN_SORTMERGE_H_
