#include "src/join/window_pipeline.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/join/supervisor.h"
#include "src/profiling/metrics.h"
#include "src/profiling/trace.h"

namespace iawj {

namespace {

// Extracts tuples with ts in [start, start + length) and rebases their
// timestamps to the window-local origin.
Stream SliceWindow(const Stream& stream, uint64_t start, uint32_t length) {
  const auto lo = std::lower_bound(
      stream.tuples.begin(), stream.tuples.end(), start,
      [](const Tuple& t, uint64_t v) { return t.ts < v; });
  const auto hi = std::lower_bound(
      lo, stream.tuples.end(), start + length,
      [](const Tuple& t, uint64_t v) { return t.ts < v; });
  Stream window;
  window.tuples.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    window.tuples.push_back(
        Tuple{static_cast<uint32_t>(it->ts - start), it->key});
  }
  return window;
}

// Runs one window attempt: the injected "window_fail" site sits inside the
// attempt so a supervised retry re-rolls it (the counter advances per
// attempt — a transient fault clears, a :0-count fault keeps firing).
RunResult RunWindowOnce(JoinRunner& runner, AlgorithmId id, const Stream& wr,
                        const Stream& ws, const JoinSpec& window_spec,
                        uint32_t window_index) {
  if (fault::Enabled() && fault::Inject("window_fail")) {
    // Fault: this window fails wholesale without executing, the shape of
    // an operator crash between segmentation and the join.
    RunResult result;
    result.algorithm = std::string(AlgorithmName(id));
    result.inputs = wr.size() + ws.size();
    result.status = Status::Internal("injected window failure (window " +
                                     std::to_string(window_index) + ")");
    return result;
  }
  return runner.Run(id, wr, ws, window_spec);
}

// The pipeline's inputs after disorder-tolerant ingestion. With no ingest
// policy configured `r`/`s` alias the caller's streams (no copy, no stats);
// with one configured they point at the restored, ordered streams owned
// here. Ingestion must run BEFORE segmentation: Stream::MaxTs() and
// SliceWindow both assume the sorted contract, so segmenting an
// arrival-order sequence would mis-place tuples silently.
struct IngestedInputs {
  const Stream* r = nullptr;
  const Stream* s = nullptr;
  Stream owned_r, owned_s;
  IngestStats stats;
  bool active = false;
};

IngestedInputs ApplyIngest(const Stream& r, const Stream& s,
                           const JoinSpec& spec) {
  IngestedInputs in;
  const IngestPolicy policy = IngestPolicy::Resolve(
      spec.disorder_slack_ms, spec.allowed_lateness_ms, spec.ingest_dedup);
  if (!policy.Enabled()) {
    in.r = &r;
    in.s = &s;
    return in;
  }
  IngestResult ingested_r = IngestStream(r, policy);
  IngestResult ingested_s = IngestStream(s, policy);
  in.stats = ingested_r.stats;
  in.stats.Merge(ingested_s.stats);
  in.owned_r = std::move(ingested_r.stream);
  in.owned_s = std::move(ingested_s.stream);
  in.r = &in.owned_r;
  in.s = &in.owned_s;
  in.active = true;
  PublishIngestMetrics(in.stats);
  return in;
}

// Shared driver: runs one IaWJ per (start, length) segment. Degrades
// gracefully on failure: each failed window is retried and fallen back per
// the supervision policy (join/supervisor.h), then — under a skip policy —
// skipped with bounded-loss accounting so one poisoned window cannot sink
// the pipeline. Without supervision, the first non-OK window is recorded
// with its partial metrics, its status copied to the pipeline, and no
// further windows run.
PipelineResult RunSegments(
    const IngestedInputs& in, const JoinSpec& spec,
    const std::vector<std::pair<uint64_t, uint32_t>>& segments,
    const AlgorithmPolicy& policy) {
  PipelineResult pipeline;
  // Window lifecycle lands on the pipeline thread's trace row; the runner
  // nests each per-window run span inside (its ScopedThreadTrace is a no-op
  // while ours is installed).
  trace::ScopedThreadTrace pipeline_trace("window pipeline");
  JoinRunner runner;

  // Resolved once per pipeline, not per window: with nothing configured the
  // whole supervision layer reduces to this one resolve and the unsupervised
  // single-attempt path below.
  const SupervisorPolicy supervision = SupervisorPolicy::Resolve(spec);

  // Overload shedding applies to the whole (already ingested) timeline
  // before windowing, so every window sees the post-shed sequence —
  // shedding after reorder keeps its lag-bounded backlog model honest.
  const Stream* in_r = in.r;
  const Stream* in_s = in.s;
  ShedResult shed_r, shed_s;
  if (supervision.shed_watermark_per_ms > 0) {
    shed_r = ShedToWatermark(*in.r, supervision.shed_watermark_per_ms,
                             supervision.shed_max_lag_ms, supervision.seed);
    shed_s = ShedToWatermark(*in.s, supervision.shed_watermark_per_ms,
                             supervision.shed_max_lag_ms,
                             supervision.seed + 1);
    in_r = &shed_r.stream;
    in_s = &shed_s.stream;
    pipeline.recovery.tuples_shed = shed_r.tuples_shed + shed_s.tuples_shed;
    const uint64_t in = shed_r.tuples_in + shed_s.tuples_in;
    pipeline.recovery.shed_ratio =
        in > 0 ? static_cast<double>(pipeline.recovery.tuples_shed) /
                     static_cast<double>(in)
               : 0;
    if (pipeline.recovery.tuples_shed > 0) {
      pipeline.recovery.events.push_back(
          {RecoveryAction::kShedLoad, StatusCode::kOk, 0,
           "shed " + std::to_string(pipeline.recovery.tuples_shed) + " of " +
               std::to_string(in) + " tuples at watermark " +
               std::to_string(supervision.shed_watermark_per_ms) + "/ms",
           0});
    }
  }

  // Completed-window totals drive the skipped-window loss estimator.
  uint64_t ok_inputs = 0;
  uint64_t ok_matches = 0;

  uint32_t index = 0;
  for (const auto& [start, length] : segments) {
    const Stream wr = SliceWindow(*in_r, start, length);
    const Stream ws = SliceWindow(*in_s, start, length);
    ++index;
    if (wr.size() == 0 && ws.size() == 0) continue;

    JoinSpec window_spec = spec;
    window_spec.window_ms = length;
    trace::Instant("window_open", static_cast<double>(index - 1));
    WindowRun run;
    run.window_index = index - 1;
    run.window_start_ms = start;
    const AlgorithmId id = policy(wr, ws);
    if (supervision.Enabled()) {
      run.result = SuperviseAttempts(
          id, window_spec, supervision,
          [&](AlgorithmId attempt_id, const JoinSpec& attempt_spec) {
            return RunWindowOnce(runner, attempt_id, wr, ws, attempt_spec,
                                 index - 1);
          });
      pipeline.recovery.Merge(run.result.recovery);
    } else {
      run.result = RunWindowOnce(runner, id, wr, ws, window_spec, index - 1);
    }
    const bool failed = !run.result.status.ok();
    if (!failed) {
      pipeline.total_inputs += run.result.inputs;
      pipeline.total_matches += run.result.matches;
      pipeline.total_checksum += run.result.checksum;
      pipeline.total_elapsed_ms += run.result.elapsed_ms;
      ok_inputs += run.result.inputs;
      ok_matches += run.result.matches;
    }
    trace::Instant("window_close", static_cast<double>(index - 1));
    trace::Counter("pipeline_matches",
                   static_cast<double>(pipeline.total_matches));
    if (failed && supervision.skip_failed_windows &&
        IsRetryableCode(run.result.status.code())) {
      // Bounded-loss skip: the pipeline survives, but this window's tuples
      // are gone. Estimate the matches lost as the larger of what the
      // failed attempt got out before dying (its progressiveness recorder)
      // and the completed windows' match rate extrapolated over the
      // dropped inputs.
      const uint64_t dropped = wr.size() + ws.size();
      const double rate =
          ok_inputs > 0 ? static_cast<double>(ok_matches) /
                              static_cast<double>(ok_inputs)
                        : 0;
      const double est_lost =
          std::max(static_cast<double>(run.result.progress.total()),
                   rate * static_cast<double>(dropped));
      ++pipeline.recovery.windows_skipped;
      if (metrics::Enabled()) {
        if (auto* c = metrics::GetCounter("supervisor.windows_skipped")) {
          c->Add();
        }
      }
      pipeline.recovery.tuples_dropped += dropped;
      pipeline.recovery.est_matches_lost += est_lost;
      pipeline.recovery.events.push_back(
          {RecoveryAction::kSkipWindow, run.result.status.code(),
           pipeline.recovery.attempts,
           "window " + std::to_string(index - 1) + " skipped after " +
               run.result.status.ToString() + "; dropped " +
               std::to_string(dropped) + " tuples",
           0});
      trace::Instant("window_skip", static_cast<double>(index - 1));
      pipeline.windows.push_back(std::move(run));
      continue;
    }
    if (failed) pipeline.status = run.result.status;
    pipeline.windows.push_back(std::move(run));
    if (failed) break;
  }
  if (in.active) {
    pipeline.ingest = in.stats;
    const uint64_t quarantined = in.stats.quarantined();
    if (quarantined > 0) {
      // Quarantined tuples are bounded loss, same as a skipped window:
      // count them and extrapolate the matches they would have produced
      // from the completed windows' match rate.
      const double rate = ok_inputs > 0 ? static_cast<double>(ok_matches) /
                                              static_cast<double>(ok_inputs)
                                        : 0;
      pipeline.recovery.tuples_dropped += quarantined;
      pipeline.recovery.est_matches_lost +=
          rate * static_cast<double>(quarantined);
      pipeline.recovery.events.push_back(
          {RecoveryAction::kQuarantine, StatusCode::kOk, 0,
           "ingest quarantined " + std::to_string(quarantined) + " tuples (" +
               std::to_string(in.stats.late_dropped) + " late, " +
               std::to_string(in.stats.duplicates) + " duplicate, " +
               std::to_string(in.stats.corrupt) + " corrupt)",
           0});
    }
  }
  return pipeline;
}

}  // namespace

PipelineResult RunTumblingWindows(const Stream& r, const Stream& s,
                                  const JoinSpec& spec,
                                  const AlgorithmPolicy& policy) {
  if (spec.window_ms < 1) {
    PipelineResult pipeline;
    pipeline.status =
        Status::InvalidArgument("tumbling windows need window_ms >= 1");
    return pipeline;
  }
  const IngestedInputs in = ApplyIngest(r, s, spec);
  const uint64_t max_ts = std::max<uint64_t>(in.r->MaxTs(), in.s->MaxTs());
  std::vector<std::pair<uint64_t, uint32_t>> segments;
  for (uint64_t start = 0; start <= max_ts; start += spec.window_ms) {
    segments.emplace_back(start, spec.window_ms);
  }
  return RunSegments(in, spec, segments, policy);
}

PipelineResult RunTumblingWindows(AlgorithmId id, const Stream& r,
                                  const Stream& s, const JoinSpec& spec) {
  return RunTumblingWindows(
      r, s, spec, [id](const Stream&, const Stream&) { return id; });
}

PipelineResult RunSlidingWindows(const Stream& r, const Stream& s,
                                 const JoinSpec& spec, uint32_t hop_ms,
                                 const AlgorithmPolicy& policy) {
  if (hop_ms < 1) {
    PipelineResult pipeline;
    pipeline.status =
        Status::InvalidArgument("sliding windows need hop_ms >= 1");
    return pipeline;
  }
  const IngestedInputs in = ApplyIngest(r, s, spec);
  const uint64_t max_ts = std::max<uint64_t>(in.r->MaxTs(), in.s->MaxTs());
  std::vector<std::pair<uint64_t, uint32_t>> segments;
  for (uint64_t start = 0; start <= max_ts; start += hop_ms) {
    segments.emplace_back(start, spec.window_ms);
  }
  return RunSegments(in, spec, segments, policy);
}

PipelineResult RunSlidingWindows(AlgorithmId id, const Stream& r,
                                 const Stream& s, const JoinSpec& spec,
                                 uint32_t hop_ms) {
  return RunSlidingWindows(
      r, s, spec, hop_ms, [id](const Stream&, const Stream&) { return id; });
}

PipelineResult RunSessionWindows(const Stream& r, const Stream& s,
                                 const JoinSpec& spec, uint32_t gap_ms,
                                 const AlgorithmPolicy& policy) {
  if (gap_ms < 1) {
    PipelineResult pipeline;
    pipeline.status =
        Status::InvalidArgument("session windows need gap_ms >= 1");
    return pipeline;
  }
  const IngestedInputs in = ApplyIngest(r, s, spec);
  // Merge the two arrival sequences and split wherever both streams are
  // silent for at least gap_ms.
  std::vector<uint32_t> arrivals;
  arrivals.reserve(in.r->size() + in.s->size());
  for (const Tuple& t : in.r->tuples) arrivals.push_back(t.ts);
  for (const Tuple& t : in.s->tuples) arrivals.push_back(t.ts);
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<std::pair<uint64_t, uint32_t>> segments;
  if (!arrivals.empty()) {
    uint64_t session_start = arrivals.front();
    uint32_t last = arrivals.front();
    for (uint32_t ts : arrivals) {
      if (ts - last >= gap_ms) {
        segments.emplace_back(session_start,
                              static_cast<uint32_t>(last - session_start) + 1);
        session_start = ts;
      }
      last = ts;
    }
    segments.emplace_back(session_start,
                          static_cast<uint32_t>(last - session_start) + 1);
  }
  return RunSegments(in, spec, segments, policy);
}

PipelineResult RunSessionWindows(AlgorithmId id, const Stream& r,
                                 const Stream& s, const JoinSpec& spec,
                                 uint32_t gap_ms) {
  return RunSessionWindows(
      r, s, spec, gap_ms, [id](const Stream&, const Stream&) { return id; });
}

}  // namespace iawj
