#include "src/join/npj.h"

#include <algorithm>

#include "src/hash/prefetch.h"
#include "src/hash/simd_probe.h"

namespace iawj {

template <typename Tracer>
template <typename Table>
void NpjJoin<Tracer>::RunWorkerOn(Table& table, const JoinContext& ctx,
                                  int worker) {
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  Tracer tracer = MakeWorkerTracer<Tracer>(ctx, worker);
  const bool batched = plan_.batched_probe || plan_.simd_probe;

  // Cancellation checkpoints every 8K tuples: one relaxed load amortized
  // over the batch, invisible next to the hash-table work. The batched
  // kernels process 8K-tuple stripes between checkpoints for the same
  // cadence.
  constexpr size_t kCancelMask = 8191;
  constexpr size_t kCancelStripe = kCancelMask + 1;

  // Lazy approach: wait out the window before processing starts.
  {
    ScopedPhase wait(&prof, Phase::kWait);
    ctx.WaitUntil(ctx.window_close_ms);
  }
  if (ctx.AbortRequested()) return;

  const bool morsel = ctx.MorselMode();

  // Build: all threads insert R into the shared table — their equisized
  // chunks in static mode, dynamically claimed morsels otherwise. Inserts
  // are always one-at-a-time: the batched build variant was retired after
  // it measured 0.95x of scalar (BENCH_baseline.json "notes"); with
  // kernels=lockfree the per-insert latch acquisition becomes one release
  // CAS instead.
  {
    ScopedPhase build(&prof, Phase::kBuild);
    tracer.SetPhase(Phase::kBuild);
    const auto build_range = [&](const ChunkRange& chunk) -> bool {
      for (size_t i = chunk.begin; i < chunk.end; ++i) {
        if ((i & kCancelMask) == 0 && ctx.AbortRequested()) return false;
        tracer.Access(&ctx.r[i], sizeof(Tuple));
        table.Insert(ctx.r[i], tracer);
      }
      return true;
    };
    if (morsel) {
      ChunkRange m;
      while (build_phase_.Next(*ctx.scheduler, worker, &m)) {
        if (!build_range(m)) return;
      }
    } else if (!build_range(
                   ChunkForThread(ctx.r.size(), worker,
                                  ctx.spec->num_threads))) {
      return;
    }
  }

  ctx.barrier->arrive_and_wait();

  // Probe: concurrently match S against the shared table, same division.
  {
    ScopedPhase probe(&prof, Phase::kProbe);
    tracer.SetPhase(Phase::kProbe);
    const auto probe_range = [&](const ChunkRange& chunk) -> bool {
      if (batched) {
        const auto on_match = [&](const Tuple& s, const Tuple& r) {
          sink.OnMatch(s.key, r.ts, s.ts);
        };
        for (size_t i = chunk.begin; i < chunk.end; i += kCancelStripe) {
          if (ctx.AbortRequested()) return false;
          const size_t end = std::min(chunk.end, i + kCancelStripe);
          kernels::ProbeDispatch(table, ctx.s.data() + i, end - i, on_match,
                                 tracer, plan_);
        }
      } else {
        for (size_t i = chunk.begin; i < chunk.end; ++i) {
          if ((i & kCancelMask) == 0 && ctx.AbortRequested()) return false;
          const Tuple s = ctx.s[i];
          tracer.Access(&ctx.s[i], sizeof(Tuple));
          table.Probe(
              s.key, [&](Tuple r) { sink.OnMatch(s.key, r.ts, s.ts); },
              tracer);
        }
      }
      return true;
    };
    if (morsel) {
      ChunkRange m;
      while (probe_phase_.Next(*ctx.scheduler, worker, &m)) {
        if (!probe_range(m)) return;
      }
    } else if (!probe_range(
                   ChunkForThread(ctx.s.size(), worker,
                                  ctx.spec->num_threads))) {
      return;
    }
  }
}

template <typename Tracer>
void NpjJoin<Tracer>::RunWorker(const JoinContext& ctx, int worker) {
  if (lockfree_table_ != nullptr) {
    RunWorkerOn(*lockfree_table_, ctx, worker);
  } else {
    RunWorkerOn(*table_, ctx, worker);
  }
}

template class NpjJoin<NullTracer>;
template class NpjJoin<SimTracer>;

std::unique_ptr<JoinAlgorithm> MakeNpj() {
  return std::make_unique<NpjJoin<NullTracer>>();
}

std::unique_ptr<JoinAlgorithm> MakeNpjTraced() {
  return std::make_unique<NpjJoin<SimTracer>>();
}

}  // namespace iawj
