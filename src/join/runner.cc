#include "src/join/runner.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/affinity.h"
#include "src/common/logging.h"
#include "src/join/eager_engine.h"
#include "src/join/npj.h"
#include "src/join/prj.h"
#include "src/join/sortmerge.h"
#include "src/memory/tracker.h"
#include "src/profiling/resource.h"
#include "src/profiling/trace.h"

namespace iawj {

double RunResult::WorkNsPerInput() const {
  if (inputs == 0) return 0;
  const uint64_t work = phases.TotalNs() - phases.GetNs(Phase::kWait);
  return static_cast<double>(work) / static_cast<double>(inputs);
}

std::unique_ptr<JoinAlgorithm> CreateAlgorithm(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kNpj:
      return MakeNpj();
    case AlgorithmId::kPrj:
      return MakePrj();
    case AlgorithmId::kMway:
      return MakeMway();
    case AlgorithmId::kMpass:
      return MakeMpass();
    default:
      return MakeEager(id);
  }
}

std::unique_ptr<JoinAlgorithm> CreateTracedAlgorithm(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kNpj:
      return MakeNpjTraced();
    case AlgorithmId::kPrj:
      return MakePrjTraced();
    case AlgorithmId::kMway:
      return MakeMwayTraced();
    case AlgorithmId::kMpass:
      return MakeMpassTraced();
    default:
      return MakeEagerTraced(id);
  }
}

namespace {

// Number of leading tuples whose timestamp falls inside [0, window_ms).
size_t WindowPrefix(const Stream& stream, uint32_t window_ms) {
  const auto it = std::upper_bound(
      stream.tuples.begin(), stream.tuples.end(), window_ms - 1,
      [](uint32_t w, const Tuple& t) { return w < t.ts; });
  return static_cast<size_t>(it - stream.tuples.begin());
}

}  // namespace

RunResult JoinRunner::Run(AlgorithmId id, const Stream& r, const Stream& s,
                          const JoinSpec& spec) {
  const Status status = spec.Validate(id);
  IAWJ_CHECK(status.ok()) << status.ToString();
  auto algorithm = CreateAlgorithm(id);
  return RunWith(algorithm.get(), r, s, spec);
}

RunResult JoinRunner::RunWith(JoinAlgorithm* algorithm, const Stream& r,
                              const Stream& s, const JoinSpec& spec,
                              CacheSim* const* cache_sims) {
  const int threads = spec.num_threads;
  IAWJ_CHECK_GE(threads, 1);

  mem::Reset();

  // Intra-window join: only tuples of the concerned window participate.
  const size_t nr = WindowPrefix(r, spec.window_ms);
  const size_t ns = WindowPrefix(s, spec.window_ms);

  Clock clock(spec.clock_mode, spec.time_scale);

  JoinContext ctx;
  ctx.r = std::span<const Tuple>(r.tuples.data(), nr);
  ctx.s = std::span<const Tuple>(s.tuples.data(), ns);
  ctx.spec = &spec;
  ctx.clock = &clock;
  ctx.cache_sims = cache_sims;

  // The lazy approach starts once the last tuple of the window has arrived.
  uint32_t last_ts = 0;
  if (nr > 0) last_ts = std::max(last_ts, ctx.r[nr - 1].ts);
  if (ns > 0) last_ts = std::max(last_ts, ctx.s[ns - 1].ts);
  ctx.window_close_ms = static_cast<double>(last_ts);

  std::vector<MatchSink> sinks(threads);
  std::vector<PhaseProfile> profiles(threads);
  for (auto& sink : sinks) sink.Bind(&clock);
  ctx.sinks = sinks.data();
  ctx.profiles = profiles.data();
  std::barrier<> barrier(threads);
  ctx.barrier = &barrier;

  // Observability: when tracing is enabled, every worker gets a named
  // per-thread recorder and the whole run is bracketed by one span on the
  // orchestrating thread. Interned once here so worker hot paths only touch
  // thread-local buffers.
  static std::atomic<uint64_t> run_counter{0};
  const bool tracing = trace::Enabled();
  const char* run_label = nullptr;
  if (tracing) {
    run_label = trace::Intern(std::string(algorithm->name()) + " run " +
                              std::to_string(++run_counter));
  }
  trace::ScopedThreadTrace orchestrator_trace("orchestrator");
  if (tracing) trace::BeginSpan(run_label);

  algorithm->Setup(ctx);

  const double cpu_before = ResourceSampler::ProcessCpuTimeMs();
  clock.Start();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      int pinned_core = -1;
      if (spec.pin_threads && PinCurrentThreadToCore(t)) {
        pinned_core = ResolvePinnedCore(t);
      }
      trace::ScopedThreadTrace worker_trace(
          tracing ? std::string(algorithm->name()) + " w" + std::to_string(t)
                  : std::string(),
          pinned_core);
      if (tracing) trace::BeginSpan(run_label);
      algorithm->RunWorker(ctx, t);
      if (tracing) trace::EndSpan();
    });
  }
  for (auto& w : workers) w.join();

  RunResult result;
  result.elapsed_ms = clock.NowMs();
  result.cpu_time_ms = ResourceSampler::ProcessCpuTimeMs() - cpu_before;
  result.algorithm = std::string(algorithm->name());
  result.inputs = nr + ns;

  algorithm->Teardown();

  for (int t = 0; t < threads; ++t) {
    result.matches += sinks[t].count();
    result.checksum += sinks[t].checksum();
    result.last_match_ms = std::max(result.last_match_ms,
                                    sinks[t].last_match_ms());
    result.progress.Merge(sinks[t].progress());
    result.latency.Merge(sinks[t].latency());
    result.phases.Merge(profiles[t]);
  }
  const double denominator =
      result.matches > 0 ? result.last_match_ms : result.elapsed_ms;
  if (denominator > 0) {
    result.throughput_per_ms =
        static_cast<double>(result.inputs) / denominator;
  }
  result.p95_latency_ms = result.latency.QuantileMs(0.95);
  result.mean_latency_ms = result.latency.MeanMs();
  result.peak_tracked_bytes = mem::PeakBytes();
  if (tracing && trace::Active()) {
    trace::Counter("matches", static_cast<double>(result.matches));
    trace::Counter("peak_tracked_bytes",
                   static_cast<double>(result.peak_tracked_bytes));
    trace::EndSpan();  // run_label
  }
  return result;
}

}  // namespace iawj
