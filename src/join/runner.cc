#include "src/join/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/affinity.h"
#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/join/eager_engine.h"
#include "src/join/hhj.h"
#include "src/join/npj.h"
#include "src/join/prj.h"
#include "src/join/sortmerge.h"
#include "src/memory/tracker.h"
#include "src/profiling/metrics.h"
#include "src/profiling/phase.h"
#include "src/profiling/pmu.h"
#include "src/profiling/resource.h"
#include "src/profiling/trace.h"

namespace iawj {

MorselStats RunResult::MorselTotals() const {
  MorselStats total;
  for (const MorselStats& s : worker_morsels) total.Add(s);
  return total;
}

double RunResult::WorkNsPerInput() const {
  if (inputs == 0) return 0;
  const uint64_t work = phases.TotalNs() - phases.GetNs(Phase::kWait);
  return static_cast<double>(work) / static_cast<double>(inputs);
}

std::unique_ptr<JoinAlgorithm> CreateAlgorithm(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kNpj:
      return MakeNpj();
    case AlgorithmId::kPrj:
      return MakePrj();
    case AlgorithmId::kMway:
      return MakeMway();
    case AlgorithmId::kMpass:
      return MakeMpass();
    case AlgorithmId::kHhj:
      return MakeHhj();
    default:
      return MakeEager(id);
  }
}

std::unique_ptr<JoinAlgorithm> CreateTracedAlgorithm(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kNpj:
      return MakeNpjTraced();
    case AlgorithmId::kPrj:
      return MakePrjTraced();
    case AlgorithmId::kMway:
      return MakeMwayTraced();
    case AlgorithmId::kMpass:
      return MakeMpassTraced();
    case AlgorithmId::kHhj:
      return MakeHhjTraced();
    default:
      return MakeEagerTraced(id);
  }
}

namespace {

// Number of leading tuples whose timestamp falls inside [0, window_ms).
size_t WindowPrefix(const Stream& stream, uint32_t window_ms) {
  const auto it = std::upper_bound(
      stream.tuples.begin(), stream.tuples.end(), window_ms - 1,
      [](uint32_t w, const Tuple& t) { return w < t.ts; });
  return static_cast<size_t>(it - stream.tuples.begin());
}

}  // namespace

RunResult JoinRunner::Run(AlgorithmId id, const Stream& r, const Stream& s,
                          const JoinSpec& spec) {
  if (Status status = spec.Validate(id); !status.ok()) {
    RunResult result;
    result.algorithm = std::string(AlgorithmName(id));
    result.status = std::move(status);
    return result;
  }
  auto algorithm = CreateAlgorithm(id);
  return RunWith(algorithm.get(), r, s, spec);
}

namespace {

// Deadline for one run: the spec wins, then $IAWJ_DEADLINE_MS, then none.
uint32_t ResolveDeadlineMs(const JoinSpec& spec) {
  if (spec.deadline_ms > 0) return spec.deadline_ms;
  if (const char* env = std::getenv("IAWJ_DEADLINE_MS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return 0;
}

}  // namespace

RunResult JoinRunner::RunWith(JoinAlgorithm* algorithm, const Stream& r,
                              const Stream& s, const JoinSpec& spec,
                              CacheSim* const* cache_sims) {
  const int threads = spec.num_threads;
  RunResult result;
  result.algorithm = std::string(algorithm->name());
  if (threads < 1) {
    result.status = Status::InvalidArgument(
        "num_threads must be >= 1, got " + std::to_string(threads));
    return result;
  }

  mem::Reset();

  // Intra-window join: only tuples of the concerned window participate.
  const size_t nr = WindowPrefix(r, spec.window_ms);
  const size_t ns = WindowPrefix(s, spec.window_ms);

  Clock clock(spec.clock_mode, spec.time_scale);

  JoinContext ctx;
  ctx.r = std::span<const Tuple>(r.tuples.data(), nr);
  ctx.s = std::span<const Tuple>(s.tuples.data(), ns);
  ctx.spec = &spec;
  ctx.clock = &clock;
  ctx.cache_sims = cache_sims;

  // The lazy approach starts once the last tuple of the window has arrived.
  uint32_t last_ts = 0;
  if (nr > 0) last_ts = std::max(last_ts, ctx.r[nr - 1].ts);
  if (ns > 0) last_ts = std::max(last_ts, ctx.s[ns - 1].ts);
  ctx.window_close_ms = static_cast<double>(last_ts);

  std::vector<MatchSink> sinks(threads);
  std::vector<PhaseProfile> profiles(threads);
  // One PMU destination per worker; merged like PhaseProfile after join.
  // Stays untouched (and free) unless PMU is requested AND available.
  std::vector<pmu::PmuProfile> pmu_profiles(threads);
  const bool pmu_requested = pmu::Requested();
  for (auto& sink : sinks) sink.Bind(&clock);
  ctx.sinks = sinks.data();
  ctx.profiles = profiles.data();
  std::barrier<> barrier(threads);
  ctx.barrier = &barrier;

  // Per-run morsel scheduler: resolves spec/$IAWJ_SCHEDULER to the executed
  // mode and $IAWJ_MORSEL_SIZE to the morsel size, discovers NUMA placement,
  // and owns the per-worker claim/steal counters. Algorithms size their
  // phases against it in Setup, so it must exist before Setup runs.
  MorselScheduler scheduler(threads, spec.scheduler, spec.morsel_size);
  ctx.scheduler = &scheduler;
  result.scheduler_resolved = scheduler.mode();
  result.morsel_size = scheduler.morsel_size();
  result.numa_nodes = scheduler.num_nodes();

  // Resolve the kernel plan the algorithms will resolve in Setup (identical
  // inputs, deterministic result) so the run record's v8 `kernels` block
  // names the variants that actually ran — tracer forcing and the AVX2
  // runtime dispatch included. Traced runs are the ones given simulators.
  const KernelPlan kernel_plan =
      ResolveKernelPlan(spec.kernels, /*tracer_enabled=*/cache_sims != nullptr);
  result.kernels_resolved = kernel_plan.mode;
  result.kernel_scatter = std::string(KernelScatterVariant(kernel_plan));
  result.kernel_build = std::string(KernelBuildVariant(kernel_plan));
  result.kernel_probe = std::string(KernelProbeVariant(kernel_plan));

  // Run-wide cancellation: the deadline watchdog, memory-budget breaches
  // (via the tracker's breach token) and injected faults all funnel into one
  // token; workers unwind at their next checkpoint. First cancel wins.
  CancelToken cancel;
  ctx.cancel = &cancel;
  mem::SetBreachToken(&cancel);
  const uint32_t deadline_ms = ResolveDeadlineMs(spec);

  // Observability: when tracing is enabled, every worker gets a named
  // per-thread recorder and the whole run is bracketed by one span on the
  // orchestrating thread. Interned once here so worker hot paths only touch
  // thread-local buffers.
  static std::atomic<uint64_t> run_counter{0};
  const bool tracing = trace::Enabled();
  const char* run_label = nullptr;
  if (tracing) {
    run_label = trace::Intern(std::string(algorithm->name()) + " run " +
                              std::to_string(++run_counter));
  }
  trace::ScopedThreadTrace orchestrator_trace("orchestrator");
  if (tracing) trace::BeginSpan(run_label);

  // Fallible Setup: bulk allocations preflight against the memory budget, so
  // a doomed run fails here instead of after the window wait.
  Status setup_status = algorithm->Setup(ctx);
  if (setup_status.ok() && cancel.cancelled()) setup_status = cancel.reason();
  if (!setup_status.ok()) {
    algorithm->Teardown();
    mem::SetBreachToken(nullptr);
    result.status = std::move(setup_status);
    result.inputs = nr + ns;
    result.peak_tracked_bytes = mem::PeakBytes();
    if (tracing && trace::Active()) trace::EndSpan();
    return result;
  }

  const double cpu_before = ResourceSampler::ProcessCpuTimeMs();
  clock.Start();

  // Per-worker completion flags let the watchdog name the stragglers.
  auto done = std::make_unique<std::atomic<bool>[]>(threads);
  for (int t = 0; t < threads; ++t) {
    done[t].store(false, std::memory_order_relaxed);
  }

  // Deadline watchdog: sleeps until the run finishes or the deadline lapses,
  // then cancels so every worker unwinds at its next checkpoint. The token
  // keeps the first cancellation, so a budget breach racing the deadline
  // reports whichever struck first.
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool run_finished = false;
  std::thread watchdog;
  if (deadline_ms > 0) {
    watchdog = std::thread([&] {
      std::unique_lock<std::mutex> lock(watchdog_mu);
      const bool finished =
          watchdog_cv.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                               [&] { return run_finished; });
      if (finished) return;
      // Collect the stragglers BEFORE cancelling: if every worker already
      // finished, the run beat the deadline and must not be failed
      // retroactively — the emitted run record always reflects the final
      // status, and a deadline_exceeded status always names at least one
      // unfinished worker, exactly once.
      std::string stragglers;
      for (int t = 0; t < threads; ++t) {
        if (!done[t].load(std::memory_order_acquire)) {
          stragglers += " w" + std::to_string(t);
        }
      }
      if (stragglers.empty()) return;
      cancel.Cancel(Status::DeadlineExceeded(
          "run exceeded deadline of " + std::to_string(deadline_ms) +
          " ms; unfinished workers:" + stragglers));
    });
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    // Evaluated here, on the orchestrating thread, so "worker_stall:2"
    // deterministically wedges the second spawned worker rather than
    // whichever thread reaches the fault site first.
    const bool stall = fault::Enabled() && fault::Inject("worker_stall");
    workers.emplace_back([&, t, stall] {
      int pinned_core = -1;
      if (spec.pin_threads && PinCurrentThreadToCore(t)) {
        pinned_core = ResolvePinnedCore(t);
      }
      trace::ScopedThreadTrace worker_trace(
          tracing ? std::string(algorithm->name()) + " w" + std::to_string(t)
                  : std::string(),
          pinned_core);
      // Opens this worker's perf event group (no-op when PMU is off or the
      // kernel refuses); phase hooks in ScopedPhase/PhaseStopwatch attribute
      // counter deltas to phases from here on.
      pmu::ScopedThreadPmu worker_pmu(&pmu_profiles[t]);
      if (tracing) trace::BeginSpan(run_label);
      if (stall) {
        // Fault: this worker wedges before doing any work — the shape of a
        // crashed or livelocked thread. Only cancellation (normally the
        // deadline watchdog) releases it; it then drops its barrier slot so
        // lazy peers blocked on a phase barrier unwind too.
        while (!cancel.cancelled()) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        ctx.AbortRequested();
      } else {
        algorithm->RunWorker(ctx, t);
      }
      done[t].store(true, std::memory_order_release);
      // Final PMU snapshot now, so the per-worker totals below see it and
      // the trailing delta is attributed before the trace row closes.
      const bool pmu_measured = worker_pmu.installed();
      worker_pmu.Finish();
      if (tracing && pmu_measured) {
        const auto& events = pmu::Events();
        for (int e = 0; e < static_cast<int>(events.size()); ++e) {
          trace::Counter(
              trace::Intern("worker_pmu_" + events[e].name),
              static_cast<double>(pmu_profiles[t].Total(e)));
        }
      }
      if (tracing && scheduler.enabled()) {
        // Per-thread scheduling counters land in this worker's trace row so
        // the timeline shows who executed and who stole.
        const MorselStats& ms = scheduler.stats(t);
        trace::Counter("worker_morsels", static_cast<double>(ms.morsels));
        trace::Counter("worker_steals", static_cast<double>(ms.steals));
        trace::Counter("worker_steal_misses",
                       static_cast<double>(ms.steal_misses));
      }
      if (tracing) trace::EndSpan();
    });
  }
  for (auto& w : workers) w.join();

  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu);
      run_finished = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  mem::SetBreachToken(nullptr);
  result.status = cancel.cancelled() ? cancel.reason() : Status::Ok();

  result.elapsed_ms = clock.NowMs();
  result.cpu_time_ms = ResourceSampler::ProcessCpuTimeMs() - cpu_before;
  result.inputs = nr + ns;

  // Harvest spill accounting before Teardown frees it (the spill directory
  // itself is removed by Teardown).
  if (const SpillStats* sp = algorithm->spill_stats()) result.spill = *sp;

  algorithm->Teardown();

  for (int t = 0; t < threads; ++t) {
    result.matches += sinks[t].count();
    result.checksum += sinks[t].checksum();
    result.last_match_ms = std::max(result.last_match_ms,
                                    sinks[t].last_match_ms());
    result.progress.Merge(sinks[t].progress());
    result.latency.Merge(sinks[t].latency());
    result.phases.Merge(profiles[t]);
  }
  const double denominator =
      result.matches > 0 ? result.last_match_ms : result.elapsed_ms;
  if (denominator > 0) {
    result.throughput_per_ms =
        static_cast<double>(result.inputs) / denominator;
  }
  result.p95_latency_ms = result.latency.QuantileMs(0.95);
  result.mean_latency_ms = result.latency.MeanMs();
  result.peak_tracked_bytes = mem::PeakBytes();
  if (scheduler.enabled()) {
    result.worker_morsels.reserve(threads);
    result.worker_nodes.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      result.worker_morsels.push_back(scheduler.stats(t));
      result.worker_nodes.push_back(scheduler.node_of(t));
    }
  }

  // PMU report: merged per-worker profiles when measured, otherwise the
  // reason nothing was (not requested, or the kernel refused the probe).
  result.pmu.requested = pmu_requested;
  if (!pmu_requested) {
    result.pmu.available = false;
    result.pmu.reason = "not requested (IAWJ_PMU unset)";
  } else {
    const pmu::Availability& avail = pmu::Probe();
    result.pmu.available = avail.available;
    result.pmu.reason = avail.reason;
    if (avail.available) {
      for (const pmu::EventDef& event : pmu::Events()) {
        result.pmu.events.push_back(event.name);
      }
      for (int t = 0; t < threads; ++t) {
        result.pmu.profile.Merge(pmu_profiles[t]);
      }
    }
  }

  // Live metrics feed (profiling/metrics.h): one relaxed load each when
  // $IAWJ_METRICS_DIR is unset. Registered once per process; per-run cost
  // is a handful of sharded adds.
  if (metrics::Enabled()) {
    static metrics::Counter* runs_total = metrics::GetCounter("runs.total");
    static metrics::Counter* runs_failed = metrics::GetCounter("runs.failed");
    static metrics::Counter* inputs_total =
        metrics::GetCounter("runs.inputs_total");
    static metrics::Counter* matches_total =
        metrics::GetCounter("runs.matches_total");
    static metrics::Counter* morsels_total =
        metrics::GetCounter("scheduler.morsels_total");
    static metrics::Counter* steals_total =
        metrics::GetCounter("scheduler.steals_total");
    static metrics::Counter* steal_misses_total =
        metrics::GetCounter("scheduler.steal_misses_total");
    static metrics::Histogram* elapsed_ms =
        metrics::GetHistogram("run.elapsed_ms");
    if (runs_total != nullptr) runs_total->Add();
    if (runs_failed != nullptr && !result.status.ok()) runs_failed->Add();
    if (inputs_total != nullptr) inputs_total->Add(result.inputs);
    if (matches_total != nullptr) matches_total->Add(result.matches);
    if (scheduler.enabled()) {
      const MorselStats totals = scheduler.Totals();
      if (morsels_total != nullptr) morsels_total->Add(totals.morsels);
      if (steals_total != nullptr) steals_total->Add(totals.steals);
      if (steal_misses_total != nullptr) {
        steal_misses_total->Add(totals.steal_misses);
      }
    }
    if (elapsed_ms != nullptr) elapsed_ms->Record(result.elapsed_ms);
    if (result.spill.any()) {
      static metrics::Counter* spilled_parts =
          metrics::GetCounter("spill.partitions_total");
      static metrics::Counter* spill_written =
          metrics::GetCounter("spill.bytes_written_total");
      static metrics::Counter* spill_read =
          metrics::GetCounter("spill.bytes_read_total");
      if (spilled_parts != nullptr) {
        spilled_parts->Add(result.spill.partitions_spilled);
      }
      if (spill_written != nullptr) {
        spill_written->Add(result.spill.bytes_written);
      }
      if (spill_read != nullptr) spill_read->Add(result.spill.bytes_read);
    }
    if (result.pmu.available) {
      const auto& events = result.pmu.events;
      for (int e = 0; e < static_cast<int>(events.size()); ++e) {
        if (metrics::Counter* c = metrics::GetCounter("pmu." + events[e])) {
          c->Add(result.pmu.profile.Total(e));
        }
      }
    }
    // Kernel-variant adoption: runs that executed each non-scalar variant,
    // so a fleet dashboard can see whether simd/lockfree actually engaged
    // (the runtime dispatch can quietly fall back on non-AVX2 hosts).
    static metrics::Counter* swwc_runs =
        metrics::GetCounter("kernels.swwc_scatter_runs");
    static metrics::Counter* batched_probe_runs =
        metrics::GetCounter("kernels.batched_probe_runs");
    static metrics::Counter* simd_probe_runs =
        metrics::GetCounter("kernels.simd_probe_runs");
    static metrics::Counter* lockfree_build_runs =
        metrics::GetCounter("kernels.lockfree_build_runs");
    if (swwc_runs != nullptr && kernel_plan.swwc_scatter) swwc_runs->Add();
    if (batched_probe_runs != nullptr && kernel_plan.batched_probe &&
        !kernel_plan.simd_probe) {
      batched_probe_runs->Add();
    }
    if (simd_probe_runs != nullptr && kernel_plan.simd_probe) {
      simd_probe_runs->Add();
    }
    if (lockfree_build_runs != nullptr && kernel_plan.lockfree_build) {
      lockfree_build_runs->Add();
    }
  }
  if (tracing && trace::Active()) {
    trace::Counter("matches", static_cast<double>(result.matches));
    trace::Counter("peak_tracked_bytes",
                   static_cast<double>(result.peak_tracked_bytes));
    // Mirror the run record's v8 kernels block into the trace so a span can
    // be attributed to the variant that produced it (the KernelMode enum
    // ordinal; resolved modes are never kAuto).
    trace::Counter("kernel_mode",
                   static_cast<double>(result.kernels_resolved));
    if (result.spill.any()) {
      trace::Counter("spill_partitions",
                     static_cast<double>(result.spill.partitions_spilled));
      trace::Counter("spill_bytes_written",
                     static_cast<double>(result.spill.bytes_written));
      trace::Counter("spill_bytes_read",
                     static_cast<double>(result.spill.bytes_read));
    }
    if (scheduler.enabled()) {
      const MorselStats totals = scheduler.Totals();
      trace::Counter("morsels", static_cast<double>(totals.morsels));
      trace::Counter("steals", static_cast<double>(totals.steals));
      trace::Counter("steal_misses",
                     static_cast<double>(totals.steal_misses));
      trace::Counter("remote_steals",
                     static_cast<double>(totals.remote_steals));
    }
    trace::EndSpan();  // run_label
  }
  return result;
}

}  // namespace iawj
