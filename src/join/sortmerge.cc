#include "src/join/sortmerge.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/partition/range.h"
#include "src/sort/avxsort.h"
#include "src/sort/merge.h"

namespace iawj {

namespace {

// Duplicate-aware merge join of key-aligned sorted ranges. Checks the run's
// cancellation token every 8K steps; runs only after the final barrier
// phase, so it can simply stop early when cancelled.
template <typename Tracer>
void MergeJoinRange(const JoinContext& ctx, const uint64_t* r, size_t r_begin,
                    size_t r_end, const uint64_t* s, size_t s_begin,
                    size_t s_end, MatchSink& sink, Tracer& tracer) {
  constexpr size_t kCancelMask = 8191;
  size_t steps = 0;
  size_t i = r_begin, j = s_begin;
  while (i < r_end && j < s_end) {
    if ((++steps & kCancelMask) == 0 && ctx.Cancelled()) return;
    tracer.Access(&r[i], sizeof(uint64_t));
    tracer.Access(&s[j], sizeof(uint64_t));
    const uint32_t kr = PackedKey(r[i]);
    const uint32_t ks = PackedKey(s[j]);
    if (kr < ks) {
      ++i;
    } else if (kr > ks) {
      ++j;
    } else {
      size_t i2 = i;
      while (i2 < r_end && PackedKey(r[i2]) == kr) ++i2;
      size_t j2 = j;
      while (j2 < s_end && PackedKey(s[j2]) == ks) ++j2;
      for (size_t a = i; a < i2; ++a) {
        const uint32_t r_ts = PackedTs(r[a]);
        tracer.Access(&r[a], sizeof(uint64_t));
        for (size_t b = j; b < j2; ++b) {
          tracer.Access(&s[b], sizeof(uint64_t));
          sink.OnMatch(kr, r_ts, PackedTs(s[b]));
        }
      }
      i = i2;
      j = j2;
    }
  }
}

// Packs a tuple chunk into the run buffer and sorts it.
void SortChunk(std::span<const Tuple> input, const ChunkRange& chunk,
               uint64_t* buf, const sort::Options& options) {
  for (size_t i = chunk.begin; i < chunk.end; ++i) {
    buf[i] = PackTuple(input[i]);
  }
  sort::SortPacked(buf + chunk.begin, chunk.size(), options);
}

// Evenly spaced key samples from each sorted run, used to pick MWay's
// splitter keys.
std::vector<uint32_t> SampleSplitterKeys(const uint64_t* buf, size_t n,
                                         int num_threads) {
  std::vector<uint32_t> samples;
  const int per_run = 16;
  for (int t = 0; t < num_threads; ++t) {
    const ChunkRange run = ChunkForThread(n, t, num_threads);
    for (int k = 0; k < per_run; ++k) {
      if (run.size() == 0) continue;
      const size_t pos = run.begin + run.size() * k / per_run;
      samples.push_back(PackedKey(buf[pos]));
    }
  }
  std::sort(samples.begin(), samples.end());
  std::vector<uint32_t> splitters(num_threads + 1, 0);
  splitters[num_threads] = 0xffffffffu;
  for (int t = 1; t < num_threads; ++t) {
    splitters[t] =
        samples.empty()
            ? 0
            : samples[samples.size() * static_cast<size_t>(t) / num_threads];
  }
  // Splitters must be non-decreasing (they are, post-sort).
  return splitters;
}

struct Seg {
  size_t begin;
  size_t end;
};

std::vector<Seg> InitialSegments(size_t n, int num_threads) {
  std::vector<Seg> segs;
  segs.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    const ChunkRange c = ChunkForThread(n, t, num_threads);
    segs.push_back({c.begin, c.end});
  }
  return segs;
}

}  // namespace

template <typename Tracer>
Status SortMergeJoin<Tracer>::Setup(const JoinContext& ctx) {
  // Two packed copies of each relation (sorted runs + merge output).
  const int64_t buf_bytes = static_cast<int64_t>(
      (ctx.r.size() + ctx.s.size()) * 2 * sizeof(uint64_t));
  if (Status s = mem::Preflight(buf_bytes, "sort-merge run buffers");
      !s.ok()) {
    return s;
  }
  const int threads = ctx.spec->num_threads;
  r_buf_.Resize(ctx.r.size());
  s_buf_.Resize(ctx.s.size());
  r_merged_.Resize(ctx.r.size());
  s_merged_.Resize(ctx.s.size());
  splitter_keys_.assign(threads + 1, 0);
  merge_off_r_.assign(threads + 1, 0);
  merge_off_s_.assign(threads + 1, 0);
  probe_split_r_.assign(threads + 1, 0);
  probe_split_s_.assign(threads + 1, 0);
  final_r_ = nullptr;
  final_s_ = nullptr;

  morsel_ = ctx.MorselMode();
  mpass_phases_r_.clear();
  mpass_phases_s_.clear();
  if (morsel_) {
    const size_t t = static_cast<size_t>(threads);
    sort_phase_.Reset(*ctx.scheduler, 2 * t, 1);
    probe_phase_.Reset(*ctx.scheduler, t, 1);
    if (strategy_ == MergeStrategy::kMultiway) {
      merge_phase_.Reset(*ctx.scheduler, t, 1);
    } else {
      // MPass pass structure is deterministic from T: segments halve each
      // pass (plus an odd leftover copy), so every pass's task count is
      // known here — exactly what lets phases be Reset single-threaded.
      for (size_t segs = t; segs > 1;) {
        const size_t jobs = segs / 2;
        const size_t tasks = jobs + (segs % 2);
        mpass_phases_r_.emplace_back();
        mpass_phases_r_.back().Reset(*ctx.scheduler, tasks, 1);
        mpass_phases_s_.emplace_back();
        mpass_phases_s_.back().Reset(*ctx.scheduler, tasks, 1);
        segs = jobs + (segs % 2);
      }
    }
  }
  return Status::Ok();
}

template <typename Tracer>
void SortMergeJoin<Tracer>::Teardown() {
  r_buf_ = mem::TrackedBuffer<uint64_t>();
  s_buf_ = mem::TrackedBuffer<uint64_t>();
  r_merged_ = mem::TrackedBuffer<uint64_t>();
  s_merged_ = mem::TrackedBuffer<uint64_t>();
}

template <typename Tracer>
bool SortMergeJoin<Tracer>::RunMultiwayMergePhase(const JoinContext& ctx,
                                                  int worker,
                                                  PhaseProfile& prof) {
  const int threads = ctx.spec->num_threads;

  // Worker 0 picks splitter keys and computes every worker's merge ranges:
  // within run i, worker t owns [lb(run_i, key_t), lb(run_i, key_{t+1})),
  // and its output starts at the sum of lower bounds across runs.
  if (worker == 0) {
    splitter_keys_ = SampleSplitterKeys(r_buf_.data(), ctx.r.size(), threads);
    for (int t = 0; t <= threads; ++t) {
      size_t off_r = 0, off_s = 0;
      for (int run = 0; run < threads; ++run) {
        const ChunkRange rr = ChunkForThread(ctx.r.size(), run, threads);
        const ChunkRange sr = ChunkForThread(ctx.s.size(), run, threads);
        off_r += LowerBoundKey(r_buf_.data() + rr.begin, rr.size(),
                               splitter_keys_[t]);
        off_s += LowerBoundKey(s_buf_.data() + sr.begin, sr.size(),
                               splitter_keys_[t]);
      }
      merge_off_r_[t] = off_r;
      merge_off_s_[t] = off_s;
    }
    merge_off_r_[threads] = ctx.r.size();
    merge_off_s_[threads] = ctx.s.size();
  }
  if (ctx.AbortRequested()) return true;
  ctx.barrier->arrive_and_wait();

  {
    ScopedPhase merge(&prof, Phase::kMerge);
    // One merge task per splitter range; its claimant multiway-merges that
    // key range of every run into a disjoint output slice, so any worker
    // can execute any task. Static mode keeps task t on worker t.
    const auto merge_side = [&](const mem::TrackedBuffer<uint64_t>& buf,
                                size_t n, uint64_t* out, size_t out_begin,
                                int range) {
      std::vector<sort::Run> runs;
      for (int run = 0; run < threads; ++run) {
        const ChunkRange c = ChunkForThread(n, run, threads);
        const size_t lo = c.begin + LowerBoundKey(buf.data() + c.begin,
                                                  c.size(),
                                                  splitter_keys_[range]);
        const size_t hi =
            c.begin + LowerBoundKey(buf.data() + c.begin, c.size(),
                                    splitter_keys_[range + 1]);
        if (hi > lo) runs.push_back({buf.data() + lo, hi - lo});
      }
      sort::MultiwayMerge(runs, out + out_begin);
    };
    const auto merge_range = [&](int range) {
      merge_side(r_buf_, ctx.r.size(), r_merged_.data(),
                 merge_off_r_[range], range);
      merge_side(s_buf_, ctx.s.size(), s_merged_.data(),
                 merge_off_s_[range], range);
    };
    if (morsel_) {
      ChunkRange task;
      while (merge_phase_.Next(*ctx.scheduler, worker, &task)) {
        if (ctx.Cancelled()) break;
        merge_range(static_cast<int>(task.begin));
      }
    } else {
      merge_range(worker);
    }
  }

  // The last splitter range also covers keys >= splitter[threads-1] up to
  // the sentinel, so the merged arrays are complete and globally sorted.
  if (worker == 0) {
    probe_split_r_ = merge_off_r_;
    probe_split_s_ = merge_off_s_;
    final_r_ = r_merged_.data();
    final_s_ = s_merged_.data();
  }
  if (ctx.AbortRequested()) return true;
  ctx.barrier->arrive_and_wait();
  return false;
}

template <typename Tracer>
bool SortMergeJoin<Tracer>::RunMultiPassMergePhase(const JoinContext& ctx,
                                                   int worker,
                                                   PhaseProfile& prof) {
  const int threads = ctx.spec->num_threads;
  const sort::Options options{ctx.spec->use_simd};

  {
    ScopedPhase merge(&prof, Phase::kMerge);
    // Successive two-way merge passes with a barrier per pass; every worker
    // derives the same segment list deterministically. Returns true when the
    // run was cancelled (barrier already dropped).
    const auto run_passes = [&](size_t n, uint64_t* a, uint64_t* b,
                                std::vector<MorselPhase>& phases,
                                const uint64_t** final_out) -> bool {
      std::vector<Seg> segs = InitialSegments(n, threads);
      uint64_t* src = a;
      uint64_t* dst = b;
      size_t pass = 0;
      while (segs.size() > 1) {
        if (ctx.AbortRequested()) return true;
        const size_t jobs = segs.size() / 2;
        // Task j < jobs merges segments 2j and 2j+1; task jobs (odd pass
        // only) copies the leftover segment through. Output slices are
        // disjoint, so any worker can run any task.
        const auto run_task = [&](size_t j) {
          if (j < jobs) {
            const Seg& x = segs[2 * j];
            const Seg& y = segs[2 * j + 1];
            sort::MergePacked(src + x.begin, x.end - x.begin, src + y.begin,
                              y.end - y.begin, dst + x.begin, options);
          } else {
            const Seg& last = segs.back();
            std::copy(src + last.begin, src + last.end, dst + last.begin);
          }
        };
        if (morsel_) {
          // phases[pass] was sized in Setup from the same segment
          // recurrence, so it holds exactly jobs (+1 when odd) tasks.
          ChunkRange task;
          while (phases[pass].Next(*ctx.scheduler, worker, &task)) {
            if (ctx.Cancelled()) break;
            run_task(task.begin);
          }
        } else {
          for (size_t j = 0; j < jobs; ++j) {
            if (j % static_cast<size_t>(threads) ==
                static_cast<size_t>(worker)) {
              run_task(j);
            }
          }
          // Odd leftover segment: copied through by its deterministic owner.
          if (segs.size() % 2 == 1 &&
              jobs % static_cast<size_t>(threads) ==
                  static_cast<size_t>(worker)) {
            run_task(jobs);
          }
        }
        ++pass;
        std::vector<Seg> next;
        next.reserve(jobs + 1);
        for (size_t j = 0; j < jobs; ++j) {
          next.push_back({segs[2 * j].begin, segs[2 * j + 1].end});
        }
        if (segs.size() % 2 == 1) next.push_back(segs.back());
        segs = std::move(next);
        std::swap(src, dst);
        ctx.barrier->arrive_and_wait();
      }
      *final_out = src;
      return false;
    };
    const uint64_t* final_r = nullptr;
    const uint64_t* final_s = nullptr;
    if (run_passes(ctx.r.size(), r_buf_.data(), r_merged_.data(),
                   mpass_phases_r_, &final_r)) {
      return true;
    }
    if (run_passes(ctx.s.size(), s_buf_.data(), s_merged_.data(),
                   mpass_phases_s_, &final_s)) {
      return true;
    }
    if (worker == 0) {
      final_r_ = final_r;
      final_s_ = final_s;
    }
  }

  if (worker == 0) {
    // Key-aligned probe ranges over the globally sorted arrays.
    probe_split_r_ = KeyAlignedSplits(final_r_, ctx.r.size(), threads);
    for (int t = 1; t < threads; ++t) {
      const size_t pos = probe_split_r_[t];
      probe_split_s_[t] =
          pos < ctx.r.size()
              ? LowerBoundKey(final_s_, ctx.s.size(), PackedKey(final_r_[pos]))
              : ctx.s.size();
    }
    probe_split_s_[0] = 0;
    probe_split_s_[threads] = ctx.s.size();
  }
  if (ctx.AbortRequested()) return true;
  ctx.barrier->arrive_and_wait();
  return false;
}

template <typename Tracer>
void SortMergeJoin<Tracer>::RunWorker(const JoinContext& ctx, int worker) {
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  Tracer tracer = MakeWorkerTracer<Tracer>(ctx, worker);
  const int threads = ctx.spec->num_threads;
  const sort::Options options{ctx.spec->use_simd};

  {
    ScopedPhase wait(&prof, Phase::kWait);
    ctx.WaitUntil(ctx.window_close_ms);
  }
  if (ctx.AbortRequested()) return;

  {
    ScopedPhase sort_phase(&prof, Phase::kSort);
    if (morsel_) {
      // 2T sort tasks: t < T packs+sorts R run t, t >= T the S run t-T. The
      // run layout itself stays the static thread-chunk division (the merge
      // phases depend on it); only the executor of each run is dynamic.
      ChunkRange task;
      while (sort_phase_.Next(*ctx.scheduler, worker, &task)) {
        if (ctx.Cancelled()) break;
        const int t = static_cast<int>(task.begin);
        if (t < threads) {
          SortChunk(ctx.r, ChunkForThread(ctx.r.size(), t, threads),
                    r_buf_.data(), options);
        } else {
          SortChunk(ctx.s, ChunkForThread(ctx.s.size(), t - threads, threads),
                    s_buf_.data(), options);
        }
      }
    } else {
      SortChunk(ctx.r, ChunkForThread(ctx.r.size(), worker, threads),
                r_buf_.data(), options);
      SortChunk(ctx.s, ChunkForThread(ctx.s.size(), worker, threads),
                s_buf_.data(), options);
    }
  }
  if (ctx.AbortRequested()) return;
  ctx.barrier->arrive_and_wait();

  const bool aborted = strategy_ == MergeStrategy::kMultiway
                           ? RunMultiwayMergePhase(ctx, worker, prof)
                           : RunMultiPassMergePhase(ctx, worker, prof);
  if (aborted) return;

  {
    ScopedPhase probe(&prof, Phase::kProbe);
    tracer.SetPhase(Phase::kProbe);
    if (morsel_) {
      ChunkRange task;
      while (probe_phase_.Next(*ctx.scheduler, worker, &task)) {
        if (ctx.Cancelled()) break;
        const size_t t = task.begin;
        MergeJoinRange(ctx, final_r_, probe_split_r_[t],
                       probe_split_r_[t + 1], final_s_, probe_split_s_[t],
                       probe_split_s_[t + 1], sink, tracer);
      }
    } else {
      MergeJoinRange(ctx, final_r_, probe_split_r_[worker],
                     probe_split_r_[worker + 1], final_s_,
                     probe_split_s_[worker], probe_split_s_[worker + 1], sink,
                     tracer);
    }
  }
}

template class SortMergeJoin<NullTracer>;
template class SortMergeJoin<SimTracer>;

std::unique_ptr<JoinAlgorithm> MakeMway() {
  return std::make_unique<SortMergeJoin<NullTracer>>(MergeStrategy::kMultiway);
}
std::unique_ptr<JoinAlgorithm> MakeMpass() {
  return std::make_unique<SortMergeJoin<NullTracer>>(
      MergeStrategy::kMultiPass);
}
std::unique_ptr<JoinAlgorithm> MakeMwayTraced() {
  return std::make_unique<SortMergeJoin<SimTracer>>(MergeStrategy::kMultiway);
}
std::unique_ptr<JoinAlgorithm> MakeMpassTraced() {
  return std::make_unique<SortMergeJoin<SimTracer>>(
      MergeStrategy::kMultiPass);
}

}  // namespace iawj
