#include "src/join/reference.h"

#include <unordered_map>
#include <vector>

#include "src/hash/hash_fn.h"

namespace iawj {

ReferenceResult NestedLoopJoin(std::span<const Tuple> r,
                               std::span<const Tuple> s) {
  // Semantically a nested loop; implemented with a multimap index so test
  // oracles stay usable at interesting sizes.
  std::unordered_map<uint32_t, std::vector<uint32_t>> index;
  index.reserve(r.size());
  for (const Tuple& t : r) index[t.key].push_back(t.ts);

  ReferenceResult result;
  for (const Tuple& t : s) {
    auto it = index.find(t.key);
    if (it == index.end()) continue;
    for (uint32_t r_ts : it->second) {
      ++result.matches;
      result.checksum +=
          Mix64((static_cast<uint64_t>(t.key) << 32) ^
                Mix64((static_cast<uint64_t>(r_ts) << 32) | t.ts));
    }
  }
  return result;
}

}  // namespace iawj
