// No-Partitioning Join (NPJ), Blanas et al. — lazy, hash, shared table.
//
// Both relations split into equisized per-thread portions; all threads
// populate one shared latched hash table with R, synchronize on a barrier,
// then concurrently probe with their portions of S (paper §3.1).
#ifndef IAWJ_JOIN_NPJ_H_
#define IAWJ_JOIN_NPJ_H_

#include <memory>

#include "src/common/kernels.h"
#include "src/hash/concurrent_table.h"
#include "src/hash/lockfree_table.h"
#include "src/join/context.h"
#include "src/partition/range.h"

namespace iawj {

template <typename Tracer = NullTracer>
class NpjJoin : public JoinAlgorithm {
 public:
  std::string_view name() const override { return "NPJ"; }

  Status Setup(const JoinContext& ctx) override {
    plan_ = ResolveKernelPlan(ctx.spec->kernels, Tracer::kEnabled);
    // kernels=lockfree swaps the latched bucket-chain table for the CAS
    // head-pointer table; both preflight their full footprint first.
    const int64_t table_bytes =
        plan_.lockfree_build
            ? LockFreeChainTable<Tracer>::TrackedBytesFor(ctx.r.size())
            : ConcurrentBucketChainTable<Tracer>::TrackedBytesFor(
                  ctx.r.size());
    if (Status s = mem::Preflight(table_bytes, "NPJ shared hash table");
        !s.ok()) {
      return s;
    }
    if (plan_.lockfree_build) {
      lockfree_table_ =
          std::make_unique<LockFreeChainTable<Tracer>>(ctx.r.size());
    } else {
      table_ = std::make_unique<ConcurrentBucketChainTable<Tracer>>(
          ctx.r.size());
    }
    if (ctx.MorselMode()) {
      // Both parallel loops become morsel phases. Sized here, not by worker
      // 0, because the build loop starts straight after the window wait with
      // no barrier in between.
      build_phase_.Reset(*ctx.scheduler, ctx.r.size());
      probe_phase_.Reset(*ctx.scheduler, ctx.s.size());
    }
    return Status::Ok();
  }

  void RunWorker(const JoinContext& ctx, int worker) override;

  void Teardown() override {
    table_.reset();
    lockfree_table_.reset();
  }

 private:
  // The build/probe loops are identical across the two shared-table
  // substrates; RunWorker picks the active one and instantiates this.
  template <typename Table>
  void RunWorkerOn(Table& table, const JoinContext& ctx, int worker);

  KernelPlan plan_;
  std::unique_ptr<ConcurrentBucketChainTable<Tracer>> table_;
  std::unique_ptr<LockFreeChainTable<Tracer>> lockfree_table_;
  MorselPhase build_phase_;
  MorselPhase probe_phase_;
};

// Instantiates the production (NullTracer) variant.
std::unique_ptr<JoinAlgorithm> MakeNpj();
// Instantiates the cache-profiling (SimTracer) variant.
std::unique_ptr<JoinAlgorithm> MakeNpjTraced();

}  // namespace iawj

#endif  // IAWJ_JOIN_NPJ_H_
