// Supervised execution: policy-driven recovery around JoinRunner (ISSUE 3).
//
// PR 2 made every failure a typed Status; this layer turns those clean
// failures into automatic recovery. A supervised run walks up to three
// nested loops:
//
//   1. Retry — re-attempt the identical configuration up to
//      RetryPolicy::max_attempts times, sleeping an exponentially growing,
//      deterministically jittered backoff between attempts. Only transient
//      codes are retried (deadline_exceeded, resource_exhausted, cancelled,
//      internal); deterministic failures (invalid_argument, data_loss,
//      failed_precondition) fail immediately.
//   2. Fallback — once retries are exhausted, degrade the configuration:
//      resource_exhausted falls back to HHJ (the spill-capable hybrid hash
//      join, which completes the window exactly under the same budget by
//      staging cold partitions on disk) and from HHJ to NPJ (the
//      smallest-footprint in-memory algorithm); internal failures go
//      straight to NPJ; deadline_exceeded halves PRJ's radix bits and
//      then the thread count. Every algorithm produces the identical match
//      multiset, so the answer stays exact. Each step restarts the retry
//      budget and is recorded in the result's RecoveryLog.
//   3. Shedding — before any attempt, when a shed watermark is configured,
//      both input streams are thinned by stream.h's deterministic load
//      shedder and the loss is accounted in the log.
//
// When the spec additionally resolves an ingest policy (disorder_slack_ms /
// allowed_lateness_ms / ingest_dedup, stream/disorder.h), both inputs are
// fed through the disorder-tolerant ingestion layer before shedding; the
// stats land on RunResult::ingest and quarantined tuples join the
// bounded-loss accounting (tuples_dropped / est_matches_lost).
//
// Window-level supervision (retry-then-skip with bounded-loss accounting)
// lives in window_pipeline.cc and reuses SuperviseAttempts below.
//
// Zero-overhead contract: nothing here runs unless a policy is configured —
// JoinRunner itself is untouched, and an unconfigured Supervisor::Run is a
// policy resolve (a few getenv calls, once per run, no atomics) plus one
// plain JoinRunner::Run.
#ifndef IAWJ_JOIN_SUPERVISOR_H_
#define IAWJ_JOIN_SUPERVISOR_H_

#include <functional>

#include "src/join/recovery.h"
#include "src/join/runner.h"

namespace iawj {

// True for codes that may vanish on a retry (transient pressure or an
// injected/operator fault), false for deterministic configuration and data
// errors. kInternal is retryable because transient operator crashes —
// including every injected fault — surface as internal.
bool IsRetryableCode(StatusCode code);

struct RetryPolicy {
  int max_attempts = 1;         // total attempts including the first
  double backoff_base_ms = 0;   // backoff before the first retry
  double backoff_multiplier = 2.0;
  double jitter = 0.5;          // +/- fraction of the backoff, from the RNG
};

struct SupervisorPolicy {
  RetryPolicy retry;
  bool fallback = false;       // walk the fallback chain after retries
  int max_fallback_steps = 4;  // chain length bound
  bool skip_failed_windows = false;  // pipelines: skip instead of aborting
  double shed_watermark_per_ms = 0;  // sustainable ingest rate; 0 = off
  double shed_max_lag_ms = 1.0;      // tolerated backlog, in ms at watermark
  uint64_t seed = 42;                // jitter + shed sampling determinism

  bool Enabled() const {
    return retry.max_attempts > 1 || fallback || skip_failed_windows ||
           shed_watermark_per_ms > 0;
  }

  // Resolves the effective policy: spec fields win, then the environment
  // ($IAWJ_RETRY=attempts[:backoff_ms[:multiplier]], $IAWJ_FALLBACK=0|1,
  // $IAWJ_SKIP_WINDOWS=0|1, $IAWJ_SHED_WATERMARK=rate[:lag_ms]), then the
  // all-off defaults. Malformed env values are ignored with a warning —
  // supervision must never be the thing that fails a run.
  static SupervisorPolicy Resolve(const JoinSpec& spec);
};

// One supervised attempt: run `id` under `spec` and return the result.
// Callers inject their execution (plain runner, traced runner, window slice
// with its fault site) so the retry/fallback loop stays reusable.
using AttemptFn =
    std::function<RunResult(AlgorithmId id, const JoinSpec& spec)>;

// Drives the retry + fallback loops around `attempt`, recording every
// recovery action into the returned result's RecoveryLog. The log's
// `attempts` is always >= 1 on return (the run was supervised).
RunResult SuperviseAttempts(AlgorithmId id, const JoinSpec& spec,
                            const SupervisorPolicy& policy,
                            const AttemptFn& attempt);

class Supervisor {
 public:
  Supervisor() = default;
  explicit Supervisor(SupervisorPolicy policy)
      : policy_(policy), has_policy_(true) {}

  // As JoinRunner::Run, but supervised: sheds load when a watermark is
  // configured, then retries / falls back per policy. The result's
  // RecoveryLog records everything that happened; result.algorithm names
  // the algorithm that finally produced the result.
  RunResult Run(AlgorithmId id, const Stream& r, const Stream& s,
                const JoinSpec& spec);

 private:
  SupervisorPolicy policy_;
  bool has_policy_ = false;  // false: resolve from spec + env per run
};

}  // namespace iawj

#endif  // IAWJ_JOIN_SUPERVISOR_H_
