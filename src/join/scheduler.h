// Morsel-driven work-stealing scheduler with NUMA-aware placement.
//
// The paper's skew experiments (Figs. 12-13) show static equal-chunk
// division collapsing when key or timestamp skew concentrates work in a few
// chunks: the loaded worker becomes the critical path while its peers idle
// at the next barrier. Morsel-driven scheduling (Leis et al., HyPer) fixes
// this by splitting every parallel phase into fixed-size morsels that
// workers claim dynamically: each worker owns a contiguous range of morsel
// indices, pops from the back of its own range (LIFO — the most recently
// deferred morsel is the cache-warmest), and when its range is dry steals
// from the front of a victim's range (FIFO — the coldest morsel, which the
// victim was furthest from reaching). Victims are tried in a per-worker
// randomized order that lists same-NUMA-node workers first; remote nodes
// are only raided when the local node is completely dry, keeping morsel
// data traffic node-local as long as any local work remains.
//
// The claim structure is deliberately minimal: one atomic uint64 per worker
// packing (begin << 32 | end) over morsel indices. Owner pops CAS end-1,
// thieves CAS begin+1; ranges only ever shrink, so there is no ABA problem
// and no blocking anywhere — a worker that parks forever (the worker_stall
// fault) simply leaves its range to be drained by thieves, and Next()
// terminates for everyone else because one full sweep over all-empty ranges
// proves the phase is dry.
//
// Selection mirrors the kernel knob (common/kernels.h):
//   JoinSpec::scheduler = kAuto defers to $IAWJ_SCHEDULER, and anything
//   still unresolved defaults to kStatic — the paper-faithful baseline.
//   Morsel size: JoinSpec::morsel_size, then $IAWJ_MORSEL_SIZE, then
//   kDefaultMorselSize tuples.
#ifndef IAWJ_JOIN_SCHEDULER_H_
#define IAWJ_JOIN_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/partition/range.h"

namespace iawj {

enum class SchedulerMode { kAuto, kStatic, kMorsel };

inline constexpr SchedulerMode kAllSchedulerModes[] = {
    SchedulerMode::kAuto, SchedulerMode::kStatic, SchedulerMode::kMorsel};

// Morsels this size balance claim overhead against balance granularity:
// 16K 8-byte tuples = 128 KiB, a few L2s' worth of work per claim.
inline constexpr size_t kDefaultMorselSize = 16384;

std::string_view SchedulerModeName(SchedulerMode mode);

// Parses "auto" / "static" / "morsel"; returns false (and leaves *mode
// untouched) on anything else.
bool ParseSchedulerMode(std::string_view text, SchedulerMode* mode);

// $IAWJ_SCHEDULER, or kAuto when unset/unparseable (a bad value warns once).
SchedulerMode SchedulerModeFromEnv();

// Resolves the spec-level knob to the mode a run executes: an explicit mode
// wins, kAuto defers to the environment, and an environment that is unset
// (or itself says "auto") resolves to kStatic. Never returns kAuto.
SchedulerMode ResolveSchedulerMode(SchedulerMode spec_mode);

// Morsel size for a run: spec value if > 0, else $IAWJ_MORSEL_SIZE if > 0,
// else kDefaultMorselSize.
size_t ResolveMorselSize(size_t spec_morsel_size);

// Per-worker scheduling counters, cache-line padded so the hot claim loop
// never false-shares. `tuples` counts work units — tuples for tuple-range
// phases, tasks for task phases (partition joins, merge jobs).
struct alignas(64) MorselStats {
  uint64_t morsels = 0;        // morsels this worker executed
  uint64_t tuples = 0;         // work units inside those morsels
  uint64_t steals = 0;         // morsels taken from another worker's range
  uint64_t steal_misses = 0;   // victims found empty during steal sweeps
  uint64_t remote_steals = 0;  // steals that crossed a NUMA node boundary

  void Add(const MorselStats& o) {
    morsels += o.morsels;
    tuples += o.tuples;
    steals += o.steals;
    steal_misses += o.steal_misses;
    remote_steals += o.remote_steals;
  }
};

class MorselPhase;

// Per-run scheduler state: the resolved mode, morsel size, worker->NUMA-node
// placement, per-worker steal orders and counters. Owned by the runner,
// pointed to from JoinContext; algorithms consult it in Setup to size their
// phases and in RunWorker to claim morsels.
class MorselScheduler {
 public:
  MorselScheduler(int num_workers, SchedulerMode spec_mode,
                  size_t spec_morsel_size);

  bool enabled() const { return mode_ == SchedulerMode::kMorsel; }
  SchedulerMode mode() const { return mode_; }
  size_t morsel_size() const { return morsel_size_; }
  int num_workers() const { return num_workers_; }
  int num_nodes() const { return num_nodes_; }
  int node_of(int worker) const {
    return node_of_worker_[static_cast<size_t>(worker)];
  }

  MorselStats& stats(int worker) {
    return stats_[static_cast<size_t>(worker)];
  }
  const MorselStats& stats(int worker) const {
    return stats_[static_cast<size_t>(worker)];
  }
  MorselStats Totals() const;

  // Steal order for `worker`: every other worker exactly once, same-node
  // victims (in seeded-shuffled order) before remote ones. Deterministic
  // for a given (num_workers, topology) pair.
  const std::vector<int>& victim_order(int worker) const {
    return victim_order_[static_cast<size_t>(worker)];
  }

 private:
  SchedulerMode mode_;
  size_t morsel_size_;
  int num_workers_;
  int num_nodes_;
  std::vector<int> node_of_worker_;
  std::vector<std::vector<int>> victim_order_;
  std::vector<MorselStats> stats_;
};

// One parallel phase's worth of morsels. Reset() is single-threaded
// (called from the algorithm's Setup, before workers exist); Next() is the
// concurrent claim path.
class MorselPhase {
 public:
  // Splits [0, total) work units into ceil(total / morsel_size) morsels and
  // deals contiguous morsel-index ranges to the scheduler's workers — the
  // same initial assignment static chunking would make, so with zero steals
  // every worker touches exactly the data it would have anyway (and NUMA
  // first-touch locality is preserved). morsel_size == 1 turns the phase
  // into a plain dynamic task queue (used for per-partition joins, merge
  // jobs, and sort/merge task lists).
  void Reset(const MorselScheduler& sched, size_t total, size_t morsel_size);

  // Convenience: Reset with the scheduler's resolved tuple morsel size.
  void Reset(const MorselScheduler& sched, size_t total) {
    Reset(sched, total, sched.morsel_size());
  }

  // Claims the next morsel for `worker`: its own range back-to-front first,
  // then steals front-to-back along sched.victim_order(worker). Returns
  // false when the phase is drained (ranges only shrink, so one sweep over
  // all-empty ranges is proof). Updates sched.stats(worker). Never blocks.
  bool Next(MorselScheduler& sched, int worker, ChunkRange* out);

  size_t num_morsels() const { return num_morsels_; }

 private:
  struct alignas(64) PackedRange {
    std::atomic<uint64_t> bits{0};  // begin << 32 | end, morsel indices
  };

  ChunkRange MorselRange(size_t morsel) const {
    const size_t begin = morsel * morsel_size_;
    const size_t end = begin + morsel_size_;
    return {begin, end < total_ ? end : total_};
  }

  // Pops the back of `range` (owner side). Returns false when empty.
  static bool PopBack(PackedRange& range, uint64_t* morsel);
  // Takes the front of `range` (thief side). Returns false when empty.
  static bool TakeFront(PackedRange& range, uint64_t* morsel);

  size_t total_ = 0;
  size_t morsel_size_ = 1;
  size_t num_morsels_ = 0;
  int num_workers_ = 0;
  std::unique_ptr<PackedRange[]> ranges_;
};

// First-claimant morsel ownership for the eager pull loop. Eager workers
// all scan the shared S stream in arrival order; the static JM/JB schemes
// assign the seq-th tuple to worker seq % lane-count, which under timestamp
// skew leaves a stalled worker's tuples unprocessed until it catches up.
// In morsel mode, S is instead claimed in morsels by the first qualifying
// worker to reach them: claim[lane][seq / morsel_size] is CAS'd from -1 to
// the claimant's worker id. For JM there is one lane (all workers qualify);
// for JB the lane is the key group and only that group's members qualify —
// content-sensitive routing is preserved, only the within-group assignment
// becomes dynamic. A claim by a worker other than the morsel's round-robin
// home lane counts as a steal.
class ClaimGrid {
 public:
  void Reset(size_t total, size_t morsel_size, int num_lanes);

  size_t morsel_of(uint64_t seq) const { return seq / morsel_size_; }
  size_t num_morsels() const { return num_morsels_; }
  size_t morsel_size() const { return morsel_size_; }

  // Resolves ownership of (lane, morsel): the first caller CAS-installs
  // itself, later callers observe the winner. Returns the owning worker id.
  int Claim(int lane, size_t morsel, int worker);

 private:
  size_t morsel_size_ = 1;
  size_t num_morsels_ = 0;
  int num_lanes_ = 1;
  std::unique_ptr<std::atomic<int32_t>[]> claims_;
};

}  // namespace iawj

#endif  // IAWJ_JOIN_SCHEDULER_H_
