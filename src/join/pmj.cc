#include "src/join/pmj.h"

#include <algorithm>

namespace iawj {

namespace {

// Duplicate-aware merge join over two sorted packed arrays, emitting
// (key, r_ts, s_ts) for every pair whose `accept` predicate passes.
template <typename Tracer, typename Accept>
void MergeJoinSorted(const uint64_t* r, size_t nr, const uint64_t* s,
                     size_t ns, MatchSink& sink, Tracer& tracer,
                     Accept&& accept) {
  size_t i = 0, j = 0;
  while (i < nr && j < ns) {
    tracer.Access(&r[i], sizeof(uint64_t));
    tracer.Access(&s[j], sizeof(uint64_t));
    const uint32_t kr = PackedKey(r[i]);
    const uint32_t ks = PackedKey(s[j]);
    if (kr < ks) {
      ++i;
    } else if (kr > ks) {
      ++j;
    } else {
      size_t i2 = i;
      while (i2 < nr && PackedKey(r[i2]) == kr) ++i2;
      size_t j2 = j;
      while (j2 < ns && PackedKey(s[j2]) == ks) ++j2;
      for (size_t a = i; a < i2; ++a) {
        for (size_t b = j; b < j2; ++b) {
          if (accept(a, b)) {
            sink.OnMatch(kr, PackedTs(r[a]), PackedTs(s[b]));
          }
        }
      }
      i = i2;
      j = j2;
    }
  }
}

}  // namespace

template <typename Tracer>
PmjState<Tracer>::PmjState(const EagerStateConfig& config, Tracer tracer)
    : run_threshold_(std::max<uint64_t>(
          64, static_cast<uint64_t>(
                  config.pmj_delta * static_cast<double>(config.expected_r +
                                                         config.expected_s)))),
      sort_options_{config.use_simd},
      tracer_(std::move(tracer)) {}

template <typename Tracer>
void PmjState<Tracer>::OnR(const Tuple& r, MatchSink& sink,
                           PhaseStopwatch& sw) {
  sw.Switch(Phase::kBuild);
  cur_r_.PushBack(PackTuple(r));
  MaybeSealRun(sink, sw);
}

template <typename Tracer>
void PmjState<Tracer>::OnS(const Tuple& s, MatchSink& sink,
                           PhaseStopwatch& sw) {
  sw.Switch(Phase::kBuild);
  cur_s_.PushBack(PackTuple(s));
  MaybeSealRun(sink, sw);
}

template <typename Tracer>
void PmjState<Tracer>::MaybeSealRun(MatchSink& sink, PhaseStopwatch& sw) {
  if (cur_r_.size() + cur_s_.size() >= run_threshold_) {
    SealRun(sink, sw);
  }
}

template <typename Tracer>
void PmjState<Tracer>::SealRun(MatchSink& sink, PhaseStopwatch& sw) {
  if (cur_r_.empty() && cur_s_.empty()) return;

  sw.Switch(Phase::kSort);
  sort::SortPacked(cur_r_.data(), cur_r_.size(), sort_options_);
  sort::SortPacked(cur_s_.data(), cur_s_.size(), sort_options_);

  // Intra-run matches are delivered immediately — PMJ's progressiveness.
  sw.Switch(Phase::kProbe);
  tracer_.SetPhase(Phase::kProbe);
  MergeJoinSorted(cur_r_.data(), cur_r_.size(), cur_s_.data(), cur_s_.size(),
                  sink, tracer_, [](size_t, size_t) { return true; });

  runs_r_.push_back(std::move(cur_r_));
  runs_s_.push_back(std::move(cur_s_));
  cur_r_ = mem::TrackedBuffer<uint64_t>();
  cur_s_ = mem::TrackedBuffer<uint64_t>();
}

template <typename Tracer>
void PmjState<Tracer>::Finish(MatchSink& sink, PhaseStopwatch& sw) {
  SealRun(sink, sw);
  if (runs_r_.empty()) return;
  if (runs_r_.size() == 1) return;  // every pair was intra-run

  // Merge phase: combine all runs (values + run tags) for each side.
  sw.Switch(Phase::kMerge);
  size_t total_r = 0, total_s = 0;
  std::vector<sort::Run> rr, sr;
  for (const auto& run : runs_r_) {
    rr.push_back({run.data(), run.size()});
    total_r += run.size();
  }
  for (const auto& run : runs_s_) {
    sr.push_back({run.data(), run.size()});
    total_s += run.size();
  }
  mem::TrackedBuffer<uint64_t> rv(total_r), sv(total_s);
  std::vector<uint32_t> rt(total_r), st(total_s);
  sort::MultiwayMergeTagged(rr, rv.data(), rt.data());
  sort::MultiwayMergeTagged(sr, sv.data(), st.data());

  // Cross-run matches only; intra-run pairs were emitted at seal time.
  sw.Switch(Phase::kProbe);
  tracer_.SetPhase(Phase::kProbe);
  MergeJoinSorted(rv.data(), total_r, sv.data(), total_s, sink, tracer_,
                  [&](size_t a, size_t b) { return rt[a] != st[b]; });
}

template class PmjState<NullTracer>;
template class PmjState<SimTracer>;

}  // namespace iawj
