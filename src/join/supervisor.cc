#include "src/join/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/profiling/metrics.h"
#include "src/stream/disorder.h"

namespace iawj {

namespace {

// Publishes one finished supervision episode into the live metrics registry
// (profiling/metrics.h) so recovery activity is visible without parsing run
// records. One relaxed load when metrics are off.
void PublishRecoveryMetrics(const RecoveryLog& log) {
  if (!metrics::Enabled()) return;
  static metrics::Counter* retries =
      metrics::GetCounter("supervisor.retries");
  static metrics::Counter* fallbacks =
      metrics::GetCounter("supervisor.fallbacks");
  static metrics::Counter* windows_skipped =
      metrics::GetCounter("supervisor.windows_skipped");
  static metrics::Counter* tuples_shed =
      metrics::GetCounter("supervisor.tuples_shed");
  if (retries != nullptr && log.attempts > 1) {
    retries->Add(static_cast<uint64_t>(log.attempts - 1));
  }
  if (fallbacks != nullptr && log.fallbacks_taken > 0) {
    fallbacks->Add(static_cast<uint64_t>(log.fallbacks_taken));
  }
  if (windows_skipped != nullptr && log.windows_skipped > 0) {
    windows_skipped->Add(log.windows_skipped);
  }
  if (tuples_shed != nullptr && log.tuples_shed > 0) {
    tuples_shed->Add(log.tuples_shed);
  }
}

}  // namespace

std::string_view RecoveryActionName(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kRetry:
      return "retry";
    case RecoveryAction::kFallbackAlgorithm:
      return "fallback_algorithm";
    case RecoveryAction::kHalveThreads:
      return "halve_threads";
    case RecoveryAction::kHalveRadixBits:
      return "halve_radix_bits";
    case RecoveryAction::kSkipWindow:
      return "skip_window";
    case RecoveryAction::kShedLoad:
      return "shed_load";
    case RecoveryAction::kQuarantine:
      return "quarantine";
  }
  return "?";
}

bool IsRetryableCode(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

namespace {

// Parses "a[:b[:c]]" of doubles; returns how many fields parsed (0 = bad).
int ParseColonDoubles(const char* text, double out[3]) {
  int n = 0;
  const char* p = text;
  while (n < 3) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) return 0;
    out[n++] = v;
    if (*end == '\0') return n;
    if (*end != ':') return 0;
    p = end + 1;
  }
  return n;
}

bool EnvBool(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Deterministic exponential backoff with jitter: attempt 1 sleeps ~base,
// attempt 2 ~base*multiplier, ... each +/- jitter fraction drawn from the
// seeded RNG, so a rerun with the same seed sleeps the same schedule.
double BackoffMs(const RetryPolicy& retry, int retry_index, Rng* rng) {
  if (retry.backoff_base_ms <= 0) return 0;
  double backoff = retry.backoff_base_ms;
  for (int i = 1; i < retry_index; ++i) backoff *= retry.backoff_multiplier;
  const double jitter = std::clamp(retry.jitter, 0.0, 1.0);
  // Uniform in [1 - jitter, 1 + jitter).
  return backoff * (1.0 - jitter + 2.0 * jitter * rng->NextDouble());
}

struct FallbackStep {
  RecoveryAction action;
  AlgorithmId id;
  JoinSpec spec;
  std::string detail;
};

// The fallback chain: status code x current configuration -> next, cheaper
// configuration, or nullopt when nothing cheaper is left (DESIGN.md
// "Supervision & recovery policy" documents the full table).
std::optional<FallbackStep> NextFallback(AlgorithmId id, const JoinSpec& spec,
                                         StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:
      // Memory pressure: spill before shrinking. HHJ (join/hhj.h) keeps the
      // hot partitions resident and stages the rest on disk, so the window
      // completes exactly under the same budget that just breached. Should
      // HHJ itself exhaust a resource (disk full, budget too small even for
      // spill buffers), degrade once more to NPJ, the smallest-footprint
      // in-memory algorithm; NPJ has nowhere further to go. Every step
      // emits the identical match multiset — the answer stays exact.
      if (id != AlgorithmId::kHhj && id != AlgorithmId::kNpj) {
        FallbackStep step{RecoveryAction::kFallbackAlgorithm,
                          AlgorithmId::kHhj, spec,
                          std::string(AlgorithmName(id)) + " -> HHJ (spill)"};
        return step;
      }
      if (id == AlgorithmId::kHhj) {
        FallbackStep step{RecoveryAction::kFallbackAlgorithm,
                          AlgorithmId::kNpj, spec, "HHJ -> NPJ"};
        return step;
      }
      return std::nullopt;
    case StatusCode::kInternal:
      // A transient operator failure: degrade straight to NPJ — the failure
      // was not about memory, so the spill machinery buys nothing.
      if (id != AlgorithmId::kNpj) {
        FallbackStep step{RecoveryAction::kFallbackAlgorithm,
                          AlgorithmId::kNpj, spec,
                          std::string(AlgorithmName(id)) + " -> NPJ"};
        return step;
      }
      return std::nullopt;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      // Time pressure: cheapen PRJ's partitioning first, then shrink the
      // worker pool (on an oversubscribed host fewer workers finish
      // sooner; JB needs its group size to keep dividing the pool).
      if (id == AlgorithmId::kPrj && spec.radix_bits > 4) {
        FallbackStep step{RecoveryAction::kHalveRadixBits, id, spec, ""};
        step.spec.radix_bits = spec.radix_bits / 2;
        step.detail = "radix_bits " + std::to_string(spec.radix_bits) +
                      " -> " + std::to_string(step.spec.radix_bits);
        return step;
      }
      if (spec.num_threads > 1) {
        FallbackStep step{RecoveryAction::kHalveThreads, id, spec, ""};
        step.spec.num_threads = spec.num_threads / 2;
        if ((id == AlgorithmId::kShjJb || id == AlgorithmId::kPmjJb) &&
            !step.spec.Validate(id).ok()) {
          // Halving broke the JB grouping; shrink the group with the pool.
          step.spec.jb_group_size = 1;
        }
        step.detail = "threads " + std::to_string(spec.num_threads) + " -> " +
                      std::to_string(step.spec.num_threads);
        return step;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace

SupervisorPolicy SupervisorPolicy::Resolve(const JoinSpec& spec) {
  SupervisorPolicy policy;
  policy.seed = spec.supervisor_seed;

  // Retry: spec wins, then $IAWJ_RETRY=attempts[:backoff_ms[:multiplier]].
  if (spec.retry_max_attempts > 0) {
    policy.retry.max_attempts = spec.retry_max_attempts;
  } else if (const char* env = std::getenv("IAWJ_RETRY")) {
    double v[3];
    const int n = ParseColonDoubles(env, v);
    if (n >= 1 && v[0] >= 1) {
      policy.retry.max_attempts = static_cast<int>(v[0]);
      if (n >= 2 && v[1] >= 0) policy.retry.backoff_base_ms = v[1];
      if (n >= 3 && v[2] >= 1) policy.retry.backoff_multiplier = v[2];
    } else if (env[0] != '\0') {
      IAWJ_LOG(Warning) << "ignoring malformed IAWJ_RETRY='" << env
                        << "' (want attempts[:backoff_ms[:multiplier]])";
    }
  }
  if (spec.retry_backoff_ms >= 0) {
    policy.retry.backoff_base_ms = spec.retry_backoff_ms;
  }

  policy.fallback = spec.fallback_enabled || EnvBool("IAWJ_FALLBACK");
  policy.skip_failed_windows =
      spec.skip_failed_windows || EnvBool("IAWJ_SKIP_WINDOWS");

  // Shedding: spec wins (negative = explicitly off), then
  // $IAWJ_SHED_WATERMARK=rate_per_ms[:max_lag_ms].
  if (spec.shed_watermark_per_ms > 0) {
    policy.shed_watermark_per_ms = spec.shed_watermark_per_ms;
  } else if (spec.shed_watermark_per_ms == 0) {
    if (const char* env = std::getenv("IAWJ_SHED_WATERMARK")) {
      double v[3];
      const int n = ParseColonDoubles(env, v);
      if (n >= 1 && v[0] > 0) {
        policy.shed_watermark_per_ms = v[0];
        if (n >= 2 && v[1] >= 0) policy.shed_max_lag_ms = v[1];
      } else if (env[0] != '\0') {
        IAWJ_LOG(Warning) << "ignoring malformed IAWJ_SHED_WATERMARK='" << env
                          << "' (want rate_per_ms[:max_lag_ms])";
      }
    }
  }
  return policy;
}

RunResult SuperviseAttempts(AlgorithmId id, const JoinSpec& spec,
                            const SupervisorPolicy& policy,
                            const AttemptFn& attempt) {
  Rng rng(policy.seed);
  RecoveryLog log;
  const int max_attempts = std::max(1, policy.retry.max_attempts);

  AlgorithmId current_id = id;
  JoinSpec current_spec = spec;
  RunResult result;
  for (int step = 0;; ++step) {
    for (int a = 1; a <= max_attempts; ++a) {
      ++log.attempts;
      result = attempt(current_id, current_spec);
      if (result.status.ok()) {
        PublishRecoveryMetrics(log);
        result.recovery = std::move(log);
        return result;
      }
      if (a == max_attempts || !IsRetryableCode(result.status.code())) break;
      const double backoff = BackoffMs(policy.retry, a, &rng);
      log.events.push_back({RecoveryAction::kRetry, result.status.code(),
                            log.attempts,
                            "attempt " + std::to_string(log.attempts) +
                                " failed: " +
                                std::string(
                                    StatusCodeName(result.status.code())),
                            backoff});
      if (backoff > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
    }
    if (!policy.fallback || step >= policy.max_fallback_steps ||
        !IsRetryableCode(result.status.code())) {
      break;
    }
    const auto next =
        NextFallback(current_id, current_spec, result.status.code());
    if (!next.has_value()) break;
    log.events.push_back({next->action, result.status.code(), log.attempts,
                          next->detail, 0});
    ++log.fallbacks_taken;
    current_id = next->id;
    current_spec = next->spec;
  }
  PublishRecoveryMetrics(log);
  result.recovery = std::move(log);
  return result;
}

RunResult Supervisor::Run(AlgorithmId id, const Stream& r, const Stream& s,
                          const JoinSpec& spec) {
  const SupervisorPolicy policy =
      has_policy_ ? policy_ : SupervisorPolicy::Resolve(spec);
  const IngestPolicy ingest_policy = IngestPolicy::Resolve(
      spec.disorder_slack_ms, spec.allowed_lateness_ms, spec.ingest_dedup);
  JoinRunner runner;
  if (!policy.Enabled() && !ingest_policy.Enabled()) {
    return runner.Run(id, r, s, spec);
  }

  // Ingestion first: restore ts order through the reorder buffer +
  // watermark + quarantine (stream/disorder.h) so every later stage — the
  // shedder's backlog model, windowing, the algorithms' sorted-stream
  // assumption — sees an honest ordered stream.
  const Stream* run_r = &r;
  const Stream* run_s = &s;
  Stream ingested_r, ingested_s;
  IngestStats ingest_stats;
  if (ingest_policy.Enabled()) {
    IngestResult in_r = IngestStream(r, ingest_policy);
    IngestResult in_s = IngestStream(s, ingest_policy);
    ingest_stats = in_r.stats;
    ingest_stats.Merge(in_s.stats);
    ingested_r = std::move(in_r.stream);
    ingested_s = std::move(in_s.stream);
    run_r = &ingested_r;
    run_s = &ingested_s;
    PublishIngestMetrics(ingest_stats);
  }

  // Overload shedding next, so every attempt sees the same thinned input
  // (deterministic: same watermark + seed => same surviving tuples).
  ShedResult shed_r, shed_s;
  RecoveryLog shed_log;
  if (policy.shed_watermark_per_ms > 0) {
    shed_r = ShedToWatermark(*run_r, policy.shed_watermark_per_ms,
                             policy.shed_max_lag_ms, policy.seed);
    shed_s = ShedToWatermark(*run_s, policy.shed_watermark_per_ms,
                             policy.shed_max_lag_ms, policy.seed + 1);
    run_r = &shed_r.stream;
    run_s = &shed_s.stream;
    shed_log.tuples_shed = shed_r.tuples_shed + shed_s.tuples_shed;
    const uint64_t in = shed_r.tuples_in + shed_s.tuples_in;
    shed_log.shed_ratio =
        in > 0 ? static_cast<double>(shed_log.tuples_shed) /
                     static_cast<double>(in)
               : 0;
    if (shed_log.tuples_shed > 0) {
      shed_log.events.push_back(
          {RecoveryAction::kShedLoad, StatusCode::kOk, 0,
           "shed " + std::to_string(shed_log.tuples_shed) + " of " +
               std::to_string(in) + " tuples at watermark " +
               std::to_string(policy.shed_watermark_per_ms) + "/ms",
           0});
    }
  }

  RunResult result =
      policy.Enabled()
          ? SuperviseAttempts(
                id, spec, policy,
                [&](AlgorithmId attempt_id, const JoinSpec& attempt_spec) {
                  return runner.Run(attempt_id, *run_r, *run_s, attempt_spec);
                })
          : runner.Run(id, *run_r, *run_s, spec);
  if (shed_log.tuples_shed > 0) {
    PublishRecoveryMetrics(shed_log);
    result.recovery.Merge(shed_log);
  }
  if (ingest_stats.any()) {
    result.ingest = ingest_stats;
    const uint64_t quarantined = ingest_stats.quarantined();
    if (quarantined > 0) {
      // Quarantined tuples are bounded loss: count them and extrapolate
      // the matches they would have produced from this run's match rate.
      RecoveryLog quarantine_log;
      const double rate = result.inputs > 0
                              ? static_cast<double>(result.matches) /
                                    static_cast<double>(result.inputs)
                              : 0;
      quarantine_log.tuples_dropped = quarantined;
      quarantine_log.est_matches_lost =
          rate * static_cast<double>(quarantined);
      quarantine_log.events.push_back(
          {RecoveryAction::kQuarantine, StatusCode::kOk, 0,
           "ingest quarantined " + std::to_string(quarantined) + " tuples (" +
               std::to_string(ingest_stats.late_dropped) + " late, " +
               std::to_string(ingest_stats.duplicates) + " duplicate, " +
               std::to_string(ingest_stats.corrupt) + " corrupt)",
           0});
      result.recovery.Merge(quarantine_log);
    }
  }
  return result;
}

}  // namespace iawj
