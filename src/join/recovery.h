// Recovery accounting for supervised execution (ISSUE 3).
//
// Every supervised run carries a RecoveryLog describing what the supervisor
// had to do to produce the result: retries taken, fallback steps walked,
// windows skipped with their bounded-loss accounting, and tuples shed under
// overload. An untouched log (the default) is all zeros with no events —
// no allocation, no atomics — so unsupervised runs pay nothing for it.
//
// Two summary predicates matter downstream (CLI exit codes, run records):
//   recovered() — the run needed intervention but the final result is
//                 complete (retries/fallbacks only; all algorithms produce
//                 the identical match multiset, so an algorithm fallback
//                 still yields the exact answer);
//   degraded()  — data was lost in a bounded, accounted way (windows
//                 skipped, tuples shed, or tuples quarantined by the
//                 ingest layer), so the result is approximate.
#ifndef IAWJ_JOIN_RECOVERY_H_
#define IAWJ_JOIN_RECOVERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace iawj {

enum class RecoveryAction {
  kRetry,              // same configuration, one more attempt
  kFallbackAlgorithm,  // e.g. PRJ -> NPJ after resource_exhausted
  kHalveThreads,       // deadline pressure: fewer workers
  kHalveRadixBits,     // deadline pressure on PRJ: cheaper partitioning
  kSkipWindow,         // pipeline gave up on one window (bounded loss)
  kShedLoad,           // overload shedding before execution (bounded loss)
  kQuarantine,         // ingest quarantined tuples (late/dup/corrupt loss)
};

std::string_view RecoveryActionName(RecoveryAction action);

struct RecoveryEvent {
  RecoveryAction action = RecoveryAction::kRetry;
  StatusCode trigger = StatusCode::kOk;  // failure code that provoked it
  int attempt = 0;      // global attempt number that failed (1-based)
  std::string detail;   // human-readable, e.g. "PRJ -> NPJ", "threads 4 -> 2"
  double backoff_ms = 0;  // slept before the next attempt (retries only)
};

struct RecoveryLog {
  std::vector<RecoveryEvent> events;

  // Attempts consumed to reach the final outcome; 0 = unsupervised run
  // (no supervision policy was in effect, nothing was counted).
  int attempts = 0;
  int fallbacks_taken = 0;

  // Bounded-loss accounting. tuples_dropped counts the skipped windows'
  // input tuples plus tuples the ingest layer quarantined (dropped-late,
  // duplicate, corrupt — stream/disorder.h); est_matches_lost extrapolates
  // the matches they would have produced (see window_pipeline.cc and
  // supervisor.cc for the estimators).
  uint64_t windows_skipped = 0;
  uint64_t tuples_dropped = 0;
  double est_matches_lost = 0;

  // Overload shedding (stream.h ShedToWatermark), both streams combined.
  uint64_t tuples_shed = 0;
  double shed_ratio = 0;

  bool recovered() const { return attempts > 1 || fallbacks_taken > 0; }
  bool degraded() const {
    return windows_skipped > 0 || tuples_shed > 0 || tuples_dropped > 0;
  }
  bool empty() const {
    return events.empty() && attempts <= 1 && fallbacks_taken == 0 &&
           !degraded();
  }

  // Folds `other` into this log (pipeline aggregation across windows).
  void Merge(const RecoveryLog& other) {
    events.insert(events.end(), other.events.begin(), other.events.end());
    attempts += other.attempts;
    fallbacks_taken += other.fallbacks_taken;
    windows_skipped += other.windows_skipped;
    tuples_dropped += other.tuples_dropped;
    est_matches_lost += other.est_matches_lost;
    tuples_shed += other.tuples_shed;
    if (other.tuples_shed > 0) shed_ratio = other.shed_ratio;
  }
};

}  // namespace iawj

#endif  // IAWJ_JOIN_RECOVERY_H_
