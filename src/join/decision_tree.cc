#include "src/join/decision_tree.h"

namespace iawj {

RateClass ClassifyRate(double tuples_per_ms,
                       const DecisionThresholds& thresholds) {
  if (tuples_per_ms < thresholds.low_rate_per_ms) return RateClass::kLow;
  if (tuples_per_ms < thresholds.high_rate_per_ms) return RateClass::kMedium;
  return RateClass::kHigh;
}

Level ClassifyDuplication(double dupe, const DecisionThresholds& thresholds) {
  return dupe > thresholds.high_duplication ? Level::kHigh : Level::kLow;
}

WorkloadProfile ProfileFromStats(const StreamStats& r, const StreamStats& s,
                                 const DecisionThresholds& thresholds) {
  WorkloadProfile profile;
  profile.rate_r = ClassifyRate(r.arrival_rate_per_ms, thresholds);
  profile.rate_s = ClassifyRate(s.arrival_rate_per_ms, thresholds);
  profile.key_duplication = ClassifyDuplication(
      std::max(r.avg_duplicates_per_key, s.avg_duplicates_per_key),
      thresholds);
  profile.key_skew =
      std::max(r.key_zipf_estimate, s.key_zipf_estimate) >
              thresholds.high_key_skew
          ? Level::kHigh
          : Level::kLow;
  profile.input_size = r.num_tuples + s.num_tuples > thresholds.large_input
                           ? Level::kHigh
                           : Level::kLow;
  return profile;
}

namespace {

// "When the key duplication is high, MPass and MWay are better options and
// MPass scales better with a large core count. When the key duplication is
// low, NPJ and PRJ are more effective, and PRJ performs better when the key
// [skewness] is low and the number of tuples to join is large."
AlgorithmId PickLazy(const WorkloadProfile& profile,
                     const HardwareProfile& hardware,
                     const DecisionThresholds& thresholds) {
  if (profile.key_duplication == Level::kHigh) {
    return hardware.num_cores >= thresholds.large_core_count
               ? AlgorithmId::kMpass
               : AlgorithmId::kMway;
  }
  if (profile.key_skew == Level::kLow && profile.input_size == Level::kHigh) {
    return AlgorithmId::kPrj;
  }
  return AlgorithmId::kNpj;
}

}  // namespace

AlgorithmId RecommendAlgorithm(const WorkloadProfile& profile,
                               Objective objective,
                               const HardwareProfile& hardware,
                               const DecisionThresholds& thresholds) {
  // "We recommend SHJ-JM whenever one input stream has low arrival rate."
  if (profile.rate_r == RateClass::kLow || profile.rate_s == RateClass::kLow) {
    return AlgorithmId::kShjJm;
  }

  // "We recommend the lazy approach when arrival rates are high."
  const bool both_high = profile.rate_r == RateClass::kHigh &&
                         profile.rate_s == RateClass::kHigh;
  if (both_high) {
    return PickLazy(profile, hardware, thresholds);
  }

  // Medium arrival rate: throughput wants the lazy approach; latency and
  // progressiveness want PMJ-JB under high duplication, SHJ-JM otherwise.
  if (objective == Objective::kThroughput) {
    return PickLazy(profile, hardware, thresholds);
  }
  return profile.key_duplication == Level::kHigh ? AlgorithmId::kPmjJb
                                                 : AlgorithmId::kShjJm;
}

}  // namespace iawj
