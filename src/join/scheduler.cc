#include "src/join/scheduler.h"

#include <cstdlib>

#include "src/common/affinity.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace iawj {

std::string_view SchedulerModeName(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kAuto:
      return "auto";
    case SchedulerMode::kStatic:
      return "static";
    case SchedulerMode::kMorsel:
      return "morsel";
  }
  return "?";
}

bool ParseSchedulerMode(std::string_view text, SchedulerMode* mode) {
  for (SchedulerMode candidate : kAllSchedulerModes) {
    if (text == SchedulerModeName(candidate)) {
      *mode = candidate;
      return true;
    }
  }
  return false;
}

SchedulerMode SchedulerModeFromEnv() {
  const char* env = std::getenv("IAWJ_SCHEDULER");
  if (env == nullptr || *env == '\0') return SchedulerMode::kAuto;
  SchedulerMode mode = SchedulerMode::kAuto;
  if (!ParseSchedulerMode(env, &mode)) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      IAWJ_LOG(Warning) << "ignoring unrecognized IAWJ_SCHEDULER=" << env
                        << " (want auto|static|morsel)";
    }
  }
  return mode;
}

SchedulerMode ResolveSchedulerMode(SchedulerMode spec_mode) {
  SchedulerMode mode =
      spec_mode == SchedulerMode::kAuto ? SchedulerModeFromEnv() : spec_mode;
  // Still unresolved after spec and environment: the paper-faithful static
  // division stays the default; morsel scheduling is opt-in.
  return mode == SchedulerMode::kAuto ? SchedulerMode::kStatic : mode;
}

size_t ResolveMorselSize(size_t spec_morsel_size) {
  if (spec_morsel_size > 0) return spec_morsel_size;
  if (const char* env = std::getenv("IAWJ_MORSEL_SIZE");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<size_t>(v);
    }
    static bool warned = false;
    if (!warned) {
      warned = true;
      IAWJ_LOG(Warning) << "ignoring unrecognized IAWJ_MORSEL_SIZE=" << env
                        << " (want a positive tuple count)";
    }
  }
  return kDefaultMorselSize;
}

MorselScheduler::MorselScheduler(int num_workers, SchedulerMode spec_mode,
                                 size_t spec_morsel_size)
    : mode_(ResolveSchedulerMode(spec_mode)),
      morsel_size_(ResolveMorselSize(spec_morsel_size)),
      num_workers_(num_workers) {
  const CpuTopology topo = DetectTopology();
  num_nodes_ = topo.num_nodes;
  node_of_worker_.resize(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    // Worker w runs on core w % #cores when pinning is on; without pinning
    // this is the placement approximation the steal order optimizes for.
    node_of_worker_[static_cast<size_t>(w)] =
        topo.NodeOfCore(ResolvePinnedCore(w));
  }
  stats_.assign(static_cast<size_t>(num_workers_), MorselStats{});

  if (!enabled()) return;  // static runs never steal; skip the order build
  victim_order_.resize(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    std::vector<int> local, remote;
    for (int v = 0; v < num_workers_; ++v) {
      if (v == w) continue;
      (node_of(v) == node_of(w) ? local : remote).push_back(v);
    }
    // Seeded per-worker shuffles decorrelate thieves (randomized stealing,
    // Leis et al. §4) while keeping runs reproducible.
    Rng rng(0x5eedULL * static_cast<uint64_t>(w + 1) + 0x9e3779b9ULL);
    const auto shuffle = [&rng](std::vector<int>& v) {
      for (size_t i = v.size(); i > 1; --i) {
        std::swap(v[i - 1], v[rng.NextBounded(i)]);
      }
    };
    shuffle(local);
    shuffle(remote);
    std::vector<int>& order = victim_order_[static_cast<size_t>(w)];
    order.reserve(local.size() + remote.size());
    order.insert(order.end(), local.begin(), local.end());
    order.insert(order.end(), remote.begin(), remote.end());
  }
}

MorselStats MorselScheduler::Totals() const {
  MorselStats total;
  for (const MorselStats& s : stats_) total.Add(s);
  return total;
}

namespace {

constexpr uint64_t PackRange(uint64_t begin, uint64_t end) {
  return begin << 32 | end;
}
constexpr uint64_t RangeBegin(uint64_t bits) { return bits >> 32; }
constexpr uint64_t RangeEnd(uint64_t bits) { return bits & 0xffffffffULL; }

}  // namespace

void MorselPhase::Reset(const MorselScheduler& sched, size_t total,
                        size_t morsel_size) {
  total_ = total;
  morsel_size_ = morsel_size > 0 ? morsel_size : 1;
  num_morsels_ = (total + morsel_size_ - 1) / morsel_size_;
  num_workers_ = sched.num_workers();
  IAWJ_CHECK(num_morsels_ <= 0xffffffffULL);
  ranges_ = std::make_unique<PackedRange[]>(
      static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    const ChunkRange deal = ChunkForThread(num_morsels_, w, num_workers_);
    ranges_[static_cast<size_t>(w)].bits.store(
        PackRange(deal.begin, deal.end), std::memory_order_relaxed);
  }
}

bool MorselPhase::PopBack(PackedRange& range, uint64_t* morsel) {
  uint64_t bits = range.bits.load(std::memory_order_acquire);
  while (RangeBegin(bits) < RangeEnd(bits)) {
    const uint64_t next = PackRange(RangeBegin(bits), RangeEnd(bits) - 1);
    if (range.bits.compare_exchange_weak(bits, next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      *morsel = RangeEnd(bits) - 1;
      return true;
    }
  }
  return false;
}

bool MorselPhase::TakeFront(PackedRange& range, uint64_t* morsel) {
  uint64_t bits = range.bits.load(std::memory_order_acquire);
  while (RangeBegin(bits) < RangeEnd(bits)) {
    const uint64_t next = PackRange(RangeBegin(bits) + 1, RangeEnd(bits));
    if (range.bits.compare_exchange_weak(bits, next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      *morsel = RangeBegin(bits);
      return true;
    }
  }
  return false;
}

bool MorselPhase::Next(MorselScheduler& sched, int worker, ChunkRange* out) {
  MorselStats& stats = sched.stats(worker);
  uint64_t morsel = 0;
  // Local pop: back of the owner's range, LIFO — the morsel adjacent to the
  // one just finished, i.e. the cache-warmest remaining work.
  if (PopBack(ranges_[static_cast<size_t>(worker)], &morsel)) {
    *out = MorselRange(morsel);
    ++stats.morsels;
    stats.tuples += out->size();
    return true;
  }
  // Steal sweep: same-node victims first, remote nodes only once the local
  // node is dry (the order is precomputed that way). Front of the victim's
  // range, FIFO — the work the victim was furthest from reaching. Ranges
  // never grow, so a full sweep finding everything empty proves the phase
  // is drained; there is no wait loop for a stalled peer to wedge.
  const int my_node = sched.node_of(worker);
  for (int victim : sched.victim_order(worker)) {
    if (TakeFront(ranges_[static_cast<size_t>(victim)], &morsel)) {
      *out = MorselRange(morsel);
      ++stats.morsels;
      stats.tuples += out->size();
      ++stats.steals;
      if (sched.node_of(victim) != my_node) ++stats.remote_steals;
      return true;
    }
    ++stats.steal_misses;
  }
  return false;
}

void ClaimGrid::Reset(size_t total, size_t morsel_size, int num_lanes) {
  morsel_size_ = morsel_size > 0 ? morsel_size : 1;
  num_morsels_ = (total + morsel_size_ - 1) / morsel_size_;
  num_lanes_ = num_lanes > 0 ? num_lanes : 1;
  const size_t cells = num_morsels_ * static_cast<size_t>(num_lanes_);
  claims_ = std::make_unique<std::atomic<int32_t>[]>(cells);
  for (size_t i = 0; i < cells; ++i) {
    claims_[i].store(-1, std::memory_order_relaxed);
  }
}

int ClaimGrid::Claim(int lane, size_t morsel, int worker) {
  std::atomic<int32_t>& cell =
      claims_[static_cast<size_t>(lane) * num_morsels_ + morsel];
  int32_t owner = cell.load(std::memory_order_acquire);
  if (owner >= 0) return owner;
  int32_t expected = -1;
  if (cell.compare_exchange_strong(expected, worker,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return worker;
  }
  return expected;
}

}  // namespace iawj
