// Progressive Merge Join state (Dittrich et al.; paper §3.2.1, Figure 1b).
//
// Following the paper's modernized PMJ: tuples from both streams accumulate
// until the sorting step size δ (a fraction of the worker's expected input)
// is reached; the accumulated subsets are then sorted and immediately
// merge-joined (intra-run matches delivered early), and the sorted runs stay
// in main memory. When the input is exhausted, all runs are merged and
// cross-run matches are produced — a tagged multiway merge skips pairs from
// the same run, which were already emitted.
#ifndef IAWJ_JOIN_PMJ_H_
#define IAWJ_JOIN_PMJ_H_

#include <vector>

#include "src/join/eager_engine.h"
#include "src/memory/tracker.h"
#include "src/sort/avxsort.h"
#include "src/sort/merge.h"

namespace iawj {

template <typename Tracer = NullTracer>
class PmjState : public EagerState {
 public:
  PmjState(const EagerStateConfig& config, Tracer tracer);

  void OnR(const Tuple& r, MatchSink& sink, PhaseStopwatch& sw) override;
  void OnS(const Tuple& s, MatchSink& sink, PhaseStopwatch& sw) override;
  void Finish(MatchSink& sink, PhaseStopwatch& sw) override;

  size_t num_runs() const { return runs_r_.size(); }

 private:
  void MaybeSealRun(MatchSink& sink, PhaseStopwatch& sw);
  void SealRun(MatchSink& sink, PhaseStopwatch& sw);

  uint64_t run_threshold_;
  sort::Options sort_options_;
  Tracer tracer_;

  mem::TrackedBuffer<uint64_t> cur_r_;
  mem::TrackedBuffer<uint64_t> cur_s_;
  std::vector<mem::TrackedBuffer<uint64_t>> runs_r_;
  std::vector<mem::TrackedBuffer<uint64_t>> runs_s_;
};

// Member definitions live in pmj.cc; these are the only instantiations.
extern template class PmjState<NullTracer>;
extern template class PmjState<SimTracer>;

}  // namespace iawj

#endif  // IAWJ_JOIN_PMJ_H_
