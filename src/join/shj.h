// Symmetric Hash Join state (Wilschut & Apers; paper §3.2.1, Figure 1a).
//
// One hash table per input stream; an arriving tuple is inserted into its
// own stream's table and immediately probes the opposite table. Two storage
// modes exist for the physical-partitioning study (Figure 17): value tables
// copy tuples into the buckets, pointer tables store references into the
// shared input arrays and pay an indirection on every probe.
#ifndef IAWJ_JOIN_SHJ_H_
#define IAWJ_JOIN_SHJ_H_

#include <memory>

#include "src/hash/bucket_chain.h"
#include "src/hash/linear_probe.h"
#include "src/hash/simd_probe.h"
#include "src/join/eager_engine.h"

namespace iawj {

// Bucket-chain table storing tuple pointers (the "pass the pointer" mode).
template <typename Tracer = NullTracer>
class PointerBucketChainTable {
 public:
  static constexpr int kBucketCapacity = 2;

  struct Bucket {
    uint32_t count;
    const Tuple* items[kBucketCapacity];
    Bucket* next;
  };

  explicit PointerBucketChainTable(uint64_t expected_tuples)
      : bits_(BucketBitsForTuples(expected_tuples)),
        buckets_(size_t{1} << bits_),
        tracked_bytes_(
            static_cast<int64_t>(buckets_.size() * sizeof(Bucket))) {
    mem::Add(tracked_bytes_);
    for (auto& b : buckets_) {
      b.count = 0;
      b.next = nullptr;
    }
  }

  ~PointerBucketChainTable() { mem::Add(-tracked_bytes_); }

  PointerBucketChainTable(const PointerBucketChainTable&) = delete;
  PointerBucketChainTable& operator=(const PointerBucketChainTable&) = delete;

  // O(1) insert: a full head bucket spills into a fresh overflow bucket.
  void Insert(const Tuple* t, Tracer& tracer) {
    Bucket* head = &buckets_[HashToBucket(t->key, bits_)];
    tracer.Access(head, sizeof(Bucket));
    if (head->count == kBucketCapacity) {
      Bucket* spill = AllocOverflow();
      *spill = *head;
      tracer.Access(spill, sizeof(Bucket));
      head->next = spill;
      head->count = 0;
    }
    head->items[head->count++] = t;
  }

  // Prefetch hints matching the value tables' (hash/prefetch.h).
  void PrefetchProbe(uint32_t key) const {
    __builtin_prefetch(&buckets_[HashToBucket(key, bits_)], /*rw=*/0, 3);
  }
  void PrefetchInsert(uint32_t key) const {
    __builtin_prefetch(&buckets_[HashToBucket(key, bits_)], /*rw=*/1, 3);
  }

  template <typename F>
  void Probe(uint32_t key, F&& on_match, Tracer& tracer) const {
    const Bucket* b = &buckets_[HashToBucket(key, bits_)];
    while (b != nullptr) {
      tracer.Access(b, sizeof(Bucket));
      for (uint32_t i = 0; i < b->count; ++i) {
        // The indirection into the (large, scattered) input array is the
        // cache cost of skipping physical partitioning.
        const Tuple* t = b->items[i];
        tracer.Access(t, sizeof(Tuple));
        if (t->key == key) on_match(*t);
      }
      b = b->next;
    }
  }

 private:
  static constexpr size_t kChunkBuckets = 4096;

  Bucket* AllocOverflow() {
    if (chunk_used_ == kChunkBuckets || chunks_.empty()) {
      chunks_.push_back(std::make_unique<Bucket[]>(kChunkBuckets));
      chunk_used_ = 0;
      const auto bytes = static_cast<int64_t>(kChunkBuckets * sizeof(Bucket));
      mem::Add(bytes);
      tracked_bytes_ += bytes;
    }
    Bucket* b = &chunks_.back()[chunk_used_++];
    b->count = 0;
    b->next = nullptr;
    return b;
  }

  int bits_;
  std::vector<Bucket> buckets_;
  std::vector<std::unique_ptr<Bucket[]>> chunks_;
  size_t chunk_used_ = 0;
  int64_t tracked_bytes_;
};

// SHJ over value-storing tables (physical partitioning on).
template <typename Tracer = NullTracer>
class ShjValueState : public EagerState {
 public:
  ShjValueState(const EagerStateConfig& config, Tracer tracer)
      : table_r_(config.expected_r),
        table_s_(config.expected_s),
        tracer_(std::move(tracer)),
        prefetch_(config.cache_kernels) {}

  void OnR(const Tuple& r, MatchSink& sink, PhaseStopwatch& sw) override {
    sw.Switch(Phase::kBuild);
    tracer_.SetPhase(Phase::kBuild);
    if (prefetch_) table_s_.PrefetchProbe(r.key);
    table_r_.Insert(r, tracer_);
    sw.Switch(Phase::kProbe);
    tracer_.SetPhase(Phase::kProbe);
    table_s_.Probe(
        r.key, [&](Tuple s) { sink.OnMatch(r.key, r.ts, s.ts); }, tracer_);
  }

  void OnS(const Tuple& s, MatchSink& sink, PhaseStopwatch& sw) override {
    sw.Switch(Phase::kBuild);
    tracer_.SetPhase(Phase::kBuild);
    if (prefetch_) table_r_.PrefetchProbe(s.key);
    table_s_.Insert(s, tracer_);
    sw.Switch(Phase::kProbe);
    tracer_.SetPhase(Phase::kProbe);
    table_r_.Probe(
        s.key, [&](Tuple r) { sink.OnMatch(s.key, r.ts, s.ts); }, tracer_);
  }

 private:
  BucketChainTable<Tracer> table_r_;
  BucketChainTable<Tracer> table_s_;
  Tracer tracer_;
  // Cross-table probe prefetch (EagerStateConfig::cache_kernels).
  bool prefetch_;
};

// SHJ over open-addressing tables (JoinSpec::hash_table_kind ==
// kLinearProbe); always value-storing.
template <typename Tracer = NullTracer>
class ShjLinearState : public EagerState {
 public:
  ShjLinearState(const EagerStateConfig& config, Tracer tracer)
      : table_r_(config.expected_r),
        table_s_(config.expected_s),
        tracer_(std::move(tracer)),
        prefetch_(config.cache_kernels),
        simd_(config.simd_probe) {}

  void OnR(const Tuple& r, MatchSink& sink, PhaseStopwatch& sw) override {
    sw.Switch(Phase::kBuild);
    tracer_.SetPhase(Phase::kBuild);
    if (prefetch_) table_s_.PrefetchProbe(r.key);
    table_r_.Insert(r, tracer_);
    sw.Switch(Phase::kProbe);
    tracer_.SetPhase(Phase::kProbe);
    ProbeOpposite(table_s_, r.key,
                  [&](const Tuple& s) { sink.OnMatch(r.key, r.ts, s.ts); });
  }

  void OnS(const Tuple& s, MatchSink& sink, PhaseStopwatch& sw) override {
    sw.Switch(Phase::kBuild);
    tracer_.SetPhase(Phase::kBuild);
    if (prefetch_) table_r_.PrefetchProbe(s.key);
    table_s_.Insert(s, tracer_);
    sw.Switch(Phase::kProbe);
    tracer_.SetPhase(Phase::kProbe);
    ProbeOpposite(table_r_, s.key,
                  [&](const Tuple& r) { sink.OnMatch(s.key, r.ts, s.ts); });
  }

 private:
  // SHJ is one probe per arrival, so there is no batch to amortize over —
  // but the vertical kernel still collapses the opposite table's cluster
  // walk into one gather + compare per 8 slots (EagerStateConfig::
  // simd_probe; resolved false under SimTracer and on non-AVX2 hosts).
  template <typename F>
  void ProbeOpposite(const LinearProbeTable<Tracer>& table, uint32_t key,
                     F&& on_match) {
    if (simd_) {
      kernels::SimdProbeKey(table, key, std::forward<F>(on_match));
    } else {
      table.Probe(key, std::forward<F>(on_match), tracer_);
    }
  }

  LinearProbeTable<Tracer> table_r_;
  LinearProbeTable<Tracer> table_s_;
  Tracer tracer_;
  // Cross-table probe prefetch (EagerStateConfig::cache_kernels).
  bool prefetch_;
  // AVX2 vertical probe of the opposite table (EagerStateConfig::simd_probe).
  bool simd_;
};

// SHJ over pointer-storing tables (physical partitioning off; the default,
// as in the paper's §5.5 conclusion).
template <typename Tracer = NullTracer>
class ShjPointerState : public EagerState {
 public:
  ShjPointerState(const EagerStateConfig& config, Tracer tracer)
      : table_r_(config.expected_r),
        table_s_(config.expected_s),
        tracer_(std::move(tracer)),
        prefetch_(config.cache_kernels) {}

  void OnR(const Tuple& r, MatchSink& sink, PhaseStopwatch& sw) override {
    sw.Switch(Phase::kBuild);
    tracer_.SetPhase(Phase::kBuild);
    if (prefetch_) table_s_.PrefetchProbe(r.key);
    table_r_.Insert(&r, tracer_);
    sw.Switch(Phase::kProbe);
    tracer_.SetPhase(Phase::kProbe);
    table_s_.Probe(
        r.key, [&](const Tuple& s) { sink.OnMatch(r.key, r.ts, s.ts); },
        tracer_);
  }

  void OnS(const Tuple& s, MatchSink& sink, PhaseStopwatch& sw) override {
    sw.Switch(Phase::kBuild);
    tracer_.SetPhase(Phase::kBuild);
    if (prefetch_) table_r_.PrefetchProbe(s.key);
    table_s_.Insert(&s, tracer_);
    sw.Switch(Phase::kProbe);
    tracer_.SetPhase(Phase::kProbe);
    table_r_.Probe(
        s.key, [&](const Tuple& r) { sink.OnMatch(s.key, r.ts, s.ts); },
        tracer_);
  }

 private:
  PointerBucketChainTable<Tracer> table_r_;
  PointerBucketChainTable<Tracer> table_s_;
  Tracer tracer_;
  // Cross-table probe prefetch (EagerStateConfig::cache_kernels).
  bool prefetch_;
};

}  // namespace iawj

#endif  // IAWJ_JOIN_SHJ_H_
