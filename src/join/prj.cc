#include "src/join/prj.h"

#include "src/hash/bucket_chain.h"
#include "src/hash/linear_probe.h"
#include "src/hash/prefetch.h"
#include "src/hash/simd_probe.h"
#include "src/partition/radix.h"
#include "src/partition/range.h"

namespace iawj {

namespace {

// Radix of the second pass: bits [bits1, bits1 + bits2) of the key.
inline uint32_t Radix2Of(uint32_t key, int bits1, int bits2) {
  return (key >> bits1) & ((1u << bits2) - 1);
}

}  // namespace

template <typename Tracer>
Status PrjJoin<Tracer>::Setup(const JoinContext& ctx) {
  const int bits = ctx.spec->radix_bits;
  if (ctx.spec->radix_passes == 2 && bits >= 2) {
    bits1_ = bits / 2;
    bits2_ = bits - bits1_;
  } else {
    bits1_ = bits;
    bits2_ = 0;
  }
  parts1_ = size_t{1} << bits1_;
  parts_total_ = size_t{1} << bits;
  plan_ = ResolveKernelPlan(ctx.spec->kernels, Tracer::kEnabled);
  use_cache_kernels_ = plan_.swwc_scatter;

  // Scattered copies of both relations, doubled in two-pass mode, dominate
  // PRJ's footprint; preflight them against the memory budget before
  // committing anything.
  const int64_t passes = bits2_ > 0 ? 2 : 1;
  const int64_t copy_bytes =
      static_cast<int64_t>((ctx.r.size() + ctx.s.size()) * sizeof(Tuple)) *
      passes;
  if (Status s = mem::Preflight(copy_bytes, "PRJ partition buffers");
      !s.ok()) {
    return s;
  }

  const int threads = ctx.spec->num_threads;
  r_out_.Resize(ctx.r.size());
  s_out_.Resize(ctx.s.size());
  morsel_ = ctx.MorselMode();
  if (morsel_) {
    // Pass-1 state is per-morsel: raise the morsel size when needed so the
    // histogram/cursor block stays bounded regardless of input size.
    const auto pass1_morsel = [&](size_t n) {
      const size_t floor_size = (n + kMaxPass1Morsels - 1) / kMaxPass1Morsels;
      const size_t size = ctx.scheduler->morsel_size();
      return size < floor_size ? floor_size : size;
    };
    morsel_r_ = pass1_morsel(ctx.r.size());
    morsel_s_ = pass1_morsel(ctx.s.size());
    hist_phase_r_.Reset(*ctx.scheduler, ctx.r.size(), morsel_r_);
    hist_phase_s_.Reset(*ctx.scheduler, ctx.s.size(), morsel_s_);
    scatter_phase_r_.Reset(*ctx.scheduler, ctx.r.size(), morsel_r_);
    scatter_phase_s_.Reset(*ctx.scheduler, ctx.s.size(), morsel_s_);
    hist_r_.assign(hist_phase_r_.num_morsels() * parts1_, 0);
    hist_s_.assign(hist_phase_s_.num_morsels() * parts1_, 0);
    cursors_r_.assign(hist_phase_r_.num_morsels() * parts1_, 0);
    cursors_s_.assign(hist_phase_s_.num_morsels() * parts1_, 0);
    refine_phase_.Reset(*ctx.scheduler, parts1_, 1);
    join_phase_.Reset(*ctx.scheduler, bits2_ > 0 ? parts_total_ : parts1_,
                      1);
  } else {
    hist_r_.assign(static_cast<size_t>(threads) * parts1_, 0);
    hist_s_.assign(static_cast<size_t>(threads) * parts1_, 0);
  }
  offsets_r_.assign(parts1_ + 1, 0);
  offsets_s_.assign(parts1_ + 1, 0);
  if (bits2_ > 0) {
    r_out2_.Resize(ctx.r.size());
    s_out2_.Resize(ctx.s.size());
    final_off_r_.assign(parts_total_ + 1, 0);
    final_off_s_.assign(parts_total_ + 1, 0);
  }
  next_refine_.store(0);
  next_join_.store(0);
  return Status::Ok();
}

template <typename Tracer>
void PrjJoin<Tracer>::Teardown() {
  r_out_ = mem::TrackedBuffer<Tuple>();
  s_out_ = mem::TrackedBuffer<Tuple>();
  r_out2_ = mem::TrackedBuffer<Tuple>();
  s_out2_ = mem::TrackedBuffer<Tuple>();
  hist_r_.clear();
  hist_s_.clear();
  cursors_r_.clear();
  cursors_s_.clear();
}

namespace {

// Computes this thread's scatter cursors: global partition offset plus the
// histogram contributions of lower-numbered threads.
std::vector<uint64_t> ScatterCursors(const std::vector<uint64_t>& hist,
                                     const std::vector<uint64_t>& offsets,
                                     size_t parts, int thread) {
  std::vector<uint64_t> cursors(parts);
  for (size_t p = 0; p < parts; ++p) {
    uint64_t below = 0;
    for (int t = 0; t < thread; ++t) below += hist[t * parts + p];
    cursors[p] = offsets[p] + below;
  }
  return cursors;
}

}  // namespace

// Pass 2 (two-pass mode): refine each pass-1 partition by the remaining
// radix bits, drained from a shared task queue. Writes disjoint slot ranges
// of the final offset arrays, so no synchronization is needed beyond the
// queue counter.
template <typename Tracer>
bool PrjJoin<Tracer>::RunSecondPass(const JoinContext& ctx, int worker,
                                    Tracer& tracer) {
  const size_t parts2 = size_t{1} << bits2_;
  std::vector<uint64_t> hist(parts2);
  // One refine task per pass-1 partition, drained from the shared atomic
  // counter (static) or the morsel phase (morsel mode — same tasks, but
  // steals are counted and NUMA-ordered).
  const auto next_task = [&](size_t* p1) -> bool {
    if (morsel_) {
      ChunkRange task;
      if (!refine_phase_.Next(*ctx.scheduler, worker, &task)) return false;
      *p1 = task.begin;
      return true;
    }
    *p1 = next_refine_.fetch_add(1, std::memory_order_relaxed);
    return *p1 < parts1_;
  };
  while (true) {
    if (ctx.Cancelled()) return true;
    size_t p1;
    if (!next_task(&p1)) break;

    const auto refine = [&](const mem::TrackedBuffer<Tuple>& in,
                            mem::TrackedBuffer<Tuple>& out,
                            const std::vector<uint64_t>& offsets1,
                            std::vector<uint64_t>& final_off) {
      const uint64_t begin = offsets1[p1], end = offsets1[p1 + 1];
      std::fill(hist.begin(), hist.end(), 0);
      for (uint64_t i = begin; i < end; ++i) {
        ++hist[Radix2Of(in[i].key, bits1_, bits2_)];
      }
      // Exclusive prefix into the final offset slots for this p1 range.
      uint64_t cursor = begin;
      std::vector<uint64_t> cursors(parts2);
      for (size_t p2 = 0; p2 < parts2; ++p2) {
        final_off[p1 * parts2 + p2] = cursor;
        cursors[p2] = cursor;
        cursor += hist[p2];
      }
      // Refine scatter over the next bits2_ key bits; kernel-dispatched like
      // pass 1 (the shift selects the second-pass radix).
      RadixScatterKernel(in.data() + begin, end - begin, bits2_,
                         cursors.data(), out.data(), tracer,
                         use_cache_kernels_, /*shift=*/bits1_);
    };
    refine(r_out_, r_out2_, offsets_r_, final_off_r_);
    refine(s_out_, s_out2_, offsets_s_, final_off_s_);
  }
  return false;
}

template <typename Tracer>
bool PrjJoin<Tracer>::JoinPartitions(const JoinContext& ctx, int worker,
                                     Tracer& tracer) {
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  const bool two_pass = bits2_ > 0;
  const Tuple* r_data = two_pass ? r_out2_.data() : r_out_.data();
  const Tuple* s_data = two_pass ? s_out2_.data() : s_out_.data();
  const size_t num_parts = two_pass ? parts_total_ : parts1_;

  const auto range_of = [&](size_t p, bool side_r, uint64_t* begin,
                            uint64_t* end) {
    if (two_pass) {
      const auto& off = side_r ? final_off_r_ : final_off_s_;
      *begin = off[p];
      *end = p + 1 < parts_total_
                 ? off[p + 1]
                 : (side_r ? ctx.r.size() : ctx.s.size());
    } else {
      const auto& off = side_r ? offsets_r_ : offsets_s_;
      *begin = off[p];
      *end = off[p + 1];
    }
  };

  // Build/probe one partition with the configured hash-table backend. The
  // batched probe kernels group-prefetch bucket heads (hash/prefetch.h) and
  // kernels=simd runs the AVX2 vertical probe on linear-probe tables
  // (hash/simd_probe.h); mostly a wash for cache-resident partitions but a
  // clear win once skew or low radix bits leave partitions bigger than L2.
  // Builds stay scalar in every plan: the batched build variant measured
  // 0.95x of scalar and was retired (BENCH_baseline.json "notes").
  const bool nonscalar_probe = plan_.batched_probe || plan_.simd_probe;
  const auto join_one = [&](auto& table, uint64_t r_begin, uint64_t r_end,
                            uint64_t s_begin, uint64_t s_end) {
    {
      ScopedPhase build(&prof, Phase::kBuild);
      tracer.SetPhase(Phase::kBuild);
      for (uint64_t i = r_begin; i < r_end; ++i) {
        tracer.Access(&r_data[i], sizeof(Tuple));
        table.Insert(r_data[i], tracer);
      }
    }
    {
      ScopedPhase probe(&prof, Phase::kProbe);
      tracer.SetPhase(Phase::kProbe);
      if (nonscalar_probe) {
        kernels::ProbeDispatch(
            table, s_data + s_begin, s_end - s_begin,
            [&](const Tuple& s, const Tuple& r) {
              sink.OnMatch(s.key, r.ts, s.ts);
            },
            tracer, plan_);
      } else {
        for (uint64_t i = s_begin; i < s_end; ++i) {
          const Tuple s = s_data[i];
          tracer.Access(&s_data[i], sizeof(Tuple));
          table.Probe(
              s.key, [&](Tuple r) { sink.OnMatch(s.key, r.ts, s.ts); },
              tracer);
        }
      }
    }
  };

  const bool linear =
      ctx.spec->hash_table_kind == HashTableKind::kLinearProbe;
  const auto next_task = [&](size_t* p) -> bool {
    if (morsel_) {
      ChunkRange task;
      if (!join_phase_.Next(*ctx.scheduler, worker, &task)) return false;
      *p = task.begin;
      return true;
    }
    *p = next_join_.fetch_add(1, std::memory_order_relaxed);
    return *p < num_parts;
  };
  while (true) {
    if (ctx.Cancelled()) return true;
    size_t p;
    if (!next_task(&p)) break;
    uint64_t r_begin, r_end, s_begin, s_end;
    range_of(p, /*side_r=*/true, &r_begin, &r_end);
    range_of(p, /*side_r=*/false, &s_begin, &s_end);
    if (r_begin == r_end || s_begin == s_end) continue;

    if (linear) {
      LinearProbeTable<Tracer> table(r_end - r_begin);
      join_one(table, r_begin, r_end, s_begin, s_end);
    } else {
      BucketChainTable<Tracer> table(r_end - r_begin);
      join_one(table, r_begin, r_end, s_begin, s_end);
    }
  }
  return false;
}

template <typename Tracer>
void PrjJoin<Tracer>::RunWorker(const JoinContext& ctx, int worker) {
  PhaseProfile& prof = ctx.profile(worker);
  Tracer tracer = MakeWorkerTracer<Tracer>(ctx, worker);
  const int threads = ctx.spec->num_threads;

  {
    ScopedPhase wait(&prof, Phase::kWait);
    ctx.WaitUntil(ctx.window_close_ms);
  }
  if (ctx.AbortRequested()) return;

  {
    ScopedPhase partition(&prof, Phase::kPartition);
    tracer.SetPhase(Phase::kPartition);

    // Pass 1: histograms over the low bits1_ bits — one per thread chunk
    // (static) or one per morsel (morsel mode), claimed dynamically.
    if (morsel_) {
      ChunkRange m;
      while (hist_phase_r_.Next(*ctx.scheduler, worker, &m)) {
        if (ctx.AbortRequested()) return;
        RadixHistogram(ctx.r.data() + m.begin, m.size(), bits1_,
                       &hist_r_[(m.begin / morsel_r_) * parts1_]);
      }
      while (hist_phase_s_.Next(*ctx.scheduler, worker, &m)) {
        if (ctx.AbortRequested()) return;
        RadixHistogram(ctx.s.data() + m.begin, m.size(), bits1_,
                       &hist_s_[(m.begin / morsel_s_) * parts1_]);
      }
    } else {
      const ChunkRange r_chunk =
          ChunkForThread(ctx.r.size(), worker, threads);
      const ChunkRange s_chunk =
          ChunkForThread(ctx.s.size(), worker, threads);
      RadixHistogram(ctx.r.data() + r_chunk.begin, r_chunk.size(), bits1_,
                     &hist_r_[static_cast<size_t>(worker) * parts1_]);
      RadixHistogram(ctx.s.data() + s_chunk.begin, s_chunk.size(), bits1_,
                     &hist_s_[static_cast<size_t>(worker) * parts1_]);
    }
    if (ctx.AbortRequested()) return;
    ctx.barrier->arrive_and_wait();

    // Worker 0 publishes pass-1 partition offsets (and, in morsel mode, the
    // per-morsel scatter cursor rows — the scatter phase walks the same
    // morsel grid, so row m starts where the partition-p counts of morsels
    // < m end).
    if (worker == 0) {
      const size_t chunks_r =
          morsel_ ? hist_phase_r_.num_morsels() : static_cast<size_t>(threads);
      const size_t chunks_s =
          morsel_ ? hist_phase_s_.num_morsels() : static_cast<size_t>(threads);
      for (size_t p = 0; p < parts1_; ++p) {
        uint64_t total_r = 0, total_s = 0;
        for (size_t c = 0; c < chunks_r; ++c) {
          total_r += hist_r_[c * parts1_ + p];
        }
        for (size_t c = 0; c < chunks_s; ++c) {
          total_s += hist_s_[c * parts1_ + p];
        }
        offsets_r_[p + 1] = offsets_r_[p] + total_r;
        offsets_s_[p + 1] = offsets_s_[p] + total_s;
      }
      if (morsel_) {
        const auto fill_cursors = [this](const std::vector<uint64_t>& hist,
                                         const std::vector<uint64_t>& offsets,
                                         std::vector<uint64_t>& cursors,
                                         size_t chunks) {
          std::vector<uint64_t> running(offsets.begin(), offsets.end() - 1);
          for (size_t m = 0; m < chunks; ++m) {
            for (size_t p = 0; p < parts1_; ++p) {
              cursors[m * parts1_ + p] = running[p];
              running[p] += hist[m * parts1_ + p];
            }
          }
        };
        fill_cursors(hist_r_, offsets_r_, cursors_r_, chunks_r);
        fill_cursors(hist_s_, offsets_s_, cursors_s_, chunks_s);
      }
    }
    if (ctx.AbortRequested()) return;
    ctx.barrier->arrive_and_wait();

    // Pass-1 scatter into partition-contiguous buffers (write-combining
    // kernel when enabled; see common/kernels.h). Each morsel's cursor row
    // is touched only by its claimant, so the kernel can mutate it in
    // place exactly like the static per-thread cursor vector.
    if (morsel_) {
      ChunkRange m;
      while (scatter_phase_r_.Next(*ctx.scheduler, worker, &m)) {
        if (ctx.AbortRequested()) return;
        RadixScatterKernel(ctx.r.data() + m.begin, m.size(), bits1_,
                           &cursors_r_[(m.begin / morsel_r_) * parts1_],
                           r_out_.data(), tracer, use_cache_kernels_);
      }
      while (scatter_phase_s_.Next(*ctx.scheduler, worker, &m)) {
        if (ctx.AbortRequested()) return;
        RadixScatterKernel(ctx.s.data() + m.begin, m.size(), bits1_,
                           &cursors_s_[(m.begin / morsel_s_) * parts1_],
                           s_out_.data(), tracer, use_cache_kernels_);
      }
    } else {
      const ChunkRange r_chunk =
          ChunkForThread(ctx.r.size(), worker, threads);
      const ChunkRange s_chunk =
          ChunkForThread(ctx.s.size(), worker, threads);
      auto r_cursors = ScatterCursors(hist_r_, offsets_r_, parts1_, worker);
      RadixScatterKernel(ctx.r.data() + r_chunk.begin, r_chunk.size(),
                         bits1_, r_cursors.data(), r_out_.data(), tracer,
                         use_cache_kernels_);
      auto s_cursors = ScatterCursors(hist_s_, offsets_s_, parts1_, worker);
      RadixScatterKernel(ctx.s.data() + s_chunk.begin, s_chunk.size(),
                         bits1_, s_cursors.data(), s_out_.data(), tracer,
                         use_cache_kernels_);
    }
    if (ctx.AbortRequested()) return;
    ctx.barrier->arrive_and_wait();

    if (bits2_ > 0) {
      if (RunSecondPass(ctx, worker, tracer)) {
        ctx.barrier->arrive_and_drop();
        return;
      }
      ctx.barrier->arrive_and_wait();
    }
  }

  // Per-partition cache-resident joins from a shared task queue. Every
  // barrier phase is complete once a worker reaches this point, so an abort
  // here unwinds with a plain return.
  JoinPartitions(ctx, worker, tracer);
}

template class PrjJoin<NullTracer>;
template class PrjJoin<SimTracer>;

std::unique_ptr<JoinAlgorithm> MakePrj() {
  return std::make_unique<PrjJoin<NullTracer>>();
}

std::unique_ptr<JoinAlgorithm> MakePrjTraced() {
  return std::make_unique<PrjJoin<SimTracer>>();
}

}  // namespace iawj
