#include "src/join/handshake.h"

#include <algorithm>
#include <thread>

#include "src/common/logging.h"
#include "src/memory/tracker.h"

namespace iawj {

Status HandshakeJoin::Setup(const JoinContext& ctx) {
  const int threads = ctx.spec->num_threads;
  for (int parity = 0; parity < 2; ++parity) {
    r_seg_[parity].assign(threads, {});
    s_seg_[parity].assign(threads, {});
  }
  // Batch sizes chosen so a full drain takes ~64 steps per core.
  r_batch_ = std::max<size_t>(1, ctx.r.size() / (64 * threads) + 1);
  s_batch_ = std::max<size_t>(1, ctx.s.size() / (64 * threads) + 1);
  r_injected_.store(0);
  s_injected_.store(0);
  flush_steps_.store(0);
  return Status::Ok();
}

void HandshakeJoin::Teardown() {
  for (int parity = 0; parity < 2; ++parity) {
    r_seg_[parity].clear();
    s_seg_[parity].clear();
  }
}

namespace {

// Nested-loop probe of a moving batch against a resident segment — the
// handshake join's per-hop work (the original compares segments by scan).
void ProbeSegments(const std::vector<Tuple>& moving,
                   const std::vector<Tuple>& resident, bool moving_is_r,
                   MatchSink& sink) {
  for (const Tuple& m : moving) {
    for (const Tuple& res : resident) {
      if (m.key != res.key) continue;
      if (moving_is_r) {
        sink.OnMatch(m.key, m.ts, res.ts);
      } else {
        sink.OnMatch(m.key, res.ts, m.ts);
      }
    }
  }
}

}  // namespace

void HandshakeJoin::RunWorker(const JoinContext& ctx, int worker) {
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  const int threads = ctx.spec->num_threads;
  const int last = threads - 1;
  PhaseStopwatch sw(&prof);

  size_t r_cursor_local = 0;  // only meaningful on worker 0 / worker last
  size_t s_cursor_local = 0;

  int step = 0;
  while (flush_steps_.load(std::memory_order_acquire) < threads + 2) {
    // Step boundary is the only safe abort point: mid-step exits would strand
    // peers at one of the three per-step barriers.
    if (ctx.AbortRequested()) {
      sw.Stop();
      return;
    }
    const int cur = step & 1;
    const int nxt = cur ^ 1;

    // --- R phase: batches move one core to the right. ---
    sw.Switch(Phase::kPartition);
    Segment incoming_r;
    if (worker == 0) {
      // Inject the next R batch, gated by tuple arrival.
      size_t taken = 0;
      while (taken < r_batch_ && r_cursor_local < ctx.r.size() &&
             ctx.clock->HasArrived(ctx.r[r_cursor_local].ts)) {
        incoming_r.push_back(ctx.r[r_cursor_local]);
        ++r_cursor_local;
        ++taken;
      }
      r_injected_.store(r_cursor_local, std::memory_order_release);
      if (taken == 0 && r_cursor_local < ctx.r.size()) {
        sw.Switch(Phase::kWait);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    } else {
      incoming_r = std::move(r_seg_[cur][worker - 1]);
      r_seg_[cur][worker - 1].clear();
    }

    sw.Switch(Phase::kProbe);
    ProbeSegments(incoming_r, s_seg_[cur][worker], /*moving_is_r=*/true,
                  sink);

    sw.Switch(Phase::kPartition);
    if (worker == last) {
      // Full-history semantics: R accumulates at the right end.
      Segment& acc = r_seg_[nxt][last];
      acc = std::move(r_seg_[cur][last]);
      acc.insert(acc.end(), incoming_r.begin(), incoming_r.end());
    } else {
      r_seg_[nxt][worker] = std::move(incoming_r);
    }
    sw.Switch(Phase::kOther);
    ctx.barrier->arrive_and_wait();

    // --- S phase: batches move one core to the left. ---
    sw.Switch(Phase::kPartition);
    Segment incoming_s;
    if (worker == last) {
      size_t taken = 0;
      while (taken < s_batch_ && s_cursor_local < ctx.s.size() &&
             ctx.clock->HasArrived(ctx.s[s_cursor_local].ts)) {
        incoming_s.push_back(ctx.s[s_cursor_local]);
        ++s_cursor_local;
        ++taken;
      }
      s_injected_.store(s_cursor_local, std::memory_order_release);
    } else {
      incoming_s = std::move(s_seg_[cur][worker + 1]);
      s_seg_[cur][worker + 1].clear();
    }

    sw.Switch(Phase::kProbe);
    ProbeSegments(incoming_s, r_seg_[nxt][worker], /*moving_is_r=*/false,
                  sink);

    sw.Switch(Phase::kPartition);
    if (worker == 0) {
      Segment& acc = s_seg_[nxt][0];
      acc = std::move(s_seg_[cur][0]);
      acc.insert(acc.end(), incoming_s.begin(), incoming_s.end());
    } else {
      s_seg_[nxt][worker] = std::move(incoming_s);
    }
    sw.Switch(Phase::kOther);
    ctx.barrier->arrive_and_wait();

    // --- Bookkeeping: count flush steps once both streams are injected. ---
    if (worker == 0) {
      if (r_injected_.load(std::memory_order_acquire) == ctx.r.size() &&
          s_injected_.load(std::memory_order_acquire) == ctx.s.size()) {
        flush_steps_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    ctx.barrier->arrive_and_wait();
    ++step;
  }
  sw.Stop();
}

std::unique_ptr<JoinAlgorithm> MakeHandshake() {
  return std::make_unique<HandshakeJoin>();
}

}  // namespace iawj
