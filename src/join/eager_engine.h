// The eager execution engine (paper §3.2).
//
// An eager algorithm = a per-worker stream-join state (SHJ or PMJ) plus a
// stream distribution scheme (JM or JB). Every worker scans both inputs in
// arrival order through the virtual clock's gate, alternating between
// streams and stalling when it outruns tuple arrival — the pull loop the
// paper describes in §4.2.2. Owned tuples are fed to the worker's local join
// state, which emits matches eagerly.
//
// The JB router keeps per-key dispatch state ("status maintenance"), whose
// cost is the partition-phase overhead the paper isolates in §5.3.3. The
// physical-partitioning knob (§5.5, Figure 17) switches between copying
// owned tuples into worker-local buffers (value tables, better locality)
// and referencing the shared input arrays (pointer tables, cheaper
// partitioning).
#ifndef IAWJ_JOIN_EAGER_ENGINE_H_
#define IAWJ_JOIN_EAGER_ENGINE_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/join/context.h"
#include "src/memory/tracker.h"
#include "src/stream/distribution.h"

namespace iawj {

// Per-worker stream-join state. Implementations switch the stopwatch to the
// phase they spend time in (build/sort/merge/probe).
class EagerState {
 public:
  virtual ~EagerState() = default;

  // Processes one owned tuple: integrate into local state, emit matches.
  virtual void OnR(const Tuple& r, MatchSink& sink, PhaseStopwatch& sw) = 0;
  virtual void OnS(const Tuple& s, MatchSink& sink, PhaseStopwatch& sw) = 0;

  // Called once after both inputs are exhausted (PMJ's merge phase runs
  // here; SHJ has nothing left to do).
  virtual void Finish(MatchSink& sink, PhaseStopwatch& sw) {
    (void)sink;
    (void)sw;
  }
};

// Sizing and tuning hints handed to state constructors.
struct EagerStateConfig {
  uint64_t expected_r = 0;  // tuples this worker is expected to store from R
  uint64_t expected_s = 0;
  double pmj_delta = 0.2;
  bool store_pointers = false;  // !JoinSpec::eager_physical_partition
  bool use_simd = true;
  // Cache-conscious kernels resolved from JoinSpec::kernels
  // (common/kernels.h). SHJ is per-tuple, so its kernel is a cross-table
  // prefetch: hint the opposite table's probe bucket before the insert so
  // the probe's miss overlaps the build work. Always false under SimTracer.
  bool cache_kernels = false;
  // kernels=simd resolved to a supported AVX2 host (KernelPlan::simd_probe):
  // ShjLinearState runs each per-tuple probe as one vertical cluster scan
  // (hash/simd_probe.h). Ignored by the bucket-chain states.
  bool simd_probe = false;
};

enum class EagerKind { kShj, kPmj };

// JB router dispatch state (§5.3.3): after each tuple is routed, the system
// records the dispatch result per key for future (balance-aware) routing
// decisions. The structure is shared — it is the router's state, not the
// workers' — so updates synchronize, which is exactly the "status
// maintenance" overhead the paper isolates, and its footprint shows up
// early in the memory-over-time profile (Figure 19b).
class RouterState {
 public:
  ~RouterState();

  // Records that `worker` received a tuple with `key`.
  void Note(uint32_t key, int worker);

  uint64_t dispatched() const { return dispatched_; }

 private:
  static constexpr int64_t kBytesPerEntry = 48;  // node + bucket estimate

  std::mutex mu_;
  std::unordered_map<uint32_t, uint32_t> last_dispatch_;
  uint64_t dispatched_ = 0;
};

template <typename Tracer = NullTracer>
class EagerJoin : public JoinAlgorithm {
 public:
  EagerJoin(EagerKind kind, DistributionScheme scheme)
      : kind_(kind), scheme_(scheme) {}

  std::string_view name() const override;

  Status Setup(const JoinContext& ctx) override;
  void RunWorker(const JoinContext& ctx, int worker) override;
  void Teardown() override { router_.reset(); }

 private:
  std::unique_ptr<EagerState> MakeState(const JoinContext& ctx, int worker,
                                        Tracer tracer) const;

  EagerKind kind_;
  DistributionScheme scheme_;
  std::unique_ptr<Distribution> distribution_;
  std::unique_ptr<RouterState> router_;  // JB only

  // Morsel mode (join/scheduler.h): S ownership becomes first-claimant per
  // morsel instead of seq round-robin. R ownership is replication-defined
  // (JM: everyone; JB: the key's group) and stays as-is.
  bool morsel_ = false;
  ClaimGrid s_claims_;
};

// Factories for the four eager algorithms (and their traced variants).
std::unique_ptr<JoinAlgorithm> MakeEager(AlgorithmId id);
std::unique_ptr<JoinAlgorithm> MakeEagerTraced(AlgorithmId id);

}  // namespace iawj

#endif  // IAWJ_JOIN_EAGER_ENGINE_H_
