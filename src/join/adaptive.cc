#include "src/join/adaptive.h"

#include <algorithm>
#include <unordered_map>

namespace iawj {

namespace {

// Statistics over a bounded sample: enough to classify rate, duplication,
// and skew without a full pass over huge windows. Naive duplicates-per-key
// does not survive subsampling (a key with 50 copies in 200k tuples shows
// ~0.25 copies in a 1k sample), so duplication uses the unbiased
// self-join-size estimator: with sample frequencies f_i over m of N tuples,
//   sum(F_i^2) ~= (sum(f_i^2) - m) * N^2 / (m * (m - 1)),
// and the duplication intensity is sum(F_i^2) / N.
StreamStats SampleStats(const Stream& stream, size_t limit) {
  if (stream.size() <= limit) return ComputeStats(stream);
  Stream sample;
  // An evenly strided sample keeps the estimate unbiased even if key usage
  // drifts over the window.
  const size_t stride = stream.size() / limit;
  sample.tuples.reserve(limit);
  for (size_t i = 0; i < stream.size() && sample.tuples.size() < limit;
       i += stride) {
    sample.tuples.push_back(stream.tuples[i]);
  }
  StreamStats stats = ComputeStats(sample);
  stats.num_tuples = stream.size();
  stats.arrival_rate_per_ms =
      static_cast<double>(stream.size()) / (stream.MaxTs() + 1);

  std::unordered_map<uint32_t, uint64_t> freq;
  freq.reserve(sample.size());
  for (const Tuple& t : sample.tuples) ++freq[t.key];
  double sum_f2 = 0;
  for (const auto& [key, f] : freq) {
    sum_f2 += static_cast<double>(f) * static_cast<double>(f);
  }
  const double m = static_cast<double>(sample.size());
  const double n = static_cast<double>(stream.size());
  const double sum_big_f2 =
      std::max(n, (sum_f2 - m) * n * n / (m * (m - 1)));
  stats.avg_duplicates_per_key = std::max(1.0, sum_big_f2 / n);
  stats.unique_keys = static_cast<uint64_t>(
      std::max(1.0, n / stats.avg_duplicates_per_key));
  return stats;
}

}  // namespace

AdaptiveChoice ChooseAlgorithm(const Stream& r, const Stream& s,
                               const AdaptiveOptions& options) {
  AdaptiveChoice choice;
  const StreamStats stats_r = SampleStats(r, options.sample_limit);
  const StreamStats stats_s = SampleStats(s, options.sample_limit);
  choice.profile = ProfileFromStats(stats_r, stats_s, options.thresholds);
  choice.algorithm = RecommendAlgorithm(choice.profile, options.objective,
                                        options.hardware,
                                        options.thresholds);
  return choice;
}

RunResult RunAdaptive(const Stream& r, const Stream& s, const JoinSpec& spec,
                      const AdaptiveOptions& options,
                      AdaptiveChoice* choice_out) {
  const AdaptiveChoice choice = ChooseAlgorithm(r, s, options);
  if (choice_out != nullptr) *choice_out = choice;
  JoinSpec adjusted = spec;
  // JB needs a group size that divides the worker count; fall back to
  // strict hash partitioning when the configured one does not.
  if ((choice.algorithm == AlgorithmId::kShjJb ||
       choice.algorithm == AlgorithmId::kPmjJb) &&
      spec.num_threads % spec.jb_group_size != 0) {
    adjusted.jb_group_size = 1;
  }
  JoinRunner runner;
  return runner.Run(choice.algorithm, r, s, adjusted);
}

AlgorithmPolicy MakeAdaptivePolicy(const AdaptiveOptions& options) {
  return [options](const Stream& r, const Stream& s) {
    return ChooseAlgorithm(r, s, options).algorithm;
  };
}

}  // namespace iawj
