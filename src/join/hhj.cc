#include "src/join/hhj.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "src/hash/linear_probe.h"
#include "src/hash/prefetch.h"
#include "src/hash/simd_probe.h"
#include "src/partition/radix.h"
#include "src/partition/range.h"

namespace iawj {

namespace {

// Fanout cap: each spilled partition holds two open run files, so 2^7
// partitions bound the worst case at 256 descriptors and write buffers.
constexpr int kMaxBits = 7;
// Smallest useful page payload; the budget-driven page shrink stops here.
constexpr size_t kMinPageBytes = 1024;
// Working estimate of build-side table cost per tuple: a LinearProbeTable
// over n tuples allocates NextPow2(2n) slots of 8 bytes, <= 32 bytes/tuple.
constexpr uint64_t kTableBytesPerBuildTuple = 32;
// Recursive repartitioning: 4-way fanout on the next-higher key bits, at
// most kMaxDepth levels before the block-nested-loop fallback takes over
// (a single over-duplicated key can never be split by key bits).
constexpr int kChildBits = 2;
constexpr uint32_t kChildMask = (1u << kChildBits) - 1;
constexpr int kMaxDepth = 4;

constexpr size_t kCancelMask = 8191;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

template <typename Tracer>
Status HhjJoin<Tracer>::Setup(const JoinContext& ctx) {
  const int threads = ctx.spec->num_threads;
  const int64_t budget = mem::BudgetBytes();
  plan_ = ResolveKernelPlan(ctx.spec->kernels, Tracer::kEnabled);

  // Fanout and page size adapt to the budget: all spill write buffers (two
  // relations' worth) must fit inside one budget quarter.
  bits_ = std::clamp(ctx.spec->radix_bits, 1, kMaxBits);
  page_bytes_ = spill::PageBytes();
  if (budget > 0) {
    while (bits_ > 1 &&
           static_cast<int64_t>(2 * (size_t{1} << bits_) * kMinPageBytes) >
               budget / 4) {
      --bits_;
    }
    const int64_t per_writer = budget / 4 / (2 * (int64_t{1} << bits_));
    page_bytes_ = std::clamp(static_cast<size_t>(per_writer), kMinPageBytes,
                             page_bytes_);
  }
  parts_ = size_t{1} << bits_;

  // One serial counting pass per relation, chunked exactly as the scatter
  // phase will be, yields both the residency histogram and the per-worker
  // scatter cursors without an extra barrier.
  std::vector<uint64_t> per_worker_r, per_worker_s;
  const auto count_chunks = [&](std::span<const Tuple> rel,
                                std::vector<uint64_t>* per_worker,
                                std::vector<uint64_t>* totals) {
    per_worker->assign(static_cast<size_t>(threads) * parts_, 0);
    totals->assign(parts_, 0);
    for (int t = 0; t < threads; ++t) {
      const ChunkRange c = ChunkForThread(rel.size(), t, threads);
      uint64_t* row = per_worker->data() + static_cast<size_t>(t) * parts_;
      RadixHistogram(rel.data() + c.begin, c.size(), bits_, row);
      for (size_t p = 0; p < parts_; ++p) (*totals)[p] += row[p];
    }
  };
  count_chunks(ctx.r, &per_worker_r, &hr_);
  count_chunks(ctx.s, &per_worker_s, &hs_);

  // Hot-first residency: rank partitions by tuple count (the histogram is
  // the sample) and keep the heaviest that fit half the budget, costing
  // each partition its copies plus its transient build table. First-fit
  // decreasing: a cold giant that misses does not evict smaller partitions.
  std::vector<uint32_t> order(parts_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return hr_[a] + hs_[a] > hr_[b] + hs_[b];
  });
  resident_.assign(parts_, 1);
  int64_t used = 0;
  const int64_t resident_budget = budget > 0 ? budget / 2 : 0;
  for (const uint32_t p : order) {
    if (hr_[p] + hs_[p] == 0) continue;
    const int64_t cost =
        static_cast<int64_t>((hr_[p] + hs_[p]) * sizeof(Tuple) +
                             kTableBytesPerBuildTuple * hr_[p]);
    if (budget <= 0 || used + cost <= resident_budget) {
      used += cost;
      resident_list_.push_back(p);
    } else {
      resident_[p] = 0;
      spilled_list_.push_back(p);
    }
  }
  std::sort(resident_list_.begin(), resident_list_.end());
  std::sort(spilled_list_.begin(), spilled_list_.end());

  // Resident copy layout + per-worker scatter cursors.
  res_off_r_.assign(parts_ + 1, 0);
  res_off_s_.assign(parts_ + 1, 0);
  for (size_t p = 0; p < parts_; ++p) {
    res_off_r_[p + 1] = res_off_r_[p] + (resident_[p] ? hr_[p] : 0);
    res_off_s_[p + 1] = res_off_s_[p] + (resident_[p] ? hs_[p] : 0);
  }
  const auto make_cursors = [&](const std::vector<uint64_t>& per_worker,
                                const std::vector<uint64_t>& offsets,
                                std::vector<uint64_t>* cursors) {
    cursors->assign(static_cast<size_t>(threads) * parts_, 0);
    for (size_t p = 0; p < parts_; ++p) {
      uint64_t at = offsets[p];
      for (int t = 0; t < threads; ++t) {
        (*cursors)[static_cast<size_t>(t) * parts_ + p] = at;
        at += per_worker[static_cast<size_t>(t) * parts_ + p];
      }
    }
  };
  make_cursors(per_worker_r, res_off_r_, &cursors_r_);
  make_cursors(per_worker_s, res_off_s_, &cursors_s_);

  if (Status s = mem::Preflight(
          static_cast<int64_t>(
              (res_off_r_[parts_] + res_off_s_[parts_]) * sizeof(Tuple)),
          "HHJ resident partitions");
      !s.ok()) {
    return s;
  }
  r_res_.Resize(res_off_r_[parts_]);
  s_res_.Resize(res_off_s_[parts_]);

  files_.clear();
  files_.resize(parts_);
  if (!spilled_list_.empty()) {
    if (Status s = spill::CreateRunDir(&dir_); !s.ok()) return s;
    for (const uint32_t p : spilled_list_) {
      auto pf = std::make_unique<PartitionFiles>();
      const std::string base = dir_ + "/p" + std::to_string(p);
      if (Status s = pf->r.Open(base + "_r.spl", page_bytes_); !s.ok()) {
        return s;
      }
      if (Status s = pf->s.Open(base + "_s.spl", page_bytes_); !s.ok()) {
        return s;
      }
      files_[p] = std::move(pf);
    }
  }

  // Restore loads share the last budget quarter across workers; the floor
  // keeps tiny budgets functional (one page in flight plus table slack).
  load_budget_ =
      budget > 0
          ? std::max<int64_t>(budget / (4 * threads),
                              static_cast<int64_t>(2 * page_bytes_ + 4096))
          : std::numeric_limits<int64_t>::max();

  next_resident_.store(0, std::memory_order_relaxed);
  next_spilled_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  pages_written_.store(0, std::memory_order_relaxed);
  pages_read_.store(0, std::memory_order_relaxed);
  max_depth_.store(0, std::memory_order_relaxed);
  bnl_fallbacks_.store(0, std::memory_order_relaxed);
  elapsed_us_.store(0, std::memory_order_relaxed);
  return Status::Ok();
}

template <typename Tracer>
bool HhjJoin<Tracer>::ScatterChunk(const JoinContext& ctx, int worker,
                                   bool is_r, Tracer& tracer) {
  const std::span<const Tuple> in = is_r ? ctx.r : ctx.s;
  const ChunkRange chunk =
      ChunkForThread(in.size(), worker, ctx.spec->num_threads);
  uint64_t* cursors = (is_r ? cursors_r_ : cursors_s_).data() +
                      static_cast<size_t>(worker) * parts_;
  Tuple* out = (is_r ? r_res_ : s_res_).data();
  for (size_t i = chunk.begin; i < chunk.end; ++i) {
    if ((i & kCancelMask) == 0 && ctx.AbortRequested()) return false;
    tracer.Access(&in[i], sizeof(Tuple));
    const uint32_t p = RadixOf(in[i].key, bits_);
    if (resident_[p]) {
      out[cursors[p]] = in[i];
      tracer.Access(&out[cursors[p]], sizeof(Tuple));
      ++cursors[p];
    } else {
      PartitionFiles& pf = *files_[p];
      std::lock_guard<std::mutex> lock(is_r ? pf.mu_r : pf.mu_s);
      spill::SpillWriter& w = is_r ? pf.r : pf.s;
      if (Status s = w.Append(in[i]); !s.ok()) {
        ctx.cancel->Cancel(std::move(s));
        ctx.AbortRequested();
        return false;
      }
    }
  }
  return true;
}

template <typename Tracer>
void HhjJoin<Tracer>::CloseWriters(const JoinContext& ctx) {
  Status first;
  for (const uint32_t p : spilled_list_) {
    PartitionFiles& pf = *files_[p];
    for (spill::SpillWriter* w : {&pf.r, &pf.s}) {
      const Status s = w->Close();
      bytes_written_.fetch_add(w->bytes_written(), std::memory_order_relaxed);
      pages_written_.fetch_add(w->pages_written(), std::memory_order_relaxed);
      if (!s.ok() && first.ok()) first = s;
    }
  }
  if (!first.ok()) ctx.cancel->Cancel(std::move(first));
}

template <typename Tracer>
bool HhjJoin<Tracer>::JoinResident(const JoinContext& ctx, size_t p,
                                   int worker, Tracer& tracer) {
  if (hr_[p] == 0 || hs_[p] == 0) return true;
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  const Tuple* r = r_res_.data() + res_off_r_[p];
  const Tuple* s = s_res_.data() + res_off_s_[p];
  LinearProbeTable<Tracer> table(hr_[p]);
  {
    ScopedPhase build(&prof, Phase::kBuild);
    tracer.SetPhase(Phase::kBuild);
    for (uint64_t i = 0; i < hr_[p]; ++i) {
      if ((i & kCancelMask) == 0 && ctx.AbortRequested()) return false;
      tracer.Access(&r[i], sizeof(Tuple));
      table.Insert(r[i], tracer);
    }
  }
  {
    ScopedPhase probe(&prof, Phase::kProbe);
    tracer.SetPhase(Phase::kProbe);
    if (plan_.batched_probe || plan_.simd_probe) {
      // Batched/SIMD probe in cancel-cadence stripes; HHJ always probes a
      // LinearProbeTable, so kernels=simd takes the AVX2 vertical scan.
      constexpr uint64_t kStripe = kCancelMask + 1;
      const auto on_match = [&](const Tuple& st, const Tuple& rt) {
        sink.OnMatch(st.key, rt.ts, st.ts);
      };
      for (uint64_t i = 0; i < hs_[p]; i += kStripe) {
        if (ctx.AbortRequested()) return false;
        const uint64_t end = std::min<uint64_t>(hs_[p], i + kStripe);
        kernels::ProbeDispatch(table, s + i, end - i, on_match, tracer,
                               plan_);
      }
    } else {
      for (uint64_t i = 0; i < hs_[p]; ++i) {
        if ((i & kCancelMask) == 0 && ctx.AbortRequested()) return false;
        const Tuple t = s[i];
        tracer.Access(&s[i], sizeof(Tuple));
        table.Probe(
            t.key, [&](Tuple rt) { sink.OnMatch(t.key, rt.ts, t.ts); },
            tracer);
      }
    }
  }
  return true;
}

template <typename Tracer>
Status HhjJoin<Tracer>::JoinLoadedRun(const JoinContext& ctx, int worker,
                                      const std::string& r_path,
                                      const std::string& s_path,
                                      uint64_t r_count, Tracer& tracer) {
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  mem::TrackedBuffer<Tuple> r_run;
  LinearProbeTable<Tracer> table(r_count);
  {
    ScopedPhase build(&prof, Phase::kBuild);
    tracer.SetPhase(Phase::kBuild);
    spill::SpillReader rr;
    if (Status s = rr.Open(r_path); !s.ok()) return s;
    Status s = rr.ReadAll(&r_run);
    bytes_read_.fetch_add(rr.bytes_read(), std::memory_order_relaxed);
    pages_read_.fetch_add(rr.pages_read(), std::memory_order_relaxed);
    if (!s.ok()) return s;
    for (size_t i = 0; i < r_run.size(); ++i) {
      if ((i & kCancelMask) == 0 && ctx.Cancelled()) {
        return ctx.cancel->reason();
      }
      table.Insert(r_run[i], tracer);
    }
  }
  ScopedPhase probe(&prof, Phase::kProbe);
  tracer.SetPhase(Phase::kProbe);
  spill::SpillReader sr;
  if (Status s = sr.Open(s_path); !s.ok()) return s;
  mem::TrackedBuffer<Tuple> page;
  bool eof = false;
  Status status;
  while (status.ok()) {
    if (Status s = sr.ReadPage(&page, &eof); !s.ok()) {
      status = std::move(s);
      break;
    }
    if (eof) break;
    if (ctx.Cancelled()) {
      status = ctx.cancel->reason();
      break;
    }
    if (plan_.batched_probe || plan_.simd_probe) {
      // One spill page is well under the cancel stripe; dispatch it whole.
      kernels::ProbeDispatch(
          table, page.data(), page.size(),
          [&](const Tuple& st, const Tuple& rt) {
            sink.OnMatch(st.key, rt.ts, st.ts);
          },
          tracer, plan_);
    } else {
      for (size_t i = 0; i < page.size(); ++i) {
        if ((i & kCancelMask) == 0 && ctx.Cancelled()) {
          status = ctx.cancel->reason();
          break;
        }
        const Tuple t = page[i];
        table.Probe(
            t.key, [&](Tuple rt) { sink.OnMatch(t.key, rt.ts, t.ts); },
            tracer);
      }
    }
  }
  bytes_read_.fetch_add(sr.bytes_read(), std::memory_order_relaxed);
  pages_read_.fetch_add(sr.pages_read(), std::memory_order_relaxed);
  return status;
}

template <typename Tracer>
Status HhjJoin<Tracer>::RepartitionRun(const JoinContext& ctx, int worker,
                                       const std::string& base,
                                       const std::string& r_path,
                                       const std::string& s_path, int depth,
                                       Tracer& tracer) {
  // Split both runs 4 ways on the next-higher key bits (the low bits_ are
  // constant within a partition, and parent levels consumed theirs).
  const int shift = bits_ + depth * kChildBits;
  const int children = 1 << kChildBits;
  std::vector<std::string> child_bases(children);
  std::vector<uint64_t> child_r(children, 0), child_s(children, 0);

  const auto split = [&](const std::string& path, bool is_r,
                         std::vector<uint64_t>* counts) -> Status {
    std::vector<spill::SpillWriter> out(children);
    for (int c = 0; c < children; ++c) {
      child_bases[c] = base + "_c" + std::to_string(c);
      if (Status s = out[c].Open(
              child_bases[c] + (is_r ? "_r.spl" : "_s.spl"), page_bytes_);
          !s.ok()) {
        return s;
      }
    }
    spill::SpillReader in;
    if (Status s = in.Open(path); !s.ok()) return s;
    mem::TrackedBuffer<Tuple> page;
    bool eof = false;
    Status status;
    while (status.ok()) {
      if (ctx.Cancelled()) {
        status = ctx.cancel->reason();
        break;
      }
      if (Status s = in.ReadPage(&page, &eof); !s.ok()) {
        status = std::move(s);
        break;
      }
      if (eof) break;
      for (size_t i = 0; i < page.size(); ++i) {
        const uint32_t c = (page[i].key >> shift) & kChildMask;
        if (Status s = out[c].Append(page[i]); !s.ok()) {
          status = std::move(s);
          break;
        }
      }
    }
    bytes_read_.fetch_add(in.bytes_read(), std::memory_order_relaxed);
    pages_read_.fetch_add(in.pages_read(), std::memory_order_relaxed);
    for (int c = 0; c < children; ++c) {
      const Status s = out[c].Close();
      bytes_written_.fetch_add(out[c].bytes_written(),
                               std::memory_order_relaxed);
      pages_written_.fetch_add(out[c].pages_written(),
                               std::memory_order_relaxed);
      if (!s.ok() && status.ok()) status = s;
      (*counts)[c] = out[c].tuples();
    }
    return status;
  };

  {
    ScopedPhase part(&ctx.profile(worker), Phase::kPartition);
    tracer.SetPhase(Phase::kPartition);
    if (Status s = split(r_path, true, &child_r); !s.ok()) return s;
    if (Status s = split(s_path, false, &child_s); !s.ok()) return s;
  }
  // The parent runs are fully consumed; dropping them bounds disk usage to
  // O(input) per recursion level instead of accumulating every level.
  spill::RemoveRunDir(r_path);
  spill::RemoveRunDir(s_path);

  for (int c = 0; c < children; ++c) {
    if (Status s = JoinSpilled(ctx, worker, child_bases[c],
                               child_bases[c] + "_r.spl",
                               child_bases[c] + "_s.spl", child_r[c],
                               child_s[c], depth + 1, tracer);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

template <typename Tracer>
Status HhjJoin<Tracer>::JoinBlockNestedLoop(const JoinContext& ctx, int worker,
                                            const std::string& r_path,
                                            const std::string& s_path,
                                            Tracer& tracer) {
  bnl_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  ScopedPhase probe(&prof, Phase::kProbe);
  tracer.SetPhase(Phase::kProbe);

  const size_t block_tuples = static_cast<size_t>(
      std::max<int64_t>(load_budget_ / (2 * static_cast<int64_t>(sizeof(Tuple))),
                        1024));
  spill::SpillReader rr, sr;
  if (Status s = rr.Open(r_path); !s.ok()) return s;
  if (Status s = sr.Open(s_path); !s.ok()) return s;

  mem::TrackedBuffer<Tuple> block, r_page, s_page;
  bool r_eof = false;
  Status status;
  while (status.ok() && !r_eof) {
    // Fill one R block from pages.
    block.Clear();
    while (block.size() < block_tuples) {
      if (Status s = rr.ReadPage(&r_page, &r_eof); !s.ok()) {
        status = std::move(s);
        break;
      }
      if (r_eof) break;
      for (size_t i = 0; i < r_page.size(); ++i) block.PushBack(r_page[i]);
    }
    if (!status.ok() || block.empty()) break;
    // Stream all of S against the block.
    if (Status s = sr.Rewind(); !s.ok()) {
      status = std::move(s);
      break;
    }
    bool s_eof = false;
    while (status.ok()) {
      if (ctx.Cancelled()) {
        status = ctx.cancel->reason();
        break;
      }
      if (Status s = sr.ReadPage(&s_page, &s_eof); !s.ok()) {
        status = std::move(s);
        break;
      }
      if (s_eof) break;
      for (size_t i = 0; i < s_page.size(); ++i) {
        const Tuple t = s_page[i];
        for (size_t j = 0; j < block.size(); ++j) {
          if (block[j].key == t.key) sink.OnMatch(t.key, block[j].ts, t.ts);
        }
      }
    }
  }
  bytes_read_.fetch_add(rr.bytes_read() + sr.bytes_read(),
                        std::memory_order_relaxed);
  pages_read_.fetch_add(rr.pages_read() + sr.pages_read(),
                        std::memory_order_relaxed);
  return status;
}

template <typename Tracer>
void HhjJoin<Tracer>::NoteDepth(int depth) {
  uint64_t seen = max_depth_.load(std::memory_order_relaxed);
  while (seen < static_cast<uint64_t>(depth) &&
         !max_depth_.compare_exchange_weak(seen, static_cast<uint64_t>(depth),
                                           std::memory_order_relaxed)) {
  }
}

template <typename Tracer>
void HhjJoin<Tracer>::NoteElapsedUs(uint64_t us) {
  uint64_t seen = elapsed_us_.load(std::memory_order_relaxed);
  while (seen < us && !elapsed_us_.compare_exchange_weak(
                          seen, us, std::memory_order_relaxed)) {
  }
}

template <typename Tracer>
Status HhjJoin<Tracer>::JoinSpilled(const JoinContext& ctx, int worker,
                                    const std::string& base,
                                    const std::string& r_path,
                                    const std::string& s_path,
                                    uint64_t r_count, uint64_t s_count,
                                    int depth, Tracer& tracer) {
  NoteDepth(depth);
  if (ctx.Cancelled()) return ctx.cancel->reason();
  if (r_count == 0 || s_count == 0) return Status::Ok();
  // Load path: the whole R run plus its build table fits this worker's
  // restore budget.
  const int64_t load_cost = static_cast<int64_t>(
      r_count * (sizeof(Tuple) + kTableBytesPerBuildTuple));
  if (load_cost <= load_budget_) {
    return JoinLoadedRun(ctx, worker, r_path, s_path, r_count, tracer);
  }
  // Still too large: repartition on higher key bits while progress is
  // possible (shift past bit 30 cannot split keys, which stay < 2^31).
  if (depth < kMaxDepth && bits_ + (depth + 1) * kChildBits <= 30) {
    return RepartitionRun(ctx, worker, base, r_path, s_path, depth, tracer);
  }
  // Recursion exhausted (over-duplicated keys): exact block-nested-loop.
  return JoinBlockNestedLoop(ctx, worker, r_path, s_path, tracer);
}

template <typename Tracer>
void HhjJoin<Tracer>::RunWorker(const JoinContext& ctx, int worker) {
  PhaseProfile& prof = ctx.profile(worker);
  Tracer tracer = MakeWorkerTracer<Tracer>(ctx, worker);

  // Lazy approach: wait out the window before processing starts.
  {
    ScopedPhase wait(&prof, Phase::kWait);
    ctx.WaitUntil(ctx.window_close_ms);
  }
  if (ctx.AbortRequested()) return;

  // Phase 1 — partition: resident tuples scatter into the in-memory copies
  // (disjoint per-worker cursor ranges, no locks); cold tuples append to
  // their partition's run file under its lock.
  {
    ScopedPhase part(&prof, Phase::kPartition);
    tracer.SetPhase(Phase::kPartition);
    if (!ScatterChunk(ctx, worker, /*is_r=*/true, tracer)) return;
    if (!ScatterChunk(ctx, worker, /*is_r=*/false, tracer)) return;
  }
  ctx.barrier->arrive_and_wait();

  // Worker 0 seals every run file so readers below never see a buffered
  // tail; a failed flush cancels the run for everyone.
  uint64_t spill_us = 0;
  if (worker == 0 && !spilled_list_.empty()) {
    const uint64_t t0 = NowUs();
    ScopedPhase part(&prof, Phase::kPartition);
    CloseWriters(ctx);
    spill_us += NowUs() - t0;
  }
  ctx.barrier->arrive_and_wait();
  if (ctx.AbortRequested()) return;

  // Phase 2 — resident partitions, one per claim off a shared queue.
  while (true) {
    const size_t i = next_resident_.fetch_add(1, std::memory_order_relaxed);
    if (i >= resident_list_.size()) break;
    if (!JoinResident(ctx, resident_list_[i], worker, tracer)) return;
  }

  // Phase 3 — spilled partitions, restored under the per-worker load
  // budget, recursing / degrading as needed.
  if (!spilled_list_.empty()) {
    const uint64_t t0 = NowUs();
    while (true) {
      const size_t i = next_spilled_.fetch_add(1, std::memory_order_relaxed);
      if (i >= spilled_list_.size()) break;
      const uint32_t p = spilled_list_[i];
      const std::string base = dir_ + "/p" + std::to_string(p);
      Status s = JoinSpilled(ctx, worker, base, base + "_r.spl",
                             base + "_s.spl", hr_[p], hs_[p], 0, tracer);
      if (!s.ok()) {
        ctx.cancel->Cancel(std::move(s));
        ctx.AbortRequested();
        NoteElapsedUs(spill_us + (NowUs() - t0));
        return;
      }
    }
    spill_us += NowUs() - t0;
  }
  if (spill_us > 0) NoteElapsedUs(spill_us);
}

template <typename Tracer>
void HhjJoin<Tracer>::Teardown() {
  files_.clear();
  spill::RemoveRunDir(dir_);
  dir_.clear();
  r_res_ = mem::TrackedBuffer<Tuple>();
  s_res_ = mem::TrackedBuffer<Tuple>();
  hr_.clear();
  hs_.clear();
  resident_.clear();
  res_off_r_.clear();
  res_off_s_.clear();
  cursors_r_.clear();
  cursors_s_.clear();
}

template <typename Tracer>
const SpillStats* HhjJoin<Tracer>::spill_stats() {
  snapshot_.partitions = parts_;
  snapshot_.partitions_spilled = spilled_list_.size();
  snapshot_.partitions_resident = resident_list_.size();
  snapshot_.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  snapshot_.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  snapshot_.pages_written = pages_written_.load(std::memory_order_relaxed);
  snapshot_.pages_read = pages_read_.load(std::memory_order_relaxed);
  snapshot_.recursion_depth = max_depth_.load(std::memory_order_relaxed);
  snapshot_.bnl_fallbacks = bnl_fallbacks_.load(std::memory_order_relaxed);
  snapshot_.spill_elapsed_ms =
      static_cast<double>(elapsed_us_.load(std::memory_order_relaxed)) / 1000.0;
  return &snapshot_;
}

template class HhjJoin<NullTracer>;
template class HhjJoin<SimTracer>;

std::unique_ptr<JoinAlgorithm> MakeHhj() {
  return std::make_unique<HhjJoin<NullTracer>>();
}

std::unique_ptr<JoinAlgorithm> MakeHhjTraced() {
  return std::make_unique<HhjJoin<SimTracer>>();
}

}  // namespace iawj
