#include "src/join/eager_engine.h"

#include <thread>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/join/pmj.h"
#include "src/join/shj.h"
#include "src/profiling/trace.h"

namespace iawj {

RouterState::~RouterState() {
  mem::Add(-static_cast<int64_t>(last_dispatch_.size()) * kBytesPerEntry);
}

void RouterState::Note(uint32_t key, int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      last_dispatch_.try_emplace(key, static_cast<uint32_t>(worker));
  it->second = static_cast<uint32_t>(worker);
  ++dispatched_;
  if (inserted) mem::Add(kBytesPerEntry);
}

template <typename Tracer>
std::string_view EagerJoin<Tracer>::name() const {
  if (kind_ == EagerKind::kShj) {
    return scheme_ == DistributionScheme::kJoinMatrix ? "SHJ-JM" : "SHJ-JB";
  }
  return scheme_ == DistributionScheme::kJoinMatrix ? "PMJ-JM" : "PMJ-JB";
}

template <typename Tracer>
Status EagerJoin<Tracer>::Setup(const JoinContext& ctx) {
  distribution_ = std::make_unique<Distribution>(
      scheme_, ctx.spec->num_threads, ctx.spec->jb_group_size);
  if (scheme_ == DistributionScheme::kJoinBiclique) {
    router_ = std::make_unique<RouterState>();
  }
  morsel_ = ctx.MorselMode();
  if (morsel_) {
    // One claim lane per core group (JM: a single lane spanning all
    // workers). Workers resolve S morsel ownership through the grid in the
    // pull loop instead of the static seq % lane-count rule.
    s_claims_.Reset(ctx.s.size(), ctx.scheduler->morsel_size(),
                    distribution_->num_groups());
  }
  return Status::Ok();
}

template <typename Tracer>
std::unique_ptr<EagerState> EagerJoin<Tracer>::MakeState(
    const JoinContext& ctx, int worker, Tracer tracer) const {
  (void)worker;
  const int threads = ctx.spec->num_threads;
  EagerStateConfig config;
  config.pmj_delta = ctx.spec->pmj_delta;
  config.store_pointers = !ctx.spec->eager_physical_partition;
  config.use_simd = ctx.spec->use_simd;
  const KernelPlan plan =
      ResolveKernelPlan(ctx.spec->kernels, Tracer::kEnabled);
  config.cache_kernels = plan.batched_probe;
  config.simd_probe = plan.simd_probe;
  if (scheme_ == DistributionScheme::kJoinMatrix) {
    config.expected_r = ctx.r.size();  // R replicated to every worker
    config.expected_s = ctx.s.size() / threads + 1;
  } else {
    // R replicated within one of T/g groups; S partitioned across workers.
    config.expected_r =
        ctx.r.size() / static_cast<uint64_t>(distribution_->num_groups()) + 1;
    config.expected_s = ctx.s.size() / threads + 1;
  }

  if (kind_ == EagerKind::kPmj) {
    return std::make_unique<PmjState<Tracer>>(config, std::move(tracer));
  }
  if (ctx.spec->hash_table_kind == HashTableKind::kLinearProbe) {
    return std::make_unique<ShjLinearState<Tracer>>(config,
                                                    std::move(tracer));
  }
  if (config.store_pointers) {
    return std::make_unique<ShjPointerState<Tracer>>(config,
                                                     std::move(tracer));
  }
  return std::make_unique<ShjValueState<Tracer>>(config, std::move(tracer));
}

template <typename Tracer>
void EagerJoin<Tracer>::RunWorker(const JoinContext& ctx, int worker) {
  PhaseProfile& prof = ctx.profile(worker);
  MatchSink& sink = ctx.sink(worker);
  Tracer tracer = MakeWorkerTracer<Tracer>(ctx, worker);
  const Distribution& dist = *distribution_;
  const bool physical = ctx.spec->eager_physical_partition;
  const bool jb = scheme_ == DistributionScheme::kJoinBiclique;
  const int threads = ctx.spec->num_threads;

  std::unique_ptr<EagerState> state = MakeState(ctx, worker, tracer);
  RouterState* router = router_.get();

  // Morsel mode: S ownership is first-claimant per morsel (see ClaimGrid).
  // One cached (morsel, owned) pair suffices because a worker only ever
  // consults its own lane and scans seq in order.
  const bool morsel = morsel_;
  MorselScheduler* const sched = ctx.scheduler;
  const int group = jb ? worker / dist.group_size() : 0;
  const int group_base = group * dist.group_size();
  size_t cur_morsel = static_cast<size_t>(-1);
  bool cur_owned = false;
  const auto owns_s = [&](const Tuple& t, uint64_t seq) -> bool {
    if (!morsel) return dist.OwnsS(worker, t, seq);
    if (jb && dist.GroupOf(t.key) != group) return false;
    const size_t m = s_claims_.morsel_of(seq);
    if (m != cur_morsel) {
      cur_morsel = m;
      const int winner = s_claims_.Claim(group, m, worker);
      cur_owned = winner == worker;
      if (cur_owned) {
        MorselStats& st = sched->stats(worker);
        ++st.morsels;
        // The worker the static round-robin rule would have picked; a claim
        // by anyone else is a steal (remote when it crosses NUMA nodes).
        const int home =
            jb ? group_base + static_cast<int>(
                                  m % static_cast<size_t>(dist.group_size()))
               : static_cast<int>(m % static_cast<size_t>(threads));
        if (home != worker) {
          ++st.steals;
          if (sched->node_of(home) != sched->node_of(worker)) {
            ++st.remote_steals;
          }
        }
      }
    }
    return cur_owned;
  };

  // Worker-local copies when physical partitioning is on. Reserved up front
  // so value-table pointers never dangle (value states copy immediately
  // anyway; pointer states are only used without physical partitioning).
  mem::TrackedBuffer<Tuple> local_r;
  mem::TrackedBuffer<Tuple> local_s;

  PhaseStopwatch sw(&prof);
  const std::span<const Tuple> r = ctx.r;
  const std::span<const Tuple> s = ctx.s;
  size_t ir = 0, is = 0;
  // Periodic trace counter of pulled tuples; power-of-two mask keeps the
  // sampling test off the critical path when tracing is disabled.
  constexpr size_t kCounterMask = 4095;
  size_t last_counter_at = static_cast<size_t>(-1);

  // Fault: this worker wedges before pulling a single tuple — the shape of a
  // livelocked consumer. It parks until the deadline watchdog (or a peer's
  // failure) cancels the run; eager workers use no barrier, so a plain
  // return unwinds cleanly.
  if (fault::Enabled() && fault::Inject("eager_stall")) {
    sw.Switch(Phase::kWait);
    while (!ctx.Cancelled()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    sw.Stop();
    return;
  }

  // The §4.2.2 pull loop: alternate between streams, consuming whatever has
  // arrived; stall only when the worker outruns both streams.
  while (ir < r.size() || is < s.size()) {
    if (((ir + is) & kCounterMask) == 0 && ctx.Cancelled()) {
      sw.Stop();
      return;
    }
    bool progressed = false;
    if (trace::Active() && ((ir + is) & kCounterMask) == 0 &&
        ir + is != last_counter_at) {
      last_counter_at = ir + is;
      trace::Counter("eager_pulled", static_cast<double>(last_counter_at));
    }

    if (ir < r.size() && ctx.clock->HasArrived(r[ir].ts)) {
      sw.Switch(Phase::kPartition);
      tracer.SetPhase(Phase::kPartition);
      const Tuple& t = r[ir];
      tracer.Access(&t, sizeof(Tuple));
      if (dist.OwnsR(worker, t, ir)) {
        if (jb) router->Note(t.key, worker);
        if (physical) {
          local_r.PushBack(t);
          state->OnR(local_r[local_r.size() - 1], sink, sw);
        } else {
          state->OnR(t, sink, sw);
        }
      }
      ++ir;
      progressed = true;
    }

    if (is < s.size() && ctx.clock->HasArrived(s[is].ts)) {
      sw.Switch(Phase::kPartition);
      tracer.SetPhase(Phase::kPartition);
      const Tuple& t = s[is];
      tracer.Access(&t, sizeof(Tuple));
      if (owns_s(t, is)) {
        if (morsel) ++sched->stats(worker).tuples;
        if (jb) router->Note(t.key, worker);
        if (physical) {
          local_s.PushBack(t);
          state->OnS(local_s[local_s.size() - 1], sink, sw);
        } else {
          state->OnS(t, sink, sw);
        }
      }
      ++is;
      progressed = true;
    }

    if (!progressed) {
      if (ctx.Cancelled()) {
        sw.Stop();
        return;
      }
      sw.Switch(Phase::kWait);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }

  if (trace::Active()) {
    trace::Instant("eager_streams_drained", static_cast<double>(ir + is));
  }
  state->Finish(sink, sw);
  sw.Stop();
}

template class EagerJoin<NullTracer>;
template class EagerJoin<SimTracer>;

namespace {

template <typename Tracer>
std::unique_ptr<JoinAlgorithm> MakeEagerImpl(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kShjJm:
      return std::make_unique<EagerJoin<Tracer>>(
          EagerKind::kShj, DistributionScheme::kJoinMatrix);
    case AlgorithmId::kShjJb:
      return std::make_unique<EagerJoin<Tracer>>(
          EagerKind::kShj, DistributionScheme::kJoinBiclique);
    case AlgorithmId::kPmjJm:
      return std::make_unique<EagerJoin<Tracer>>(
          EagerKind::kPmj, DistributionScheme::kJoinMatrix);
    case AlgorithmId::kPmjJb:
      return std::make_unique<EagerJoin<Tracer>>(
          EagerKind::kPmj, DistributionScheme::kJoinBiclique);
    default:
      IAWJ_LOG(Fatal) << "not an eager algorithm";
      return nullptr;
  }
}

}  // namespace

std::unique_ptr<JoinAlgorithm> MakeEager(AlgorithmId id) {
  return MakeEagerImpl<NullTracer>(id);
}

std::unique_ptr<JoinAlgorithm> MakeEagerTraced(AlgorithmId id) {
  return MakeEagerImpl<SimTracer>(id);
}

}  // namespace iawj
