// Parallel Radix Join (PRJ), Kim et al. / Balkesen et al. — lazy, hash,
// cache-aware physical replication.
//
// Both relations are radix-partitioned by the low #r bits of the key into
// contiguous partitions; partitions then join independently with a
// cache-resident bucket-chain hash table. Partitioning runs fully in
// parallel (per-thread histograms, cooperative prefix sums, scatter) in one
// pass, or — JoinSpec::radix_passes == 2 — in Balkesen's two-pass variant
// that keeps the number of concurrently open write streams per pass at
// 2^(#r/2), easing TLB pressure for large #r. The per-partition joins drain
// from a shared atomic task queue, so key skew that collapses tuples into
// few partitions serializes PRJ — the effect the paper measures in
// Figure 13.
#ifndef IAWJ_JOIN_PRJ_H_
#define IAWJ_JOIN_PRJ_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/kernels.h"
#include "src/join/context.h"
#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

template <typename Tracer = NullTracer>
class PrjJoin : public JoinAlgorithm {
 public:
  std::string_view name() const override { return "PRJ"; }

  Status Setup(const JoinContext& ctx) override;
  void RunWorker(const JoinContext& ctx, int worker) override;
  void Teardown() override;

 private:
  // Both return true when the run was cancelled mid-phase; the caller must
  // unwind from RunWorker without touching the barrier (see AbortRequested).
  bool RunSecondPass(const JoinContext& ctx, int worker, Tracer& tracer);
  bool JoinPartitions(const JoinContext& ctx, int worker, Tracer& tracer);

  // Bit split: pass 1 uses the low bits1_ bits, pass 2 the next bits2_.
  int bits1_ = 0;
  int bits2_ = 0;
  // Resolved once in Setup: the per-site kernel plan (common/kernels.h) —
  // SWWC scatter, batched/SIMD probe — vs the scalar loops. Builds are
  // always scalar (the batched build was retired; see kernels.h).
  KernelPlan plan_;
  bool use_cache_kernels_ = false;  // plan_.swwc_scatter, for the scatter API
  // Resolved once in Setup: morsel-driven scheduling (join/scheduler.h).
  // Pass 1 histograms/cursors become per-morsel instead of per-thread, and
  // the refine/join task queues drain through morsel phases so steals are
  // counted and NUMA-ordered.
  bool morsel_ = false;
  size_t parts1_ = 0;
  size_t parts_total_ = 0;

  // Pass-1 scattered copies, partition-contiguous.
  mem::TrackedBuffer<Tuple> r_out_;
  mem::TrackedBuffer<Tuple> s_out_;
  // Pass-2 refined copies (radix_passes == 2 only).
  mem::TrackedBuffer<Tuple> r_out2_;
  mem::TrackedBuffer<Tuple> s_out2_;

  // hist[i * parts1 + p]: tuples of pass-1 partition p in chunk i, where a
  // chunk is thread i's equisized range (static) or the i-th morsel
  // (morsel mode — same grid as the pass-1 phases below).
  std::vector<uint64_t> hist_r_;
  std::vector<uint64_t> hist_s_;
  // Morsel mode only: scatter cursor rows per morsel, cursors_[m * parts1 +
  // p] = offsets[p] + sum of partition-p histogram counts of morsels < m.
  // Worker 0 publishes them between the histogram and scatter barriers;
  // each row is then mutated exclusively by its morsel's claimant.
  std::vector<uint64_t> cursors_r_;
  std::vector<uint64_t> cursors_s_;
  // Morsel mode only: pass-1 morsel grids (histogram and scatter walk the
  // same grid so cursor prefixes line up) and task phases for the dynamic
  // refine/join queues. Pass-1 morsel sizes are raised so the histogram
  // block stays bounded (<= kMaxPass1Morsels per side).
  static constexpr size_t kMaxPass1Morsels = 4096;
  size_t morsel_r_ = 0;
  size_t morsel_s_ = 0;
  MorselPhase hist_phase_r_;
  MorselPhase hist_phase_s_;
  MorselPhase scatter_phase_r_;
  MorselPhase scatter_phase_s_;
  MorselPhase refine_phase_;
  MorselPhase join_phase_;
  // Pass-1 partition start offsets (size parts1 + 1).
  std::vector<uint64_t> offsets_r_;
  std::vector<uint64_t> offsets_s_;
  // Final partition offsets (size parts_total + 1), memory order.
  std::vector<uint64_t> final_off_r_;
  std::vector<uint64_t> final_off_s_;

  std::atomic<size_t> next_refine_{0};
  std::atomic<size_t> next_join_{0};
};

std::unique_ptr<JoinAlgorithm> MakePrj();
std::unique_ptr<JoinAlgorithm> MakePrjTraced();

}  // namespace iawj

#endif  // IAWJ_JOIN_PRJ_H_
