// Parallel Radix Join (PRJ), Kim et al. / Balkesen et al. — lazy, hash,
// cache-aware physical replication.
//
// Both relations are radix-partitioned by the low #r bits of the key into
// contiguous partitions; partitions then join independently with a
// cache-resident bucket-chain hash table. Partitioning runs fully in
// parallel (per-thread histograms, cooperative prefix sums, scatter) in one
// pass, or — JoinSpec::radix_passes == 2 — in Balkesen's two-pass variant
// that keeps the number of concurrently open write streams per pass at
// 2^(#r/2), easing TLB pressure for large #r. The per-partition joins drain
// from a shared atomic task queue, so key skew that collapses tuples into
// few partitions serializes PRJ — the effect the paper measures in
// Figure 13.
#ifndef IAWJ_JOIN_PRJ_H_
#define IAWJ_JOIN_PRJ_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/join/context.h"
#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

template <typename Tracer = NullTracer>
class PrjJoin : public JoinAlgorithm {
 public:
  std::string_view name() const override { return "PRJ"; }

  Status Setup(const JoinContext& ctx) override;
  void RunWorker(const JoinContext& ctx, int worker) override;
  void Teardown() override;

 private:
  // Both return true when the run was cancelled mid-phase; the caller must
  // unwind from RunWorker without touching the barrier (see AbortRequested).
  bool RunSecondPass(const JoinContext& ctx, Tracer& tracer);
  bool JoinPartitions(const JoinContext& ctx, int worker, Tracer& tracer);

  // Bit split: pass 1 uses the low bits1_ bits, pass 2 the next bits2_.
  int bits1_ = 0;
  int bits2_ = 0;
  // Resolved once in Setup: cache-conscious kernels (SWWC scatter, batched
  // prefetch build/probe) vs the scalar loops (common/kernels.h).
  bool use_cache_kernels_ = false;
  size_t parts1_ = 0;
  size_t parts_total_ = 0;

  // Pass-1 scattered copies, partition-contiguous.
  mem::TrackedBuffer<Tuple> r_out_;
  mem::TrackedBuffer<Tuple> s_out_;
  // Pass-2 refined copies (radix_passes == 2 only).
  mem::TrackedBuffer<Tuple> r_out2_;
  mem::TrackedBuffer<Tuple> s_out2_;

  // hist[t * parts1 + p]: tuples of pass-1 partition p in thread t's chunk.
  std::vector<uint64_t> hist_r_;
  std::vector<uint64_t> hist_s_;
  // Pass-1 partition start offsets (size parts1 + 1).
  std::vector<uint64_t> offsets_r_;
  std::vector<uint64_t> offsets_s_;
  // Final partition offsets (size parts_total + 1), memory order.
  std::vector<uint64_t> final_off_r_;
  std::vector<uint64_t> final_off_s_;

  std::atomic<size_t> next_refine_{0};
  std::atomic<size_t> next_join_{0};
};

std::unique_ptr<JoinAlgorithm> MakePrj();
std::unique_ptr<JoinAlgorithm> MakePrjTraced();

}  // namespace iawj

#endif  // IAWJ_JOIN_PRJ_H_
