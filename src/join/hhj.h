// Hybrid Hash Join (HHJ) — lazy, hash, spill-capable (ISSUE 7).
//
// The paper's eight algorithms all assume the window fits in RAM; HHJ is
// the robustness-layer ninth that survives larger-than-memory windows with
// bounded memory. It radix-partitions both relations (the same
// content-based split as PRJ's first pass), keeps the hottest partitions —
// ranked by the partitioning histogram, PanJoin-style — resident in
// tracker-accounted buffers up to half the memory budget, and spills the
// cold tail to per-partition run files (io/spill.h). Resident partitions
// join in memory; spilled partitions are restored one at a time under a
// per-worker load budget, recursively repartitioned when a run is still too
// large, and block-nested-looped once the bounded recursion depth is
// exhausted (a single over-duplicated key cannot recurse forever). The
// answer is always exact; memory pressure becomes disk traffic instead of
// a failed run.
//
// Budget layout (B = IAWJ_MEM_BUDGET; unlimited keeps everything resident):
//   B/2  resident partition copies + their transient build tables
//   B/4  spill write buffers (page size shrinks so 2 * partitions fit)
//   B/4  restore loads: each worker loads at most B/(4*threads) at a time
#ifndef IAWJ_JOIN_HHJ_H_
#define IAWJ_JOIN_HHJ_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/kernels.h"
#include "src/io/spill.h"
#include "src/join/context.h"
#include "src/memory/tracker.h"

namespace iawj {

template <typename Tracer = NullTracer>
class HhjJoin : public JoinAlgorithm {
 public:
  std::string_view name() const override { return "HHJ"; }

  Status Setup(const JoinContext& ctx) override;
  void RunWorker(const JoinContext& ctx, int worker) override;
  void Teardown() override;

  const SpillStats* spill_stats() override;

 private:
  // One spilled partition's run files plus the append locks the scatter
  // phase serializes on (writers themselves are single-threaded).
  struct PartitionFiles {
    spill::SpillWriter r, s;
    std::mutex mu_r, mu_s;
  };

  // Scatters this worker's chunk of one relation: resident tuples into the
  // in-memory copy, cold tuples into their partition's run file. Returns
  // false when the run was cancelled (barrier slot already dropped).
  bool ScatterChunk(const JoinContext& ctx, int worker, bool is_r,
                    Tracer& tracer);

  // Flushes and closes every spill writer; failures cancel the run.
  void CloseWriters(const JoinContext& ctx);

  // Joins one resident partition (build over R, probe with S). Returns
  // false when cancelled.
  bool JoinResident(const JoinContext& ctx, size_t p, int worker,
                    Tracer& tracer);

  // Restores and joins one spilled run pair, recursing into a finer
  // repartitioning when R does not fit the load budget and falling back to
  // block-nested-loop at the depth bound.
  Status JoinSpilled(const JoinContext& ctx, int worker,
                     const std::string& base, const std::string& r_path,
                     const std::string& s_path, uint64_t r_count,
                     uint64_t s_count, int depth, Tracer& tracer);

  Status JoinLoadedRun(const JoinContext& ctx, int worker,
                       const std::string& r_path, const std::string& s_path,
                       uint64_t r_count, Tracer& tracer);
  Status RepartitionRun(const JoinContext& ctx, int worker,
                        const std::string& base, const std::string& r_path,
                        const std::string& s_path, int depth, Tracer& tracer);
  Status JoinBlockNestedLoop(const JoinContext& ctx, int worker,
                             const std::string& r_path,
                             const std::string& s_path, Tracer& tracer);

  void NoteDepth(int depth);
  void NoteElapsedUs(uint64_t us);

  // Resolved once in Setup; HHJ builds are scalar (its tables are private
  // per worker), but the probe loops dispatch on the plan — batched
  // prefetching or, on the linear-probe tables HHJ always uses, the AVX2
  // vertical probe (hash/simd_probe.h).
  KernelPlan plan_;
  int bits_ = 0;
  size_t parts_ = 0;
  size_t page_bytes_ = 0;
  int64_t load_budget_ = 0;  // per-worker restore bytes (tuples + table)

  std::vector<uint64_t> hr_, hs_;           // per-partition tuple counts
  std::vector<uint8_t> resident_;           // partition -> kept in memory?
  std::vector<uint64_t> res_off_r_, res_off_s_;  // resident copy offsets
  std::vector<uint64_t> cursors_r_, cursors_s_;  // [worker][partition]
  mem::TrackedBuffer<Tuple> r_res_, s_res_;

  std::string dir_;  // this run's spill directory; empty = nothing spilled
  std::vector<std::unique_ptr<PartitionFiles>> files_;  // [partition]
  std::vector<uint32_t> resident_list_, spilled_list_;
  std::atomic<size_t> next_resident_{0}, next_spilled_{0};

  std::atomic<uint64_t> bytes_written_{0}, bytes_read_{0};
  std::atomic<uint64_t> pages_written_{0}, pages_read_{0};
  std::atomic<uint64_t> max_depth_{0}, bnl_fallbacks_{0};
  std::atomic<uint64_t> elapsed_us_{0};  // max over workers
  SpillStats snapshot_;
};

// Instantiates the production (NullTracer) variant.
std::unique_ptr<JoinAlgorithm> MakeHhj();
// Instantiates the cache-profiling (SimTracer) variant.
std::unique_ptr<JoinAlgorithm> MakeHhjTraced();

}  // namespace iawj

#endif  // IAWJ_JOIN_HHJ_H_
