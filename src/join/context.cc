#include "src/join/context.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/stream/distribution.h"

namespace iawj {

void JoinContext::WaitUntil(double stream_ms) const {
  if (clock->mode() == Clock::Mode::kInstant) return;
  while (!Cancelled()) {
    const double remaining_stream = stream_ms - clock->NowMs();
    if (remaining_stream <= 0) return;
    const double wall_ms =
        std::min(1.0, remaining_stream / clock->time_scale());
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wall_ms));
  }
}

std::string_view AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kNpj:
      return "NPJ";
    case AlgorithmId::kPrj:
      return "PRJ";
    case AlgorithmId::kMway:
      return "MWAY";
    case AlgorithmId::kMpass:
      return "MPASS";
    case AlgorithmId::kShjJm:
      return "SHJ-JM";
    case AlgorithmId::kShjJb:
      return "SHJ-JB";
    case AlgorithmId::kPmjJm:
      return "PMJ-JM";
    case AlgorithmId::kPmjJb:
      return "PMJ-JB";
    case AlgorithmId::kHhj:
      return "HHJ";
  }
  return "?";
}

bool IsLazy(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kNpj:
    case AlgorithmId::kPrj:
    case AlgorithmId::kMway:
    case AlgorithmId::kMpass:
    case AlgorithmId::kHhj:
      return true;
    default:
      return false;
  }
}

bool IsSortBased(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kMway:
    case AlgorithmId::kMpass:
    case AlgorithmId::kPmjJm:
    case AlgorithmId::kPmjJb:
      return true;
    default:
      return false;
  }
}

Status JoinSpec::Validate(AlgorithmId id) const {
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (window_ms < 1) {
    return Status::InvalidArgument("window_ms must be >= 1");
  }
  if (time_scale <= 0) {
    return Status::InvalidArgument("time_scale must be > 0");
  }
  if ((id == AlgorithmId::kPrj || id == AlgorithmId::kHhj) &&
      (radix_bits < 1 || radix_bits > 24)) {
    return Status::InvalidArgument("radix_bits must be in [1, 24]");
  }
  if (id == AlgorithmId::kPrj && (radix_passes < 1 || radix_passes > 2)) {
    return Status::InvalidArgument("radix_passes must be 1 or 2");
  }
  if ((id == AlgorithmId::kPmjJm || id == AlgorithmId::kPmjJb) &&
      (pmj_delta <= 0 || pmj_delta > 1.0)) {
    return Status::InvalidArgument("pmj_delta must be in (0, 1]");
  }
  if (id == AlgorithmId::kShjJb || id == AlgorithmId::kPmjJb) {
    return Distribution::Validate(DistributionScheme::kJoinBiclique,
                                  num_threads, jb_group_size);
  }
  return Status::Ok();
}

}  // namespace iawj
