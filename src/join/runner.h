// Execution runner: the public entry point for running one IaWJ experiment.
//
// The runner windows the inputs, starts the virtual clock, spawns one worker
// thread per configured core, and aggregates per-worker match sinks and
// phase profiles into a RunResult carrying every metric the paper reports —
// throughput, quantile latency, progressiveness, execution-time breakdown,
// and peak tracked memory.
#ifndef IAWJ_JOIN_RUNNER_H_
#define IAWJ_JOIN_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/spill.h"
#include "src/join/context.h"
#include "src/join/recovery.h"
#include "src/profiling/cache_sim.h"
#include "src/profiling/pmu.h"
#include "src/stream/disorder.h"
#include "src/stream/stream.h"

namespace iawj {

struct RunResult {
  // Ok for a completed run. A failed run (invalid spec, memory budget
  // breach, deadline overrun, injected fault) carries the first failure and
  // whatever metrics the workers produced before unwinding — partial
  // matches/progress are meaningful, throughput/latency are best-effort.
  Status status;

  std::string algorithm;
  uint64_t inputs = 0;   // tuples inside the window, both streams
  uint64_t matches = 0;
  uint64_t checksum = 0;  // order-insensitive multiset checksum

  double last_match_ms = 0;  // stream time of the final match
  double elapsed_ms = 0;     // stream time of the whole run
  // Paper §4.2.2: total inputs divided by the timestamp of the last match.
  double throughput_per_ms = 0;
  double p95_latency_ms = 0;
  double mean_latency_ms = 0;

  ProgressRecorder progress;
  LatencyHistogram latency;
  PhaseProfile phases;  // summed across workers
  int64_t peak_tracked_bytes = 0;
  double cpu_time_ms = 0;  // process CPU consumed during the run

  // What the supervisor (join/supervisor.h) did to produce this result:
  // retries, fallbacks, shed tuples. Empty (and free) for unsupervised runs.
  RecoveryLog recovery;

  // Spill activity (io/spill.h): all-zero unless the algorithm staged
  // partitions on disk (HHJ under a memory budget). Serialized as the run
  // record's v6 `spill` block when spill.any().
  SpillStats spill;

  // Disorder-tolerant ingestion accounting (stream/disorder.h): all-zero
  // unless an ingest policy was configured, in which case the supervisor or
  // pipeline fed the inputs through the reorder buffer + watermark +
  // quarantine before execution. Serialized as the run record's v7 `ingest`
  // block when ingest.any().
  IngestStats ingest;

  // Hardware counter measurement (profiling/pmu.h): per-phase deltas summed
  // across workers when $IAWJ_PMU=1 (or --counters=pmu) and the kernel
  // allows perf_event_open; otherwise available=false with the reason.
  pmu::PmuReport pmu;

  // The kernel plan the run executed (common/kernels.h): the resolved mode
  // (never kAuto) and the variant each hot-path phase actually took,
  // accounting for tracer forcing and AVX2 runtime dispatch. Serialized as
  // the run record's v8 `kernels` block.
  KernelMode kernels_resolved = KernelMode::kScalar;
  std::string kernel_scatter = "scalar";  // "scalar" | "swwc"
  std::string kernel_build = "scalar";    // "scalar" | "lockfree"
  std::string kernel_probe = "scalar";    // "scalar" | "batched" | "simd"

  // Scheduling (join/scheduler.h): the mode the run executed (never kAuto),
  // the resolved morsel size, and — for morsel runs only — per-worker claim
  // and steal counters plus each worker's NUMA node, so Fig. 7 breakdowns
  // and Fig. 20 scalability can attribute imbalance to stolen work.
  SchedulerMode scheduler_resolved = SchedulerMode::kStatic;
  size_t morsel_size = 0;
  int numa_nodes = 1;
  std::vector<MorselStats> worker_morsels;  // empty for static runs
  std::vector<int> worker_nodes;            // parallel to worker_morsels
  MorselStats MorselTotals() const;

  // Per-input-tuple execution cost excluding wait, in nanoseconds of summed
  // worker time (the paper's "cycles per input tuple" y-axis, modulo clock
  // frequency).
  double WorkNsPerInput() const;
};

// Creates a production algorithm instance.
std::unique_ptr<JoinAlgorithm> CreateAlgorithm(AlgorithmId id);
// Creates a cache-simulator-instrumented instance (see profiling/cache_sim.h).
std::unique_ptr<JoinAlgorithm> CreateTracedAlgorithm(AlgorithmId id);

class JoinRunner {
 public:
  // Runs `id` over the window [0, spec.window_ms) of r and s. Never aborts
  // the process: configuration and runtime failures come back in
  // RunResult::status. When a deadline is configured (JoinSpec::deadline_ms
  // or $IAWJ_DEADLINE_MS) a watchdog cancels overrunning workers and the
  // result names the ones that had not finished.
  RunResult Run(AlgorithmId id, const Stream& r, const Stream& s,
                const JoinSpec& spec);

  // As Run, but with a caller-provided instance (e.g. a traced one) and
  // optional per-worker cache simulators.
  RunResult RunWith(JoinAlgorithm* algorithm, const Stream& r,
                    const Stream& s, const JoinSpec& spec,
                    CacheSim* const* cache_sims = nullptr);
};

}  // namespace iawj

#endif  // IAWJ_JOIN_RUNNER_H_
