// Inter-window execution built from IaWJ building blocks.
//
// The paper scopes itself to a single window and notes that "designing
// efficient inter-window join algorithms by taking IaWJ as a building block
// is an exciting topic for further investigation" (§2). This pipeline is
// that building-block composition for tumbling windows: the input streams
// are segmented into consecutive windows of equal length, each window is
// joined with a configurable IaWJ algorithm (optionally chosen per window
// by the adaptive policy), and per-window metrics aggregate into a run
// summary. Each window is replayed on its own clock, i.e. windows execute
// back-to-back rather than overlapped — a deliberate simplification that
// keeps per-window semantics identical to the paper's single-window runs.
#ifndef IAWJ_JOIN_WINDOW_PIPELINE_H_
#define IAWJ_JOIN_WINDOW_PIPELINE_H_

#include <functional>
#include <vector>

#include "src/join/runner.h"

namespace iawj {

struct WindowRun {
  uint32_t window_index = 0;
  uint64_t window_start_ms = 0;
  RunResult result;
};

struct PipelineResult {
  // Ok when every window completed (or was skipped under a skip policy; see
  // `recovery`). On the first unrecovered-and-unskippable window failure
  // the pipeline stops, keeps the completed windows plus the failed one
  // (its RunResult carries the per-run failure), and copies that status
  // here. Invalid segmentation parameters (window/hop/gap of 0) also land
  // here, with no windows run.
  Status status;

  std::vector<WindowRun> windows;
  // Aggregates cover windows that completed OK; a failed or skipped
  // window's partial metrics stay on its WindowRun but are excluded here,
  // so the totals and the loss accounting in `recovery` stay consistent.
  uint64_t total_inputs = 0;
  uint64_t total_matches = 0;
  uint64_t total_checksum = 0;  // sum of per-window checksums
  double total_elapsed_ms = 0;  // sum of per-window elapsed stream time

  // Window-level supervision accounting (ISSUE 3): per-window retries and
  // fallbacks, skipped windows with their bounded loss (tuples_dropped +
  // est_matches_lost), and load shedding. Empty when supervision is off.
  RecoveryLog recovery;

  // Disorder-tolerant ingestion accounting (stream/disorder.h): all-zero
  // unless an ingest policy was configured, in which case both inputs went
  // through the reorder buffer + watermark + quarantine before
  // segmentation, and quarantined tuples are folded into `recovery`'s
  // bounded-loss fields.
  IngestStats ingest;
};

// Chooses the algorithm for one window, given its (already segmented,
// rebased) inputs. The default policy returns a fixed algorithm; the
// adaptive policy (join/adaptive.h) plugs in here.
using AlgorithmPolicy =
    std::function<AlgorithmId(const Stream& r, const Stream& s)>;

// Runs consecutive tumbling windows of spec.window_ms over r and s. Tuples
// beyond the last complete window form a final partial window. The spec's
// clock settings apply to every window (each window restarts the clock).
// When the spec resolves an ingest policy (disorder_slack_ms /
// allowed_lateness_ms / ingest_dedup or their env vars), r and s are taken
// as arrival-order sequences and fed through stream/disorder.h first —
// windows are sealed by the watermark-driven flush, not by assuming the
// input arrived sorted. The same applies to the sliding and session entry
// points below.
PipelineResult RunTumblingWindows(const Stream& r, const Stream& s,
                                  const JoinSpec& spec,
                                  const AlgorithmPolicy& policy);

// Convenience overload with a fixed algorithm.
PipelineResult RunTumblingWindows(AlgorithmId id, const Stream& r,
                                  const Stream& s, const JoinSpec& spec);

// Sliding windows: one window of length spec.window_ms starts every hop_ms
// (hop_ms <= window_ms overlaps). Each window instance is an independent
// IaWJ, per the paper's §2 definition — matches in the overlap are reported
// by every window containing them.
PipelineResult RunSlidingWindows(const Stream& r, const Stream& s,
                                 const JoinSpec& spec, uint32_t hop_ms,
                                 const AlgorithmPolicy& policy);

PipelineResult RunSlidingWindows(AlgorithmId id, const Stream& r,
                                 const Stream& s, const JoinSpec& spec,
                                 uint32_t hop_ms);

// Session windows: a window closes once both streams are silent for at
// least gap_ms; window lengths are data-dependent (spec.window_ms is
// ignored for segmentation and set per session internally).
PipelineResult RunSessionWindows(const Stream& r, const Stream& s,
                                 const JoinSpec& spec, uint32_t gap_ms,
                                 const AlgorithmPolicy& policy);

PipelineResult RunSessionWindows(AlgorithmId id, const Stream& r,
                                 const Stream& s, const JoinSpec& spec,
                                 uint32_t gap_ms);

}  // namespace iawj

#endif  // IAWJ_JOIN_WINDOW_PIPELINE_H_
