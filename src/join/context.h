// Core intra-window-join API: algorithm identifiers, configuration, the
// per-worker match sink, and the execution context handed to algorithms.
//
// The runner (join/runner.h) owns the orchestration: it windows the inputs,
// starts the virtual clock, spawns one worker thread per configured core,
// and aggregates per-worker sinks and phase profiles into a RunResult.
#ifndef IAWJ_JOIN_CONTEXT_H_
#define IAWJ_JOIN_CONTEXT_H_

#include <barrier>
#include <cstdint>
#include <span>
#include <string_view>

#include "src/common/cancel.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/kernels.h"
#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/hash/hash_fn.h"
#include "src/join/scheduler.h"
#include "src/profiling/cache_sim.h"
#include "src/profiling/phase.h"
#include "src/profiling/progress.h"

namespace iawj {

struct SpillStats;  // io/spill.h

// The eight studied algorithms (paper Table 2), plus the robustness-layer
// hybrid hash join (kHhj), which spills cold partitions to disk when the
// window exceeds the memory budget (join/hhj.h).
enum class AlgorithmId {
  kNpj,     // lazy,  hash, no physical partitioning
  kPrj,     // lazy,  hash, radix replication
  kMway,    // lazy,  sort, multiway merge
  kMpass,   // lazy,  sort, successive two-way merges
  kShjJm,   // eager, hash, join-matrix
  kShjJb,   // eager, hash, join-biclique
  kPmjJm,   // eager, sort, join-matrix
  kPmjJb,   // eager, sort, join-biclique
  kHhj,     // lazy,  hash, hybrid with partition spilling (not in the paper)
};

// The paper's algorithm grid. Deliberately excludes kHhj: sweeps, chaos
// draws, and comparison matrices iterate this, and the spill join is an
// operational fallback rather than one of the studied designs — it is
// reached by explicit --algo=hhj or a Supervisor fallback.
inline constexpr AlgorithmId kAllAlgorithms[] = {
    AlgorithmId::kNpj,   AlgorithmId::kPrj,   AlgorithmId::kMway,
    AlgorithmId::kMpass, AlgorithmId::kShjJm, AlgorithmId::kShjJb,
    AlgorithmId::kPmjJm, AlgorithmId::kPmjJb};

std::string_view AlgorithmName(AlgorithmId id);
bool IsLazy(AlgorithmId id);
bool IsSortBased(AlgorithmId id);

// Hash-table backend for PRJ partitions and the SHJ states (the NPJ shared
// table is always the latched bucket chain).
enum class HashTableKind { kBucketChain, kLinearProbe };

// Every tunable the paper studies (Table 1 knobs live in the workload
// generators; these are the algorithm-side knobs of §5.5/§5.6).
struct JoinSpec {
  int num_threads = 4;
  uint32_t window_ms = 1000;

  Clock::Mode clock_mode = Clock::Mode::kInstant;
  double time_scale = 1.0;  // stream-ms advanced per wall-ms (kRealTime)

  int radix_bits = 10;       // PRJ: number of radix bits (#r), Figure 18
  int radix_passes = 1;      // PRJ: 1 or 2 partitioning passes (Balkesen)
  double pmj_delta = 0.2;    // PMJ: sorting step size (fraction), Figure 15
  int jb_group_size = 2;     // JB: core-group size (g), Figure 16
  bool eager_physical_partition = false;  // SHJ/PMJ: copy vs pointer, Fig. 17
  bool use_simd = true;      // sort kernels: AVX ablation, Figure 21
  bool pin_threads = false;  // best-effort core pinning
  HashTableKind hash_table_kind = HashTableKind::kBucketChain;
  // Hot-path kernel selection (common/kernels.h): auto picks the
  // cache-conscious kernels (SWWC scatter + batched prefetch probe) on
  // untraced builds and defers to $IAWJ_KERNELS when set; scalar/swwc force
  // one side for A/B runs. SimTracer instantiations always run scalar.
  KernelMode kernels = KernelMode::kAuto;
  // Parallel-phase scheduling (join/scheduler.h): static keeps the paper's
  // equal-chunk division; morsel switches every parallel loop to the
  // NUMA-aware work-stealing scheduler. auto defers to $IAWJ_SCHEDULER
  // (default static). morsel_size == 0 defers to $IAWJ_MORSEL_SIZE, then
  // kDefaultMorselSize.
  SchedulerMode scheduler = SchedulerMode::kAuto;
  size_t morsel_size = 0;

  // Wall-clock deadline for one run; 0 = none (then $IAWJ_DEADLINE_MS
  // applies, if set). A run that overruns is cancelled by the runner's
  // watchdog and returns DeadlineExceeded with partial metrics.
  uint32_t deadline_ms = 0;

  // --- Supervision knobs (join/supervisor.h) ---------------------------
  // Defaults leave supervision entirely off; each field falls back to its
  // environment variable when left at the default (spec wins over env,
  // like deadline_ms). See SupervisorPolicy::Resolve for the env grammar.
  int retry_max_attempts = 0;      // total attempts; 0 = $IAWJ_RETRY, 1 = off
  double retry_backoff_ms = -1;    // base backoff; < 0 = $IAWJ_RETRY's value
  bool fallback_enabled = false;   // OR'd with $IAWJ_FALLBACK
  bool skip_failed_windows = false;  // OR'd with $IAWJ_SKIP_WINDOWS
  double shed_watermark_per_ms = 0;  // 0 = $IAWJ_SHED_WATERMARK, < 0 = off
  uint64_t supervisor_seed = 42;   // backoff jitter + shed sampling RNG

  // --- Disorder-tolerant ingestion knobs (stream/disorder.h) -----------
  // Same precedence convention: > 0 wins, 0 defers to the env var, < 0 is
  // explicitly off; dedup is OR'd with $IAWJ_INGEST_DEDUP. When the
  // resolved policy is entirely off, inputs bypass the ingest layer —
  // zero copies, byte-identical pre-ingest behavior.
  double disorder_slack_ms = 0;     // 0 = $IAWJ_DISORDER_SLACK, < 0 = off
  double allowed_lateness_ms = 0;   // 0 = $IAWJ_ALLOWED_LATENESS, < 0 = off
  bool ingest_dedup = false;        // OR'd with $IAWJ_INGEST_DEDUP

  Status Validate(AlgorithmId id) const;
};

// Per-worker match collector. Never materializes matches: constant memory
// regardless of result cardinality (§4.2.2's profiling methodology).
class MatchSink {
 public:
  void Bind(const Clock* clock) { clock_ = clock; }

  void OnMatch(uint32_t key, uint32_t r_ts, uint32_t s_ts) {
    ++count_;
    checksum_ += Mix64((static_cast<uint64_t>(key) << 32) ^
                       Mix64((static_cast<uint64_t>(r_ts) << 32) | s_ts));
    const double now = clock_->NowMs();
    // Latency = match time minus the arrival of its later input (§4.1).
    // With the instant clock everything "arrived" at time zero, so latency
    // degenerates to completion time — the at-rest semantics DEBS uses.
    const double input_ts =
        clock_->mode() == Clock::Mode::kInstant
            ? 0.0
            : static_cast<double>(r_ts > s_ts ? r_ts : s_ts);
    progress_.Record(now);
    latency_.RecordMs(now - input_ts);
    if (now > last_match_ms_) last_match_ms_ = now;
  }

  uint64_t count() const { return count_; }
  uint64_t checksum() const { return checksum_; }
  double last_match_ms() const { return last_match_ms_; }
  const ProgressRecorder& progress() const { return progress_; }
  const LatencyHistogram& latency() const { return latency_; }

 private:
  const Clock* clock_ = nullptr;
  uint64_t count_ = 0;
  uint64_t checksum_ = 0;
  double last_match_ms_ = 0;
  ProgressRecorder progress_;
  LatencyHistogram latency_;
};

// Everything a worker thread needs. Owned by the runner for one run.
struct JoinContext {
  std::span<const Tuple> r;
  std::span<const Tuple> s;
  const JoinSpec* spec = nullptr;
  const Clock* clock = nullptr;
  // Stream time at which the lazy algorithms may start processing (arrival
  // of the last tuple of the window).
  double window_close_ms = 0;

  MatchSink* sinks = nullptr;        // [spec->num_threads]
  PhaseProfile* profiles = nullptr;  // [spec->num_threads]
  std::barrier<>* barrier = nullptr;
  // Per-worker cache simulators; only set by the cache-profiling benches,
  // which run algorithms instantiated with SimTracer.
  CacheSim* const* cache_sims = nullptr;
  // Run-wide cancellation (deadline watchdog, memory-budget breaches).
  CancelToken* cancel = nullptr;
  // Per-run morsel scheduler (join/scheduler.h), always set by the runner.
  // Algorithms branch on scheduler->enabled(): false keeps the static
  // ChunkForThread division, true serves every parallel phase from morsel
  // deques with NUMA-aware stealing.
  MorselScheduler* scheduler = nullptr;

  bool MorselMode() const {
    return scheduler != nullptr && scheduler->enabled();
  }

  MatchSink& sink(int t) const { return sinks[t]; }
  PhaseProfile& profile(int t) const { return profiles[t]; }

  bool Cancelled() const {
    return cancel != nullptr && cancel->cancelled();
  }

  // Cancellation checkpoint for worker threads. Returns true when the run
  // has been cancelled; on true this worker's barrier participation has
  // been dropped (releasing peers blocked at a phase barrier), so the
  // caller MUST return from RunWorker immediately without touching the
  // barrier again. Cost when not cancelled: one relaxed atomic load.
  bool AbortRequested() const {
    if (!Cancelled()) return false;
    if (barrier != nullptr) barrier->arrive_and_drop();
    return true;
  }

  // Cancellation-aware replacement for Clock::SleepUntilMs: sleeps in short
  // slices so the lazy algorithms' window wait responds to cancellation
  // within ~1 ms instead of sleeping through the deadline. Callers check
  // AbortRequested() after it returns.
  void WaitUntil(double stream_ms) const;
};

// Builds the worker-local tracer for an algorithm instantiated with Tracer.
template <typename Tracer>
Tracer MakeWorkerTracer(const JoinContext& ctx, int worker);

template <>
inline NullTracer MakeWorkerTracer<NullTracer>(const JoinContext&, int) {
  return NullTracer{};
}

template <>
inline SimTracer MakeWorkerTracer<SimTracer>(const JoinContext& ctx,
                                             int worker) {
  return SimTracer(ctx.cache_sims[worker]);
}

// A join algorithm executes as spec->num_threads workers; Setup runs once on
// the orchestrating thread before workers start (allocate shared state),
// Teardown after they join. Setup is fallible: bulk allocations preflight
// against the memory budget and a non-OK Status fails the run before any
// worker spawns. Teardown must be safe to call after a failed Setup.
class JoinAlgorithm {
 public:
  virtual ~JoinAlgorithm() = default;

  virtual std::string_view name() const = 0;
  virtual Status Setup(const JoinContext& ctx) = 0;
  virtual void RunWorker(const JoinContext& ctx, int worker) = 0;
  virtual void Teardown() {}

  // Spill accounting for algorithms that stage partitions on disk
  // (join/hhj.h); nullptr for the in-memory algorithms. The runner reads it
  // after workers join and before Teardown.
  virtual const SpillStats* spill_stats() { return nullptr; }
};

}  // namespace iawj

#endif  // IAWJ_JOIN_CONTEXT_H_
