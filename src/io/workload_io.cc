#include "src/io/workload_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/fault.h"

namespace iawj::io {

namespace {
constexpr char kMagic[8] = {'I', 'A', 'W', 'J', 'S', 'T', 'R', '1'};
}  // namespace

Status SaveStream(const Stream& stream, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = stream.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(stream.tuples.data()),
            static_cast<std::streamsize>(count * sizeof(Tuple)));
  return out.good() ? Status::Ok()
                    : Status::FailedPrecondition("write to " + path +
                                                 " failed");
}

Status LoadStream(const std::string& path, Stream* stream) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::FailedPrecondition("cannot open " + path);
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not an IAWJ stream file");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::DataLoss(path + ": truncated header");

  // Sanity-check the header count against the bytes actually present before
  // sizing the tuple vector: a corrupt count field must not turn into a
  // multi-gigabyte allocation.
  const std::streampos data_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos data_end = in.tellg();
  in.seekg(data_begin);
  const uint64_t available =
      data_end >= data_begin
          ? static_cast<uint64_t>(data_end - data_begin)
          : 0;
  if (available < count * sizeof(Tuple)) {
    return Status::DataLoss(path + ": header promises " +
                            std::to_string(count) + " tuples but only " +
                            std::to_string(available / sizeof(Tuple)) +
                            " are present");
  }

  std::vector<Tuple> tuples(count);
  in.read(reinterpret_cast<char*>(tuples.data()),
          static_cast<std::streamsize>(count * sizeof(Tuple)));
  if (!in) return Status::DataLoss(path + ": truncated tuple data");
  // Fault: the file shrank under us (partial download, torn copy).
  if (fault::Enabled() && fault::Inject("io_truncate")) {
    return Status::DataLoss(path + ": injected truncation mid-read");
  }
  // Re-sorting makes the loader robust to externally produced files.
  *stream = MakeStream(std::move(tuples));
  return Status::Ok();
}

Status SaveStreamCsv(const Stream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  out << "ts,key\n";
  for (const Tuple& t : stream.tuples) {
    out << t.ts << "," << t.key << "\n";
  }
  return out.good() ? Status::Ok()
                    : Status::FailedPrecondition("write to " + path +
                                                 " failed");
}

Status LoadStreamCsv(const std::string& path, Stream* stream) {
  std::ifstream in(path);
  if (!in) {
    return Status::FailedPrecondition("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line.rfind("ts,key", 0) != 0) {
    return Status::InvalidArgument(path + ": missing 'ts,key' header");
  }
  std::vector<Tuple> tuples;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) +
                                     ": expected 'ts,key'");
    }
    const std::string ts_field = line.substr(0, comma);
    const std::string key_field = line.substr(comma + 1);
    char* ts_end = nullptr;
    char* key_end = nullptr;
    const unsigned long ts = std::strtoul(ts_field.c_str(), &ts_end, 10);
    const unsigned long key = std::strtoul(key_field.c_str(), &key_end, 10);
    if (ts_end == ts_field.c_str() || *ts_end != '\0' ||
        key_end == key_field.c_str() || *key_end != '\0') {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) +
                                     ": non-numeric field in 'ts,key'");
    }
    Tuple t;
    t.ts = static_cast<uint32_t>(ts);
    t.key = static_cast<uint32_t>(key);
    tuples.push_back(t);
  }
  *stream = MakeStream(std::move(tuples));
  return Status::Ok();
}

}  // namespace iawj::io
