#include "src/io/workload_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace iawj::io {

namespace {
constexpr char kMagic[8] = {'I', 'A', 'W', 'J', 'S', 'T', 'R', '1'};
}  // namespace

Status SaveStream(const Stream& stream, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = stream.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(stream.tuples.data()),
            static_cast<std::streamsize>(count * sizeof(Tuple)));
  return out.good() ? Status::Ok()
                    : Status::FailedPrecondition("write to " + path +
                                                 " failed");
}

Status LoadStream(const std::string& path, Stream* stream) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::FailedPrecondition("cannot open " + path);
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not an IAWJ stream file");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::InvalidArgument(path + ": truncated header");
  std::vector<Tuple> tuples(count);
  in.read(reinterpret_cast<char*>(tuples.data()),
          static_cast<std::streamsize>(count * sizeof(Tuple)));
  if (!in) return Status::InvalidArgument(path + ": truncated tuple data");
  // Re-sorting makes the loader robust to externally produced files.
  *stream = MakeStream(std::move(tuples));
  return Status::Ok();
}

Status SaveStreamCsv(const Stream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  out << "ts,key\n";
  for (const Tuple& t : stream.tuples) {
    out << t.ts << "," << t.key << "\n";
  }
  return out.good() ? Status::Ok()
                    : Status::FailedPrecondition("write to " + path +
                                                 " failed");
}

Status LoadStreamCsv(const std::string& path, Stream* stream) {
  std::ifstream in(path);
  if (!in) {
    return Status::FailedPrecondition("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line.rfind("ts,key", 0) != 0) {
    return Status::InvalidArgument(path + ": missing 'ts,key' header");
  }
  std::vector<Tuple> tuples;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) +
                                     ": expected 'ts,key'");
    }
    Tuple t;
    t.ts = static_cast<uint32_t>(
        std::strtoul(line.substr(0, comma).c_str(), nullptr, 10));
    t.key = static_cast<uint32_t>(
        std::strtoul(line.substr(comma + 1).c_str(), nullptr, 10));
    tuples.push_back(t);
  }
  *stream = MakeStream(std::move(tuples));
  return Status::Ok();
}

}  // namespace iawj::io
