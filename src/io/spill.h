// Partition spill layer for larger-than-memory windows (ISSUE 7).
//
// The hybrid hash join (join/hhj.h) keeps as many build partitions resident
// as the memory budget allows and writes the rest to per-partition run
// files through this layer. A run file is a sequence of checksummed pages:
//
//   file  := magic("IAWJSPL1") page*
//   page  := header{page_magic, tuple_count, checksum} tuple[tuple_count]
//
// The checksum is a Mix64 fold over the payload, verified on every read, so
// a torn write, a truncated file, or bit rot surfaces as a typed DataLoss
// instead of wrong join output. Writes are buffered through one
// mem::Tracker-accounted page per writer, so spill buffering itself stays
// inside the budget it exists to enforce.
//
// Fault sites (common/fault.h): `disk_full` fails the next page write with
// ResourceExhausted, `io_truncate` makes the next page read look truncated,
// and `spill_corrupt` flips the next page's checksum — all DataLoss on the
// read side, so iawj_chaos can kill a spill mid-flight and assert the run
// either recovers exactly or fails with a typed Status.
#ifndef IAWJ_IO_SPILL_H_
#define IAWJ_IO_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/memory/tracker.h"

namespace iawj {

// What the spill layer did during one run; aggregated by the hybrid hash
// join and reported through RunResult::spill and the run record's v6
// `spill` block.
struct SpillStats {
  uint64_t partitions = 0;           // radix fanout of the spill decision
  uint64_t partitions_spilled = 0;   // cold partitions written to disk
  uint64_t partitions_resident = 0;  // hot partitions joined in memory
  uint64_t bytes_written = 0;        // payload + headers, all run files
  uint64_t bytes_read = 0;           // includes re-reads (recursion, BNL)
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t recursion_depth = 0;      // deepest repartitioning recursion
  uint64_t bnl_fallbacks = 0;        // partitions joined block-nested-loop
  double spill_elapsed_ms = 0;       // wall time inside spill IO + restore

  bool any() const {
    return partitions_spilled > 0 || bytes_written > 0 || bytes_read > 0;
  }
};

namespace spill {

// Directory spill run files live under: $IAWJ_SPILL_DIR, else $TMPDIR, else
// /tmp. Every run creates (and removes) its own unique subdirectory.
std::string RootDir();

// Configured page payload capacity: $IAWJ_SPILL_PAGE_KB KiB (clamped to
// [1, 16384]), default 64 KiB. The hybrid hash join shrinks this further
// under tight budgets so all write buffers fit in a budget slice.
size_t PageBytes();

// Creates a fresh, process-unique spill directory under RootDir() and
// returns its path through `dir`.
Status CreateRunDir(std::string* dir);

// Best-effort recursive removal of a spill run directory.
void RemoveRunDir(const std::string& dir);

// Buffered, page-checksummed writer for one partition run file. The page
// buffer is tracker-accounted for the writer's lifetime. Not thread-safe:
// concurrent appenders must serialize (join/hhj.cc holds one mutex per
// spilled partition).
class SpillWriter {
 public:
  SpillWriter() = default;
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  // Opens `path` for writing and sizes the page buffer. `page_bytes` is the
  // payload capacity per page, floored to one tuple.
  Status Open(const std::string& path, size_t page_bytes);

  // Buffers one tuple, flushing a full page to disk. Failure (real ENOSPC
  // or the `disk_full` fault) is ResourceExhausted and sticks: later
  // appends keep failing, Close() reports it again.
  Status Append(const Tuple& t);

  // Flushes the tail page and closes the file. Idempotent.
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t tuples() const { return tuples_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  Status FlushPage();

  std::FILE* file_ = nullptr;
  std::string path_;
  mem::TrackedBuffer<Tuple> page_;
  size_t page_capacity_ = 0;
  uint64_t tuples_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t pages_written_ = 0;
  Status sticky_;  // first write failure, re-reported until Close
};

// Page-wise reader with checksum verification. Every page's checksum is
// recomputed over the payload; any mismatch — including the injected
// `spill_corrupt` flip — is DataLoss, as is a short read or the injected
// `io_truncate`.
class SpillReader {
 public:
  SpillReader() = default;
  ~SpillReader();

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  Status Open(const std::string& path);

  // Reads the next page into `out` (replacing its contents). On clean end
  // of file, sets *eof and leaves `out` empty.
  Status ReadPage(mem::TrackedBuffer<Tuple>* out, bool* eof);

  // Appends every remaining tuple to `out`.
  Status ReadAll(mem::TrackedBuffer<Tuple>* out);

  // Rewinds to the first page (BNL re-streams the probe side per block).
  Status Rewind();

  void Close();

  const std::string& path() const { return path_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t pages_read() const { return pages_read_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_read_ = 0;
  uint64_t pages_read_ = 0;
};

// Checksum over a page payload: sequential Mix64 fold, order-sensitive.
uint64_t PageChecksum(const Tuple* tuples, size_t n);

}  // namespace spill
}  // namespace iawj

#endif  // IAWJ_IO_SPILL_H_
