// Workload persistence: save generated streams to disk and load them back,
// so experiments can pin exact inputs (and external traces can be imported).
//
// Two formats:
//  - binary: a small header + raw little-endian Tuple array (fast, exact);
//  - csv:    "ts,key" rows with a header line (interoperable).
#ifndef IAWJ_IO_WORKLOAD_IO_H_
#define IAWJ_IO_WORKLOAD_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/stream/stream.h"

namespace iawj::io {

// Binary format.
Status SaveStream(const Stream& stream, const std::string& path);
Status LoadStream(const std::string& path, Stream* stream);

// CSV format ("ts,key" with header).
Status SaveStreamCsv(const Stream& stream, const std::string& path);
Status LoadStreamCsv(const std::string& path, Stream* stream);

}  // namespace iawj::io

#endif  // IAWJ_IO_WORKLOAD_IO_H_
