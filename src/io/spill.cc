#include "src/io/spill.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "src/common/fault.h"
#include "src/hash/hash_fn.h"

namespace iawj::spill {

namespace {

constexpr char kFileMagic[8] = {'I', 'A', 'W', 'J', 'S', 'P', 'L', '1'};
constexpr uint32_t kPageMagic = 0x53504731;  // "SPG1"

struct PageHeader {
  uint32_t magic;
  uint32_t tuple_count;
  uint64_t checksum;
};
static_assert(sizeof(PageHeader) == 16, "page header layout");

}  // namespace

uint64_t PageChecksum(const Tuple* tuples, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t word =
        (static_cast<uint64_t>(tuples[i].key) << 32) | tuples[i].ts;
    h = Mix64(h ^ word);
  }
  return h;
}

std::string RootDir() {
  if (const char* dir = std::getenv("IAWJ_SPILL_DIR");
      dir != nullptr && dir[0] != '\0') {
    return dir;
  }
  if (const char* tmp = std::getenv("TMPDIR");
      tmp != nullptr && tmp[0] != '\0') {
    return tmp;
  }
  return "/tmp";
}

size_t PageBytes() {
  long kb = 64;
  if (const char* env = std::getenv("IAWJ_SPILL_PAGE_KB");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) kb = v;
  }
  if (kb > 16384) kb = 16384;
  return static_cast<size_t>(kb) * 1024;
}

Status CreateRunDir(std::string* dir) {
  static std::atomic<uint64_t> sequence{0};
  const uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
  const std::string path = RootDir() + "/iawj_spill_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(seq);
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::FailedPrecondition("cannot create spill directory " +
                                      path + ": " + ec.message());
  }
  *dir = path;
  return Status::Ok();
}

void RemoveRunDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // best-effort cleanup
}

// --- SpillWriter ------------------------------------------------------------

SpillWriter::~SpillWriter() { Close(); }

Status SpillWriter::Open(const std::string& path, size_t page_bytes) {
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  path_ = path;
  page_capacity_ = page_bytes / sizeof(Tuple);
  if (page_capacity_ == 0) page_capacity_ = 1;
  if (Status s = mem::Preflight(
          static_cast<int64_t>(page_capacity_ * sizeof(Tuple)),
          "spill page buffer");
      !s.ok()) {
    return s;
  }
  page_.Reserve(page_capacity_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::FailedPrecondition("cannot open spill file " + path +
                                      ": " + std::strerror(errno));
  }
  if (std::fwrite(kFileMagic, 1, sizeof(kFileMagic), file_) !=
      sizeof(kFileMagic)) {
    return Status::ResourceExhausted("cannot write spill header to " + path);
  }
  bytes_written_ += sizeof(kFileMagic);
  return Status::Ok();
}

Status SpillWriter::FlushPage() {
  if (page_.empty()) return Status::Ok();
  // Fault: the device fills up mid-spill. ResourceExhausted (not DataLoss):
  // disk is the resource the spill path trades memory for, and the code
  // routes the supervisor to the NPJ fallback, which needs no disk at all.
  if (fault::Enabled() && fault::Inject("disk_full")) {
    sticky_ = Status::ResourceExhausted("injected disk-full writing " + path_);
    return sticky_;
  }
  PageHeader header{kPageMagic, static_cast<uint32_t>(page_.size()),
                    PageChecksum(page_.data(), page_.size())};
  const size_t payload = page_.size() * sizeof(Tuple);
  if (std::fwrite(&header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(page_.data(), 1, payload, file_) != payload) {
    sticky_ = Status::ResourceExhausted("short write to spill file " + path_ +
                                        ": " + std::strerror(errno));
    return sticky_;
  }
  bytes_written_ += sizeof(header) + payload;
  ++pages_written_;
  page_.Clear();
  return Status::Ok();
}

Status SpillWriter::Append(const Tuple& t) {
  if (!sticky_.ok()) return sticky_;
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  page_.PushBack(t);
  ++tuples_;
  if (page_.size() >= page_capacity_) return FlushPage();
  return Status::Ok();
}

Status SpillWriter::Close() {
  if (file_ == nullptr) return sticky_;
  Status status = sticky_.ok() ? FlushPage() : sticky_;
  if (status.ok() && std::fflush(file_) != 0) {
    status = Status::ResourceExhausted("flush of spill file " + path_ +
                                       " failed: " + std::strerror(errno));
  }
  std::fclose(file_);
  file_ = nullptr;
  page_ = mem::TrackedBuffer<Tuple>();
  if (sticky_.ok()) sticky_ = status;
  return status;
}

// --- SpillReader ------------------------------------------------------------

SpillReader::~SpillReader() { Close(); }

Status SpillReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("reader already open");
  path_ = path;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::FailedPrecondition("cannot open spill file " + path +
                                      ": " + std::strerror(errno));
  }
  char magic[sizeof(kFileMagic)];
  if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
      std::memcmp(magic, kFileMagic, sizeof(magic)) != 0) {
    return Status::DataLoss(path + " is not an IAWJ spill file");
  }
  bytes_read_ += sizeof(magic);
  return Status::Ok();
}

Status SpillReader::ReadPage(mem::TrackedBuffer<Tuple>* out, bool* eof) {
  *eof = false;
  out->Clear();
  if (file_ == nullptr) return Status::InvalidArgument("reader not open");
  PageHeader header;
  const size_t got = std::fread(&header, 1, sizeof(header), file_);
  if (got == 0 && std::feof(file_)) {
    *eof = true;
    return Status::Ok();
  }
  if (got != sizeof(header) || header.magic != kPageMagic) {
    return Status::DataLoss(path_ + ": torn or corrupt page header");
  }
  // A corrupt count field must not turn into a huge allocation: a page
  // never holds more payload than the configured maximum page size.
  if (header.tuple_count >
      (static_cast<uint64_t>(16384) * 1024) / sizeof(Tuple)) {
    return Status::DataLoss(path_ + ": page header promises " +
                            std::to_string(header.tuple_count) +
                            " tuples, over the page-size limit");
  }
  out->Resize(header.tuple_count);
  const size_t payload = header.tuple_count * sizeof(Tuple);
  if (std::fread(out->data(), 1, payload, file_) != payload) {
    out->Clear();
    return Status::DataLoss(path_ + ": truncated page payload");
  }
  // Fault: the run file shrank under us (torn copy, crashed writer).
  if (fault::Enabled() && fault::Inject("io_truncate")) {
    out->Clear();
    return Status::DataLoss(path_ + ": injected truncation mid-read");
  }
  uint64_t checksum = PageChecksum(out->data(), out->size());
  // Fault: silent page corruption — the checksum is what catches it.
  if (fault::Enabled() && fault::Inject("spill_corrupt")) {
    checksum = ~checksum;
  }
  if (checksum != header.checksum) {
    out->Clear();
    return Status::DataLoss(path_ + ": page checksum mismatch");
  }
  bytes_read_ += sizeof(header) + payload;
  ++pages_read_;
  return Status::Ok();
}

Status SpillReader::ReadAll(mem::TrackedBuffer<Tuple>* out) {
  mem::TrackedBuffer<Tuple> page;
  bool eof = false;
  while (true) {
    if (Status s = ReadPage(&page, &eof); !s.ok()) return s;
    if (eof) return Status::Ok();
    for (size_t i = 0; i < page.size(); ++i) out->PushBack(page[i]);
  }
}

Status SpillReader::Rewind() {
  if (file_ == nullptr) return Status::InvalidArgument("reader not open");
  if (std::fseek(file_, sizeof(kFileMagic), SEEK_SET) != 0) {
    return Status::FailedPrecondition("cannot rewind spill file " + path_);
  }
  return Status::Ok();
}

void SpillReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace iawj::spill
