// The virtual clock that drives stream ingestion and all time measurement.
//
// Every timestamp the library reports (match times, latency, progressiveness)
// is in *stream-time milliseconds* relative to Start(). Two modes exist:
//
//  - kRealTime: stream time advances with the wall clock (optionally scaled
//    by time_scale to fast-forward long windows). Tuples "arrive" when the
//    clock passes their timestamp, which is how the eager algorithms stall on
//    input and how the lazy algorithms wait out the window (paper §4.2.2).
//  - kInstant: every tuple is available immediately (arrival rate = infinity,
//    the paper's "data at rest" setting used by DEBS and the §5.5 parameter
//    studies). The clock itself still runs so elapsed times remain
//    meaningful for progressiveness.
#ifndef IAWJ_COMMON_CLOCK_H_
#define IAWJ_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace iawj {

class Clock {
 public:
  enum class Mode { kInstant, kRealTime };

  explicit Clock(Mode mode, double time_scale = 1.0);

  // Marks stream time zero. Must be called before any other member.
  void Start();

  // Stream-time milliseconds elapsed since Start().
  double NowMs() const;

  // Whether a tuple with the given arrival timestamp is visible yet.
  bool HasArrived(uint32_t ts_ms) const {
    return mode_ == Mode::kInstant || static_cast<double>(ts_ms) <= NowMs();
  }

  // Blocks until stream time reaches stream_ms (no-op in kInstant mode or if
  // the moment has already passed).
  void SleepUntilMs(double stream_ms) const;

  Mode mode() const { return mode_; }
  double time_scale() const { return time_scale_; }

 private:
  Mode mode_;
  double time_scale_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_CLOCK_H_
