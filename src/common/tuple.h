// The 64-bit input tuple used throughout the benchmark.
//
// Following the paper (§4.2.2), each tuple is a narrow <key, payload> pair of
// four bytes each, where the payload stores the tuple's arrival timestamp in
// stream-time milliseconds. Field order puts the key in the high half of the
// little-endian 64-bit image so that a single uint64 comparison orders tuples
// by (key, ts) — this is what the vectorized sort kernels exploit.
#ifndef IAWJ_COMMON_TUPLE_H_
#define IAWJ_COMMON_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace iawj {

struct Tuple {
  uint32_t ts;   // Arrival timestamp (stream-time msec); the "payload".
  uint32_t key;  // Join key. Generators keep keys < 2^31.

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

static_assert(sizeof(Tuple) == 8, "Tuple must be exactly 64 bits");
static_assert(std::is_trivially_copyable_v<Tuple>);

// Packs a tuple into a uint64 whose integer order is (key, ts) order.
inline uint64_t PackTuple(Tuple t) {
  return (static_cast<uint64_t>(t.key) << 32) | t.ts;
}

inline Tuple UnpackTuple(uint64_t packed) {
  return Tuple{static_cast<uint32_t>(packed & 0xffffffffu),
               static_cast<uint32_t>(packed >> 32)};
}

inline uint32_t PackedKey(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 32);
}

inline uint32_t PackedTs(uint64_t packed) {
  return static_cast<uint32_t>(packed & 0xffffffffu);
}

}  // namespace iawj

#endif  // IAWJ_COMMON_TUPLE_H_
