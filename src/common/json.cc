#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"

namespace iawj::json {

std::string Quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  out += '"';
  return out;
}

void Writer::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back()) {
    // Object: the value must have been announced by Key().
    IAWJ_CHECK(key_pending_) << "JSON object value without a key";
    key_pending_ = false;
    return;
  }
  if (has_elements_.back()) out_ += ',';
  has_elements_.back() = true;
}

Writer& Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(true);
  has_elements_.push_back(false);
  return *this;
}

Writer& Writer::EndObject() {
  IAWJ_CHECK(!stack_.empty() && stack_.back()) << "unbalanced EndObject";
  IAWJ_CHECK(!key_pending_) << "dangling key at EndObject";
  out_ += '}';
  stack_.pop_back();
  has_elements_.pop_back();
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(false);
  has_elements_.push_back(false);
  return *this;
}

Writer& Writer::EndArray() {
  IAWJ_CHECK(!stack_.empty() && !stack_.back()) << "unbalanced EndArray";
  out_ += ']';
  stack_.pop_back();
  has_elements_.pop_back();
  return *this;
}

Writer& Writer::Key(std::string_view key) {
  IAWJ_CHECK(!stack_.empty() && stack_.back()) << "Key outside object";
  IAWJ_CHECK(!key_pending_) << "two keys in a row";
  if (has_elements_.back()) out_ += ',';
  has_elements_.back() = true;
  out_ += Quote(key);
  out_ += ':';
  key_pending_ = true;
  return *this;
}

Writer& Writer::String(std::string_view value) {
  BeforeValue();
  out_ += Quote(value);
  return *this;
}

Writer& Writer::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) {
      out_ += shorter;
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

Writer& Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

Writer& Writer::Field(std::string_view key, std::string_view value) {
  return Key(key).String(value);
}
Writer& Writer::Field(std::string_view key, const char* value) {
  return Key(key).String(value);
}
Writer& Writer::Field(std::string_view key, int64_t value) {
  return Key(key).Int(value);
}
Writer& Writer::Field(std::string_view key, uint64_t value) {
  return Key(key).Uint(value);
}
Writer& Writer::Field(std::string_view key, double value) {
  return Key(key).Double(value);
}
Writer& Writer::Field(std::string_view key, bool value) {
  return Key(key).Bool(value);
}

const Value* Value::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Run(Value* out) {
    SkipWs();
    Status status = ParseValue(out);
    if (!status.ok()) return status;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return Status::Ok();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    Status status = ParseValueInner(out);
    --depth_;
    return status;
  }

  Status ParseValueInner(Value* out) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char ch = text_[pos_];
    switch (ch) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (text_.substr(pos_, 4) != "true") return Error("bad literal");
        pos_ += 4;
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return Status::Ok();
      case 'f':
        if (text_.substr(pos_, 5) != "false") return Error("bad literal");
        pos_ += 5;
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return Status::Ok();
      case 'n':
        if (text_.substr(pos_, 4) != "null") return Error("bad literal");
        pos_ += 4;
        out->kind = Value::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      if (Status status = ParseString(&key); !status.ok()) return status;
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipWs();
      Value member;
      if (Status status = ParseValue(&member); !status.ok()) return status;
      out->object[key] = std::move(member);
      SkipWs();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipWs();
      Value element;
      if (Status status = ParseValue(&element); !status.ok()) return status;
      out->array.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return Status::Ok();
      if (static_cast<unsigned char>(ch) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (ch != '\\') {
        *out += ch;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the emitters in this repo never produce them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    out->kind = Value::Kind::kNumber;
    out->number = value;
    return Status::Ok();
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Status Parse(std::string_view text, Value* out) {
  *out = Value();
  return Parser(text).Run(out);
}

}  // namespace iawj::json
