// Bounded-memory latency histogram with quantile extraction.
//
// Matches are never materialized (Rovio at paper scale produces ~10^8 of
// them); each worker records per-match latency into a log-bucketed histogram
// whose memory footprint is constant. Quantiles interpolate within a bucket,
// giving <3% relative error at any scale — ample for the paper's 95th-
// percentile worst-case latency metric.
#ifndef IAWJ_COMMON_HISTOGRAM_H_
#define IAWJ_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace iawj {

class LatencyHistogram {
 public:
  // Sub-bucketed log2 histogram over microseconds: 32 octaves x 16 linear
  // sub-buckets covers [1us, ~4000s) with ~6% bucket width.
  static constexpr int kOctaves = 32;
  static constexpr int kSubBuckets = 16;
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;

  LatencyHistogram() { buckets_.fill(0); }

  // Records one latency observation (milliseconds; clamped at >= 0).
  void RecordMs(double latency_ms);

  // Merges other into this (used to aggregate per-thread histograms).
  void Merge(const LatencyHistogram& other);

  // Quantile in milliseconds, q in [0, 1]. Returns 0 for an empty histogram.
  double QuantileMs(double q) const;

  double MeanMs() const;
  uint64_t count() const { return count_; }

 private:
  static int BucketIndex(uint64_t us);
  static double BucketMidUs(int index);

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_ = 0;
  double sum_us_ = 0;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_HISTOGRAM_H_
