// Deterministic, env-gated fault injection (ISSUE 2 tentpole).
//
// IAWJ_FAULT holds a comma-separated list of site specs:
//
//   site[:nth[:count]]
//
// A configured site "fires" (returns true from Inject) on hits
// [nth, nth + count) of its process-global atomic hit counter; nth defaults
// to 1 (the first hit), count defaults to 1, and count 0 means "every hit
// from nth on". Examples:
//
//   IAWJ_FAULT=alloc:100          the 100th tracked allocation breaches
//   IAWJ_FAULT=worker_stall:2     the 2nd spawned worker hangs until cancel
//   IAWJ_FAULT=io_truncate        the first stream load sees a short file
//   IAWJ_FAULT=alloc:10:0,clock_skew
//
// Injection sites are wired into the memory tracker (alloc), the runner's
// worker spawn loop (worker_stall), the eager engine's pull loop
// (eager_stall), the window pipeline (window_fail), workload IO
// (io_truncate), and the virtual clock (clock_skew). Hit counters are
// atomic, so replays under a fixed spec are deterministic in *which hit*
// fires; with faults unset every Inject() call is a single relaxed atomic
// load, keeping production hot paths untouched.
#ifndef IAWJ_COMMON_FAULT_H_
#define IAWJ_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "src/common/status.h"

namespace iawj::fault {

// The documented injection sites (DESIGN.md "Failure modes & degradation").
inline constexpr const char* kKnownSites[] = {
    "alloc",        // memory tracker: simulated budget breach
    "worker_stall", // runner: a spawned worker parks until cancelled
    "eager_stall",  // eager pull loop: parks at a progress checkpoint
    "window_fail",  // window pipeline: one window's run fails outright
    "io_truncate",  // workload + spill IO: a page/file read looks truncated
    "clock_skew",   // virtual clock: Start() skews backwards ~10 s
    "disk_full",    // spill writer: next page write fails like ENOSPC
    "spill_corrupt",  // spill reader: next page's checksum mismatches
    "record_truncate",  // run-record writer dies mid-write (partial JSON)
    "disorder_burst",   // ingest: an arrival is held back ~128 deliveries
    "late_tuple",       // ingest: an arrival is held to end of stream
    "dup_tuple",        // ingest: an arrival is delivered twice
    "watermark_stall",  // ingest: the watermark generator freezes briefly
};

namespace internal {
// True while any site is configured; the only state the hot path touches.
extern std::atomic<bool> g_enabled;
bool InjectSlow(std::string_view site);
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Counts one hit of `site` and reports whether the fault fires on it.
// Sites that are not configured are not counted (and never fire).
inline bool Inject(const char* site) {
  if (!Enabled()) return false;
  return internal::InjectSlow(site);
}

// Replaces the active fault spec and resets all hit counters. An empty spec
// disables injection. Malformed specs return InvalidArgument and leave
// injection disabled. Called automatically with $IAWJ_FAULT at startup;
// tests call it directly.
Status Configure(std::string_view spec);

// Re-arms the registry: keeps the configured sites and their nth/count
// windows but zeroes every hit counter, so one process can replay the same
// fault schedule (chaos harness, looped tests) without re-parsing a spec.
// No-op when nothing is configured.
void Reset();

// Re-reads $IAWJ_FAULT and installs it as the active spec (counters reset);
// unset or empty disables injection. Unlike the automatic startup parse —
// which exits on a malformed value — this returns InvalidArgument, so
// supervised processes can install successive schedules without respawning.
Status ReloadFromEnv();

// Disables injection and resets all counters.
void Clear();

// Hits recorded so far for a configured site (0 when not configured).
uint64_t Hits(std::string_view site);

}  // namespace iawj::fault

#endif  // IAWJ_COMMON_FAULT_H_
