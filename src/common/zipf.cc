#include "src/common/zipf.h"

#include <cmath>

#include "src/common/logging.h"

namespace iawj {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  IAWJ_CHECK_GT(n, 0u);
  IAWJ_CHECK_GE(theta, 0.0);
  if (theta_ > 0) {
    zetan_ = Zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = Zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0) {
    return rng_.NextBounded(n_);
  }
  // theta == 1 makes alpha infinite; nudge it like common implementations do.
  const double theta = theta_ == 1.0 ? 0.99999 : theta_;
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  const double alpha = theta_ == 1.0 ? 1.0 / (1.0 - theta) : alpha_;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace iawj
