// Small bit-manipulation helpers shared by the hash and partition substrates.
#ifndef IAWJ_COMMON_BITS_H_
#define IAWJ_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace iawj {

// Smallest power of two >= v (v > 0).
inline uint64_t NextPow2(uint64_t v) { return std::bit_ceil(v); }

// floor(log2(v)) for v > 0.
inline int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v); }

// ceil(log2(v)) for v > 0.
inline int Log2Ceil(uint64_t v) {
  return v <= 1 ? 0 : 64 - std::countl_zero(v - 1);
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace iawj

#endif  // IAWJ_COMMON_BITS_H_
