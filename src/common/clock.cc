#include "src/common/clock.h"

#include <thread>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace iawj {

Clock::Clock(Mode mode, double time_scale)
    : mode_(mode), time_scale_(time_scale) {
  IAWJ_CHECK_GT(time_scale, 0.0);
}

void Clock::Start() {
  start_ = std::chrono::steady_clock::now();
  // Fault site "clock_skew": the clock behaves as if started 10 s in the
  // past, so every tuple appears already arrived and realtime runs report
  // wildly inflated stream times — the shape of an NTP step or a suspended
  // VM. Exercises that metrics aggregation stays finite and the engine
  // never blocks on a timestamp that will "never" arrive.
  if (fault::Enabled() && fault::Inject("clock_skew")) {
    start_ -= std::chrono::seconds(10);
  }
}

double Clock::NowMs() const {
  const auto wall = std::chrono::steady_clock::now() - start_;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall).count();
  return wall_ms * time_scale_;
}

void Clock::SleepUntilMs(double stream_ms) const {
  if (mode_ == Mode::kInstant) return;
  const double wall_target_ms = stream_ms / time_scale_;
  const auto deadline =
      start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(wall_target_ms));
  std::this_thread::sleep_until(deadline);
}

}  // namespace iawj
