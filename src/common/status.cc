#include "src/common/status.h"

namespace iawj {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  switch (code_) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition: " + message_;
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted: " + message_;
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded: " + message_;
    case StatusCode::kCancelled:
      return "Cancelled: " + message_;
    case StatusCode::kDataLoss:
      return "DataLoss: " + message_;
    case StatusCode::kInternal:
      return "Internal: " + message_;
  }
  return "Unknown";
}

}  // namespace iawj
