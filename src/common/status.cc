#include "src/common/status.h"

namespace iawj {

std::string Status::ToString() const {
  switch (code_) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition: " + message_;
  }
  return "Unknown";
}

}  // namespace iawj
