#include "src/common/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/common/logging.h"
#include "src/hash/simd_probe.h"

namespace iawj {

std::string_view KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kSwwc:
      return "swwc";
    case KernelMode::kSimd:
      return "simd";
    case KernelMode::kLockfree:
      return "lockfree";
  }
  return "?";
}

bool ParseKernelMode(std::string_view text, KernelMode* mode) {
  for (KernelMode candidate : kAllKernelModes) {
    if (text == KernelModeName(candidate)) {
      *mode = candidate;
      return true;
    }
  }
  return false;
}

KernelMode KernelModeFromEnv() {
  const char* env = std::getenv("IAWJ_KERNELS");
  if (env == nullptr || *env == '\0') return KernelMode::kAuto;
  KernelMode mode = KernelMode::kAuto;
  if (!ParseKernelMode(env, &mode)) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      IAWJ_LOG(Warning) << "ignoring unrecognized IAWJ_KERNELS=" << env
                        << " (want auto|scalar|swwc|simd|lockfree)";
    }
  }
  return mode;
}

KernelMode ResolveKernelMode(KernelMode spec_mode) {
  return spec_mode == KernelMode::kAuto ? KernelModeFromEnv() : spec_mode;
}

namespace {

// Satellite of the PR-4 regression fix: the batched prefetch build measured
// 0.95x of scalar (BENCH_baseline.json "notes.batched_build"), so every
// cache-conscious plan resolves builds back to scalar. Said once, on
// stderr, the first time a plan that historically batched builds resolves.
void NoteBatchedBuildRetirementOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::fprintf(stderr,
                 "iawj: note: batched hash build resolves to scalar "
                 "(measured 0.95x of scalar; see BENCH_baseline.json "
                 "notes.batched_build)\n");
  });
}

}  // namespace

KernelPlan ResolveKernelPlan(KernelMode spec_mode, bool tracer_enabled) {
  KernelPlan plan;
  if (tracer_enabled) {
    plan.mode = KernelMode::kScalar;
    return plan;
  }
  KernelMode mode = ResolveKernelMode(spec_mode);
  if (mode == KernelMode::kAuto) mode = KernelMode::kSwwc;
  plan.mode = mode;
  if (mode == KernelMode::kScalar) return plan;

  // Every cache-conscious plan shares the swwc scatter and the batched
  // probe; builds stay scalar (see NoteBatchedBuildRetirementOnce).
  plan.swwc_scatter = true;
  plan.batched_probe = true;
  NoteBatchedBuildRetirementOnce();
  if (mode == KernelMode::kSimd) {
    // Runtime dispatch: without AVX2 (or with $IAWJ_SIMD_PROBE=0) the plan
    // degrades to the batched scalar probe — byte-identical output.
    plan.simd_probe = kernels::SimdProbeSupported();
  } else if (mode == KernelMode::kLockfree) {
    plan.lockfree_build = true;
  }
  return plan;
}

std::string_view KernelScatterVariant(const KernelPlan& plan) {
  return plan.swwc_scatter ? "swwc" : "scalar";
}

std::string_view KernelBuildVariant(const KernelPlan& plan) {
  return plan.lockfree_build ? "lockfree" : "scalar";
}

std::string_view KernelProbeVariant(const KernelPlan& plan) {
  if (plan.simd_probe) return "simd";
  return plan.batched_probe ? "batched" : "scalar";
}

bool UseCacheKernels(KernelMode spec_mode, bool tracer_enabled) {
  if (tracer_enabled) return false;
  return ResolveKernelMode(spec_mode) != KernelMode::kScalar;
}

}  // namespace iawj
