#include "src/common/kernels.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace iawj {

std::string_view KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kSwwc:
      return "swwc";
  }
  return "?";
}

bool ParseKernelMode(std::string_view text, KernelMode* mode) {
  for (KernelMode candidate : kAllKernelModes) {
    if (text == KernelModeName(candidate)) {
      *mode = candidate;
      return true;
    }
  }
  return false;
}

KernelMode KernelModeFromEnv() {
  const char* env = std::getenv("IAWJ_KERNELS");
  if (env == nullptr || *env == '\0') return KernelMode::kAuto;
  KernelMode mode = KernelMode::kAuto;
  if (!ParseKernelMode(env, &mode)) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      IAWJ_LOG(Warning) << "ignoring unrecognized IAWJ_KERNELS=" << env
                        << " (want auto|scalar|swwc)";
    }
  }
  return mode;
}

KernelMode ResolveKernelMode(KernelMode spec_mode) {
  return spec_mode == KernelMode::kAuto ? KernelModeFromEnv() : spec_mode;
}

bool UseCacheKernels(KernelMode spec_mode, bool tracer_enabled) {
  if (tracer_enabled) return false;
  return ResolveKernelMode(spec_mode) != KernelMode::kScalar;
}

}  // namespace iawj
