// Zipf-distributed value generation.
//
// The paper uses Zipf distributions for both key skew (skew_key) and arrival
// timestamp skew (skew_ts); theta = 0 degenerates to uniform. We use the
// classic Gray et al. rejection-free inversion with a precomputed zeta
// constant, which is exact and O(1) per sample after O(n) setup.
#ifndef IAWJ_COMMON_ZIPF_H_
#define IAWJ_COMMON_ZIPF_H_

#include <cstdint>

#include "src/common/rng.h"

namespace iawj {

class ZipfGenerator {
 public:
  // Generates values in [0, n). theta >= 0; theta == 0 is uniform.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  Rng rng_;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_ZIPF_H_
