// Deterministic, fast pseudo-random number generation for workload synthesis.
//
// All dataset generators seed explicitly so every experiment is reproducible
// bit-for-bit across runs.
#ifndef IAWJ_COMMON_RNG_H_
#define IAWJ_COMMON_RNG_H_

#include <cstdint>

namespace iawj {

// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace iawj

#endif  // IAWJ_COMMON_RNG_H_
