// A small Status type for fallible configuration paths.
//
// The hot join paths never fail at runtime; Status is used where a caller can
// hand the library an invalid configuration (e.g., zero threads, radix bits
// out of range) and deserves a description rather than a process abort.
#ifndef IAWJ_COMMON_STATUS_H_
#define IAWJ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace iawj {

enum class StatusCode { kOk = 0, kInvalidArgument, kFailedPrecondition };

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  std::string_view message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_STATUS_H_
