// A small Status type for fallible paths.
//
// The hot join paths never fail tuple-by-tuple; Status is used where a
// caller can hand the library an invalid configuration, where external
// input (workload files, env overrides) can be malformed, and — since the
// robustness layer (ISSUE 2) — where a run is cancelled, starved of memory,
// or overruns its deadline and must report instead of aborting.
#ifndef IAWJ_COMMON_STATUS_H_
#define IAWJ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace iawj {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller-supplied configuration is malformed
  kFailedPrecondition,  // the environment refused (file missing, mkdir...)
  kResourceExhausted,   // memory budget breached (IAWJ_MEM_BUDGET / faults)
  kDeadlineExceeded,    // run overran JoinSpec::deadline_ms
  kCancelled,           // run cancelled through its CancelToken
  kDataLoss,            // input file truncated or corrupt past the header
  kInternal,            // engine-side failure (also injected faults)
};

// Stable lower-case name of a code ("ok", "resource_exhausted", ...), used
// by run records and the CLI's exit-code table.
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  std::string_view message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_STATUS_H_
